package pgrid

// Integration tests: full build → publish → churn → update → read cycles
// across the public API, cross-checked against the global oracle. These
// exercise the same paths a downstream application would.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

func TestIntegrationBuildPublishSearchLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := Options{Peers: 800, MaxPathLen: 6, RefMax: 8, RecMax: 2, RecFanout: 2, Threshold: 0.99, Seed: 21, Concurrent: true}
	g, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}

	// The converged structure must cover the whole key space.
	tr := trie.FromDirectory(g.Directory())
	if err := tr.CheckCoverage(6); err != nil {
		t.Fatal(err)
	}

	// Publish a catalog through the protocol.
	rng := rand.New(rand.NewSource(22))
	catalog := workload.FileCatalog(rng, 300, opts.Peers, opts.MaxPathLen)
	for _, e := range catalog.Entries {
		if _, err := g.Publish(Entry{Key: string(e.Key), Name: e.Name, Holder: int(e.Holder)}); err != nil {
			t.Fatalf("publish %q: %v", e.Name, err)
		}
	}

	// Single-replica reads: a publish is one breadth-first pass, so a
	// lookup can land on a replica the publish missed — rare with everyone
	// online, and always recoverable with a majority read.
	misses := 0
	for _, e := range catalog.Entries {
		got, _, err := g.Lookup(string(e.Key), e.Name)
		if err != nil {
			misses++
			got, _, err = g.MajorityLookup(string(e.Key), e.Name, 2)
			if err != nil {
				t.Fatalf("majority lookup %q: %v", e.Name, err)
			}
		}
		if got.Holder != int(e.Holder) {
			t.Fatalf("lookup %q returned holder %d, want %d", e.Name, got.Holder, e.Holder)
		}
	}
	if float64(misses) > 0.05*float64(len(catalog.Entries)) {
		t.Fatalf("%d/%d single-replica reads missed with everyone online", misses, len(catalog.Entries))
	}

	// At 30 % availability, lookups still mostly succeed.
	g.SetOnlineFraction(0.3)
	ok := 0
	for _, e := range catalog.Entries {
		if _, _, err := g.Lookup(string(e.Key), e.Name); err == nil {
			ok++
		}
	}
	if frac := float64(ok) / float64(len(catalog.Entries)); frac < 0.80 {
		t.Fatalf("only %.2f of lookups succeeded at 30%% online", frac)
	}
	g.SetOnlineFraction(1)
}

func TestIntegrationUpdateThenMajorityReadUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g, err := Build(Options{Peers: 1000, MaxPathLen: 6, RefMax: 10, RecMax: 2, RecFanout: 2, Threshold: 0.99, Seed: 23, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = HashKey(fmt.Sprintf("doc-%d", i), 5)
		if err := g.SeedIndex(Entry{Key: keys[i], Name: "doc", Holder: 1, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}

	g.SetOnlineFraction(0.3)
	for i, k := range keys {
		if _, err := g.Update(Entry{Key: k, Name: "doc", Holder: 2, Version: 2}, 3, 2); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}

	fresh := 0
	for _, k := range keys {
		e, _, err := g.MajorityLookup(k, "doc", 3)
		if err != nil {
			continue
		}
		if e.Version == 2 {
			fresh++
		}
	}
	if fresh < 18 {
		t.Fatalf("majority reads returned fresh value for only %d/20 keys", fresh)
	}

	// Sessions churn; reads keep working.
	for epoch := 0; epoch < 10; epoch++ {
		g.ChurnStep(0.3, 40)
	}
	succ := 0
	for _, k := range keys {
		if _, _, err := g.MajorityLookup(k, "doc", 3); err == nil {
			succ++
		}
	}
	if succ < 18 {
		t.Fatalf("after churn, majority reads succeeded for only %d/20 keys", succ)
	}
}

func TestIntegrationSearchTerminatesAtOracleCoveringPeer(t *testing.T) {
	g, err := Build(Options{Peers: 300, MaxPathLen: 5, RefMax: 5, RecMax: 2, RecFanout: 2, Threshold: 0.99, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	tr := trie.FromDirectory(g.Directory())
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 200; i++ {
		key := bitpath.Random(rng, 5)
		res, err := g.Search(string(key))
		if err != nil {
			t.Fatalf("search %s: %v", key, err)
		}
		covering := tr.Covering(key)
		found := false
		for _, a := range covering {
			if int(a) == res.Peer {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("search %s ended at peer %d, not in oracle covering set %v", key, res.Peer, covering)
		}
	}
}

func TestIntegrationStaleUpdatesNeverWinMajority(t *testing.T) {
	g := BuildIdeal(512, 5, 8, 26)
	key := HashKey("contested", 5)
	if err := g.SeedIndex(Entry{Key: key, Name: "contested", Holder: 1, Version: 10}); err != nil {
		t.Fatal(err)
	}
	// A stale writer pushes version 3 aggressively; version monotonicity
	// must protect every replica.
	for i := 0; i < 5; i++ {
		g.Update(Entry{Key: key, Name: "contested", Holder: 9, Version: 3}, 8, 3)
	}
	e, _, err := g.MajorityLookup(key, "contested", 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 10 || e.Holder != 1 {
		t.Fatalf("stale write surfaced: %+v", e)
	}
}

func TestIntegrationErrorsAreTyped(t *testing.T) {
	g := BuildIdeal(64, 3, 4, 27)
	if _, _, err := g.Lookup(HashKey("nope", 3), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing item err = %v", err)
	}
	g.SetOnlineFraction(0)
	if _, err := g.Search("010"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dead community err = %v", err)
	}
}
