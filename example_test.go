package pgrid_test

import (
	"fmt"

	"pgrid"
)

// The examples below use BuildIdeal (a fabricated, perfectly balanced
// grid) so their output is deterministic; applications normally use
// pgrid.Build, which runs the randomized construction process.

func ExampleBuildIdeal() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	s := g.Stats()
	fmt.Println(s.Peers, "peers at depth", s.MaxPathLen, "with", s.ReplicaMean, "replicas per path")
	// Output: 256 peers at depth 4 with 16 replicas per path
}

func ExampleGrid_Publish() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	key := pgrid.HashKey("song.mp3", 4)
	cost, err := g.Publish(pgrid.Entry{Key: key, Name: "song.mp3", Holder: 42})
	if err != nil {
		fmt.Println("publish failed:", err)
		return
	}
	fmt.Println("replicated:", cost.Replicas > 1)
	// Output: replicated: true
}

func ExampleGrid_Lookup() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	key := pgrid.HashKey("song.mp3", 4)
	g.Publish(pgrid.Entry{Key: key, Name: "song.mp3", Holder: 42})

	entry, _, err := g.Lookup(key, "song.mp3")
	if err != nil {
		fmt.Println("lookup failed:", err)
		return
	}
	fmt.Println("hosted by peer", entry.Holder)
	// Output: hosted by peer 42
}

func ExampleGrid_MajorityLookup() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	key := pgrid.HashKey("doc", 4)
	g.SeedIndex(pgrid.Entry{Key: key, Name: "doc", Holder: 1, Version: 1})
	// A partial update leaves some replicas stale; the majority read
	// still returns the freshest well-supported version.
	g.Update(pgrid.Entry{Key: key, Name: "doc", Holder: 2, Version: 2}, 4, 2)

	entry, _, _ := g.MajorityLookup(key, "doc", 3)
	fmt.Println("version", entry.Version)
	// Output: version 2
}

func ExampleGrid_PrefixSearch() {
	g := pgrid.BuildIdeal(512, 5, 8, 2)
	for i, w := range []string{"alpha", "alpine", "beta"} {
		g.SeedIndex(pgrid.Entry{Key: pgrid.TextKey(w, 24), Name: w, Holder: i + 1})
	}
	hits, _, _ := g.PrefixSearch(pgrid.TextKey("al", 16))
	for _, h := range hits {
		fmt.Println(h.Name)
	}
	// Output:
	// alpha
	// alpine
}

func ExampleHashKey() {
	fmt.Println(pgrid.HashKey("song.mp3", 8))
	// Output: 10100111
}

func ExampleGrid_RangeSearch() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	for v := 0; v < 16; v++ {
		key := fmt.Sprintf("%04b", v)
		g.SeedIndex(pgrid.Entry{Key: key, Name: fmt.Sprintf("block-%02d", v), Holder: v})
	}
	// An inclusive key range becomes a handful of prefix fan-outs.
	hits, _, _ := g.RangeSearch("0101", "0111")
	for _, h := range hits {
		fmt.Println(h.Name)
	}
	// Output:
	// block-05
	// block-06
	// block-07
}

func ExampleGrid_Trace() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	hops, res, err := g.Trace("0110")
	if err != nil {
		fmt.Println("unreachable:", err)
		return
	}
	fmt.Println("hops:", len(hops) > 0, "— responsible path:", res.Path)
	// Output: hops: true — responsible path: 0110
}

func ExampleGrid_Join() {
	g := pgrid.BuildIdeal(256, 4, 8, 1)
	st, err := g.Join()
	if err != nil {
		fmt.Println("join failed:", err)
		return
	}
	fmt.Println("newcomer", st.Peer, "settled at depth", st.Depth)
	// Output: newcomer 256 settled at depth 4
}
