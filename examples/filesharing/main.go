// Filesharing pits a P-Grid index against Gnutella-style flooding on the
// same file-sharing workload — the motivating comparison of the paper's
// introduction ("search requests are broadcasted over the network … this
// approach is extremely costly in terms of communication").
//
// Both systems index the same synthetic MP3 catalog over the same number
// of peers; both answer the same random lookups. The output shows the
// per-query message cost and hit rate side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgrid"
	"pgrid/internal/flood"
	"pgrid/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		peers   = 2000
		files   = 4000
		lookups = 1000
		seed    = 7
	)
	rng := rand.New(rand.NewSource(seed))

	opts := pgrid.DefaultOptions(peers)
	opts.Seed = seed
	opts.Concurrent = true
	fmt.Printf("community: %d peers sharing %d files, %d lookups each system\n\n", peers, files, lookups)

	catalog := workload.FileCatalog(rng, files, peers, opts.MaxPathLen)

	// --- P-Grid ------------------------------------------------------
	g, err := pgrid.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range catalog.Entries {
		if err := g.SeedIndex(pgrid.Entry{Key: string(e.Key), Name: e.Name, Holder: int(e.Holder)}); err != nil {
			log.Fatal(err)
		}
	}
	var pgMsgs, pgHits int
	for i := 0; i < lookups; i++ {
		e := catalog.Entries[rng.Intn(len(catalog.Entries))]
		entry, cost, err := g.Lookup(string(e.Key), e.Name)
		pgMsgs += cost.Messages
		if err == nil && entry.Holder == int(e.Holder) {
			pgHits++
		}
	}

	// --- Gnutella-style flooding --------------------------------------
	fl := flood.New(rng, peers, 3)
	for _, e := range catalog.Entries {
		fl.Host(e.Holder, e)
	}
	var flMsgs, flHits int
	const ttl = 7 // Gnutella's classic default TTL
	for i := 0; i < lookups; i++ {
		e := catalog.Entries[rng.Intn(len(catalog.Entries))]
		res := fl.Search(rng, fl.RandomOnlinePeer(rng), e.Name, ttl)
		flMsgs += res.Messages
		if len(res.Found) > 0 {
			flHits++
		}
	}

	fmt.Printf("%-28s %14s %10s\n", "system", "msgs/query", "hit rate")
	fmt.Printf("%-28s %14.1f %9.1f%%\n", "P-Grid (indexed)",
		float64(pgMsgs)/lookups, 100*float64(pgHits)/lookups)
	fmt.Printf("%-28s %14.1f %9.1f%%\n", fmt.Sprintf("flooding (TTL %d)", ttl),
		float64(flMsgs)/lookups, 100*float64(flHits)/lookups)
	fmt.Printf("\nP-Grid answers with %.0fx fewer messages per query.\n",
		float64(flMsgs)/float64(pgMsgs))

	// Prefix search over human-readable names — the paper's Section 6
	// trie extension: order-preserving text keys turn the binary trie
	// into a text trie.
	tg := pgrid.BuildIdeal(512, 5, 8, seed)
	names := []string{"delta-harbor-01.mp3", "delta-neon-02.mp3", "echoes-bloom-03.mp3"}
	for i, n := range names {
		if err := tg.SeedIndex(pgrid.Entry{Key: pgrid.TextKey(n, 24), Name: n, Holder: i + 1}); err != nil {
			log.Fatal(err)
		}
	}
	hits, _, err := tg.PrefixSearch(pgrid.TextKey("delta-", 24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprefix search \"delta-*\" over text keys found %d items:\n", len(hits))
	for _, h := range hits {
		fmt.Printf("  %s (peer %d)\n", h.Name, h.Holder)
	}
}
