// Adaptive demonstrates the skew extension (the paper's Section 6 future
// work): when keys concentrate in one region of the space, data-aware
// splitting — the paper's own Section 3 suggestion of stopping splits when
// a region's item count falls below a threshold — lets the trie grow deep
// where the data is and stay shallow (and replicated) where it is not.
//
// The demo builds the same skewed catalog twice, with plain and data-aware
// splitting, prints both responsibility tries for a small community, and
// compares the per-peer index load.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/stats"
	"pgrid/internal/store"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		peers    = 24
		items    = 600
		maxl     = 8
		minItems = 12
		meetings = 40000
		seed     = 5
	)

	fmt.Printf("%d peers, %d items, 85%% of keys under prefix 00\n\n", peers, items)
	for _, aware := range []bool{false, true} {
		mode := "plain splitting (depth bounded only by maxl)"
		cfg := core.Config{MaxL: maxl, RefMax: 3, RecMax: 2, RecFanout: 2}
		if aware {
			mode = fmt.Sprintf("data-aware splitting (split only while a region holds ≥ %d items)", minItems)
			cfg.SplitMinItems = minItems
		}

		rng := rand.New(rand.NewSource(seed))
		keys := workload.HotspotKeys(rng, items, maxl+4, bitpath.MustParse("00"), 0.85)
		d := directory.New(peers)
		entries := make([]store.Entry, len(keys))
		for i, k := range keys {
			holder := d.RandomPeer(rng)
			entries[i] = store.Entry{Key: k, Name: fmt.Sprintf("item-%d", i), Holder: holder.Addr(), Version: 1}
			holder.Store().Apply(entries[i])
		}
		var m core.Metrics
		for i := 0; i < meetings; i++ {
			a1, a2 := d.RandomPair(rng)
			core.Exchange(d, cfg, &m, a1, a2, rng)
		}
		for _, e := range entries {
			core.Insert(d, e, cfg.RefMax, rng)
		}

		loads := make([]float64, peers)
		for i, p := range d.All() {
			loads[i] = float64(p.Store().Len())
		}
		sum := stats.Summarize(loads)

		fmt.Printf("=== %s ===\n", mode)
		fmt.Print(trie.FromDirectory(d).Render())
		fmt.Printf("index entries per peer: mean %.1f, max %.0f, gini %.3f\n\n",
			sum.Mean, sum.Max, stats.Gini(loads))
	}
	fmt.Println("with the gate, the hot 00 subtree splits deep while cold regions")
	fmt.Println("keep shallow, replicated paths — depth follows the data.")
}
