// Network runs a P-Grid as actual message-passing processes: one goroutine
// per peer, communicating only through the wire protocol over an in-process
// transport — no shared state, no global coordinator. It is the same code
// path cmd/pgridnode runs over TCP, at a scale (1000 concurrent peers) that
// shows why goroutines are the right substrate for simulating P2P systems.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/node"
)

func main() {
	log.SetFlags(0)
	const (
		peers  = 1000
		depth  = 6
		seed   = 3
		rounds = 400 // gossip rounds per peer
	)
	cfg := core.Config{MaxL: depth, RefMax: 5, RecMax: 2, RecFanout: 2}
	cluster := node.NewCluster(peers, cfg, seed)
	fmt.Printf("spawned %d peer goroutines (maxl=%d)\n", peers, depth)

	// Every peer gossips independently: meet a random peer, run the
	// exchange, repeat. This is the paper's construction process with true
	// concurrency instead of a sequential scheduler.
	start := time.Now()
	var wg sync.WaitGroup
	for i, n := range cluster.Nodes {
		wg.Add(1)
		go func(i int, n *node.Node) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			for r := 0; r < rounds; r++ {
				to := addr.Addr(rng.Intn(peers - 1))
				if int(to) >= i {
					to++
				}
				n.Exchange(to) // unreachable peers are just skipped
				if r%50 == 0 && n.Path().Len() == depth {
					return // fully specialized; stop gossiping
				}
			}
		}(i, n)
	}
	wg.Wait()
	fmt.Printf("self-organized in %v: average depth %.2f, %d messages delivered\n",
		time.Since(start).Round(time.Millisecond), cluster.AvgPathLen(), cluster.Transport.Messages())
	if v := cluster.CountInvariantViolations(); v > 0 {
		fmt.Printf("note: %d references went stale during concurrent races (searches route around them)\n", v)
	}

	// Drive concurrent queries from many goroutines at once.
	const queriers = 16
	var succ, msgs int64
	var mu sync.Mutex
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(9000 + int64(q)))
			for i := 0; i < 100; i++ {
				key := bitpath.Random(rng, depth)
				res := cluster.Nodes[rng.Intn(peers)].Query(key)
				mu.Lock()
				if res.Found {
					succ++
					msgs += int64(res.Messages)
				}
				mu.Unlock()
			}
		}(q)
	}
	wg.Wait()
	total := int64(queriers * 100)
	fmt.Printf("concurrent queries: %d/%d succeeded, %.2f messages each\n",
		succ, total, float64(msgs)/float64(succ))
}
