// Churn demonstrates the paper's central reliability claims under peer
// churn: searches keep succeeding when only ~30 % of peers are online
// (equation 3), and the repeated-query majority read returns fresh values
// after cheap, partial update propagation (the Section 5.2 tradeoff).
package main

import (
	"fmt"
	"log"

	"pgrid"
)

func main() {
	log.SetFlags(0)
	const (
		peers  = 4000
		depth  = 7
		refmax = 12
		seed   = 11
	)
	g, err := pgrid.Build(pgrid.Options{
		Peers: peers, MaxPathLen: depth, RefMax: refmax,
		RecMax: 2, RecFanout: 2, Threshold: 0.99, Seed: seed, Concurrent: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-peer grid, depth %.2f\n\n", peers, g.Stats().AvgPathLen)

	// Publish one document while everyone is online.
	key := pgrid.HashKey("report.pdf", depth)
	if err := g.SeedIndex(pgrid.Entry{Key: key, Name: "report.pdf", Holder: 1, Version: 1}); err != nil {
		log.Fatal(err)
	}

	// Search availability across a range of online fractions.
	fmt.Println("search availability vs online fraction (200 lookups each):")
	for _, p := range []float64{0.1, 0.2, 0.3, 0.5, 0.8} {
		g.SetOnlineFraction(p)
		ok := 0
		for i := 0; i < 200; i++ {
			if _, _, err := g.Lookup(key, "report.pdf"); err == nil {
				ok++
			}
		}
		fmt.Printf("  %3.0f%% online → %5.1f%% lookups succeed\n", p*100, float64(ok)/2)
	}

	// Now the update story. With 30 % online, propagate an update cheaply
	// (partial coverage), then compare single reads vs majority reads.
	g.SetOnlineFraction(0.3)
	cost, err := g.Update(pgrid.Entry{Key: key, Name: "report.pdf", Holder: 2, Version: 2}, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdate to v2 reached %d replicas for %d messages\n", cost.Replicas, cost.Messages)

	singleFresh, majorityFresh := 0, 0
	var singleMsgs, majorityMsgs int
	const reads = 200
	for i := 0; i < reads; i++ {
		if e, c, err := g.Lookup(key, "report.pdf"); err == nil {
			singleMsgs += c.Messages
			if e.Version == 2 {
				singleFresh++
			}
		}
		if e, c, err := g.MajorityLookup(key, "report.pdf", 3); err == nil {
			majorityMsgs += c.Messages
			if e.Version == 2 {
				majorityFresh++
			}
		}
	}
	fmt.Printf("\n%-28s %12s %12s\n", "read protocol", "fresh reads", "msgs/read")
	fmt.Printf("%-28s %11.1f%% %12.1f\n", "single search",
		100*float64(singleFresh)/reads, float64(singleMsgs)/reads)
	fmt.Printf("%-28s %11.1f%% %12.1f\n", "majority (repetitive)",
		100*float64(majorityFresh)/reads, float64(majorityMsgs)/reads)

	// Continuous churn: peers leave and return in sessions while lookups
	// keep flowing.
	fmt.Println("\ncontinuous churn (30% stationary online, sessions of ~50 steps):")
	for epoch := 0; epoch < 5; epoch++ {
		for step := 0; step < 20; step++ {
			g.ChurnStep(0.3, 50)
		}
		ok := 0
		for i := 0; i < 100; i++ {
			if _, _, err := g.MajorityLookup(key, "report.pdf", 3); err == nil {
				ok++
			}
		}
		s := g.Stats()
		fmt.Printf("  epoch %d: %4d peers online, %3d%% majority reads succeed\n",
			epoch+1, s.Online, ok)
	}
}
