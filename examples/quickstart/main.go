// Quickstart: build a P-Grid community, publish a few items, and search
// for them — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"pgrid"
)

func main() {
	log.SetFlags(0)

	// Build a community of 500 peers by running the paper's randomized
	// pairwise-exchange construction until the structure converges.
	opts := pgrid.DefaultOptions(500)
	opts.Seed = 42
	g, err := pgrid.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("built a P-Grid of %d peers: average depth %.2f, %.1f replicas per path\n",
		s.Peers, s.AvgPathLen, s.ReplicaMean)

	// Publish a few files. Keys are hashes of the names, so the index is
	// uniformly loaded regardless of what the names look like.
	files := []string{"aurora-midnight-01.mp3", "fjord-static-02.mp3", "indigo-comet-03.mp3"}
	for i, name := range files {
		key := pgrid.HashKey(name, opts.MaxPathLen)
		cost, err := g.Publish(pgrid.Entry{Key: key, Name: name, Holder: i + 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-24s key=%s → %d replicas, %d messages\n",
			name, key, cost.Replicas, cost.Messages)
	}

	// Search: any peer can be the entry point; routing costs O(log N).
	for _, name := range files {
		key := pgrid.HashKey(name, opts.MaxPathLen)
		entry, cost, err := g.Lookup(key, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lookup %-26s → hosted by peer %d (%d messages)\n",
			name, entry.Holder, cost.Messages)
	}

	// The structure keeps working when peers drop offline: with 30 % of
	// peers online (the paper's Gnutella estimate), searches still succeed
	// through the redundant references.
	g.SetOnlineFraction(0.3)
	ok := 0
	for _, name := range files {
		key := pgrid.HashKey(name, opts.MaxPathLen)
		if _, _, err := g.Lookup(key, name); err == nil {
			ok++
		}
	}
	fmt.Printf("with 30%% of peers online: %d/%d lookups still succeeded\n", ok, len(files))
}
