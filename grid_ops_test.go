package pgrid

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestJoinGrowsCommunity(t *testing.T) {
	g := BuildIdeal(256, 4, 8, 1)
	before := g.N()
	st, err := g.Join()
	if err != nil {
		t.Fatalf("join: %v (%+v)", err, st)
	}
	if g.N() != before+1 {
		t.Errorf("N = %d, want %d", g.N(), before+1)
	}
	if st.Peer != before || st.Depth != 4 || !st.Settled {
		t.Errorf("stats = %+v", st)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	// The newcomer participates: searches can start anywhere and still
	// work.
	for i := 0; i < 20; i++ {
		if _, err := g.Search("0101"); err != nil {
			t.Fatalf("search after join: %v", err)
		}
	}
}

func TestJoinManySequential(t *testing.T) {
	g := BuildIdeal(128, 4, 6, 2)
	for i := 0; i < 16; i++ {
		if _, err := g.Join(); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Peers != 144 {
		t.Errorf("peers = %d", s.Peers)
	}
}

func TestMaintainRepairsAfterOfflineWave(t *testing.T) {
	g := BuildIdeal(256, 4, 6, 3)
	g.SetOnlineFraction(0.6)
	st := g.Maintain()
	if st.Probed == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AliveFraction < 0.99 {
		t.Errorf("alive fraction after maintain = %v", st.AliveFraction)
	}
	g.SetOnlineFraction(1)
}

func TestTraceRoute(t *testing.T) {
	g := BuildIdeal(256, 4, 8, 4)
	hops, res, err := g.Trace("0110")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) == 0 {
		t.Fatal("no hops recorded")
	}
	last := hops[len(hops)-1]
	if !last.Matched || last.Peer != res.Peer {
		t.Errorf("last hop %+v, result %+v", last, res)
	}
	if !strings.HasPrefix("0110", res.Path) && !strings.HasPrefix(res.Path, "0110") {
		t.Errorf("result path %q not comparable", res.Path)
	}
	if _, _, err := g.Trace("01x"); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key err = %v", err)
	}
	g.SetOnlineFraction(0)
	if _, _, err := g.Trace("0110"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dead community err = %v", err)
	}
}

func TestWarmLearnsIntoSpareCapacity(t *testing.T) {
	// Build with refmax 2 via the public API, then lift the budget and
	// warm: references must be learned and the grid must stay valid.
	g, err := Build(Options{Peers: 200, MaxPathLen: 5, RefMax: 2, RecMax: 2, RecFanout: 2, Threshold: 0.95, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	g.cfg.RefMax = 8 // widen the operational budget
	st := g.Warm(1000)
	if st.Learned == 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSearch(t *testing.T) {
	g := BuildIdeal(256, 4, 8, 6)
	// Keys 0000…1111; publish one item per key.
	for v := 0; v < 16; v++ {
		key := fmt.Sprintf("%04b", v)
		if err := g.SeedIndex(Entry{Key: key, Name: fmt.Sprintf("item-%02d", v), Holder: v + 1}); err != nil {
			t.Fatal(err)
		}
	}
	got, cost, err := g.RangeSearch("0011", "0110")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d entries: %v", len(got), got)
	}
	for i, want := range []string{"0011", "0100", "0101", "0110"} {
		if got[i].Key != want {
			t.Errorf("got[%d].Key = %q, want %q", i, got[i].Key, want)
		}
	}
	if cost.Messages == 0 {
		t.Error("free range search is implausible")
	}
	// Full range returns everything.
	all, _, err := g.RangeSearch("0000", "1111")
	if err != nil || len(all) != 16 {
		t.Fatalf("full range: %d entries, err %v", len(all), err)
	}
	// Single-key range.
	one, _, err := g.RangeSearch("1010", "1010")
	if err != nil || len(one) != 1 || one[0].Key != "1010" {
		t.Fatalf("single range: %v, %v", one, err)
	}
}

func TestRangeSearchErrors(t *testing.T) {
	g := BuildIdeal(64, 3, 4, 7)
	if _, _, err := g.RangeSearch("01x", "011"); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad lo err = %v", err)
	}
	if _, _, err := g.RangeSearch("011", "01x"); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad hi err = %v", err)
	}
	if _, _, err := g.RangeSearch("011", "001"); err == nil {
		t.Error("inverted range accepted")
	}
	g.SetOnlineFraction(0)
	if _, _, err := g.RangeSearch("000", "111"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dead community err = %v", err)
	}
}

func TestRangeSearchFreshestVersionWins(t *testing.T) {
	g := BuildIdeal(64, 3, 4, 8)
	if err := g.SeedIndex(Entry{Key: "010", Name: "doc", Holder: 1, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Update(Entry{Key: "010", Name: "doc", Holder: 2, Version: 4}, 4, 2); err != nil {
		t.Fatal(err)
	}
	got, _, err := g.RangeSearch("000", "111")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Version != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestLookupAllEnumeratesNamesUnderKey(t *testing.T) {
	g := BuildIdeal(256, 4, 8, 5)
	key := "0101"
	for _, name := range []string{"a", "b", "c"} {
		if err := g.SeedIndex(Entry{Key: key, Name: name, Holder: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := g.LookupAll(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].Name != want {
			t.Errorf("got[%d] = %+v", i, got[i])
		}
	}
	if _, _, err := g.LookupAll("0011"); !errors.Is(err, ErrNotFound) {
		t.Errorf("empty key err = %v", err)
	}
	if _, _, err := g.LookupAll("2"); !errors.Is(err, ErrBadKey) {
		t.Errorf("bad key err = %v", err)
	}
}
