package analysis

import "testing"

func TestCompareCostsShape(t *testing.T) {
	rows, err := CompareCosts([]int{1000, 2000, 4000, 8000}, 10, 100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	g := Growth(rows)
	if g.Scale != 8 {
		t.Fatalf("scale = %v", g.Scale)
	}
	// Linear quantities track the scale exactly.
	if g.ServerStorage != 8 || g.ServerLoad != 8 || g.FloodMsgs != 8 {
		t.Errorf("linear growths: %+v", g)
	}
	// Logarithmic quantities grow far slower than the scale.
	if g.PGridStorage > 2 || g.PGridQueryMsgs > 2 {
		t.Errorf("log growths too fast: %+v", g)
	}
	if g.PGridStorage < 1 || g.PGridQueryMsgs < 1 {
		t.Errorf("log growths shrank: %+v", g)
	}
}

func TestCompareCostsMatchesPaperExample(t *testing.T) {
	// At the Section 4 example parameters (D=1e7, iLeaf=9800, refmax=20)
	// the routing table is k·refmax = 200 references.
	rows, err := CompareCosts([]int{20409}, 1e7/20409, 9800, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].PGridStorage != 200 {
		t.Errorf("routing table = %v refs, want 200", rows[0].PGridStorage)
	}
	if rows[0].ServerStorage < 0.99e7 {
		t.Errorf("server storage = %v", rows[0].ServerStorage)
	}
}

func TestCompareCostsValidation(t *testing.T) {
	if _, err := CompareCosts([]int{10}, 0, 1, 1, 1); err == nil {
		t.Error("bad itemsPerPeer accepted")
	}
	if _, err := CompareCosts([]int{10}, 1, 0, 1, 1); err == nil {
		t.Error("bad iLeaf accepted")
	}
	if _, err := CompareCosts([]int{10}, 1, 1, 0, 1); err == nil {
		t.Error("bad refmax accepted")
	}
	if _, err := CompareCosts([]int{10}, 1, 1, 1, 0); err == nil {
		t.Error("bad degree accepted")
	}
}

func TestGrowthPanicsOnShortInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Growth([]CostRow{{N: 1}})
}
