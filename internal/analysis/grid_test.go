package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/health"
	"pgrid/internal/node"
	"pgrid/internal/sim"
)

// TestSuccessProbabilityTable pins equation (3) against hand-computed
// values over p ∈ {0.2, 0.5, 0.8}, refmax ∈ {1, 2, 4}, k ≤ 8.
func TestSuccessProbabilityTable(t *testing.T) {
	cases := []struct {
		p      float64
		refmax int
		k      int
		want   float64
	}{
		{0.2, 1, 1, 0.2},
		{0.2, 1, 2, 0.04},
		{0.2, 1, 4, 0.0016},
		{0.2, 1, 8, 0.00000256},
		{0.2, 2, 1, 0.36},
		{0.2, 2, 2, 0.1296},
		{0.2, 2, 4, 0.01679616},
		{0.2, 2, 8, 0.0002821110},
		{0.2, 4, 1, 0.5904},
		{0.2, 4, 2, 0.34857216},
		{0.2, 4, 4, 0.1215025507},
		{0.2, 4, 8, 0.0147628698},
		{0.5, 1, 1, 0.5},
		{0.5, 1, 2, 0.25},
		{0.5, 1, 4, 0.0625},
		{0.5, 1, 8, 0.00390625},
		{0.5, 2, 1, 0.75},
		{0.5, 2, 2, 0.5625},
		{0.5, 2, 4, 0.31640625},
		{0.5, 2, 8, 0.1001129150},
		{0.5, 4, 1, 0.9375},
		{0.5, 4, 2, 0.87890625},
		{0.5, 4, 4, 0.7724761963},
		{0.5, 4, 8, 0.5967194738},
		{0.8, 1, 1, 0.8},
		{0.8, 1, 2, 0.64},
		{0.8, 1, 4, 0.4096},
		{0.8, 1, 8, 0.16777216},
		{0.8, 2, 1, 0.96},
		{0.8, 2, 2, 0.9216},
		{0.8, 2, 4, 0.84934656},
		{0.8, 2, 8, 0.7213895790},
		{0.8, 4, 1, 0.9984},
		{0.8, 4, 2, 0.99680256},
		{0.8, 4, 4, 0.9936153436},
		{0.8, 4, 8, 0.9872714511},
	}
	for _, c := range cases {
		got := SuccessProbability(c.p, c.refmax, c.k)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SuccessProbability(%v, %d, %d) = %.10f, want %.10f",
				c.p, c.refmax, c.k, got, c.want)
		}
	}
}

func addrOf(v int) addr.Addr { return addr.Addr(v) }

// digest builds a test digest in one line.
func digest(a int, path string, entries int, hash uint64, refCounts []int, probes []health.LevelProbe) health.Digest {
	return health.Digest{Addr: addrOf(a), Path: bitpath.MustParse(path), Entries: entries,
		IndexHash: hash, RefCounts: refCounts, Liveness: probes}
}

func TestAnalyzeGridCensus(t *testing.T) {
	live := func(levels ...int) []health.LevelProbe {
		var out []health.LevelProbe
		for _, l := range levels {
			out = append(out, health.LevelProbe{Level: l, Live: 1})
		}
		return out
	}
	digests := []health.Digest{
		digest(0, "0", 5, 0xaa, []int{1}, live(1)),
		digest(3, "0", 5, 0xbb, []int{1}, live(1)), // diverged replica of "0"
		digest(1, "10", 2, 0xcc, []int{1, 1}, live(1, 2)),
		digest(2, "11", 2, 0xdd, []int{1, 1}, []health.LevelProbe{
			{Level: 1, Live: 1}, {Level: 2, Dead: 1}}), // level 2 all dead
	}
	r := AnalyzeGrid(digests)

	if r.Peers != 4 || len(r.Census) != 3 {
		t.Fatalf("report = %+v", r)
	}
	if r.Census[0].Path != bitpath.MustParse("0") || len(r.Census[0].Replicas) != 2 ||
		r.Census[0].Replicas[0] != addrOf(0) || r.Census[0].Replicas[1] != addrOf(3) {
		t.Errorf("census[0] = %+v", r.Census[0])
	}
	if !r.Census[0].Divergent() || r.Census[1].Divergent() || r.DivergentPaths != 1 {
		t.Errorf("divergence wrong: %+v", r.Census)
	}
	if r.MinDepth != 1 || r.MaxDepth != 2 || r.MeanDepth != 1.5 {
		t.Errorf("depth stats = %+v", r)
	}
	// Largest group 2, mean group 4/3 → imbalance 1.5.
	if math.Abs(r.ReplicaImbalance-1.5) > 1e-9 {
		t.Errorf("imbalance = %v, want 1.5", r.ReplicaImbalance)
	}
	// Probes: 5 live, 1 dead → p̂ = 5/6.
	if r.ProbedPeers != 4 || r.ProbesLive != 5 || r.ProbesDead != 1 {
		t.Errorf("probe tallies = %+v", r)
	}
	if math.Abs(r.ProbeLiveness-5.0/6) > 1e-9 || math.Abs(r.StaleRefRate-1.0/6) > 1e-9 {
		t.Errorf("liveness = %v stale = %v", r.ProbeLiveness, r.StaleRefRate)
	}
	// Peer 2's level 2 saw no live reference → 3 of 4 available.
	if math.Abs(r.MeasuredAvailability-0.75) > 1e-9 {
		t.Errorf("measured availability = %v, want 0.75", r.MeasuredAvailability)
	}
	// Predicted: single-ref levels at p̂ → depth-1 peers p̂, depth-2 peers p̂².
	p := 5.0 / 6
	wantPred := (p + p + p*p + p*p) / 4
	if math.Abs(r.PredictedAvailability-wantPred) > 1e-9 {
		t.Errorf("predicted availability = %v, want %v", r.PredictedAvailability, wantPred)
	}
	// Eq. 3 at the typical shape: refmax 1, k = round(1.5) = 2.
	if r.Eq3RefMax != 1 || r.Eq3Depth != 2 ||
		math.Abs(r.Eq3Availability-SuccessProbability(p, 1, 2)) > 1e-9 {
		t.Errorf("Eq3 = %+v", r)
	}
	if !r.AvailabilityAgrees(0.1) {
		t.Errorf("measured %v vs predicted %v should agree within 0.1",
			r.MeasuredAvailability, r.PredictedAvailability)
	}
}

func TestAnalyzeGridNoProbes(t *testing.T) {
	r := AnalyzeGrid([]health.Digest{digest(0, "0", 0, 0, []int{1}, nil)})
	if r.ProbeLiveness != -1 || r.MeasuredAvailability != -1 || r.PredictedAvailability != -1 {
		t.Errorf("probe-free report carries probe stats: %+v", r)
	}
	if r.AvailabilityAgrees(1) {
		t.Error("probe-free report claims availability agreement")
	}
	empty := AnalyzeGrid(nil)
	if empty.Peers != 0 || empty.AvailabilityAgrees(1) {
		t.Errorf("empty report = %+v", empty)
	}
}

func TestRenderGridReport(t *testing.T) {
	digests := []health.Digest{
		digest(0, "0", 5, 0xaa, []int{1}, []health.LevelProbe{{Level: 1, Live: 3, Dead: 1}}),
		digest(1, "1", 5, 0xaa, []int{1}, nil),
	}
	var sb strings.Builder
	RenderGridReport(&sb, AnalyzeGrid(digests))
	out := sb.String()
	for _, want := range []string{"peers          2 over 2 paths", "depth", "balance",
		"liveness 0.75", "availability", "Eq.3", "census", "divergence     0 of 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report %q missing %q", out, want)
		}
	}

	var empty strings.Builder
	RenderGridReport(&empty, AnalyzeGrid(nil))
	if !strings.Contains(empty.String(), "0 over 0 paths") {
		t.Errorf("empty render = %q", empty.String())
	}
}

// TestEq3AgainstMeasuredProbes is the end-to-end availability check: build
// a 64-peer community, knock a third of it offline, probe every reference
// from the survivors, and require the measured full-depth routing success
// to agree with the structural equation-(3) prediction.
func TestEq3AgainstMeasuredProbes(t *testing.T) {
	cfg := core.Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2}
	res, err := sim.Build(sim.Options{N: 64, Config: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("construction did not converge")
	}

	tr := node.NewLocalTransport()
	nodes := make([]*node.Node, 0, 64)
	for _, p := range res.Dir.All() {
		n := node.New(p.Addr(), cfg, tr, int64(p.Addr()))
		if err := n.Peer().Restore(p.Snapshot()); err != nil {
			t.Fatal(err)
		}
		tr.Register(n)
		nodes = append(nodes, n)
	}
	rng := rand.New(rand.NewSource(5))
	for _, n := range nodes {
		if rng.Float64() < 0.3 {
			n.SetOnline(false)
		}
	}

	var digests []health.Digest
	for i, n := range nodes {
		if !n.Online() {
			continue
		}
		node.NewProber(n, time.Second, 1000, int64(i)).Tick()
		digests = append(digests, n.Digest())
	}
	if len(digests) < 32 {
		t.Fatalf("only %d peers stayed online", len(digests))
	}

	r := AnalyzeGrid(digests)
	if r.ProbeLiveness < 0.5 || r.ProbeLiveness > 0.9 {
		t.Fatalf("measured liveness %v implausible for 30%% churn", r.ProbeLiveness)
	}
	if !r.AvailabilityAgrees(0.15) {
		t.Fatalf("measured availability %.3f disagrees with Eq.3 prediction %.3f",
			r.MeasuredAvailability, r.PredictedAvailability)
	}
	if r.Eq3Availability < 0 || r.Eq3Availability > 1 {
		t.Fatalf("closed-form Eq.3 = %v", r.Eq3Availability)
	}
}
