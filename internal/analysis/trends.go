package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// statPoolWait is the pooled-transport acquire-wait histogram trended in
// watch views alongside the RED series.
const statPoolWait = "pgrid_pool_acquire_wait_ns"

// TrendSeries is one sparkline-able time series federated from the
// cluster's history rings: per-interval values, oldest first, aligned on
// the newest interval (peers whose rings hold fewer points contribute to
// the recent intervals only).
type TrendSeries struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit"`
	Points []float64 `json:"points"`
}

// TrendFinding is one detected anomaly in the windowed data.
type TrendFinding struct {
	// Kind is one of "latency-regression", "error-spike", "drop-burst",
	// "counter-reset".
	Kind   string    `json:"kind"`
	Peer   addr.Addr `json:"peer"` // addr.Nil for cluster-wide findings
	Detail string    `json:"detail"`
}

// TrendReport is the windowed view of a community: the trend series
// behind `pgridctl watch`, anomaly findings, and the latency objectives
// re-verdicted over real windows (the history delta) instead of
// whole-of-process cumulative counts.
type TrendReport struct {
	Peers      int            `json:"peers"`
	Span       time.Duration  `json:"span_ns"`
	IntervalNS int64          `json:"interval_ns"`
	Resets     int            `json:"resets"`
	Series     []TrendSeries  `json:"series"`
	Findings   []TrendFinding `json:"findings,omitempty"`
	// SLO holds one verdict per objective, evaluated against the served
	// histograms' windowed delta — what actually happened during the
	// dump's span, immune to pre-window history.
	SLO []slo.Status `json:"slo,omitempty"`
}

// servedDelta returns the per-interval delta of every served-family
// histogram in a dump merged together, oldest interval first. Reset
// intervals use the post-restart cumulative state (never negative).
func servedDelta(d telemetry.HistoryDump) []telemetry.QHistSnapshot {
	if len(d.Points) < 2 {
		return nil
	}
	mergedAt := func(s telemetry.MetricsSnapshot) telemetry.QHistSnapshot {
		out := telemetry.QHistSnapshot{}
		for _, h := range s.Hists {
			if family, _ := splitHistName(h.Name); family != servedHistFamily {
				continue
			}
			if m, err := telemetry.MergeQHist(out, h); err == nil {
				out = m
			}
		}
		return out
	}
	out := make([]telemetry.QHistSnapshot, 0, len(d.Points)-1)
	prev := mergedAt(d.Points[0].Snap)
	for i := 1; i < len(d.Points); i++ {
		cur := mergedAt(d.Points[i].Snap)
		delta, _, err := telemetry.SubtractQHist(cur, prev)
		if err != nil {
			delta = cur
		}
		out = append(out, delta)
		prev = cur
	}
	return out
}

// alignSum folds per-peer interval series into one cluster series,
// aligned on the newest interval: series[len-1] lines up across peers
// (samplers share a cadence), shorter rings simply miss the older
// columns.
func alignSum(per [][]float64) []float64 {
	n := 0
	for _, s := range per {
		if len(s) > n {
			n = len(s)
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for _, s := range per {
		off := n - len(s)
		for i, v := range s {
			out[off+i] += v
		}
	}
	return out
}

// AnalyzeTrends folds per-peer history dumps (from
// node.CollectClusterHistory, or a single node's /debug/history) into
// the windowed trend report: cluster rate/error/drop/latency series,
// anomaly findings, and the objectives evaluated over the dump's real
// window. The companion of AnalyzeCluster for the time axis.
func AnalyzeTrends(dumps map[addr.Addr]telemetry.HistoryDump, objectives []slo.Objective) TrendReport {
	r := TrendReport{Peers: len(dumps)}

	addrs := make([]addr.Addr, 0, len(dumps))
	for a := range dumps {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var rates, errRates, dropRates, p99s, poolP99s [][]float64
	perPeerDeltas := make(map[addr.Addr][]telemetry.QHistSnapshot, len(dumps))
	for _, a := range addrs {
		d := dumps[a]
		if d.IntervalNS > r.IntervalNS {
			r.IntervalNS = d.IntervalNS
		}
		if s := d.Span(); s > r.Span {
			r.Span = s
		}
		if n := d.Resets(); n > 0 {
			r.Resets += n
			r.Findings = append(r.Findings, TrendFinding{Kind: "counter-reset", Peer: a,
				Detail: fmt.Sprintf("%d restart(s) inside the window: rates count post-restart values only", n)})
		}
		rates = append(rates, d.RateSeries(statServedTotal))
		errRates = append(errRates, d.RateSeries(statServedErrors))
		dropRates = append(dropRates, alignSum([][]float64{
			d.RateSeries(statDropped), d.RateSeries(statEventsDropped)}))
		poolP99s = append(poolP99s, d.QuantileSeries(statPoolWait, 0.99))

		deltas := servedDelta(d)
		perPeerDeltas[a] = deltas
		peerP99 := make([]float64, len(deltas))
		for i, h := range deltas {
			if h.Count > 0 {
				peerP99[i] = float64(h.Quantile(0.99))
			}
		}
		p99s = append(p99s, peerP99)
	}

	// The cluster p99 series merges the per-interval delta histograms
	// across peers before taking the quantile — quantiles of the union
	// stream, never averages of quantiles.
	nIntervals := 0
	for _, d := range perPeerDeltas {
		if len(d) > nIntervals {
			nIntervals = len(d)
		}
	}
	clusterP99 := make([]float64, nIntervals)
	for i := 0; i < nIntervals; i++ {
		merged := telemetry.QHistSnapshot{}
		for _, deltas := range perPeerDeltas {
			j := i - (nIntervals - len(deltas))
			if j < 0 {
				continue
			}
			if m, err := telemetry.MergeQHist(merged, deltas[j]); err == nil {
				merged = m
			}
		}
		if merged.Count > 0 {
			clusterP99[i] = float64(merged.Quantile(0.99))
		}
	}

	rate := alignSum(rates)
	errRate := alignSum(errRates)
	drops := alignSum(dropRates)
	r.Series = []TrendSeries{
		{Name: "rpc rate", Unit: "/s", Points: rate},
		{Name: "error rate", Unit: "/s", Points: errRate},
		{Name: "served p99", Unit: "ns", Points: clusterP99},
		{Name: "pool wait p99", Unit: "ns", Points: alignSum(poolP99s)},
		{Name: "drops", Unit: "/s", Points: drops},
	}

	r.Findings = append(r.Findings, trendFindings(clusterP99, errRate, drops)...)

	// Objectives over the real window: newest cumulative state minus the
	// dump baseline, merged across peers. A peer that restarted inside the
	// window contributes its post-restart state — counted, not negative.
	for _, o := range objectives {
		merged := telemetry.QHistSnapshot{}
		for _, a := range addrs {
			wh, _, ok := dumps[a].WindowHist(o.HistName(), 0)
			if !ok {
				continue
			}
			if m, err := telemetry.MergeQHist(merged, wh); err == nil {
				merged = m
			}
		}
		r.SLO = append(r.SLO, slo.Eval(o, merged))
	}
	return r
}

// trendFindings scans the cluster series for anomalies. The halves
// comparison needs at least 4 intervals; with fewer the window is too
// short to call anything a trend.
func trendFindings(p99, errRate, drops []float64) []TrendFinding {
	var out []TrendFinding
	if len(p99) >= 4 {
		firstMean, firstN := meanNonZero(p99[:len(p99)/2])
		secondMean, secondN := meanNonZero(p99[len(p99)/2:])
		if firstN > 0 && secondN > 0 && secondMean >= 2*firstMean {
			out = append(out, TrendFinding{Kind: "latency-regression", Peer: addr.Nil,
				Detail: fmt.Sprintf("served p99 rose from %s to %s between window halves (%.1fx)",
					fmtNS(int64(firstMean)), fmtNS(int64(secondMean)), secondMean/firstMean)})
		}
	}
	if len(errRate) >= 2 {
		base, _ := meanNonZero(errRate[:len(errRate)/2])
		peak := 0.0
		for _, v := range errRate[len(errRate)/2:] {
			if v > peak {
				peak = v
			}
		}
		if peak > 0 && (base == 0 || peak >= 3*base) {
			out = append(out, TrendFinding{Kind: "error-spike", Peer: addr.Nil,
				Detail: fmt.Sprintf("error rate peaked at %.2f/s in the recent half (earlier mean %.2f/s)", peak, base)})
		}
	}
	peak, at := 0.0, -1
	for i, v := range drops {
		if v > peak {
			peak, at = v, i
		}
	}
	if peak > 0 {
		out = append(out, TrendFinding{Kind: "drop-burst", Peer: addr.Nil,
			Detail: fmt.Sprintf("load-shed/event drops peaked at %.2f/s (interval %d of %d)", peak, at+1, len(drops))})
	}
	return out
}

func meanNonZero(vs []float64) (mean float64, n int) {
	sum := 0.0
	for _, v := range vs {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// sparkChars are the eight levels of a terminal sparkline.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height terminal graph, scaled to
// the series' own maximum (an all-zero series renders as a flat floor).
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vs {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkChars)-1))
			if i >= len(sparkChars) {
				i = len(sparkChars) - 1
			}
		}
		b.WriteRune(sparkChars[i])
	}
	return b.String()
}

// sparkWidth caps rendered sparklines; longer series show their newest
// columns (the text view is a live tail, not an archive).
const sparkWidth = 60

// RenderTrendReport writes the report as the text view behind
// `pgridctl watch` and /debug/history?format=text.
func RenderTrendReport(w io.Writer, r TrendReport) {
	fmt.Fprintf(w, "trends         %d peers, %s of history at %s resolution",
		r.Peers, r.Span.Round(time.Millisecond), time.Duration(r.IntervalNS))
	if r.Resets > 0 {
		fmt.Fprintf(w, ", %d restart(s)", r.Resets)
	}
	fmt.Fprintf(w, "\n")
	for _, s := range r.Series {
		pts := s.Points
		if len(pts) > sparkWidth {
			pts = pts[len(pts)-sparkWidth:]
		}
		last := 0.0
		if len(s.Points) > 0 {
			last = s.Points[len(s.Points)-1]
		}
		cur := fmt.Sprintf("%.2f%s", last, s.Unit)
		if s.Unit == "ns" {
			cur = fmtNS(int64(last))
		}
		fmt.Fprintf(w, "  %-14s %s  %s\n", s.Name, Sparkline(pts), cur)
	}
	for _, f := range r.Findings {
		peer := "cluster"
		if f.Peer != addr.Nil {
			peer = fmt.Sprintf("peer %d", int(f.Peer))
		}
		fmt.Fprintf(w, "finding        %-18s %s: %s\n", f.Kind, peer, f.Detail)
	}
	for _, s := range r.SLO {
		verdict := "ok"
		if s.Breached {
			verdict = "BREACHED"
		}
		wb := s.Windows[0]
		fmt.Fprintf(w, "slo            %-22s windowed burn %.2f (%d of %d slow)  %s\n",
			s.Spec, wb.Burn, wb.Total-wb.Good, wb.Total, verdict)
	}
}
