// Package analysis implements the closed-form model of Section 4 of the
// P-Grid paper — the sizing equations (1)–(2), the search success
// probability (3), the Gnutella sizing example — and the Section 6
// asymptotic cost comparison between a P-Grid and centralized replicated
// servers. The simulator validates these formulas; the formulas size real
// deployments.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the deployment parameters of the Section 4 model.
type Params struct {
	// DGlobal is the total number of data objects in the network
	// (d_global = N · d_peer).
	DGlobal float64
	// RefBytes is the storage cost r of one reference in bytes.
	RefBytes float64
	// IndexBytes is the space s_peer each peer donates to indexing.
	IndexBytes float64
	// OnlineProb is the probability p that a peer is online.
	OnlineProb float64
	// RefMax is the reference multiplicity refmax.
	RefMax int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	var errs []error
	if p.DGlobal <= 0 {
		errs = append(errs, fmt.Errorf("DGlobal = %g, must be > 0", p.DGlobal))
	}
	if p.RefBytes <= 0 {
		errs = append(errs, fmt.Errorf("RefBytes = %g, must be > 0", p.RefBytes))
	}
	if p.IndexBytes <= 0 {
		errs = append(errs, fmt.Errorf("IndexBytes = %g, must be > 0", p.IndexBytes))
	}
	if p.OnlineProb <= 0 || p.OnlineProb > 1 {
		errs = append(errs, fmt.Errorf("OnlineProb = %g, must be in (0,1]", p.OnlineProb))
	}
	if p.RefMax < 1 {
		errs = append(errs, fmt.Errorf("RefMax = %d, must be >= 1", p.RefMax))
	}
	return errors.Join(errs...)
}

// IPeer returns i_peer = s_peer / r, the number of references a peer can
// store in its donated index space.
func (p Params) IPeer() float64 { return p.IndexBytes / p.RefBytes }

// KeyLength returns the minimal key length k satisfying inequality (1),
// k ≥ log2(d_global / i_leaf), for a given leaf index capacity.
func KeyLength(dGlobal, iLeaf float64) int {
	if dGlobal <= 0 || iLeaf <= 0 {
		panic(fmt.Sprintf("analysis: KeyLength(%g, %g) needs positive arguments", dGlobal, iLeaf))
	}
	k := math.Log2(dGlobal / iLeaf)
	if k <= 0 {
		return 0
	}
	return int(math.Ceil(k - 1e-9))
}

// StorageOK reports whether i_leaf + k·refmax ≤ i_peer, the per-peer
// storage constraint of Section 4.
func (p Params) StorageOK(iLeaf float64, k int) bool {
	return iLeaf+float64(k*p.RefMax) <= p.IPeer()+1e-9
}

// MinPeers returns the smallest community size N satisfying inequality (2),
// (d_global / i_leaf) · refmax ≤ N: enough peers that every leaf interval
// is supported by at least refmax replicas.
func (p Params) MinPeers(iLeaf float64) int {
	return int(math.Ceil(p.DGlobal / iLeaf * float64(p.RefMax)))
}

// SuccessProbability returns equation (3): the probability that a search
// over a depth-k grid succeeds when every peer is online with probability
// p and refmax alternative references exist per level,
//
//	(1 - (1-p)^refmax)^k.
func SuccessProbability(onlineProb float64, refmax, k int) float64 {
	perLevel := 1 - math.Pow(1-onlineProb, float64(refmax))
	return math.Pow(perLevel, float64(k))
}

// Plan is a feasible P-Grid sizing derived from Params.
type Plan struct {
	// ILeaf is the number of leaf data references per peer.
	ILeaf float64
	// KeyLength is the grid depth k.
	KeyLength int
	// MinPeers is the minimal community size N.
	MinPeers int
	// Success is the search success probability at these parameters.
	Success float64
	// StorageBytes is the per-peer index storage actually used.
	StorageBytes float64
}

// Size derives a sizing plan: it splits the peer's index budget between
// leaf references and routing references exactly as the Section 4 example
// does (reserving k·refmax slots for routing and the rest for the leaf
// index), iterating because k itself depends on the split.
func Size(p Params) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("analysis: %w", err)
	}
	iPeer := p.IPeer()
	// Start from the optimistic assumption that the whole budget is leaf
	// index, then give up routing slots until the split is consistent.
	iLeaf := iPeer
	var k int
	for i := 0; i < 64; i++ {
		k = KeyLength(p.DGlobal, iLeaf)
		next := iPeer - float64(k*p.RefMax)
		if next <= 0 {
			return Plan{}, fmt.Errorf("analysis: index budget %g too small for depth %d with refmax %d",
				iPeer, k, p.RefMax)
		}
		if next == iLeaf {
			break
		}
		iLeaf = next
	}
	return Plan{
		ILeaf:        iLeaf,
		KeyLength:    k,
		MinPeers:     p.MinPeers(iLeaf),
		Success:      SuccessProbability(p.OnlineProb, p.RefMax, k),
		StorageBytes: (iLeaf + float64(k*p.RefMax)) * p.RefBytes,
	}, nil
}

// GnutellaExample returns the parameters of the worked example in
// Section 4: 10^7 data objects, 10-byte references, 10^5 bytes of index
// space per peer, 30 % online probability, refmax 20. The paper derives
// k = 10, ≥ 99 % search success, and a minimal community of 20 409 peers.
func GnutellaExample() Params {
	return Params{
		DGlobal:    1e7,
		RefBytes:   10,
		IndexBytes: 1e5,
		OnlineProb: 0.3,
		RefMax:     20,
	}
}
