package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// trendDump builds a history dump by replaying per-interval served-query
// observations through one instrument set, snapshotting after each
// interval. errsAt marks which intervals observe errors.
func trendDump(t *testing.T, node int, interval time.Duration, perInterval [][]time.Duration, errsAt map[int]int) telemetry.HistoryDump {
	t.Helper()
	tel := telemetry.New(node)
	d := telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion, IntervalNS: int64(interval)}
	at := int64(1_000_000_000)
	d.Points = append(d.Points, telemetry.HistoryPoint{AtNS: at, Snap: tel.MetricsSnapshot()})
	for i, durs := range perInterval {
		nErr := errsAt[i]
		for j, dur := range durs {
			tel.ServedRPC("query")
			tel.ServedRPCDone("query", dur, j < nErr)
		}
		at += int64(interval)
		d.Points = append(d.Points, telemetry.HistoryPoint{AtNS: at, Snap: tel.MetricsSnapshot()})
	}
	return d
}

func TestAnalyzeTrendsSeriesAndRegression(t *testing.T) {
	const iv = time.Second
	// Four intervals: fast, fast, slow, slow — a 10x p99 regression
	// between window halves, at a steady 2 rpc/s.
	fast := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	slow := []time.Duration{20 * time.Millisecond, 30 * time.Millisecond}
	dumps := map[addr.Addr]telemetry.HistoryDump{
		0: trendDump(t, 0, iv, [][]time.Duration{fast, fast, slow, slow}, nil),
	}
	r := AnalyzeTrends(dumps, nil)
	if r.Peers != 1 || r.IntervalNS != int64(iv) || r.Span != 4*iv || r.Resets != 0 {
		t.Fatalf("header = %+v", r)
	}
	byName := map[string]TrendSeries{}
	for _, s := range r.Series {
		byName[s.Name] = s
	}
	rate := byName["rpc rate"]
	if len(rate.Points) != 4 {
		t.Fatalf("rate series = %v", rate.Points)
	}
	for i, v := range rate.Points {
		if v != 2 {
			t.Errorf("rate[%d] = %v, want 2/s", i, v)
		}
	}
	p99 := byName["served p99"]
	if len(p99.Points) != 4 || p99.Points[0] <= 0 {
		t.Fatalf("p99 series = %v", p99.Points)
	}
	if p99.Points[3] < 4*p99.Points[0] {
		t.Fatalf("p99 series did not register the slowdown: %v", p99.Points)
	}
	var regression bool
	for _, f := range r.Findings {
		if f.Kind == "latency-regression" && f.Peer == addr.Nil {
			regression = true
		}
	}
	if !regression {
		t.Fatalf("no latency-regression finding: %+v", r.Findings)
	}
}

func TestAnalyzeTrendsErrorSpikeAndSLO(t *testing.T) {
	const iv = time.Second
	ok := []time.Duration{time.Millisecond, time.Millisecond}
	// The last interval turns every reply into a 50ms error.
	bad := []time.Duration{50 * time.Millisecond, 51 * time.Millisecond}
	dumps := map[addr.Addr]telemetry.HistoryDump{
		3: trendDump(t, 3, iv, [][]time.Duration{ok, ok, ok, bad}, map[int]int{3: 2}),
	}
	o, err := slo.Parse("query:p75:5ms")
	if err != nil {
		t.Fatal(err)
	}
	r := AnalyzeTrends(dumps, []slo.Objective{o})
	var spike bool
	for _, f := range r.Findings {
		if f.Kind == "error-spike" {
			spike = true
		}
	}
	if !spike {
		t.Fatalf("no error-spike finding: %+v", r.Findings)
	}
	// 2 of 8 over threshold = bad fraction 0.25, budget 0.25 → burn 1.0:
	// breached on the real window.
	if len(r.SLO) != 1 || !r.SLO[0].Breached {
		t.Fatalf("windowed SLO = %+v, want breached", r.SLO)
	}
	wb := r.SLO[0].Windows[0]
	if wb.Total != 8 || wb.Total-wb.Good != 2 {
		t.Fatalf("windowed burn counts = %+v, want 2 of 8 slow", wb)
	}
}

func TestAnalyzeTrendsResetAndMultiPeerAlignment(t *testing.T) {
	const iv = time.Second
	steady := []time.Duration{time.Millisecond}
	long := trendDump(t, 0, iv, [][]time.Duration{steady, steady, steady, steady}, nil)
	short := trendDump(t, 1, iv, [][]time.Duration{steady, steady}, nil)
	// Peer 2 restarts between its two points: new epoch, counters rewound.
	pre := trendDump(t, 2, iv, [][]time.Duration{{time.Millisecond, time.Millisecond, time.Millisecond}}, nil)
	post := trendDump(t, 22, iv, [][]time.Duration{steady}, nil)
	restarted := telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion, IntervalNS: int64(iv),
		Points: []telemetry.HistoryPoint{
			pre.Points[len(pre.Points)-1],
			{AtNS: pre.Points[len(pre.Points)-1].AtNS + int64(iv), Snap: post.Points[len(post.Points)-1].Snap},
		}}

	r := AnalyzeTrends(map[addr.Addr]telemetry.HistoryDump{
		0: long, 1: short, 2: restarted,
	}, nil)
	if r.Resets != 1 {
		t.Fatalf("resets = %d, want 1 from the restarted peer", r.Resets)
	}
	var resetFinding bool
	for _, f := range r.Findings {
		if f.Kind == "counter-reset" && f.Peer == 2 {
			resetFinding = true
		}
	}
	if !resetFinding {
		t.Fatalf("no counter-reset finding for peer 2: %+v", r.Findings)
	}
	var rate TrendSeries
	for _, s := range r.Series {
		if s.Name == "rpc rate" {
			rate = s
		}
	}
	// Alignment on the newest interval: 4 columns from the longest ring;
	// the short ring contributes to the last 2, the restarted peer to the
	// last 1 — and its rewound counter adds its post-restart absolute
	// value, never a negative rate.
	if len(rate.Points) != 4 {
		t.Fatalf("aligned rate = %v, want 4 columns", rate.Points)
	}
	for i, v := range rate.Points {
		if v < 0 {
			t.Fatalf("rate[%d] = %v: a restart must never read negative", i, v)
		}
	}
	if rate.Points[0] != 1 || rate.Points[1] != 1 {
		t.Errorf("oldest columns = %v, want the long ring alone (1/s)", rate.Points[:2])
	}
	if rate.Points[3] <= rate.Points[0] {
		t.Errorf("newest column %v should stack all three peers (got series %v)", rate.Points[3], rate.Points)
	}
}

func TestRenderTrendReportAndSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1, 2, 4}); got != "▁▂▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}

	const iv = time.Second
	fast := []time.Duration{time.Millisecond}
	slow := []time.Duration{40 * time.Millisecond}
	dumps := map[addr.Addr]telemetry.HistoryDump{
		0: trendDump(t, 0, iv, [][]time.Duration{fast, fast, slow, slow}, nil),
	}
	o, _ := slo.Parse("query:p99:5ms")
	r := AnalyzeTrends(dumps, []slo.Objective{o})
	var buf bytes.Buffer
	RenderTrendReport(&buf, r)
	out := buf.String()
	for _, want := range []string{"trends", "1 peers", "rpc rate", "served p99", "drops",
		"latency-regression", "query:p99:5ms", "▁"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}
