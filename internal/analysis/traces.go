package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pgrid/internal/trace"
)

// LevelCost aggregates the spans observed at one resolution level: how
// often searches arrived at a hop having already resolved Level key
// bits, how often those hops had to backtrack, and how long they took.
type LevelCost struct {
	// Level is the absolute number of key bits resolved on arrival.
	Level int
	// Visits is the number of spans recorded at this level.
	Visits int
	// Backtracks is the number of those spans that abandoned at least
	// one contacted subtree.
	Backtracks int
	// MeanLatencyNS is the mean wall latency of the level's spans
	// (0 for simulator traces, which carry no timing).
	MeanLatencyNS float64
}

// TraceReport is the aggregate view over a set of collected traces —
// the same report for simulator routes (core.Trace.ToTrace) and routes
// scraped off real nodes (KindTraces), so the two are directly
// comparable.
type TraceReport struct {
	// Traces is the number of traces aggregated; Found how many of them
	// reached a responsible peer.
	Traces int
	Found  int
	// MeanHops, P50Hops, P95Hops and MaxHops describe the distribution
	// of per-search message counts (successful peer contacts).
	MeanHops float64
	P50Hops  int
	P95Hops  int
	MaxHops  int
	// MeanBacktracks is the mean number of abandoned subtrees per search.
	MeanBacktracks float64
	// PredictedHops is the paper's O(log n) search-cost expectation,
	// log2(nPeers): greedy prefix routing resolves about one bit per hop
	// over a grid whose depth is the binary log of the community size.
	PredictedHops float64
	// PerLevel breaks the spans down by resolution level, ascending.
	PerLevel []LevelCost
}

// AnalyzeTraces aggregates collected traces into hop/backtrack/latency
// distributions and the per-level span breakdown, with the O(log n)
// prediction for a community of nPeers attached for comparison.
func AnalyzeTraces(traces []trace.Trace, nPeers int) TraceReport {
	r := TraceReport{Traces: len(traces)}
	if nPeers > 0 {
		r.PredictedHops = math.Log2(float64(nPeers))
	}
	if len(traces) == 0 {
		return r
	}

	hops := make([]int, 0, len(traces))
	backtracks := 0
	levels := map[int]*LevelCost{}
	for _, t := range traces {
		if t.Found {
			r.Found++
		}
		hops = append(hops, t.Messages)
		backtracks += t.Backtracks
		for _, s := range t.Spans {
			lc := levels[s.Level]
			if lc == nil {
				lc = &LevelCost{Level: s.Level}
				levels[s.Level] = lc
			}
			lc.Visits++
			if s.Backtracked {
				lc.Backtracks++
			}
			lc.MeanLatencyNS += float64(s.LatencyNS) // sum for now, divided below
		}
	}

	sort.Ints(hops)
	sum := 0
	for _, h := range hops {
		sum += h
	}
	r.MeanHops = float64(sum) / float64(len(hops))
	r.P50Hops = hops[len(hops)/2]
	r.P95Hops = hops[(len(hops)*95)/100]
	r.MaxHops = hops[len(hops)-1]
	r.MeanBacktracks = float64(backtracks) / float64(len(traces))

	for _, lc := range levels {
		lc.MeanLatencyNS /= float64(lc.Visits)
		r.PerLevel = append(r.PerLevel, *lc)
	}
	sort.Slice(r.PerLevel, func(i, j int) bool { return r.PerLevel[i].Level < r.PerLevel[j].Level })
	return r
}

// WithinLogN reports whether the measured mean hop count stays within a
// (1+tol) factor of the O(log n) prediction — the paper's Section 5.2
// claim, checked against live data. It fails on an empty report.
func (r TraceReport) WithinLogN(tol float64) bool {
	if r.Traces == 0 || r.PredictedHops <= 0 {
		return false
	}
	return r.MeanHops <= r.PredictedHops*(1+tol)
}

// RenderTraceReport writes the report as the text table pgridsim and
// pgridctl print.
func RenderTraceReport(w io.Writer, r TraceReport) {
	fmt.Fprintf(w, "traces         %d (%d found)\n", r.Traces, r.Found)
	fmt.Fprintf(w, "hops           mean %.2f, p50 %d, p95 %d, max %d\n",
		r.MeanHops, r.P50Hops, r.P95Hops, r.MaxHops)
	fmt.Fprintf(w, "backtracks     mean %.2f\n", r.MeanBacktracks)
	if r.PredictedHops > 0 {
		fmt.Fprintf(w, "log2(n) bound  %.2f (measured/predicted %.2f)\n",
			r.PredictedHops, r.MeanHops/r.PredictedHops)
	}
	if len(r.PerLevel) > 0 {
		fmt.Fprintf(w, "per level      %-6s %8s %10s %12s\n", "level", "visits", "backtracks", "latency")
		for _, lc := range r.PerLevel {
			fmt.Fprintf(w, "               %-6d %8d %10d %12s\n",
				lc.Level, lc.Visits, lc.Backtracks, fmtLatency(lc.MeanLatencyNS))
		}
	}
}

func fmtLatency(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.2fms", ns/1e6)
	}
}
