package analysis

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// snapFor builds a metrics snapshot whose served-query histogram observed
// the given durations, with nErr of them marked as error replies.
func snapFor(t *testing.T, node int, nErr int, durs ...time.Duration) telemetry.MetricsSnapshot {
	t.Helper()
	tel := telemetry.New(node)
	for i, d := range durs {
		tel.ServedRPC("query")
		tel.ServedRPCDone("query", d, i < nErr)
	}
	return tel.MetricsSnapshot()
}

func TestSplitHistName(t *testing.T) {
	cases := []struct{ full, family, kind string }{
		{`pgrid_rpc_served_latency_ns{kind="query"}`, "pgrid_rpc_served_latency_ns", "query"},
		{`pgrid_rpc_kind_latency_ns{kind="exchange"}`, "pgrid_rpc_kind_latency_ns", "exchange"},
		{"pgrid_pool_acquire_wait_ns", "pgrid_pool_acquire_wait_ns", ""},
		{`weird{other="x"}`, "weird", ""},
	}
	for _, c := range cases {
		family, kind := splitHistName(c.full)
		if family != c.family || kind != c.kind {
			t.Errorf("splitHistName(%q) = %q, %q", c.full, family, kind)
		}
	}
}

func TestAnalyzeClusterMergesQuantiles(t *testing.T) {
	// Three peers with disjoint latency streams; the merged quantiles must
	// equal those of one histogram fed the union.
	streams := [][]time.Duration{
		{time.Millisecond, 2 * time.Millisecond},
		{10 * time.Millisecond, 11 * time.Millisecond, 12 * time.Millisecond},
		{400 * time.Millisecond},
	}
	union := telemetry.New(99)
	snaps := make(map[addr.Addr]telemetry.MetricsSnapshot)
	for i, durs := range streams {
		snaps[addr.Addr(i)] = snapFor(t, i, 0, durs...)
		for _, d := range durs {
			union.ServedRPCDone("query", d, false)
		}
	}

	r := AnalyzeCluster(snaps, nil, []addr.Addr{7}, nil)
	if r.Peers != 3 || len(r.Unreachable) != 1 || r.Unreachable[0] != 7 {
		t.Fatalf("report head = %+v", r)
	}
	if r.ServedTotal != 6 || r.ServedErrors != 0 {
		t.Fatalf("RED rollup: served %d errors %d", r.ServedTotal, r.ServedErrors)
	}
	var row *KindLatency
	for i := range r.Latency {
		if r.Latency[i].Scope == "served" && r.Latency[i].Kind == "query" {
			row = &r.Latency[i]
		}
	}
	if row == nil || row.Count != 6 {
		t.Fatalf("latency rows = %+v", r.Latency)
	}
	uh, _ := union.MetricsSnapshot().Hist(`pgrid_rpc_served_latency_ns{kind="query"}`)
	for i, p := range telemetry.QuantilePoints {
		want := uh.Quantile(p)
		got := []int64{row.P50, row.P95, row.P99, row.P999}[i]
		if got != want {
			t.Errorf("merged q%g = %d, union = %d", p, got, want)
		}
	}
}

func TestAnalyzeClusterTopKAndSLO(t *testing.T) {
	snaps := map[addr.Addr]telemetry.MetricsSnapshot{
		0: snapFor(t, 0, 0, time.Millisecond, time.Millisecond),
		1: snapFor(t, 1, 2, 2*time.Millisecond, 2*time.Millisecond, 2*time.Millisecond),
		2: snapFor(t, 2, 0, 800*time.Millisecond),
	}
	obj, err := slo.Parse("query:p90:5ms")
	if err != nil {
		t.Fatal(err)
	}
	r := AnalyzeCluster(snaps, nil, nil, []slo.Objective{obj})

	if len(r.TopSlow) == 0 || r.TopSlow[0].Addr != 2 {
		t.Fatalf("top slow = %+v, want peer 2 first", r.TopSlow)
	}
	if len(r.TopErr) != 1 || r.TopErr[0].Addr != 1 || r.TopErr[0].ServedErrors != 2 {
		t.Fatalf("top err = %+v, want only peer 1", r.TopErr)
	}

	// 1 of 6 over 5ms ≈ 16.7% bad against a 10% budget: breached.
	if len(r.SLO) != 1 || !r.SLO[0].Breached || r.SLO[0].Windows[0].Burn <= 1 {
		t.Fatalf("slo = %+v", r.SLO)
	}
	if !r.Breached() {
		t.Fatal("report must be breached")
	}

	// Loosen the threshold: the tail fits, verdict clears.
	obj.Threshold = time.Second
	r = AnalyzeCluster(snaps, nil, nil, []slo.Objective{obj})
	if r.SLO[0].Breached || r.Breached() {
		t.Fatalf("loose slo = %+v", r.SLO)
	}
}

// digestsWithLiveness fabricates a census where frac of the peers can
// route at full depth (each peer has one level, one reference).
func digestsWithLiveness(n int, liveFrac float64) []health.Digest {
	live := int(liveFrac * float64(n))
	out := make([]health.Digest, n)
	for i := range out {
		probe := health.LevelProbe{Level: 1, Live: 1}
		if i >= live {
			probe = health.LevelProbe{Level: 1, Dead: 1}
		}
		path := "0"
		if i%2 == 1 {
			path = "1"
		}
		out[i] = health.Digest{Addr: addr.Addr(i), Path: bitpath.MustParse(path),
			RefCounts: []int{1}, Liveness: []health.LevelProbe{probe}}
	}
	return out
}

func TestAnalyzeClusterAvailabilityObjective(t *testing.T) {
	// Fully live: measured 1.0, prediction high → within margin.
	r := AnalyzeCluster(nil, digestsWithLiveness(10, 1.0), nil, nil)
	if !r.AvailabilityKnown || r.AvailabilityBreached {
		t.Fatalf("healthy availability = %+v", r)
	}

	// Half the peers cannot route: measured 0.5 while the Eq.3 prediction
	// at p̂=0.5 with one reference per level is 0.5... make the structure
	// predict much better than measured by giving dead peers two refs.
	digests := digestsWithLiveness(10, 0.3)
	for i := range digests {
		digests[i].RefCounts = []int{4}
	}
	r = AnalyzeCluster(nil, digests, nil, nil)
	if !r.AvailabilityKnown {
		t.Fatal("availability should be known")
	}
	// p̂ = 0.3; Eq.3 with refmax 4 predicts 1-(0.7)^4 ≈ 0.76, measured 0.3.
	if !r.AvailabilityBreached {
		t.Fatalf("availability should breach: measured %.3f target %.3f",
			r.AvailabilityMeasured, r.AvailabilityTarget)
	}

	// No probe data: unknown, never a breach.
	r = AnalyzeCluster(nil, nil, nil, nil)
	if r.AvailabilityKnown || r.AvailabilityBreached {
		t.Fatalf("no-data availability = %+v", r)
	}
}

func TestRenderClusterReport(t *testing.T) {
	snaps := map[addr.Addr]telemetry.MetricsSnapshot{
		0: snapFor(t, 0, 1, time.Millisecond, 20*time.Millisecond),
		1: snapFor(t, 1, 0, 2*time.Millisecond),
	}
	obj, _ := slo.Parse("query:p90:5ms")
	r := AnalyzeCluster(snaps, digestsWithLiveness(4, 1.0), []addr.Addr{9}, []slo.Objective{obj})

	var buf bytes.Buffer
	RenderClusterReport(&buf, r)
	out := buf.String()
	for _, want := range []string{
		"2 peers collected", "1 unreachable (9)",
		fmt.Sprintf("schema v%d", telemetry.MetricsSchemaVersion),
		"served 3 (errors 1)",
		"latency", "served  query", "p99",
		"slo            query:p9:5ms",
		"availability measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Empty report renders the header and stops.
	buf.Reset()
	RenderClusterReport(&buf, AnalyzeCluster(nil, nil, nil, nil))
	if !strings.Contains(buf.String(), "0 peers collected") {
		t.Fatalf("empty render = %q", buf.String())
	}
}

func TestAnalyzeClusterSchemaSkew(t *testing.T) {
	s := snapFor(t, 0, 0, time.Millisecond)
	s.Schema = 99
	r := AnalyzeCluster(map[addr.Addr]telemetry.MetricsSnapshot{0: s}, nil, nil, nil)
	if r.SchemaSkew != 1 {
		t.Fatalf("schema skew = %d, want 1", r.SchemaSkew)
	}
}
