package analysis

import (
	"fmt"
	"math"
)

// The Section 6 closed-form cost comparison: "Assume D is the number of
// data items and N the number of peers. For storage we consider the number
// of references to be stored at the nodes ignoring local indexing cost.
// For querying we consider the number of messages exchanged assuming that
// each node creates a constant number of queries per time unit."
//
// These functions give the model's numbers; internal/experiments.Sec6
// measures the same quantities on live implementations of all three
// architectures.

// CostRow is the model's prediction at one scale.
type CostRow struct {
	N int // peers / clients
	D int // data items

	// PGridStorage is the per-peer routing-table size k·refmax = O(log D).
	PGridStorage float64
	// PGridQueryMsgs is the expected per-query message count ≈ depth/2
	// (each search resolves a uniformly random number of leading bits at
	// its entry peer) = O(log N).
	PGridQueryMsgs float64

	// ServerStorage is the central server's index size = D.
	ServerStorage float64
	// ServerLoad is the queries the server handles per time unit when each
	// of N clients issues one = N.
	ServerLoad float64

	// FloodMsgs is the flooding cost to reach the whole community over a
	// degree-d random overlay ≈ d·N edges crossed = O(N).
	FloodMsgs float64
}

// CompareCosts evaluates the model for a scale sweep. iLeaf and refmax
// parameterize the P-Grid (depth k = log2(D/iLeaf)); degree parameterizes
// the flooding overlay.
func CompareCosts(sizes []int, itemsPerPeer, iLeaf float64, refmax, degree int) ([]CostRow, error) {
	if iLeaf <= 0 || itemsPerPeer <= 0 || refmax < 1 || degree < 1 {
		return nil, fmt.Errorf("analysis: CompareCosts: bad parameters")
	}
	out := make([]CostRow, 0, len(sizes))
	for _, n := range sizes {
		d := float64(n) * itemsPerPeer
		k := float64(KeyLength(d, iLeaf))
		out = append(out, CostRow{
			N:              n,
			D:              int(d),
			PGridStorage:   k * float64(refmax),
			PGridQueryMsgs: math.Max(k/2, 0),
			ServerStorage:  d,
			ServerLoad:     float64(n),
			FloodMsgs:      float64(degree) * float64(n),
		})
	}
	return out, nil
}

// GrowthFactors summarizes how each cost grows from the first to the last
// row — the shape the Section 6 table asserts (P-Grid ≈ flat/logarithmic,
// server and flooding linear).
type GrowthFactors struct {
	Scale          float64 // N_last / N_first
	PGridStorage   float64
	PGridQueryMsgs float64
	ServerStorage  float64
	ServerLoad     float64
	FloodMsgs      float64
}

// Growth computes the growth factors over a sweep. It panics on fewer than
// two rows.
func Growth(rows []CostRow) GrowthFactors {
	if len(rows) < 2 {
		panic("analysis: Growth needs at least two rows")
	}
	f, l := rows[0], rows[len(rows)-1]
	div := func(a, b float64) float64 {
		if b == 0 {
			return math.Inf(1)
		}
		return a / b
	}
	return GrowthFactors{
		Scale:          div(float64(l.N), float64(f.N)),
		PGridStorage:   div(l.PGridStorage, f.PGridStorage),
		PGridQueryMsgs: div(l.PGridQueryMsgs, f.PGridQueryMsgs),
		ServerStorage:  div(l.ServerStorage, f.ServerStorage),
		ServerLoad:     div(l.ServerLoad, f.ServerLoad),
		FloodMsgs:      div(l.FloodMsgs, f.FloodMsgs),
	}
}
