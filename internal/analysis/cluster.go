package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/health"
	"pgrid/internal/slo"
	"pgrid/internal/telemetry"
)

// Histogram families federated into per-kind cluster quantiles, and the
// counters rolled into the cluster RED view. These names match what
// telemetry.Instruments registers on every node.
const (
	servedHistFamily = "pgrid_rpc_served_latency_ns"
	clientHistFamily = "pgrid_rpc_kind_latency_ns"

	statServedTotal   = "pgrid_rpc_served_total"
	statServedErrors  = "pgrid_rpc_served_errors_total"
	statClientTotal   = "pgrid_rpc_client_total"
	statClientErrors  = "pgrid_rpc_client_errors_total"
	statDropped       = "pgrid_rpc_dropped_total"
	statEventsDropped = "pgrid_events_dropped_total"
)

// TopK bounds the slowest/most-erroring peer lists in a cluster report.
const TopK = 5

// AvailabilityMargin is the slack the availability objective grants below
// the equation-(3) prediction: the cluster must measure within 5
// percentage points of what the Section 4 model says its structure should
// deliver.
const AvailabilityMargin = 0.05

// KindLatency is one merged latency row: every peer's histogram for this
// scope and kind summed bucket-wise, so the quantiles are exactly those of
// the union stream (not an average of per-peer quantiles, which would be
// meaningless).
type KindLatency struct {
	Scope string // "served" or "client"
	Kind  string
	Hist  telemetry.QHistSnapshot
	Count int64
	P50   int64
	P95   int64
	P99   int64
	P999  int64
}

// PeerSummary is the per-peer RED rollup feeding the top-K tables.
type PeerSummary struct {
	Addr         addr.Addr
	Served       int64
	ServedErrors int64
	ServedP99    int64 // p99 over the peer's served histograms, all kinds merged
}

// ClusterReport is the federated observability view of a crawled
// community: merged latency quantiles, request/error/drop rollups, the
// peers dragging the tail, and the SLO verdicts.
type ClusterReport struct {
	Peers       int // peers that contributed a metrics snapshot
	Unreachable []addr.Addr
	// Schema is the snapshot schema this report understands; SchemaSkew
	// counts peers whose snapshots reported a different version (their
	// stats still merge — the sparse encoding is forward-compatible at
	// the bucket level, and skew is surfaced rather than hidden).
	Schema     int
	SchemaSkew int

	// RED rollups summed across every collected peer.
	ServedTotal   int64
	ServedErrors  int64
	ClientTotal   int64
	ClientErrors  int64
	Dropped       int64
	EventsDropped int64

	// Latency holds the merged per-kind quantile rows, sorted by scope
	// then kind.
	Latency []KindLatency

	// TopSlow lists up to TopK peers by served p99, worst first; TopErr
	// up to TopK peers by served error count, worst first.
	TopSlow []PeerSummary
	TopErr  []PeerSummary

	// SLO holds one verdict per latency objective, evaluated against the
	// merged served histograms.
	SLO []slo.Status

	// Grid is the structural census from the digests gathered during the
	// same collection, and the availability objective derived from it:
	// measured availability must stay within AvailabilityMargin of the
	// equation-(3) prediction. AvailabilityKnown is false without probe
	// data (the objective then cannot breach).
	Grid                 GridReport
	AvailabilityKnown    bool
	AvailabilityTarget   float64
	AvailabilityMeasured float64
	AvailabilityBreached bool
}

// splitHistName splits a labeled histogram name into its family and kind
// label: `pgrid_rpc_served_latency_ns{kind="query"}` → (family, "query").
func splitHistName(full string) (family, kind string) {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return full, ""
	}
	family = full[:i]
	const pfx = `kind="`
	rest := full[i:]
	j := strings.Index(rest, pfx)
	if j < 0 {
		return family, ""
	}
	rest = rest[j+len(pfx):]
	if k := strings.IndexByte(rest, '"'); k >= 0 {
		return family, rest[:k]
	}
	return family, ""
}

// AnalyzeCluster folds per-peer metrics snapshots (from
// node.CollectCluster) into the cluster report. digests and unreachable
// ride along from the same crawl; objectives are the latency SLOs to
// verdict (nil means no latency SLO section).
func AnalyzeCluster(snaps map[addr.Addr]telemetry.MetricsSnapshot, digests []health.Digest,
	unreachable []addr.Addr, objectives []slo.Objective) ClusterReport {
	r := ClusterReport{
		Peers:       len(snaps),
		Unreachable: append([]addr.Addr(nil), unreachable...),
		Schema:      telemetry.MetricsSchemaVersion,
	}
	sort.Slice(r.Unreachable, func(i, j int) bool { return r.Unreachable[i] < r.Unreachable[j] })

	type key struct{ scope, kind string }
	merged := make(map[key]telemetry.QHistSnapshot)
	peers := make([]PeerSummary, 0, len(snaps))

	addrs := make([]addr.Addr, 0, len(snaps))
	for a := range snaps {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, a := range addrs {
		snap := snaps[a]
		if snap.Schema != telemetry.MetricsSchemaVersion {
			r.SchemaSkew++
		}
		ps := PeerSummary{Addr: a}
		if v, ok := snap.Stat(statServedTotal); ok {
			ps.Served = v
			r.ServedTotal += v
		}
		if v, ok := snap.Stat(statServedErrors); ok {
			ps.ServedErrors = v
			r.ServedErrors += v
		}
		if v, ok := snap.Stat(statClientTotal); ok {
			r.ClientTotal += v
		}
		if v, ok := snap.Stat(statClientErrors); ok {
			r.ClientErrors += v
		}
		if v, ok := snap.Stat(statDropped); ok {
			r.Dropped += v
		}
		if v, ok := snap.Stat(statEventsDropped); ok {
			r.EventsDropped += v
		}

		peerServed := telemetry.QHistSnapshot{}
		for _, h := range snap.Hists {
			family, kind := splitHistName(h.Name)
			var scope string
			switch family {
			case servedHistFamily:
				scope = "served"
			case clientHistFamily:
				scope = "client"
			default:
				continue // pool waits etc. stay node-local
			}
			k := key{scope, kind}
			m, err := telemetry.MergeQHist(merged[k], h)
			if err != nil {
				continue // geometry skew from a foreign build: skip, don't poison
			}
			merged[k] = m
			if scope == "served" {
				if ph, err := telemetry.MergeQHist(peerServed, h); err == nil {
					peerServed = ph
				}
			}
		}
		if peerServed.Count > 0 {
			ps.ServedP99 = peerServed.Quantile(0.99)
		}
		peers = append(peers, ps)
	}

	for k, h := range merged {
		if h.Count == 0 {
			continue
		}
		qs := h.Quantiles(telemetry.QuantilePoints...)
		r.Latency = append(r.Latency, KindLatency{Scope: k.scope, Kind: k.kind, Hist: h,
			Count: h.Count, P50: qs[0], P95: qs[1], P99: qs[2], P999: qs[3]})
	}
	sort.Slice(r.Latency, func(i, j int) bool {
		if r.Latency[i].Scope != r.Latency[j].Scope {
			return r.Latency[i].Scope < r.Latency[j].Scope
		}
		return r.Latency[i].Kind < r.Latency[j].Kind
	})

	slow := append([]PeerSummary(nil), peers...)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].ServedP99 > slow[j].ServedP99 })
	for _, p := range slow {
		if p.ServedP99 <= 0 || len(r.TopSlow) == TopK {
			break
		}
		r.TopSlow = append(r.TopSlow, p)
	}
	erring := append([]PeerSummary(nil), peers...)
	sort.SliceStable(erring, func(i, j int) bool { return erring[i].ServedErrors > erring[j].ServedErrors })
	for _, p := range erring {
		if p.ServedErrors <= 0 || len(r.TopErr) == TopK {
			break
		}
		r.TopErr = append(r.TopErr, p)
	}

	for _, o := range objectives {
		h := merged[key{"served", o.Kind}]
		r.SLO = append(r.SLO, slo.Eval(o, h))
	}

	r.Grid = AnalyzeGrid(digests)
	if r.Grid.MeasuredAvailability >= 0 && r.Grid.Eq3Availability >= 0 {
		r.AvailabilityKnown = true
		r.AvailabilityMeasured = r.Grid.MeasuredAvailability
		r.AvailabilityTarget = r.Grid.Eq3Availability - AvailabilityMargin
		r.AvailabilityBreached = r.AvailabilityMeasured < r.AvailabilityTarget
	}
	return r
}

// Breached reports whether any objective — latency or availability — is
// currently in breach.
func (r ClusterReport) Breached() bool {
	if r.AvailabilityBreached {
		return true
	}
	for _, s := range r.SLO {
		if s.Breached {
			return true
		}
	}
	return false
}

// fmtNS renders nanoseconds with an adaptive unit, aligned for tables.
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// RenderClusterReport writes the report as the text view behind
// `pgridctl cluster`.
func RenderClusterReport(w io.Writer, r ClusterReport) {
	fmt.Fprintf(w, "cluster        %d peers collected", r.Peers)
	if len(r.Unreachable) > 0 {
		fmt.Fprintf(w, ", %d unreachable (%s)", len(r.Unreachable), addrList(r.Unreachable))
	}
	fmt.Fprintf(w, " [schema v%d", r.Schema)
	if r.SchemaSkew > 0 {
		fmt.Fprintf(w, ", %d peers on another version", r.SchemaSkew)
	}
	fmt.Fprintf(w, "]\n")
	if r.Peers == 0 {
		return
	}
	fmt.Fprintf(w, "requests       served %d (errors %d), client %d (errors %d), drops %d, events dropped %d\n",
		r.ServedTotal, r.ServedErrors, r.ClientTotal, r.ClientErrors, r.Dropped, r.EventsDropped)

	if len(r.Latency) > 0 {
		fmt.Fprintf(w, "latency        %-7s %-10s %8s %9s %9s %9s %9s\n",
			"scope", "kind", "count", "p50", "p95", "p99", "p999")
		for _, l := range r.Latency {
			fmt.Fprintf(w, "               %-7s %-10s %8d %9s %9s %9s %9s\n",
				l.Scope, l.Kind, l.Count, fmtNS(l.P50), fmtNS(l.P95), fmtNS(l.P99), fmtNS(l.P999))
		}
	}
	for _, p := range r.TopSlow {
		fmt.Fprintf(w, "slowest        peer %d: served p99 %s over %d rpcs\n",
			int(p.Addr), fmtNS(p.ServedP99), p.Served)
	}
	for _, p := range r.TopErr {
		fmt.Fprintf(w, "errors         peer %d: %d served errors of %d rpcs\n",
			int(p.Addr), p.ServedErrors, p.Served)
	}

	for _, s := range r.SLO {
		verdict := "ok"
		if s.Breached {
			verdict = "BREACHED"
		}
		wb := s.Windows[0]
		fmt.Fprintf(w, "slo            %-22s burn %.2f (bad %.2f%%, budget %.2f%%, %d of %d slow)  %s\n",
			s.Spec, wb.Burn, 100*wb.BadFrac, 100*s.Objective.Budget(), wb.Total-wb.Good, wb.Total, verdict)
	}
	if r.AvailabilityKnown {
		verdict := "ok"
		if r.AvailabilityBreached {
			verdict = "BREACHED"
		}
		fmt.Fprintf(w, "slo            availability measured %.3f ≥ target %.3f (Eq.3 %.3f − %.0fpp)  %s\n",
			r.AvailabilityMeasured, r.AvailabilityTarget, r.Grid.Eq3Availability, 100*AvailabilityMargin, verdict)
	} else {
		fmt.Fprintf(w, "slo            availability unknown (no probe data yet)\n")
	}

	RenderGridReport(w, r.Grid)
}
