package analysis_test

import (
	"math/rand"
	"strings"
	"testing"

	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/sim"
	"pgrid/internal/trace"
)

func TestAnalyzeTracesAggregation(t *testing.T) {
	traces := []trace.Trace{
		{
			TraceID: 1, Found: true, Messages: 2, Backtracks: 1,
			Spans: []trace.Span{
				{Level: 0, LatencyNS: 100, Backtracked: true},
				{Level: 1, LatencyNS: 60},
				{Level: 2, LatencyNS: 40, Matched: true},
			},
		},
		{
			TraceID: 2, Found: true, Messages: 4, Backtracks: 0,
			Spans: []trace.Span{
				{Level: 0, LatencyNS: 200},
				{Level: 2, LatencyNS: 80, Matched: true},
			},
		},
		{TraceID: 3, Found: false, Messages: 0, Backtracks: 3,
			Spans: []trace.Span{{Level: 0, LatencyNS: 300, Backtracked: true}}},
	}
	r := analysis.AnalyzeTraces(traces, 64)

	if r.Traces != 3 || r.Found != 2 {
		t.Fatalf("traces=%d found=%d", r.Traces, r.Found)
	}
	if want := 2.0; r.MeanHops != want {
		t.Errorf("MeanHops = %v, want %v", r.MeanHops, want)
	}
	if r.P50Hops != 2 || r.MaxHops != 4 {
		t.Errorf("p50=%d max=%d", r.P50Hops, r.MaxHops)
	}
	if want := 4.0 / 3; r.MeanBacktracks != want {
		t.Errorf("MeanBacktracks = %v, want %v", r.MeanBacktracks, want)
	}
	if r.PredictedHops != 6 {
		t.Errorf("PredictedHops = %v, want 6 (log2 64)", r.PredictedHops)
	}
	if len(r.PerLevel) != 3 {
		t.Fatalf("PerLevel = %+v", r.PerLevel)
	}
	l0 := r.PerLevel[0]
	if l0.Level != 0 || l0.Visits != 3 || l0.Backtracks != 2 || l0.MeanLatencyNS != 200 {
		t.Errorf("level 0 = %+v", l0)
	}
	if l2 := r.PerLevel[2]; l2.Level != 2 || l2.Visits != 2 || l2.MeanLatencyNS != 60 {
		t.Errorf("level 2 = %+v", l2)
	}

	if !r.WithinLogN(0.0) {
		t.Error("2 mean hops rejected against a log2(64)=6 bound")
	}
	if (analysis.TraceReport{}).WithinLogN(1) {
		t.Error("empty report accepted")
	}

	var sb strings.Builder
	analysis.RenderTraceReport(&sb, r)
	for _, want := range []string{"traces         3 (2 found)", "log2(n) bound  6.00", "per level"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestSimulatorTracesMatchLogN is the acceptance check: on a seeded
// 64-peer simulator build, routes collected via QueryTraced and fed
// through ToTrace must produce a per-level hop report whose measured
// mean stays within tolerance of the paper's O(log n) prediction.
func TestSimulatorTracesMatchLogN(t *testing.T) {
	const n = 64
	res, err := sim.Build(sim.Options{
		N:      n,
		Config: core.Config{MaxL: 6, RefMax: 3, RecMax: 2, RecFanout: 2},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	var traces []trace.Trace
	for i := 0; i < 300; i++ {
		key := bitpath.Random(rng, 6)
		tr := core.QueryTraced(res.Dir, res.Dir.RandomOnlinePeer(rng), key, rng)
		traces = append(traces, tr.ToTrace(trace.NewTraceID(rng.Uint64(), uint64(i))))
	}

	r := analysis.AnalyzeTraces(traces, n)
	if r.Found != r.Traces {
		t.Fatalf("only %d/%d searches found a peer on a fully-online grid", r.Found, r.Traces)
	}
	// All peers online: greedy prefix routing should resolve roughly one
	// bit per hop, so the mean hop count must sit within the O(log n)
	// bound (tolerance 25%) and must not be degenerately low either.
	if !r.WithinLogN(0.25) {
		t.Errorf("mean hops %.2f exceeds log2(%d)=%.2f by more than 25%%", r.MeanHops, n, r.PredictedHops)
	}
	if r.MeanHops < 0.5 {
		t.Errorf("mean hops %.2f suspiciously low — routes are not being recorded", r.MeanHops)
	}
	if len(r.PerLevel) == 0 {
		t.Fatal("no per-level breakdown")
	}
	// Level 0 collects at least the entry hop of every trace (plus any
	// forward that resolved no bits yet).
	if r.PerLevel[0].Level != 0 || r.PerLevel[0].Visits < len(traces) {
		t.Errorf("level-0 visits = %+v, want at least one per trace", r.PerLevel[0])
	}
}
