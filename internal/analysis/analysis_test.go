package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyLength(t *testing.T) {
	cases := []struct {
		d, leaf float64
		want    int
	}{
		{1024, 1, 10},
		{1000, 1, 10},   // ceil(log2 1000) = 10
		{1e7, 9800, 10}, // the paper's example
		{8, 8, 0},
		{4, 8, 0}, // more capacity than data
	}
	for _, c := range cases {
		if got := KeyLength(c.d, c.leaf); got != c.want {
			t.Errorf("KeyLength(%g,%g) = %d, want %d", c.d, c.leaf, got, c.want)
		}
	}
}

func TestKeyLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KeyLength(0, 1)
}

func TestSuccessProbability(t *testing.T) {
	// refmax=1: probability is p^k.
	if got, want := SuccessProbability(0.5, 1, 3), 0.125; math.Abs(got-want) > 1e-12 {
		t.Errorf("p^k = %v, want %v", got, want)
	}
	// Always-online peers always succeed.
	if got := SuccessProbability(1, 1, 10); got != 1 {
		t.Errorf("p=1 gives %v", got)
	}
	// The paper's example: p=0.3, refmax=20, k=10 ⇒ > 99 %.
	got := SuccessProbability(0.3, 20, 10)
	if got <= 0.99 || got >= 1 {
		t.Errorf("paper example success = %v, want in (0.99, 1)", got)
	}
}

func TestStorageOKAndMinPeers(t *testing.T) {
	p := GnutellaExample()
	if !p.StorageOK(9800, 10) {
		t.Error("paper split must fit the budget exactly")
	}
	if p.StorageOK(9801, 10) {
		t.Error("overfull split accepted")
	}
	if got := p.MinPeers(9800); got != 20409 {
		t.Errorf("MinPeers = %d, want 20409 (the paper's community size)", got)
	}
}

func TestSizeReproducesPaperExample(t *testing.T) {
	plan, err := Size(GnutellaExample())
	if err != nil {
		t.Fatal(err)
	}
	if plan.KeyLength != 10 {
		t.Errorf("k = %d, want 10", plan.KeyLength)
	}
	if plan.ILeaf != 9800 {
		t.Errorf("i_leaf = %g, want 9800", plan.ILeaf)
	}
	if plan.MinPeers != 20409 {
		t.Errorf("MinPeers = %d, want 20409", plan.MinPeers)
	}
	if plan.Success <= 0.99 {
		t.Errorf("success = %v, want > 0.99", plan.Success)
	}
	if plan.StorageBytes != 1e5 {
		t.Errorf("storage = %g, want exactly the donated 1e5 bytes", plan.StorageBytes)
	}
}

func TestSizeRejectsTinyBudget(t *testing.T) {
	p := GnutellaExample()
	p.IndexBytes = 100 // 10 references total: cannot hold 10 levels × 20 refs
	if _, err := Size(p); err == nil {
		t.Error("expected error for infeasible budget")
	}
}

func TestValidate(t *testing.T) {
	good := GnutellaExample()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bads := []Params{
		{DGlobal: 0, RefBytes: 1, IndexBytes: 1, OnlineProb: 0.5, RefMax: 1},
		{DGlobal: 1, RefBytes: 0, IndexBytes: 1, OnlineProb: 0.5, RefMax: 1},
		{DGlobal: 1, RefBytes: 1, IndexBytes: 0, OnlineProb: 0.5, RefMax: 1},
		{DGlobal: 1, RefBytes: 1, IndexBytes: 1, OnlineProb: 0, RefMax: 1},
		{DGlobal: 1, RefBytes: 1, IndexBytes: 1, OnlineProb: 1.5, RefMax: 1},
		{DGlobal: 1, RefBytes: 1, IndexBytes: 1, OnlineProb: 0.5, RefMax: 0},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPropSuccessProbabilityMonotone(t *testing.T) {
	// More references and higher online probability never hurt; deeper
	// grids never help.
	f := func(p10 uint8, refmax, k uint8) bool {
		p := float64(p10%9+1) / 10.0 // 0.1 … 0.9
		r := int(refmax%5) + 1
		depth := int(k % 12)
		s := SuccessProbability(p, r, depth)
		if s < 0 || s > 1 {
			return false
		}
		return SuccessProbability(p, r+1, depth) >= s-1e-12 &&
			SuccessProbability(math.Min(p+0.05, 1), r, depth) >= s-1e-12 &&
			SuccessProbability(p, r, depth+1) <= s+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSizeInternallyConsistent(t *testing.T) {
	f := func(dExp, refmax uint8) bool {
		p := Params{
			DGlobal:    math.Pow(10, float64(dExp%5)+3), // 1e3 … 1e7
			RefBytes:   10,
			IndexBytes: 1e5,
			OnlineProb: 0.3,
			RefMax:     int(refmax%10) + 1,
		}
		plan, err := Size(p)
		if err != nil {
			return true // infeasible combinations are fine
		}
		// The plan must satisfy the paper's inequalities.
		return p.StorageOK(plan.ILeaf, plan.KeyLength) &&
			KeyLength(p.DGlobal, plan.ILeaf) <= plan.KeyLength &&
			float64(plan.MinPeers) >= p.DGlobal/plan.ILeaf*float64(p.RefMax)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
