package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
)

// PathCensus is one replica group of a crawled community: every peer
// answering for the same responsibility path.
type PathCensus struct {
	Path bitpath.Path
	// Replicas holds the group's peers, sorted by address.
	Replicas []addr.Addr
	// Entries is the largest index size reported in the group (replicas
	// of one path should hold the same index).
	Entries int
	// MaxVersion is the freshest entry version seen in the group.
	MaxVersion uint64
	// DistinctHashes counts distinct index fingerprints among the
	// replicas: 1 means the group is in sync, more means update
	// propagation has not (yet) reached every replica.
	DistinctHashes int
}

// Divergent reports whether the group's replicas disagree on their index.
func (pc PathCensus) Divergent() bool { return pc.DistinctHashes > 1 }

// GridReport is the structural health view computed from a set of crawled
// digests — the observability twin of the Section 4 model: instead of
// predicting availability from assumed parameters, it derives the
// parameters (depth, reference counts, online probability) from the
// measured community and compares equation (3)'s prediction against the
// measured probe success.
type GridReport struct {
	// Peers is the number of digests aggregated; Census the replica
	// groups, sorted by path.
	Peers  int
	Census []PathCensus

	// MeanDepth, MinDepth and MaxDepth describe the responsibility-path
	// lengths — how deep, and how evenly, the trie has specialized.
	MeanDepth float64
	MinDepth  int
	MaxDepth  int
	// ReplicaImbalance is the largest replica group divided by the mean
	// group size: 1 means uniform partitioning, the construction
	// algorithm's target.
	ReplicaImbalance float64
	// DivergentPaths counts replica groups whose members disagree on
	// their index fingerprint.
	DivergentPaths int

	// ProbedPeers counts digests that carried probe data; ProbesLive and
	// ProbesDead aggregate their tallies. ProbeLiveness is the measured
	// online probability p̂ = live/(live+dead), and StaleRefRate its
	// complement — both -1 when no peer has probed yet.
	ProbedPeers   int
	ProbesLive    int64
	ProbesDead    int64
	ProbeLiveness float64
	StaleRefRate  float64

	// MeasuredAvailability is the fraction of probed peers whose every
	// probed level saw at least one live reference — peers that can route
	// at full depth right now. PredictedAvailability generalizes
	// equation (3) to the measured structure: the mean over all peers of
	// ∏ over their levels of (1-(1-p̂)^r_level), with r_level the peer's
	// actual reference count at that level. Both are -1 without probe
	// data.
	MeasuredAvailability  float64
	PredictedAvailability float64

	// Repair aggregates the community's self-healing state when repair
	// statuses were attached (AttachRepair); Repair.Reporting is 0 when
	// the crawl found no repairer anywhere.
	Repair RepairSummary

	// Eq3RefMax, Eq3Depth and Eq3Availability state the closed-form
	// equation (3) at the community's typical shape: refmax = the mean
	// per-level reference count, k = the mean depth (both rounded), at
	// online probability p̂. This is the number the Section 4 model would
	// have predicted for a uniform grid of this size.
	Eq3RefMax       int
	Eq3Depth        int
	Eq3Availability float64
}

// AnalyzeGrid aggregates crawled digests into the structural report.
func AnalyzeGrid(digests []health.Digest) GridReport {
	r := GridReport{
		Peers:                 len(digests),
		ProbeLiveness:         -1,
		StaleRefRate:          -1,
		MeasuredAvailability:  -1,
		PredictedAvailability: -1,
		Eq3Availability:       -1,
	}
	if len(digests) == 0 {
		return r
	}

	groups := make(map[bitpath.Path][]health.Digest)
	depthSum, refSum, refLevels := 0, 0, 0
	r.MinDepth = math.MaxInt
	for _, d := range digests {
		groups[d.Path] = append(groups[d.Path], d)
		depth := d.Path.Len()
		depthSum += depth
		if depth < r.MinDepth {
			r.MinDepth = depth
		}
		if depth > r.MaxDepth {
			r.MaxDepth = depth
		}
		for _, rc := range d.RefCounts {
			refSum += rc
			refLevels++
		}
		r.ProbesLive += liveSum(d.Liveness)
		r.ProbesDead += deadSum(d.Liveness)
		if len(d.Liveness) > 0 {
			r.ProbedPeers++
		}
	}
	r.MeanDepth = float64(depthSum) / float64(len(digests))

	maxGroup := 0
	for path, ds := range groups {
		pc := PathCensus{Path: path}
		hashes := map[uint64]bool{}
		for _, d := range ds {
			pc.Replicas = append(pc.Replicas, d.Addr)
			if d.Entries > pc.Entries {
				pc.Entries = d.Entries
			}
			if d.MaxVersion > pc.MaxVersion {
				pc.MaxVersion = d.MaxVersion
			}
			hashes[d.IndexHash] = true
		}
		sort.Slice(pc.Replicas, func(i, j int) bool { return pc.Replicas[i] < pc.Replicas[j] })
		pc.DistinctHashes = len(hashes)
		if pc.Divergent() {
			r.DivergentPaths++
		}
		if len(pc.Replicas) > maxGroup {
			maxGroup = len(pc.Replicas)
		}
		r.Census = append(r.Census, pc)
	}
	sort.Slice(r.Census, func(i, j int) bool {
		return bitpath.Compare(r.Census[i].Path, r.Census[j].Path) < 0
	})
	r.ReplicaImbalance = float64(maxGroup) * float64(len(r.Census)) / float64(len(digests))

	if r.ProbesLive+r.ProbesDead == 0 {
		return r
	}
	p := float64(r.ProbesLive) / float64(r.ProbesLive+r.ProbesDead)
	r.ProbeLiveness = p
	r.StaleRefRate = 1 - p

	// Measured: a peer is "available" when every level it probed has at
	// least one live reference — it can route at full depth right now.
	available := 0
	for _, d := range digests {
		if len(d.Liveness) == 0 {
			continue
		}
		ok := true
		for _, lp := range d.Liveness {
			if lp.Live == 0 {
				ok = false
				break
			}
		}
		if ok {
			available++
		}
	}
	r.MeasuredAvailability = float64(available) / float64(r.ProbedPeers)

	// Predicted: equation (3) per peer over its actual reference counts,
	// averaged — the structural generalization of (1-(1-p)^refmax)^k.
	predSum := 0.0
	for _, d := range digests {
		pred := 1.0
		for level := 1; level <= d.Path.Len(); level++ {
			rc := 0
			if level <= len(d.RefCounts) {
				rc = d.RefCounts[level-1]
			}
			pred *= 1 - math.Pow(1-p, float64(rc))
		}
		predSum += pred
	}
	r.PredictedAvailability = predSum / float64(len(digests))

	r.Eq3Depth = int(math.Round(r.MeanDepth))
	r.Eq3RefMax = 1
	if refLevels > 0 {
		if rm := int(math.Round(float64(refSum) / float64(refLevels))); rm > 1 {
			r.Eq3RefMax = rm
		}
	}
	r.Eq3Availability = SuccessProbability(p, r.Eq3RefMax, r.Eq3Depth)
	return r
}

// RepairSummary aggregates per-peer repair statuses into one community
// verdict, so a grid report distinguishes a community that is structurally
// sound ("healthy"), one actively converging back ("repairing"), and one
// that detects faults it cannot heal ("stuck").
type RepairSummary struct {
	// Reporting counts peers that answered with repair enabled.
	Reporting int
	// Rounds, Faults and Heals are cumulative across reporting peers.
	Rounds int64
	Faults int64
	Heals  int64
	// Unhealed sums the faults the reporting peers' last rounds left
	// standing — the community's current structural debt.
	Unhealed int64
	// State is "healthy", "repairing" or "stuck" ("" with no reporters),
	// per repair.State over the aggregated last-round tallies.
	State string
}

// AttachRepair folds per-peer repair statuses (as crawled alongside the
// health digests) into the report. Disabled statuses count as absent.
func (r *GridReport) AttachRepair(statuses []repair.Status) {
	var s RepairSummary
	var lastHeals int64
	for _, st := range statuses {
		if !st.Enabled {
			continue
		}
		s.Reporting++
		s.Rounds += st.Rounds
		s.Faults += st.TotalFaults()
		s.Heals += st.TotalHeals()
		s.Unhealed += st.LastUnhealed
		lastHeals += st.LastHeals
	}
	s.State = repair.State(s.Reporting > 0, lastHeals, s.Unhealed)
	r.Repair = s
}

// AvailabilityAgrees reports whether the measured availability stays
// within tol of the structural equation-(3) prediction. It fails when no
// probe data exists.
func (r GridReport) AvailabilityAgrees(tol float64) bool {
	if r.MeasuredAvailability < 0 || r.PredictedAvailability < 0 {
		return false
	}
	return math.Abs(r.MeasuredAvailability-r.PredictedAvailability) <= tol
}

// RenderGridReport writes the report as the text table pgridsim,
// pgridctl and the node's /debug/health endpoint print.
func RenderGridReport(w io.Writer, r GridReport) {
	fmt.Fprintf(w, "peers          %d over %d paths\n", r.Peers, len(r.Census))
	if r.Peers == 0 {
		return
	}
	fmt.Fprintf(w, "depth          mean %.2f, min %d, max %d\n", r.MeanDepth, r.MinDepth, r.MaxDepth)
	fmt.Fprintf(w, "balance        replica imbalance %.2f (1.00 = uniform partitioning)\n", r.ReplicaImbalance)
	if r.ProbeLiveness >= 0 {
		fmt.Fprintf(w, "refs           %d probes on %d peers: liveness %.2f, stale %.1f%%\n",
			r.ProbesLive+r.ProbesDead, r.ProbedPeers, r.ProbeLiveness, 100*r.StaleRefRate)
		fmt.Fprintf(w, "availability   measured %.3f, predicted %.3f, Eq.3(p=%.2f, refmax=%d, k=%d) %.3f\n",
			r.MeasuredAvailability, r.PredictedAvailability, r.ProbeLiveness, r.Eq3RefMax, r.Eq3Depth, r.Eq3Availability)
	} else {
		fmt.Fprintf(w, "refs           no probe data (run nodes with probing enabled)\n")
	}
	fmt.Fprintf(w, "divergence     %d of %d paths have replicas with differing indexes\n",
		r.DivergentPaths, len(r.Census))
	if r.Repair.Reporting > 0 {
		fmt.Fprintf(w, "repair         %s: %d peers reporting, %d rounds, %d faults / %d heals, %d unhealed\n",
			r.Repair.State, r.Repair.Reporting, r.Repair.Rounds, r.Repair.Faults, r.Repair.Heals, r.Repair.Unhealed)
	}
	fmt.Fprintf(w, "census         %-10s %-24s %8s %8s %7s\n", "path", "replicas", "entries", "maxver", "hashes")
	for _, pc := range r.Census {
		path := pc.Path.String()
		if path == "" {
			path = "ε"
		}
		fmt.Fprintf(w, "               %-10s %-24s %8d %8d %7d\n",
			path, addrList(pc.Replicas), pc.Entries, pc.MaxVersion, pc.DistinctHashes)
	}
}

// RenderRepairStatus writes one peer's repair status as the text block
// /debug/repair?format=text and `pgridctl repair` print.
func RenderRepairStatus(w io.Writer, st repair.Status) {
	if !st.Enabled {
		fmt.Fprintln(w, "repair disabled")
		return
	}
	fmt.Fprintf(w, "state    %s\n", repair.State(true, st.LastHeals, st.LastUnhealed))
	fmt.Fprintf(w, "rounds   %d (%d messages)\n", st.Rounds, st.Messages)
	fmt.Fprintf(w, "last     %d faults / %d heals / %d unhealed\n",
		st.LastFaults, st.LastHeals, st.LastUnhealed)
	for _, t := range st.Faults {
		fmt.Fprintf(w, "fault    %-18s %6d\n", t.Name, t.N)
	}
	for _, t := range st.Heals {
		fmt.Fprintf(w, "heal     %-18s %6d\n", t.Name, t.N)
	}
}

func addrList(addrs []addr.Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = fmt.Sprintf("%d", int(a))
	}
	s := strings.Join(parts, ",")
	if len(s) > 24 {
		s = s[:21] + "..."
	}
	return s
}

func liveSum(probes []health.LevelProbe) (n int64) {
	for _, lp := range probes {
		n += lp.Live
	}
	return n
}

func deadSum(probes []health.LevelProbe) (n int64) {
	for _, lp := range probes {
		n += lp.Dead
	}
	return n
}
