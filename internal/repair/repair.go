// Package repair classifies structural faults in a peer's state and
// names the healing actions that fix them. It is the vocabulary and the
// verdict logic of the self-healing protocol: the node's Repairer (in
// internal/node) detects faults with the functions here, heals them over
// the wire, and reports a Status that telemetry, the admin server, and
// pgridctl all render from.
//
// The design target is self-stabilization in the sense of "A
// Self-Stabilizing Hashed Patricia Trie" (arXiv 1809.04923): starting
// from *arbitrary* state — not just state decayed by churn — repeated
// repair rounds must converge back to a structure satisfying the Sec. 2
// invariant and the Eq. 3 availability bound. The package itself is
// pure: it imports only addr and bitpath, so the wire layer can carry a
// Status without an import cycle.
package repair

import (
	"sort"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// FaultClass names one kind of structural corruption the detector can
// find. Classes are stable strings: they label pgrid_repair_fault
// telemetry counters and appear verbatim in /debug/repair and the chaos
// artifact, so renaming one is a breaking observability change.
type FaultClass = string

const (
	// FaultWrongSide: a reference at level i does not share prefix(i-1)
	// with the holder or agrees on bit i — the Sec. 2 routing invariant
	// is violated, so queries routed through it can loop or dead-end.
	FaultWrongSide FaultClass = "wrong-side-ref"
	// FaultDeadRef: a referenced peer is unreachable (stale directory
	// entry the Prober has flagged).
	FaultDeadRef FaultClass = "dead-ref"
	// FaultPathDrift: the peer's own path disagrees with the majority of
	// its replica group — a bit-flipped path, the classic arbitrary-
	// corruption fault.
	FaultPathDrift FaultClass = "path-drift"
	// FaultDivergedReplica: a reachable buddy shares the path but its
	// store fingerprint disagrees with the group majority.
	FaultDivergedReplica FaultClass = "diverged-replica"
	// FaultOrphanReplica: a buddy's path does not match the peer's path
	// at all — it replicates some other partition.
	FaultOrphanReplica FaultClass = "orphan-replica"
	// FaultOrphanEntry: a stored data entry whose key lies outside the
	// peer's partition (the peer is not responsible for it).
	FaultOrphanEntry FaultClass = "orphan-entry"
	// FaultStarvedLevel: every reference at some level is dead — the
	// level cannot be refilled from its own live references, so routing
	// for that subtree is severed until a search-refill succeeds.
	FaultStarvedLevel FaultClass = "starved-level"
)

// Action names one healing step the Repairer can take. Like fault
// classes these are stable telemetry labels (pgrid_repair_heal).
type Action = string

const (
	// ActionEvictRef: remove an invariant-violating or dead reference.
	ActionEvictRef Action = "evict-ref"
	// ActionRefillRef: add a validated replacement reference fetched
	// from a live reference's buddy list (the Maintain refill protocol).
	ActionRefillRef Action = "refill-ref"
	// ActionSearchRefill: recover a starved level by routing a query for
	// the complementary subtree and adopting the responder.
	ActionSearchRefill Action = "search-refill"
	// ActionAdoptPath: rewrite the peer's own path to the replica-group
	// majority after path drift.
	ActionAdoptPath Action = "adopt-path"
	// ActionDropBuddy: remove a reachable buddy that replicates a
	// different partition.
	ActionDropBuddy Action = "drop-buddy"
	// ActionSyncPull: pull missing/newer entries from a replica that
	// agrees with the majority fingerprint.
	ActionSyncPull Action = "sync-pull"
	// ActionSyncPush: push local entries to a diverged replica.
	ActionSyncPush Action = "sync-push"
	// ActionEvictEntry: remove a stored entry outside the partition.
	ActionEvictEntry Action = "evict-entry"
	// ActionRehomeEntry: hand an orphaned entry to a responsible peer
	// before evicting it locally.
	ActionRehomeEntry Action = "rehome-entry"
)

// ValidRef reports whether a reference with path remote is legal at
// 1-based level of a peer whose own path is self: the reference must be
// specialized at least level bits, share the first level-1 bits, and
// differ at bit level (Sec. 2: refs at level i cover the complementary
// subtree). This is the detection predicate for FaultWrongSide.
func ValidRef(self bitpath.Path, level int, remote bitpath.Path) bool {
	if level < 1 || level > self.Len() {
		return false
	}
	if remote.Len() < level {
		return false
	}
	return remote.Prefix(level-1) == self.Prefix(level-1) &&
		remote.Bit(level) != self.Bit(level)
}

// BuddyView is what the detector learned about one member of a replica
// group — fetched from its health digest, or marked unreachable when the
// fetch failed. Unreachable members never vote: an offline buddy may be
// perfectly healthy, so it is kept, not dropped.
type BuddyView struct {
	Addr      addr.Addr
	Path      bitpath.Path
	Entries   int
	IndexHash uint64
	Reachable bool
}

// MajorityPath runs the path-drift vote: over self plus every reachable
// view, it returns the strictly-most-common path and whether adopting it
// would change self. A strict majority (> half the voters) is required —
// with no majority the group is too fractured to trust any path, and the
// peer keeps its own (the fault stays detected-but-unhealed). Ties and
// minorities return ("", false).
func MajorityPath(self bitpath.Path, views []BuddyView) (bitpath.Path, bool) {
	votes := map[bitpath.Path]int{self: 1}
	voters := 1
	for _, v := range views {
		if !v.Reachable {
			continue
		}
		votes[v.Path]++
		voters++
	}
	best, bestN := self, 0
	for p, n := range votes {
		if n > bestN || (n == bestN && p == self) {
			best, bestN = p, n
		}
	}
	if bestN*2 <= voters {
		return "", false
	}
	return best, best != self
}

// PluralityPath is the path-drift verdict the healer acts on: over self
// plus every reachable view, it returns the unique most-common path when
// that path holds at least two votes, and whether such a winner exists.
//
// The weaker-than-majority rule exists for a reason: a corrupted peer can
// hold both a flipped path AND an injected cross-partition buddy link, and
// the orphan's vote then denies its true replicas a strict majority
// forever (2 honest vs 1 corrupt-self vs 1 orphan is no majority of 4) —
// the deadlock would make exactly the compound corruptions unhealable. A
// unique ≥2 plurality still can never be produced by a single liar, while
// breaking that deadlock. With no winner the group is too small or too
// fractured to trust anyone: the caller must neither adopt a path nor
// treat any member as an orphan.
func PluralityPath(self bitpath.Path, views []BuddyView) (bitpath.Path, bool) {
	votes := map[bitpath.Path]int{self: 1}
	for _, v := range views {
		if v.Reachable {
			votes[v.Path]++
		}
	}
	best, bestN, unique := self, 0, false
	for p, n := range votes {
		switch {
		case n > bestN:
			best, bestN, unique = p, n, true
		case n == bestN:
			unique = false
		}
	}
	if !unique || bestN < 2 {
		return "", false
	}
	return best, true
}

// MajorityHash runs the replica-divergence vote: over the peer's own
// store fingerprint plus every reachable same-path view, it returns the
// strictly-most-common index hash and whether one exists. With a
// majority, members hashing differently are FaultDivergedReplica and
// sync toward the majority; without one, the group does pairwise
// anti-entropy instead (no fingerprint is more trustworthy than
// another).
func MajorityHash(selfHash uint64, group []BuddyView) (uint64, bool) {
	votes := map[uint64]int{selfHash: 1}
	voters := 1
	for _, v := range group {
		if !v.Reachable {
			continue
		}
		votes[v.IndexHash]++
		voters++
	}
	best, bestN := selfHash, 0
	for h, n := range votes {
		if n > bestN || (n == bestN && h == selfHash) {
			best, bestN = h, n
		}
	}
	if bestN*2 <= voters {
		return 0, false
	}
	return best, true
}

// Tally is one (label, count) pair in a Status — a fault class or a
// healing action with how many times the repairer saw it.
type Tally struct {
	Name string
	N    int64
}

// Tallies converts a counter map to a deterministic slice, sorted by
// name, dropping zero entries.
func Tallies(m map[string]int64) []Tally {
	out := make([]Tally, 0, len(m))
	for name, n := range m {
		if n != 0 {
			out = append(out, Tally{Name: name, N: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status is one peer's repair report: cumulative totals since the
// repairer started, plus the last round's fault/heal balance — the
// numbers /debug/repair, pgridctl repair, and the grid report all
// render. A zero Status (Enabled=false) means the peer runs no
// repairer.
type Status struct {
	Enabled  bool
	Rounds   int64 // repair rounds completed
	Messages int64 // wire messages spent healing, all rounds

	// Last round's balance: how many faults were detected, how many
	// healing actions were taken, and how many faults could not be
	// healed (budget exhausted, no majority, no live candidates).
	LastFaults   int64
	LastHeals    int64
	LastUnhealed int64

	// Cumulative per-class counts across all rounds, sorted by name.
	Faults []Tally
	Heals  []Tally
}

// TotalFaults sums the cumulative per-class fault counts.
func (s Status) TotalFaults() int64 {
	var n int64
	for _, t := range s.Faults {
		n += t.N
	}
	return n
}

// TotalHeals sums the cumulative per-action heal counts.
func (s Status) TotalHeals() int64 {
	var n int64
	for _, t := range s.Heals {
		n += t.N
	}
	return n
}

// State classifies a peer (or an aggregated group) for the grid report:
//
//	"healthy"   — last round found nothing it could not heal
//	"repairing" — faults remain but healing is making progress
//	"stuck"     — faults remain and the last round healed nothing
//	""          — no repairer enabled (nothing to say)
//
// The distinction the grid report cares about is "degraded, repairing"
// vs "stuck": the former converges on its own, the latter needs an
// operator.
func State(enabled bool, lastHeals, lastUnhealed int64) string {
	switch {
	case !enabled:
		return ""
	case lastUnhealed == 0:
		return "healthy"
	case lastHeals > 0:
		return "repairing"
	default:
		return "stuck"
	}
}
