package repair

import (
	"reflect"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func TestValidRef(t *testing.T) {
	self := bitpath.MustParse("0101")
	cases := []struct {
		level  int
		remote string
		want   bool
	}{
		{1, "1", true},      // differs at bit 1
		{1, "1110", true},   // longer is fine
		{1, "0", false},     // same side
		{2, "00", true},     // shares prefix(1)="0", differs at bit 2
		{2, "0011", true},   //
		{2, "01", false},    // same side at bit 2
		{2, "10", false},    // wrong prefix
		{3, "011", true},    //
		{3, "010", false},   // same side at bit 3
		{3, "01", false},    // too short to decide bit 3
		{4, "0100", true},   //
		{4, "0101", false},  // identical path
		{4, "1100", false},  // wrong prefix
		{0, "1", false},     // level out of range
		{5, "01011", false}, // level beyond self's path
		{2, "", false},      // empty remote
		{1, "", false},      //
	}
	for _, c := range cases {
		got := ValidRef(self, c.level, bitpath.MustParse(c.remote))
		if got != c.want {
			t.Errorf("ValidRef(%v, %d, %q) = %v, want %v", self, c.level, c.remote, got, c.want)
		}
	}
}

func view(a int, path string, hash uint64, reachable bool) BuddyView {
	return BuddyView{Addr: addr.Addr(a), Path: bitpath.MustParse(path), IndexHash: hash, Reachable: reachable}
}

func TestMajorityPath(t *testing.T) {
	self := bitpath.MustParse("0111") // corrupted: group is at 0101

	// Three reachable buddies all at 0101: 3-of-4 strict majority, and
	// it differs from self — adopt.
	views := []BuddyView{
		view(1, "0101", 0, true),
		view(2, "0101", 0, true),
		view(3, "0101", 0, true),
	}
	p, changed := MajorityPath(self, views)
	if !changed || p != bitpath.MustParse("0101") {
		t.Fatalf("MajorityPath = (%v, %v), want (0101, true)", p, changed)
	}

	// Self already agrees with the majority: no change needed.
	p, changed = MajorityPath(bitpath.MustParse("0101"), views)
	if changed || p != bitpath.MustParse("0101") {
		t.Fatalf("agreeing MajorityPath = (%v, %v), want (0101, false)", p, changed)
	}

	// 2-vs-2 tie (self + one buddy vs two buddies): no strict majority.
	split := []BuddyView{
		view(1, "0111", 0, true),
		view(2, "0101", 0, true),
		view(3, "0101", 0, true),
	}
	if p, changed = MajorityPath(self, split); changed || p != "" {
		t.Fatalf("tied MajorityPath = (%v, %v), want no majority", p, changed)
	}

	// Unreachable buddies do not vote: with the 0101 voters offline, the
	// only voter is self.
	offline := []BuddyView{
		view(1, "0101", 0, false),
		view(2, "0101", 0, false),
		view(3, "0101", 0, false),
	}
	p, changed = MajorityPath(self, offline)
	if changed || p != self {
		t.Fatalf("offline-group MajorityPath = (%v, %v), want self unchanged", p, changed)
	}

	// No buddies at all: self is its own majority.
	if p, changed = MajorityPath(self, nil); changed || p != self {
		t.Fatalf("lone MajorityPath = (%v, %v), want self", p, changed)
	}
}

func TestMajorityHash(t *testing.T) {
	// Two buddies agree on 0xAA, self says 0xBB: majority 0xAA.
	group := []BuddyView{
		view(1, "0", 0xAA, true),
		view(2, "0", 0xAA, true),
	}
	h, ok := MajorityHash(0xBB, group)
	if !ok || h != 0xAA {
		t.Fatalf("MajorityHash = (%#x, %v), want (0xAA, true)", h, ok)
	}

	// 1-vs-1: no strict majority.
	if h, ok = MajorityHash(0xBB, group[:1]); ok {
		t.Fatalf("tied MajorityHash = (%#x, %v), want no majority", h, ok)
	}

	// Unreachable members don't vote.
	off := []BuddyView{view(1, "0", 0xAA, false), view(2, "0", 0xAA, false)}
	h, ok = MajorityHash(0xBB, off)
	if !ok {
		t.Fatalf("lone-voter MajorityHash not ok")
	}
	if h != 0xBB {
		t.Fatalf("lone-voter MajorityHash = %#x, want self hash 0xBB", h)
	}
}

func TestTallies(t *testing.T) {
	got := Tallies(map[string]int64{"b": 2, "a": 5, "zero": 0, "c": 1})
	want := []Tally{{"a", 5}, {"b", 2}, {"c", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tallies = %v, want %v", got, want)
	}
	if out := Tallies(nil); len(out) != 0 {
		t.Fatalf("Tallies(nil) = %v, want empty", out)
	}
}

func TestStatusTotalsAndState(t *testing.T) {
	s := Status{
		Enabled: true,
		Faults:  []Tally{{FaultWrongSide, 3}, {FaultDeadRef, 2}},
		Heals:   []Tally{{ActionEvictRef, 5}},
	}
	if s.TotalFaults() != 5 || s.TotalHeals() != 5 {
		t.Fatalf("totals = (%d, %d), want (5, 5)", s.TotalFaults(), s.TotalHeals())
	}

	cases := []struct {
		enabled                 bool
		lastHeals, lastUnhealed int64
		want                    string
	}{
		{false, 0, 0, ""},
		{false, 4, 2, ""},
		{true, 0, 0, "healthy"},
		{true, 7, 0, "healthy"},
		{true, 3, 2, "repairing"},
		{true, 0, 2, "stuck"},
	}
	for _, c := range cases {
		if got := State(c.enabled, c.lastHeals, c.lastUnhealed); got != c.want {
			t.Errorf("State(%v, %d, %d) = %q, want %q", c.enabled, c.lastHeals, c.lastUnhealed, got, c.want)
		}
	}
}

func TestPluralityPath(t *testing.T) {
	cases := []struct {
		name  string
		self  bitpath.Path
		views []BuddyView
		want  bitpath.Path
		ok    bool
	}{
		{"compound corruption outvoted", "0010", []BuddyView{
			view(1, "0000", 0, true), view(2, "0000", 0, true), view(9, "1011", 0, true),
		}, "0000", true},
		{"single liar cannot win", "0000", []BuddyView{
			view(9, "1011", 0, true),
		}, "", false},
		{"group confirms self", "0", []BuddyView{
			view(1, "0", 0, true), view(2, "0", 0, true),
		}, "0", true},
		{"pair confirms self", "0", []BuddyView{
			view(1, "0", 0, true),
		}, "0", true},
		{"even split stays put", "01", []BuddyView{
			view(1, "01", 0, true), view(2, "00", 0, true), view(3, "00", 0, true),
		}, "", false},
		{"lone peer unconfirmed", "1", nil, "", false},
		{"unreachable views do not vote", "0", []BuddyView{
			view(1, "1", 0, false), view(2, "1", 0, false),
		}, "", false},
	}
	for _, tc := range cases {
		got, ok := PluralityPath(tc.self, tc.views)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: PluralityPath = (%q, %t), want (%q, %t)", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}
