package peer

import (
	"fmt"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// Editor provides lock-free access to a peer whose mutex is already held by
// Edit or EditPair. It exists so the exchange algorithm can read and mutate
// two peers atomically — the construction cases 1–3 change both peers'
// paths and reference sets as one decision — without the non-reentrant
// locking of the public Peer methods.
//
// An Editor must not escape the callback it was handed to.
type Editor struct {
	p *Peer
}

// Addr returns the peer's address.
func (e Editor) Addr() addr.Addr { return e.p.addr }

// Path returns the peer's current path.
func (e Editor) Path() bitpath.Path { return e.p.path }

// Online reports the peer's reachability.
func (e Editor) Online() bool { return e.p.online }

// RefsAt returns a copy of refs(level, p).
func (e Editor) RefsAt(level int) addr.Set { return e.p.refsAtLocked(level) }

// SetRefsAt replaces refs(level, p); level must be within the path.
func (e Editor) SetRefsAt(level int, s addr.Set) { e.p.setRefsAtLocked(level, s) }

// Buddies returns a copy of the peer's buddy list.
func (e Editor) Buddies() addr.Set { return e.p.buddies.Clone() }

// AddBuddy records a replica.
func (e Editor) AddBuddy(a addr.Addr) {
	if a != e.p.addr {
		e.p.buddies.Add(a)
	}
}

// Extend appends bit b to the path and installs refs at the new level,
// clearing the buddy list (see Peer.ExtendFrom).
func (e Editor) Extend(b byte, newRefs addr.Set) {
	p := e.p
	p.path = p.path.Append(b)
	newRefs.Remove(p.addr)
	p.refs = append(p.refs, newRefs)
	if len(p.refs) != len(p.path) {
		panic(fmt.Sprintf("peer %v: refs/path length mismatch %d/%d", p.addr, len(p.refs), len(p.path)))
	}
	p.buddies = addr.Set{}
	if p.pathSum != nil {
		p.pathSum.Add(1)
	}
}

// Edit runs f with the peer's lock held.
func Edit(p *Peer, f func(Editor)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f(Editor{p})
}

// EditPair runs f with both peers' locks held, acquired in address order so
// concurrent exchanges cannot deadlock. It panics if a and b are the same
// peer: a peer never exchanges with itself.
func EditPair(a, b *Peer, f func(ea, eb Editor)) {
	if a == b {
		panic("peer: EditPair called with identical peers")
	}
	first, second := a, b
	if second.addr < first.addr {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	f(Editor{a}, Editor{b})
}
