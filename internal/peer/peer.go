// Package peer implements the state of a single P-Grid peer as defined in
// Section 2 of the paper: the sequence (p1,R1)(p2,R2)…(pn,Rn) of path bits
// and per-level reference sets, the buddy list used by the update
// strategies, the leaf-level data store, and the online/offline state.
//
// A Peer is a passive data structure guarded by a mutex; the routing and
// construction *algorithms* live in internal/core so the same peer state can
// be driven by the sequential simulator, the concurrent goroutine runtime,
// and the networked node.
package peer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

// Peer is one member of the community P. Create with New.
type Peer struct {
	addr addr.Addr
	st   *store.Store

	mu      sync.Mutex
	path    bitpath.Path
	refs    []addr.Set // refs[i] holds refs(i+1, a): level i+1 references
	buddies addr.Set   // known replicas responsible for the same path
	online  bool
	// pathSum, when non-nil, is a community-wide Σ path-length counter the
	// peer keeps current on every path mutation, so the directory's
	// convergence metric is O(1) instead of an O(N) scan of N mutexes.
	pathSum *atomic.Int64
}

// New returns a fresh peer with the empty path (responsible for the whole
// key space), no references, and online state true.
func New(a addr.Addr) *Peer {
	return &Peer{addr: a, st: store.New(), online: true}
}

// Addr returns the peer's address; it never changes.
func (p *Peer) Addr() addr.Addr { return p.addr }

// Store returns the peer's data layer.
func (p *Peer) Store() *store.Store { return p.st }

// Path returns the path the peer is currently responsible for.
func (p *Peer) Path() bitpath.Path {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.path
}

// PathLen returns the current path length.
func (p *Peer) PathLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.path)
}

// Online reports whether the peer is currently reachable.
func (p *Peer) Online() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.online
}

// SetOnline sets the peer's reachability.
func (p *Peer) SetOnline(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.online = v
}

// TrackPathLen registers a shared counter that the peer keeps equal to the
// community-wide sum of path lengths: the peer's current path length is
// added immediately, and every subsequent path mutation adjusts the counter
// under the peer's lock. The directory installs one counter per community so
// its AvgPathLen is a single atomic load. A previously registered counter is
// credited back first, so re-tracking (or passing nil to detach) keeps every
// counter consistent.
func (p *Peer) TrackPathLen(sum *atomic.Int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pathSum != nil {
		p.pathSum.Add(-int64(len(p.path)))
	}
	p.pathSum = sum
	if sum != nil {
		sum.Add(int64(len(p.path)))
	}
}

// UntrackPathLen detaches the peer from its path-length counter, crediting
// its current contribution back. Used when a peer leaves a community for
// good (directory.Replace): late mutations of the discarded object must not
// corrupt the live community's sum.
func (p *Peer) UntrackPathLen() { p.TrackPathLen(nil) }

// RefsAt returns a copy of refs(level, p), the references at the given
// 1-based level. Levels beyond the current path length return an empty set.
func (p *Peer) RefsAt(level int) addr.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refsAtLocked(level)
}

func (p *Peer) refsAtLocked(level int) addr.Set {
	if level < 1 || level > len(p.refs) {
		return addr.Set{}
	}
	return p.refs[level-1].Clone()
}

// SetRefsAt replaces refs(level, p). The level must be within the current
// path length; it panics otherwise (callers extend the path first).
func (p *Peer) SetRefsAt(level int, s addr.Set) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setRefsAtLocked(level, s)
}

func (p *Peer) setRefsAtLocked(level int, s addr.Set) {
	if level < 1 || level > len(p.path) {
		panic(fmt.Sprintf("peer %v: SetRefsAt(%d) outside path of length %d", p.addr, level, len(p.path)))
	}
	for len(p.refs) < level {
		p.refs = append(p.refs, addr.Set{})
	}
	s.Remove(p.addr) // a peer never references itself
	p.refs[level-1] = s
}

// AddRefAt inserts a reference at the given level if absent.
func (p *Peer) AddRefAt(level int, a addr.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a == p.addr {
		return
	}
	s := p.refsAtLocked(level)
	s.Add(a)
	p.setRefsAtLocked(level, s)
}

// Buddies returns a copy of the peer's known replicas.
func (p *Peer) Buddies() addr.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buddies.Clone()
}

// AddBuddy records another peer responsible for the same path.
func (p *Peer) AddBuddy(a addr.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if a != p.addr {
		p.buddies.Add(a)
	}
}

// RemoveBuddy drops one buddy and reports whether it was present. The
// repair protocol uses it to evict a reachable buddy that turned out to
// replicate a different partition (an orphan replica), without touching
// the rest of the group the way ClearBuddies would.
func (p *Peer) RemoveBuddy(a addr.Addr) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buddies.Remove(a)
}

// ClearBuddies drops buddies whose paths may have diverged. Called when the
// peer itself specializes (its replicas are no longer guaranteed replicas).
func (p *Peer) ClearBuddies() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buddies = addr.Set{}
}

// Snapshot is an immutable copy of the mutable peer state, used by the
// exchange algorithm to compute a decision before applying it, and by tests.
type Snapshot struct {
	Addr    addr.Addr
	Path    bitpath.Path
	Refs    []addr.Set
	Buddies addr.Set
	Online  bool
}

// Restore overwrites the peer's mutable state from a snapshot — the
// persistence path of a restarting node. The snapshot's Addr must match;
// refs must have one set per path bit. The data store is restored
// separately (it has its own lifecycle).
func (p *Peer) Restore(s Snapshot) error {
	if s.Addr != p.addr {
		return fmt.Errorf("peer %v: Restore from snapshot of %v", p.addr, s.Addr)
	}
	if !s.Path.Valid() {
		return fmt.Errorf("peer %v: Restore with invalid path %q", p.addr, string(s.Path))
	}
	if len(s.Refs) != s.Path.Len() {
		return fmt.Errorf("peer %v: Restore with %d reference sets for path of length %d",
			p.addr, len(s.Refs), s.Path.Len())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pathSum != nil {
		p.pathSum.Add(int64(s.Path.Len() - len(p.path)))
	}
	p.path = s.Path
	p.refs = make([]addr.Set, len(s.Refs))
	for i, r := range s.Refs {
		rs := r.Clone()
		rs.Remove(p.addr)
		p.refs[i] = rs
	}
	b := s.Buddies.Clone()
	b.Remove(p.addr)
	p.buddies = b
	p.online = s.Online
	return nil
}

// Snapshot returns a consistent copy of the peer's state.
func (p *Peer) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	refs := make([]addr.Set, len(p.refs))
	for i := range p.refs {
		refs[i] = p.refs[i].Clone()
	}
	return Snapshot{Addr: p.addr, Path: p.path, Refs: refs, Buddies: p.buddies.Clone(), Online: p.online}
}

// ExtendFrom appends bit b to the path and installs the given reference set
// at the new deepest level — the specialization step of construction cases
// 1–3 — but only if the path still equals old. It reports whether the
// extension was applied.
//
// The conditional form makes exchanges safe under concurrency without
// holding two peers' locks at once: an exchange computes its decision from
// snapshots and applies it with ExtendFrom; if another exchange specialized
// the peer in between, the application aborts, exactly as a real networked
// peer would discard a decision based on stale state. Extending invalidates
// the buddy list (former replicas may have specialized the other way), so
// the list is cleared.
func (p *Peer) ExtendFrom(old bitpath.Path, b byte, newRefs addr.Set) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.path != old {
		return false
	}
	p.path = p.path.Append(b)
	newRefs.Remove(p.addr)
	p.refs = append(p.refs, newRefs)
	if len(p.refs) != len(p.path) {
		panic(fmt.Sprintf("peer %v: refs/path length mismatch %d/%d", p.addr, len(p.refs), len(p.path)))
	}
	p.buddies = addr.Set{}
	if p.pathSum != nil {
		p.pathSum.Add(1)
	}
	return true
}

// String renders the peer for logs.
func (p *Peer) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("peer{%v path=%s online=%t}", p.addr, p.path, p.online)
}
