package peer

import (
	"sync"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func TestNewPeerDefaults(t *testing.T) {
	p := New(3)
	if p.Addr() != 3 {
		t.Errorf("Addr = %v", p.Addr())
	}
	if p.Path() != bitpath.Empty {
		t.Errorf("new peer path = %q, want empty", p.Path())
	}
	if !p.Online() {
		t.Error("new peer must start online")
	}
	if p.Store() == nil {
		t.Error("store must be initialized")
	}
	if p.RefsAt(1).Len() != 0 {
		t.Error("new peer must have no references")
	}
}

func TestExtendFrom(t *testing.T) {
	p := New(0)
	if !p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1)) {
		t.Fatal("ExtendFrom from correct state failed")
	}
	if p.Path() != "0" || p.PathLen() != 1 {
		t.Fatalf("path = %q", p.Path())
	}
	if rs := p.RefsAt(1); rs.Len() != 1 || !rs.Contains(1) {
		t.Errorf("refs at 1 = %v", rs.String())
	}
	// Stale extension must be rejected.
	if p.ExtendFrom(bitpath.Empty, 1, addr.NewSet(2)) {
		t.Error("ExtendFrom from stale state succeeded")
	}
	if p.Path() != "0" {
		t.Errorf("stale extension mutated path to %q", p.Path())
	}
	// Chained extension from current state.
	if !p.ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(5)) {
		t.Fatal("second ExtendFrom failed")
	}
	if p.Path() != "01" {
		t.Errorf("path = %q", p.Path())
	}
	if rs := p.RefsAt(2); !rs.Contains(5) {
		t.Errorf("refs at 2 = %v", rs.String())
	}
}

func TestExtendFromStripsSelfReference(t *testing.T) {
	p := New(7)
	p.ExtendFrom(bitpath.Empty, 1, addr.NewSet(7, 8))
	if rs := p.RefsAt(1); rs.Contains(7) || !rs.Contains(8) {
		t.Errorf("refs = %v", rs.String())
	}
}

func TestExtendClearsBuddies(t *testing.T) {
	p := New(0)
	p.AddBuddy(4)
	if p.Buddies().Len() != 1 {
		t.Fatal("AddBuddy failed")
	}
	p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	if p.Buddies().Len() != 0 {
		t.Error("ExtendFrom must clear buddies")
	}
}

func TestRefsAtLevels(t *testing.T) {
	p := New(0)
	p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	p.ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(2))
	if p.RefsAt(0).Len() != 0 {
		t.Error("level 0 must be empty")
	}
	if p.RefsAt(3).Len() != 0 {
		t.Error("level beyond path must be empty")
	}
	// RefsAt must return a copy.
	rs := p.RefsAt(1)
	rs.Add(99)
	if p.RefsAt(1).Contains(99) {
		t.Error("RefsAt aliases internal state")
	}
}

func TestSetRefsAt(t *testing.T) {
	p := New(0)
	p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	p.SetRefsAt(1, addr.NewSet(2, 3, 0)) // 0 is self, must be stripped
	rs := p.RefsAt(1)
	if rs.Len() != 2 || !rs.Contains(2) || !rs.Contains(3) || rs.Contains(0) {
		t.Errorf("refs = %v", rs.String())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetRefsAt beyond path must panic")
			}
		}()
		p.SetRefsAt(2, addr.NewSet(9))
	}()
}

func TestAddRefAt(t *testing.T) {
	p := New(0)
	p.ExtendFrom(bitpath.Empty, 1, addr.NewSet(1))
	p.AddRefAt(1, 2)
	p.AddRefAt(1, 2) // duplicate
	p.AddRefAt(1, 0) // self
	rs := p.RefsAt(1)
	if rs.Len() != 2 {
		t.Errorf("refs = %v", rs.String())
	}
}

func TestBuddySelfIgnored(t *testing.T) {
	p := New(5)
	p.AddBuddy(5)
	if p.Buddies().Len() != 0 {
		t.Error("self-buddy recorded")
	}
	p.AddBuddy(6)
	p.ClearBuddies()
	if p.Buddies().Len() != 0 {
		t.Error("ClearBuddies failed")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	p := New(0)
	p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	s := p.Snapshot()
	if s.Path != "0" || s.Addr != 0 || !s.Online || len(s.Refs) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	s.Refs[0].Add(42)
	if p.RefsAt(1).Contains(42) {
		t.Error("snapshot aliases live refs")
	}
}

func TestOnlineToggle(t *testing.T) {
	p := New(0)
	p.SetOnline(false)
	if p.Online() {
		t.Error("SetOnline(false) ignored")
	}
	p.SetOnline(true)
	if !p.Online() {
		t.Error("SetOnline(true) ignored")
	}
}

// TestConcurrentExtendOnlyOneWins exercises the CAS semantics under real
// contention: many goroutines race to apply the same split; exactly one may
// win per state transition.
func TestConcurrentExtendOnlyOneWins(t *testing.T) {
	p := New(0)
	var wg sync.WaitGroup
	wins := make(chan byte, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if p.ExtendFrom(bitpath.Empty, byte(g%2), addr.NewSet(addr.Addr(g+1))) {
				wins <- byte(g % 2)
			}
		}(g)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d concurrent extensions won, want exactly 1", n)
	}
	if p.PathLen() != 1 {
		t.Fatalf("path length = %d", p.PathLen())
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	p := New(3)
	p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	p.ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(2, 4))
	p.AddBuddy(9)
	p.SetOnline(false)
	snap := p.Snapshot()

	q := New(3)
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if q.Path() != "01" || q.Online() {
		t.Errorf("restored path=%q online=%v", q.Path(), q.Online())
	}
	if rs := q.RefsAt(2); rs.Len() != 2 || !rs.Contains(2) || !rs.Contains(4) {
		t.Errorf("refs = %v", rs.String())
	}
	if !q.Buddies().Contains(9) {
		t.Error("buddies lost")
	}
	// Restore must deep-copy: mutating the snapshot later is harmless.
	snap.Refs[0].Add(77)
	if q.RefsAt(1).Contains(77) {
		t.Error("Restore aliases snapshot sets")
	}
}

func TestRestoreValidation(t *testing.T) {
	p := New(3)
	good := Snapshot{Addr: 3, Path: "01", Refs: []addr.Set{addr.NewSet(1), addr.NewSet(2)}, Online: true}
	if err := p.Restore(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	bads := []Snapshot{
		{Addr: 4, Path: "01", Refs: []addr.Set{{}, {}}},      // wrong identity
		{Addr: 3, Path: "01", Refs: []addr.Set{{}}},          // refs/path mismatch
		{Addr: 3, Path: "0x1", Refs: []addr.Set{{}, {}, {}}}, // invalid path
	}
	for i, b := range bads {
		if err := p.Restore(b); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
	// Failed restores must not corrupt state.
	if p.Path() != "01" {
		t.Errorf("path after failed restores = %q", p.Path())
	}
}

func TestRestoreStripsSelfReferences(t *testing.T) {
	p := New(3)
	s := Snapshot{Addr: 3, Path: "0", Refs: []addr.Set{addr.NewSet(3, 5)}, Buddies: addr.NewSet(3, 6), Online: true}
	if err := p.Restore(s); err != nil {
		t.Fatal(err)
	}
	if rs := p.RefsAt(1); rs.Contains(3) || !rs.Contains(5) {
		t.Errorf("refs = %v", rs.String())
	}
	if b := p.Buddies(); b.Contains(3) || !b.Contains(6) {
		t.Errorf("buddies = %v", b.String())
	}
}

func TestStringIncludesPath(t *testing.T) {
	p := New(2)
	p.ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	got := p.String()
	if got != "peer{addr(2) path=1 online=true}" {
		t.Errorf("String = %q", got)
	}
}
