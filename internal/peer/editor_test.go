package peer

import (
	"sync"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func TestEditSinglePeer(t *testing.T) {
	p := New(4)
	Edit(p, func(e Editor) {
		if e.Addr() != 4 || e.Path() != bitpath.Empty || !e.Online() {
			t.Errorf("editor view wrong: %v %q %v", e.Addr(), e.Path(), e.Online())
		}
		e.Extend(1, addr.NewSet(7))
		e.AddBuddy(9)
		e.AddBuddy(4) // self: ignored
	})
	if p.Path() != "1" {
		t.Errorf("path = %q", p.Path())
	}
	if rs := p.RefsAt(1); !rs.Contains(7) {
		t.Errorf("refs = %v", rs.String())
	}
	b := p.Buddies()
	if !b.Contains(9) || b.Contains(4) {
		t.Errorf("buddies = %v", b.String())
	}
}

func TestEditorRefAccessors(t *testing.T) {
	p := New(0)
	Edit(p, func(e Editor) {
		e.Extend(0, addr.NewSet(1, 2))
		rs := e.RefsAt(1)
		if rs.Len() != 2 {
			t.Fatalf("refs = %v", rs.String())
		}
		// RefsAt returns a copy even inside an edit.
		rs.Add(99)
		if e.RefsAt(1).Contains(99) {
			t.Error("editor RefsAt aliases state")
		}
		e.SetRefsAt(1, addr.NewSet(5, 0)) // self stripped
		if got := e.RefsAt(1); got.Contains(0) || !got.Contains(5) {
			t.Errorf("after SetRefsAt: %v", got.String())
		}
		if got := e.Buddies(); got.Len() != 0 {
			t.Errorf("buddies = %v", got.String())
		}
	})
}

func TestEditPairMutatesBothAtomically(t *testing.T) {
	a, b := New(0), New(1)
	EditPair(a, b, func(ea, eb Editor) {
		ea.Extend(0, addr.NewSet(eb.Addr()))
		eb.Extend(1, addr.NewSet(ea.Addr()))
	})
	if a.Path() != "0" || b.Path() != "1" {
		t.Errorf("paths = %q, %q", a.Path(), b.Path())
	}
}

func TestEditPairPanicsOnSamePeer(t *testing.T) {
	p := New(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EditPair(p, p, func(_, _ Editor) {})
}

// TestEditPairNoDeadlockUnderContention drives many concurrent pair edits
// in both orders; address-ordered locking must prevent deadlock.
func TestEditPairNoDeadlockUnderContention(t *testing.T) {
	peers := make([]*Peer, 8)
	for i := range peers {
		peers[i] = New(addr.Addr(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				x := peers[(w+i)%8]
				y := peers[(w+i+1+i%7)%8]
				if x == y {
					continue
				}
				EditPair(x, y, func(ex, ey Editor) {
					ex.AddBuddy(ey.Addr())
					ey.AddBuddy(ex.Addr())
				})
			}
		}(w)
	}
	wg.Wait()
	// Sanity: buddies recorded both ways somewhere.
	if peers[0].Buddies().Len() == 0 {
		t.Error("no buddies recorded under contention")
	}
}

func TestEditorExtendPanicsOnCorruptLengths(t *testing.T) {
	// Extend keeps the one-ref-set-per-bit invariant; this is enforced by
	// construction, so we just verify a normal extension chain stays
	// consistent at each step.
	p := New(2)
	for i := 0; i < 6; i++ {
		bit := byte(i % 2)
		Edit(p, func(e Editor) { e.Extend(bit, addr.NewSet(addr.Addr(i+10))) })
		if p.PathLen() != i+1 {
			t.Fatalf("path length %d after %d extends", p.PathLen(), i+1)
		}
	}
}
