package core

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
)

// QueryResult reports the outcome of a depth-first search.
type QueryResult struct {
	// Found reports whether a responsible peer was reached.
	Found bool
	// Peer is the address of the responsible peer when Found.
	Peer addr.Addr
	// Messages is the number of successful query calls to other peers —
	// the cost metric of Section 5.2. A query answered locally costs 0.
	Messages int
	// Backtracks is the number of contacted subtrees that failed to
	// resolve the query, forcing the search back to an alternative
	// reference — the routing-health signal behind the per-level liveness
	// metrics (a backtrack means a reference led nowhere useful).
	Backtracks int
}

// Query performs the randomized depth-first search of Fig. 2: starting at
// peer a, it routes the request for key p across the peers' references,
// backtracking through alternative references when a contacted subtree
// fails (offline peers). A peer is responsible for p when its remaining
// path and the remaining query are in a prefix relationship.
//
// The search only ever contacts online peers; the starting peer itself is
// used as-is (the caller decides whether offline peers may issue queries).
func Query(d *directory.Directory, a *peer.Peer, p bitpath.Path, rng *rand.Rand) QueryResult {
	var res QueryResult
	res.Found = query(d, a, p, 0, rng, &res)
	return res
}

// query mirrors the paper's query(a, p, l): l is the number of leading path
// bits already consumed by routing, p is the remaining query suffix.
func query(d *directory.Directory, a *peer.Peer, p bitpath.Path, l int, rng *rand.Rand, res *QueryResult) bool {
	path := a.Path()
	rempath := path.Suffix(min(l, path.Len()))
	compath := bitpath.CommonPrefix(p, rempath)

	if compath.Len() == p.Len() || compath.Len() == rempath.Len() {
		// Either the query is exhausted within the peer's path (the peer's
		// region lies inside the query interval) or the peer's path is a
		// prefix of the query (its leaf index covers the key): responsible.
		res.Peer = a.Addr()
		return true
	}

	if path.Len() > l+compath.Len() {
		querypath := p.Suffix(compath.Len())
		refs := a.RefsAt(l + compath.Len() + 1)
		for refs.Len() > 0 {
			r := refs.PopRandom(rng)
			q := d.Peer(r)
			if q == nil || !q.Online() {
				continue
			}
			res.Messages++
			if query(d, q, querypath, l+compath.Len(), rng, res) {
				return true
			}
			res.Backtracks++
		}
	}
	return false
}
