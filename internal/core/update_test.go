package core

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
	"pgrid/internal/trie"
)

func TestFindRoundStrategies(t *testing.T) {
	rng := newRng(1)
	d := trie.BuildIdeal(64, 3, 8, rng)
	key := bitpath.MustParse("101")

	for _, s := range []Strategy{RepeatedDFS, RepeatedDFSBuddies, BreadthFirst} {
		acc := make(map[addr.Addr]bool)
		msgs := FindRound(d, s, key, 3, acc, rng)
		if len(acc) == 0 {
			t.Errorf("%v: found nothing", s)
		}
		if msgs < 0 {
			t.Errorf("%v: negative messages", s)
		}
		for a := range acc {
			if !bitpath.Comparable(d.Peer(a).Path(), key) {
				t.Errorf("%v: non-covering peer %v", s, a)
			}
		}
	}
}

func TestFindRoundDFSFindsAtMostOne(t *testing.T) {
	rng := newRng(2)
	d := trie.BuildIdeal(64, 3, 8, rng)
	acc := make(map[addr.Addr]bool)
	FindRound(d, RepeatedDFS, bitpath.MustParse("000"), 0, acc, rng)
	if len(acc) > 1 {
		t.Errorf("plain DFS found %d replicas in one round", len(acc))
	}
}

func TestFindRoundBuddiesExpandCoverage(t *testing.T) {
	// On the ideal grid buddies are fully populated, so one DFS+buddies
	// round must find the entire replica group of an exact-depth key.
	rng := newRng(3)
	d := trie.BuildIdeal(64, 3, 8, rng)
	key := bitpath.MustParse("110")
	group := d.Covering(key)
	acc := make(map[addr.Addr]bool)
	FindRound(d, RepeatedDFSBuddies, key, 0, acc, rng)
	if len(acc) != len(group) {
		t.Errorf("found %d of %d with buddies", len(acc), len(group))
	}
}

func TestFindRoundBuddySkipsOffline(t *testing.T) {
	rng := newRng(4)
	d := trie.BuildIdeal(16, 1, 8, rng)
	key := bitpath.MustParse("1")
	group := d.Covering(key)
	for i, a := range group {
		if i >= len(group)/2 {
			d.Peer(a).SetOnline(false)
		}
	}
	acc := make(map[addr.Addr]bool)
	FindRound(d, RepeatedDFSBuddies, key, 0, acc, rng)
	for a := range acc {
		if !d.Peer(a).Online() {
			t.Errorf("offline buddy %v updated", a)
		}
	}
}

func TestFindRoundNoOnlinePeers(t *testing.T) {
	rng := newRng(5)
	d := trie.BuildIdeal(8, 1, 4, rng)
	d.SetAllOnline(false)
	acc := make(map[addr.Addr]bool)
	if msgs := FindRound(d, BreadthFirst, bitpath.MustParse("0"), 2, acc, rng); msgs != 0 || len(acc) != 0 {
		t.Errorf("msgs=%d acc=%v with everyone offline", msgs, acc)
	}
}

func TestUpdatePropagatesVersion(t *testing.T) {
	rng := newRng(6)
	d := trie.BuildIdeal(64, 3, 8, rng)
	key := bitpath.MustParse("01") // shorter than depth → BFS can fan out
	entry := store.Entry{Key: key, Name: "doc", Holder: 1, Version: 7}
	res := Update(d, entry, 8, 3, rng)
	if res.Replicas == 0 {
		t.Fatal("update reached no replicas")
	}
	fresh := 0
	for _, a := range d.Covering(key) {
		if e, ok := d.Peer(a).Store().Get(key, "doc"); ok && e.Version == 7 {
			fresh++
		}
	}
	if fresh != res.Replicas {
		t.Errorf("reported %d replicas, %d actually fresh", res.Replicas, fresh)
	}
	if fresh < len(d.Covering(key))/2 {
		t.Errorf("update reached only %d of %d covering peers", fresh, len(d.Covering(key)))
	}
}

func TestUpdateDoesNotRegressVersions(t *testing.T) {
	rng := newRng(7)
	d := trie.BuildIdeal(16, 2, 4, rng)
	key := bitpath.MustParse("0")
	PopulateIndex(d, store.Entry{Key: key, Name: "x", Holder: 1, Version: 10})
	Update(d, store.Entry{Key: key, Name: "x", Holder: 2, Version: 3}, 4, 2, rng)
	for _, a := range d.Covering(key) {
		if e, ok := d.Peer(a).Store().Get(key, "x"); ok && e.Version != 10 {
			t.Fatalf("stale update regressed peer %v to version %d", a, e.Version)
		}
	}
}

func TestReadOnceReturnsStoredEntry(t *testing.T) {
	rng := newRng(8)
	d := trie.BuildIdeal(16, 2, 4, rng)
	key := bitpath.MustParse("11")
	PopulateIndex(d, store.Entry{Key: key, Name: "f", Holder: 3, Version: 2})
	res := ReadOnce(d, d.RandomPeer(rng), key, "f", rng)
	if !res.Found || res.Entry.Version != 2 || res.Entry.Holder != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res.Queries != 1 {
		t.Errorf("Queries = %d", res.Queries)
	}
}

func TestReadOnceMissingName(t *testing.T) {
	rng := newRng(9)
	d := trie.BuildIdeal(16, 2, 4, rng)
	res := ReadOnce(d, d.RandomPeer(rng), bitpath.MustParse("00"), "absent", rng)
	if res.Found {
		t.Fatalf("res = %+v, want not found", res)
	}
}

func TestMajorityReadAllFresh(t *testing.T) {
	rng := newRng(10)
	d := trie.BuildIdeal(64, 2, 8, rng)
	key := bitpath.MustParse("10")
	PopulateIndex(d, store.Entry{Key: key, Name: "f", Holder: 1, Version: 5})
	res := MajorityRead(d, key, "f", MajorityOptions{Margin: 3}, rng)
	if !res.Found || res.Entry.Version != 5 {
		t.Fatalf("res = %+v", res)
	}
	if res.Queries < 3 {
		t.Errorf("decided after %d queries, margin is 3", res.Queries)
	}
}

func TestMajorityReadOutvotesStaleMinority(t *testing.T) {
	rng := newRng(11)
	d := trie.BuildIdeal(64, 2, 8, rng)
	key := bitpath.MustParse("10")
	group := d.Covering(key)
	// All replicas hold v1; a minority (3 of 16) additionally got v2...
	// rather: majority at v2, minority stale at v1.
	for i, a := range group {
		v := uint64(2)
		if i < len(group)/4 {
			v = 1
		}
		d.Peer(a).Store().Apply(store.Entry{Key: key, Name: "f", Holder: 1, Version: v})
	}
	for trial := 0; trial < 10; trial++ {
		res := MajorityRead(d, key, "f", MajorityOptions{Margin: 4}, rng)
		if !res.Found {
			t.Fatal("majority read found nothing")
		}
		if res.Entry.Version != 2 {
			t.Fatalf("trial %d: majority read returned stale version %d", trial, res.Entry.Version)
		}
	}
}

func TestMajorityReadBudgetExhaustedReturnsBestEffort(t *testing.T) {
	rng := newRng(12)
	d := trie.BuildIdeal(16, 2, 4, rng)
	key := bitpath.MustParse("01")
	PopulateIndex(d, store.Entry{Key: key, Name: "f", Holder: 1, Version: 9})
	// Margin larger than the replica group: can never decide, must fall
	// back to the best-supported version.
	res := MajorityRead(d, key, "f", MajorityOptions{Margin: 50, MaxQueries: 30}, rng)
	if !res.Found || res.Entry.Version != 9 {
		t.Fatalf("res = %+v", res)
	}
	if res.Queries != 30 {
		t.Errorf("Queries = %d, want full budget", res.Queries)
	}
}

func TestMajorityReadNothingStored(t *testing.T) {
	rng := newRng(13)
	d := trie.BuildIdeal(16, 2, 4, rng)
	res := MajorityRead(d, bitpath.MustParse("01"), "ghost", MajorityOptions{MaxQueries: 10}, rng)
	if res.Found {
		t.Fatalf("res = %+v", res)
	}
}

func TestMajorityReadNoOnlinePeers(t *testing.T) {
	rng := newRng(14)
	d := trie.BuildIdeal(16, 2, 4, rng)
	d.SetAllOnline(false)
	res := MajorityRead(d, bitpath.MustParse("01"), "f", MajorityOptions{}, rng)
	if res.Found || res.Queries != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPopulateIndexInstallsAtAllCoveringPeers(t *testing.T) {
	rng := newRng(15)
	d := trie.BuildIdeal(32, 2, 4, rng)
	key := bitpath.MustParse("110") // deeper than grid: covered by leaf 11
	n := PopulateIndex(d, store.Entry{Key: key, Name: "f", Holder: 1, Version: 1})
	want := d.Covering(key)
	if n != len(want) {
		t.Fatalf("populated %d, covering set is %d", n, len(want))
	}
	for _, a := range want {
		if _, ok := d.Peer(a).Store().Get(key, "f"); !ok {
			t.Errorf("covering peer %v missing entry", a)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if RepeatedDFS.String() != "repeated-dfs" ||
		RepeatedDFSBuddies.String() != "repeated-dfs+buddies" ||
		BreadthFirst.String() != "breadth-first" ||
		Strategy(99).String() != "unknown-strategy" {
		t.Error("Strategy.String wrong")
	}
}

func TestInsertReachesReplicas(t *testing.T) {
	rng := newRng(16)
	d := trie.BuildIdeal(64, 3, 8, rng)
	entry := store.Entry{Key: bitpath.MustParse("10"), Name: "new", Holder: 5, Version: 1}
	res := Insert(d, entry, 8, rng)
	if res.Replicas == 0 {
		t.Fatal("insert reached nobody")
	}
	found := 0
	for _, a := range d.Covering(entry.Key) {
		if _, ok := d.Peer(a).Store().Get(entry.Key, "new"); ok {
			found++
		}
	}
	if found != res.Replicas {
		t.Errorf("reported %d, stored at %d", res.Replicas, found)
	}
}
