package core

import (
	"fmt"
	"math/rand"
	"strings"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
)

// Hop records one step of a traced search.
type Hop struct {
	// Peer is the peer visited.
	Peer addr.Addr
	// Path is its responsibility path at visit time.
	Path bitpath.Path
	// Level is the absolute number of key bits resolved on arrival.
	Level int
	// Matched reports whether the search terminated here.
	Matched bool
	// Backtracked reports that the subtree under this peer failed and the
	// search returned to try an alternative reference.
	Backtracked bool
}

// Trace is the full route of one search.
type Trace struct {
	Key    bitpath.Path
	Hops   []Hop
	Result QueryResult
}

// String renders the route like
//
//	key 0110: addr(3)[ε/0] → addr(17)[01/1] → addr(9)[0110/2] ✓ (2 msgs)
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "key %s: ", t.Key)
	for i, h := range t.Hops {
		if i > 0 {
			sb.WriteString(" → ")
		}
		fmt.Fprintf(&sb, "%v[%s/%d]", h.Peer, h.Path, h.Level)
		if h.Backtracked {
			sb.WriteString("↩")
		}
	}
	if t.Result.Found {
		fmt.Fprintf(&sb, " ✓ (%d msgs)", t.Result.Messages)
	} else {
		fmt.Fprintf(&sb, " ✗ (%d msgs)", t.Result.Messages)
	}
	return sb.String()
}

// QueryTraced runs the Fig. 2 search like Query but records every hop,
// including backtracking — the route-inspection tool behind pgridsim's
// -trace flag and the routing tests.
func QueryTraced(d *directory.Directory, a *peer.Peer, p bitpath.Path, rng *rand.Rand) Trace {
	t := Trace{Key: p}
	t.Result.Found = queryTraced(d, a, p, 0, rng, &t)
	return t
}

func queryTraced(d *directory.Directory, a *peer.Peer, p bitpath.Path, l int, rng *rand.Rand, t *Trace) bool {
	path := a.Path()
	hop := Hop{Peer: a.Addr(), Path: path, Level: l}
	t.Hops = append(t.Hops, hop)
	idx := len(t.Hops) - 1

	rempath := path.Suffix(min(l, path.Len()))
	compath := bitpath.CommonPrefix(p, rempath)
	if compath.Len() == p.Len() || compath.Len() == rempath.Len() {
		t.Hops[idx].Matched = true
		t.Result.Peer = a.Addr()
		return true
	}

	if path.Len() > l+compath.Len() {
		querypath := p.Suffix(compath.Len())
		refs := a.RefsAt(l + compath.Len() + 1)
		for refs.Len() > 0 {
			r := refs.PopRandom(rng)
			q := d.Peer(r)
			if q == nil || !q.Online() {
				continue
			}
			t.Result.Messages++
			if queryTraced(d, q, querypath, l+compath.Len(), rng, t) {
				return true
			}
			t.Result.Backtracks++
			t.Hops[idx].Backtracked = true
		}
	}
	return false
}
