package core

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
	"pgrid/internal/trace"
)

// Hop records one step of a traced search.
type Hop struct {
	// Peer is the peer visited.
	Peer addr.Addr
	// Path is its responsibility path at visit time.
	Path bitpath.Path
	// Level is the absolute number of key bits resolved on arrival.
	Level int
	// Matched reports whether the search terminated here.
	Matched bool
	// Backtracked reports that the subtree under this peer failed and the
	// search returned to try an alternative reference.
	Backtracked bool
}

// Trace is the full route of one search.
type Trace struct {
	Key    bitpath.Path
	Hops   []Hop
	Result QueryResult
}

// String renders the route through the shared renderer (trace.Render),
// the same one distributed traces use, like
//
//	key 0110: addr(3)[ε/0] → addr(17)[01/1] → addr(9)[0110/2] ✓ (2 msgs)
func (t Trace) String() string {
	return trace.Render(t.Key, t.Spans(), t.Result.Found, t.Result.Messages)
}

// Spans converts the recorded hops into shared trace spans. Latencies
// stay zero — the simulator measures cost in messages, not wall time —
// and span ids are the 1-based hop indexes with each span's parent set
// to the previous hop in visit order (rendering and analysis only use
// order, level, and flags).
func (t Trace) Spans() []trace.Span {
	spans := make([]trace.Span, len(t.Hops))
	for i, h := range t.Hops {
		spans[i] = trace.Span{
			ID:          uint64(i + 1),
			Peer:        h.Peer,
			Path:        h.Path,
			Level:       h.Level,
			Ref:         addr.Nil,
			Matched:     h.Matched,
			Backtracked: h.Backtracked,
		}
		if i > 0 {
			spans[i].Parent = uint64(i)
		}
	}
	return spans
}

// ToTrace packages the route under the given trace id, so simulator
// routes flow through the same renderer and analyzer as routes recorded
// on real networked nodes.
func (t Trace) ToTrace(id uint64) trace.Trace {
	return trace.Trace{
		TraceID:    id,
		Key:        t.Key,
		Found:      t.Result.Found,
		Messages:   t.Result.Messages,
		Backtracks: t.Result.Backtracks,
		Spans:      t.Spans(),
	}
}

// QueryTraced runs the Fig. 2 search like Query but records every hop,
// including backtracking — the route-inspection tool behind pgridsim's
// -trace flag and the routing tests.
func QueryTraced(d *directory.Directory, a *peer.Peer, p bitpath.Path, rng *rand.Rand) Trace {
	t := Trace{Key: p}
	t.Result.Found = queryTraced(d, a, p, 0, rng, &t)
	return t
}

func queryTraced(d *directory.Directory, a *peer.Peer, p bitpath.Path, l int, rng *rand.Rand, t *Trace) bool {
	path := a.Path()
	hop := Hop{Peer: a.Addr(), Path: path, Level: l}
	t.Hops = append(t.Hops, hop)
	idx := len(t.Hops) - 1

	rempath := path.Suffix(min(l, path.Len()))
	compath := bitpath.CommonPrefix(p, rempath)
	if compath.Len() == p.Len() || compath.Len() == rempath.Len() {
		t.Hops[idx].Matched = true
		t.Result.Peer = a.Addr()
		return true
	}

	if path.Len() > l+compath.Len() {
		querypath := p.Suffix(compath.Len())
		refs := a.RefsAt(l + compath.Len() + 1)
		for refs.Len() > 0 {
			r := refs.PopRandom(rng)
			q := d.Peer(r)
			if q == nil || !q.Online() {
				continue
			}
			t.Result.Messages++
			if queryTraced(d, q, querypath, l+compath.Len(), rng, t) {
				return true
			}
			t.Result.Backtracks++
			t.Hops[idx].Backtracked = true
		}
	}
	return false
}
