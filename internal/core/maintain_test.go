package core

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
)

func addrOfInt(i int) addr.Addr { return addr.Addr(i) }

func refsFrom(addrs ...addr.Addr) addr.Set { return addr.NewSet(addrs...) }

func TestMaintainDropsDeadReferences(t *testing.T) {
	rng := newRng(1)
	d := trie.BuildIdeal(64, 3, 4, rng)
	cfg := Config{MaxL: 3, RefMax: 4, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)
	// Kill every reference of peer 0.
	for level := 1; level <= 3; level++ {
		for _, r := range a.RefsAt(level).Slice() {
			d.Peer(r).SetOnline(false)
		}
	}
	res := Maintain(d, cfg, a, MaintainOptions{DropOffline: true}, rng)
	if res.Dropped == 0 {
		t.Fatalf("nothing dropped: %+v", res)
	}
	for level := 1; level <= 3; level++ {
		for _, r := range a.RefsAt(level).Slice() {
			if !d.Online(r) {
				t.Errorf("dead reference %v survived at level %d", r, level)
			}
		}
	}
	if res.Probed != 12 || res.Messages < res.Probed {
		t.Errorf("res = %+v", res)
	}
}

func TestMaintainRefillsFromBuddies(t *testing.T) {
	rng := newRng(2)
	// 64 peers, depth 2, refmax 8: every leaf has 16 replicas, buddies
	// fully populated, but BuildIdeal stores all 8 refs. Shrink peer 0's
	// level-1 set to one live reference, then let refill restore it.
	d := trie.BuildIdeal(64, 2, 8, rng)
	cfg := Config{MaxL: 2, RefMax: 8, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)
	refs := a.RefsAt(1)
	one := refs.Slice()[:1]
	a.SetRefsAt(1, refsFrom(one...))

	res := Maintain(d, cfg, a, MaintainOptions{Fetch: 2}, rng)
	if res.Added == 0 {
		t.Fatalf("refill added nothing: %+v", res)
	}
	got := a.RefsAt(1)
	if got.Len() <= 1 {
		t.Fatalf("level 1 not refilled: %d refs", got.Len())
	}
	// Everything refilled must satisfy the reference invariant.
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainRespectsRefmax(t *testing.T) {
	rng := newRng(3)
	d := trie.BuildIdeal(64, 2, 4, rng)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 4}, rng)
	if got := d.MaxRefsPerLevel(); got > 4 {
		t.Errorf("refmax exceeded after maintenance: %d", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainRepairsAfterDepartureWave(t *testing.T) {
	// The headline extension scenario: a third of the community departs
	// permanently. Without maintenance the reference fabric decays; with
	// maintenance (drop + buddy refill) health recovers.
	rng := newRng(4)
	cfg := Config{MaxL: 3, RefMax: 6, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(240, 3, 6, rng)

	for i := 0; i < 80; i++ {
		d.Peer(addrOfInt(i * 3)).SetOnline(false)
	}
	before := MeasureRefHealth(d, cfg)
	if before.AliveFraction > 0.8 {
		t.Fatalf("departure wave too weak: %+v", before)
	}

	for round := 0; round < 3; round++ {
		MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 3}, rng)
	}
	after := MeasureRefHealth(d, cfg)
	if after.AliveFraction < 0.99 {
		t.Errorf("maintenance did not restore liveness: %+v → %+v", before, after)
	}
	if after.Fill < before.Fill*0.8 {
		t.Errorf("maintenance drained reference sets: fill %v → %v", before.Fill, after.Fill)
	}
}

func TestMaintainImprovesSearchAfterChurn(t *testing.T) {
	cfg := Config{MaxL: 3, RefMax: 4, RecMax: 2, RecFanout: 2}
	run := func(maintain bool) int {
		rng := newRng(5)
		d := trie.BuildIdeal(240, 3, 4, rng)
		// Permanent departures with replacement: half the community.
		for i := 0; i < 120; i++ {
			ReplaceDeparted(d, addrOfInt(i*2))
		}
		if maintain {
			for round := 0; round < 3; round++ {
				MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 3}, rng)
			}
		}
		succ := 0
		for i := 0; i < 300; i++ {
			key := bitpath.Random(rng, 3)
			start := d.RandomOnlinePeer(rng)
			// Survivors only: fresh replacements have empty paths and
			// would trivially "cover" everything.
			for start.PathLen() == 0 {
				start = d.RandomOnlinePeer(rng)
			}
			res := Query(d, start, key, rng)
			if res.Found && d.Peer(res.Peer).PathLen() > 0 {
				succ++
			}
		}
		return succ
	}
	plain := run(false)
	repaired := run(true)
	if repaired < plain {
		t.Errorf("maintenance reduced search success: %d vs %d", repaired, plain)
	}
}

func TestRefillExcludesDroppedSameRound(t *testing.T) {
	// Regression: a reference dropped as dead earlier in the round must
	// never be re-added from a fetched buddy set in the same round, even
	// if it would pass the refill probe (sessionful churn: the peer came
	// back between the probe and the fetch). refillLevel takes the
	// excluded set explicitly, so the race is testable deterministically:
	// the candidate is online and valid, only the exclusion keeps it out.
	rng := newRng(8)
	d := trie.BuildIdeal(16, 2, 4, rng)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)
	r0 := a.RefsAt(1).Slice()[0]
	buddies := d.Peer(r0).Buddies().Slice()
	if len(buddies) != 3 {
		t.Fatalf("fixture: expected 3 buddies of %v, got %v", r0, buddies)
	}
	b1 := buddies[0]
	if !Probe(d, a.Path(), 1, b1) {
		t.Fatalf("fixture: %v should be a live valid level-1 candidate", b1)
	}

	kept := refsFrom(r0)
	live := refsFrom(r0)
	var res MaintainResult

	// Sanity: with no exclusion the candidate IS added.
	probe := kept.Clone()
	refillLevel(d, cfg, a, 1, &probe, live, addr.Set{}, 1, rng, &res)
	if !probe.Contains(b1) {
		t.Fatalf("fixture: %v not refilled even without exclusion", b1)
	}

	// With b1 in the excluded (dropped-this-round) set it must stay out,
	// while its leaf mates still refill the level.
	res = MaintainResult{}
	refillLevel(d, cfg, a, 1, &kept, live, refsFrom(b1), 1, rng, &res)
	if kept.Contains(b1) {
		t.Errorf("excluded address %v re-added by refill", b1)
	}
	if res.Added != 2 || kept.Len() != 3 {
		t.Errorf("refill around exclusion: added %d, kept %v", res.Added, kept)
	}
}

func TestMaintainSessionfulChurn(t *testing.T) {
	// Sessionful churn end to end: a referenced peer goes offline, is
	// dropped (and not re-added the same round), then returns and is
	// legitimately re-learned in a later round — with exact message
	// accounting (every probe one message, every fetch round trip one
	// more) at each step.
	rng := newRng(9)
	d := trie.BuildIdeal(16, 2, 4, rng)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)

	// Pin peer 0's level-1 set to {r0, b1}: one stable reference and one
	// leaf mate of it that will churn. b1's leaf mates are the only
	// refill candidates reachable through r0, which makes every count
	// below deterministic.
	r0 := a.RefsAt(1).Slice()[0]
	buddies := d.Peer(r0).Buddies().Slice()
	b1 := buddies[0]
	a.SetRefsAt(1, refsFrom(r0, b1))
	d.Peer(b1).SetOnline(false) // session ends

	res1 := Maintain(d, cfg, a, MaintainOptions{DropOffline: true, Fetch: 2}, rng)
	if res1.Dropped != 1 {
		t.Fatalf("round 1 dropped = %d, want 1 (%+v)", res1.Dropped, res1)
	}
	if a.RefsAt(1).Contains(b1) {
		t.Fatal("round 1: dropped reference re-added in the same round")
	}
	// Level 1: 2 probes + 1 fetch (only r0 is live); refill adds r0's two
	// other leaf mates. Level 2: 4 probes, set full, no refill.
	if res1.Probed != 6 || res1.Messages != 7 || res1.Added != 2 {
		t.Errorf("round 1 accounting = %+v, want Probed 6, Messages 7, Added 2", res1)
	}

	// The peer returns: a later round may legitimately re-learn it (it is
	// a buddy of every live level-1 reference).
	d.Peer(b1).SetOnline(true)
	res2 := Maintain(d, cfg, a, MaintainOptions{DropOffline: true, Fetch: 2}, rng)
	if !a.RefsAt(1).Contains(b1) {
		t.Errorf("returned peer %v not re-learned: %v", b1, a.RefsAt(1))
	}
	// Level 1: 3 probes + 1 fetch (the first fetched leaf mate already
	// yields b1, filling the set to refmax). Level 2: 4 probes.
	if res2.Probed != 7 || res2.Messages != 8 || res2.Added != 1 || res2.Dropped != 0 {
		t.Errorf("round 2 accounting = %+v, want Probed 7, Messages 8, Added 1, Dropped 0", res2)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDetectsReplacedPeers(t *testing.T) {
	rng := newRng(6)
	d := trie.BuildIdeal(16, 2, 4, rng)
	a := d.Peer(0)
	self := a.Path()
	r := a.RefsAt(1).Slice()[0]
	if !Probe(d, self, 1, r) {
		t.Fatal("live valid reference failed probe")
	}
	// Replace the referenced peer: address resolves, state is gone.
	ReplaceDeparted(d, r)
	if Probe(d, self, 1, r) {
		t.Error("replaced peer passed probe")
	}
	d.Peer(r).SetOnline(false)
	if Probe(d, self, 1, r) {
		t.Error("offline peer passed probe")
	}
	if Probe(d, self, 1, 9999) {
		t.Error("dangling address passed probe")
	}
}

func TestMeasureRefHealth(t *testing.T) {
	rng := newRng(7)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(32, 2, 4, rng)
	h := MeasureRefHealth(d, cfg)
	if h.AliveFraction != 1 || h.Fill != 1 || h.Refs != 32*2*4 {
		t.Fatalf("fresh grid health = %+v", h)
	}
	d.SetAllOnline(false)
	h = MeasureRefHealth(d, cfg)
	if h.AliveFraction != 0 {
		t.Errorf("all-offline alive fraction = %v", h.AliveFraction)
	}
}
