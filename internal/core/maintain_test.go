package core

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
)

func addrOfInt(i int) addr.Addr { return addr.Addr(i) }

func refsFrom(addrs ...addr.Addr) addr.Set { return addr.NewSet(addrs...) }

func TestMaintainDropsDeadReferences(t *testing.T) {
	rng := newRng(1)
	d := trie.BuildIdeal(64, 3, 4, rng)
	cfg := Config{MaxL: 3, RefMax: 4, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)
	// Kill every reference of peer 0.
	for level := 1; level <= 3; level++ {
		for _, r := range a.RefsAt(level).Slice() {
			d.Peer(r).SetOnline(false)
		}
	}
	res := Maintain(d, cfg, a, MaintainOptions{DropOffline: true}, rng)
	if res.Dropped == 0 {
		t.Fatalf("nothing dropped: %+v", res)
	}
	for level := 1; level <= 3; level++ {
		for _, r := range a.RefsAt(level).Slice() {
			if !d.Online(r) {
				t.Errorf("dead reference %v survived at level %d", r, level)
			}
		}
	}
	if res.Probed != 12 || res.Messages < res.Probed {
		t.Errorf("res = %+v", res)
	}
}

func TestMaintainRefillsFromBuddies(t *testing.T) {
	rng := newRng(2)
	// 64 peers, depth 2, refmax 8: every leaf has 16 replicas, buddies
	// fully populated, but BuildIdeal stores all 8 refs. Shrink peer 0's
	// level-1 set to one live reference, then let refill restore it.
	d := trie.BuildIdeal(64, 2, 8, rng)
	cfg := Config{MaxL: 2, RefMax: 8, RecMax: 2, RecFanout: 2}
	a := d.Peer(0)
	refs := a.RefsAt(1)
	one := refs.Slice()[:1]
	a.SetRefsAt(1, refsFrom(one...))

	res := Maintain(d, cfg, a, MaintainOptions{Fetch: 2}, rng)
	if res.Added == 0 {
		t.Fatalf("refill added nothing: %+v", res)
	}
	got := a.RefsAt(1)
	if got.Len() <= 1 {
		t.Fatalf("level 1 not refilled: %d refs", got.Len())
	}
	// Everything refilled must satisfy the reference invariant.
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainRespectsRefmax(t *testing.T) {
	rng := newRng(3)
	d := trie.BuildIdeal(64, 2, 4, rng)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 4}, rng)
	if got := d.MaxRefsPerLevel(); got > 4 {
		t.Errorf("refmax exceeded after maintenance: %d", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainRepairsAfterDepartureWave(t *testing.T) {
	// The headline extension scenario: a third of the community departs
	// permanently. Without maintenance the reference fabric decays; with
	// maintenance (drop + buddy refill) health recovers.
	rng := newRng(4)
	cfg := Config{MaxL: 3, RefMax: 6, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(240, 3, 6, rng)

	for i := 0; i < 80; i++ {
		d.Peer(addrOfInt(i * 3)).SetOnline(false)
	}
	before := MeasureRefHealth(d, cfg)
	if before.AliveFraction > 0.8 {
		t.Fatalf("departure wave too weak: %+v", before)
	}

	for round := 0; round < 3; round++ {
		MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 3}, rng)
	}
	after := MeasureRefHealth(d, cfg)
	if after.AliveFraction < 0.99 {
		t.Errorf("maintenance did not restore liveness: %+v → %+v", before, after)
	}
	if after.Fill < before.Fill*0.8 {
		t.Errorf("maintenance drained reference sets: fill %v → %v", before.Fill, after.Fill)
	}
}

func TestMaintainImprovesSearchAfterChurn(t *testing.T) {
	cfg := Config{MaxL: 3, RefMax: 4, RecMax: 2, RecFanout: 2}
	run := func(maintain bool) int {
		rng := newRng(5)
		d := trie.BuildIdeal(240, 3, 4, rng)
		// Permanent departures with replacement: half the community.
		for i := 0; i < 120; i++ {
			ReplaceDeparted(d, addrOfInt(i*2))
		}
		if maintain {
			for round := 0; round < 3; round++ {
				MaintainAll(d, cfg, MaintainOptions{DropOffline: true, Fetch: 3}, rng)
			}
		}
		succ := 0
		for i := 0; i < 300; i++ {
			key := bitpath.Random(rng, 3)
			start := d.RandomOnlinePeer(rng)
			// Survivors only: fresh replacements have empty paths and
			// would trivially "cover" everything.
			for start.PathLen() == 0 {
				start = d.RandomOnlinePeer(rng)
			}
			res := Query(d, start, key, rng)
			if res.Found && d.Peer(res.Peer).PathLen() > 0 {
				succ++
			}
		}
		return succ
	}
	plain := run(false)
	repaired := run(true)
	if repaired < plain {
		t.Errorf("maintenance reduced search success: %d vs %d", repaired, plain)
	}
}

func TestProbeDetectsReplacedPeers(t *testing.T) {
	rng := newRng(6)
	d := trie.BuildIdeal(16, 2, 4, rng)
	a := d.Peer(0)
	self := a.Path()
	r := a.RefsAt(1).Slice()[0]
	if !Probe(d, self, 1, r) {
		t.Fatal("live valid reference failed probe")
	}
	// Replace the referenced peer: address resolves, state is gone.
	ReplaceDeparted(d, r)
	if Probe(d, self, 1, r) {
		t.Error("replaced peer passed probe")
	}
	d.Peer(r).SetOnline(false)
	if Probe(d, self, 1, r) {
		t.Error("offline peer passed probe")
	}
	if Probe(d, self, 1, 9999) {
		t.Error("dangling address passed probe")
	}
}

func TestMeasureRefHealth(t *testing.T) {
	rng := newRng(7)
	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(32, 2, 4, rng)
	h := MeasureRefHealth(d, cfg)
	if h.AliveFraction != 1 || h.Fill != 1 || h.Refs != 32*2*4 {
		t.Fatalf("fresh grid health = %+v", h)
	}
	d.SetAllOnline(false)
	h = MeasureRefHealth(d, cfg)
	if h.AliveFraction != 0 {
		t.Errorf("all-offline alive fraction = %v", h.AliveFraction)
	}
}
