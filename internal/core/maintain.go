package core

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
)

// This file implements the reference-maintenance extension sketched in the
// paper's Section 6 ("another natural extension would be to take system
// parameters, like known reliability of peers … into account"). The base
// algorithm builds reference sets once, during construction; under
// long-running churn, references decay as peers leave permanently. The
// maintenance protocol lets a peer refresh its reference sets using only
// local interactions: it probes its references, drops those that look
// dead, and refills levels by asking live references for *their* entries
// at the same level (which are valid for the asker by the Section 2
// invariant, since both sides of the probe share the prefix above it).

// MaintainResult reports one maintenance round of a single peer.
type MaintainResult struct {
	// Probed is the number of references probed.
	Probed int
	// Dropped is the number of references removed as dead.
	Dropped int
	// Added is the number of fresh references learned.
	Added int
	// Messages is the message cost (probes + successful fetches).
	Messages int
}

// MaintainOptions tunes reference maintenance.
type MaintainOptions struct {
	// DropOffline removes references that fail the probe this round.
	// With sessionful churn (peers return), dropping is too eager unless
	// refill keeps sets full; both paths are exercised by the ablation
	// benchmark.
	DropOffline bool
	// Fetch asks up to this many live references per level for their own
	// reference sets to refill the level (0 disables refill).
	Fetch int
}

// Maintain runs one maintenance round for peer a: for every level of its
// path, probe the references, optionally drop the dead, and refill the
// level toward cfg.RefMax by merging reference sets fetched from live
// same-level references.
func Maintain(d *directory.Directory, cfg Config, a *peer.Peer, opts MaintainOptions, rng *rand.Rand) MaintainResult {
	var res MaintainResult
	path := a.Path()
	for level := 1; level <= path.Len(); level++ {
		refs := a.RefsAt(level)
		live := addr.Set{}
		dead := addr.Set{}
		for _, r := range refs.Slice() {
			res.Probed++
			res.Messages++ // the probe itself
			// Probe, don't just ping: a departed peer may have been
			// replaced by a blank newcomer at the same address, which
			// answers but covers nothing the reference promises.
			if Probe(d, path, level, r) {
				live.Add(r)
			} else {
				dead.Add(r)
			}
		}

		kept := refs
		excluded := addr.Set{}
		if opts.DropOffline {
			kept = live.Clone()
			res.Dropped += dead.Len()
			// References dropped as dead this round must not sneak back in
			// via refill below: a fetched buddy set is a stale snapshot,
			// and readmitting an address we just probed dead would undo the
			// drop with information older than the probe.
			excluded = dead
		}

		if opts.Fetch > 0 && kept.Len() < cfg.RefMax {
			refillLevel(d, cfg, a, level, &kept, live, excluded, opts.Fetch, rng, &res)
		}
		if kept.Len() > 0 || opts.DropOffline {
			setRefsClamped(a, level, kept, cfg.RefMax, rng)
		}
	}
	return res
}

// refillLevel refills one level toward cfg.RefMax by merging reference
// sets fetched from live same-level references, mutating kept in place.
// Their level-`level` references point to peers on THEIR opposite side —
// which is our own side, so they are NOT valid for us; their references
// at any deeper level are useless too (deeper prefixes differ). The
// correct refill source is their *buddies*: any peer with the same first
// `level` bits as the live reference is a valid level-`level` reference
// for us. Addresses in excluded are never added, no matter what the
// fetched sets claim — Maintain passes the set it dropped as dead this
// round, so a stale buddy list cannot resurrect a dead reference in the
// same round that buried it.
func refillLevel(d *directory.Directory, cfg Config, a *peer.Peer, level int, kept *addr.Set, live, excluded addr.Set, fetchMax int, rng *rand.Rand, res *MaintainResult) {
	fetched := 0
	path := a.Path()
	for _, r := range live.Shuffled(rng) {
		if fetched >= fetchMax || kept.Len() >= cfg.RefMax {
			break
		}
		q := d.Peer(r)
		if q == nil {
			continue
		}
		res.Messages++ // the fetch round trip
		fetched++
		for _, b := range q.Buddies().Slice() {
			if kept.Len() >= cfg.RefMax {
				break
			}
			if b == a.Addr() || kept.Contains(b) || excluded.Contains(b) || !Probe(d, path, level, b) {
				continue
			}
			// A live buddy of a valid level reference shares its
			// full path, hence its first `level` bits: valid for us.
			if kept.Add(b) {
				res.Added++
			}
		}
	}
}

func setRefsClamped(a *peer.Peer, level int, s addr.Set, refmax int, rng *rand.Rand) {
	if s.Len() > refmax {
		s = s.RandomSubset(rng, refmax)
	}
	a.SetRefsAt(level, s)
}

// MaintainAll runs one maintenance round for every online peer and sums
// the results.
func MaintainAll(d *directory.Directory, cfg Config, opts MaintainOptions, rng *rand.Rand) MaintainResult {
	var total MaintainResult
	for _, p := range d.All() {
		if !p.Online() {
			continue
		}
		r := Maintain(d, cfg, p, opts, rng)
		total.Probed += r.Probed
		total.Dropped += r.Dropped
		total.Added += r.Added
		total.Messages += r.Messages
	}
	return total
}

// RefHealth measures the state of the community's reference fabric: the
// fraction of references pointing at *valid* peers (online and still
// covering the promised prefix), and the mean fill level of reference sets
// relative to refmax. The maintenance experiments track these under churn.
type RefHealth struct {
	// AliveFraction is the fraction of references that pass Probe
	// (1 = perfectly fresh).
	AliveFraction float64
	// Fill is the mean reference-set size divided by refmax.
	Fill float64
	// Refs is the total reference count.
	Refs int
}

// MeasureRefHealth computes RefHealth over the online community — the
// reference tables actually in service (offline peers' tables are assessed
// when they return and run their own maintenance).
func MeasureRefHealth(d *directory.Directory, cfg Config) RefHealth {
	var alive, total, levels int
	for _, p := range d.All() {
		if !p.Online() {
			continue
		}
		s := p.Snapshot()
		for level, rs := range s.Refs {
			levels++
			for _, r := range rs.Slice() {
				total++
				if Probe(d, s.Path, level+1, r) {
					alive++
				}
			}
		}
	}
	var h RefHealth
	h.Refs = total
	if total > 0 {
		h.AliveFraction = float64(alive) / float64(total)
	}
	if levels > 0 && cfg.RefMax > 0 {
		h.Fill = float64(total) / float64(levels) / float64(cfg.RefMax)
	}
	return h
}

// ReplaceDeparted models permanent departure with replacement, the
// community dynamics of long-lived systems: the peer at address a leaves
// for good and a fresh peer (empty path, no references, no data) takes
// over the address. Existing references to a become dangling-but-
// resolvable: they now point at a peer that is responsible for nothing
// they expect — exactly what maintenance must detect and repair. Returns
// the new peer.
func ReplaceDeparted(d *directory.Directory, a addr.Addr) *peer.Peer {
	return d.Replace(a)
}

// Probe reports whether the peer at r is online and still covers the
// prefix the prober expects (prefix of length level-1 shared, bit level
// opposite). Maintenance uses it to detect replaced peers, not just
// offline ones.
func Probe(d *directory.Directory, self bitpath.Path, level int, r addr.Addr) bool {
	q := d.Peer(r)
	if q == nil || !q.Online() {
		return false
	}
	qp := q.Path()
	return qp.Len() >= level &&
		qp.Prefix(level-1) == self.Prefix(level-1) &&
		qp.Bit(level) != self.Bit(level)
}
