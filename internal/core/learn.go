package core

import (
	"math/rand"

	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
)

// Route learning — the "optimizing P-Grid construction and updates" item
// of the paper's Section 6: search traffic itself carries information
// about live peers. When a search succeeds, every peer that forwarded it
// now knows a responsible peer for the key's region; if that peer would be
// a valid reference at one of the forwarder's levels and there is room,
// the forwarder keeps it. Reference sets fill up "for free" as the system
// is used, instead of only through construction meetings.

// LearnFromTrace lets every peer on a successful traced route learn the
// responsible peer as a reference where valid, up to cfg.RefMax per level
// (existing references are never evicted — learning only fills spare
// capacity). It returns the number of references added.
func LearnFromTrace(d *directory.Directory, cfg Config, t Trace) int {
	if !t.Result.Found {
		return 0
	}
	target := d.Peer(t.Result.Peer)
	if target == nil {
		return 0
	}
	targetPath := target.Path()
	added := 0
	for _, hop := range t.Hops {
		if hop.Peer == t.Result.Peer {
			continue
		}
		p := d.Peer(hop.Peer)
		if p == nil {
			continue
		}
		path := p.Path()
		// The responsible peer is a valid reference for this hop at the
		// level where their paths first diverge.
		j := bitpath.CommonPrefixLen(path, targetPath) + 1
		if j > path.Len() || j > targetPath.Len() {
			continue // prefix relation: no diverging level to file it under
		}
		refs := p.RefsAt(j)
		if refs.Len() >= cfg.RefMax || refs.Contains(t.Result.Peer) {
			continue
		}
		p.AddRefAt(j, t.Result.Peer)
		added++
	}
	return added
}

// Warm runs `queries` traced searches for uniform random keys of length
// keyLen from random online entry points, learning references from every
// successful route. It returns total references learned and messages
// spent. Use it to thicken routing tables after construction or repair.
func Warm(d *directory.Directory, cfg Config, queries, keyLen int, rng *rand.Rand) (learned, messages int) {
	for i := 0; i < queries; i++ {
		start := d.RandomOnlinePeer(rng)
		if start == nil {
			return learned, messages
		}
		t := QueryTraced(d, start, bitpath.Random(rng, keyLen), rng)
		messages += t.Result.Messages
		learned += LearnFromTrace(d, cfg, t)
	}
	return learned, messages
}
