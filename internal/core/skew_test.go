package core

import (
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/store"
)

// Tests for the data-aware splitting gate (Config.SplitMinItems) and the
// replica anti-entropy added for the skew extension.

func seedItems(d *directory.Directory, peerIdx int, keys ...string) {
	for i, k := range keys {
		d.Peer(addrOfInt(peerIdx)).Store().Apply(store.Entry{
			Key: bitpath.MustParse(k), Name: k + "-" + string(rune('a'+i)), Holder: 1, Version: 1,
		})
	}
}

func TestSplitGateBlocksEmptyRegions(t *testing.T) {
	rng := newRng(1)
	cfg := Config{MaxL: 6, RefMax: 2, RecMax: 0, SplitMinItems: 4}
	d := directory.New(2)
	// Only 2 items between them: below the threshold, no split.
	seedItems(d, 0, "0000")
	seedItems(d, 1, "1000")
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), rng)
	if d.Peer(0).PathLen() != 0 || d.Peer(1).PathLen() != 0 {
		t.Fatalf("split happened below threshold: %q, %q", d.Peer(0).Path(), d.Peer(1).Path())
	}
	// They become replicas (buddies) of the unsplit region instead.
	if !d.Peer(0).Buddies().Contains(1) {
		t.Error("under-threshold meeting did not record buddies")
	}
}

func TestSplitGateAllowsDenseRegions(t *testing.T) {
	rng := newRng(2)
	cfg := Config{MaxL: 6, RefMax: 2, RecMax: 0, SplitMinItems: 4}
	d := directory.New(2)
	seedItems(d, 0, "0000", "0001", "0010")
	seedItems(d, 1, "1000", "1001")
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), rng)
	if d.Peer(0).Path() != "0" || d.Peer(1).Path() != "1" {
		t.Fatalf("dense region did not split: %q, %q", d.Peer(0).Path(), d.Peer(1).Path())
	}
	// Data migrated to the right sides.
	if d.Peer(0).Store().Len() != 3 || d.Peer(1).Store().Len() != 2 {
		t.Errorf("stores after split: %d, %d", d.Peer(0).Store().Len(), d.Peer(1).Store().Len())
	}
}

func TestAntiEntropyMergesReplicaIndexes(t *testing.T) {
	rng := newRng(3)
	cfg := Config{MaxL: 1, RefMax: 2, RecMax: 0}
	d := directory.New(3)
	// Peers 0 and 1 both at path "0" (replicas at maxl); each knows a
	// different entry, and one entry in two versions.
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, refsFrom(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, refsFrom(2))
	d.Peer(2).ExtendFrom(bitpath.Empty, 1, refsFrom(0))
	d.Peer(0).Store().Apply(store.Entry{Key: "00", Name: "a", Holder: 1, Version: 1})
	d.Peer(0).Store().Apply(store.Entry{Key: "01", Name: "shared", Holder: 1, Version: 5})
	d.Peer(1).Store().Apply(store.Entry{Key: "01", Name: "b", Holder: 2, Version: 1})
	d.Peer(1).Store().Apply(store.Entry{Key: "01", Name: "shared", Holder: 9, Version: 3})

	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), rng)

	for _, pi := range []int{0, 1} {
		st := d.Peer(addrOfInt(pi)).Store()
		if _, ok := st.Get("00", "a"); !ok {
			t.Errorf("peer %d missing entry a after anti-entropy", pi)
		}
		if _, ok := st.Get("01", "b"); !ok {
			t.Errorf("peer %d missing entry b after anti-entropy", pi)
		}
		if e, _ := st.Get("01", "shared"); e.Version != 5 {
			t.Errorf("peer %d has shared at version %d, want freshest 5", pi, e.Version)
		}
	}
}

func TestDataAwareBuildAdaptsDepthToSkew(t *testing.T) {
	// Under a skewed catalog, data-aware splitting must give hot regions
	// deeper paths than cold regions — the adaptive behaviour the paper's
	// Section 6 calls for.
	rng := newRng(4)
	cfg := Config{MaxL: 8, RefMax: 3, RecMax: 2, RecFanout: 2, SplitMinItems: 8}
	d := directory.New(200)
	// 90% of items under prefix 00, the rest spread over 01/10/11.
	for i := 0; i < 2000; i++ {
		var key bitpath.Path
		if i%10 != 0 {
			key = "00" + bitpath.Random(rng, 6)
		} else {
			key = bitpath.Random(rng, 8)
			if key.HasPrefix("00") {
				key = "11" + key.Suffix(2)
			}
		}
		p := d.RandomPeer(rng)
		p.Store().Apply(store.Entry{Key: key, Name: key.String() + "-" + string(rune('a'+i%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i/676)), Holder: p.Addr(), Version: 1})
	}
	var m Metrics
	for i := 0; i < 60000; i++ {
		a1, a2 := d.RandomPair(rng)
		Exchange(d, cfg, &m, a1, a2, rng)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	var hotDepth, hotN, coldDepth, coldN int
	for _, p := range d.All() {
		path := p.Path()
		if path.Len() < 2 {
			continue
		}
		if path.HasPrefix("00") {
			hotDepth += path.Len()
			hotN++
		} else {
			coldDepth += path.Len()
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Fatalf("degenerate split: hot=%d cold=%d", hotN, coldN)
	}
	hot := float64(hotDepth) / float64(hotN)
	cold := float64(coldDepth) / float64(coldN)
	if hot <= cold+0.5 {
		t.Errorf("hot region depth %.2f not deeper than cold %.2f", hot, cold)
	}
}
