package core

import (
	"math/rand"
	"sort"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
	"pgrid/internal/store"
)

// Strategy selects how an update locates the replicas of a key
// (Section 5.2 compares the three).
type Strategy int

const (
	// RepeatedDFS runs independent depth-first searches, each finding at
	// most one replica.
	RepeatedDFS Strategy = iota
	// RepeatedDFSBuddies runs depth-first searches and additionally
	// contacts the online buddies of every replica found.
	RepeatedDFSBuddies
	// BreadthFirst runs breadth-first searches following recbreadth
	// references per level (the strategy the paper finds far superior).
	BreadthFirst
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case RepeatedDFS:
		return "repeated-dfs"
	case RepeatedDFSBuddies:
		return "repeated-dfs+buddies"
	case BreadthFirst:
		return "breadth-first"
	default:
		return "unknown-strategy"
	}
}

// FindRound runs one round of the given replica-location strategy for key,
// starting at a random online peer, and merges newly found replicas into
// acc (a set of replica addresses). It returns the messages spent this
// round. recbreadth is only used by BreadthFirst.
func FindRound(d *directory.Directory, s Strategy, key bitpath.Path, recbreadth int, acc map[addr.Addr]bool, rng *rand.Rand) int {
	start := d.RandomOnlinePeer(rng)
	if start == nil {
		return 0
	}
	switch s {
	case RepeatedDFS, RepeatedDFSBuddies:
		res := Query(d, start, key, rng)
		msgs := res.Messages
		if !res.Found {
			return msgs
		}
		acc[res.Peer] = true
		if s == RepeatedDFSBuddies {
			for _, b := range d.Peer(res.Peer).Buddies().Slice() {
				if acc[b] || !d.Online(b) {
					continue
				}
				msgs++ // contacting the buddy is one message
				acc[b] = true
			}
		}
		return msgs
	case BreadthFirst:
		res := ReplicaSearch(d, start, key, recbreadth, rng)
		for _, a := range res.Found {
			acc[a] = true
		}
		return res.Messages
	default:
		return 0
	}
}

// UpdateResult reports an update propagation.
type UpdateResult struct {
	// Replicas is the number of distinct covering peers that received the
	// new entry.
	Replicas int
	// Messages is the total insertion cost.
	Messages int
}

// Update propagates entry to the replicas of entry.Key using `repetition`
// breadth-first searches with the given recbreadth, the scheme evaluated in
// the final table of Section 5.2. Every located covering peer applies the
// entry (version-monotone).
func Update(d *directory.Directory, entry store.Entry, recbreadth, repetition int, rng *rand.Rand) UpdateResult {
	found := make(map[addr.Addr]bool)
	msgs := 0
	for i := 0; i < repetition; i++ {
		msgs += FindRound(d, BreadthFirst, entry.Key, recbreadth, found, rng)
	}
	for a := range found {
		d.Peer(a).Store().Apply(entry)
	}
	return UpdateResult{Replicas: len(found), Messages: msgs}
}

// Insert publishes a new entry by spreading it with two breadth-first
// passes from independent random entry points, so that coverage of the
// replica group never hinges on a single unlucky entry (a pass started
// inside an exact-depth replica group reaches only the start peer, because
// no reference can point at a same-path replica). Replicas == 0 means no
// responsible peer was reachable (retry from another entry point).
func Insert(d *directory.Directory, entry store.Entry, recbreadth int, rng *rand.Rand) UpdateResult {
	return Update(d, entry, recbreadth, 2, rng)
}

// ReadResult reports a read.
type ReadResult struct {
	// Entry is the value read (zero when !Found).
	Entry store.Entry
	// Found reports whether a responsible peer was reached AND it had an
	// entry for the (key, name).
	Found bool
	// Replica is the responsible peer that answered.
	Replica addr.Addr
	// Messages is the total message cost.
	Messages int
	// Queries is the number of depth-first searches performed (1 for
	// ReadOnce, ≥1 for MajorityRead).
	Queries int
}

// ReadOnce performs one depth-first search from start and returns the
// entry stored for (key, name) at the responsible peer found. This is the
// paper's "non-repetitive search": it trusts a single replica, so it
// returns stale data when the replica missed an update.
func ReadOnce(d *directory.Directory, start *peer.Peer, key bitpath.Path, name string, rng *rand.Rand) ReadResult {
	res := Query(d, start, key, rng)
	out := ReadResult{Messages: res.Messages, Queries: 1}
	if !res.Found {
		return out
	}
	out.Replica = res.Peer
	e, ok := d.Peer(res.Peer).Store().Get(key, name)
	if !ok {
		return out
	}
	out.Entry = e
	out.Found = true
	return out
}

// MajorityOptions tunes MajorityRead.
type MajorityOptions struct {
	// Margin is the lead (in distinct replicas) the winning version must
	// have over the runner-up before the read commits. Higher margins
	// trade messages for confidence. Default 3.
	Margin int
	// MaxQueries bounds the number of depth-first searches. Default 64.
	MaxQueries int
}

func (o MajorityOptions) withDefaults() MajorityOptions {
	if o.Margin <= 0 {
		o.Margin = 3
	}
	if o.MaxQueries <= 0 {
		o.MaxQueries = 64
	}
	return o
}

// MajorityRead implements the paper's "repetitive search" read protocol:
// repeat independent depth-first searches from random online entry points,
// collect the versions reported by *distinct* replicas, and decide by
// majority once one version leads by opts.Margin distinct replicas. If more
// than half the replicas are up to date this converges to the correct value
// with arbitrarily high probability as the margin grows (Section 5.2).
func MajorityRead(d *directory.Directory, key bitpath.Path, name string, opts MajorityOptions, rng *rand.Rand) ReadResult {
	opts = opts.withDefaults()
	votes := make(map[uint64]int)           // version → distinct replica count
	entries := make(map[uint64]store.Entry) // version → a representative entry
	seen := make(map[addr.Addr]bool)

	var out ReadResult
	decided := func() (uint64, bool) {
		// Order versions by votes (desc); commit when the leader's margin
		// over the runner-up reaches opts.Margin.
		type vc struct {
			v uint64
			c int
		}
		vcs := make([]vc, 0, len(votes))
		for v, c := range votes {
			vcs = append(vcs, vc{v, c})
		}
		sort.Slice(vcs, func(i, j int) bool {
			if vcs[i].c != vcs[j].c {
				return vcs[i].c > vcs[j].c
			}
			return vcs[i].v > vcs[j].v
		})
		if len(vcs) == 0 {
			return 0, false
		}
		lead := vcs[0].c
		second := 0
		if len(vcs) > 1 {
			second = vcs[1].c
		}
		if lead-second >= opts.Margin {
			return vcs[0].v, true
		}
		return 0, false
	}

	for out.Queries = 0; out.Queries < opts.MaxQueries; {
		start := d.RandomOnlinePeer(rng)
		if start == nil {
			break
		}
		r := ReadOnce(d, start, key, name, rng)
		out.Queries++
		out.Messages += r.Messages
		if r.Found && !seen[r.Replica] {
			seen[r.Replica] = true
			votes[r.Entry.Version]++
			entries[r.Entry.Version] = r.Entry
			if v, ok := decided(); ok {
				out.Entry = entries[v]
				out.Replica = r.Replica
				out.Found = true
				return out
			}
		}
	}
	// Budget exhausted: return the best-supported version seen, if any.
	best, bestVotes := uint64(0), 0
	for v, c := range votes {
		if c > bestVotes || (c == bestVotes && v > best) {
			best, bestVotes = v, c
		}
	}
	if bestVotes > 0 {
		out.Entry = entries[best]
		out.Found = true
	}
	return out
}

// PopulateIndex installs entry at every peer currently covering its key,
// using global knowledge. This is an experiment-setup oracle (the paper
// likewise assumes a consistent index exists before measuring search and
// update behaviour); real insertions go through Insert/Update.
func PopulateIndex(d *directory.Directory, entries ...store.Entry) int {
	n := 0
	for _, e := range entries {
		for _, p := range d.All() {
			path := p.Path()
			if bitpath.Comparable(path, e.Key) {
				p.Store().Apply(e)
				n++
			}
		}
	}
	return n
}
