package core

import (
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
)

func TestJoinNewcomerSpecializesToFullDepth(t *testing.T) {
	rng := newRng(1)
	cfg := Config{MaxL: 4, RefMax: 4, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(128, 4, 4, rng)
	var m Metrics

	p := d.AddPeer()
	res := Join(d, cfg, &m, p, cfg.MaxL, 500, rng)
	if !res.Settled || res.Depth != 4 {
		t.Fatalf("join did not settle: %+v (path %q)", res, p.Path())
	}
	if res.Meetings == 0 || res.Exchanges < int64(res.Meetings) {
		t.Errorf("counters: %+v", res)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("join broke invariants: %v", err)
	}
	// The newcomer must be routable: searches for keys under its path
	// can end at it, and searches from it succeed.
	for i := 0; i < 50; i++ {
		key := bitpath.Random(rng, 4)
		if !Query(d, p, key, rng).Found {
			t.Fatalf("query %s from newcomer failed", key)
		}
	}
}

func TestJoinCostStaysFlatAsCommunityGrows(t *testing.T) {
	rng := newRng(2)
	cfg := Config{MaxL: 4, RefMax: 4, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(64, 4, 4, rng)
	var m Metrics

	results := Grow(d, cfg, &m, 64, 500, rng)
	if len(results) != 64 {
		t.Fatalf("results = %d", len(results))
	}
	settled := 0
	firstHalf, secondHalf := 0, 0
	for i, r := range results {
		if r.Settled {
			settled++
		}
		if i < 32 {
			firstHalf += r.Meetings
		} else {
			secondHalf += r.Meetings
		}
	}
	if settled < 60 {
		t.Fatalf("only %d/64 joins settled", settled)
	}
	// Doubling the community must not inflate per-join cost: O(depth)
	// targeted meetings either way. Allow generous noise.
	if float64(secondHalf) > 3*float64(firstHalf) {
		t.Errorf("join cost exploded as community grew: %d → %d meetings per 32 joins",
			firstHalf, secondHalf)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinWithNoOnlinePeers(t *testing.T) {
	rng := newRng(3)
	cfg := Config{MaxL: 3, RefMax: 2, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(16, 3, 2, rng)
	d.SetAllOnline(false)
	var m Metrics
	p := d.AddPeer()
	p.SetOnline(true)
	res := Join(d, cfg, &m, p, cfg.MaxL, 100, rng)
	// The only online peer is the newcomer itself: no progress, no panic.
	if res.Settled || res.Depth != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestJoinBudgetExhaustion(t *testing.T) {
	rng := newRng(4)
	cfg := Config{MaxL: 10, RefMax: 2, RecMax: 0} // no recursion: slow
	d := trie.BuildIdeal(8, 1, 2, rng)            // depth-1 community, target 10
	var m Metrics
	p := d.AddPeer()
	res := Join(d, cfg, &m, p, 10, 5, rng)
	if res.Settled {
		t.Errorf("settled to depth 10 in 5 meetings against a depth-1 grid: %+v", res)
	}
	if res.Meetings != 5 {
		t.Errorf("meetings = %d", res.Meetings)
	}
}
