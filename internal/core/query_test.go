package core

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/trie"
)

// buildFig1 hand-builds the example grid of Fig. 1 of the paper:
//
//	addr 0 ("peer 1"): path 00, level-1 ref → 2 (peer 3), level-2 ref → 1
//	addr 1 ("peer 2"): path 01, level-1 ref → 3 (peer 4), level-2 ref → 0
//	addr 2 ("peer 3"): path 10, level-1 ref → 0 (peer 1), level-2 ref → 4
//	addr 3 ("peer 4"): path 10, level-1 ref → 1 (peer 2), level-2 ref → 5
//	addr 4 ("peer 5"): path 11, level-1 ref → 0 (peer 1), level-2 ref → 2
//	addr 5 ("peer 6"): path 11, level-1 ref → 1 (peer 2), level-2 ref → 3
func buildFig1(t *testing.T) *directory.Directory {
	t.Helper()
	d := directory.New(6)
	spec := []struct {
		path   string
		l1, l2 addr.Addr
	}{
		{"00", 2, 1},
		{"01", 3, 0},
		{"10", 0, 4},
		{"10", 1, 5},
		{"11", 0, 2},
		{"11", 1, 3},
	}
	for i, s := range spec {
		p := d.Peer(addr.Addr(i))
		path := bitpath.MustParse(s.path)
		if !p.ExtendFrom(bitpath.Empty, path.Bit(1), addr.NewSet(s.l1)) ||
			!p.ExtendFrom(path.Prefix(1), path.Bit(2), addr.NewSet(s.l2)) {
			t.Fatalf("fixture build failed at %d", i)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("fig1 fixture invalid: %v", err)
	}
	return d
}

func TestQueryPaperExampleLocal(t *testing.T) {
	// "the query 00 is submitted to peer 1. As peer 1 is responsible for 00
	// it can process the complete query."
	d := buildFig1(t)
	res := Query(d, d.Peer(0), bitpath.MustParse("00"), newRng(1))
	if !res.Found || res.Peer != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Messages != 0 {
		t.Errorf("local answer cost %d messages", res.Messages)
	}
}

func TestQueryPaperExampleRouted(t *testing.T) {
	// Mirror of the paper's two-hop narrative ("the query is routed over
	// the responsible peers, one level at a time"): query 00 submitted to
	// addr 5 (path 11) must route via its level-1 reference (addr 1, path
	// 01), which forwards to its level-2 reference (addr 0, path 00).
	d := buildFig1(t)
	res := Query(d, d.Peer(5), bitpath.MustParse("00"), newRng(2))
	if !res.Found {
		t.Fatal("routed query failed")
	}
	if res.Peer != 0 {
		t.Errorf("query ended at %v, want addr 0", res.Peer)
	}
	if res.Messages != 2 {
		t.Errorf("messages = %d, want 2", res.Messages)
	}
}

func TestQueryOneHopWhenRefSkipsLevels(t *testing.T) {
	// Query 10 from addr 5 (path 11): the level-2 reference of addr 5
	// already points into region 10 (addr 3), so a single hop suffices.
	d := buildFig1(t)
	res := Query(d, d.Peer(5), bitpath.MustParse("10"), newRng(2))
	if !res.Found || res.Peer != 3 || res.Messages != 1 {
		t.Fatalf("res = %+v, want addr 3 in 1 message", res)
	}
}

func TestQueryAllKeysFromAllPeers(t *testing.T) {
	d := buildFig1(t)
	rng := newRng(3)
	for _, key := range bitpath.All(2) {
		for _, start := range d.All() {
			res := Query(d, start, key, rng)
			if !res.Found {
				t.Fatalf("query %s from %v failed", key, start.Addr())
			}
			if got := d.Peer(res.Peer).Path(); got != key {
				t.Errorf("query %s from %v ended at %q", key, start.Addr(), got)
			}
		}
	}
}

func TestQueryLongerKeyTerminatesAtCoveringPeer(t *testing.T) {
	// A 4-bit key on a depth-2 grid must stop at the peer whose path is a
	// prefix of the key (leaf index covers it).
	d := buildFig1(t)
	res := Query(d, d.Peer(0), bitpath.MustParse("1011"), newRng(4))
	if !res.Found {
		t.Fatal("query failed")
	}
	if got := d.Peer(res.Peer).Path(); got != "10" {
		t.Errorf("ended at %q, want 10", got)
	}
}

func TestQueryShorterKeyTerminatesInsideRegion(t *testing.T) {
	// Key "1" is shorter than the grid depth: any peer whose remaining
	// path extends it is an acceptable answer (its region is inside I(1)).
	d := buildFig1(t)
	res := Query(d, d.Peer(0), bitpath.MustParse("1"), newRng(5))
	if !res.Found {
		t.Fatal("query failed")
	}
	if got := d.Peer(res.Peer).Path(); got.Bit(1) != 1 {
		t.Errorf("ended at %q, outside region 1", got)
	}
}

func TestQueryEmptyKeyFoundImmediately(t *testing.T) {
	d := buildFig1(t)
	res := Query(d, d.Peer(2), bitpath.Empty, newRng(6))
	if !res.Found || res.Peer != 2 || res.Messages != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestQueryBacktracksAroundOfflinePeers(t *testing.T) {
	// Query 00 from addr 5 (path 11): the only fixture route is
	// 5 → 1 → 0. Knock addr 1 offline and give addr 5 an alternative
	// level-1 reference to addr 0 directly: the search must skip the
	// offline peer and succeed via the alternative.
	d := buildFig1(t)
	d.Peer(1).SetOnline(false)
	d.Peer(5).SetRefsAt(1, addr.NewSet(1, 0))
	res := Query(d, d.Peer(5), bitpath.MustParse("00"), newRng(7))
	if !res.Found || res.Peer != 0 {
		t.Fatalf("res = %+v, want success at addr 0", res)
	}
	if res.Messages != 1 {
		t.Errorf("messages = %d, want 1 (offline contacts are free)", res.Messages)
	}
}

func TestQueryFailedSearchStillCountsIntermediateHops(t *testing.T) {
	// Query 00 from addr 5 with the final peer offline: the search reaches
	// addr 1 (one successful contact) and then dead-ends.
	d := buildFig1(t)
	d.Peer(0).SetOnline(false)
	res := Query(d, d.Peer(5), bitpath.MustParse("00"), newRng(7))
	if res.Found {
		t.Fatalf("query succeeded via offline peer: %+v", res)
	}
	if res.Messages != 1 {
		t.Errorf("messages = %d, want 1 for the successful hop to addr 1", res.Messages)
	}
}

func TestQueryFailsWhenRegionUnreachable(t *testing.T) {
	d := buildFig1(t)
	// All peers on side 1 offline: query for 10 from side 0 cannot succeed.
	for _, a := range []addr.Addr{2, 3, 4, 5} {
		d.Peer(a).SetOnline(false)
	}
	res := Query(d, d.Peer(0), bitpath.MustParse("10"), newRng(8))
	if res.Found {
		t.Fatalf("query succeeded via offline peers: %+v", res)
	}
	if res.Messages != 0 {
		t.Errorf("failed query counted %d messages (only successful calls count)", res.Messages)
	}
}

func TestQueryMessagesCountSuccessfulCallsOnly(t *testing.T) {
	// Same 2-hop route as the routed example, but with an extra offline
	// alternative in the first hop's reference set: contacting the offline
	// peer must not add to the message count.
	d := buildFig1(t)
	d.Peer(2).SetOnline(false)
	d.Peer(5).SetRefsAt(1, addr.NewSet(1)) // force route via addr 1
	res := Query(d, d.Peer(5), bitpath.MustParse("00"), newRng(9))
	if !res.Found || res.Messages != 2 {
		t.Fatalf("res = %+v, want 2 messages for the 2-hop route", res)
	}
}

func TestQueryOnIdealGridAlwaysSucceedsAllOnline(t *testing.T) {
	rng := newRng(10)
	d := trie.BuildIdeal(256, 4, 3, rng)
	for i := 0; i < 500; i++ {
		key := bitpath.Random(rng, 4)
		start := d.RandomPeer(rng)
		res := Query(d, start, key, rng)
		if !res.Found {
			t.Fatalf("query %s from %v failed on ideal grid", key, start.Addr())
		}
		if got := d.Peer(res.Peer).Path(); got != key {
			t.Errorf("query %s ended at %q", key, got)
		}
		if res.Messages > 4 {
			t.Errorf("query %s used %d messages, depth is 4", key, res.Messages)
		}
	}
}

func TestQueryConstructedGridEndsAtResponsiblePeer(t *testing.T) {
	// Build a real grid via exchanges, then verify every successful query
	// terminates at a peer whose path is comparable with the key.
	rng := newRng(11)
	d := directory.New(120)
	cfg := Config{MaxL: 5, RefMax: 3, RecMax: 2, RecFanout: 2}
	var m Metrics
	for i := 0; i < 20000; i++ {
		a1, a2 := d.RandomPair(rng)
		Exchange(d, cfg, &m, a1, a2, rng)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := bitpath.Random(rng, 5)
		res := Query(d, d.RandomPeer(rng), key, rng)
		if !res.Found {
			continue // rare under partial convergence; reliability is measured elsewhere
		}
		if got := d.Peer(res.Peer).Path(); !bitpath.Comparable(got, key) {
			t.Fatalf("query %s ended at non-covering path %q", key, got)
		}
	}
}
