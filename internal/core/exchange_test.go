package core

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/store"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestExchangeCase1SplitsFreshPeers(t *testing.T) {
	d := directory.New(2)
	var m Metrics
	Exchange(d, DefaultConfig(), &m, d.Peer(0), d.Peer(1), newRng(1))

	p0, p1 := d.Peer(0), d.Peer(1)
	if p0.Path() != "0" || p1.Path() != "1" {
		t.Fatalf("paths after split: %q, %q", p0.Path(), p1.Path())
	}
	if rs := p0.RefsAt(1); rs.Len() != 1 || !rs.Contains(1) {
		t.Errorf("peer 0 refs = %v", rs.String())
	}
	if rs := p1.RefsAt(1); rs.Len() != 1 || !rs.Contains(0) {
		t.Errorf("peer 1 refs = %v", rs.String())
	}
	if got := m.Exchanges.Load(); got != 1 {
		t.Errorf("exchanges = %d", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeCase1RespectsMaxl(t *testing.T) {
	d := directory.New(2)
	cfg := Config{MaxL: 1, RefMax: 1, RecMax: 0}
	var m Metrics
	rng := newRng(2)
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), rng)
	if d.Peer(0).Path() != "0" || d.Peer(1).Path() != "1" {
		t.Fatal("first split failed")
	}
	// Make both responsible for "0" and try to meet again: same path at
	// maxl must NOT split further; it records buddies instead.
	d2 := directory.New(2)
	d2.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d2.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(0))
	Exchange(d2, cfg, &m, d2.Peer(0), d2.Peer(1), rng)
	if d2.Peer(0).PathLen() != 1 || d2.Peer(1).PathLen() != 1 {
		t.Errorf("peers specialized beyond maxl: %q, %q", d2.Peer(0).Path(), d2.Peer(1).Path())
	}
	if !d2.Peer(0).Buddies().Contains(1) || !d2.Peer(1).Buddies().Contains(0) {
		t.Error("replicas at maxl did not record each other as buddies")
	}
}

func TestExchangeCase2ShorterPeerSpecializesOpposite(t *testing.T) {
	// a1 at "0", a2 at "01": common prefix "0", l1=0, l2=1.
	// a1 must extend opposite to a2's next bit (1) → "00".
	d := directory.New(3)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(2))
	d.Peer(2).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	var m Metrics
	Exchange(d, DefaultConfig(), &m, d.Peer(0), d.Peer(1), newRng(3))

	if got := d.Peer(0).Path(); got != "00" {
		t.Fatalf("a1 path = %q, want 00", got)
	}
	if got := d.Peer(1).Path(); got != "01" {
		t.Fatalf("a2 path = %q (must not change)", got)
	}
	// a1 references a2 at level 2, a2 references a1 at level 2.
	if rs := d.Peer(0).RefsAt(2); !rs.Contains(1) {
		t.Errorf("a1 level-2 refs = %v", rs.String())
	}
	if rs := d.Peer(1).RefsAt(2); !rs.Contains(0) {
		t.Errorf("a2 level-2 refs = %v", rs.String())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeCase3MirrorsCase2(t *testing.T) {
	// a1 at "01", a2 at "0": a2 must extend to "00".
	d := directory.New(3)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 1, addr.Set{})
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2))
	d.Peer(2).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	var m Metrics
	Exchange(d, DefaultConfig(), &m, d.Peer(0), d.Peer(1), newRng(4))

	if got := d.Peer(1).Path(); got != "00" {
		t.Fatalf("a2 path = %q, want 00", got)
	}
	if got := d.Peer(0).Path(); got != "01" {
		t.Fatalf("a1 path = %q (must not change)", got)
	}
	if rs := d.Peer(1).RefsAt(2); !rs.Contains(0) {
		t.Errorf("a2 level-2 refs = %v, must reference a1", rs.String())
	}
	if rs := d.Peer(0).RefsAt(2); !rs.Contains(1) {
		t.Errorf("a1 level-2 refs = %v, must reference a2", rs.String())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeMixesRefsAtCommonLevel(t *testing.T) {
	// Two peers on path "0" each referencing a different peer on side "1".
	// After meeting, their level-1 reference pools are drawn from the union.
	d := directory.New(4)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(2).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	d.Peer(3).ExtendFrom(bitpath.Empty, 1, addr.NewSet(1))

	cfg := Config{MaxL: 2, RefMax: 2, RecMax: 0}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(5))

	// Both split to level 2 (case 1) but their level-1 refs must now be
	// the union {2,3} (refmax=2 keeps both).
	for _, a := range []addr.Addr{0, 1} {
		rs := d.Peer(a).RefsAt(1)
		if rs.Len() != 2 || !rs.Contains(2) || !rs.Contains(3) {
			t.Errorf("peer %v level-1 refs = %v, want {2,3}", a, rs.String())
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeRefmaxBoundsRefSets(t *testing.T) {
	// Union of 4 distinct refs with refmax=2 must trim to 2.
	d := directory.New(6)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(2, 3))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(4, 5))
	for _, a := range []addr.Addr{2, 3, 4, 5} {
		d.Peer(a).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	}
	cfg := Config{MaxL: 1, RefMax: 2, RecMax: 0}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(6))
	for _, a := range []addr.Addr{0, 1} {
		if got := d.Peer(a).RefsAt(1).Len(); got != 2 {
			t.Errorf("peer %v kept %d refs, want refmax=2", a, got)
		}
	}
}

func TestExchangeCase4RecursionSpecializesViaReferences(t *testing.T) {
	// a1="00", a2="01": diverge below common prefix "0" (l1,l2>0).
	// a1 references peer 2 ("01") at level 2; with recursion enabled, a2 is
	// forwarded to... peer 2, which has a2's own path — they're replicas at
	// maxl... use maxl=3 so the recursive meeting splits them deeper.
	d := directory.New(4)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(2).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(3).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	cfg := Config{MaxL: 3, RefMax: 2, RecMax: 1, RecFanout: 0}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(7))

	if got := m.Exchanges.Load(); got < 2 {
		t.Fatalf("exchanges = %d, recursion did not fire", got)
	}
	// The recursive meeting of a2 (01) with peer 2 (01) is a case-1 split:
	// they must now sit at depth 3 on opposite sides.
	p1, p2 := d.Peer(1).Path(), d.Peer(2).Path()
	if p1.Len() != 3 || p2.Len() != 3 || p1 == p2 {
		t.Errorf("recursive split failed: %q, %q", p1, p2)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeRecmaxZeroNeverRecurses(t *testing.T) {
	d := directory.New(4)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(2).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(3).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	cfg := Config{MaxL: 6, RefMax: 2, RecMax: 0}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(8))
	if got := m.Exchanges.Load(); got != 1 {
		t.Errorf("exchanges = %d, want exactly 1 with recmax=0", got)
	}
}

func TestExchangeSkipsOfflineRecursionTargets(t *testing.T) {
	d := directory.New(4)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 0, addr.NewSet(2))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(2).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(3).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	d.Peer(2).SetOnline(false)
	d.Peer(3).SetOnline(false)

	cfg := Config{MaxL: 6, RefMax: 2, RecMax: 2, RecFanout: 0}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(9))
	if got := m.Exchanges.Load(); got != 1 {
		t.Errorf("exchanges = %d: recursed into offline peers", got)
	}
}

func TestExchangeRecFanoutBoundsRecursion(t *testing.T) {
	// a1 diverges from a2 and holds 4 refs at the diverging level; with
	// RecFanout=1 only one recursive exchange per side may fire.
	d := directory.New(7)
	// a1 = 0 → "00", refs level 2 = {2,3,4,5} all at "01".
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(6))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 0, addr.NewSet(2, 3, 4, 5))
	// a2 = 1 at "01" with no level-2 refs of its own.
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(6))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	for _, a := range []addr.Addr{2, 3, 4, 5} {
		d.Peer(a).ExtendFrom(bitpath.Empty, 0, addr.NewSet(6))
		d.Peer(a).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	}
	d.Peer(6).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	cfg := Config{MaxL: 2, RefMax: 4, RecMax: 1, RecFanout: 1}
	var m Metrics
	Exchange(d, cfg, &m, d.Peer(0), d.Peer(1), newRng(10))
	// 1 top-level + at most 1 recursive per side; a2 has only {0} at level
	// 2 (removed as the partner), so only a1's side can recurse: ≤ 2 total.
	if got := m.Exchanges.Load(); got != 2 {
		t.Errorf("exchanges = %d, want 2 with fanout 1", got)
	}
}

func TestExchangeMigratesDataOnSplit(t *testing.T) {
	d := directory.New(2)
	e0 := store.Entry{Key: bitpath.MustParse("00"), Name: "left", Holder: 0, Version: 1}
	e1 := store.Entry{Key: bitpath.MustParse("10"), Name: "right", Holder: 0, Version: 1}
	d.Peer(0).Store().Apply(e0)
	d.Peer(0).Store().Apply(e1)

	var m Metrics
	Exchange(d, DefaultConfig(), &m, d.Peer(0), d.Peer(1), newRng(11))
	// Peer 0 took side "0": it keeps e0, hands e1 to peer 1 ("1").
	if _, ok := d.Peer(0).Store().Get(e0.Key, e0.Name); !ok {
		t.Error("peer 0 lost its own-side entry")
	}
	if _, ok := d.Peer(0).Store().Get(e1.Key, e1.Name); ok {
		t.Error("peer 0 kept an entry outside its region")
	}
	if _, ok := d.Peer(1).Store().Get(e1.Key, e1.Name); !ok {
		t.Error("peer 1 did not receive the migrated entry")
	}
}

func TestExchangeSelfAndNilAreNoOps(t *testing.T) {
	d := directory.New(2)
	var m Metrics
	Exchange(d, DefaultConfig(), &m, d.Peer(0), d.Peer(0), newRng(12))
	Exchange(d, DefaultConfig(), &m, nil, d.Peer(0), newRng(12))
	Exchange(d, DefaultConfig(), &m, d.Peer(0), nil, newRng(12))
	if m.Exchanges.Load() != 0 {
		t.Errorf("no-op meetings counted: %d", m.Exchanges.Load())
	}
	if d.Peer(0).PathLen() != 0 {
		t.Error("no-op meeting mutated state")
	}
}

// TestExchangeRandomRunPreservesInvariants drives many random meetings and
// asserts the reference invariant continuously — the core safety property.
func TestExchangeRandomRunPreservesInvariants(t *testing.T) {
	rng := newRng(13)
	d := directory.New(40)
	cfg := Config{MaxL: 4, RefMax: 3, RecMax: 2, RecFanout: 2}
	var m Metrics
	for i := 0; i < 3000; i++ {
		a1, a2 := d.RandomPair(rng)
		Exchange(d, cfg, &m, a1, a2, rng)
		if i%100 == 0 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("after %d meetings: %v", i, err)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.MaxRefsPerLevel() > cfg.RefMax {
		t.Errorf("refmax exceeded: %d", d.MaxRefsPerLevel())
	}
	for _, p := range d.All() {
		if p.PathLen() > cfg.MaxL {
			t.Errorf("peer %v exceeded maxl: %q", p.Addr(), p.Path())
		}
	}
}
