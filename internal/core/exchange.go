package core

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
	"pgrid/internal/telemetry"
)

// Exchange executes the P-Grid construction algorithm of Fig. 3 for a
// meeting of peers a1 and a2. Both peers' state may change: reference sets
// at the common level are mixed, paths may specialize (cases 1–3), and the
// meeting may recursively trigger exchanges with referenced peers (case 4),
// bounded by cfg.RecMax and cfg.RecFanout.
//
// Every invocation, including recursive ones, increments m.Exchanges — the
// construction-cost metric e of Section 5.1.
func Exchange(d *directory.Directory, cfg Config, m *Metrics, a1, a2 *peer.Peer, rng *rand.Rand) {
	exchange(d, cfg, m, a1, a2, 0, rng)
}

// followup is a recursive exchange scheduled by case 4: peer `fwd` is
// forwarded to the referenced peer at `to`.
type followup struct {
	fwd *peer.Peer
	to  addr.Addr
}

func exchange(d *directory.Directory, cfg Config, m *Metrics, a1, a2 *peer.Peer, r int, rng *rand.Rand) {
	if a1 == nil || a2 == nil || a1 == a2 {
		return
	}
	m.Exchanges.Add(1)

	var followups []followup
	// Data handed over when a peer specializes: entries that fell outside
	// the narrowed responsibility, to be applied at the partner. Collected
	// under the pair lock, applied after (stores are independently locked).
	type migration struct {
		from, to *peer.Peer
		keep     bitpath.Path
	}
	var migrations []migration

	// Data-aware split gate (Section 3's threshold suggestion): count the
	// items the two peers index under their regions before taking locks;
	// stores are independently synchronized, and a slightly stale count
	// only delays or hastens one split.
	splitOK := true
	if cfg.SplitMinItems > 0 {
		splitOK = a1.Store().Len()+a2.Store().Len() >= cfg.SplitMinItems
	}
	antiEntropy := false
	caseTaken := telemetry.ExCaseNone
	commonLen := 0

	peer.EditPair(a1, a2, func(e1, e2 peer.Editor) {
		p1, p2 := e1.Path(), e2.Path()
		lc := bitpath.CommonPrefixLen(p1, p2)
		commonLen = lc

		// Mix references at the deepest level where the paths agree. Any
		// reference either peer holds at level lc is valid for both (it
		// agrees with the shared prefix of length lc-1 and differs at bit
		// lc), so they pool them and each keeps a random refmax-subset.
		if lc > 0 {
			commonrefs := addr.Union(e1.RefsAt(lc), e2.RefsAt(lc))
			e1.SetRefsAt(lc, commonrefs.RandomSubset(rng, cfg.RefMax))
			e2.SetRefsAt(lc, commonrefs.RandomSubset(rng, cfg.RefMax))
		}

		l1 := p1.Len() - lc
		l2 := p2.Len() - lc
		switch {
		case l1 == 0 && l2 == 0 && lc < cfg.MaxL && splitOK:
			caseTaken = telemetry.ExCase1
			// Case 1: identical paths with room to grow — introduce a new
			// level. The peers split the interval and reference each other.
			e1.Extend(0, addr.NewSet(e2.Addr()))
			e2.Extend(1, addr.NewSet(e1.Addr()))
			migrations = append(migrations,
				migration{a1, a2, p1.Append(0)},
				migration{a2, a1, p2.Append(1)})

		case l1 == 0 && l2 > 0 && lc < cfg.MaxL && splitOK:
			caseTaken = telemetry.ExCase2
			// Case 2: a1's path is a proper prefix of a2's — a1 specializes
			// opposite to a2's next bit, keeping the grid balanced; a2 adds
			// a1 to its references at the new level.
			b := p2.Bit(lc + 1)
			e1.Extend(1-b, addr.NewSet(e2.Addr()))
			refs2 := addr.Union(addr.NewSet(e1.Addr()), e2.RefsAt(lc+1))
			e2.SetRefsAt(lc+1, refs2.RandomSubset(rng, cfg.RefMax))
			migrations = append(migrations, migration{a1, a2, p1.AppendFlip(b)})

		case l1 > 0 && l2 == 0 && lc < cfg.MaxL && splitOK:
			caseTaken = telemetry.ExCase3
			// Case 3: mirror image of case 2.
			b := p1.Bit(lc + 1)
			e2.Extend(1-b, addr.NewSet(e1.Addr()))
			refs1 := addr.Union(addr.NewSet(e2.Addr()), e1.RefsAt(lc+1))
			e1.SetRefsAt(lc+1, refs1.RandomSubset(rng, cfg.RefMax))
			migrations = append(migrations, migration{a2, a1, p2.AppendFlip(b)})

		case l1 > 0 && l2 > 0 && r < cfg.RecMax:
			caseTaken = telemetry.ExCase4
			// Case 4: the paths diverge below the common prefix. Neither
			// peer can specialize against the other, but each can forward
			// the other to peers it references at level lc+1 — those share
			// one more bit with the forwarded peer, so the recursive
			// meeting is more likely to specialize.
			refs1 := e1.RefsAt(lc + 1)
			refs1.Remove(e2.Addr())
			refs2 := e2.RefsAt(lc + 1)
			refs2.Remove(e1.Addr())
			if cfg.RecFanout > 0 {
				refs1 = refs1.RandomSubset(rng, cfg.RecFanout)
				refs2 = refs2.RandomSubset(rng, cfg.RecFanout)
			}
			for _, r1 := range refs1.Slice() {
				followups = append(followups, followup{fwd: a2, to: r1})
			}
			for _, r2 := range refs2.Slice() {
				followups = append(followups, followup{fwd: a1, to: r2})
			}

		case l1 == 0 && l2 == 0:
			caseTaken = telemetry.ExCaseReplica
			// Identical paths that cannot (or should not) split further:
			// the peers are replicas of the same region. The paper's update
			// strategies rely on buddy lists "identified throughout index
			// construction"; this is where replicas identify each other.
			e1.AddBuddy(e2.Addr())
			e2.AddBuddy(e1.Addr())
			antiEntropy = true
		}
	})

	m.Tel.ExchangeCase(caseTaken)
	if m.Tel.EventsOn() {
		m.Tel.EmitExchange(telemetry.ExchangeCaseName(caseTaken),
			commonLen, r, int(a1.Addr()), int(a2.Addr()))
	}

	// Replicas reconcile their indexes when they meet (anti-entropy):
	// both end up with the freshest version of every entry either knew.
	// This is how replica indexes converge without explicit updates.
	if antiEntropy {
		for _, e := range a1.Store().Entries() {
			a2.Store().Apply(e)
		}
		for _, e := range a2.Store().Entries() {
			a1.Store().Apply(e)
		}
	}

	// Hand over data items that fell outside a narrowed responsibility.
	// Best-effort, like a real network: the partner covers the vacated
	// region at the common level (it may itself be deeper; entries then
	// migrate onward during its own future splits or via explicit inserts).
	for _, mg := range migrations {
		for _, entry := range mg.from.Store().Evict(mg.keep) {
			mg.to.Store().Apply(entry)
		}
	}

	// Recursive exchanges run outside any peer lock; a forwarded peer may
	// have moved on concurrently, which is fine — the recursive exchange
	// will just see its new state.
	for _, f := range followups {
		q := d.Peer(f.to)
		if q != nil && q.Online() {
			exchange(d, cfg, m, f.fwd, q, r+1, rng)
		}
	}
}
