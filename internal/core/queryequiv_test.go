package core_test

// External test package: the fixtures here are built with internal/sim,
// which itself imports internal/core, so they cannot live in package
// core without a cycle.

import (
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/sim"
)

// TestQueryTracedEquivalence is the property test behind the tracing
// layer: Query and QueryTraced run the same Fig. 2 search and consume
// the RNG identically, so for the same seed and directory they must
// report the same Found/Peer/Messages/Backtracks — tracing observes the
// route, it never changes it. Checked across several communities, key
// lengths, and churn levels (offline peers force backtracking, the
// interesting path).
func TestQueryTracedEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n      int
		maxl   int
		refmax int
		online float64 // fraction of peers left online
		seed   int64
	}{
		{"small-all-online", 32, 5, 2, 1.0, 11},
		{"mid-all-online", 96, 6, 3, 1.0, 23},
		{"churny", 96, 6, 3, 0.5, 37},
		{"heavy-churn", 64, 6, 4, 0.3, 53},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := sim.Build(sim.Options{
				N:      tc.n,
				Config: core.Config{MaxL: tc.maxl, RefMax: tc.refmax, RecMax: 2, RecFanout: 2},
				Seed:   tc.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			d := res.Dir
			setup := rand.New(rand.NewSource(tc.seed + 1))
			if tc.online < 1 {
				d.SampleOnline(setup, tc.online)
			}

			for trial := 0; trial < 200; trial++ {
				key := bitpath.Random(setup, tc.maxl-1)
				start := d.RandomPeer(setup)
				seed := setup.Int63()

				res1 := core.Query(d, start, key, rand.New(rand.NewSource(seed)))
				tr := core.QueryTraced(d, start, key, rand.New(rand.NewSource(seed)))
				res2 := tr.Result

				if res1.Found != res2.Found || res1.Peer != res2.Peer ||
					res1.Messages != res2.Messages || res1.Backtracks != res2.Backtracks {
					t.Fatalf("trial %d key %s start %v: Query=%+v QueryTraced=%+v",
						trial, key, start.Addr(), res1, res2)
				}
				// The trace itself must be consistent with the result it
				// reports: every successful contact is one recorded hop.
				if len(tr.Hops) != res2.Messages+1 {
					t.Fatalf("trial %d: %d hops for %d messages (%s)",
						trial, len(tr.Hops), res2.Messages, tr)
				}
			}
		})
	}
}
