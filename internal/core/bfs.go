package core

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/peer"
)

// ReplicaResult reports the outcome of a breadth-first replica search.
type ReplicaResult struct {
	// Found holds the addresses of peers covering the key (peers whose path
	// is in a prefix relationship with the key), in discovery order.
	Found []addr.Addr
	// Messages is the number of peers contacted.
	Messages int
}

// ReplicaSearch performs the breadth-first search used by the update
// strategies of Section 5.2: unlike Query, which stops at the first
// responsible peer, it follows up to recbreadth references at every level —
// both while routing towards the key's region and, once inside it, across
// every deeper level — collecting all covering peers it can reach.
//
// Only online peers are contacted. The starting peer costs no message.
func ReplicaSearch(d *directory.Directory, start *peer.Peer, key bitpath.Path, recbreadth int, rng *rand.Rand) ReplicaResult {
	var res ReplicaResult
	if start == nil {
		return res
	}
	visited := map[addr.Addr]bool{start.Addr(): true}
	queue := []*peer.Peer{start}

	contact := func(refs addr.Set) {
		// Follow up to recbreadth fresh online references from this set.
		followed := 0
		for _, r := range refs.Shuffled(rng) {
			if followed >= recbreadth {
				break
			}
			if visited[r] {
				continue
			}
			q := d.Peer(r)
			if q == nil || !q.Online() {
				continue
			}
			visited[r] = true
			res.Messages++
			queue = append(queue, q)
			followed++
		}
	}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		path := a.Path()
		c := bitpath.CommonPrefixLen(path, key)
		if c == path.Len() || c == key.Len() {
			// a covers the key. Peers responsible for sibling regions under
			// the key are reachable through a's references at every level
			// below the key's length.
			res.Found = append(res.Found, a.Addr())
			for level := key.Len() + 1; level <= path.Len(); level++ {
				contact(a.RefsAt(level))
			}
		} else {
			// Route towards the key's region: references at the level of
			// the first diverging bit agree with the key there.
			contact(a.RefsAt(c + 1))
		}
	}
	return res
}
