package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
	"pgrid/internal/store"
	"pgrid/internal/trie"
)

// Property tests over randomized configurations: the structural guarantees
// must hold for ANY sensible parameter combination, not just the paper's.

func TestPropQueryOnIdealGridAlwaysCoversKey(t *testing.T) {
	f := func(seed int64, depthRaw, refmaxRaw uint8, keyRaw uint16) bool {
		depth := int(depthRaw%4) + 1   // 1..4
		refmax := int(refmaxRaw%3) + 1 // 1..3
		n := (1 << uint(depth)) * 4
		rng := rand.New(rand.NewSource(seed))
		d := trie.BuildIdeal(n, depth, refmax, rng)
		key := bitpath.FromUint(uint64(keyRaw)&((1<<uint(depth))-1), depth)
		res := Query(d, d.RandomPeer(rng), key, rng)
		if !res.Found {
			return false // everyone online: must always succeed
		}
		if res.Messages > depth {
			return false // greedy routing resolves ≥1 bit per hop
		}
		return bitpath.Comparable(d.Peer(res.Peer).Path(), key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropExchangePreservesInvariantsForAnyConfig(t *testing.T) {
	f := func(seed int64, maxlRaw, refmaxRaw, recmaxRaw, fanoutRaw uint8) bool {
		cfg := Config{
			MaxL:      int(maxlRaw%5) + 1,
			RefMax:    int(refmaxRaw%4) + 1,
			RecMax:    int(recmaxRaw % 4),
			RecFanout: int(fanoutRaw % 3),
		}
		rng := rand.New(rand.NewSource(seed))
		d := directory.New(24)
		var m Metrics
		for i := 0; i < 1500; i++ {
			a1, a2 := d.RandomPair(rng)
			Exchange(d, cfg, &m, a1, a2, rng)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Logf("config %+v: %v", cfg, err)
			return false
		}
		if d.MaxRefsPerLevel() > cfg.RefMax {
			return false
		}
		for _, p := range d.All() {
			if p.PathLen() > cfg.MaxL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropPathsOnlyEverGrow(t *testing.T) {
	// Monotonicity: no sequence of exchanges ever shortens or rewrites a
	// peer's existing prefix (the paper explicitly rejects path shortening
	// in Section 3; every reference's validity depends on this).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2}
		d := directory.New(16)
		var m Metrics
		prev := make([]bitpath.Path, 16)
		for i := 0; i < 800; i++ {
			a1, a2 := d.RandomPair(rng)
			Exchange(d, cfg, &m, a1, a2, rng)
			for j, p := range d.All() {
				cur := p.Path()
				if !prev[j].IsPrefixOf(cur) {
					t.Logf("peer %d path %q no longer extends %q", j, cur, prev[j])
					return false
				}
				prev[j] = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropMajorityReadNeverReturnsUnknownVersion(t *testing.T) {
	f := func(seed int64, versionsRaw []uint8) bool {
		if len(versionsRaw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		d := trie.BuildIdeal(32, 2, 4, rng)
		key := bitpath.MustParse("01")
		written := map[uint64]bool{}
		group := d.Covering(key)
		for i, v := range versionsRaw {
			ver := uint64(v%8) + 1
			written[ver] = true
			a := group[i%len(group)]
			d.Peer(a).Store().Apply(storeEntry(key, "x", ver))
		}
		res := MajorityRead(d, key, "x", MajorityOptions{Margin: 2, MaxQueries: 40}, rng)
		if !res.Found {
			return true // nothing reachable is fine
		}
		return written[res.Entry.Version]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func storeEntry(key bitpath.Path, name string, version uint64) store.Entry {
	return store.Entry{Key: key, Name: name, Holder: 1, Version: version}
}
