package core

import (
	"fmt"
	"sync/atomic"

	"pgrid/internal/telemetry"
)

// Metrics counts the communication events the paper's evaluation measures.
// All counters are safe for concurrent use.
type Metrics struct {
	// Exchanges counts calls to the exchange function, including recursive
	// ones — the construction cost metric e of Section 5.1.
	Exchanges atomic.Int64

	// Messages counts successful peer-to-peer contacts during search and
	// update operations (the Section 5.2 message metric).
	Messages atomic.Int64

	// Tel, when non-nil, receives fine-grained instrumentation beyond the
	// two paper counters: the Fig. 3 case taken per exchange, and (when an
	// event sink is attached) one structured event per exchange. Nil
	// disables it at the cost of a single branch per exchange.
	Tel *telemetry.Instruments
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() (exchanges, messages int64) {
	return m.Exchanges.Load(), m.Messages.Load()
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.Exchanges.Store(0)
	m.Messages.Store(0)
}

// String renders the counters for logs.
func (m *Metrics) String() string {
	e, msg := m.Snapshot()
	return fmt.Sprintf("metrics{exchanges=%d messages=%d}", e, msg)
}
