package core

import (
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
)

// sparseGrid builds a constructed grid whose reference sets are far below
// refmax, leaving room for learning.
func sparseGrid(t *testing.T, n int, cfg Config, seed int64) *directory.Directory {
	t.Helper()
	rng := newRng(seed)
	d := directory.New(n)
	var m Metrics
	for i := 0; i < 200*n; i++ {
		a1, a2 := d.RandomPair(rng)
		Exchange(d, cfg, &m, a1, a2, rng)
	}
	if d.AvgPathLen() < 0.9*float64(cfg.MaxL) {
		t.Fatalf("sparse grid did not converge: %.2f", d.AvgPathLen())
	}
	return d
}

func TestLearnFromTraceAddsValidRefs(t *testing.T) {
	// Build with a tight reference budget, then learn into a larger one:
	// construction fills sets to its refmax, so spare capacity (and hence
	// anything to learn) only exists when operations allow more.
	build := Config{MaxL: 5, RefMax: 2, RecMax: 2, RecFanout: 2}
	ops := build
	ops.RefMax = 10
	d := sparseGrid(t, 300, build, 1)
	rng := newRng(2)

	added := 0
	for i := 0; i < 300; i++ {
		tr := QueryTraced(d, d.RandomPeer(rng), bitpath.Random(rng, 5), rng)
		added += LearnFromTrace(d, ops, tr)
	}
	cfg := ops
	if added == 0 {
		t.Fatal("learning never added a reference")
	}
	// Everything learned must satisfy the Section 2 invariant.
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("learning broke the invariant: %v", err)
	}
	if d.MaxRefsPerLevel() > cfg.RefMax {
		t.Errorf("learning exceeded refmax: %d", d.MaxRefsPerLevel())
	}
}

func TestLearnFromFailedTraceIsNoOp(t *testing.T) {
	cfg := Config{MaxL: 3, RefMax: 4, RecMax: 2, RecFanout: 2}
	d := sparseGrid(t, 100, cfg, 3)
	rng := newRng(4)
	d.SetAllOnline(false)
	start := d.Peer(0)
	start.SetOnline(true)
	tr := QueryTraced(d, start, bitpath.Random(rng, 3), rng)
	if tr.Result.Found {
		t.Skip("entry peer happened to cover the key")
	}
	if got := LearnFromTrace(d, cfg, tr); got != 0 {
		t.Errorf("failed trace taught %d refs", got)
	}
}

func TestWarmImprovesAvailability(t *testing.T) {
	// The ablation: a sparse grid (few refs per level) has poor search
	// success at 30% online; warming the routing tables with query
	// traffic must improve it substantially.
	build := Config{MaxL: 5, RefMax: 2, RecMax: 2, RecFanout: 2}
	ops := build
	ops.RefMax = 10

	measure := func(d *directory.Directory, seed int64) float64 {
		rng := newRng(seed)
		d.SampleOnline(rng, 0.3)
		defer d.SetAllOnline(true)
		succ := 0
		for i := 0; i < 600; i++ {
			start := d.RandomOnlinePeer(rng)
			if Query(d, start, bitpath.Random(rng, 5), rng).Found {
				succ++
			}
		}
		return float64(succ) / 600
	}

	d := sparseGrid(t, 300, build, 5)
	before := measure(d, 6)

	rng := newRng(7)
	learned, _ := Warm(d, ops, 2000, 5, rng)
	if learned == 0 {
		t.Fatal("warming learned nothing")
	}
	after := measure(d, 6) // same online sample seed for a fair comparison

	if after < before+0.1 {
		t.Errorf("warming did not help: %.3f → %.3f (learned %d refs)", before, after, learned)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
