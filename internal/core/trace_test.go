package core

import (
	"strings"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
)

func TestQueryTracedMatchesQuerySemantics(t *testing.T) {
	rng := newRng(1)
	d := trie.BuildIdeal(256, 4, 3, rng)
	for i := 0; i < 200; i++ {
		key := bitpath.Random(rng, 4)
		start := d.RandomPeer(rng)
		tr := QueryTraced(d, start, key, rng)
		if !tr.Result.Found {
			t.Fatalf("traced query %s failed on ideal grid", key)
		}
		// First hop is the entry peer; last matched hop is the result.
		if tr.Hops[0].Peer != start.Addr() {
			t.Fatalf("first hop %v, start %v", tr.Hops[0].Peer, start.Addr())
		}
		last := tr.Hops[len(tr.Hops)-1]
		if !last.Matched || last.Peer != tr.Result.Peer {
			t.Fatalf("last hop %+v vs result %+v", last, tr.Result)
		}
		if !bitpath.Comparable(d.Peer(tr.Result.Peer).Path(), key) {
			t.Fatalf("result peer not covering")
		}
		// Message count equals hops beyond the entry when nothing
		// backtracked.
		backtracks := 0
		for _, h := range tr.Hops {
			if h.Backtracked {
				backtracks++
			}
		}
		if backtracks == 0 && tr.Result.Messages != len(tr.Hops)-1 {
			t.Fatalf("messages %d, hops %d", tr.Result.Messages, len(tr.Hops))
		}
	}
}

func TestQueryTracedRecordsBacktracking(t *testing.T) {
	// Entry peer has two references at its first routing level: one leads
	// to a dead end (offline deeper target), the other succeeds. The trace
	// must mark the dead-end hop or the entry as backtracked and still
	// succeed.
	d := buildFig1(t)
	// 5 (11) queries 00: route 5 →(level 1) {1}. Give 5 a second level-1
	// ref to 0 and take 1's target 0... instead: make 1 a dead end by
	// cutting its level-2 refs to an offline peer only.
	d.Peer(5).SetRefsAt(1, addr.NewSet(0, 1))
	d.Peer(0).SetOnline(true)
	// Peer 1's level-2 refs point to 0; set 0 offline AND give 5 an
	// alternative: actually take 1's refs away so it dead-ends.
	d.Peer(1).SetRefsAt(2, addr.Set{})

	found, backtracked := false, false
	for i := 0; i < 20; i++ {
		tr := QueryTraced(d, d.Peer(5), bitpath.MustParse("00"), newRng(int64(i)))
		if !tr.Result.Found {
			t.Fatalf("query failed: %s", tr)
		}
		found = true
		for _, h := range tr.Hops {
			if h.Backtracked {
				backtracked = true
			}
		}
	}
	if !found {
		t.Fatal("no traced query succeeded")
	}
	if !backtracked {
		t.Error("20 random traces never visited the dead end (suspicious)")
	}
}

func TestTraceString(t *testing.T) {
	rng := newRng(2)
	d := trie.BuildIdeal(16, 2, 2, rng)
	tr := QueryTraced(d, d.Peer(0), bitpath.MustParse("11"), rng)
	s := tr.String()
	if !strings.Contains(s, "key 11") {
		t.Errorf("trace string = %q", s)
	}
	if tr.Result.Found && !strings.Contains(s, "✓") {
		t.Errorf("success marker missing: %q", s)
	}
	// Failure rendering.
	d.SetAllOnline(false)
	d.Peer(0).SetOnline(true)
	tr = QueryTraced(d, d.Peer(0), bitpath.MustParse("11"), rng)
	if tr.Result.Found {
		t.Skip("peer 0 happened to cover the key")
	}
	if !strings.Contains(tr.String(), "✗") {
		t.Errorf("failure marker missing: %q", tr.String())
	}
}
