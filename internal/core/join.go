package core

import (
	"math/rand"

	"pgrid/internal/directory"
	"pgrid/internal/peer"
)

// This file implements incremental membership, the dynamic side of the
// paper's model that the evaluation only exercises implicitly ("the
// distribution of one copy of a search tree over multiple, distributed
// nodes … a growing number of processors"). A newcomer needs no global
// knowledge: it starts with the empty path and gossips with random online
// peers; the ordinary exchange cases specialize it level by level (case 2
// whenever it meets anyone deeper) until it reaches the grid's depth. The
// same randomized machinery that builds the grid integrates members into
// it — there is no separate join protocol to get wrong.

// JoinResult reports one peer's integration.
type JoinResult struct {
	// Meetings is the number of bootstrap meetings the newcomer initiated.
	Meetings int
	// Exchanges is the total exchange calls those meetings triggered
	// (including recursion) — the join cost in the paper's e metric.
	Exchanges int64
	// Depth is the newcomer's final path length.
	Depth int
	// Settled reports whether the newcomer reached the target depth.
	Settled bool
}

// Join integrates newcomer into an established community: it repeatedly
// meets random online peers and runs the exchange until its path reaches
// targetDepth (usually cfg.MaxL) or maxMeetings is exhausted.
func Join(d *directory.Directory, cfg Config, m *Metrics, newcomer *peer.Peer, targetDepth, maxMeetings int, rng *rand.Rand) JoinResult {
	var res JoinResult
	before := m.Exchanges.Load()
	for res.Meetings < maxMeetings && newcomer.PathLen() < targetDepth {
		other := d.RandomOnlinePeer(rng)
		if other == nil {
			break
		}
		if other == newcomer {
			if d.OnlineCount() <= 1 {
				break // nobody to meet
			}
			continue
		}
		res.Meetings++
		Exchange(d, cfg, m, newcomer, other, rng)
	}
	res.Exchanges = m.Exchanges.Load() - before
	res.Depth = newcomer.PathLen()
	res.Settled = res.Depth >= targetDepth
	return res
}

// Grow adds count fresh peers to the community one at a time, joining each
// before the next arrives, and returns their join results. This is the
// incremental-growth experiment: per-join cost should stay flat as the
// community grows, because a join is O(depth) targeted meetings, not a
// global rebuild.
func Grow(d *directory.Directory, cfg Config, m *Metrics, count, maxMeetingsPerJoin int, rng *rand.Rand) []JoinResult {
	out := make([]JoinResult, 0, count)
	for i := 0; i < count; i++ {
		p := d.AddPeer()
		out = append(out, Join(d, cfg, m, p, cfg.MaxL, maxMeetingsPerJoin, rng))
	}
	return out
}
