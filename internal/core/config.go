// Package core implements the P-Grid algorithms of the paper: the
// randomized construction by pairwise exchanges (Fig. 3), the depth-first
// search (Fig. 2), the breadth-first replica search, the three update
// propagation strategies of Section 5.2, and the repeated-query majority
// read protocol.
//
// The algorithms operate on peers resolved through a directory and take an
// explicit *rand.Rand, so every run is reproducible from a seed. They are
// safe to drive from multiple goroutines: cross-peer decisions are applied
// under pair locks (peer.EditPair), and single-peer mutations use
// compare-and-swap semantics that abort on stale state, exactly as a real
// networked peer discards a decision based on an outdated snapshot.
package core

import (
	"errors"
	"fmt"
)

// Config carries the P-Grid parameters named in the paper.
type Config struct {
	// MaxL bounds the maximal path length (maxl). It prevents
	// overspecialization and guarantees replication at the leaf level
	// (Section 3).
	MaxL int

	// RefMax bounds the number of references stored per level (refmax).
	RefMax int

	// RecMax bounds the recursion depth of the exchange algorithm (recmax).
	// 0 disables recursive exchanges entirely.
	RecMax int

	// RecFanout bounds how many referenced peers each side forwards to in
	// the recursive case of the exchange (the fix discussed at the end of
	// Section 5.1: "recursive calls are only made to 2 randomly selected
	// referenced peers"). 0 means unbounded, the paper's original — and
	// exponentially expensive — behaviour.
	RecFanout int

	// SplitMinItems, when > 0, makes splitting data-aware: a region is
	// only split while the meeting peers together index at least this
	// many items under it. This is the paper's own suggestion for
	// adapting to skewed distributions ("one possible indication that a
	// path has reached maxl could be that the number of data items
	// belonging to the key is falling below a certain threshold",
	// Section 3) and the basis of the skew extension experiments.
	// 0 disables the gate: depth is bounded by MaxL alone.
	SplitMinItems int
}

// DefaultConfig returns the parameters of the Section 5.1 baseline
// simulations: maxl=6, refmax=1, recmax=2, bounded fan-out 2.
func DefaultConfig() Config {
	return Config{MaxL: 6, RefMax: 1, RecMax: 2, RecFanout: 2}
}

// GnutellaConfig returns the parameters of the Section 4 example and the
// Section 5.2 experiments: keys of maximal length 10, refmax=20.
func GnutellaConfig() Config {
	return Config{MaxL: 10, RefMax: 20, RecMax: 2, RecFanout: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	var errs []error
	if c.MaxL < 1 {
		errs = append(errs, fmt.Errorf("MaxL = %d, must be >= 1", c.MaxL))
	}
	if c.RefMax < 1 {
		errs = append(errs, fmt.Errorf("RefMax = %d, must be >= 1", c.RefMax))
	}
	if c.RecMax < 0 {
		errs = append(errs, fmt.Errorf("RecMax = %d, must be >= 0", c.RecMax))
	}
	if c.RecFanout < 0 {
		errs = append(errs, fmt.Errorf("RecFanout = %d, must be >= 0", c.RecFanout))
	}
	return errors.Join(errs...)
}
