package core

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/trie"
)

func TestReplicaSearchFindsAllOnIdealGrid(t *testing.T) {
	rng := newRng(1)
	// 32 peers, depth 2 → 8 replicas per leaf; refmax 8 means every peer
	// knows the entire sibling subtree at every level, so a BFS with
	// recbreadth 8 must enumerate the whole covering set.
	d := trie.BuildIdeal(32, 2, 8, rng)
	key := bitpath.MustParse("01")
	want := d.Covering(key)
	if len(want) != 8 {
		t.Fatalf("fixture: covering set = %d", len(want))
	}
	res := ReplicaSearch(d, d.RandomPeer(rng), key, 8, rng)
	if len(res.Found) != len(want) {
		t.Fatalf("found %d of %d replicas", len(res.Found), len(want))
	}
	for _, a := range res.Found {
		if !bitpath.Comparable(d.Peer(a).Path(), key) {
			t.Errorf("non-covering peer %v reported", a)
		}
	}
}

func TestReplicaSearchShortKeyFansOutAcrossSubtree(t *testing.T) {
	rng := newRng(2)
	d := trie.BuildIdeal(32, 3, 8, rng)
	// Key "1" covers half the grid: 4 leaves × 4 replicas = 16 peers.
	key := bitpath.MustParse("1")
	res := ReplicaSearch(d, d.RandomPeer(rng), key, 8, rng)
	want := d.Covering(key)
	if len(want) != 16 {
		t.Fatalf("fixture: covering = %d", len(want))
	}
	if len(res.Found) != 16 {
		t.Errorf("found %d of 16", len(res.Found))
	}
}

func TestReplicaSearchRecbreadthLimitsFanout(t *testing.T) {
	rng := newRng(3)
	d := trie.BuildIdeal(64, 2, 16, rng)
	key := bitpath.MustParse("10")
	res1 := ReplicaSearch(d, d.Peer(0), key, 1, rng)
	resAll := ReplicaSearch(d, d.Peer(0), key, 16, rng)
	if len(res1.Found) >= len(resAll.Found) {
		t.Errorf("recbreadth=1 found %d, recbreadth=16 found %d: breadth had no effect",
			len(res1.Found), len(resAll.Found))
	}
	if res1.Messages >= resAll.Messages {
		t.Errorf("messages %d !< %d", res1.Messages, resAll.Messages)
	}
}

func TestReplicaSearchSkipsOfflinePeers(t *testing.T) {
	rng := newRng(4)
	d := trie.BuildIdeal(16, 2, 4, rng)
	key := bitpath.MustParse("00")
	// Take half the replicas of 00 offline; they must not be reported.
	group := d.Covering(key)
	for i, a := range group {
		if i%2 == 0 {
			d.Peer(a).SetOnline(false)
		}
	}
	start := d.RandomOnlinePeer(rng)
	res := ReplicaSearch(d, start, key, 4, rng)
	for _, a := range res.Found {
		if !d.Peer(a).Online() && a != start.Addr() {
			t.Errorf("offline peer %v reported", a)
		}
	}
}

func TestReplicaSearchNilStart(t *testing.T) {
	rng := newRng(5)
	res := ReplicaSearch(nil, nil, bitpath.MustParse("0"), 2, rng)
	if len(res.Found) != 0 || res.Messages != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestReplicaSearchCountsEachContactOnce(t *testing.T) {
	rng := newRng(6)
	d := trie.BuildIdeal(16, 2, 4, rng)
	res := ReplicaSearch(d, d.Peer(0), bitpath.MustParse("11"), 4, rng)
	// Messages = contacted peers; each is distinct, and the start is free.
	seen := map[addr.Addr]bool{}
	for _, a := range res.Found {
		if seen[a] {
			t.Fatalf("duplicate replica %v", a)
		}
		seen[a] = true
	}
	if res.Messages > d.N()-1 {
		t.Errorf("messages %d exceed community size", res.Messages)
	}
}

func TestReplicaSearchStartInsideRegion(t *testing.T) {
	// Key "0" on a depth-2 grid, starting at a peer with path "01": the
	// search reaches the sibling leaf "00" through the start's level-2
	// references, and the remaining replicas of the start's own leaf
	// transitively through the sibling leaf's back-references. With
	// recbreadth = group size the whole covering set must be enumerated.
	rng := newRng(7)
	d := trie.BuildIdeal(32, 2, 8, rng)
	var start addr.Addr
	for _, p := range d.All() {
		if p.Path() == "01" {
			start = p.Addr()
			break
		}
	}
	res := ReplicaSearch(d, d.Peer(start), bitpath.MustParse("0"), 8, rng)
	if res.Found[0] != start {
		t.Fatalf("start peer not reported first: %v", res.Found)
	}
	if want := d.Covering(bitpath.MustParse("0")); len(res.Found) != len(want) {
		t.Errorf("found %d of %d covering peers", len(res.Found), len(want))
	}
}

func TestReplicaSearchExactDepthKeyFromInsideFindsOnlySelf(t *testing.T) {
	// When the key is as long as the grid is deep, the covering set is a
	// single replica group; from inside it, pure BFS finds only the start.
	rng := newRng(8)
	d := trie.BuildIdeal(32, 2, 8, rng)
	key := bitpath.MustParse("01")
	group := d.Covering(key)
	res := ReplicaSearch(d, d.Peer(group[0]), key, 8, rng)
	if len(res.Found) != 1 || res.Messages != 0 {
		t.Errorf("res = %+v, want just the start", res)
	}
}
