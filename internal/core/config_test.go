package core

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := GnutellaConfig().Validate(); err != nil {
		t.Errorf("gnutella config invalid: %v", err)
	}
	bads := []Config{
		{MaxL: 0, RefMax: 1},
		{MaxL: 1, RefMax: 0},
		{MaxL: 1, RefMax: 1, RecMax: -1},
		{MaxL: 1, RefMax: 1, RecFanout: -1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	// Multiple faults are all reported.
	err := Config{MaxL: 0, RefMax: 0}.Validate()
	if err == nil || !strings.Contains(err.Error(), "MaxL") || !strings.Contains(err.Error(), "RefMax") {
		t.Errorf("joined errors = %v", err)
	}
}

func TestPaperConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.MaxL != 6 || d.RefMax != 1 || d.RecMax != 2 || d.RecFanout != 2 {
		t.Errorf("DefaultConfig = %+v", d)
	}
	g := GnutellaConfig()
	if g.MaxL != 10 || g.RefMax != 20 {
		t.Errorf("GnutellaConfig = %+v", g)
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	m.Exchanges.Add(3)
	m.Messages.Add(5)
	e, msgs := m.Snapshot()
	if e != 3 || msgs != 5 {
		t.Errorf("snapshot = %d, %d", e, msgs)
	}
	if got := m.String(); !strings.Contains(got, "exchanges=3") || !strings.Contains(got, "messages=5") {
		t.Errorf("String = %q", got)
	}
	m.Reset()
	if e, msgs := m.Snapshot(); e != 0 || msgs != 0 {
		t.Error("Reset did not zero counters")
	}
}
