// Package sim drives P-Grid construction and churn the way the paper's
// Mathematica simulations did: peers meet randomly pairwise and execute the
// exchange function until the grid converges (the average path length
// reaches a threshold fraction of maxl, Section 5.1).
//
// Two engines are provided: a sequential engine that is deterministic for a
// given seed and reproduces the paper's tables bit-for-bit across runs, and
// a concurrent engine that runs meetings on many goroutines to validate the
// algorithm under real interleaving and to build large grids fast.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/workload"
)

// Options configures a construction run.
type Options struct {
	// N is the community size.
	N int
	// Config carries the P-Grid parameters (maxl, refmax, recmax, fanout).
	Config core.Config
	// Threshold is the convergence threshold t as a fraction of MaxL: the
	// run stops when the average path length reaches Threshold·MaxL.
	// The paper uses 0.99. Default 0.99.
	Threshold float64
	// MaxMeetings aborts the run after this many initiated meetings
	// (recursive exchanges not counted), guarding against non-convergence.
	// Default 10_000 × N.
	MaxMeetings int64
	// Seed seeds the run's random source.
	Seed int64
	// Workers sets the parallelism of the concurrent engine; ignored by
	// the sequential engine. Default GOMAXPROCS.
	Workers int
	// CheckEvery, if > 0, makes the sequential engine verify the directory
	// invariants every CheckEvery meetings (tests use this; it is O(N·maxl)
	// per check).
	CheckEvery int64
	// Churn, when non-nil, runs construction under session churn: every
	// ChurnEvery meetings all peers take one step of the Markov session
	// model, and meetings only happen between online peers. The paper
	// builds with everyone online; this option measures how robust the
	// construction process is when they are not (offline peers simply
	// miss meetings and catch up when they return).
	Churn      *workload.Churn
	ChurnEvery int64
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.99
	}
	if o.MaxMeetings == 0 {
		o.MaxMeetings = 10_000 * int64(o.N)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Churn != nil && o.ChurnEvery == 0 {
		o.ChurnEvery = int64(o.N)
	}
	return o
}

// Result reports a construction run.
type Result struct {
	// Dir is the constructed community.
	Dir *directory.Directory
	// Exchanges is the total number of exchange calls (e of Section 5.1),
	// including recursive ones.
	Exchanges int64
	// Meetings is the number of initiated random meetings.
	Meetings int64
	// Converged reports whether the threshold was reached before
	// MaxMeetings.
	Converged bool
	// AvgPathLen is the final average path length.
	AvgPathLen float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// ErrBadOptions reports invalid options.
var ErrBadOptions = errors.New("sim: invalid options")

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("%w: N = %d, need at least 2 peers", ErrBadOptions, o.N)
	}
	if err := o.Config.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("%w: Threshold = %v", ErrBadOptions, o.Threshold)
	}
	return nil
}

// Build runs the sequential construction: random pairwise meetings until
// the average path length reaches Threshold·MaxL. Deterministic for a
// given Options.Seed.
func Build(opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := directory.New(opts.N)
	var m core.Metrics
	target := opts.Threshold * float64(opts.Config.MaxL)

	var res Result
	// Recomputing the average path length from scratch every meeting would
	// make the run O(meetings·N); track the sum incrementally instead by
	// polling only every pollEvery meetings (path lengths never shrink, so
	// polling can only delay detection by pollEvery meetings).
	pollEvery := int64(opts.N) / 4
	if pollEvery < 1 {
		pollEvery = 1
	}
	for res.Meetings < opts.MaxMeetings {
		if opts.Churn != nil && res.Meetings%opts.ChurnEvery == 0 {
			ChurnStep(d, *opts.Churn, rng)
		}
		a1, a2 := d.RandomPair(rng)
		if opts.Churn != nil && (!a1.Online() || !a2.Online()) {
			res.Meetings++ // a missed meeting still consumes wall-clock
			continue
		}
		core.Exchange(d, opts.Config, &m, a1, a2, rng)
		res.Meetings++
		if opts.CheckEvery > 0 && res.Meetings%opts.CheckEvery == 0 {
			if err := d.CheckInvariants(); err != nil {
				return Result{}, fmt.Errorf("sim: invariant violated after %d meetings: %v", res.Meetings, err)
			}
		}
		if res.Meetings%pollEvery == 0 && d.AvgPathLen() >= target {
			res.Converged = true
			break
		}
	}
	if !res.Converged && d.AvgPathLen() >= target {
		res.Converged = true
	}
	res.Dir = d
	res.Exchanges = m.Exchanges.Load()
	res.AvgPathLen = d.AvgPathLen()
	res.Elapsed = time.Since(start)
	return res, nil
}

// BuildConcurrent runs the same process with opts.Workers goroutines
// performing meetings in parallel. The result is not deterministic across
// runs (scheduling interleaves), but every safety invariant holds; tests
// verify this. Use for large grids (the paper's 20 000-peer experiment).
func BuildConcurrent(opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	d := directory.New(opts.N)
	var m core.Metrics
	target := opts.Threshold * float64(opts.Config.MaxL)

	var (
		mu       sync.Mutex
		meetings int64
		stopped  bool
	)
	// Each worker claims meetings in small batches to keep the counter from
	// becoming a bottleneck, and polls convergence between batches.
	const batch = 32
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*1_000_003))
			for {
				mu.Lock()
				if stopped || meetings >= opts.MaxMeetings {
					mu.Unlock()
					return
				}
				meetings += batch
				mu.Unlock()
				for i := 0; i < batch; i++ {
					a1, a2 := d.RandomPair(rng)
					core.Exchange(d, opts.Config, &m, a1, a2, rng)
				}
				if d.AvgPathLen() >= target {
					mu.Lock()
					stopped = true
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	res := Result{
		Dir:        d,
		Exchanges:  m.Exchanges.Load(),
		Meetings:   meetings,
		AvgPathLen: d.AvgPathLen(),
		Converged:  d.AvgPathLen() >= target,
		Elapsed:    time.Since(start),
	}
	return res, nil
}
