// Package sim drives P-Grid construction and churn the way the paper's
// Mathematica simulations did: peers meet randomly pairwise and execute the
// exchange function until the grid converges (the average path length
// reaches a threshold fraction of maxl, Section 5.1).
//
// Two engines are provided: a sequential engine that is deterministic for a
// given seed and reproduces the paper's tables bit-for-bit across runs, and
// a concurrent engine that runs meetings on many goroutines to validate the
// algorithm under real interleaving and to build large grids fast.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/telemetry"
	"pgrid/internal/workload"
)

// Options configures a construction run.
type Options struct {
	// N is the community size.
	N int
	// Config carries the P-Grid parameters (maxl, refmax, recmax, fanout).
	Config core.Config
	// Threshold is the convergence threshold t as a fraction of MaxL: the
	// run stops when the average path length reaches Threshold·MaxL.
	// The paper uses 0.99. Default 0.99.
	Threshold float64
	// MaxMeetings aborts the run after this many initiated meetings
	// (recursive exchanges not counted), guarding against non-convergence.
	// Default 10_000 × N.
	MaxMeetings int64
	// Seed seeds the run's random source.
	Seed int64
	// Workers sets the parallelism of the concurrent engine; ignored by
	// the sequential engine. Default GOMAXPROCS.
	Workers int
	// CheckEvery, if > 0, makes the sequential engine verify the directory
	// invariants every CheckEvery meetings (tests use this; it is O(N·maxl)
	// per check).
	CheckEvery int64
	// Churn, when non-nil, runs construction under session churn: every
	// ChurnEvery meetings all peers take one step of the Markov session
	// model, and meetings only happen between online peers. The paper
	// builds with everyone online; this option measures how robust the
	// construction process is when they are not (offline peers simply
	// miss meetings and catch up when they return).
	Churn      *workload.Churn
	ChurnEvery int64
	// Telemetry, when non-nil, receives fine-grained instrumentation:
	// exchange case counters flow through core, and (when an event sink is
	// attached) both engines emit one "exchange" event per exchange, one
	// "round" sample every SampleEvery meetings, and one final "build"
	// summary. Nil keeps the engines on the uninstrumented fast path.
	// Attach the sink through a telemetry.Pipeline (as pgridsim and
	// pgridnode do) to keep emission off the meeting hot path; the
	// concurrent engine's workers then share the pipeline's lock-free
	// rings instead of serializing on the sink's mutex.
	Telemetry *telemetry.Instruments
	// SampleEvery is the meeting interval between "round" samples.
	// Default N; < 0 disables sampling.
	SampleEvery int64
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.99
	}
	if o.MaxMeetings == 0 {
		o.MaxMeetings = 10_000 * int64(o.N)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Churn != nil && o.ChurnEvery == 0 {
		o.ChurnEvery = int64(o.N)
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = int64(o.N)
	}
	return o
}

// emitRound sends one periodic convergence/throughput sample.
func emitRound(o Options, m *core.Metrics, d *directory.Directory, meetings int64, target float64) {
	o.Telemetry.Emit(telemetry.KindRound, map[string]any{
		"meetings":     meetings,
		"exchanges":    m.Exchanges.Load(),
		"avg_path_len": d.AvgPathLen(),
		"target":       target,
	})
}

// emitBuild sends the end-of-construction summary.
func emitBuild(o Options, res Result) {
	if !o.Telemetry.EventsOn() {
		return
	}
	o.Telemetry.Emit(telemetry.KindBuild, map[string]any{
		"n":            o.N,
		"meetings":     res.Meetings,
		"exchanges":    res.Exchanges,
		"avg_path_len": res.AvgPathLen,
		"converged":    res.Converged,
		"seconds":      res.Elapsed.Seconds(),
	})
}

// Result reports a construction run.
type Result struct {
	// Dir is the constructed community.
	Dir *directory.Directory
	// Exchanges is the total number of exchange calls (e of Section 5.1),
	// including recursive ones.
	Exchanges int64
	// Meetings is the number of initiated random meetings.
	Meetings int64
	// Converged reports whether the threshold was reached before
	// MaxMeetings.
	Converged bool
	// AvgPathLen is the final average path length.
	AvgPathLen float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// ErrBadOptions reports invalid options.
var ErrBadOptions = errors.New("sim: invalid options")

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("%w: N = %d, need at least 2 peers", ErrBadOptions, o.N)
	}
	if err := o.Config.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("%w: Threshold = %v", ErrBadOptions, o.Threshold)
	}
	return nil
}

// Build runs the sequential construction: random pairwise meetings until
// the average path length reaches Threshold·MaxL. Deterministic for a
// given Options.Seed.
func Build(opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := directory.New(opts.N)
	var m core.Metrics
	m.Tel = opts.Telemetry
	target := opts.Threshold * float64(opts.Config.MaxL)
	sampling := opts.Telemetry.EventsOn() && opts.SampleEvery > 0

	var res Result
	// The directory maintains the path-length sum incrementally, so the
	// average path length is a single atomic load and convergence is checked
	// after every meeting — detection is exact, not rationed the way it had
	// to be when AvgPathLen was an O(N) scan.
	for res.Meetings < opts.MaxMeetings {
		if opts.Churn != nil && res.Meetings%opts.ChurnEvery == 0 {
			ChurnStep(d, *opts.Churn, rng)
		}
		a1, a2 := d.RandomPair(rng)
		if opts.Churn != nil && (!a1.Online() || !a2.Online()) {
			res.Meetings++ // a missed meeting still consumes wall-clock
			continue
		}
		core.Exchange(d, opts.Config, &m, a1, a2, rng)
		res.Meetings++
		if sampling && res.Meetings%opts.SampleEvery == 0 {
			emitRound(opts, &m, d, res.Meetings, target)
		}
		if opts.CheckEvery > 0 && res.Meetings%opts.CheckEvery == 0 {
			if err := d.CheckInvariants(); err != nil {
				return Result{}, fmt.Errorf("sim: invariant violated after %d meetings: %v", res.Meetings, err)
			}
		}
		if d.AvgPathLen() >= target {
			res.Converged = true
			break
		}
	}
	if !res.Converged && d.AvgPathLen() >= target {
		res.Converged = true
	}
	res.Dir = d
	res.Exchanges = m.Exchanges.Load()
	res.AvgPathLen = d.AvgPathLen()
	res.Elapsed = time.Since(start)
	emitBuild(opts, res)
	return res, nil
}

// BuildConcurrent runs the same process with opts.Workers goroutines
// performing meetings in parallel. The result is not deterministic across
// runs (scheduling interleaves), but every safety invariant holds; tests
// verify this. Use for large grids (the paper's 20 000-peer experiment).
//
// The engine is contention-free: workers share nothing but three atomics
// (the meeting claim counter, the performed-meeting counter, and the stop
// flag) plus the peers' own fine-grained locks. Each worker draws from its
// own seeded RNG. Meetings never overshoot opts.MaxMeetings: a worker
// claims exactly one meeting at a time and reports every meeting it
// performed, so Result.Meetings is exact even when workers stop mid-stride.
//
// Churn is supported like in the sequential engine: every ChurnEvery
// performed meetings, whichever worker crosses the boundary first wins a
// CAS and advances the whole community's session model; meetings between
// peers that are not both online are counted but perform no exchange.
func BuildConcurrent(opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	d := directory.New(opts.N)
	var m core.Metrics
	m.Tel = opts.Telemetry
	target := opts.Threshold * float64(opts.Config.MaxL)
	sampling := opts.Telemetry.EventsOn() && opts.SampleEvery > 0

	var (
		claimed    atomic.Int64 // meetings handed out to workers
		performed  atomic.Int64 // meetings actually carried out
		stop       atomic.Bool  // convergence reached
		nextChurn  atomic.Int64 // performed-meeting count of the next churn step
		nextSample atomic.Int64 // performed-meeting count of the next round sample
	)
	nextSample.Store(opts.SampleEvery)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*1_000_003))
			for !stop.Load() {
				if claimed.Add(1) > opts.MaxMeetings {
					return
				}
				if opts.Churn != nil {
					gate := nextChurn.Load()
					if performed.Load() >= gate && nextChurn.CompareAndSwap(gate, gate+opts.ChurnEvery) {
						ChurnStep(d, *opts.Churn, rng)
					}
				}
				a1, a2 := d.RandomPair(rng)
				if opts.Churn == nil || (a1.Online() && a2.Online()) {
					core.Exchange(d, opts.Config, &m, a1, a2, rng)
				}
				done := performed.Add(1)
				// Like churn, sampling is a CAS race: whichever worker
				// crosses the boundary first emits the round sample.
				if sampling {
					gate := nextSample.Load()
					if done >= gate && nextSample.CompareAndSwap(gate, gate+opts.SampleEvery) {
						emitRound(opts, &m, d, done, target)
					}
				}
				// AvgPathLen is one atomic load, so convergence is polled
				// after every meeting — no batch-granularity overshoot.
				if d.AvgPathLen() >= target {
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	res := Result{
		Dir:        d,
		Exchanges:  m.Exchanges.Load(),
		Meetings:   performed.Load(),
		AvgPathLen: d.AvgPathLen(),
		Converged:  d.AvgPathLen() >= target,
		Elapsed:    time.Since(start),
	}
	emitBuild(opts, res)
	return res, nil
}
