package sim

import (
	"math"
	"math/rand"
	"testing"

	"pgrid/internal/core"
	"pgrid/internal/telemetry"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

func TestBuildConvergesAndHoldsInvariants(t *testing.T) {
	res, err := Build(Options{
		N:          100,
		Config:     core.Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2},
		Seed:       1,
		CheckEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.AvgPathLen < 0.99*4 {
		t.Errorf("avg path length = %v", res.AvgPathLen)
	}
	if err := res.Dir.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.Exchanges <= 0 || res.Meetings <= 0 {
		t.Errorf("counters: %+v", res)
	}
	// A converged grid must cover the whole key space.
	if err := trie.FromDirectory(res.Dir).CheckCoverage(4); err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministicForSeed(t *testing.T) {
	opts := Options{N: 60, Config: core.DefaultConfig(), Seed: 42}
	r1, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Exchanges != r2.Exchanges || r1.Meetings != r2.Meetings {
		t.Errorf("same seed diverged: %d/%d vs %d/%d",
			r1.Exchanges, r1.Meetings, r2.Exchanges, r2.Meetings)
	}
	for i, p := range r1.Dir.All() {
		if q := r2.Dir.All()[i]; p.Path() != q.Path() {
			t.Fatalf("peer %d path %q vs %q", i, p.Path(), q.Path())
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	r1, _ := Build(Options{N: 60, Config: core.DefaultConfig(), Seed: 1})
	r2, _ := Build(Options{N: 60, Config: core.DefaultConfig(), Seed: 2})
	same := true
	for i, p := range r1.Dir.All() {
		if r2.Dir.All()[i].Path() != p.Path() {
			same = false
			break
		}
	}
	if same && r1.Exchanges == r2.Exchanges {
		t.Error("different seeds produced identical runs")
	}
}

func TestBuildRecursionSpeedsConvergence(t *testing.T) {
	// The paper's central Section 5.1 finding: recmax=2 needs far fewer
	// exchanges than recmax=0.
	slow, err := Build(Options{N: 200, Config: core.Config{MaxL: 6, RefMax: 1, RecMax: 0}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Build(Options{N: 200, Config: core.Config{MaxL: 6, RefMax: 1, RecMax: 2, RecFanout: 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Exchanges >= slow.Exchanges {
		t.Errorf("recursion did not help: %d vs %d", fast.Exchanges, slow.Exchanges)
	}
}

func TestBuildValidatesOptions(t *testing.T) {
	if _, err := Build(Options{N: 1, Config: core.DefaultConfig()}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Build(Options{N: 10, Config: core.Config{MaxL: 0, RefMax: 1}}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Build(Options{N: 10, Config: core.DefaultConfig(), Threshold: 1.5}); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestBuildAbortsAtMaxMeetings(t *testing.T) {
	res, err := Build(Options{
		N:           50,
		Config:      core.Config{MaxL: 10, RefMax: 1, RecMax: 0},
		MaxMeetings: 100, // far too few to converge to depth 10
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("claimed convergence after 100 meetings")
	}
	if res.Meetings != 100 {
		t.Errorf("meetings = %d", res.Meetings)
	}
}

func TestBuildConcurrentConvergesAndHoldsInvariants(t *testing.T) {
	res, err := BuildConcurrent(Options{
		N:       400,
		Config:  core.Config{MaxL: 5, RefMax: 3, RecMax: 2, RecFanout: 2},
		Seed:    5,
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("concurrent build did not converge: %+v", res)
	}
	if err := res.Dir.CheckInvariants(); err != nil {
		t.Fatalf("concurrent build broke invariants: %v", err)
	}
	if res.Dir.MaxRefsPerLevel() > 3 {
		t.Errorf("refmax exceeded under concurrency: %d", res.Dir.MaxRefsPerLevel())
	}
	for _, p := range res.Dir.All() {
		if p.PathLen() > 5 {
			t.Errorf("maxl exceeded under concurrency: %q", p.Path())
		}
	}
}

func TestBuildConcurrentRespectsMaxMeetings(t *testing.T) {
	// The seed engine handed out whole batches and could overshoot
	// MaxMeetings by Workers×batch; the atomic engine claims one meeting at
	// a time, so a non-converging run stops at exactly MaxMeetings.
	res, err := BuildConcurrent(Options{
		N:           50,
		Config:      core.Config{MaxL: 10, RefMax: 1, RecMax: 0},
		MaxMeetings: 100, // far too few to converge to depth 10
		Seed:        4,
		Workers:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("claimed convergence after 100 meetings")
	}
	if res.Meetings != 100 {
		t.Errorf("meetings = %d, want exactly 100", res.Meetings)
	}
}

func TestBuildConcurrentWithChurn(t *testing.T) {
	// Construction under session churn on the concurrent engine: offline
	// peers miss meetings, workers advance the session model via a CAS
	// gate, and the structure must still converge without breaking any
	// invariant. Run under -race this exercises the engine's atomics.
	c := workload.ChurnForOnlineFraction(0.7, 50)
	res, err := BuildConcurrent(Options{
		N:           300,
		Config:      core.Config{MaxL: 5, RefMax: 3, RecMax: 2, RecFanout: 2},
		Threshold:   0.9,
		Seed:        7,
		Workers:     8,
		Churn:       &c,
		ChurnEvery:  75,
		MaxMeetings: 3000 * 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("churned concurrent build did not converge: %+v", res)
	}
	if err := res.Dir.CheckInvariants(); err != nil {
		t.Fatalf("churned concurrent build broke invariants: %v", err)
	}
	if res.Meetings <= 0 || res.Exchanges <= 0 {
		t.Errorf("implausible counters: %+v", res)
	}
}

func TestBuildConcurrentValidatesOptions(t *testing.T) {
	if _, err := BuildConcurrent(Options{N: 0, Config: core.DefaultConfig()}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestChurnStepApproachesStationaryFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := trie.BuildIdeal(512, 3, 4, rng)
	c := workload.ChurnForOnlineFraction(0.3, 40)
	var last int
	for i := 0; i < 400; i++ {
		last = ChurnStep(d, c, rng)
	}
	got := float64(last) / 512
	if math.Abs(got-0.3) > 0.12 {
		t.Errorf("online fraction after churn = %v, want ≈ 0.3", got)
	}
	if got2 := d.OnlineCount(); got2 != last {
		t.Errorf("ChurnStep return %d != OnlineCount %d", last, got2)
	}
}

// TestBuildConcurrentWithPipelineEvents drives the concurrent engine with
// a full event pipeline attached — many worker goroutines emitting into
// the sharded rings while the drainer encodes — and checks the accounting:
// every exchange either reached the sink or was counted as dropped. Run
// under -race this also exercises the emit/drain paths for data races.
func TestBuildConcurrentWithPipelineEvents(t *testing.T) {
	tel := telemetry.New(-1)
	sink := &telemetry.MemorySink{}
	// Tiny rings force the drop path; unthrottled drainer keeps both
	// paths busy.
	pipe := telemetry.NewPipeline(sink, telemetry.PipelineConfig{
		Shards: 4, RingSize: 64, DrainBudget: 1,
	})
	tel.SetSink(pipe)
	res, err := BuildConcurrent(Options{
		N:         120,
		Config:    core.Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2},
		Seed:      7,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	var exchanges, dropReported int64
	for _, e := range sink.Events() {
		switch e.Kind {
		case telemetry.KindExchange:
			exchanges++
		case telemetry.KindDrop:
			dropReported += e.Attrs["dropped"].(int64)
		}
	}
	// Drops() also counts dropped round/build samples, so delivered +
	// dropped can exceed the exchange count by at most those few extras.
	if got := exchanges + pipe.Drops(); got < res.Exchanges || got > res.Exchanges+64 {
		t.Errorf("delivered %d + dropped %d = %d exchange events, engine counted %d",
			exchanges, pipe.Drops(), got, res.Exchanges)
	}
	if dropReported != pipe.Drops() {
		t.Errorf("drop reports sum to %d, pipeline counted %d", dropReported, pipe.Drops())
	}
	if res.Exchanges == 0 || exchanges == 0 {
		t.Errorf("no events flowed: exchanges=%d delivered=%d", res.Exchanges, exchanges)
	}
}
