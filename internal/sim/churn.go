package sim

import (
	"math/rand"

	"pgrid/internal/directory"
	"pgrid/internal/workload"
)

// ChurnStep advances every peer's online state by one step of the given
// session model and returns the number of online peers afterwards. It
// generalizes the paper's static online probability: instead of resampling
// each peer independently per observation, peers have persistent sessions
// with geometric lengths, which is what real file-sharing measurements
// (e.g. the paper's Gnutella reference) show.
func ChurnStep(d *directory.Directory, c workload.Churn, rng *rand.Rand) int {
	online := 0
	for _, p := range d.All() {
		now := c.Step(rng, p.Online())
		p.SetOnline(now)
		if now {
			online++
		}
	}
	return online
}
