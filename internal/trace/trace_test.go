package trace

import (
	"testing"

	"pgrid/internal/bitpath"
)

func TestRenderMatchesSimulatorFormat(t *testing.T) {
	spans := []Span{
		{Peer: 3, Path: bitpath.Empty, Level: 0},
		{Peer: 17, Path: bitpath.MustParse("01"), Level: 1, Backtracked: true},
		{Peer: 9, Path: bitpath.MustParse("0110"), Level: 2, Matched: true},
	}
	got := Render(bitpath.MustParse("0110"), spans, true, 2)
	want := "key 0110: addr(3)[ε/0] → addr(17)[01/1]↩ → addr(9)[0110/2] ✓ (2 msgs)"
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}

	miss := Render(bitpath.MustParse("1"), spans[:1], false, 0)
	if want := "key 1: addr(3)[ε/0] ✗ (0 msgs)"; miss != want {
		t.Errorf("Render = %q, want %q", miss, want)
	}
}

func TestTraceStringUsesRender(t *testing.T) {
	tr := Trace{
		TraceID:  42,
		Key:      bitpath.MustParse("10"),
		Found:    true,
		Messages: 1,
		Spans: []Span{
			{Peer: 0, Path: bitpath.MustParse("0"), Level: 0},
			{Peer: 1, Path: bitpath.MustParse("10"), Level: 0, Matched: true},
		},
	}
	if got, want := tr.String(), Render(tr.Key, tr.Spans, true, 1); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSpanContext(t *testing.T) {
	var nilCtx *SpanContext
	if nilCtx.Alive() {
		t.Error("nil context reported alive")
	}
	if (&SpanContext{Sampled: true}).Alive() {
		t.Error("zero trace id reported alive")
	}
	c := SpanContext{TraceID: 7, Budget: 2, Sampled: true}
	if !c.Alive() {
		t.Error("sampled context reported dead")
	}
	child := c.Child(99)
	if child.Parent != 99 || child.Budget != 1 || child.TraceID != 7 || !child.Sampled {
		t.Errorf("Child = %+v", child)
	}
}

func TestNewTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		id := NewTraceID(i, 3)
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("collision at %d", i)
		}
		seen[id] = true
	}
	if NewTraceID(1, 2) == NewTraceID(2, 1) {
		t.Error("argument order ignored")
	}
}

func TestRecorderRing(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(Trace{}) // must not panic
	if nilRec.Len() != 0 || nilRec.Total() != 0 || nilRec.Snapshot(0) != nil || nilRec.Cap() != 0 {
		t.Error("nil recorder not inert")
	}
	if NewRecorder(0) != nil {
		t.Error("capacity 0 should disable recording")
	}

	r := NewRecorder(3)
	for i := uint64(1); i <= 5; i++ {
		r.Record(Trace{TraceID: i})
	}
	if r.Len() != 3 || r.Cap() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d cap=%d total=%d", r.Len(), r.Cap(), r.Total())
	}
	got := r.Snapshot(0)
	if len(got) != 3 || got[0].TraceID != 5 || got[1].TraceID != 4 || got[2].TraceID != 3 {
		t.Fatalf("snapshot = %+v", got)
	}
	if lim := r.Snapshot(2); len(lim) != 2 || lim[0].TraceID != 5 {
		t.Fatalf("limited snapshot = %+v", lim)
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Trace{TraceID: 1})
	r.Record(Trace{TraceID: 2})
	got := r.Snapshot(0)
	if len(got) != 2 || got[0].TraceID != 2 || got[1].TraceID != 1 {
		t.Fatalf("snapshot = %+v", got)
	}
	if big := r.Snapshot(100); len(big) != 2 {
		t.Fatalf("over-limit snapshot = %+v", big)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Record(Trace{TraceID: uint64(g*1000 + i + 1)})
				r.Snapshot(4)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Total() != 2000 {
		t.Fatalf("total = %d", r.Total())
	}
	for _, tr := range r.Snapshot(0) {
		if tr.TraceID == 0 {
			t.Fatal("zero trace recorded")
		}
	}
}

func TestMix64(t *testing.T) {
	if Mix64(1) == Mix64(2) {
		t.Error("mix collides on adjacent inputs")
	}
	if Mix64(1) == 1 || Mix64(2) == 2 {
		t.Error("mix looks like identity")
	}
	var spread uint64
	for i := uint64(1); i <= 64; i++ {
		spread |= Mix64(i)
	}
	if spread != ^uint64(0) {
		t.Errorf("mix of small inputs leaves bits cold: %016x", spread)
	}
}
