// Package trace implements distributed query tracing for P-Grid searches:
// a compact SpanContext that rides inside wire query messages, per-hop
// Spans appended by every node a query visits, and a shared route
// renderer, so one query crossing the real TCP stack leaves the same
// hop-by-hop record the in-process simulator produces with
// core.QueryTraced.
//
// The paper's central claims are per-query properties — greedy prefix
// routing resolves bits hop by hop (Fig. 2) and search cost stays
// O(log n) messages — and this package is what makes those claims
// observable on a live deployment instead of only in simulation.
package trace

import (
	"fmt"
	"strings"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// DefaultBudget is the hop budget a freshly sampled query starts with.
// It is a propagation safety valve, far above any route a sane grid
// produces (paths are tens of bits at most), not a routing limit:
// routing is never altered by tracing, only span collection stops.
const DefaultBudget = 64

// SpanContext is the compact trace context carried inside wire.Message
// for KindQuery. Encodings that predate tracing decode to a nil context,
// which means "untraced" — old peers and old captures keep working.
type SpanContext struct {
	// TraceID identifies the whole query route; every span the query
	// produces anywhere in the community carries it. Zero is never a
	// valid id, so a zero-valued context is visibly inert.
	TraceID uint64
	// Parent is the span id of the hop that forwarded the query
	// (0 at the root).
	Parent uint64
	// Budget is the number of additional hops the context may propagate
	// to. Each forward decrements it; at 0 downstream hops go untraced.
	Budget int
	// Sampled gates span collection; an unsampled context is dead weight
	// and is not forwarded.
	Sampled bool
}

// Alive reports whether the context should produce spans at the
// receiving hop.
func (c *SpanContext) Alive() bool {
	return c != nil && c.Sampled && c.TraceID != 0
}

// Child returns the context to forward downstream from the span with
// id parent, spending one unit of hop budget.
func (c SpanContext) Child(parent uint64) SpanContext {
	c.Parent = parent
	c.Budget--
	return c
}

// Mix64 spreads the entropy of z over all 64 bits — the splitmix64
// finalizer, the same mixing pgridnode uses to derive node seeds.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID derives a 64-bit trace id from two entropy sources (an RNG
// draw and a peer address, say) with a splitmix64 round, never zero.
func NewTraceID(a, b uint64) uint64 {
	id := Mix64(a + 0x9e3779b97f4a7c15*(b+1))
	if id == 0 {
		id = 1
	}
	return id
}

// Span records one hop of a traced search: a visit to one peer.
type Span struct {
	// ID identifies this span within its trace; Parent is the ID of the
	// span that forwarded the query here (0 at the root hop).
	ID     uint64
	Parent uint64
	// Peer is the peer visited.
	Peer addr.Addr
	// Path is its responsibility path at visit time.
	Path bitpath.Path
	// Level is the absolute number of key bits resolved on arrival.
	Level int
	// Ref is the reference the query was successfully forwarded to
	// (addr.Nil when the hop resolved — or failed — locally).
	Ref addr.Addr
	// Matched reports whether the search terminated here.
	Matched bool
	// Backtracked reports that at least one subtree contacted from this
	// hop failed, forcing the search back to an alternative reference.
	Backtracked bool
	// LatencyNS is the wall time the hop spent handling the query,
	// downstream contacts included (0 in the simulator, which measures
	// in messages, not time).
	LatencyNS int64
}

// Trace is the full recorded route of one search, in visit (DFS
// preorder) order — the distributed twin of core.Trace.
type Trace struct {
	TraceID    uint64
	Key        bitpath.Path
	Found      bool
	Messages   int
	Backtracks int
	Spans      []Span
}

// String renders the route through the shared arrow renderer.
func (t Trace) String() string {
	return Render(t.Key, t.Spans, t.Found, t.Messages)
}

// Render draws one search route like
//
//	key 0110: addr(3)[ε/0] → addr(17)[01/1] → addr(9)[0110/2] ✓ (2 msgs)
//
// with "↩" marking hops that had to backtrack. Simulator traces
// (core.Trace) and distributed traces both render through it, so their
// output is diff-able.
func Render(key bitpath.Path, spans []Span, found bool, messages int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "key %s: ", key)
	for i, s := range spans {
		if i > 0 {
			sb.WriteString(" → ")
		}
		fmt.Fprintf(&sb, "%v[%s/%d]", s.Peer, s.Path, s.Level)
		if s.Backtracked {
			sb.WriteString("↩")
		}
	}
	if found {
		fmt.Fprintf(&sb, " ✓ (%d msgs)", messages)
	} else {
		fmt.Fprintf(&sb, " ✗ (%d msgs)", messages)
	}
	return sb.String()
}
