package trace

import "sync"

// Recorder is a fixed-size flight recorder: a ring buffer of the most
// recent sampled traces a node saw. Every node along a traced route
// records its own view (its span plus everything downstream of it), so
// scraping the recorders of a community reassembles who participated in
// any recent trace id.
//
// All methods are nil-safe no-ops, mirroring telemetry.Instruments, so
// nodes thread a possibly-nil *Recorder unconditionally.
type Recorder struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	full  bool
	total uint64
}

// NewRecorder returns a recorder keeping the last capacity traces;
// capacity <= 0 returns nil (recording disabled).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{buf: make([]Trace, capacity)}
}

// Record stores one trace, evicting the oldest when full.
func (r *Recorder) Record(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Len returns the number of traces currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many traces were ever recorded (including evicted
// ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to limit traces, newest first (limit <= 0 means
// all). The returned slice is a copy; spans are shared (traces are
// write-once).
func (r *Recorder) Snapshot(limit int) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Trace, 0, limit)
	for i := 0; i < limit; i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
