package bitpath

import "fmt"

// CoverRange decomposes the inclusive key range [lo, hi] into the minimal
// set of prefixes whose leaves are exactly the keys in the range, in val()
// order. lo and hi must have the same length (≤ 62 bits) with lo ≤ hi.
//
// This is what makes an order-preserving access structure answer range
// queries: a range over ℓ-bit keys becomes at most 2ℓ prefix searches.
// (Hash-partitioned DHTs cannot do this — P-Grid's trie can, which the
// paper leverages for its "prefix search on text" extension.)
func CoverRange(lo, hi Path) ([]Path, error) {
	if lo.Len() != hi.Len() {
		return nil, fmt.Errorf("bitpath: CoverRange: lengths differ (%d vs %d)", lo.Len(), hi.Len())
	}
	n := lo.Len()
	if n == 0 {
		return []Path{Empty}, nil
	}
	if n > 62 {
		return nil, fmt.Errorf("bitpath: CoverRange: length %d exceeds 62 bits", n)
	}
	l, h := lo.Uint(), hi.Uint()
	if l > h {
		return nil, fmt.Errorf("bitpath: CoverRange: lo %s > hi %s", lo, hi)
	}
	var out []Path
	for l <= h {
		// Grow the aligned block starting at l while it stays within [l,h].
		size := uint64(1)
		bits := 0
		for l%(size*2) == 0 && l+(size*2)-1 <= h && bits < n {
			size *= 2
			bits++
		}
		out = append(out, FromUint(l>>uint(bits), n-bits))
		if l+size-1 == ^uint64(0) {
			break // would overflow; only possible at n=64, excluded above
		}
		l += size
	}
	return out, nil
}

// RangeContains reports whether key (of the same length as lo/hi) lies in
// the inclusive range [lo, hi]. It panics if the lengths differ.
func RangeContains(lo, hi, key Path) bool {
	if lo.Len() != hi.Len() || key.Len() != lo.Len() {
		panic(fmt.Sprintf("bitpath: RangeContains: mixed lengths %d/%d/%d", lo.Len(), hi.Len(), key.Len()))
	}
	return Compare(lo, key) <= 0 && Compare(key, hi) <= 0
}
