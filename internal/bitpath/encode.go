package bitpath

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// HashKey maps an arbitrary string (e.g. a file name) to a uniformly
// distributed n-bit Path using SHA-256. This is the standard substitution
// for the paper's "totally ordered set of index terms" when the application
// keys are not naturally uniform: hashing uniformizes the distribution, which
// is exactly the paper's stated assumption ("the data distribution is not
// skewed"). n must be in [0, 64].
func HashKey(s string, n int) Path {
	sum := sha256.Sum256([]byte(s))
	v := binary.BigEndian.Uint64(sum[:8])
	return FromUint(v, n)
}

// PrefixKey maps a string to a path that *preserves lexicographic order* by
// encoding each byte as 8 bits, truncated to n bits. This supports the
// paper's Section 6 extension ("for prefix search on text the algorithm can
// be adapted by extending the {0,1} alphabet"): encoding radix-256 digits as
// bit groups makes the binary trie emulate a text trie, so string prefix
// queries become path prefix queries. The resulting key distribution is as
// skewed as the text distribution; pair with the skew workloads.
func PrefixKey(s string, n int) Path {
	b := make([]byte, 0, n)
	for i := 0; i < len(s) && len(b) < n; i++ {
		c := s[i]
		for bit := 7; bit >= 0 && len(b) < n; bit-- {
			b = append(b, '0'+(c>>uint(bit))&1)
		}
	}
	for len(b) < n {
		b = append(b, '0')
	}
	return Path(b)
}

// DecodePrefixKey inverts PrefixKey for paths whose length is a multiple of
// 8, returning the text prefix the path encodes. Trailing NUL padding is
// stripped. Useful for displaying what part of the namespace a peer covers.
func DecodePrefixKey(p Path) (string, error) {
	if len(p)%8 != 0 {
		return "", fmt.Errorf("bitpath: DecodePrefixKey: length %d is not a multiple of 8", len(p))
	}
	out := make([]byte, 0, len(p)/8)
	for i := 0; i < len(p); i += 8 {
		var c byte
		for j := 0; j < 8; j++ {
			c = c<<1 | (p[i+j] - '0')
		}
		if c == 0 {
			break
		}
		out = append(out, c)
	}
	return string(out), nil
}
