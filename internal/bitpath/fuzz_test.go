package bitpath

import "testing"

// FuzzParse checks that Parse never accepts junk and never rejects valid
// bit strings, and that accepted paths round-trip through the accessors
// without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "0101", "2", "01x", "0000000000000000000001"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		valid := true
		for i := 0; i < len(s); i++ {
			if s[i] != '0' && s[i] != '1' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("Parse(%q) err=%v, validity=%v", s, err, valid)
		}
		if err != nil {
			return
		}
		// Exercising the algebra must never panic on a valid path.
		_ = p.Len()
		_ = p.Val()
		_, _ = p.Interval()
		_ = p.String()
		if p.Len() > 0 {
			_ = p.Sibling()
			_ = p.Parent()
			_ = p.Bit(1)
			_ = p.Bit(p.Len())
		}
		if c := CommonPrefix(p, p); c != p {
			t.Fatalf("CommonPrefix(p,p) = %q", c)
		}
		if !p.HasPrefix(p.Prefix(p.Len() / 2)) {
			t.Fatal("own prefix rejected")
		}
	})
}

// FuzzDecodePrefixKey checks PrefixKey/DecodePrefixKey agreement on
// arbitrary text.
func FuzzDecodePrefixKey(f *testing.F) {
	for _, seed := range []string{"", "a", "hello", "P-Grid", "\x00x", "日本"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		bits := (len(s) + 1) * 8
		if bits > 512 {
			return
		}
		p := PrefixKey(s, bits)
		if p.Len() != bits || !p.Valid() {
			t.Fatalf("PrefixKey(%q) = %q", s, p)
		}
		got, err := DecodePrefixKey(p)
		if err != nil {
			t.Fatalf("DecodePrefixKey: %v", err)
		}
		// Decoding stops at the first NUL; the original matches up to it.
		want := s
		for i := 0; i < len(s); i++ {
			if s[i] == 0 {
				want = s[:i]
				break
			}
		}
		if got != want {
			t.Fatalf("round trip %q → %q (want %q)", s, got, want)
		}
	})
}
