package bitpath

import (
	"testing"
	"testing/quick"
)

func TestCoverRangeExamples(t *testing.T) {
	cases := []struct {
		lo, hi string
		want   []string
	}{
		{"000", "111", []string{""}},                       // whole space
		{"000", "011", []string{"0"}},                      // half
		{"010", "101", []string{"01", "10"}},               // middle
		{"001", "110", []string{"001", "01", "10", "110"}}, // ragged
		{"101", "101", []string{"101"}},                    // single key
		{"011", "100", []string{"011", "100"}},             // straddles the root
	}
	for _, c := range cases {
		got, err := CoverRange(MustParse(c.lo), MustParse(c.hi))
		if err != nil {
			t.Fatalf("CoverRange(%s,%s): %v", c.lo, c.hi, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("CoverRange(%s,%s) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if string(got[i]) != c.want[i] {
				t.Errorf("CoverRange(%s,%s)[%d] = %q, want %q", c.lo, c.hi, i, got[i], c.want[i])
			}
		}
	}
}

func TestCoverRangeErrors(t *testing.T) {
	if _, err := CoverRange(MustParse("01"), MustParse("011")); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CoverRange(MustParse("10"), MustParse("01")); err == nil {
		t.Error("inverted range accepted")
	}
	if got, err := CoverRange(Empty, Empty); err != nil || len(got) != 1 || got[0] != Empty {
		t.Errorf("empty-length range = %v, %v", got, err)
	}
}

func TestCoverRangeExactCoverBruteForce(t *testing.T) {
	// For every range over 6-bit keys (2016 ranges), the decomposition
	// covers exactly the keys in the range, with non-overlapping prefixes.
	n := 6
	keys := All(n)
	for li := 0; li < len(keys); li++ {
		for hi := li; hi < len(keys); hi++ {
			lo, hiP := keys[li], keys[hi]
			cover, err := CoverRange(lo, hiP)
			if err != nil {
				t.Fatalf("CoverRange(%s,%s): %v", lo, hiP, err)
			}
			for ki, k := range keys {
				covered := 0
				for _, p := range cover {
					if p.IsPrefixOf(k) {
						covered++
					}
				}
				inRange := ki >= li && ki <= hi
				if inRange && covered != 1 {
					t.Fatalf("range [%s,%s]: key %s covered %d times", lo, hiP, k, covered)
				}
				if !inRange && covered != 0 {
					t.Fatalf("range [%s,%s]: key %s outside but covered", lo, hiP, k)
				}
			}
		}
	}
}

func TestCoverRangeMinimalSize(t *testing.T) {
	// The canonical decomposition of an ℓ-bit range has at most 2ℓ-2
	// prefixes (and we allow 2ℓ for slack).
	f := func(a, b uint16) bool {
		n := 16
		l, h := uint64(a), uint64(b)
		if l > h {
			l, h = h, l
		}
		cover, err := CoverRange(FromUint(l, n), FromUint(h, n))
		return err == nil && len(cover) <= 2*n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCoverRangeMembershipAgrees(t *testing.T) {
	f := func(a, b, k uint16) bool {
		n := 16
		l, h := uint64(a), uint64(b)
		if l > h {
			l, h = h, l
		}
		lo, hi, key := FromUint(l, n), FromUint(h, n), FromUint(uint64(k), n)
		cover, err := CoverRange(lo, hi)
		if err != nil {
			return false
		}
		covered := false
		for _, p := range cover {
			if p.IsPrefixOf(key) {
				covered = true
				break
			}
		}
		return covered == RangeContains(lo, hi, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeContains(t *testing.T) {
	lo, hi := MustParse("0010"), MustParse("1001")
	if !RangeContains(lo, hi, MustParse("0101")) {
		t.Error("inner key rejected")
	}
	if !RangeContains(lo, hi, lo) || !RangeContains(lo, hi, hi) {
		t.Error("bounds are inclusive")
	}
	if RangeContains(lo, hi, MustParse("0001")) || RangeContains(lo, hi, MustParse("1010")) {
		t.Error("outer key accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("mixed lengths must panic")
		}
	}()
	RangeContains(lo, hi, MustParse("01"))
}
