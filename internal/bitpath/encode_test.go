package bitpath

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministicAndUniform(t *testing.T) {
	if HashKey("song.mp3", 16) != HashKey("song.mp3", 16) {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("a", 16) == HashKey("b", 16) {
		t.Fatal("HashKey collides on trivially different inputs (suspicious)")
	}
	// First-bit balance over many random names: binomial with n=2000, p=0.5;
	// allow 6 sigma.
	rng := rand.New(rand.NewSource(7))
	n := 2000
	ones := 0
	for i := 0; i < n; i++ {
		name := randName(rng)
		p := HashKey(name, 20)
		if p.Len() != 20 {
			t.Fatalf("HashKey length = %d", p.Len())
		}
		if p.Bit(1) == 1 {
			ones++
		}
	}
	mean, sigma := float64(n)/2, math.Sqrt(float64(n)*0.25)
	if math.Abs(float64(ones)-mean) > 6*sigma {
		t.Errorf("HashKey first bit heavily biased: %d/%d ones", ones, n)
	}
}

func randName(rng *rand.Rand) string {
	var sb strings.Builder
	for j := 0; j < 8; j++ {
		sb.WriteByte(byte('a' + rng.Intn(26)))
	}
	return sb.String()
}

func TestPrefixKeyPreservesOrder(t *testing.T) {
	words := []string{"apple", "apply", "banana", "bandana", "cherry"}
	for i := 0; i < len(words); i++ {
		for j := i + 1; j < len(words); j++ {
			a, b := PrefixKey(words[i], 40), PrefixKey(words[j], 40)
			if Compare(a, b) >= 0 {
				t.Errorf("PrefixKey broke order: %q !< %q", words[i], words[j])
			}
		}
	}
}

func TestPrefixKeyPrefixRelation(t *testing.T) {
	// A string prefix must become a path prefix when fully encoded.
	full := PrefixKey("data", 32)
	pre := PrefixKey("da", 16)
	if !pre.IsPrefixOf(full) {
		t.Errorf("string prefix did not yield path prefix: %q vs %q", pre, full)
	}
}

func TestPrefixKeyPadding(t *testing.T) {
	p := PrefixKey("a", 16)
	if p.Len() != 16 {
		t.Fatalf("len = %d, want 16", p.Len())
	}
	if !strings.HasSuffix(string(p), "00000000") {
		t.Errorf("expected NUL padding, got %q", p)
	}
}

func TestDecodePrefixKeyRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello", "P-Grid"} {
		p := PrefixKey(s, (len(s)+2)*8)
		got, err := DecodePrefixKey(p)
		if err != nil {
			t.Fatalf("DecodePrefixKey(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := DecodePrefixKey(MustParse("0101")); err == nil {
		t.Error("expected error for non-byte-aligned path")
	}
}

func TestPropPrefixKeyOrderPreserving(t *testing.T) {
	f := func(a, b string) bool {
		// Truncate to printable-ish short strings to keep paths comparable.
		if len(a) > 6 {
			a = a[:6]
		}
		if len(b) > 6 {
			b = b[:6]
		}
		pa, pb := PrefixKey(a, 64), PrefixKey(b, 64)
		switch {
		case a < b:
			return Compare(pa, pb) <= 0
		case a > b:
			return Compare(pa, pb) >= 0
		default:
			return Compare(pa, pb) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
