package bitpath

import (
	"math/rand"
	"testing"
)

func benchPaths(n, bits int) []Path {
	rng := rand.New(rand.NewSource(1))
	out := make([]Path, n)
	for i := range out {
		out[i] = Random(rng, bits)
	}
	return out
}

func BenchmarkCommonPrefix(b *testing.B) {
	ps := benchPaths(1024, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CommonPrefix(ps[i%1024], ps[(i+1)%1024])
	}
}

func BenchmarkVal(b *testing.B) {
	ps := benchPaths(1024, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps[i%1024].Val()
	}
}

func BenchmarkCompare(b *testing.B) {
	ps := benchPaths(1024, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(ps[i%1024], ps[(i+7)%1024])
	}
}

func BenchmarkHashKey(b *testing.B) {
	names := make([]string, 256)
	rng := rand.New(rand.NewSource(2))
	for i := range names {
		names[i] = randName(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashKey(names[i%256], 20)
	}
}

func BenchmarkPrefixKey(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixKey("some-file-name.mp3", 64)
	}
}
