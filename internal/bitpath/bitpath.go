// Package bitpath implements the binary key algebra of Section 2 of the
// P-Grid paper: keys are binary strings k = p1…pn over {0,1}, ordered by the
// value val(k) = Σ 2^-i·pi, and each key identifies the half-open interval
// I(k) = [val(k), val(k)+2^-n) of the unit key space.
//
// Paths are represented as strings of '0' and '1' bytes. This keeps them
// directly printable, comparable with ==, and usable as map keys; at the path
// lengths P-Grid uses (tens of bits) the encoding overhead is irrelevant next
// to readability.
package bitpath

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Path is a binary key path: a string containing only '0' and '1'.
// The zero value is the empty path, which denotes the whole key space.
type Path string

// Empty is the root path covering the whole key space.
const Empty Path = ""

// ErrInvalid reports a path containing characters other than '0' and '1'.
var ErrInvalid = errors.New("bitpath: path must contain only '0' and '1'")

// Parse validates s and returns it as a Path.
func Parse(s string) (Path, error) {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '1' {
			return "", fmt.Errorf("%w: %q at index %d", ErrInvalid, s, i)
		}
	}
	return Path(s), nil
}

// MustParse is Parse that panics on invalid input; for tests and literals.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Valid reports whether p contains only '0' and '1'.
func (p Path) Valid() bool {
	_, err := Parse(string(p))
	return err == nil
}

// Len returns the number of bits in p.
func (p Path) Len() int { return len(p) }

// IsEmpty reports whether p is the root path.
func (p Path) IsEmpty() bool { return len(p) == 0 }

// Bit returns the i-th bit of p using the paper's 1-based indexing
// (value(k, p1…pn) = pk). It panics if i is out of range [1, Len()].
func (p Path) Bit(i int) byte {
	if i < 1 || i > len(p) {
		panic(fmt.Sprintf("bitpath: Bit(%d) out of range for path of length %d", i, len(p)))
	}
	return p[i-1] - '0'
}

// Append returns p extended with bit b (0 or 1).
func (p Path) Append(b byte) Path {
	if b > 1 {
		panic(fmt.Sprintf("bitpath: Append(%d): bit must be 0 or 1", b))
	}
	return p + Path('0'+b)
}

// AppendFlip returns p extended with the complement of bit b; this is the
// p^- = (p+1) MOD 2 specialization step of the construction algorithm.
func (p Path) AppendFlip(b byte) Path {
	if b > 1 {
		panic(fmt.Sprintf("bitpath: AppendFlip(%d): bit must be 0 or 1", b))
	}
	return p + Path('1'-b)
}

// Prefix returns the first i bits of p (prefix(i, a) in the paper).
// It panics if i is out of range [0, Len()].
func (p Path) Prefix(i int) Path {
	if i < 0 || i > len(p) {
		panic(fmt.Sprintf("bitpath: Prefix(%d) out of range for path of length %d", i, len(p)))
	}
	return p[:i]
}

// Sub returns bits l through k of p inclusive, 1-based, mirroring the
// paper's sub_path(p1…pn, l, k) = pl…pk. l = k+1 yields the empty path.
func (p Path) Sub(l, k int) Path {
	if l < 1 || k > len(p) || l > k+1 {
		panic(fmt.Sprintf("bitpath: Sub(%d,%d) out of range for path of length %d", l, k, len(p)))
	}
	return p[l-1 : k]
}

// Suffix returns p with its first i bits removed.
func (p Path) Suffix(i int) Path {
	if i < 0 || i > len(p) {
		panic(fmt.Sprintf("bitpath: Suffix(%d) out of range for path of length %d", i, len(p)))
	}
	return p[i:]
}

// CommonPrefix returns the longest common prefix of p and q
// (common_prefix_of in the paper).
func CommonPrefix(p, q Path) Path {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	i := 0
	for i < n && p[i] == q[i] {
		i++
	}
	return p[:i]
}

// CommonPrefixLen returns the length of the longest common prefix of p and q.
func CommonPrefixLen(p, q Path) int { return len(CommonPrefix(p, q)) }

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool { return strings.HasPrefix(string(p), string(q)) }

// IsPrefixOf reports whether p is a prefix of q.
func (p Path) IsPrefixOf(q Path) bool { return q.HasPrefix(p) }

// Comparable reports whether p and q are in a prefix relationship
// (one is a prefix of the other, including equality).
func Comparable(p, q Path) bool { return p.HasPrefix(q) || q.HasPrefix(p) }

// Sibling returns p with its last bit flipped; it panics on the empty path.
func (p Path) Sibling() Path {
	if len(p) == 0 {
		panic("bitpath: Sibling of empty path")
	}
	return p[:len(p)-1].AppendFlip(p[len(p)-1] - '0')
}

// Parent returns p without its last bit; it panics on the empty path.
func (p Path) Parent() Path {
	if len(p) == 0 {
		panic("bitpath: Parent of empty path")
	}
	return p[:len(p)-1]
}

// Val returns val(k) = Σ_{i=1..n} 2^-i·pi, the lower end of I(k).
func (p Path) Val() float64 {
	v := 0.0
	w := 0.5
	for i := 0; i < len(p); i++ {
		if p[i] == '1' {
			v += w
		}
		w /= 2
	}
	return v
}

// Width returns the width 2^-n of the interval I(p).
func (p Path) Width() float64 {
	w := 1.0
	for i := 0; i < len(p); i++ {
		w /= 2
	}
	return w
}

// Interval returns [lo, hi) = I(p) = [val(p), val(p)+2^-n).
func (p Path) Interval() (lo, hi float64) {
	lo = p.Val()
	return lo, lo + p.Width()
}

// Contains reports whether val(q) lies in I(p), i.e. whether a query with
// key q belongs to the region p is responsible for. For binary paths this is
// exactly the prefix relation when len(q) >= len(p), and interval containment
// otherwise (a short query key covers many leaves; it is "contained" only if
// its whole interval lies within I(p)).
func (p Path) Contains(q Path) bool {
	if len(q) >= len(p) {
		return q.HasPrefix(p)
	}
	return false
}

// Compare orders paths by val(), breaking ties (nested intervals) by length,
// shorter first. It returns -1, 0, or +1.
func Compare(p, q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			if p[i] < q[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	}
	return 0
}

// Random returns a uniformly random path of exactly n bits.
func Random(rng *rand.Rand, n int) Path {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(rng.Intn(2))
	}
	return Path(b)
}

// FromUint returns the n-bit path whose bits are the n low-order bits of v,
// most significant first. It panics if n is negative or exceeds 64.
func FromUint(v uint64, n int) Path {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitpath: FromUint with n=%d", n))
	}
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = '0' + byte((v>>(n-1-i))&1)
	}
	return Path(b)
}

// Uint returns the bits of p packed into a uint64, most significant first.
// It panics if p is longer than 64 bits.
func (p Path) Uint() uint64 {
	if len(p) > 64 {
		panic("bitpath: Uint on path longer than 64 bits")
	}
	var v uint64
	for i := 0; i < len(p); i++ {
		v = v<<1 | uint64(p[i]-'0')
	}
	return v
}

// String returns the path as a plain bit string; the empty path prints as
// "ε" so it is visible in logs.
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	return string(p)
}

// All returns every path of exactly n bits in val() order. Intended for
// tests and small enumerations; it panics if n > 20 to prevent accidents.
func All(n int) []Path {
	if n < 0 || n > 20 {
		panic(fmt.Sprintf("bitpath: All(%d) out of sensible range", n))
	}
	out := make([]Path, 0, 1<<uint(n))
	for v := uint64(0); v < 1<<uint(n); v++ {
		out = append(out, FromUint(v, n))
	}
	return out
}
