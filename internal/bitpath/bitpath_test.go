package bitpath

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"", true},
		{"0", true},
		{"1", true},
		{"0101101", true},
		{"2", false},
		{"01x", false},
		{"01 ", false},
		{"０１", false}, // full-width digits
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.ok && err != nil {
			t.Errorf("Parse(%q) unexpected error: %v", c.in, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Parse(%q) expected error, got %q", c.in, p)
		}
		if c.ok && string(p) != c.in {
			t.Errorf("Parse(%q) = %q", c.in, p)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("01a")
}

func TestBitIndexing(t *testing.T) {
	p := MustParse("0110")
	want := []byte{0, 1, 1, 0}
	for i := 1; i <= 4; i++ {
		if got := p.Bit(i); got != want[i-1] {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want[i-1])
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			MustParse("0110").Bit(i)
		}()
	}
}

func TestAppendAndFlip(t *testing.T) {
	p := Empty
	p = p.Append(0)
	p = p.Append(1)
	if p != "01" {
		t.Fatalf("Append chain = %q, want 01", p)
	}
	if q := p.AppendFlip(0); q != "011" {
		t.Errorf("AppendFlip(0) = %q, want 011", q)
	}
	if q := p.AppendFlip(1); q != "010" {
		t.Errorf("AppendFlip(1) = %q, want 010", q)
	}
}

func TestSubMatchesPaperSemantics(t *testing.T) {
	// sub_path(p1...pn, l, k) := pl...pk, 1-based inclusive.
	p := MustParse("10110")
	if got := p.Sub(2, 4); got != "011" {
		t.Errorf("Sub(2,4) = %q, want 011", got)
	}
	if got := p.Sub(1, 5); got != p {
		t.Errorf("Sub(1,5) = %q, want %q", got, p)
	}
	if got := p.Sub(3, 2); got != Empty {
		t.Errorf("Sub(3,2) = %q, want empty", got)
	}
	if got := p.Sub(6, 5); got != Empty {
		t.Errorf("Sub(6,5) = %q, want empty", got)
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"0", "1", ""},
		{"01", "01", "01"},
		{"0110", "0101", "01"},
		{"0110", "01", "01"},
		{"111", "1101", "11"},
	}
	for _, c := range cases {
		got := CommonPrefix(MustParse(c.a), MustParse(c.b))
		if string(got) != c.want {
			t.Errorf("CommonPrefix(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got2 := CommonPrefix(MustParse(c.b), MustParse(c.a)); got2 != got {
			t.Errorf("CommonPrefix not symmetric for %q,%q", c.a, c.b)
		}
	}
}

func TestPrefixRelations(t *testing.T) {
	a := MustParse("0101")
	if !a.HasPrefix(MustParse("01")) {
		t.Error("HasPrefix failed on true prefix")
	}
	if a.HasPrefix(MustParse("011")) {
		t.Error("HasPrefix accepted non-prefix")
	}
	if !MustParse("01").IsPrefixOf(a) {
		t.Error("IsPrefixOf failed")
	}
	if !Comparable(a, MustParse("01")) || !Comparable(MustParse("01"), a) {
		t.Error("Comparable failed on prefix pair")
	}
	if Comparable(MustParse("00"), MustParse("01")) {
		t.Error("Comparable accepted diverging paths")
	}
	if !Comparable(a, a) {
		t.Error("Comparable failed on equal paths")
	}
	if !Empty.IsPrefixOf(a) {
		t.Error("empty path must be prefix of everything")
	}
}

func TestSiblingParent(t *testing.T) {
	if got := MustParse("010").Sibling(); got != "011" {
		t.Errorf("Sibling = %q, want 011", got)
	}
	if got := MustParse("011").Sibling(); got != "010" {
		t.Errorf("Sibling = %q, want 010", got)
	}
	if got := MustParse("011").Parent(); got != "01" {
		t.Errorf("Parent = %q, want 01", got)
	}
	for _, f := range []func(){func() { Empty.Sibling() }, func() { Empty.Parent() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on empty path")
				}
			}()
			f()
		}()
	}
}

func TestValAndInterval(t *testing.T) {
	cases := []struct {
		p   string
		val float64
	}{
		{"", 0},
		{"0", 0},
		{"1", 0.5},
		{"01", 0.25},
		{"11", 0.75},
		{"101", 0.625},
	}
	for _, c := range cases {
		p := MustParse(c.p)
		if got := p.Val(); math.Abs(got-c.val) > 1e-12 {
			t.Errorf("Val(%q) = %v, want %v", c.p, got, c.val)
		}
		lo, hi := p.Interval()
		if lo != p.Val() {
			t.Errorf("Interval(%q) lo = %v, want %v", c.p, lo, p.Val())
		}
		if want := p.Val() + p.Width(); math.Abs(hi-want) > 1e-12 {
			t.Errorf("Interval(%q) hi = %v, want %v", c.p, hi, want)
		}
	}
	if Empty.Width() != 1 {
		t.Errorf("Width(empty) = %v, want 1", Empty.Width())
	}
	if MustParse("000").Width() != 0.125 {
		t.Errorf("Width(000) = %v, want 0.125", MustParse("000").Width())
	}
}

func TestContains(t *testing.T) {
	p := MustParse("01")
	if !p.Contains(MustParse("0110")) {
		t.Error("responsible region must contain deeper keys under it")
	}
	if !p.Contains(p) {
		t.Error("region must contain its own key")
	}
	if p.Contains(MustParse("0")) {
		t.Error("region must not contain a strictly shorter key")
	}
	if p.Contains(MustParse("10")) {
		t.Error("region must not contain diverging key")
	}
}

func TestCompareMatchesValOrder(t *testing.T) {
	paths := All(4)
	sorted := append([]Path(nil), paths...)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Val() > sorted[i].Val() {
			t.Fatalf("Compare order violates val order at %d: %q then %q", i, sorted[i-1], sorted[i])
		}
	}
	if Compare(MustParse("0"), MustParse("00")) != -1 {
		t.Error("shorter path must sort before its extension")
	}
	if Compare(MustParse("01"), MustParse("01")) != 0 {
		t.Error("equal paths must compare 0")
	}
}

func TestUintRoundTrip(t *testing.T) {
	for v := uint64(0); v < 64; v++ {
		p := FromUint(v, 6)
		if p.Len() != 6 {
			t.Fatalf("FromUint length = %d", p.Len())
		}
		if got := p.Uint(); got != v {
			t.Fatalf("Uint(FromUint(%d)) = %d", v, got)
		}
	}
	if FromUint(5, 0) != Empty {
		t.Error("FromUint(_, 0) must be empty")
	}
}

func TestAll(t *testing.T) {
	got := All(2)
	want := []Path{"00", "01", "10", "11"}
	if len(got) != len(want) {
		t.Fatalf("All(2) returned %d paths", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("All(2)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRandomLengthAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen0, seen1 := false, false
	for i := 0; i < 100; i++ {
		p := Random(rng, 10)
		if p.Len() != 10 || !p.Valid() {
			t.Fatalf("Random produced invalid path %q", p)
		}
		if p[0] == '0' {
			seen0 = true
		} else {
			seen1 = true
		}
	}
	if !seen0 || !seen1 {
		t.Error("Random never varied its first bit over 100 draws")
	}
}

func TestStringRendersEmptyVisibly(t *testing.T) {
	if Empty.String() != "ε" {
		t.Errorf("empty path renders as %q", Empty.String())
	}
	if MustParse("010").String() != "010" {
		t.Errorf("path renders as %q", MustParse("010").String())
	}
}

// --- property-based tests -------------------------------------------------

// genPath adapts quick's raw uint64/int inputs into a valid Path.
func genPath(v uint64, n uint8) Path { return FromUint(v, int(n%21)) }

func TestPropCommonPrefixIsPrefixOfBoth(t *testing.T) {
	f := func(v1, v2 uint64, n1, n2 uint8) bool {
		a, b := genPath(v1, n1), genPath(v2, n2)
		c := CommonPrefix(a, b)
		return c.IsPrefixOf(a) && c.IsPrefixOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCommonPrefixIsMaximal(t *testing.T) {
	f := func(v1, v2 uint64, n1, n2 uint8) bool {
		a, b := genPath(v1, n1), genPath(v2, n2)
		c := CommonPrefix(a, b)
		// If both paths continue past the common prefix, the next bits differ.
		if len(c) < a.Len() && len(c) < b.Len() {
			return a.Bit(len(c)+1) != b.Bit(len(c)+1)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropValWithinUnitInterval(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		p := genPath(v, n)
		lo, hi := p.Interval()
		return lo >= 0 && hi <= 1.0+1e-12 && lo < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSiblingIntervalsPartitionParent(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		p := genPath(v, n%20+1) // non-empty
		s := p.Sibling()
		plo, phi := p.Interval()
		slo, shi := s.Interval()
		parentLo, parentHi := p.Parent().Interval()
		width := phi - plo + shi - slo
		lo := math.Min(plo, slo)
		hi := math.Max(phi, shi)
		return math.Abs(width-(parentHi-parentLo)) < 1e-12 &&
			math.Abs(lo-parentLo) < 1e-12 && math.Abs(hi-parentHi) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAppendExtendsPrefix(t *testing.T) {
	f := func(v uint64, n uint8, b bool) bool {
		p := genPath(v, n)
		var bit byte
		if b {
			bit = 1
		}
		q := p.Append(bit)
		return p.IsPrefixOf(q) && q.Len() == p.Len()+1 && q.Bit(q.Len()) == bit &&
			p.AppendFlip(bit).Bit(q.Len()) == 1-bit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(v1, v2 uint64, n1, n2 uint8) bool {
		a, b := genPath(v1, n1), genPath(v2, n2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUintRoundTrip(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		k := int(n % 21)
		p := FromUint(v, k)
		var mask uint64
		if k > 0 {
			mask = (1<<uint(k) - 1)
		}
		return p.Uint() == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
