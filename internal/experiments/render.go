package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderConstruction prints construction rows in the paper's table layout.
func RenderConstruction(w io.Writer, title string, rows []ConstructionRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%6s %6s %7s %7s %8s %10s %9s %5s\n",
		"N", "maxl", "refmax", "recmax", "fanout", "e", "e/N", "conv")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %6d %7d %7d %8d %10d %9.2f %5t\n",
			r.N, r.MaxL, r.RefMax, r.RecMax, r.RecFanout, r.Exchanges, r.EPerN, r.Converged)
	}
	fmt.Fprintln(w)
}

// RenderTable2 prints the maxl sweep including growth ratios.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — construction cost vs maximal path length (N=500)")
	fmt.Fprintf(w, "%7s %6s %10s %9s %8s\n", "recmax", "maxl", "e_maxl", "e/N", "ratio")
	for _, r := range rows {
		ratio := "     -"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%6.3f", r.Ratio)
		}
		fmt.Fprintf(w, "%7d %6d %10d %9.2f %8s\n", r.RecMax, r.MaxL, r.Exchanges, r.EPerN, ratio)
	}
	fmt.Fprintln(w)
}

// RenderFig4 prints the replica-distribution histogram.
func RenderFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintf(w, "Fig. 4 — replica distribution (N=%d, avg depth %.2f, e=%d, e/N=%.1f)\n",
		r.Dir.N(), r.AvgPathLen, r.Exchanges, r.EPerN)
	fmt.Fprintf(w, "mean replicas per peer: %.2f (paper: 19.46 on a fully converged depth-10 grid)\n",
		r.MeanReplicas)
	fmt.Fprint(w, r.Histogram.Render(50))
	fmt.Fprintln(w)
}

// RenderSearchReliability prints the Section 5.2 search experiment.
func RenderSearchReliability(w io.Writer, r SearchReliabilityResult) {
	fmt.Fprintf(w, "Search reliability — %d searches: success %.4f (paper 0.9997, eq.3 lower bound %.4f), avg messages %.3f (paper 5.558)\n\n",
		r.Queries, r.SuccessRate, r.Analytic, r.AvgMessages)
}

// RenderFig5 prints the find-all-replicas curves as aligned columns.
func RenderFig5(w io.Writer, curves []Fig5Curve) {
	fmt.Fprintln(w, "Fig. 5 — fraction of replicas found vs messages")
	fmt.Fprintf(w, "%10s", "messages")
	for _, c := range curves {
		fmt.Fprintf(w, " %22s", c.Strategy)
	}
	fmt.Fprintln(w)
	if len(curves) == 0 {
		return
	}
	for i := range curves[0].Curve.Points {
		fmt.Fprintf(w, "%10.0f", curves[0].Curve.Points[i].X)
		for _, c := range curves {
			fmt.Fprintf(w, " %22.3f", c.Curve.Points[i].Y)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderTable6 prints the update/query tradeoff table in the paper layout.
func RenderTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "Table 6 — update/query tradeoff (breadth-first updates, 30% online)")
	fmt.Fprintf(w, "%-22s %10s %10s %11s %10s %14s\n",
		"read protocol", "recbreadth", "repetition", "successrate", "query cost", "insertion cost")
	for _, r := range rows {
		proto := "non-repetitive"
		if r.Repetitive {
			proto = "repetitive (majority)"
		}
		fmt.Fprintf(w, "%-22s %10d %10d %11.3f %10.1f %14.0f\n",
			proto, r.RecBreadth, r.Repetition, r.SuccessRate, r.QueryCost, r.InsertionCost)
	}
	fmt.Fprintln(w)
}

// RenderSec6 prints the architecture comparison.
func RenderSec6(w io.Writer, rows []Sec6Row) {
	fmt.Fprintln(w, "Section 6 — P-Grid vs central server vs Gnutella-style flooding")
	fmt.Fprintf(w, "%6s %6s | %12s %10s %8s | %12s %10s | %12s %8s\n",
		"N", "D", "pgrid-store", "pgrid-msgs", "pgrid-ok",
		"central-store", "central-load", "flood-msgs", "flood-ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %6d | %12.1f %10.2f %8.2f | %12d %12d | %12.1f %8.2f\n",
			r.N, r.D, r.PGridStoragePerPeer, r.PGridMsgsPerQuery, r.PGridSuccess,
			r.CentralStorage, r.CentralMaxLoad, r.FloodMsgsPerQuery, r.FloodSuccess)
	}
	fmt.Fprintln(w)
}

// RenderEq3 prints the model-vs-simulation validation.
func RenderEq3(w io.Writer, rows []Eq3Row) {
	fmt.Fprintln(w, "Eq. 3 — analytic success probability vs measured (ideal grids)")
	fmt.Fprintf(w, "%8s %7s %6s %10s %10s\n", "p", "refmax", "depth", "analytic", "measured")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %7d %6d %10.4f %10.4f\n",
			r.OnlineProb, r.RefMax, r.Depth, r.Analytic, r.Measured)
	}
	fmt.Fprintln(w)
}

// Banner renders a section divider for reports.
func Banner(w io.Writer, s string) {
	fmt.Fprintf(w, "%s\n%s\n", s, strings.Repeat("=", len(s)))
}
