package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/stats"
)

// ConvergenceCurve records how the average path length grows with the
// number of exchanges — the dynamics underlying the Section 5.1 cost
// tables. The paper reports only endpoints; the curve makes the recursion
// ablation visible along the whole trajectory.
type ConvergenceCurve struct {
	RecMax int
	// Curve maps exchanges (x) to average path length (y).
	Curve stats.Curve
}

// Convergence runs construction for each recmax value, sampling the
// average path length every `sampleEvery` meetings until the target depth
// or maxMeetings.
func Convergence(n, maxl int, recmaxes []int, sampleEvery, maxMeetings int, seed int64) []ConvergenceCurve {
	out := make([]ConvergenceCurve, len(recmaxes))
	runCells(len(recmaxes), func(i int) error {
		recmax := recmaxes[i]
		rng := rand.New(rand.NewSource(seed))
		cfg := core.Config{MaxL: maxl, RefMax: 1, RecMax: recmax, RecFanout: 2}
		d := directory.New(n)
		var m core.Metrics
		cc := ConvergenceCurve{RecMax: recmax}
		target := 0.99 * float64(maxl)
		for meetings := 0; meetings < maxMeetings; meetings++ {
			a1, a2 := d.RandomPair(rng)
			core.Exchange(d, cfg, &m, a1, a2, rng)
			if meetings%sampleEvery == 0 {
				avg := d.AvgPathLen()
				cc.Curve.Add(float64(m.Exchanges.Load()), avg)
				if avg >= target {
					break
				}
			}
		}
		out[i] = cc
		return nil
	})
	return out
}

// RenderConvergence prints the curves on a shared exchange grid.
func RenderConvergence(w io.Writer, curves []ConvergenceCurve) {
	fmt.Fprintln(w, "Convergence — average path length vs exchanges")
	fmt.Fprintf(w, "%12s", "exchanges")
	maxX := 0.0
	for _, c := range curves {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("recmax=%d", c.RecMax))
		if pts := c.Curve.Points; len(pts) > 0 && pts[len(pts)-1].X > maxX {
			maxX = pts[len(pts)-1].X
		}
	}
	fmt.Fprintln(w)
	for x := maxX / 20; x <= maxX; x += maxX / 20 {
		fmt.Fprintf(w, "%12.0f", x)
		for _, c := range curves {
			fmt.Fprintf(w, " %12.3f", c.Curve.At(x))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// ConvergenceCSV writes the curves, one column per recmax.
func ConvergenceCSV(w io.Writer, curves []ConvergenceCurve) error {
	header := []string{"exchanges"}
	maxX := 0.0
	for _, c := range curves {
		header = append(header, fmt.Sprintf("recmax_%d", c.RecMax))
		if pts := c.Curve.Points; len(pts) > 0 && pts[len(pts)-1].X > maxX {
			maxX = pts[len(pts)-1].X
		}
	}
	var rows [][]string
	for x := maxX / 100; x <= maxX; x += maxX / 100 {
		row := []string{f(x)}
		for _, c := range curves {
			row = append(row, f(c.Curve.At(x)))
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}
