package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export: every experiment's rows as machine-readable series, so the
// paper's figures can be re-plotted with any tool. pgridbench -csv writes
// one file per experiment.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func i(v int) string     { return strconv.Itoa(v) }
func i64(v int64) string { return strconv.FormatInt(v, 10) }
func b(v bool) string    { return strconv.FormatBool(v) }

// ConstructionCSV writes construction rows (tables 1, 3, 4, 5).
func ConstructionCSV(w io.Writer, rows []ConstructionRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.N), i(r.MaxL), i(r.RefMax), i(r.RecMax), i(r.RecFanout),
			i64(r.Exchanges), f(r.EPerN), b(r.Converged)}
	}
	return writeCSV(w, []string{"n", "maxl", "refmax", "recmax", "fanout", "e", "e_per_n", "converged"}, out)
}

// Table2CSV writes the maxl sweep with growth ratios.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.RecMax), i(r.MaxL), i64(r.Exchanges), f(r.EPerN), f(r.Ratio)}
	}
	return writeCSV(w, []string{"recmax", "maxl", "e", "e_per_n", "ratio"}, out)
}

// Fig4CSV writes the replica histogram.
func Fig4CSV(w io.Writer, r Fig4Result) error {
	var out [][]string
	for _, bkt := range r.Histogram.Buckets() {
		out = append(out, []string{i(bkt.Value), i(bkt.Count)})
	}
	return writeCSV(w, []string{"replicas", "peers"}, out)
}

// Fig5CSV writes the find-all-replicas curves, one column per strategy.
func Fig5CSV(w io.Writer, curves []Fig5Curve) error {
	header := []string{"messages"}
	for _, c := range curves {
		header = append(header, c.Strategy.String())
	}
	var out [][]string
	if len(curves) > 0 {
		for idx := range curves[0].Curve.Points {
			row := []string{f(curves[0].Curve.Points[idx].X)}
			for _, c := range curves {
				row = append(row, f(c.Curve.Points[idx].Y))
			}
			out = append(out, row)
		}
	}
	return writeCSV(w, header, out)
}

// Table6CSV writes the update/query tradeoff.
func Table6CSV(w io.Writer, rows []Table6Row) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{b(r.Repetitive), i(r.RecBreadth), i(r.Repetition),
			f(r.SuccessRate), f(r.QueryCost), f(r.InsertionCost)}
	}
	return writeCSV(w, []string{"repetitive", "recbreadth", "repetition", "successrate", "query_cost", "insertion_cost"}, out)
}

// Sec6CSV writes the architecture comparison.
func Sec6CSV(w io.Writer, rows []Sec6Row) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.N), i(r.D), f(r.PGridStoragePerPeer), f(r.PGridMsgsPerQuery), f(r.PGridSuccess),
			i(r.CentralStorage), i64(r.CentralMaxLoad), f(r.FloodMsgsPerQuery), f(r.FloodSuccess)}
	}
	return writeCSV(w, []string{"n", "d", "pgrid_store", "pgrid_msgs", "pgrid_ok",
		"central_store", "central_load", "flood_msgs", "flood_ok"}, out)
}

// Eq3CSV writes the model-vs-simulation validation.
func Eq3CSV(w io.Writer, rows []Eq3Row) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{f(r.OnlineProb), i(r.RefMax), i(r.Depth), f(r.Analytic), f(r.Measured)}
	}
	return writeCSV(w, []string{"p", "refmax", "depth", "analytic", "measured"}, out)
}

// SkewCSV writes the skew ablation.
func SkewCSV(w io.Writer, rows []SkewRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{r.Distribution, b(r.DataAware), f(r.AvgDepth), f(r.LoadGini), f(r.MaxLoadRatio), f(r.Success)}
	}
	return writeCSV(w, []string{"distribution", "data_aware", "avg_depth", "load_gini", "max_mean_ratio", "success"}, out)
}

// MaintenanceCSV writes the churn-repair series.
func MaintenanceCSV(w io.Writer, rows []MaintenanceRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.Epoch), b(r.Maintained), f(r.Alive), f(r.Fill), f(r.Success)}
	}
	return writeCSV(w, []string{"epoch", "maintained", "alive", "fill", "success"}, out)
}

// JoinCSV writes the incremental-growth measurement.
func JoinCSV(w io.Writer, rows []JoinRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.CommunityBefore), i(r.Joins), f(r.MeanMeetings), f(r.MeanExchanges), f(r.Settled)}
	}
	return writeCSV(w, []string{"n_before", "joins", "meetings_per_join", "exchanges_per_join", "settled"}, out)
}
