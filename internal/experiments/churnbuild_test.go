package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestChurnBuildSweep(t *testing.T) {
	rows, err := ChurnBuild(150, 4, []float64{1.0, 0.5}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	full, half := rows[0], rows[1]
	if !full.Converged || !half.Converged {
		t.Fatalf("did not converge: %+v / %+v", full, half)
	}
	// Churn stretches wall-clock (meetings) but the exchange work stays
	// within the same order of magnitude: offline peers miss meetings,
	// they don't destroy progress.
	if half.Meetings <= full.Meetings {
		t.Errorf("churn did not cost meetings: %d vs %d", half.Meetings, full.Meetings)
	}
	if half.EPerN > 5*full.EPerN {
		t.Errorf("churn blew up exchange work: %.1f vs %.1f", half.EPerN, full.EPerN)
	}
	if half.FinalAvgDepth < 0.9*4 {
		t.Errorf("final depth %v", half.FinalAvgDepth)
	}
}

func TestScaleSweep(t *testing.T) {
	rows, err := Scale([]int{512, 2048}, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Converged {
			t.Errorf("N=%d did not converge: %+v", r.N, r)
		}
	}
	// Depth scales with log2(N/16): 5 then 7.
	if rows[0].MaxL != 5 || rows[1].MaxL != 7 {
		t.Errorf("depths = %d, %d", rows[0].MaxL, rows[1].MaxL)
	}
	// e/N grows with depth (Table 2), but within the recursive regime's
	// damped factor — not the doubling of the recursion-free regime.
	if g := rows[1].EPerN / rows[0].EPerN; g < 1 || g > 4 {
		t.Errorf("e/N growth over 2 levels = %.2f", g)
	}
	var buf bytes.Buffer
	RenderScale(&buf, rows)
	if !strings.Contains(buf.String(), "Scalability") {
		t.Error("render missing header")
	}
	buf.Reset()
	if err := ScaleCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "n,maxl,exchanges") {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestChurnBuildRendering(t *testing.T) {
	rows := []ChurnBuildRow{{OnlineFraction: 0.5, Exchanges: 100, Meetings: 200, EPerN: 2, FinalAvgDepth: 3.7, Converged: true}}
	var buf bytes.Buffer
	RenderChurnBuild(&buf, rows)
	if !strings.Contains(buf.String(), "availability") {
		t.Errorf("render = %q", buf.String())
	}
	buf.Reset()
	if err := ChurnBuildCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "online,exchanges") {
		t.Errorf("csv = %q", buf.String())
	}
}
