package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pgrid/internal/trie"
)

func TestRoutingLoadIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := trie.BuildIdeal(512, 5, 4, rng)
	r := RoutingLoad(d, 5, 4000, 2)
	if r.Queries != 4000 {
		t.Fatalf("queries = %d", r.Queries)
	}
	// The paper's claim: work spreads "equally for all peers". On an ideal
	// grid with uniform keys the imbalance should be mild.
	if r.Gini > 0.4 {
		t.Errorf("routing load gini = %.3f, not balanced", r.Gini)
	}
	if r.MaxMeanRatio > 5 {
		t.Errorf("max/mean = %.1f", r.MaxMeanRatio)
	}
	// Contrast with a central server, where the top 1% (the server) does
	// 100% of the work.
	if r.TopShare > 0.2 {
		t.Errorf("busiest 1%% handle %.2f of work", r.TopShare)
	}
	if r.Summary.Mean <= 0 {
		t.Errorf("summary = %+v", r.Summary)
	}
}

func TestRoutingLoadRender(t *testing.T) {
	var buf bytes.Buffer
	RenderRoutingLoad(&buf, RoutingLoadResult{Queries: 10, Gini: 0.2, MaxMeanRatio: 2, TopShare: 0.05})
	if !strings.Contains(buf.String(), "gini 0.200") {
		t.Errorf("render = %q", buf.String())
	}
}

func TestRoutingLoadDeadCommunity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := trie.BuildIdeal(32, 3, 2, rng)
	d.SetAllOnline(false)
	r := RoutingLoad(d, 3, 100, 4)
	if r.Gini != 0 || r.TopShare != 0 {
		t.Errorf("dead community load = %+v", r)
	}
}
