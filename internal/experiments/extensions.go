package experiments

import (
	"fmt"
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/stats"
	"pgrid/internal/store"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

// This file holds the experiments for the extensions the paper defers to
// future work (Section 6): skewed data distributions with data-aware
// splitting, reference maintenance under permanent churn, and incremental
// membership. None of these has a paper table to match; the benchmarks
// record the ablation (extension on vs off) so regressions are visible.

// SkewRow compares uniform vs data-aware splitting under one key
// distribution.
type SkewRow struct {
	Distribution string  // "uniform" or "zipf"
	DataAware    bool    // SplitMinItems gate active
	AvgDepth     float64 // mean path length after construction
	LoadGini     float64 // Gini of index entries per peer (0 = even)
	MaxLoadRatio float64 // max entries per peer / mean
	Success      float64 // search success for item keys, everyone online
}

// SkewParams configures the skew experiment.
type SkewParams struct {
	Peers    int
	Items    int
	MaxL     int
	MinItems int // SplitMinItems for the data-aware runs
	Meetings int
	Seed     int64
}

// DefaultSkewParams returns a laptop-scale configuration. MaxL is set well
// above log2(Peers) on purpose: with that much depth headroom, plain
// splitting overspecializes (the paper's Section 3 warning) while the
// data-aware gate stops where the data runs out.
func DefaultSkewParams() SkewParams {
	return SkewParams{Peers: 400, Items: 4000, MaxL: 12, MinItems: 10, Meetings: 120000, Seed: 1}
}

// Skew runs the 3×2 experiment: {uniform, hotspot, zipf} × {plain,
// data-aware}. Under region skew ("hotspot": most keys in one quarter of
// the space), plain splitting leaves hot-region peers with far more index
// entries than cold-region peers (high Gini); the data-aware gate subdivides
// the hot region further and keeps replicas in cold regions, flattening the
// load. Zipf keys add value skew — duplicates of single exact keys — which
// no access structure can split away; the row is included to show that
// limit honestly.
func Skew(p SkewParams) []SkewRow {
	var rows []SkewRow
	for _, dist := range []string{"uniform", "hotspot", "zipf"} {
		for _, aware := range []bool{false, true} {
			rows = append(rows, skewCell(p, dist, aware))
		}
	}
	return rows
}

func skewCell(p SkewParams, dist string, aware bool) SkewRow {
	rng := rand.New(rand.NewSource(p.Seed))
	var keys []bitpath.Path
	switch dist {
	case "zipf":
		keys = workload.ZipfKeys(rng, p.Items, p.MaxL+4, 1.2)
	case "hotspot":
		keys = workload.HotspotKeys(rng, p.Items, p.MaxL+4, "00", 0.85)
	default:
		keys = workload.UniformKeys(rng, p.Items, p.MaxL+4)
	}

	cfg := core.Config{MaxL: p.MaxL, RefMax: 3, RecMax: 2, RecFanout: 2}
	if aware {
		cfg.SplitMinItems = p.MinItems
	}
	d := directory.New(p.Peers)
	entries := make([]store.Entry, len(keys))
	for i, k := range keys {
		holder := d.RandomPeer(rng)
		entries[i] = store.Entry{Key: k, Name: fmt.Sprintf("item-%d", i), Holder: holder.Addr(), Version: 1}
		holder.Store().Apply(entries[i])
	}

	var m core.Metrics
	for i := 0; i < p.Meetings; i++ {
		a1, a2 := d.RandomPair(rng)
		core.Exchange(d, cfg, &m, a1, a2, rng)
	}

	// Re-publish every item through the protocol: construction-time
	// migration is best-effort (entries stranded by asymmetric splits stay
	// behind), so a real deployment publishes its catalog against the
	// settled structure. Loads and search success are measured after this,
	// as a user would see them.
	for _, e := range entries {
		core.Insert(d, e, cfg.RefMax, rng)
	}

	row := SkewRow{Distribution: dist, DataAware: aware, AvgDepth: d.AvgPathLen()}
	loads := make([]float64, 0, p.Peers)
	var sum, max float64
	for _, peer := range d.All() {
		l := float64(peer.Store().Len())
		loads = append(loads, l)
		sum += l
		if l > max {
			max = l
		}
	}
	row.LoadGini = stats.Gini(loads)
	if sum > 0 {
		row.MaxLoadRatio = max / (sum / float64(p.Peers))
	}

	succ := 0
	probes := 500
	for i := 0; i < probes; i++ {
		e := entries[rng.Intn(len(entries))]
		res := core.Query(d, d.RandomPeer(rng), e.Key, rng)
		if !res.Found {
			continue
		}
		if _, ok := d.Peer(res.Peer).Store().Get(e.Key, e.Name); ok {
			succ++
		}
	}
	row.Success = float64(succ) / float64(probes)
	return row
}

// RenderSkew prints the skew ablation.
func RenderSkew(wr interface{ Write([]byte) (int, error) }, rows []SkewRow) {
	fmt.Fprintln(wr, "Skew extension — uniform vs data-aware splitting")
	fmt.Fprintf(wr, "%-9s %-10s %9s %10s %9s %9s\n",
		"keys", "splitting", "avg depth", "load gini", "max/mean", "success")
	for _, r := range rows {
		mode := "plain"
		if r.DataAware {
			mode = "data-aware"
		}
		fmt.Fprintf(wr, "%-9s %-10s %9.2f %10.3f %9.1f %9.3f\n",
			r.Distribution, mode, r.AvgDepth, r.LoadGini, r.MaxLoadRatio, r.Success)
	}
	fmt.Fprintln(wr)
}

// MaintenanceRow is one epoch of the churn-repair experiment.
type MaintenanceRow struct {
	Epoch      int
	Maintained bool
	Alive      float64 // fraction of references pointing at online peers
	Fill       float64 // mean reference-set fill vs refmax
	Success    float64 // search success among surviving peers
}

// Maintenance measures reference decay and repair: each epoch, a fraction
// of peers departs permanently (replaced by blank newcomers); with
// maintenance on, every online peer then runs a repair round. Search
// success is measured over surviving (specialized) peers.
func Maintenance(peers, depth, refmax, epochs int, departFraction float64, maintain bool, seed int64) []MaintenanceRow {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.Config{MaxL: depth, RefMax: refmax, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(peers, depth, refmax, rng)

	var rows []MaintenanceRow
	for epoch := 1; epoch <= epochs; epoch++ {
		departs := int(departFraction * float64(peers))
		for i := 0; i < departs; i++ {
			core.ReplaceDeparted(d, addr.Addr(rng.Intn(peers)))
		}
		if maintain {
			core.MaintainAll(d, cfg, core.MaintainOptions{DropOffline: true, Fetch: 3}, rng)
		}
		h := core.MeasureRefHealth(d, cfg)
		row := MaintenanceRow{Epoch: epoch, Maintained: maintain, Alive: h.AliveFraction, Fill: h.Fill}

		succ, probes := 0, 300
		for i := 0; i < probes; i++ {
			key := bitpath.Random(rng, depth)
			start := d.RandomOnlinePeer(rng)
			for start.PathLen() == 0 { // skip blank newcomers as entry points
				start = d.RandomOnlinePeer(rng)
			}
			res := core.Query(d, start, key, rng)
			if res.Found && d.Peer(res.Peer).PathLen() > 0 {
				succ++
			}
		}
		row.Success = float64(succ) / float64(probes)
		rows = append(rows, row)
	}
	return rows
}

// RenderMaintenance prints the churn-repair ablation.
func RenderMaintenance(wr interface{ Write([]byte) (int, error) }, with, without []MaintenanceRow) {
	fmt.Fprintln(wr, "Maintenance extension — reference repair under permanent churn")
	fmt.Fprintf(wr, "%6s | %22s | %22s\n", "", "without maintenance", "with maintenance")
	fmt.Fprintf(wr, "%6s | %7s %6s %7s | %7s %6s %7s\n",
		"epoch", "alive", "fill", "success", "alive", "fill", "success")
	for i := range without {
		w, m := without[i], with[i]
		fmt.Fprintf(wr, "%6d | %7.3f %6.2f %7.3f | %7.3f %6.2f %7.3f\n",
			w.Epoch, w.Alive, w.Fill, w.Success, m.Alive, m.Fill, m.Success)
	}
	fmt.Fprintln(wr)
}

// JoinRow summarizes one batch of joins at a given community size.
type JoinRow struct {
	CommunityBefore int
	Joins           int
	MeanMeetings    float64
	MeanExchanges   float64
	Settled         float64 // fraction reaching full depth
}

// JoinGrowth measures incremental membership cost while a community
// doubles, in batches: per-join cost should stay flat (a join is O(depth)
// targeted meetings, independent of N).
func JoinGrowth(start, batches, batchSize, depth, refmax int, seed int64) []JoinRow {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.Config{MaxL: depth, RefMax: refmax, RecMax: 2, RecFanout: 2}
	d := trie.BuildIdeal(start, depth, refmax, rng)
	var m core.Metrics

	var rows []JoinRow
	for b := 0; b < batches; b++ {
		before := d.N()
		results := core.Grow(d, cfg, &m, batchSize, 500, rng)
		row := JoinRow{CommunityBefore: before, Joins: len(results)}
		for _, r := range results {
			row.MeanMeetings += float64(r.Meetings)
			row.MeanExchanges += float64(r.Exchanges)
			if r.Settled {
				row.Settled++
			}
		}
		row.MeanMeetings /= float64(len(results))
		row.MeanExchanges /= float64(len(results))
		row.Settled /= float64(len(results))
		rows = append(rows, row)
	}
	return rows
}

// RenderJoin prints the incremental-growth measurement.
func RenderJoin(wr interface{ Write([]byte) (int, error) }, rows []JoinRow) {
	fmt.Fprintln(wr, "Join extension — incremental membership cost while the community grows")
	fmt.Fprintf(wr, "%10s %7s %14s %15s %9s\n", "N before", "joins", "meetings/join", "exchanges/join", "settled")
	for _, r := range rows {
		fmt.Fprintf(wr, "%10d %7d %14.1f %15.1f %9.2f\n",
			r.CommunityBefore, r.Joins, r.MeanMeetings, r.MeanExchanges, r.Settled)
	}
	fmt.Fprintln(wr)
}
