package experiments

import (
	"fmt"
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/stats"
	"pgrid/internal/store"
)

// Fig5Curve is the find-all-replicas curve for one strategy: fraction of
// the true replica group found (y) as a function of messages spent (x),
// averaged over trials.
type Fig5Curve struct {
	Strategy core.Strategy
	Curve    stats.Curve
}

// Fig5 reproduces the Fig. 5 experiment: for `trials` random keys of length
// keyLen, repeatedly run each replica-location strategy from fresh random
// online entry points and record the cumulative fraction of the key's true
// covering set identified versus cumulative messages, until either the
// whole group is found or maxMessages is exhausted. recbreadth applies to
// the breadth-first strategy. Curves are averaged over trials on a fixed
// message grid.
func Fig5(d *directory.Directory, keyLen, recbreadth, trials, maxMessages int, seed int64) []Fig5Curve {
	rng := rand.New(rand.NewSource(seed))
	grid := messageGrid(maxMessages)
	var out []Fig5Curve
	for _, s := range []core.Strategy{core.RepeatedDFS, core.RepeatedDFSBuddies, core.BreadthFirst} {
		sums := make([]float64, len(grid))
		for trial := 0; trial < trials; trial++ {
			key := bitpath.Random(rng, keyLen)
			group := onlineCovering(d, key)
			if len(group) == 0 {
				continue
			}
			var c stats.Curve
			found := make(map[addr.Addr]bool)
			msgs := 0
			for msgs < maxMessages && len(found) < len(group) {
				m := core.FindRound(d, s, key, recbreadth, found, rng)
				if m == 0 && len(found) == 0 {
					break // nothing reachable
				}
				msgs += m
				c.Add(float64(msgs), float64(len(found))/float64(len(group)))
			}
			for i, x := range grid {
				sums[i] += c.At(x)
			}
		}
		var avg stats.Curve
		for i, x := range grid {
			avg.Add(x, sums[i]/float64(trials))
		}
		out = append(out, Fig5Curve{Strategy: s, Curve: avg})
	}
	return out
}

// onlineCovering returns the currently reachable covering set of key: the
// denominator of the Fig. 5 fraction (offline replicas cannot be found by
// any strategy, and the paper samples 30 % online).
func onlineCovering(d *directory.Directory, key bitpath.Path) []addr.Addr {
	var out []addr.Addr
	for _, a := range d.Covering(key) {
		if d.Online(a) {
			out = append(out, a)
		}
	}
	return out
}

func messageGrid(maxMessages int) []float64 {
	step := maxMessages / 100
	if step < 5 {
		step = 5
	}
	var grid []float64
	for x := step; x <= maxMessages; x += step {
		grid = append(grid, float64(x))
	}
	return grid
}

// Table6Row is one configuration of the Section 5.2 update/query tradeoff.
type Table6Row struct {
	Repetitive    bool    // repetitive (majority) search vs single search
	RecBreadth    int     // BFS breadth used by the update
	Repetition    int     // number of BFS passes per update
	SuccessRate   float64 // fraction of post-update reads returning the new version
	QueryCost     float64 // mean messages per read
	InsertionCost float64 // mean messages per update
}

// Table6Params configures the tradeoff experiment. Paper values: 100
// updates, 10 queries per update, online probability 30 %.
type Table6Params struct {
	Updates        int
	QueriesPerKey  int
	OnlineProb     float64
	KeyLen         int
	MajorityMargin int
	MajorityBudget int
	Seed           int64
}

// PaperTable6Params returns the Section 5.2 configuration (key length 9 on
// the depth-10 grid).
func PaperTable6Params() Table6Params {
	return Table6Params{
		Updates:        100,
		QueriesPerKey:  10,
		OnlineProb:     0.3,
		KeyLen:         9,
		MajorityMargin: 3,
		MajorityBudget: 64,
		Seed:           1,
	}
}

// Table6 reproduces the final Section 5.2 table on a built grid d: for each
// (recbreadth, repetition) ∈ {2,3}×{1,2,3} and for both read protocols, it
// performs p.Updates updates of random keys followed by p.QueriesPerKey
// reads each, reporting success rate, mean query cost and mean insertion
// cost.
//
// Reads succeed when they return the updated version. The repetitive
// protocol is core.MajorityRead; the non-repetitive one is core.ReadOnce.
func Table6(d *directory.Directory, p Table6Params) []Table6Row {
	var rows []Table6Row
	for _, repetitive := range []bool{true, false} {
		for _, recbreadth := range []int{2, 3} {
			for _, repetition := range []int{1, 2, 3} {
				rows = append(rows, table6Cell(d, p, repetitive, recbreadth, repetition))
			}
		}
	}
	return rows
}

func table6Cell(d *directory.Directory, p Table6Params, repetitive bool, recbreadth, repetition int) Table6Row {
	rng := rand.New(rand.NewSource(p.Seed + int64(recbreadth)*1000 + int64(repetition)*100 + int64(boolToInt(repetitive))))
	d.SampleOnline(rng, p.OnlineProb)
	defer d.SetAllOnline(true)

	row := Table6Row{Repetitive: repetitive, RecBreadth: recbreadth, Repetition: repetition}
	var insertMsgs, queryMsgs, successes, reads int
	for u := 0; u < p.Updates; u++ {
		key := bitpath.Random(rng, p.KeyLen)
		name := fmt.Sprintf("item-%d", u)
		// Baseline version present everywhere (the pre-update state).
		core.PopulateIndex(d, store.Entry{Key: key, Name: name, Holder: 1, Version: 1})
		// The update writes version 2 via breadth-first propagation.
		upd := core.Update(d, store.Entry{Key: key, Name: name, Holder: 2, Version: 2}, recbreadth, repetition, rng)
		insertMsgs += upd.Messages

		for q := 0; q < p.QueriesPerKey; q++ {
			reads++
			var res core.ReadResult
			if repetitive {
				res = core.MajorityRead(d, key, name, core.MajorityOptions{
					Margin: p.MajorityMargin, MaxQueries: p.MajorityBudget,
				}, rng)
			} else {
				start := d.RandomOnlinePeer(rng)
				if start == nil {
					continue
				}
				res = core.ReadOnce(d, start, key, name, rng)
			}
			queryMsgs += res.Messages
			if res.Found && res.Entry.Version == 2 {
				successes++
			}
		}
	}
	row.SuccessRate = float64(successes) / float64(reads)
	row.QueryCost = float64(queryMsgs) / float64(reads)
	row.InsertionCost = float64(insertMsgs) / float64(p.Updates)
	return row
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
