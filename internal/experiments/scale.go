package experiments

import (
	"fmt"
	"io"
	"time"

	"pgrid/internal/core"
	"pgrid/internal/sim"
)

// ScaleRow measures construction at one community size — the "scale
// gracefully in the total number of nodes" claim pushed past the paper's
// 20 000-peer maximum. Depth grows with log2(N) to keep ≈ 16 replicas per
// leaf, so per Table 1 (e linear in N at fixed depth) and Table 2 (per-
// level growth factor ≈ 1.3–1.6 with recursion), e/N is expected to grow
// with depth but stay practical; the pass criterion is convergence at
// every size.
type ScaleRow struct {
	N         int
	MaxL      int
	Exchanges int64
	EPerN     float64
	Elapsed   time.Duration
	Converged bool
}

// Scale sweeps community sizes with the concurrent engine. Unlike the
// Section 5.1 tables this sweep stays sequential: each cell is itself a
// BuildConcurrent run that already saturates every core, and the largest
// grids are memory-heavy enough that overlapping them would only thrash.
func Scale(sizes []int, refmax int, seed int64) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range sizes {
		depth := 1
		for (1 << uint(depth+1)) <= n/16 {
			depth++
		}
		res, err := sim.BuildConcurrent(sim.Options{
			N:      n,
			Config: core.Config{MaxL: depth, RefMax: refmax, RecMax: 2, RecFanout: 2},
			Seed:   seed,
		})
		if err != nil {
			return nil, fmt.Errorf("scale(N=%d): %w", n, err)
		}
		rows = append(rows, ScaleRow{
			N: n, MaxL: depth,
			Exchanges: res.Exchanges,
			EPerN:     float64(res.Exchanges) / float64(n),
			Elapsed:   res.Elapsed,
			Converged: res.Converged,
		})
	}
	return rows, nil
}

// RenderScale prints the sweep.
func RenderScale(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "Scalability — construction cost vs community size (depth = log2(N/16))")
	fmt.Fprintf(w, "%8s %6s %12s %8s %12s %6s\n", "N", "maxl", "exchanges", "e/N", "build time", "conv")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %6d %12d %8.1f %12v %6t\n",
			r.N, r.MaxL, r.Exchanges, r.EPerN, r.Elapsed.Round(time.Millisecond), r.Converged)
	}
	fmt.Fprintln(w)
}

// ScaleCSV writes the sweep.
func ScaleCSV(w io.Writer, rows []ScaleRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.N), i(r.MaxL), i64(r.Exchanges), f(r.EPerN),
			f(r.Elapsed.Seconds()), b(r.Converged)}
	}
	return writeCSV(w, []string{"n", "maxl", "exchanges", "e_per_n", "seconds", "converged"}, out)
}
