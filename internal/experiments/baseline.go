package experiments

import (
	"fmt"
	"math/rand"

	"pgrid/internal/central"
	"pgrid/internal/core"
	"pgrid/internal/flood"
	"pgrid/internal/trie"
	"pgrid/internal/workload"
)

// Sec6Row is one community size of the Section 6 comparison, measured on
// live implementations of all three architectures indexing the same
// catalog (one item per peer). Storage counts index references per node;
// query cost counts messages when every peer issues one query.
type Sec6Row struct {
	N int
	D int // catalog size (= N, one shared item per peer)

	// P-Grid: per-peer routing-table size (O(log D)) and mean messages per
	// query (O(log N)).
	PGridStoragePerPeer float64
	PGridMsgsPerQuery   float64
	PGridSuccess        float64

	// Central server: per-replica storage (O(D)) and queries handled by
	// the busiest replica when all N clients query once (O(N)).
	CentralStorage int
	CentralMaxLoad int64

	// Flooding: mean messages per query (O(N) to reach the whole overlay)
	// and the fraction of queries that found the item.
	FloodMsgsPerQuery float64
	FloodSuccess      float64
}

// Sec6Params configures the comparison sweep.
type Sec6Params struct {
	Sizes    []int // community sizes to sweep
	RefMax   int
	FloodTTL int
	Seed     int64
}

// PaperSec6Params compares at community sizes that keep the flooding
// baseline tractable while spanning an order of magnitude.
func PaperSec6Params() Sec6Params {
	return Sec6Params{Sizes: []int{256, 512, 1024, 2048}, RefMax: 2, FloodTTL: 64, Seed: 1}
}

// Sec6 measures the Section 6 table. For each N it builds an ideal P-Grid
// of depth log2(N/4) (≈ 4 replicas per leaf), a single central server, and
// a degree-3 flooding overlay, indexes the same catalog in each, and lets
// every peer issue one lookup for a uniformly random item.
func Sec6(p Sec6Params) ([]Sec6Row, error) {
	var rows []Sec6Row
	for _, n := range p.Sizes {
		row, err := sec6Row(n, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func sec6Row(n int, p Sec6Params) (Sec6Row, error) {
	depth := 0
	for 1<<uint(depth+1) <= n/4 {
		depth++
	}
	if depth < 1 {
		return Sec6Row{}, fmt.Errorf("sec6: N=%d too small", n)
	}
	rng := rand.New(rand.NewSource(p.Seed + int64(n)))
	catalog := workload.FileCatalog(rng, n, n, depth+4)

	// --- P-Grid ---
	d := trie.BuildIdeal(n, depth, p.RefMax, rng)
	for _, e := range catalog.Entries {
		core.PopulateIndex(d, e)
	}
	var (
		pgMsgs int
		pgSucc int
	)
	storage := 0.0
	for _, peer := range d.All() {
		for l := 1; l <= peer.PathLen(); l++ {
			storage += float64(peer.RefsAt(l).Len())
		}
	}
	storage /= float64(n)
	for _, peer := range d.All() {
		e := catalog.Entries[rng.Intn(len(catalog.Entries))]
		res := core.Query(d, peer, e.Key, rng)
		pgMsgs += res.Messages
		if res.Found {
			if _, ok := d.Peer(res.Peer).Store().Get(e.Key, e.Name); ok {
				pgSucc++
			}
		}
	}

	// --- Central server ---
	cs := central.New(1)
	for _, e := range catalog.Entries {
		cs.Publish(e)
	}
	for i := 0; i < n; i++ {
		cs.Lookup(rng, catalog.Entries[rng.Intn(len(catalog.Entries))].Name)
	}

	// --- Flooding ---
	fl := flood.New(rng, n, 3)
	for _, e := range catalog.Entries {
		fl.Host(e.Holder, e)
	}
	var flMsgs, flSucc int
	for i := 0; i < n; i++ {
		e := catalog.Entries[rng.Intn(len(catalog.Entries))]
		res := fl.Search(rng, fl.RandomOnlinePeer(rng), e.Name, p.FloodTTL)
		flMsgs += res.Messages
		if len(res.Found) > 0 {
			flSucc++
		}
	}

	return Sec6Row{
		N:                   n,
		D:                   len(catalog.Entries),
		PGridStoragePerPeer: storage,
		PGridMsgsPerQuery:   float64(pgMsgs) / float64(n),
		PGridSuccess:        float64(pgSucc) / float64(n),
		CentralStorage:      cs.StoragePerReplica(),
		CentralMaxLoad:      cs.MaxLoad(),
		FloodMsgsPerQuery:   float64(flMsgs) / float64(n),
		FloodSuccess:        float64(flSucc) / float64(n),
	}, nil
}
