package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestConvergenceCurves(t *testing.T) {
	curves := Convergence(300, 5, []int{0, 2}, 50, 200000, 11)
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		pts := c.Curve.Points
		if len(pts) < 3 {
			t.Fatalf("recmax=%d: only %d samples", c.RecMax, len(pts))
		}
		// Monotone non-decreasing depth, bounded by maxl.
		prev := 0.0
		for _, p := range pts {
			if p.Y < prev-1e-9 || p.Y > 5+1e-9 {
				t.Fatalf("recmax=%d: bad sample %+v", c.RecMax, p)
			}
			prev = p.Y
		}
		if final := pts[len(pts)-1].Y; final < 0.99*5 {
			t.Errorf("recmax=%d did not converge: %v", c.RecMax, final)
		}
	}
	// Recursion converges in fewer exchanges: its final x is smaller.
	x0 := curves[0].Curve.Points[len(curves[0].Curve.Points)-1].X
	x2 := curves[1].Curve.Points[len(curves[1].Curve.Points)-1].X
	if x2 >= x0 {
		t.Errorf("recmax=2 needed %v exchanges, recmax=0 %v", x2, x0)
	}
}

func TestConvergenceRendering(t *testing.T) {
	curves := Convergence(100, 3, []int{0, 2}, 20, 50000, 12)
	var buf bytes.Buffer
	RenderConvergence(&buf, curves)
	if !strings.Contains(buf.String(), "recmax=0") || !strings.Contains(buf.String(), "recmax=2") {
		t.Errorf("render missing headers:\n%s", buf.String())
	}
	buf.Reset()
	if err := ConvergenceCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "exchanges,recmax_0,recmax_2") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}
