package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSkewDataAwareFlattensLoad(t *testing.T) {
	p := SkewParams{Peers: 200, Items: 2000, MaxL: 10, MinItems: 10, Meetings: 50000, Seed: 3}
	rows := Skew(p)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(dist string, aware bool) SkewRow {
		for _, r := range rows {
			if r.Distribution == dist && r.DataAware == aware {
				return r
			}
		}
		t.Fatalf("row %s/%v missing", dist, aware)
		return SkewRow{}
	}
	// The headline: data-aware splitting reduces load imbalance under
	// region skew.
	hp, ha := get("hotspot", false), get("hotspot", true)
	if ha.LoadGini >= hp.LoadGini {
		t.Errorf("data-aware gini %.3f not below plain %.3f under hotspot", ha.LoadGini, hp.LoadGini)
	}
	// Searches stay reliable in every configuration.
	for _, r := range rows {
		if r.Success < 0.9 {
			t.Errorf("%s/aware=%v success = %v", r.Distribution, r.DataAware, r.Success)
		}
	}
	// Uniform keys are the control: both modes behave comparably.
	up, ua := get("uniform", false), get("uniform", true)
	if ua.LoadGini > up.LoadGini+0.15 {
		t.Errorf("data-aware hurt the uniform control: %.3f vs %.3f", ua.LoadGini, up.LoadGini)
	}
}

func TestMaintenanceAblation(t *testing.T) {
	without := Maintenance(240, 3, 6, 4, 0.15, false, 5)
	with := Maintenance(240, 3, 6, 4, 0.15, true, 5)
	if len(without) != 4 || len(with) != 4 {
		t.Fatalf("rows: %d/%d", len(without), len(with))
	}
	// By the last epoch, maintained references are much healthier and
	// searches succeed more often.
	lw, lm := without[3], with[3]
	if lm.Alive <= lw.Alive {
		t.Errorf("maintenance did not improve liveness: %.3f vs %.3f", lm.Alive, lw.Alive)
	}
	if lm.Success < lw.Success-0.02 {
		t.Errorf("maintenance reduced search success: %.3f vs %.3f", lm.Success, lw.Success)
	}
	if lm.Alive < 0.95 {
		t.Errorf("maintained liveness = %.3f, want near 1", lm.Alive)
	}
}

func TestJoinGrowthFlatCost(t *testing.T) {
	rows := JoinGrowth(128, 4, 32, 4, 4, 6)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Settled < 0.9 {
			t.Errorf("batch at N=%d settled only %.2f", r.CommunityBefore, r.Settled)
		}
	}
	if rows[3].MeanMeetings > 3*rows[0].MeanMeetings+5 {
		t.Errorf("join cost grew with N: %.1f → %.1f", rows[0].MeanMeetings, rows[3].MeanMeetings)
	}
	if rows[3].CommunityBefore != 128+3*32 {
		t.Errorf("community growth wrong: %+v", rows[3])
	}
}

func TestExtensionRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderSkew(&buf, []SkewRow{{Distribution: "zipf", DataAware: true, AvgDepth: 5, LoadGini: 0.3, MaxLoadRatio: 4, Success: 0.99}})
	RenderMaintenance(&buf,
		[]MaintenanceRow{{Epoch: 1, Maintained: true, Alive: 1, Fill: 1, Success: 1}},
		[]MaintenanceRow{{Epoch: 1, Alive: 0.5, Fill: 1, Success: 0.8}})
	RenderJoin(&buf, []JoinRow{{CommunityBefore: 128, Joins: 32, MeanMeetings: 9, MeanExchanges: 30, Settled: 1}})
	for _, want := range []string{"data-aware", "maintenance", "meetings/join"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
