package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAntiEntropyConvergesTowardFresh(t *testing.T) {
	rows, err := AntiEntropy(200, 5, 15, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	start, end := rows[0], rows[len(rows)-1]
	if start.Fresh >= 0.9 {
		t.Fatalf("weak update already at %.3f freshness: experiment not discriminating", start.Fresh)
	}
	if end.Fresh <= start.Fresh+0.1 {
		t.Errorf("gossip did not reconcile replicas: %.3f → %.3f", start.Fresh, end.Fresh)
	}
	if end.Fresh < 0.6 {
		t.Errorf("final freshness %.3f too low", end.Fresh)
	}
	// Monotone within sampling noise (freshness never decreases: versions
	// are monotone, anti-entropy only spreads the newer one).
	for k := 1; k < len(rows); k++ {
		if rows[k].Fresh < rows[k-1].Fresh-1e-9 {
			t.Errorf("freshness regressed at round %d: %.3f → %.3f",
				rows[k].Round, rows[k-1].Fresh, rows[k].Fresh)
		}
	}
}

func TestAntiEntropyRendering(t *testing.T) {
	rows := []AntiEntropyRow{{Round: 0, Fresh: 0.2}, {Round: 1, Fresh: 0.5, Exchanges: 100}}
	var buf bytes.Buffer
	RenderAntiEntropy(&buf, rows)
	if !strings.Contains(buf.String(), "Anti-entropy") {
		t.Error("render missing header")
	}
	buf.Reset()
	if err := AntiEntropyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "round,fresh,exchanges") {
		t.Errorf("csv = %q", buf.String())
	}
}
