package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/stats"
)

// RoutingLoadResult validates the paper's "equally for all peers" claim:
// the introduction promises that P-Grids "scale gracefully … equally for
// all peers, both with respect to storage and communication cost". Storage
// balance is covered by the skew experiment's uniform row; this experiment
// measures communication balance — how evenly query routing work spreads
// over the community.
type RoutingLoadResult struct {
	Queries int
	// Gini of per-peer handled messages (0 = perfectly even).
	Gini float64
	// MaxMeanRatio is the busiest peer's load over the mean.
	MaxMeanRatio float64
	// TopShare is the fraction of all routing work done by the busiest 1%
	// of peers (the central server's value is 1.0 by construction).
	TopShare float64
	// Summary of per-peer loads.
	Summary stats.Summary
}

// RoutingLoad runs `queries` traced searches for uniform random keys from
// random entry points over a built grid and attributes one unit of work to
// every peer that handled the query (entry, forwarders, responder).
func RoutingLoad(d *directory.Directory, keyLen, queries int, seed int64) RoutingLoadResult {
	rng := rand.New(rand.NewSource(seed))
	load := make(map[addr.Addr]int)
	for i := 0; i < queries; i++ {
		start := d.RandomOnlinePeer(rng)
		if start == nil {
			break
		}
		tr := core.QueryTraced(d, start, bitpath.Random(rng, keyLen), rng)
		for _, h := range tr.Hops {
			load[h.Peer]++
		}
	}
	loads := make([]float64, 0, d.N())
	var total, max float64
	for _, p := range d.All() {
		l := float64(load[p.Addr()])
		loads = append(loads, l)
		total += l
		if l > max {
			max = l
		}
	}
	res := RoutingLoadResult{
		Queries: queries,
		Gini:    stats.Gini(loads),
		Summary: stats.Summarize(loads),
	}
	if mean := total / float64(d.N()); mean > 0 {
		res.MaxMeanRatio = max / mean
	}
	// Share of the busiest 1% (at least one peer).
	k := d.N() / 100
	if k < 1 {
		k = 1
	}
	sorted := append([]float64(nil), loads...)
	for i := 0; i < k; i++ { // selection of top k (k is tiny)
		maxIdx := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxIdx] {
				maxIdx = j
			}
		}
		sorted[i], sorted[maxIdx] = sorted[maxIdx], sorted[i]
	}
	topSum := 0.0
	for i := 0; i < k; i++ {
		topSum += sorted[i]
	}
	if total > 0 {
		res.TopShare = topSum / total
	}
	return res
}

// RenderRoutingLoad prints the balance measurement.
func RenderRoutingLoad(w io.Writer, r RoutingLoadResult) {
	fmt.Fprintln(w, "Routing load balance — per-peer share of query handling")
	fmt.Fprintf(w, "queries %d: gini %.3f, max/mean %.1f, busiest 1%% of peers handle %.1f%% of work\n",
		r.Queries, r.Gini, r.MaxMeanRatio, 100*r.TopShare)
	fmt.Fprintf(w, "per-peer load: %s\n\n", r.Summary)
}
