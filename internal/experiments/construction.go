// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) plus the Section 6 comparison, as parameterized,
// seeded functions returning structured rows. cmd/pgridbench prints them in
// the paper's layout; the repository-level benchmarks wrap them; tests
// assert the qualitative shape of each result.
package experiments

import (
	"fmt"

	"pgrid/internal/core"
	"pgrid/internal/sim"
)

// ConstructionRow is one measurement of the construction cost e.
type ConstructionRow struct {
	N         int     // community size
	MaxL      int     // maximal path length
	RefMax    int     // reference multiplicity
	RecMax    int     // recursion depth bound
	RecFanout int     // recursion fan-out bound (0 = unbounded)
	Exchanges int64   // e — calls to the exchange function
	EPerN     float64 // e / N
	Converged bool
}

func buildRow(n int, cfg core.Config, seed int64) (ConstructionRow, error) {
	res, err := sim.Build(sim.Options{N: n, Config: cfg, Seed: seed})
	if err != nil {
		return ConstructionRow{}, err
	}
	return ConstructionRow{
		N: n, MaxL: cfg.MaxL, RefMax: cfg.RefMax, RecMax: cfg.RecMax, RecFanout: cfg.RecFanout,
		Exchanges: res.Exchanges,
		EPerN:     float64(res.Exchanges) / float64(n),
		Converged: res.Converged,
	}, nil
}

// Table1 reproduces the first Section 5.1 table: construction cost vs
// community size N ∈ {200,400,…,1000} for recmax ∈ {0,2}, maxl=6,
// refmax=1. The paper's finding: e grows linearly in N, i.e. e/N is
// (practically) constant. Cells run on the bounded worker pool; each cell's
// seed depends only on its parameters, so output is order-independent.
func Table1(seed int64) ([]ConstructionRow, error) {
	type cell struct{ n, recmax int }
	var cells []cell
	for _, recmax := range []int{0, 2} {
		for n := 200; n <= 1000; n += 200 {
			cells = append(cells, cell{n, recmax})
		}
	}
	rows := make([]ConstructionRow, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		cfg := core.Config{MaxL: 6, RefMax: 1, RecMax: c.recmax, RecFanout: 2}
		row, err := buildRow(c.n, cfg, seed+int64(c.n)+int64(c.recmax))
		if err != nil {
			return fmt.Errorf("table1(N=%d, recmax=%d): %w", c.n, c.recmax, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Row extends ConstructionRow with the growth ratio e_maxl/e_{maxl-1}.
type Table2Row struct {
	ConstructionRow
	Ratio float64 // e_maxl / e_{maxl-1}; 0 for the first row of a series
}

// Table2 reproduces the second Section 5.1 table: construction cost vs
// maximal path length maxl ∈ {2,…,7} at N=500, for recmax ∈ {0,2}. The
// paper's finding: without recursion the cost doubles per level
// (ratio ≈ 2); with recursion the growth is strongly damped.
func Table2(seed int64) ([]Table2Row, error) {
	type cell struct{ maxl, recmax int }
	var cells []cell
	for _, recmax := range []int{0, 2} {
		for maxl := 2; maxl <= 7; maxl++ {
			cells = append(cells, cell{maxl, recmax})
		}
	}
	rows := make([]Table2Row, len(cells))
	err := runCells(len(cells), func(i int) error {
		c := cells[i]
		cfg := core.Config{MaxL: c.maxl, RefMax: 1, RecMax: c.recmax, RecFanout: 2}
		row, err := buildRow(500, cfg, seed+int64(c.maxl)*10+int64(c.recmax))
		if err != nil {
			return fmt.Errorf("table2(maxl=%d, recmax=%d): %w", c.maxl, c.recmax, err)
		}
		rows[i] = Table2Row{ConstructionRow: row}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The growth ratio chains consecutive cells of a series, so it is
	// derived after the parallel fill.
	for i := range rows {
		if i > 0 && rows[i].RecMax == rows[i-1].RecMax && rows[i-1].Exchanges > 0 {
			rows[i].Ratio = float64(rows[i].Exchanges) / float64(rows[i-1].Exchanges)
		}
	}
	return rows, nil
}

// Table3 reproduces the third Section 5.1 table: construction cost vs
// recursion bound recmax ∈ {0,…,6} at N=500, maxl=6, refmax=1. The paper's
// finding: a pronounced optimum at recmax=2.
func Table3(seed int64) ([]ConstructionRow, error) {
	rows := make([]ConstructionRow, 7)
	err := runCells(len(rows), func(recmax int) error {
		cfg := core.Config{MaxL: 6, RefMax: 1, RecMax: recmax, RecFanout: 2}
		row, err := buildRow(500, cfg, seed+int64(recmax))
		if err != nil {
			return fmt.Errorf("table3(recmax=%d): %w", recmax, err)
		}
		rows[recmax] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RefmaxSweep reproduces the fourth (fanout = 0, unbounded recursion
// fan-out) and fifth (fanout = 2, the paper's fix) Section 5.1 tables:
// construction cost vs refmax ∈ {1,…,4} at N=1000, recmax=2. The findings:
// unbounded fan-out makes the cost grow exponentially in refmax; limiting
// recursive calls to 2 referenced peers keeps it nearly flat.
func RefmaxSweep(seed int64, fanout int) ([]ConstructionRow, error) {
	rows := make([]ConstructionRow, 4)
	err := runCells(len(rows), func(i int) error {
		refmax := i + 1
		cfg := core.Config{MaxL: 6, RefMax: refmax, RecMax: 2, RecFanout: fanout}
		row, err := buildRow(1000, cfg, seed+int64(refmax))
		if err != nil {
			return fmt.Errorf("refmaxsweep(refmax=%d, fanout=%d): %w", refmax, fanout, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
