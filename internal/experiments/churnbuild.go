package experiments

import (
	"fmt"
	"io"

	"pgrid/internal/core"
	"pgrid/internal/sim"
	"pgrid/internal/workload"
)

// ChurnBuildRow measures construction robustness at one availability
// level: how many exchanges (and meetings, which include missed ones) it
// takes to bring the whole community to 90 % of maximal depth while peers
// come and go in sessions.
type ChurnBuildRow struct {
	OnlineFraction float64
	Exchanges      int64
	Meetings       int64
	EPerN          float64
	Converged      bool
	FinalAvgDepth  float64
}

// ChurnBuild sweeps stationary online fractions. The paper's construction
// experiments assume everyone online (fraction 1.0, the control row);
// lower availability stretches the process — offline peers miss meetings
// and resume when they return — but must not break it.
func ChurnBuild(n, maxl int, fractions []float64, seed int64) ([]ChurnBuildRow, error) {
	rows := make([]ChurnBuildRow, len(fractions))
	err := runCells(len(fractions), func(i int) error {
		frac := fractions[i]
		opts := sim.Options{
			N:           n,
			Config:      core.Config{MaxL: maxl, RefMax: 3, RecMax: 2, RecFanout: 2},
			Threshold:   0.90,
			Seed:        seed,
			MaxMeetings: 3000 * int64(n),
		}
		if frac < 1 {
			c := workload.ChurnForOnlineFraction(frac, 50)
			opts.Churn = &c
			opts.ChurnEvery = int64(n) / 4
		}
		res, err := sim.Build(opts)
		if err != nil {
			return fmt.Errorf("churnbuild(%v): %w", frac, err)
		}
		rows[i] = ChurnBuildRow{
			OnlineFraction: frac,
			Exchanges:      res.Exchanges,
			Meetings:       res.Meetings,
			EPerN:          float64(res.Exchanges) / float64(n),
			Converged:      res.Converged,
			FinalAvgDepth:  res.AvgPathLen,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderChurnBuild prints the availability sweep.
func RenderChurnBuild(w io.Writer, rows []ChurnBuildRow) {
	fmt.Fprintln(w, "Construction under churn — cost to reach 90% depth vs availability")
	fmt.Fprintf(w, "%8s %12s %12s %8s %10s %6s\n", "online", "exchanges", "meetings", "e/N", "avg depth", "conv")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %12d %12d %8.1f %10.2f %6t\n",
			r.OnlineFraction, r.Exchanges, r.Meetings, r.EPerN, r.FinalAvgDepth, r.Converged)
	}
	fmt.Fprintln(w)
}

// ChurnBuildCSV writes the sweep.
func ChurnBuildCSV(w io.Writer, rows []ChurnBuildRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{f(r.OnlineFraction), i64(r.Exchanges), i64(r.Meetings), f(r.EPerN), f(r.FinalAvgDepth), b(r.Converged)}
	}
	return writeCSV(w, []string{"online", "exchanges", "meetings", "e_per_n", "avg_depth", "converged"}, out)
}
