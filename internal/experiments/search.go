package experiments

import (
	"fmt"
	"math/rand"

	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/directory"
	"pgrid/internal/sim"
	"pgrid/internal/stats"
	"pgrid/internal/trie"
)

// Fig4Params sizes the Section 5.2 grid. Paper values: N=20000, MaxL=10,
// RefMax=20, Threshold 0.943 (the paper stopped at average depth 9.43
// after 10 h of Mathematica time; pass 0.99 for a fully converged grid).
type Fig4Params struct {
	N         int
	MaxL      int
	RefMax    int
	Threshold float64
	Seed      int64
	// Concurrent selects the goroutine engine (recommended: the paper's
	// 10-hour build takes seconds).
	Concurrent bool
}

// PaperFig4Params returns the exact Section 5.2 configuration.
func PaperFig4Params() Fig4Params {
	return Fig4Params{N: 20000, MaxL: 10, RefMax: 20, Threshold: 0.943, Seed: 1, Concurrent: true}
}

// Fig4Result is the replica-distribution measurement of Fig. 4.
type Fig4Result struct {
	Dir *directory.Directory
	// Histogram maps replication factor → number of peers whose replica
	// group has that size (the paper's x/y axes).
	Histogram *stats.Histogram
	// MeanReplicas is the average replica-group size over peers
	// (paper: 19.46).
	MeanReplicas float64
	Exchanges    int64
	EPerN        float64
	AvgPathLen   float64
}

// Fig4 builds the Section 5.2 grid and measures the replica distribution:
// for every peer, the number of peers responsible for the same path.
func Fig4(p Fig4Params) (Fig4Result, error) {
	opts := sim.Options{
		N:         p.N,
		Config:    core.Config{MaxL: p.MaxL, RefMax: p.RefMax, RecMax: 2, RecFanout: 2},
		Threshold: p.Threshold,
		Seed:      p.Seed,
	}
	var (
		res sim.Result
		err error
	)
	if p.Concurrent {
		res, err = sim.BuildConcurrent(opts)
	} else {
		res, err = sim.Build(opts)
	}
	if err != nil {
		return Fig4Result{}, fmt.Errorf("fig4: %w", err)
	}
	out := Fig4Result{
		Dir:        res.Dir,
		Histogram:  stats.NewHistogram(),
		Exchanges:  res.Exchanges,
		EPerN:      float64(res.Exchanges) / float64(p.N),
		AvgPathLen: res.AvgPathLen,
	}
	groups := res.Dir.ReplicaGroups()
	for _, g := range groups {
		// One histogram observation per peer, as in the paper ("number of
		// peers that have this replication factor").
		for range g {
			out.Histogram.Observe(len(g))
		}
	}
	out.MeanReplicas = out.Histogram.Mean()
	return out, nil
}

// SearchReliabilityResult is the Section 5.2 search experiment output.
type SearchReliabilityResult struct {
	Queries     int
	SuccessRate float64 // paper: 0.9997
	AvgMessages float64 // paper: 5.5576, over successful searches
	// Analytic is equation (3) at the same parameters, for comparison.
	Analytic float64
}

// SearchReliability measures search success over a built grid: `queries`
// depth-first searches for uniform random keys of length keyLen, with each
// peer online with probability onlineProb (resampled once, then searches
// run against that epoch; entry points are random online peers).
func SearchReliability(d *directory.Directory, onlineProb float64, queries, keyLen, refmax int, seed int64) SearchReliabilityResult {
	rng := rand.New(rand.NewSource(seed))
	d.SampleOnline(rng, onlineProb)
	defer d.SetAllOnline(true)

	out := SearchReliabilityResult{
		Queries:  queries,
		Analytic: analysis.SuccessProbability(onlineProb, refmax, keyLen),
	}
	succ, msgs := 0, 0
	for i := 0; i < queries; i++ {
		key := bitpath.Random(rng, keyLen)
		start := d.RandomOnlinePeer(rng)
		if start == nil {
			continue
		}
		res := core.Query(d, start, key, rng)
		if res.Found {
			succ++
			msgs += res.Messages
		}
	}
	out.SuccessRate = float64(succ) / float64(queries)
	if succ > 0 {
		out.AvgMessages = float64(msgs) / float64(succ)
	}
	return out
}

// Eq3Row compares the analytic success probability of equation (3) with
// the measured success rate on an ideal grid at the same parameters.
type Eq3Row struct {
	OnlineProb float64
	RefMax     int
	Depth      int
	Analytic   float64
	Measured   float64
}

// Eq3ModelVsSim validates Section 4's equation (3) against simulation on
// ideal grids (BuildIdeal isolates the formula from construction noise).
// For each (p, refmax) it measures the success rate of `queries` searches
// for full-depth keys.
func Eq3ModelVsSim(depth, queries int, seed int64) []Eq3Row {
	rng := rand.New(rand.NewSource(seed))
	var rows []Eq3Row
	for _, refmax := range []int{1, 2, 5, 10, 20} {
		// Enough peers that every leaf has ≥ refmax replicas, so reference
		// sets are full.
		n := (1 << uint(depth)) * (refmax + 2)
		d := trie.BuildIdeal(n, depth, refmax, rng)
		for _, p := range []float64{0.2, 0.3, 0.5, 0.8} {
			d.SampleOnline(rng, p)
			succ := 0
			for i := 0; i < queries; i++ {
				key := bitpath.Random(rng, depth)
				start := d.RandomOnlinePeer(rng)
				if start == nil {
					continue
				}
				if core.Query(d, start, key, rng).Found {
					succ++
				}
			}
			rows = append(rows, Eq3Row{
				OnlineProb: p,
				RefMax:     refmax,
				Depth:      depth,
				Analytic:   analysis.SuccessProbability(p, refmax, depth),
				Measured:   float64(succ) / float64(queries),
			})
		}
		d.SetAllOnline(true)
	}
	return rows
}
