package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pgrid/internal/core"
	"pgrid/internal/sim"
	"pgrid/internal/trie"
)

// The experiment tests assert the qualitative shape of each paper result
// at reduced scale, so the whole suite stays fast.

func TestTable1LinearInN(t *testing.T) {
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// e/N roughly constant within each recmax series: max/min below 2x
	// (the paper's spread is 69.08–79.71 for recmax=0).
	for _, recmax := range []int{0, 2} {
		min, max := 1e18, 0.0
		for _, r := range rows {
			if r.RecMax != recmax {
				continue
			}
			if !r.Converged {
				t.Fatalf("row %+v did not converge", r)
			}
			if r.EPerN < min {
				min = r.EPerN
			}
			if r.EPerN > max {
				max = r.EPerN
			}
		}
		if max/min > 2 {
			t.Errorf("recmax=%d: e/N spread %f–%f not linear-ish", recmax, min, max)
		}
	}
}

func TestTable2ExponentialWithoutRecursion(t *testing.T) {
	rows, err := Table2(2)
	if err != nil {
		t.Fatal(err)
	}
	// recmax=0 series: ratios near 2 (paper: 1.85–2.36); recmax=2 series:
	// clearly damped on average (paper: 1.13–1.62).
	var sum0, sum2 float64
	var n0, n2 int
	for _, r := range rows {
		if r.Ratio == 0 {
			continue
		}
		if r.RecMax == 0 {
			sum0 += r.Ratio
			n0++
		} else {
			sum2 += r.Ratio
			n2++
		}
	}
	avg0, avg2 := sum0/float64(n0), sum2/float64(n2)
	if avg0 < 1.6 || avg0 > 2.6 {
		t.Errorf("recmax=0 mean growth ratio = %v, want ≈ 2", avg0)
	}
	if avg2 >= avg0 {
		t.Errorf("recursion did not damp growth: %v vs %v", avg2, avg0)
	}
}

func TestTable3OptimumNearTwo(t *testing.T) {
	rows, err := Table3(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	best, bestE := -1, int64(1<<62)
	for _, r := range rows {
		if r.Exchanges < bestE {
			bestE = r.Exchanges
			best = r.RecMax
		}
	}
	// Paper finds the optimum at 2; accept 1–3 (it is a shallow optimum
	// under different seeds), but recmax=0 must never win.
	if best < 1 || best > 3 {
		t.Errorf("optimal recmax = %d, want in [1,3]", best)
	}
	if rows[0].Exchanges <= bestE {
		t.Error("recmax=0 outperformed recursion")
	}
}

func TestRefmaxSweepBoundedVsUnbounded(t *testing.T) {
	unbounded, err := RefmaxSweep(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := RefmaxSweep(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded: strong growth from refmax 1 → 4 (paper: 5x).
	if g := float64(unbounded[3].Exchanges) / float64(unbounded[0].Exchanges); g < 3 {
		t.Errorf("unbounded growth = %.2fx, want ≥ 3x", g)
	}
	// Bounded: flat-ish (paper: 1.8x).
	if g := float64(bounded[3].Exchanges) / float64(bounded[0].Exchanges); g > 2.5 {
		t.Errorf("bounded growth = %.2fx, want ≤ 2.5x", g)
	}
	// And at refmax=4 bounded must beat unbounded clearly.
	if bounded[3].Exchanges*2 > unbounded[3].Exchanges {
		t.Errorf("bounded %d vs unbounded %d at refmax=4: fix ineffective",
			bounded[3].Exchanges, unbounded[3].Exchanges)
	}
}

func smallFig4Params() Fig4Params {
	return Fig4Params{N: 2000, MaxL: 6, RefMax: 10, Threshold: 0.99, Seed: 5, Concurrent: true}
}

func TestFig4ReplicaDistribution(t *testing.T) {
	r, err := Fig4(smallFig4Params())
	if err != nil {
		t.Fatal(err)
	}
	// 2000 peers over 64 leaves → ≈ 31 replicas per leaf on a converged
	// grid; the distribution must be unimodal-ish around that.
	if r.MeanReplicas < 15 || r.MeanReplicas > 40 {
		t.Errorf("mean replicas = %v, want near 2000/64", r.MeanReplicas)
	}
	if r.Histogram.Total() != 2000 {
		t.Errorf("histogram total = %d", r.Histogram.Total())
	}
	if err := r.Dir.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchReliabilityOnBuiltGrid(t *testing.T) {
	r, err := Fig4(smallFig4Params())
	if err != nil {
		t.Fatal(err)
	}
	sr := SearchReliability(r.Dir, 0.3, 2000, 5, 10, 6)
	// Eq. 3 at refmax=10, depth 5 gives ≈ 0.87 as a worst-case bound; the
	// measured rate must sit above it (backtracking helps). The paper's
	// 0.9997 needs refmax=20, exercised by the full-scale bench.
	if sr.SuccessRate < sr.Analytic {
		t.Errorf("success rate %v below eq.3 bound %v", sr.SuccessRate, sr.Analytic)
	}
	if sr.SuccessRate < 0.85 {
		t.Errorf("success rate = %v, want ≥ 0.85", sr.SuccessRate)
	}
	if sr.AvgMessages <= 0 || sr.AvgMessages > 10 {
		t.Errorf("avg messages = %v", sr.AvgMessages)
	}
	// Online flags restored.
	if r.Dir.OnlineCount() != r.Dir.N() {
		t.Error("SearchReliability did not restore online state")
	}
}

func TestEq3MeasuredAtLeastAnalytic(t *testing.T) {
	rows := Eq3ModelVsSim(4, 400, 7)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// Eq. 3 is a worst-case bound (it ignores backtracking and the
		// chance that the entry peer is already responsible), so measured
		// success must not fall meaningfully below it.
		if r.Measured < r.Analytic-0.08 {
			t.Errorf("p=%v refmax=%d: measured %v below analytic %v",
				r.OnlineProb, r.RefMax, r.Measured, r.Analytic)
		}
	}
}

func TestFig5BreadthFirstWins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := trie.BuildIdeal(1024, 6, 5, rng)
	d.SampleOnline(rng, 0.5)
	defer d.SetAllOnline(true)
	curves := Fig5(d, 5, 3, 10, 600, 8)
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	byStrategy := map[core.Strategy]Fig5Curve{}
	for _, c := range curves {
		byStrategy[c.Strategy] = c
		// Coverage curves are monotone non-decreasing in [0,1].
		prev := 0.0
		for _, pt := range c.Curve.Points {
			if pt.Y < prev-1e-9 || pt.Y > 1+1e-9 {
				t.Errorf("%v: non-monotone curve point %+v", c.Strategy, pt)
			}
			prev = pt.Y
		}
	}
	// The paper's finding: breadth-first search reaches high coverage with
	// far fewer messages than repeated depth-first searches.
	bfsX := byStrategy[core.BreadthFirst].Curve.XAtY(0.9)
	dfsX := byStrategy[core.RepeatedDFS].Curve.XAtY(0.9)
	if bfsX >= dfsX {
		t.Errorf("messages to 90%% coverage: BFS %v !< DFS %v", bfsX, dfsX)
	}
}

func TestTable6Shape(t *testing.T) {
	// Build a modest grid via construction, then check the tradeoff shape.
	res, err := sim.BuildConcurrent(sim.Options{
		N:      2000,
		Config: core.Config{MaxL: 6, RefMax: 10, RecMax: 2, RecFanout: 2},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Table6Params{
		Updates: 30, QueriesPerKey: 5, OnlineProb: 0.3, KeyLen: 5,
		MajorityMargin: 3, MajorityBudget: 64, Seed: 9,
	}
	rows := Table6(res.Dir, p)
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(rep bool, rb, n int) Table6Row {
		for _, r := range rows {
			if r.Repetitive == rep && r.RecBreadth == rb && r.Repetition == n {
				return r
			}
		}
		t.Fatalf("row %v/%d/%d missing", rep, rb, n)
		return Table6Row{}
	}
	// Repetitive reads dominate non-repetitive reads cell by cell, and
	// reach near-perfect reliability once the update covers a solid
	// majority (repetition ≥ 2). At repetition 1 the majority premise
	// ("more than half of the replicas are correct") can fail for some
	// keys, so only a weaker bound holds there.
	for _, rb := range []int{2, 3} {
		for _, rep := range []int{1, 2, 3} {
			r, nr := get(true, rb, rep), get(false, rb, rep)
			if r.SuccessRate < nr.SuccessRate-0.02 {
				t.Errorf("repetitive %d/%d (%v) below non-repetitive (%v)",
					rb, rep, r.SuccessRate, nr.SuccessRate)
			}
			if rep >= 2 && r.SuccessRate < 0.97 {
				t.Errorf("repetitive %d/%d success = %v", rb, rep, r.SuccessRate)
			}
			if rep == 1 && r.SuccessRate < 0.8 {
				t.Errorf("repetitive %d/%d success = %v", rb, rep, r.SuccessRate)
			}
		}
	}
	// Non-repetitive: success improves with repetition, never reaches the
	// repetitive protocol's level at repetition 1.
	nr1 := get(false, 2, 1)
	nr3 := get(false, 2, 3)
	if nr3.SuccessRate < nr1.SuccessRate {
		t.Errorf("more update repetitions reduced success: %v → %v", nr1.SuccessRate, nr3.SuccessRate)
	}
	if nr1.SuccessRate > 0.999 {
		t.Errorf("non-repetitive with 1 pass already at %v: experiment not discriminating", nr1.SuccessRate)
	}
	// Insertion cost grows with both recbreadth and repetition.
	if a, b := get(false, 2, 1).InsertionCost, get(false, 3, 1).InsertionCost; b <= a {
		t.Errorf("recbreadth 3 not costlier than 2: %v vs %v", a, b)
	}
	if a, b := get(false, 2, 1).InsertionCost, get(false, 2, 3).InsertionCost; b <= a {
		t.Errorf("repetition 3 not costlier than 1: %v vs %v", a, b)
	}
	// Non-repetitive query cost stays near one DFS (paper ≈ 5.5);
	// repetitive costs more per read.
	if q := get(false, 2, 1).QueryCost; q > 15 {
		t.Errorf("non-repetitive query cost = %v", q)
	}
	if get(true, 2, 1).QueryCost <= get(false, 2, 1).QueryCost {
		t.Error("repetitive reads not costlier than single reads")
	}
}

func TestSec6Scaling(t *testing.T) {
	rows, err := Sec6(Sec6Params{Sizes: []int{256, 1024}, RefMax: 2, FloodTTL: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	// Central storage O(D): grows ~4x.
	if g := float64(big.CentralStorage) / float64(small.CentralStorage); g < 3 {
		t.Errorf("central storage growth = %v", g)
	}
	// Central load O(N): grows ~4x.
	if g := float64(big.CentralMaxLoad) / float64(small.CentralMaxLoad); g < 3 {
		t.Errorf("central load growth = %v", g)
	}
	// Flooding messages O(N): grows ~4x.
	if g := big.FloodMsgsPerQuery / small.FloodMsgsPerQuery; g < 2.5 {
		t.Errorf("flood message growth = %v", g)
	}
	// P-Grid messages O(log N): grows by at most ~2 extra hops.
	if big.PGridMsgsPerQuery > small.PGridMsgsPerQuery+3 {
		t.Errorf("pgrid messages grew too fast: %v → %v",
			small.PGridMsgsPerQuery, big.PGridMsgsPerQuery)
	}
	// P-Grid storage O(log D): grows by ≈ refmax·Δdepth, not 4x.
	if big.PGridStoragePerPeer > small.PGridStoragePerPeer*2 {
		t.Errorf("pgrid storage grew too fast: %v → %v",
			small.PGridStoragePerPeer, big.PGridStoragePerPeer)
	}
	// Everyone answers reliably when online.
	if small.PGridSuccess < 0.99 || small.FloodSuccess < 0.9 {
		t.Errorf("success rates: pgrid %v flood %v", small.PGridSuccess, small.FloodSuccess)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	RenderConstruction(&buf, "Table 1", []ConstructionRow{{N: 200, MaxL: 6, RefMax: 1, Exchanges: 100, EPerN: 0.5, Converged: true}})
	RenderTable2(&buf, []Table2Row{{ConstructionRow: ConstructionRow{MaxL: 2, Exchanges: 10}, Ratio: 0}, {ConstructionRow: ConstructionRow{MaxL: 3, Exchanges: 20}, Ratio: 2}})
	RenderTable6(&buf, []Table6Row{{Repetitive: true, RecBreadth: 2, Repetition: 1, SuccessRate: 1, QueryCost: 17, InsertionCost: 224}})
	RenderSec6(&buf, []Sec6Row{{N: 256, D: 256}})
	RenderEq3(&buf, []Eq3Row{{OnlineProb: 0.3, RefMax: 20, Depth: 10, Analytic: 0.992, Measured: 0.997}})
	RenderSearchReliability(&buf, SearchReliabilityResult{Queries: 10, SuccessRate: 1})
	Banner(&buf, "section")
	out := buf.String()
	for _, want := range []string{"Table 1", "ratio", "recbreadth", "central-store", "analytic", "section\n======="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
