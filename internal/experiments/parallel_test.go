package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCellsCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetMaxParallel(workers)
		hits := make([]atomic.Int32, 100)
		err := runCells(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		SetMaxParallel(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: cell %d evaluated %d times", workers, i, got)
			}
		}
	}
}

func TestRunCellsReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	prev := SetMaxParallel(8)
	defer SetMaxParallel(prev)
	err := runCells(50, func(i int) error {
		switch i {
		case 7:
			return errLow
		case 31:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Errorf("runCells error = %v, want the lowest-index error", err)
	}
}

// TestParallelHarnessMatchesSequential is the determinism regression the
// parallel harness must hold forever: every cell derives its seed from its
// own parameters, so running the sweep on one worker or many must produce
// byte-identical rows.
func TestParallelHarnessMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table1/Table2 runs; skipped in -short mode")
	}
	const seed = 1
	encode := func(v any) []byte {
		t.Helper()
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	prev := SetMaxParallel(1)
	t1seq, err := Table1(seed)
	if err != nil {
		t.Fatal(err)
	}
	t2seq, err := Table2(seed)
	if err != nil {
		t.Fatal(err)
	}
	SetMaxParallel(8)
	t1par, err := Table1(seed)
	if err != nil {
		t.Fatal(err)
	}
	t2par, err := Table2(seed)
	if err != nil {
		t.Fatal(err)
	}
	SetMaxParallel(prev)

	if seq, par := encode(t1seq), encode(t1par); !bytes.Equal(seq, par) {
		t.Errorf("Table1 parallel differs from sequential:\nseq %s\npar %s", seq, par)
	}
	if seq, par := encode(t2seq), encode(t2par); !bytes.Equal(seq, par) {
		t.Errorf("Table2 parallel differs from sequential:\nseq %s\npar %s", seq, par)
	}
}
