package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/sim"
	"pgrid/internal/store"
)

// AntiEntropyRow tracks replica-index consistency over gossip rounds: when
// replicas of the same region meet, they reconcile their indexes (the
// anti-entropy built into the exchange's buddy case). After a batch of
// partial updates, continued background gossip must drive the fraction of
// up-to-date replicas toward 1 without any further update traffic.
type AntiEntropyRow struct {
	Round int
	// Fresh is the fraction of (key, covering-peer) pairs holding the
	// latest version.
	Fresh float64
	// Exchanges is the cumulative gossip exchanges since the updates.
	Exchanges int64
}

// AntiEntropy builds a grid, installs version 1 of `keys` items everywhere,
// applies version 2 with deliberately weak propagation (recbreadth 1, one
// pass), then measures freshness after each round of background gossip
// (n random meetings per round).
func AntiEntropy(n, maxl, keys, rounds int, seed int64) ([]AntiEntropyRow, error) {
	rng := rand.New(rand.NewSource(seed))
	cfg := core.Config{MaxL: maxl, RefMax: 5, RecMax: 2, RecFanout: 2}
	res, err := sim.Build(sim.Options{N: n, Config: cfg, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("antientropy: %w", err)
	}
	d := res.Dir

	type item struct {
		key  bitpath.Path
		name string
	}
	items := make([]item, keys)
	for i := range items {
		items[i] = item{key: bitpath.Random(rng, maxl-1), name: fmt.Sprintf("doc-%d", i)}
		core.PopulateIndex(d, store.Entry{Key: items[i].key, Name: items[i].name, Holder: 1, Version: 1})
		// Deliberately weak update: one narrow pass reaches few replicas.
		core.Update(d, store.Entry{Key: items[i].key, Name: items[i].name, Holder: 2, Version: 2}, 1, 1, rng)
	}

	freshness := func() float64 {
		fresh, total := 0, 0
		for _, it := range items {
			for _, a := range d.Covering(it.key) {
				total++
				if e, ok := d.Peer(a).Store().Get(it.key, it.name); ok && e.Version == 2 {
					fresh++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(fresh) / float64(total)
	}

	var m core.Metrics
	rows := []AntiEntropyRow{{Round: 0, Fresh: freshness()}}
	for round := 1; round <= rounds; round++ {
		for i := 0; i < n; i++ {
			a1, a2 := d.RandomPair(rng)
			core.Exchange(d, cfg, &m, a1, a2, rng)
		}
		rows = append(rows, AntiEntropyRow{Round: round, Fresh: freshness(), Exchanges: m.Exchanges.Load()})
	}
	return rows, nil
}

// RenderAntiEntropy prints the convergence series.
func RenderAntiEntropy(w io.Writer, rows []AntiEntropyRow) {
	fmt.Fprintln(w, "Anti-entropy — replica freshness vs background gossip rounds (weak updates)")
	fmt.Fprintf(w, "%6s %10s %12s\n", "round", "fresh", "exchanges")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10.3f %12d\n", r.Round, r.Fresh, r.Exchanges)
	}
	fmt.Fprintln(w)
}

// AntiEntropyCSV writes the series.
func AntiEntropyCSV(w io.Writer, rows []AntiEntropyRow) error {
	out := make([][]string, len(rows))
	for k, r := range rows {
		out[k] = []string{i(r.Round), f(r.Fresh), i64(r.Exchanges)}
	}
	return writeCSV(w, []string{"round", "fresh", "exchanges"}, out)
}
