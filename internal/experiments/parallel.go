package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment tables are grids of independent seeded sim.Build runs:
// every cell derives its seed from its own parameters, so cells can run in
// any order — and therefore in parallel — without changing a single byte of
// output. runCells is the bounded worker pool all sweeps go through; the
// per-cell seed derivation is untouched, so a parallel run is bit-identical
// to a sequential one (tests assert this).

// maxParallelCells caps the pool; 0 (the default) means GOMAXPROCS.
var maxParallelCells atomic.Int32

// SetMaxParallel sets the number of experiment cells evaluated
// concurrently and returns the previous setting. n ≤ 0 restores the
// default (GOMAXPROCS). Use 1 to force sequential evaluation — the
// determinism regression tests compare the two modes.
func SetMaxParallel(n int) int {
	return int(maxParallelCells.Swap(int32(n)))
}

func cellWorkers(n int) int {
	w := int(maxParallelCells.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runCells evaluates fn(0), …, fn(n-1) on a bounded worker pool. Cells must
// be independent and write their outputs by index. The lowest-index error is
// returned, matching what a sequential loop with early exit would report.
func runCells(n int, fn func(i int) error) error {
	if workers := cellWorkers(n); workers > 1 {
		errs := make([]error, n)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
