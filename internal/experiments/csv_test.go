package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"pgrid/internal/core"
	"pgrid/internal/stats"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v\n%s", err, buf.String())
	}
	return rows
}

func TestConstructionCSV(t *testing.T) {
	var buf bytes.Buffer
	err := ConstructionCSV(&buf, []ConstructionRow{
		{N: 200, MaxL: 6, RefMax: 1, RecMax: 0, RecFanout: 2, Exchanges: 17150, EPerN: 85.75, Converged: true},
		{N: 400, MaxL: 6, RefMax: 1, RecMax: 2, RecFanout: 2, Exchanges: 9045, EPerN: 22.61, Converged: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 || rows[0][0] != "n" || rows[1][0] != "200" || rows[2][5] != "9045" {
		t.Errorf("rows = %v", rows)
	}
}

func TestTable2AndTable6CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2CSV(&buf, []Table2Row{{ConstructionRow: ConstructionRow{RecMax: 0, MaxL: 3, Exchanges: 9780, EPerN: 19.56}, Ratio: 1.998}}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][4] != "1.998" {
		t.Errorf("ratio cell = %v", rows[1])
	}

	buf.Reset()
	if err := Table6CSV(&buf, []Table6Row{{Repetitive: true, RecBreadth: 2, Repetition: 3, SuccessRate: 1, QueryCost: 17, InsertionCost: 224}}); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if rows[1][0] != "true" || rows[1][5] != "224" {
		t.Errorf("table6 = %v", rows[1])
	}
}

func TestFigCSVs(t *testing.T) {
	h := stats.NewHistogram()
	h.Observe(5)
	h.Observe(5)
	h.Observe(7)
	var buf bytes.Buffer
	if err := Fig4CSV(&buf, Fig4Result{Histogram: h}); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 || rows[1][0] != "5" || rows[1][1] != "2" {
		t.Errorf("fig4 = %v", rows)
	}

	var c1, c2 stats.Curve
	c1.Add(10, 0.5)
	c2.Add(10, 0.7)
	buf.Reset()
	err := Fig5CSV(&buf, []Fig5Curve{
		{Strategy: core.RepeatedDFS, Curve: c1},
		{Strategy: core.BreadthFirst, Curve: c2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if rows[0][1] != "repeated-dfs" || rows[1][2] != "0.7" {
		t.Errorf("fig5 = %v", rows)
	}
	// Empty curves: header only.
	buf.Reset()
	if err := Fig5CSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "messages" {
		t.Errorf("empty fig5 = %q", got)
	}
}

func TestRemainingCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := Sec6CSV(&buf, []Sec6Row{{N: 256, D: 256, CentralMaxLoad: 256}}); err != nil {
		t.Fatal(err)
	}
	if err := Eq3CSV(&buf, []Eq3Row{{OnlineProb: 0.3, RefMax: 20, Depth: 10, Analytic: 0.995, Measured: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := SkewCSV(&buf, []SkewRow{{Distribution: "zipf", DataAware: true}}); err != nil {
		t.Fatal(err)
	}
	if err := MaintenanceCSV(&buf, []MaintenanceRow{{Epoch: 1, Alive: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := JoinCSV(&buf, []JoinRow{{CommunityBefore: 512, Joins: 128}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"central_load", "analytic", "data_aware", "maintained", "meetings_per_join"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing header %q", want)
		}
	}
}
