package flood

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

func entry(name string, holder addr.Addr) store.Entry {
	return store.Entry{Key: bitpath.HashKey(name, 10), Name: name, Holder: holder, Version: 1}
}

func TestNewTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := New(rng, 50, 3)
	if nw.N() != 50 {
		t.Fatalf("N = %d", nw.N())
	}
	for i := 0; i < 50; i++ {
		nbs := nw.neighbors[i]
		if len(nbs) < 3 {
			t.Errorf("peer %d has only %d links", i, len(nbs))
		}
		seen := map[addr.Addr]bool{}
		for _, nb := range nbs {
			if nb == addr.Addr(i) {
				t.Errorf("peer %d linked to itself", i)
			}
			if seen[nb] {
				t.Errorf("peer %d has duplicate link to %v", i, nb)
			}
			seen[nb] = true
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range []func(){
		func() { New(rng, 1, 2) },
		func() { New(rng, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSearchFindsHostedItem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := New(rng, 100, 4)
	nw.Host(42, entry("song.mp3", 42))
	res := nw.Search(rng, 0, "song.mp3", 10)
	if len(res.Found) == 0 {
		t.Fatal("flood with generous TTL missed the item")
	}
	if res.Found[0].Holder != 42 {
		t.Errorf("found %v", res.Found[0])
	}
	if res.Messages == 0 || res.Reached < 2 {
		t.Errorf("res = %+v", res)
	}
}

func TestSearchTTLZeroIsLocalOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw := New(rng, 10, 2)
	nw.Host(0, entry("mine.mp3", 0))
	nw.Host(5, entry("theirs.mp3", 5))
	res := nw.Search(rng, 0, "mine.mp3", 0)
	if len(res.Found) != 1 || res.Messages != 0 || res.Reached != 1 {
		t.Errorf("local search res = %+v", res)
	}
	res = nw.Search(rng, 0, "theirs.mp3", 0)
	if len(res.Found) != 0 {
		t.Errorf("TTL 0 reached a remote item: %+v", res)
	}
}

func TestSearchMessagesGrowWithTTL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw := New(rng, 500, 3)
	m1 := nw.Search(rng, 0, "absent", 1).Messages
	m4 := nw.Search(rng, 0, "absent", 4).Messages
	if m4 <= m1 {
		t.Errorf("messages did not grow with TTL: %d vs %d", m1, m4)
	}
}

func TestSearchSkipsOfflinePeersButPaysTransmission(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nw := New(rng, 30, 3)
	nw.Host(7, entry("x.mp3", 7))
	nw.SetOnline(7, false)
	res := nw.Search(rng, 0, "x.mp3", 10)
	if len(res.Found) != 0 {
		t.Error("offline host answered")
	}
	if res.Messages == 0 {
		t.Error("transmissions to offline peers must still cost")
	}
}

func TestSearchFromOfflineStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := New(rng, 10, 2)
	nw.SetOnline(0, false)
	res := nw.Search(rng, 0, "whatever", 5)
	if res.Reached != 0 || res.Messages != 0 {
		t.Errorf("offline start produced %+v", res)
	}
	if res2 := nw.Search(rng, addr.Nil, "whatever", 5); res2.Reached != 0 {
		t.Errorf("nil start produced %+v", res2)
	}
}

func TestSampleOnlineAndRandomOnlinePeer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nw := New(rng, 200, 2)
	nw.SampleOnline(rng, 0)
	if nw.RandomOnlinePeer(rng) != addr.Nil {
		t.Error("expected no online peer")
	}
	nw.SampleOnline(rng, 1)
	if nw.RandomOnlinePeer(rng) == addr.Nil {
		t.Error("expected an online peer")
	}
}

func TestFloodCostIsLinearInReach(t *testing.T) {
	// The motivating claim: flooding cost scales with the number of peers
	// reached, not with log N. Doubling the network roughly doubles the
	// messages for a full-coverage TTL.
	rng := rand.New(rand.NewSource(9))
	small := New(rng, 200, 3)
	big := New(rng, 400, 3)
	ms := small.Search(rng, 0, "absent", 20).Messages
	mb := big.Search(rng, 0, "absent", 20).Messages
	if float64(mb) < 1.5*float64(ms) {
		t.Errorf("messages %d (N=200) vs %d (N=400): not linear-ish", ms, mb)
	}
}
