// Package flood implements the Gnutella-style baseline the paper's
// introduction argues against: no index at all — search requests are
// broadcast over a random overlay with a TTL and every reached peer scans
// its local database. It exists so the Section 6 comparison ("this approach
// is extremely costly in terms of communication") is measured rather than
// asserted.
package flood

import (
	"fmt"
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/store"
)

// Network is a random overlay of peers, each holding a local database of
// items it hosts. The zero value is not usable; call New.
type Network struct {
	neighbors [][]addr.Addr
	items     []map[string]store.Entry
	online    []bool
}

// New builds an overlay of n peers in which every peer opens `degree`
// connections to distinct random other peers (links are bidirectional, so
// observed degrees average about 2·degree, like Gnutella's).
func New(rng *rand.Rand, n, degree int) *Network {
	if n < 2 || degree < 1 {
		panic(fmt.Sprintf("flood: New(%d, %d) out of range", n, degree))
	}
	nw := &Network{
		neighbors: make([][]addr.Addr, n),
		items:     make([]map[string]store.Entry, n),
		online:    make([]bool, n),
	}
	for i := range nw.items {
		nw.items[i] = make(map[string]store.Entry)
		nw.online[i] = true
	}
	link := func(a, b int) {
		for _, x := range nw.neighbors[a] {
			if x == addr.Addr(b) {
				return
			}
		}
		nw.neighbors[a] = append(nw.neighbors[a], addr.Addr(b))
		nw.neighbors[b] = append(nw.neighbors[b], addr.Addr(a))
	}
	for i := 0; i < n; i++ {
		for k := 0; k < degree; k++ {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			link(i, j)
		}
	}
	return nw
}

// N returns the community size.
func (nw *Network) N() int { return len(nw.neighbors) }

// Host places an item in a peer's local database.
func (nw *Network) Host(a addr.Addr, e store.Entry) {
	nw.items[a][e.Name] = e
}

// SetOnline sets a peer's reachability.
func (nw *Network) SetOnline(a addr.Addr, v bool) { nw.online[a] = v }

// SampleOnline sets each peer online independently with probability p.
func (nw *Network) SampleOnline(rng *rand.Rand, p float64) {
	for i := range nw.online {
		nw.online[i] = rng.Float64() < p
	}
}

// RandomOnlinePeer returns a random online peer address, or addr.Nil.
func (nw *Network) RandomOnlinePeer(rng *rand.Rand) addr.Addr {
	cands := make([]addr.Addr, 0, len(nw.online))
	for i, on := range nw.online {
		if on {
			cands = append(cands, addr.Addr(i))
		}
	}
	if len(cands) == 0 {
		return addr.Nil
	}
	return cands[rng.Intn(len(cands))]
}

// Result reports one flooded search.
type Result struct {
	// Found holds every match discovered (the same item may be hosted by
	// several peers).
	Found []store.Entry
	// Messages is the number of query transmissions (each edge crossed by
	// the request counts once — the Gnutella cost model).
	Messages int
	// Reached is the number of distinct peers that processed the request.
	Reached int
}

// Search floods a query for an item name from start with the given TTL.
// Every reached online peer scans its local database; the request is
// forwarded to all neighbors until the TTL expires. Peers deduplicate
// requests they have already seen (Gnutella's message-id table), but a
// transmission to an already-visited or offline peer still costs a message
// — the sender cannot know.
func (nw *Network) Search(rng *rand.Rand, start addr.Addr, name string, ttl int) Result {
	var res Result
	if !start.Valid() || !nw.online[start] {
		return res
	}
	type hop struct {
		at  addr.Addr
		ttl int
	}
	visited := map[addr.Addr]bool{start: true}
	frontier := []hop{{start, ttl}}
	for len(frontier) > 0 {
		h := frontier[0]
		frontier = frontier[1:]
		res.Reached++
		if e, ok := nw.items[h.at][name]; ok {
			res.Found = append(res.Found, e)
		}
		if h.ttl == 0 {
			continue
		}
		for _, nb := range nw.neighbors[h.at] {
			res.Messages++ // every forwarded copy costs, delivered or not
			if visited[nb] || !nw.online[nb] {
				continue
			}
			visited[nb] = true
			frontier = append(frontier, hop{nb, h.ttl - 1})
		}
	}
	return res
}
