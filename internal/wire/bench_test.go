package wire

import (
	"bytes"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func benchMessage() *Message {
	return &Message{
		Kind: KindExchange,
		From: 7,
		Exchange: &ExchangeReq{
			Path: bitpath.MustParse("0101101001"),
			Refs: []RefSet{
				{Addrs: []addr.Addr{1, 2, 3, 4, 5}},
				{Addrs: []addr.Addr{6, 7, 8}},
				{Addrs: []addr.Addr{9}},
			},
			Depth: 1,
		},
	}
}

func BenchmarkWriteMessage(b *testing.B) {
	m := benchMessage()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMessage(b *testing.B) {
	m := benchMessage()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMessage(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}
