// Binary frame codec — the fast path of the wire protocol.
//
// The gob codec (wire.go) is convenient but allocation-heavy: every frame
// re-encodes type descriptors, every encode walks reflection, and every
// decode allocates through it. This file implements the negotiated
// replacement: a hand-rolled frame format with a fixed 13-byte header and
// varint-packed payloads, encoded into pooled buffers so a request/response
// round trip allocates close to nothing on the encode side.
//
// Frame layout (all multi-byte header fields big-endian):
//
//	offset  size  field
//	0       2     magic 0x50 0x47 ("PG")
//	2       1     codec version (BinaryVersion)
//	3       1     message kind
//	4       1     flags (FlagResponse, FlagGob)
//	5       4     sequence id (multiplexing: responses echo the request's)
//	9       4     payload length N
//	13      N     payload
//
// The payload is the message envelope (From as a zigzag varint) followed by
// the kind-specific body: bools are one byte, counts and lengths are
// uvarints, signed integers are zigzag varints, high-entropy 64-bit values
// (trace ids, hashes, versions) are fixed 8-byte big-endian, strings are
// length-prefixed bytes, and bit paths are bit-packed MSB-first with zero
// padding. Decoding is strict: unknown kinds, non-zero pad bits, counts
// that exceed the remaining payload, and trailing garbage all surface
// ErrCorrupt — never a panic and never an oversized allocation.
//
// Interop: a gob frame's first byte is its length prefix's high byte, which
// MaxFrameSize caps at 0x01 — so the 0x50 magic byte is unambiguous and a
// receiver can sniff the codec per connection (IsBinaryFrame). A frame with
// FlagGob carries a gob-encoded Message as its payload: the negotiated
// fallback that lets a binary-framing connection ship a payload only gob
// can express.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// BinaryVersion is the current binary codec version. Hello negotiation
// picks min(dialer's max, listener's BinaryVersion); parsing a frame of a
// different version is refused as corrupt, so a version bump must ride a
// new negotiation round, never a silent format change.
const BinaryVersion = 1

// HeaderSize is the fixed binary frame header length in bytes.
const HeaderSize = 13

// Frame flag bits.
const (
	// FlagResponse marks a frame answering the sequence id it carries.
	FlagResponse uint8 = 1 << 0
	// FlagGob marks a payload encoded with gob instead of the binary
	// body format — the compat escape hatch on a binary connection.
	FlagGob uint8 = 1 << 1
)

const (
	magic0 = 0x50 // 'P'
	magic1 = 0x47 // 'G'
)

// ErrUnknownKind reports an encode request for a kind this codec version
// has no body format for. (Decoding an unknown kind surfaces ErrCorrupt:
// on the wire it is indistinguishable from a flipped kind byte.)
var ErrUnknownKind = errors.New("wire: unknown message kind")

// bufPool recycles encode buffers and frame payload scratch. Oversized
// buffers (a huge scan response, say) are dropped instead of pinned.
var bufPool = sync.Pool{New: func() any { return new(poolBuf) }}

type poolBuf struct{ b []byte }

const maxPooledBuf = 64 << 10

func putBuf(pb *poolBuf) {
	if cap(pb.b) <= maxPooledBuf {
		pb.b = pb.b[:0]
		bufPool.Put(pb)
	}
}

// IsBinaryFrame reports whether the next frame on br is a binary frame,
// peeking one byte without consuming it. A gob frame's first byte is at
// most 0x01 (the length prefix under MaxFrameSize), so the magic byte
// decides. io errors (including EOF before any byte) pass through.
func IsBinaryFrame(br *bufio.Reader) (bool, error) {
	b, err := br.Peek(1)
	if err != nil {
		return false, err
	}
	return b[0] == magic0, nil
}

// AppendFrame appends one complete binary frame carrying m to dst and
// returns the extended slice. The caller owns dst; nothing is retained.
func AppendFrame(dst []byte, seq uint32, flags uint8, m *Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, magic0, magic1, BinaryVersion, byte(m.Kind), flags,
		0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[start+5:start+9], seq)
	var err error
	if flags&FlagGob != 0 {
		var fb frameBuffer
		if err := gob.NewEncoder(&fb).Encode(m); err != nil {
			return dst[:start], fmt.Errorf("wire: gob payload encode: %w", err)
		}
		dst = append(dst, fb.b...)
	} else if dst, err = appendMessageBody(dst, m); err != nil {
		return dst[:start], err
	}
	n := len(dst) - start - HeaderSize
	if n > MaxFrameSize {
		return dst[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[start+9:start+13], uint32(n))
	return dst, nil
}

// WriteFrame encodes m into a pooled buffer and writes it to w as one
// contiguous frame (a single Write call, so concurrent writers serialized
// by a mutex never interleave partial frames).
func WriteFrame(w io.Writer, seq uint32, flags uint8, m *Message) error {
	pb := bufPool.Get().(*poolBuf)
	defer putBuf(pb)
	b, err := AppendFrame(pb.b[:0], seq, flags, m)
	if err != nil {
		return err
	}
	pb.b = b
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one binary frame from r. io.EOF before any header byte
// is returned verbatim (clean close); any malformed header or payload is
// ErrCorrupt. The returned message shares nothing with internal buffers.
func ReadFrame(r io.Reader) (seq uint32, flags uint8, m *Message, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, 0, nil, fmt.Errorf("%w: bad frame magic %02x%02x", ErrCorrupt, hdr[0], hdr[1])
	}
	if hdr[2] != BinaryVersion {
		return 0, 0, nil, fmt.Errorf("%w: unsupported binary codec version %d", ErrCorrupt, hdr[2])
	}
	kind := Kind(hdr[3])
	flags = hdr[4]
	seq = binary.BigEndian.Uint32(hdr[5:9])
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > MaxFrameSize {
		return 0, 0, nil, ErrFrameTooLarge
	}
	pb := bufPool.Get().(*poolBuf)
	defer putBuf(pb)
	if cap(pb.b) < int(n) {
		pb.b = make([]byte, n)
	}
	pb.b = pb.b[:n]
	if _, err := io.ReadFull(r, pb.b); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	if flags&FlagGob != 0 {
		var gm Message
		if err := gob.NewDecoder(&frameBuffer{b: pb.b}).Decode(&gm); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: gob payload decode: %v", ErrCorrupt, err)
		}
		return seq, flags, &gm, nil
	}
	m, err = decodeMessageBody(kind, pb.b)
	if err != nil {
		return 0, 0, nil, err
	}
	return seq, flags, m, nil
}

// ReadAuto reads one message in whichever codec the sender used, sniffing
// the first byte: binary frames decode through ReadFrame (sequence id
// discarded), anything else through the legacy gob path. This is the
// gob-fallback read path a mixed-codec receiver runs.
func ReadAuto(br *bufio.Reader) (*Message, error) {
	isBin, err := IsBinaryFrame(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: sniff codec: %w", err)
	}
	if isBin {
		_, _, m, err := ReadFrame(br)
		return m, err
	}
	return ReadMessage(br)
}

// --- encode ----------------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }
func appendU64(b []byte, v uint64) []byte     { return binary.BigEndian.AppendUint64(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPath bit-packs a path MSB-first: uvarint bit count, then
// ceil(n/8) bytes with zero padding in the trailing byte.
func appendPath(b []byte, p bitpath.Path) []byte {
	b = appendUvarint(b, uint64(len(p)))
	var cur byte
	for i := 0; i < len(p); i++ {
		cur = cur<<1 | (p[i]-'0')&1
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if r := len(p) % 8; r != 0 {
		b = append(b, cur<<(8-r))
	}
	return b
}

func appendAddr(b []byte, a addr.Addr) []byte { return appendVarint(b, int64(a)) }

func appendRefSet(b []byte, r RefSet) []byte {
	b = appendUvarint(b, uint64(len(r.Addrs)))
	for _, a := range r.Addrs {
		b = appendAddr(b, a)
	}
	return b
}

func appendEntry(b []byte, e store.Entry) []byte {
	b = appendPath(b, e.Key)
	b = appendString(b, e.Name)
	b = appendAddr(b, e.Holder)
	return appendU64(b, e.Version)
}

func appendEntries(b []byte, es []store.Entry) []byte {
	b = appendUvarint(b, uint64(len(es)))
	for _, e := range es {
		b = appendEntry(b, e)
	}
	return b
}

func appendSpan(b []byte, s trace.Span) []byte {
	b = appendU64(b, s.ID)
	b = appendU64(b, s.Parent)
	b = appendAddr(b, s.Peer)
	b = appendPath(b, s.Path)
	b = appendVarint(b, int64(s.Level))
	b = appendAddr(b, s.Ref)
	b = appendBool(b, s.Matched)
	b = appendBool(b, s.Backtracked)
	return appendVarint(b, s.LatencyNS)
}

func appendSpans(b []byte, ss []trace.Span) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendSpan(b, s)
	}
	return b
}

// appendMessageBody encodes the envelope and the kind-selected payload.
// Payload pointers not selected by the kind are not encoded — the kind is
// the discriminator, exactly as the handler dispatch reads it.
func appendMessageBody(b []byte, m *Message) ([]byte, error) {
	b = appendAddr(b, m.From)
	switch m.Kind {
	case KindQuery:
		b = appendBool(b, m.Query != nil)
		if q := m.Query; q != nil {
			b = appendPath(b, q.Key)
			b = appendVarint(b, int64(q.Level))
			b = appendBool(b, q.Ctx != nil)
			if c := q.Ctx; c != nil {
				b = appendU64(b, c.TraceID)
				b = appendU64(b, c.Parent)
				b = appendVarint(b, int64(c.Budget))
				b = appendBool(b, c.Sampled)
			}
		}
	case KindQueryResp:
		b = appendBool(b, m.QueryResp != nil)
		if q := m.QueryResp; q != nil {
			b = appendBool(b, q.Found)
			b = appendAddr(b, q.Peer)
			b = appendPath(b, q.Path)
			b = appendVarint(b, int64(q.Messages))
			b = appendVarint(b, int64(q.Backtracks))
			b = appendSpans(b, q.Spans)
		}
	case KindExchange:
		b = appendBool(b, m.Exchange != nil)
		if e := m.Exchange; e != nil {
			b = appendPath(b, e.Path)
			b = appendUvarint(b, uint64(len(e.Refs)))
			for _, r := range e.Refs {
				b = appendRefSet(b, r)
			}
			b = appendVarint(b, int64(e.Depth))
		}
	case KindExchangeResp:
		b = appendBool(b, m.ExchangeResp != nil)
		if e := m.ExchangeResp; e != nil {
			b = appendPath(b, e.BasePath)
			b = appendBool(b, e.Extend)
			b = append(b, e.ExtendBit&1)
			b = appendRefSet(b, e.ExtendRefs)
			b = appendUvarint(b, uint64(len(e.SetRefs)))
			for _, level := range sortedLevels(e.SetRefs) {
				b = appendVarint(b, int64(level))
				b = appendRefSet(b, e.SetRefs[level])
			}
			b = appendBool(b, e.AddBuddy)
			b = appendUvarint(b, uint64(len(e.ForwardTo)))
			for _, a := range e.ForwardTo {
				b = appendAddr(b, a)
			}
			b = appendEntries(b, e.Handover)
		}
	case KindApply:
		b = appendBool(b, m.Apply != nil)
		if a := m.Apply; a != nil {
			b = appendEntry(b, a.Entry)
		}
	case KindApplyResp:
		b = appendBool(b, m.ApplyResp != nil)
		if a := m.ApplyResp; a != nil {
			b = appendBool(b, a.Changed)
		}
	case KindGet:
		b = appendBool(b, m.Get != nil)
		if g := m.Get; g != nil {
			b = appendPath(b, g.Key)
			b = appendString(b, g.Name)
		}
	case KindGetResp:
		b = appendBool(b, m.GetResp != nil)
		if g := m.GetResp; g != nil {
			b = appendEntry(b, g.Entry)
			b = appendBool(b, g.Found)
		}
	case KindInfo, KindStats, KindMetrics:
		// No request payload.
	case KindInfoResp:
		b = appendBool(b, m.InfoResp != nil)
		if i := m.InfoResp; i != nil {
			b = appendAddr(b, i.Addr)
			b = appendPath(b, i.Path)
			b = appendUvarint(b, uint64(len(i.Refs)))
			for _, r := range i.Refs {
				b = appendRefSet(b, r)
			}
			b = appendRefSet(b, i.Buddies)
			b = appendVarint(b, int64(i.Entries))
		}
	case KindScan:
		b = appendBool(b, m.Scan != nil)
		if s := m.Scan; s != nil {
			b = appendPath(b, s.Prefix)
		}
	case KindScanResp:
		b = appendBool(b, m.ScanResp != nil)
		if s := m.ScanResp; s != nil {
			b = appendEntries(b, s.Entries)
		}
	case KindStatsResp:
		b = appendBool(b, m.StatsResp != nil)
		if s := m.StatsResp; s != nil {
			b = appendVarint(b, int64(s.Schema))
			b = appendUvarint(b, uint64(len(s.Stats)))
			for _, st := range s.Stats {
				b = appendString(b, st.Name)
				b = appendVarint(b, st.Value)
			}
		}
	case KindError:
		b = appendString(b, m.Error)
	case KindTraces:
		b = appendBool(b, m.Traces != nil)
		if t := m.Traces; t != nil {
			b = appendVarint(b, int64(t.Limit))
		}
	case KindTracesResp:
		b = appendBool(b, m.TracesResp != nil)
		if t := m.TracesResp; t != nil {
			b = appendU64(b, t.Total)
			b = appendUvarint(b, uint64(len(t.Traces)))
			for _, dt := range t.Traces {
				b = appendU64(b, dt.TraceID)
				b = appendPath(b, dt.Key)
				b = appendBool(b, dt.Found)
				b = appendVarint(b, int64(dt.Messages))
				b = appendVarint(b, int64(dt.Backtracks))
				b = appendSpans(b, dt.Spans)
			}
		}
	case KindHealth:
		b = appendBool(b, m.Health != nil)
		if h := m.Health; h != nil {
			b = appendBool(b, h.WantLiveness)
		}
	case KindHealthResp:
		b = appendBool(b, m.HealthResp != nil)
		if h := m.HealthResp; h != nil {
			d := h.Digest
			b = appendAddr(b, d.Addr)
			b = appendPath(b, d.Path)
			b = appendVarint(b, int64(d.Entries))
			b = appendU64(b, d.MaxVersion)
			b = appendU64(b, d.IndexHash)
			b = appendUvarint(b, uint64(len(d.RefCounts)))
			for _, c := range d.RefCounts {
				b = appendVarint(b, int64(c))
			}
			b = appendVarint(b, int64(d.Buddies))
			b = appendUvarint(b, uint64(len(d.Liveness)))
			for _, lp := range d.Liveness {
				b = appendVarint(b, int64(lp.Level))
				b = appendVarint(b, lp.Live)
				b = appendVarint(b, lp.Dead)
			}
			b = appendVarint(b, h.Rounds)
		}
	case KindBatch, KindBatchResp:
		msgs, err := batchMsgs(m)
		if err != nil {
			return b, err
		}
		b = appendUvarint(b, uint64(len(msgs)))
		for i := range msgs {
			sub := &msgs[i]
			if sub.Kind == KindBatch || sub.Kind == KindBatchResp {
				return b, fmt.Errorf("wire: nested batch message")
			}
			b = append(b, byte(sub.Kind))
			var err error
			if b, err = appendMessageBody(b, sub); err != nil {
				return b, err
			}
		}
	case KindHello:
		b = appendBool(b, m.Hello != nil)
		if h := m.Hello; h != nil {
			b = append(b, h.MaxCodec)
		}
	case KindHelloResp:
		b = appendBool(b, m.HelloResp != nil)
		if h := m.HelloResp; h != nil {
			b = append(b, h.Codec)
		}
	case KindMetricsResp:
		b = appendBool(b, m.MetricsResp != nil)
		if r := m.MetricsResp; r != nil {
			var err error
			if b, err = appendMetricsSnapshot(b, r.Snap); err != nil {
				return b, err
			}
		}
	case KindHistory:
		b = appendBool(b, m.History != nil)
		if h := m.History; h != nil {
			b = appendVarint(b, h.WindowNS)
			b = appendVarint(b, h.MaxPoints)
		}
	case KindHistoryResp:
		b = appendBool(b, m.HistoryResp != nil)
		if r := m.HistoryResp; r != nil {
			dump := r.Dump
			b = appendVarint(b, int64(dump.Schema))
			b = appendVarint(b, dump.IntervalNS)
			b = appendUvarint(b, uint64(len(dump.Points)))
			for _, p := range dump.Points {
				b = appendVarint(b, p.AtNS)
				var err error
				if b, err = appendMetricsSnapshot(b, p.Snap); err != nil {
					return b, err
				}
			}
		}
	case KindRepair:
		b = appendBool(b, m.Repair != nil)
		if r := m.Repair; r != nil {
			b = appendBool(b, r.Trigger)
		}
	case KindRepairResp:
		b = appendBool(b, m.RepairResp != nil)
		if r := m.RepairResp; r != nil {
			s := r.Status
			b = appendBool(b, s.Enabled)
			b = appendVarint(b, s.Rounds)
			b = appendVarint(b, s.Messages)
			b = appendVarint(b, s.LastFaults)
			b = appendVarint(b, s.LastHeals)
			b = appendVarint(b, s.LastUnhealed)
			b = appendTallies(b, s.Faults)
			b = appendTallies(b, s.Heals)
		}
	default:
		return b, fmt.Errorf("%w: %v", ErrUnknownKind, m.Kind)
	}
	return b, nil
}

// appendTallies encodes a repair tally list (name, count pairs).
func appendTallies(b []byte, ts []repair.Tally) []byte {
	b = appendUvarint(b, uint64(len(ts)))
	for _, t := range ts {
		b = appendString(b, t.Name)
		b = appendVarint(b, t.N)
	}
	return b
}

// appendMetricsSnapshot encodes one mergeable metrics snapshot. The
// layout is keyed off s.Schema — the first field — so it is
// self-describing: v2 snapshots carry incarnation stamps and per-hist
// exemplar lists, v1 snapshots (including ones relayed from pre-history
// peers) re-encode byte-identically to the v1 layout and keep decoding
// everywhere.
func appendMetricsSnapshot(b []byte, s telemetry.MetricsSnapshot) ([]byte, error) {
	b = appendVarint(b, int64(s.Schema))
	if s.Schema >= 2 {
		b = appendVarint(b, s.StartEpochNS)
		b = appendVarint(b, s.UptimeNS)
	}
	b = appendUvarint(b, uint64(len(s.Stats)))
	for _, st := range s.Stats {
		b = appendString(b, st.Name)
		b = appendVarint(b, st.Value)
	}
	b = appendUvarint(b, uint64(len(s.Hists)))
	for _, h := range s.Hists {
		if len(h.Idx) != len(h.N) {
			return b, fmt.Errorf("wire: histogram snapshot %q: %d indexes vs %d counts", h.Name, len(h.Idx), len(h.N))
		}
		b = appendString(b, h.Name)
		b = append(b, h.SubBits)
		b = appendVarint(b, h.Count)
		b = appendVarint(b, h.Sum)
		b = appendUvarint(b, uint64(len(h.Idx)))
		for i := range h.Idx {
			b = appendUvarint(b, uint64(h.Idx[i]))
			b = appendVarint(b, h.N[i])
		}
		if s.Schema >= 2 {
			if len(h.ExIdx) != len(h.ExTrace) {
				return b, fmt.Errorf("wire: histogram snapshot %q: %d exemplar indexes vs %d trace ids", h.Name, len(h.ExIdx), len(h.ExTrace))
			}
			b = appendUvarint(b, uint64(len(h.ExIdx)))
			for i := range h.ExIdx {
				b = appendUvarint(b, uint64(h.ExIdx[i]))
				b = appendU64(b, h.ExTrace[i])
			}
		}
	}
	return b, nil
}

// batchMsgs returns the sub-message slice of a batch envelope (either
// direction); a nil payload encodes as an empty batch.
func batchMsgs(m *Message) ([]Message, error) {
	if m.Kind == KindBatch {
		if m.Batch == nil {
			return nil, nil
		}
		return m.Batch.Msgs, nil
	}
	if m.BatchResp == nil {
		return nil, nil
	}
	return m.BatchResp.Msgs, nil
}

// sortedLevels returns the SetRefs keys ascending, so the encoding is
// deterministic (gob's map ordering is not; ours is).
func sortedLevels(m map[int]RefSet) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // tiny maps: insertion sort beats sort.Ints
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// --- decode ----------------------------------------------------------------

// bdec is a sticky-error payload decoder: the first malformed field poisons
// the decoder and every later get returns a zero value, so decode functions
// read linearly and check err once.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// remaining returns the unread byte count.
func (d *bdec) remaining() int { return len(d.b) - d.off }

// need guards a count of variable-size elements against over-allocation:
// every element costs at least min bytes, so a count the remaining payload
// cannot hold is corrupt, not a huge make().
func (d *bdec) need(count uint64, min int) bool {
	if d.err != nil {
		return false
	}
	if min < 1 {
		min = 1
	}
	if count > uint64(d.remaining())/uint64(min) {
		d.fail("count exceeds payload")
		return false
	}
	return true
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *bdec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *bdec) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

func (d *bdec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)]) // copies out of the pooled buffer
	d.off += int(n)
	return s
}

func (d *bdec) path() bitpath.Path {
	nbits := d.uvarint()
	if d.err != nil {
		return ""
	}
	// Bound the bit count before any arithmetic on it: for nbits near
	// 2^64, (nbits+7)/8 wraps and would slip past the remaining-bytes
	// check into a panicking make(). remaining() is capped by
	// MaxFrameSize, so the multiplication cannot itself overflow.
	if nbits > uint64(d.remaining())*8 {
		d.fail("truncated path")
		return ""
	}
	nbytes := (nbits + 7) / 8
	if nbytes > uint64(d.remaining()) {
		d.fail("truncated path")
		return ""
	}
	out := make([]byte, nbits)
	for i := uint64(0); i < nbits; i++ {
		bit := d.b[d.off+int(i/8)] >> (7 - i%8) & 1
		out[i] = '0' + bit
	}
	// Canonical encoding: pad bits in the trailing byte must be zero.
	if r := nbits % 8; r != 0 {
		if d.b[d.off+int(nbytes)-1]&(0xff>>r) != 0 {
			d.fail("non-zero path padding")
			return ""
		}
	}
	d.off += int(nbytes)
	return bitpath.Path(out)
}

func (d *bdec) addr() addr.Addr {
	v := d.varint()
	if v < int64(addr.Nil) || v > int64(^uint32(0)>>1) {
		d.fail("address out of range")
		return addr.Nil
	}
	return addr.Addr(v)
}

func (d *bdec) int() int { return int(d.varint()) }

func (d *bdec) refSet() RefSet {
	n := d.uvarint()
	if !d.need(n, 1) || n == 0 {
		return RefSet{}
	}
	out := make([]addr.Addr, n)
	for i := range out {
		out[i] = d.addr()
	}
	return RefSet{Addrs: out}
}

func (d *bdec) entry() store.Entry {
	return store.Entry{Key: d.path(), Name: d.string(), Holder: d.addr(), Version: d.u64()}
}

func (d *bdec) entries() []store.Entry {
	n := d.uvarint()
	if !d.need(n, 2) || n == 0 {
		return nil
	}
	out := make([]store.Entry, n)
	for i := range out {
		out[i] = d.entry()
	}
	return out
}

func (d *bdec) span() trace.Span {
	return trace.Span{
		ID: d.u64(), Parent: d.u64(), Peer: d.addr(), Path: d.path(),
		Level: d.int(), Ref: d.addr(), Matched: d.bool(),
		Backtracked: d.bool(), LatencyNS: d.varint(),
	}
}

func (d *bdec) spans() []trace.Span {
	n := d.uvarint()
	if !d.need(n, 16) || n == 0 {
		return nil
	}
	out := make([]trace.Span, n)
	for i := range out {
		out[i] = d.span()
	}
	return out
}

// tallies decodes a repair tally list, the inverse of appendTallies. A
// tally costs at least 2 bytes: the name length and the count varint.
func (d *bdec) tallies() []repair.Tally {
	n := d.uvarint()
	if !d.need(n, 2) || n == 0 {
		return nil
	}
	out := make([]repair.Tally, n)
	for i := range out {
		out[i] = repair.Tally{Name: d.string(), N: d.varint()}
	}
	return out
}

// metricsSnapshot decodes one mergeable metrics snapshot, the inverse of
// appendMetricsSnapshot. The decoded Schema field selects the layout:
// incarnation stamps and exemplar lists exist only at schema ≥ 2, so v1
// bodies from pre-history peers parse exactly as before.
func (d *bdec) metricsSnapshot() telemetry.MetricsSnapshot {
	var s telemetry.MetricsSnapshot
	s.Schema = d.int()
	if s.Schema >= 2 {
		s.StartEpochNS = d.varint()
		s.UptimeNS = d.varint()
	}
	if n := d.uvarint(); d.need(n, 2) && n > 0 {
		s.Stats = make([]telemetry.Stat, n)
		for i := range s.Stats {
			s.Stats[i] = telemetry.Stat{Name: d.string(), Value: d.varint()}
		}
	}
	// A histogram costs at least 5 bytes: name length, subbits, count,
	// sum, pair count. Each (idx, n) pair at least 2; each exemplar
	// (idx, trace id) pair at least 9.
	if n := d.uvarint(); d.need(n, 5) && n > 0 {
		s.Hists = make([]telemetry.QHistSnapshot, n)
		for i := range s.Hists {
			h := telemetry.QHistSnapshot{Name: d.string(), SubBits: d.byte(),
				Count: d.varint(), Sum: d.varint()}
			if pairs := d.uvarint(); d.need(pairs, 2) && pairs > 0 {
				h.Idx = make([]uint16, pairs)
				h.N = make([]int64, pairs)
				for j := range h.Idx {
					idx := d.uvarint()
					if d.err == nil && idx > 0xffff {
						d.fail("histogram bucket index out of range")
					}
					h.Idx[j] = uint16(idx)
					h.N[j] = d.varint()
				}
			}
			if s.Schema >= 2 {
				if ex := d.uvarint(); d.need(ex, 9) && ex > 0 {
					h.ExIdx = make([]uint16, ex)
					h.ExTrace = make([]uint64, ex)
					for j := range h.ExIdx {
						idx := d.uvarint()
						if d.err == nil && idx > 0xffff {
							d.fail("exemplar bucket index out of range")
						}
						h.ExIdx[j] = uint16(idx)
						h.ExTrace[j] = d.u64()
					}
				}
			}
			s.Hists[i] = h
		}
	}
	return s
}

// decodeMessageBody decodes one binary payload. Strict: the payload must
// be consumed exactly, unknown kinds and malformed fields are ErrCorrupt.
func decodeMessageBody(kind Kind, body []byte) (*Message, error) {
	d := &bdec{b: body}
	m, err := decodeInto(d, kind, false)
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %v payload", ErrCorrupt, len(d.b)-d.off, kind)
	}
	return m, nil
}

// decodeInto decodes the envelope and payload for kind. nested guards
// batch recursion: sub-messages of a batch must not be batches.
func decodeInto(d *bdec, kind Kind, nested bool) (*Message, error) {
	m := &Message{Kind: kind, From: d.addr()}
	switch kind {
	case KindQuery:
		if d.bool() {
			q := &QueryReq{Key: d.path(), Level: d.int()}
			if d.bool() {
				q.Ctx = &trace.SpanContext{TraceID: d.u64(), Parent: d.u64(),
					Budget: d.int(), Sampled: d.bool()}
			}
			m.Query = q
		}
	case KindQueryResp:
		if d.bool() {
			m.QueryResp = &QueryResp{Found: d.bool(), Peer: d.addr(), Path: d.path(),
				Messages: d.int(), Backtracks: d.int(), Spans: d.spans()}
		}
	case KindExchange:
		if d.bool() {
			e := &ExchangeReq{Path: d.path()}
			if n := d.uvarint(); d.need(n, 1) && n > 0 {
				e.Refs = make([]RefSet, n)
				for i := range e.Refs {
					e.Refs[i] = d.refSet()
				}
			}
			e.Depth = d.int()
			m.Exchange = e
		}
	case KindExchangeResp:
		if d.bool() {
			e := &ExchangeResp{BasePath: d.path(), Extend: d.bool(), ExtendBit: d.byte()}
			if e.ExtendBit > 1 {
				d.fail("bad extend bit")
			}
			e.ExtendRefs = d.refSet()
			if n := d.uvarint(); d.need(n, 2) && n > 0 {
				e.SetRefs = make(map[int]RefSet, n)
				for i := uint64(0); i < n; i++ {
					level := d.int()
					e.SetRefs[level] = d.refSet()
				}
				if uint64(len(e.SetRefs)) != n {
					d.fail("duplicate SetRefs level")
				}
			}
			e.AddBuddy = d.bool()
			if n := d.uvarint(); d.need(n, 1) && n > 0 {
				e.ForwardTo = make([]addr.Addr, n)
				for i := range e.ForwardTo {
					e.ForwardTo[i] = d.addr()
				}
			}
			e.Handover = d.entries()
			m.ExchangeResp = e
		}
	case KindApply:
		if d.bool() {
			m.Apply = &ApplyReq{Entry: d.entry()}
		}
	case KindApplyResp:
		if d.bool() {
			m.ApplyResp = &ApplyResp{Changed: d.bool()}
		}
	case KindGet:
		if d.bool() {
			m.Get = &GetReq{Key: d.path(), Name: d.string()}
		}
	case KindGetResp:
		if d.bool() {
			m.GetResp = &GetResp{Entry: d.entry(), Found: d.bool()}
		}
	case KindInfo, KindStats, KindMetrics:
		// No payload.
	case KindInfoResp:
		if d.bool() {
			i := &InfoResp{Addr: d.addr(), Path: d.path()}
			if n := d.uvarint(); d.need(n, 1) && n > 0 {
				i.Refs = make([]RefSet, n)
				for j := range i.Refs {
					i.Refs[j] = d.refSet()
				}
			}
			i.Buddies = d.refSet()
			i.Entries = d.int()
			m.InfoResp = i
		}
	case KindScan:
		if d.bool() {
			m.Scan = &ScanReq{Prefix: d.path()}
		}
	case KindScanResp:
		if d.bool() {
			m.ScanResp = &ScanResp{Entries: d.entries()}
		}
	case KindStatsResp:
		if d.bool() {
			s := &StatsResp{Schema: d.int()}
			if n := d.uvarint(); d.need(n, 2) && n > 0 {
				s.Stats = make([]Stat, n)
				for i := range s.Stats {
					s.Stats[i] = Stat{Name: d.string(), Value: d.varint()}
				}
			}
			m.StatsResp = s
		}
	case KindError:
		m.Error = d.string()
	case KindTraces:
		if d.bool() {
			m.Traces = &TracesReq{Limit: d.int()}
		}
	case KindTracesResp:
		if d.bool() {
			t := &TracesResp{Total: d.u64()}
			if n := d.uvarint(); d.need(n, 12) && n > 0 {
				t.Traces = make([]trace.Trace, n)
				for i := range t.Traces {
					t.Traces[i] = trace.Trace{TraceID: d.u64(), Key: d.path(),
						Found: d.bool(), Messages: d.int(), Backtracks: d.int(),
						Spans: d.spans()}
				}
			}
			m.TracesResp = t
		}
	case KindHealth:
		if d.bool() {
			m.Health = &HealthReq{WantLiveness: d.bool()}
		}
	case KindHealthResp:
		if d.bool() {
			h := &HealthResp{}
			h.Digest = health.Digest{Addr: d.addr(), Path: d.path(),
				Entries: d.int(), MaxVersion: d.u64(), IndexHash: d.u64()}
			if n := d.uvarint(); d.need(n, 1) && n > 0 {
				h.Digest.RefCounts = make([]int, n)
				for i := range h.Digest.RefCounts {
					h.Digest.RefCounts[i] = d.int()
				}
			}
			h.Digest.Buddies = d.int()
			if n := d.uvarint(); d.need(n, 3) && n > 0 {
				h.Digest.Liveness = make([]health.LevelProbe, n)
				for i := range h.Digest.Liveness {
					h.Digest.Liveness[i] = health.LevelProbe{Level: d.int(),
						Live: d.varint(), Dead: d.varint()}
				}
			}
			h.Rounds = d.varint()
			m.HealthResp = h
		}
	case KindBatch, KindBatchResp:
		if nested {
			d.fail("nested batch")
			break
		}
		n := d.uvarint()
		if d.need(n, 2) && n > 0 {
			msgs := make([]Message, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				subKind := Kind(d.byte())
				sub, err := decodeInto(d, subKind, true)
				if err != nil {
					return nil, err
				}
				msgs = append(msgs, *sub)
			}
			if kind == KindBatch {
				m.Batch = &BatchReq{Msgs: msgs}
			} else {
				m.BatchResp = &BatchResp{Msgs: msgs}
			}
		}
	case KindHello:
		if d.bool() {
			m.Hello = &HelloReq{MaxCodec: d.byte()}
		}
	case KindHelloResp:
		if d.bool() {
			m.HelloResp = &HelloResp{Codec: d.byte()}
		}
	case KindMetricsResp:
		if d.bool() {
			m.MetricsResp = &MetricsResp{Snap: d.metricsSnapshot()}
		}
	case KindHistory:
		if d.bool() {
			m.History = &HistoryReq{WindowNS: d.varint(), MaxPoints: d.varint()}
		}
	case KindHistoryResp:
		if d.bool() {
			r := &HistoryResp{}
			r.Dump.Schema = d.int()
			r.Dump.IntervalNS = d.varint()
			// A point costs at least 4 bytes: its timestamp varint plus
			// the snapshot's schema and two counts.
			if n := d.uvarint(); d.need(n, 4) && n > 0 {
				r.Dump.Points = make([]telemetry.HistoryPoint, n)
				for i := range r.Dump.Points {
					r.Dump.Points[i] = telemetry.HistoryPoint{AtNS: d.varint(), Snap: d.metricsSnapshot()}
				}
			}
			m.HistoryResp = r
		}
	case KindRepair:
		if d.bool() {
			m.Repair = &RepairReq{Trigger: d.bool()}
		}
	case KindRepairResp:
		if d.bool() {
			r := &RepairResp{}
			r.Status.Enabled = d.bool()
			r.Status.Rounds = d.varint()
			r.Status.Messages = d.varint()
			r.Status.LastFaults = d.varint()
			r.Status.LastHeals = d.varint()
			r.Status.LastUnhealed = d.varint()
			r.Status.Faults = d.tallies()
			r.Status.Heals = d.tallies()
			m.RepairResp = r
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(kind))
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}
