package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// The legacy* types replicate the message structs exactly as they were
// encoded before distributed tracing existed (no Ctx on queries, no
// Spans on responses, no traces payloads). Gob matches struct fields by
// name, so frames produced from these decode through the current types
// — and vice versa — which is what keeps mixed-version communities and
// old packet captures readable.
type legacyQueryReq struct {
	Key   bitpath.Path
	Level int
}

type legacyQueryResp struct {
	Found      bool
	Peer       addr.Addr
	Path       bitpath.Path
	Messages   int
	Backtracks int
}

type legacyMessage struct {
	Kind      Kind
	From      addr.Addr
	Query     *legacyQueryReq
	QueryResp *legacyQueryResp
	Error     string
}

// legacyFrame encodes m with the pre-tracing struct layout and the same
// length-prefixed framing WriteMessage uses.
func legacyFrame(t *testing.T, m *legacyMessage) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(body.Len()))
	out.Write(lenb[:])
	out.Write(body.Bytes())
	return out.Bytes()
}

func TestDecodePreTracingQuery(t *testing.T) {
	frame := legacyFrame(t, &legacyMessage{
		Kind:  KindQuery,
		From:  3,
		Query: &legacyQueryReq{Key: bitpath.MustParse("0101"), Level: 2},
	})
	m, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("pre-tracing query frame did not decode: %v", err)
	}
	if m.Kind != KindQuery || m.From != 3 || m.Query == nil {
		t.Fatalf("envelope mismatch: %+v", m)
	}
	if m.Query.Key != bitpath.MustParse("0101") || m.Query.Level != 2 {
		t.Fatalf("payload mismatch: %+v", m.Query)
	}
	if m.Query.Ctx != nil {
		t.Fatalf("absent trace context decoded non-nil: %+v", m.Query.Ctx)
	}
}

func TestDecodePreTracingQueryResp(t *testing.T) {
	frame := legacyFrame(t, &legacyMessage{
		Kind: KindQueryResp,
		From: 9,
		QueryResp: &legacyQueryResp{Found: true, Peer: 9,
			Path: bitpath.MustParse("01"), Messages: 4, Backtracks: 1},
	})
	m, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("pre-tracing response frame did not decode: %v", err)
	}
	q := m.QueryResp
	if q == nil || !q.Found || q.Peer != 9 || q.Messages != 4 || q.Backtracks != 1 {
		t.Fatalf("payload mismatch: %+v", q)
	}
	if q.Spans != nil {
		t.Fatalf("absent spans decoded non-nil: %+v", q.Spans)
	}
}

// TestOldDecoderIgnoresTraceFields covers the opposite direction: a
// traced frame produced by a current node must still decode on a
// pre-tracing receiver (gob skips fields the receiver does not know).
func TestOldDecoderIgnoresTraceFields(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMessage(&buf, &Message{
		Kind: KindQuery, From: 5,
		Query: &QueryReq{Key: bitpath.MustParse("11"), Level: 1,
			Ctx: &trace.SpanContext{TraceID: 42, Parent: 7, Budget: 8, Sampled: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[4:] // strip the length prefix
	var legacy legacyMessage
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&legacy); err != nil {
		t.Fatalf("pre-tracing decoder rejected a traced frame: %v", err)
	}
	if legacy.Kind != KindQuery || legacy.Query == nil || legacy.Query.Key != bitpath.MustParse("11") {
		t.Fatalf("legacy decode mismatch: %+v", legacy)
	}
}

func TestTracedRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindQueryResp, From: 2,
		QueryResp: &QueryResp{
			Found: true, Peer: 4, Path: bitpath.MustParse("0110"), Messages: 2,
			Spans: []trace.Span{
				{ID: 1, Peer: 2, Path: bitpath.MustParse("0"), Level: 0, Ref: 4, LatencyNS: 1200},
				{ID: 9, Parent: 1, Peer: 4, Path: bitpath.MustParse("0110"), Matched: true},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.QueryResp.Spans) != 2 || got.QueryResp.Spans[0] != m.QueryResp.Spans[0] ||
		got.QueryResp.Spans[1] != m.QueryResp.Spans[1] {
		t.Fatalf("spans did not round-trip: %+v", got.QueryResp.Spans)
	}
}

func TestTracesRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindTracesResp, From: 1,
		TracesResp: &TracesResp{
			Total: 12,
			Traces: []trace.Trace{{
				TraceID: 99, Key: bitpath.MustParse("101"), Found: true, Messages: 1,
				Spans: []trace.Span{{ID: 3, Peer: 1, Path: bitpath.MustParse("1"), Matched: true}},
			}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr := got.TracesResp
	if tr == nil || tr.Total != 12 || len(tr.Traces) != 1 || tr.Traces[0].TraceID != 99 {
		t.Fatalf("traces did not round-trip: %+v", tr)
	}
	if got.Kind.String() != "traces-resp" || KindTraces.String() != "traces" {
		t.Fatalf("kind names: %v %v", got.Kind, KindTraces)
	}
}

// TestKindNumbering pins the wire numbering: kinds are append-only and
// requests stay even, so mixed-version peers agree on every value.
func TestKindNumbering(t *testing.T) {
	if KindError != 14 {
		t.Fatalf("KindError = %d, renumbering breaks old peers", KindError)
	}
	if KindTraces != 16 || KindTracesResp != 17 {
		t.Fatalf("KindTraces = %d/%d, want 16/17", KindTraces, KindTracesResp)
	}
	if KindHealth != 18 || KindHealthResp != 19 {
		t.Fatalf("KindHealth = %d/%d, want 18/19", KindHealth, KindHealthResp)
	}
	if KindHealth%2 != 0 {
		t.Fatal("KindHealth is odd: requests must stay even")
	}
	if KindHealth.String() != "health" || KindHealthResp.String() != "health-resp" {
		t.Fatalf("kind names: %v %v", KindHealth, KindHealthResp)
	}
	if KindMetrics != 24 || KindMetricsResp != 25 {
		t.Fatalf("KindMetrics = %d/%d, want 24/25", KindMetrics, KindMetricsResp)
	}
	if KindMetrics%2 != 0 {
		t.Fatal("KindMetrics is odd: requests must stay even")
	}
	if KindMetrics.String() != "metrics" || KindMetricsResp.String() != "metrics-resp" {
		t.Fatalf("kind names: %v %v", KindMetrics, KindMetricsResp)
	}
	if KindHistory != 26 || KindHistoryResp != 27 {
		t.Fatalf("KindHistory = %d/%d, want 26/27", KindHistory, KindHistoryResp)
	}
	if KindHistory%2 != 0 {
		t.Fatal("KindHistory is odd: requests must stay even")
	}
	if KindHistory.String() != "history" || KindHistoryResp.String() != "history-resp" {
		t.Fatalf("kind names: %v %v", KindHistory, KindHistoryResp)
	}
	if KindRepair != 28 || KindRepairResp != 29 {
		t.Fatalf("KindRepair = %d/%d, want 28/29", KindRepair, KindRepairResp)
	}
	if KindRepair%2 != 0 {
		t.Fatal("KindRepair is odd: requests must stay even")
	}
	if KindRepair.String() != "repair" || KindRepairResp.String() != "repair-resp" {
		t.Fatalf("kind names: %v %v", KindRepair, KindRepairResp)
	}
}

// legacyPreHealthMessage replicates the message envelope exactly as it was
// encoded before the health kinds existed: no Health/HealthResp pointers.
type legacyPreHealthMessage struct {
	Kind      Kind
	From      addr.Addr
	Query     *legacyQueryReq
	QueryResp *legacyQueryResp
	Error     string
}

// TestDecodePreHealthFrame proves a pre-health peer's frames still decode
// on a current node: gob leaves the absent health payloads nil.
func TestDecodePreHealthFrame(t *testing.T) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&legacyPreHealthMessage{
		Kind: KindInfo, From: 4,
	}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(body.Len()))
	out.Write(lenb[:])
	out.Write(body.Bytes())

	m, err := ReadMessage(&out)
	if err != nil {
		t.Fatalf("pre-health frame did not decode: %v", err)
	}
	if m.Kind != KindInfo || m.From != 4 {
		t.Fatalf("envelope mismatch: %+v", m)
	}
	if m.Health != nil || m.HealthResp != nil {
		t.Fatalf("absent health payloads decoded non-nil: %+v", m)
	}
}

// TestOldDecoderIgnoresHealthFields covers the opposite direction: a
// digest-carrying frame produced by a current node must still decode on a
// pre-health receiver (gob skips fields the receiver does not know), so a
// crawler polling a mixed-version community never wedges old peers.
func TestOldDecoderIgnoresHealthFields(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMessage(&buf, &Message{
		Kind: KindHealthResp, From: 6,
		HealthResp: &HealthResp{
			Rounds: 3,
			Digest: health.Digest{
				Addr: 6, Path: bitpath.MustParse("011"),
				Entries: 2, MaxVersion: 9, IndexHash: 0xdeadbeef,
				RefCounts: []int{2, 1, 1}, Buddies: 1,
				Liveness: []health.LevelProbe{{Level: 1, Live: 5, Dead: 1}},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[4:] // strip the length prefix
	var legacy legacyPreHealthMessage
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&legacy); err != nil {
		t.Fatalf("pre-health decoder rejected a digest frame: %v", err)
	}
	if legacy.Kind != KindHealthResp || legacy.From != 6 {
		t.Fatalf("legacy decode mismatch: %+v", legacy)
	}
}

// TestDecodePreMetricsFrame proves frames from peers that predate the
// metrics kinds still decode (gob leaves the absent payload nil), and a
// metrics-carrying frame decodes on such a peer.
func TestDecodePreMetricsFrame(t *testing.T) {
	// legacyPreHealthMessage also predates metrics — reuse it.
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&legacyPreHealthMessage{
		Kind: KindStats, From: 8,
	}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(body.Len()))
	out.Write(lenb[:])
	out.Write(body.Bytes())
	m, err := ReadMessage(&out)
	if err != nil {
		t.Fatalf("pre-metrics frame did not decode: %v", err)
	}
	if m.MetricsResp != nil {
		t.Fatalf("absent metrics payload decoded non-nil: %+v", m)
	}

	// Opposite direction: a snapshot-carrying frame through a pre-metrics
	// decoder.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindMetricsResp, From: 5,
		MetricsResp: &MetricsResp{Snap: telemetry.MetricsSnapshot{
			Schema: telemetry.MetricsSchemaVersion,
			Stats:  []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 12}},
			Hists: []telemetry.QHistSnapshot{{Name: "lat", SubBits: 4, Count: 1,
				Sum: 99, Idx: []uint16{5}, N: []int64{1}}}}}}); err != nil {
		t.Fatal(err)
	}
	var legacy legacyPreHealthMessage
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes()[4:])).Decode(&legacy); err != nil {
		t.Fatalf("pre-metrics decoder rejected a snapshot frame: %v", err)
	}
	if legacy.Kind != KindMetricsResp || legacy.From != 5 {
		t.Fatalf("legacy decode mismatch: %+v", legacy)
	}
}

// TestMetricsRoundTrip pins the gob path for the metrics pair, including
// the payload-less request and an empty (telemetry-disabled) snapshot.
func TestMetricsRoundTrip(t *testing.T) {
	var rb bytes.Buffer
	if err := WriteMessage(&rb, &Message{Kind: KindMetrics, From: 3}); err != nil {
		t.Fatal(err)
	}
	req, err := ReadMessage(&rb)
	if err != nil || req.Kind != KindMetrics || req.From != 3 {
		t.Fatalf("metrics request round trip: %+v, %v", req, err)
	}

	m := &Message{Kind: KindMetricsResp, From: 2, MetricsResp: &MetricsResp{
		Snap: telemetry.MetricsSnapshot{
			Schema: telemetry.MetricsSchemaVersion,
			Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 42},
				{Name: "pgrid_health_liveness_permille", Value: -1}},
			Hists: []telemetry.QHistSnapshot{{Name: `pgrid_rpc_kind_latency_ns{kind="query"}`,
				SubBits: 4, Count: 3, Sum: 3000, Idx: []uint16{16, 200}, N: []int64{2, 1}}}}}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := got.MetricsResp
	if r == nil || r.Snap.Schema != telemetry.MetricsSchemaVersion || len(r.Snap.Stats) != 2 {
		t.Fatalf("metrics response did not round-trip: %+v", r)
	}
	h := r.Snap.Hists[0]
	if h.Name != m.MetricsResp.Snap.Hists[0].Name || h.Count != 3 || h.Sum != 3000 ||
		len(h.Idx) != 2 || h.Idx[1] != 200 || h.N[0] != 2 {
		t.Fatalf("histogram snapshot did not round-trip: %+v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}

	// Telemetry disabled: empty, schema-stamped snapshot.
	var eb bytes.Buffer
	if err := WriteMessage(&eb, &Message{Kind: KindMetricsResp, From: 2,
		MetricsResp: &MetricsResp{Snap: telemetry.MetricsSnapshot{
			Schema: telemetry.MetricsSchemaVersion}}}); err != nil {
		t.Fatal(err)
	}
	empty, err := ReadMessage(&eb)
	if err != nil || empty.MetricsResp == nil || len(empty.MetricsResp.Snap.Stats) != 0 {
		t.Fatalf("empty snapshot round trip: %+v, %v", empty.MetricsResp, err)
	}
}

// The legacyV1* types replicate the telemetry snapshot exactly as schema
// v1 encoded it: no incarnation stamp on the snapshot, no exemplars on
// the histograms. Gob matches fields by name, so v1 frames decode
// through the v2 reader with the new fields zero — which the v2 reader
// treats as "unknown epoch" — and v2 frames decode on a v1 receiver
// with the new fields skipped.
type legacyV1QHistSnapshot struct {
	Name    string
	SubBits uint8
	Count   int64
	Sum     int64
	Idx     []uint16
	N       []int64
}

type legacyV1MetricsSnapshot struct {
	Schema int
	Stats  []telemetry.Stat
	Hists  []legacyV1QHistSnapshot
}

type legacyV1MetricsResp struct {
	Snap legacyV1MetricsSnapshot
}

type legacyPreHistoryMessage struct {
	Kind        Kind
	From        addr.Addr
	Query       *legacyQueryReq
	QueryResp   *legacyQueryResp
	MetricsResp *legacyV1MetricsResp
	Error       string
}

// TestDecodeV1SnapshotFrame proves a schema-v1 snapshot frame — produced
// by a peer that predates incarnation stamps and exemplars — decodes
// against the current reader with the absent fields zero.
func TestDecodeV1SnapshotFrame(t *testing.T) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&legacyPreHistoryMessage{
		Kind: KindMetricsResp, From: 7,
		MetricsResp: &legacyV1MetricsResp{Snap: legacyV1MetricsSnapshot{
			Schema: telemetry.MetricsSchemaV1,
			Stats:  []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 33}},
			Hists: []legacyV1QHistSnapshot{{Name: "lat", SubBits: 4, Count: 2,
				Sum: 700, Idx: []uint16{16, 40}, N: []int64{1, 1}}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(body.Len()))
	out.Write(lenb[:])
	out.Write(body.Bytes())

	m, err := ReadMessage(&out)
	if err != nil {
		t.Fatalf("v1 snapshot frame did not decode: %v", err)
	}
	s := m.MetricsResp.Snap
	if s.Schema != telemetry.MetricsSchemaV1 || len(s.Stats) != 1 || len(s.Hists) != 1 {
		t.Fatalf("v1 snapshot mismatch: %+v", s)
	}
	if s.StartEpochNS != 0 || s.UptimeNS != 0 {
		t.Fatalf("absent incarnation stamp decoded non-zero: %+v", s)
	}
	if s.Hists[0].ExIdx != nil || s.Hists[0].ExTrace != nil {
		t.Fatalf("absent exemplars decoded non-nil: %+v", s.Hists[0])
	}
	if !s.SameEpoch(telemetry.MetricsSnapshot{StartEpochNS: 12345}) {
		t.Fatal("zero epoch must compare as unknown-same")
	}
}

// TestOldDecoderIgnoresV2SnapshotFields covers the opposite direction: a
// v2 snapshot with incarnation stamps and exemplars must still decode on
// a v1 receiver, and a history frame must not wedge a pre-history peer.
func TestOldDecoderIgnoresV2SnapshotFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindMetricsResp, From: 4,
		MetricsResp: &MetricsResp{Snap: telemetry.MetricsSnapshot{
			Schema:       telemetry.MetricsSchemaVersion,
			StartEpochNS: 1700000000123456789, UptimeNS: 5e9,
			Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 8}},
			Hists: []telemetry.QHistSnapshot{{Name: "lat", SubBits: 4, Count: 1,
				Sum: 10, Idx: []uint16{9}, N: []int64{1},
				ExIdx: []uint16{9}, ExTrace: []uint64{0xabcdef}}},
		}}}); err != nil {
		t.Fatal(err)
	}
	var legacy legacyPreHistoryMessage
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes()[4:])).Decode(&legacy); err != nil {
		t.Fatalf("v1 decoder rejected a v2 snapshot frame: %v", err)
	}
	if legacy.MetricsResp == nil || legacy.MetricsResp.Snap.Hists[0].Count != 1 {
		t.Fatalf("legacy decode mismatch: %+v", legacy.MetricsResp)
	}

	// A history response through a pre-history decoder: the unknown
	// payload field is skipped, the envelope survives.
	var hb bytes.Buffer
	if err := WriteMessage(&hb, &Message{Kind: KindHistoryResp, From: 9,
		HistoryResp: &HistoryResp{Dump: telemetry.HistoryDump{
			Schema: telemetry.MetricsSchemaVersion, IntervalNS: 2e9,
			Points: []telemetry.HistoryPoint{{AtNS: 100, Snap: telemetry.MetricsSnapshot{
				Schema: telemetry.MetricsSchemaVersion}}},
		}}}); err != nil {
		t.Fatal(err)
	}
	var legacy2 legacyPreHistoryMessage
	if err := gob.NewDecoder(bytes.NewReader(hb.Bytes()[4:])).Decode(&legacy2); err != nil {
		t.Fatalf("pre-history decoder rejected a history frame: %v", err)
	}
	if legacy2.Kind != KindHistoryResp || legacy2.From != 9 {
		t.Fatalf("legacy decode mismatch: %+v", legacy2)
	}
}

// TestHistoryRoundTrip pins the gob path for the history pair, including
// the windowed request and the empty history-disabled dump.
func TestHistoryRoundTrip(t *testing.T) {
	var rb bytes.Buffer
	if err := WriteMessage(&rb, &Message{Kind: KindHistory, From: 3,
		History: &HistoryReq{WindowNS: 300e9, MaxPoints: 64}}); err != nil {
		t.Fatal(err)
	}
	req, err := ReadMessage(&rb)
	if err != nil || req.History == nil || req.History.WindowNS != 300e9 || req.History.MaxPoints != 64 {
		t.Fatalf("history request round trip: %+v, %v", req, err)
	}

	m := &Message{Kind: KindHistoryResp, From: 2, HistoryResp: &HistoryResp{
		Dump: telemetry.HistoryDump{
			Schema: telemetry.MetricsSchemaVersion, IntervalNS: 2e9,
			Points: []telemetry.HistoryPoint{
				{AtNS: 1e9, Snap: telemetry.MetricsSnapshot{
					Schema:       telemetry.MetricsSchemaVersion,
					StartEpochNS: 500, UptimeNS: 100,
					Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 1}}}},
				{AtNS: 3e9, Snap: telemetry.MetricsSnapshot{
					Schema:       telemetry.MetricsSchemaVersion,
					StartEpochNS: 500, UptimeNS: 2100,
					Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 5}},
					Hists: []telemetry.QHistSnapshot{{Name: "lat", SubBits: 4, Count: 1,
						Sum: 42, Idx: []uint16{7}, N: []int64{1},
						ExIdx: []uint16{7}, ExTrace: []uint64{0xbeef}}}}},
			},
		}}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := got.HistoryResp.Dump
	if d.Schema != telemetry.MetricsSchemaVersion || d.IntervalNS != 2e9 || len(d.Points) != 2 {
		t.Fatalf("history dump did not round-trip: %+v", d)
	}
	if d.Points[1].Snap.Hists[0].ExTrace[0] != 0xbeef {
		t.Fatalf("exemplar did not round-trip: %+v", d.Points[1].Snap.Hists[0])
	}
	if rate, ok := d.Rate("pgrid_rpc_served_total", 0); !ok || rate != 2 {
		t.Fatalf("round-tripped dump rate = %v, %v; want 2, true", rate, ok)
	}

	// History disabled: empty, schema-stamped dump — distinguishable from
	// a pre-history peer, which answers KindError instead.
	var eb bytes.Buffer
	if err := WriteMessage(&eb, &Message{Kind: KindHistoryResp, From: 2,
		HistoryResp: &HistoryResp{Dump: telemetry.HistoryDump{
			Schema: telemetry.MetricsSchemaVersion}}}); err != nil {
		t.Fatal(err)
	}
	empty, err := ReadMessage(&eb)
	if err != nil || empty.HistoryResp == nil || len(empty.HistoryResp.Dump.Points) != 0 {
		t.Fatalf("empty dump round trip: %+v, %v", empty.HistoryResp, err)
	}
}

func TestHealthRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindHealthResp, From: 2,
		HealthResp: &HealthResp{
			Rounds: 7,
			Digest: health.Digest{
				Addr: 2, Path: bitpath.MustParse("10"),
				Entries: 5, MaxVersion: 41, IndexHash: 0x1234,
				RefCounts: []int{3, 2}, Buddies: 2,
				Liveness: []health.LevelProbe{
					{Level: 1, Live: 9, Dead: 0},
					{Level: 2, Live: 4, Dead: 2},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := got.HealthResp
	if h == nil || h.Rounds != 7 {
		t.Fatalf("health response did not round-trip: %+v", h)
	}
	d, want := h.Digest, m.HealthResp.Digest
	if d.Addr != want.Addr || d.Path != want.Path || d.Entries != want.Entries ||
		d.MaxVersion != want.MaxVersion || d.IndexHash != want.IndexHash || d.Buddies != want.Buddies {
		t.Fatalf("digest mismatch: %+v vs %+v", d, want)
	}
	if len(d.RefCounts) != 2 || d.RefCounts[0] != 3 || d.RefCounts[1] != 2 {
		t.Fatalf("ref counts did not round-trip: %v", d.RefCounts)
	}
	if len(d.Liveness) != 2 || d.Liveness[0] != want.Liveness[0] || d.Liveness[1] != want.Liveness[1] {
		t.Fatalf("liveness did not round-trip: %+v", d.Liveness)
	}

	// The request side, with and without the liveness flag.
	for _, wantLiveness := range []bool{true, false} {
		var rb bytes.Buffer
		if err := WriteMessage(&rb, &Message{Kind: KindHealth, From: 1,
			Health: &HealthReq{WantLiveness: wantLiveness}}); err != nil {
			t.Fatal(err)
		}
		req, err := ReadMessage(&rb)
		if err != nil {
			t.Fatal(err)
		}
		if req.Health == nil || req.Health.WantLiveness != wantLiveness {
			t.Fatalf("health request did not round-trip: %+v", req.Health)
		}
	}
}
