package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// sampleMessages returns one representative message per kind, with every
// payload field populated (and a second, sparse variant where nil-ness
// matters). The cross-codec and round-trip tests both iterate this set, so
// a new kind that is added without extending it fails TestBinaryCoversAllKinds.
func sampleMessages() []*Message {
	p := bitpath.MustParse
	entry := store.Entry{Key: p("0110"), Name: "doc-17", Holder: 9, Version: 0x1122334455667788}
	snap := telemetry.MetricsSnapshot{Schema: telemetry.MetricsSchemaVersion,
		StartEpochNS: 1700000000123456789, UptimeNS: 98765432100,
		Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 42},
			{Name: `pgrid_exchange_case_total{case="2a"}`, Value: -9}},
		Hists: []telemetry.QHistSnapshot{
			{Name: `pgrid_rpc_kind_latency_ns{kind="query"}`, SubBits: 4, Count: 7,
				Sum: 1234567, Idx: []uint16{3, 150, 900}, N: []int64{4, 2, 1},
				ExIdx: []uint16{150, 900}, ExTrace: []uint64{0xfeedface01, 0xfeedface02}},
			{Name: "pgrid_pool_acquire_wait_ns", SubBits: 4}}}
	// A v1 snapshot as a pre-history peer would ship it: no incarnation
	// stamps, no exemplars. Kept in the corpus so the v2 reader keeps
	// decoding the old layout forever.
	snapV1 := telemetry.MetricsSnapshot{Schema: telemetry.MetricsSchemaV1,
		Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 17}},
		Hists: []telemetry.QHistSnapshot{
			{Name: `pgrid_rpc_served_latency_ns{kind="get"}`, SubBits: 4, Count: 2,
				Sum: 999, Idx: []uint16{40}, N: []int64{2}}}}
	span := trace.Span{ID: 0xdeadbeef01, Parent: 0xdeadbeef00, Peer: 7, Path: p("01"),
		Level: 2, Ref: 3, Matched: true, Backtracked: true, LatencyNS: 125000}
	return []*Message{
		{Kind: KindQuery, From: 1, Query: &QueryReq{Key: p("010011"), Level: 3,
			Ctx: &trace.SpanContext{TraceID: 0xfeedface, Parent: 77, Budget: 12, Sampled: true}}},
		{Kind: KindQuery, From: 2, Query: &QueryReq{Key: p("1"), Level: 0}}, // untraced
		{Kind: KindQuery, From: addr.Nil},                                   // nil payload
		{Kind: KindQueryResp, From: 4, QueryResp: &QueryResp{Found: true, Peer: 11,
			Path: p("0100"), Messages: 5, Backtracks: 2, Spans: []trace.Span{span, span}}},
		{Kind: KindQueryResp, From: 4, QueryResp: &QueryResp{Found: false, Peer: addr.Nil}},
		{Kind: KindExchange, From: 5, Exchange: &ExchangeReq{Path: p("110"),
			Refs: []RefSet{{Addrs: []addr.Addr{1, 2}}, {}, {Addrs: []addr.Addr{9}}}, Depth: 2}},
		{Kind: KindExchangeResp, From: 6, ExchangeResp: &ExchangeResp{
			BasePath: p("110"), Extend: true, ExtendBit: 1,
			ExtendRefs: RefSet{Addrs: []addr.Addr{4}},
			SetRefs:    map[int]RefSet{1: {Addrs: []addr.Addr{2, 3}}, 3: {Addrs: []addr.Addr{8}}},
			AddBuddy:   true, ForwardTo: []addr.Addr{5, 6},
			Handover: []store.Entry{entry}}},
		{Kind: KindExchangeResp, From: 6, ExchangeResp: &ExchangeResp{BasePath: p("")}},
		{Kind: KindApply, From: 7, Apply: &ApplyReq{Entry: entry}},
		{Kind: KindApplyResp, From: 8, ApplyResp: &ApplyResp{Changed: true}},
		{Kind: KindGet, From: 9, Get: &GetReq{Key: p("00000001"), Name: "x"}},
		{Kind: KindGetResp, From: 10, GetResp: &GetResp{Entry: entry, Found: true}},
		{Kind: KindInfo, From: 11},
		{Kind: KindInfoResp, From: 12, InfoResp: &InfoResp{Addr: 12, Path: p("0101"),
			Refs:    []RefSet{{Addrs: []addr.Addr{1}}, {Addrs: []addr.Addr{2, 3}}},
			Buddies: RefSet{Addrs: []addr.Addr{13}}, Entries: 44}},
		{Kind: KindScan, From: 13, Scan: &ScanReq{Prefix: p("011")}},
		{Kind: KindScanResp, From: 14, ScanResp: &ScanResp{Entries: []store.Entry{entry, entry}}},
		{Kind: KindStats, From: 15},
		{Kind: KindStatsResp, From: 16, StatsResp: &StatsResp{Schema: 1,
			Stats: []Stat{{Name: "rpc_total", Value: 123}, {Name: "neg", Value: -7}}}},
		{Kind: KindError, From: 17, Error: "node offline"},
		{Kind: KindTraces, From: 18, Traces: &TracesReq{Limit: 32}},
		{Kind: KindTracesResp, From: 19, TracesResp: &TracesResp{Total: 901,
			Traces: []trace.Trace{{TraceID: 0xabc, Key: p("0101"), Found: true,
				Messages: 3, Backtracks: 1, Spans: []trace.Span{span}}}}},
		{Kind: KindHealth, From: 20, Health: &HealthReq{WantLiveness: true}},
		{Kind: KindHealthResp, From: 21, HealthResp: &HealthResp{Rounds: 6,
			Digest: health.Digest{Addr: 21, Path: p("10"), Entries: 8,
				MaxVersion: 0x99, IndexHash: 0xdeadcafe, RefCounts: []int{2, 1, 3},
				Buddies: 2, Liveness: []health.LevelProbe{{Level: 1, Live: 5, Dead: 1},
					{Level: 2, Live: 2, Dead: 0}}}}},
		{Kind: KindBatch, From: 22, Batch: &BatchReq{Msgs: []Message{
			{Kind: KindApply, From: 22, Apply: &ApplyReq{Entry: entry}},
			{Kind: KindInfo, From: 22},
			{Kind: KindMetrics, From: 22},
			{Kind: KindHealth, From: 22, Health: &HealthReq{WantLiveness: true}}}}},
		{Kind: KindBatchResp, From: 23, BatchResp: &BatchResp{Msgs: []Message{
			{Kind: KindApplyResp, From: 23, ApplyResp: &ApplyResp{Changed: false}},
			{Kind: KindMetricsResp, From: 23, MetricsResp: &MetricsResp{
				Snap: telemetry.MetricsSnapshot{Schema: telemetry.MetricsSchemaVersion,
					Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 3}}}}},
			{Kind: KindError, From: 23, Error: "no such handler"}}}},
		{Kind: KindHello, From: 24, Hello: &HelloReq{MaxCodec: BinaryVersion}},
		{Kind: KindHelloResp, From: 25, HelloResp: &HelloResp{Codec: BinaryVersion}},
		{Kind: KindMetrics, From: 26},
		{Kind: KindMetricsResp, From: 27, MetricsResp: &MetricsResp{Snap: snap}},
		{Kind: KindMetricsResp, From: 27, MetricsResp: &MetricsResp{Snap: snapV1}}, // pre-history peer
		{Kind: KindMetricsResp, From: 27, MetricsResp: &MetricsResp{ // telemetry disabled
			Snap: telemetry.MetricsSnapshot{Schema: telemetry.MetricsSchemaVersion}}},
		{Kind: KindMetricsResp, From: 27}, // nil payload
		{Kind: KindHistory, From: 28, History: &HistoryReq{WindowNS: 300_000_000_000, MaxPoints: 64}},
		{Kind: KindHistory, From: 28, History: &HistoryReq{}}, // full retention
		{Kind: KindHistory, From: 28},                         // nil payload
		{Kind: KindHistoryResp, From: 29, HistoryResp: &HistoryResp{
			Dump: telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion,
				IntervalNS: 2_000_000_000,
				Points: []telemetry.HistoryPoint{
					{AtNS: 1700000000000000000, Snap: snap},
					{AtNS: 1700000002000000000, Snap: snapV1}, // mixed-schema ring after upgrade
					{AtNS: 1700000004000000000, Snap: telemetry.MetricsSnapshot{
						Schema: telemetry.MetricsSchemaVersion}}}}}},
		{Kind: KindHistoryResp, From: 29, HistoryResp: &HistoryResp{ // history disabled
			Dump: telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion}}},
		{Kind: KindHistoryResp, From: 29}, // nil payload
		{Kind: KindRepair, From: 30, Repair: &RepairReq{Trigger: true}},
		{Kind: KindRepair, From: 30, Repair: &RepairReq{}}, // status-only
		{Kind: KindRepair, From: 30},                       // nil payload
		{Kind: KindRepairResp, From: 31, RepairResp: &RepairResp{
			Status: repair.Status{Enabled: true, Rounds: 12, Messages: 480,
				LastFaults: 3, LastHeals: 2, LastUnhealed: 1,
				Faults: []repair.Tally{{Name: repair.FaultDeadRef, N: 9},
					{Name: repair.FaultWrongSide, N: 4}},
				Heals: []repair.Tally{{Name: repair.ActionEvictRef, N: 11},
					{Name: repair.ActionSyncPull, N: 2}}}}},
		{Kind: KindRepairResp, From: 31, RepairResp: &RepairResp{}}, // repair disabled
		{Kind: KindRepairResp, From: 31},                            // nil payload
	}
}

// TestBinaryCoversAllKinds pins that the sample corpus exercises every
// kind the codec knows, so forgetting to extend it is a test failure.
func TestBinaryCoversAllKinds(t *testing.T) {
	seen := map[Kind]bool{}
	for _, m := range sampleMessages() {
		seen[m.Kind] = true
	}
	for k := KindQuery; k <= KindRepairResp; k++ {
		if k == 15 { // reserved
			continue
		}
		if !seen[k] {
			t.Errorf("sampleMessages has no %v message", k)
		}
	}
}

// TestBinaryRoundTrip encodes every sample through the binary codec and
// requires an exact structural round trip, plus header fidelity.
func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 42, FlagResponse, m); err != nil {
			t.Fatalf("%v: encode: %v", m.Kind, err)
		}
		seq, flags, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if seq != 42 || flags != FlagResponse {
			t.Fatalf("%v: header seq=%d flags=%d", m.Kind, seq, flags)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%v round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

// TestBinaryGobFlagRoundTrip sends each sample as a FlagGob frame: binary
// framing, gob payload — the negotiated fallback for payloads (or peers)
// the binary body format cannot serve.
func TestBinaryGobFlagRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 7, FlagGob, m); err != nil {
			t.Fatalf("%v: encode: %v", m.Kind, err)
		}
		_, flags, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if flags&FlagGob == 0 {
			t.Fatalf("%v: FlagGob lost", m.Kind)
		}
		if got.Kind != m.Kind || got.From != m.From {
			t.Fatalf("%v: envelope mismatch: %+v", m.Kind, got)
		}
	}
}

// equivalent reports semantic equality across codecs: gob collapses empty
// maps/slices to nil while the binary codec is already canonical about it,
// so nil and len==0 compare equal everywhere.
func equivalent(t *testing.T, kind Kind, a, b *Message) {
	t.Helper()
	norm := func(m *Message) *Message {
		c := *m
		if c.ExchangeResp != nil {
			e := *c.ExchangeResp
			if len(e.SetRefs) == 0 {
				e.SetRefs = nil
			}
			if len(e.ForwardTo) == 0 {
				e.ForwardTo = nil
			}
			if len(e.Handover) == 0 {
				e.Handover = nil
			}
			if len(e.ExtendRefs.Addrs) == 0 {
				e.ExtendRefs.Addrs = nil
			}
			c.ExchangeResp = &e
		}
		return &c
	}
	if !reflect.DeepEqual(norm(a), norm(b)) {
		t.Fatalf("%v cross-codec mismatch:\n got %+v\nwant %+v", kind, a, b)
	}
}

// TestCrossCodecGoldenVectors is the compat contract: every message kind
// encoded by the legacy gob codec decodes identically through the binary
// transport's fallback read path (ReadAuto sniffing), and every binary
// frame is invisible to that same path's gob branch. A mixed-codec
// community depends on exactly this.
func TestCrossCodecGoldenVectors(t *testing.T) {
	for _, m := range sampleMessages() {
		// gob encoding → auto reader (fallback path).
		var gobBuf bytes.Buffer
		if err := WriteMessage(&gobBuf, m); err != nil {
			t.Fatalf("%v: gob encode: %v", m.Kind, err)
		}
		got, err := ReadAuto(bufio.NewReader(&gobBuf))
		if err != nil {
			t.Fatalf("%v: auto-read of gob frame: %v", m.Kind, err)
		}
		equivalent(t, m.Kind, got, m)

		// binary encoding → same auto reader.
		var binBuf bytes.Buffer
		if err := WriteFrame(&binBuf, 0, 0, m); err != nil {
			t.Fatalf("%v: binary encode: %v", m.Kind, err)
		}
		got, err = ReadAuto(bufio.NewReader(&binBuf))
		if err != nil {
			t.Fatalf("%v: auto-read of binary frame: %v", m.Kind, err)
		}
		equivalent(t, m.Kind, got, m)
	}
}

// TestBinaryFrameStream decodes several frames back to back off one
// reader, proving the codec leaves the stream positioned exactly at the
// next frame (no trailing-garbage slop between frames).
func TestBinaryFrameStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for i, m := range msgs {
		if err := WriteFrame(&buf, uint32(i), 0, m); err != nil {
			t.Fatalf("encode %v: %v", m.Kind, err)
		}
	}
	for i, m := range msgs {
		seq, _, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint32(i) || got.Kind != m.Kind {
			t.Fatalf("frame %d: seq=%d kind=%v", i, seq, got.Kind)
		}
	}
	if _, _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF after last frame, got %v", err)
	}
}

// TestBinaryCorruptFrames runs the corruption table: every malformed frame
// must surface ErrCorrupt (or clean EOF for pure truncation at a frame
// boundary) — never a panic, hang, or giant allocation.
func TestBinaryCorruptFrames(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 1, 0, &Message{Kind: KindQuery, From: 2,
			Query: &QueryReq{Key: bitpath.MustParse("0101"), Level: 1}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantEOF bool // truncation at the header boundary reads as clean EOF? no — only empty input
	}{
		{name: "bad magic byte 0", mutate: func(b []byte) []byte { b[0] = 'X'; return b }},
		{name: "bad magic byte 1", mutate: func(b []byte) []byte { b[1] = 'X'; return b }},
		{name: "future version", mutate: func(b []byte) []byte { b[2] = BinaryVersion + 1; return b }},
		{name: "unknown kind", mutate: func(b []byte) []byte { b[3] = 99; return b }},
		{name: "kind flip changes format", mutate: func(b []byte) []byte { b[3] = byte(KindHealthResp); return b }},
		{name: "oversize length", mutate: func(b []byte) []byte {
			b[9], b[10], b[11], b[12] = 0xff, 0xff, 0xff, 0xff
			return b
		}},
		{name: "length beyond body", mutate: func(b []byte) []byte { b[12]++; return b }},
		{name: "truncated header", mutate: func(b []byte) []byte { return b[:HeaderSize-3] }},
		{name: "truncated payload", mutate: func(b []byte) []byte { return b[:len(b)-2] }},
		{name: "trailing garbage in payload", mutate: func(b []byte) []byte {
			b = append(b, 0xaa, 0xbb)
			n := len(b) - HeaderSize
			b[9], b[10], b[11], b[12] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
			return b
		}},
		{name: "payload bit flip mid-varint", mutate: func(b []byte) []byte {
			b[len(b)-1] ^= 0x80
			n := len(b) - HeaderSize
			_ = n
			return b[:HeaderSize] // empty payload for a kind that requires one
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good()...))
			if tc.name == "truncated header" || tc.name == "truncated payload" ||
				tc.name == "length beyond body" {
				// Truncation mid-frame: acceptable as ErrCorrupt or an
				// unexpected-EOF read error, but never a panic or io.EOF-as-success.
				_, _, m, err := ReadFrame(bytes.NewReader(b))
				if err == nil {
					t.Fatalf("decoded %+v from truncated frame", m)
				}
				return
			}
			if tc.name == "payload bit flip mid-varint" {
				b = b[:HeaderSize]
				b[9], b[10], b[11], b[12] = 0, 0, 0, 0
			}
			_, _, m, err := ReadFrame(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("decoded %+v from corrupt frame", m)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

// TestBinaryCountOverflow feeds a frame whose span count claims far more
// elements than the payload holds: the decoder must reject it as corrupt
// without attempting the allocation.
func TestBinaryCountOverflow(t *testing.T) {
	payload := []byte{2, 1} // From=1, payload present
	payload = appendBool(payload[:1], true)
	// Hand-build: From varint(3)=6, present=1, Found=1, Peer varint, path,
	// Messages, Backtracks, then a monstrous span count.
	b := []byte{}
	b = appendVarint(b, 3)      // From
	b = appendBool(b, true)     // payload present
	b = appendBool(b, true)     // Found
	b = appendVarint(b, 1)      // Peer
	b = appendPath(b, "")       // Path
	b = appendVarint(b, 0)      // Messages
	b = appendVarint(b, 0)      // Backtracks
	b = appendUvarint(b, 1<<40) // Spans count: absurd
	frame := []byte{magic0, magic1, BinaryVersion, byte(KindQueryResp), 0, 0, 0, 0, 1}
	frame = append(frame, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	frame = append(frame, b...)
	_, _, _, err := ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for absurd count, got %v", err)
	}
}

// TestBinaryMetricsCorrupt runs the corruption table for the metrics
// payload: absurd stat/histogram/pair counts must be refused before any
// allocation, and a histogram bucket index beyond uint16 is corrupt (it
// could not have come from a QHist, whose bucket space is under 1000).
func TestBinaryMetricsCorrupt(t *testing.T) {
	frame := func(body []byte) []byte {
		f := []byte{magic0, magic1, BinaryVersion, byte(KindMetricsResp), 0, 0, 0, 0, 1}
		f = append(f, byte(len(body)>>24), byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
		return append(f, body...)
	}
	prefix := func() []byte {
		b := []byte{}
		b = appendVarint(b, 3)  // From
		b = appendBool(b, true) // payload present
		b = appendVarint(b, 1)  // Schema
		return b
	}
	cases := []struct {
		name string
		body func() []byte
	}{
		{"absurd stat count", func() []byte {
			return appendUvarint(prefix(), 1<<40)
		}},
		{"absurd hist count", func() []byte {
			b := appendUvarint(prefix(), 0) // no stats
			return appendUvarint(b, 1<<40)
		}},
		{"absurd pair count", func() []byte {
			b := appendUvarint(prefix(), 0) // no stats
			b = appendUvarint(b, 1)         // one hist
			b = appendString(b, "h")
			b = append(b, 4)       // SubBits
			b = appendVarint(b, 1) // Count
			b = appendVarint(b, 1) // Sum
			return appendUvarint(b, 1<<40)
		}},
		{"bucket index beyond uint16", func() []byte {
			b := appendUvarint(prefix(), 0) // no stats
			b = appendUvarint(b, 1)         // one hist
			b = appendString(b, "h")
			b = append(b, 4)            // SubBits
			b = appendVarint(b, 1)      // Count
			b = appendVarint(b, 1)      // Sum
			b = appendUvarint(b, 1)     // one pair
			b = appendUvarint(b, 70000) // idx > 0xffff
			return appendVarint(b, 1)
		}},
		{"truncated after subbits", func() []byte {
			b := appendUvarint(prefix(), 0) // no stats
			b = appendUvarint(b, 1)         // one hist
			b = appendString(b, "h")
			return append(b, 4, 0, 0) // SubBits + Count + Sum, then missing pair count
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, m, err := ReadFrame(bytes.NewReader(frame(tc.body())))
			if err == nil {
				t.Fatalf("decoded %+v from corrupt metrics frame", m)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
	// The encoder refuses a structurally-broken snapshot rather than
	// emitting a frame no decoder can parse.
	bad := &Message{Kind: KindMetricsResp, From: 1, MetricsResp: &MetricsResp{
		Snap: telemetry.MetricsSnapshot{Hists: []telemetry.QHistSnapshot{
			{Name: "h", Idx: []uint16{1, 2}, N: []int64{5}}}}}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, 0, bad); err == nil {
		t.Fatal("encoder accepted mismatched Idx/N lengths")
	}
}

// TestBinaryHistoryCorrupt runs the corruption table for the history
// payload: absurd point/exemplar counts are refused before allocation,
// exemplar bucket indexes beyond uint16 are corrupt, and the encoder
// refuses snapshots with mismatched exemplar arrays.
func TestBinaryHistoryCorrupt(t *testing.T) {
	frame := func(body []byte) []byte {
		f := []byte{magic0, magic1, BinaryVersion, byte(KindHistoryResp), 0, 0, 0, 0, 1}
		f = append(f, byte(len(body)>>24), byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
		return append(f, body...)
	}
	prefix := func() []byte {
		b := []byte{}
		b = appendVarint(b, 3)   // From
		b = appendBool(b, true)  // payload present
		b = appendVarint(b, 2)   // Dump.Schema
		b = appendVarint(b, 2e9) // IntervalNS
		return b
	}
	// point emits one well-formed empty v2 snapshot point.
	point := func(b []byte) []byte {
		b = appendVarint(b, 1700000000000000000) // AtNS
		b = appendVarint(b, 2)                   // snapshot Schema
		b = appendVarint(b, 1)                   // StartEpochNS
		b = appendVarint(b, 1)                   // UptimeNS
		b = appendUvarint(b, 0)                  // no stats
		return appendUvarint(b, 0)               // no hists
	}
	oneHistPrefix := func() []byte {
		b := appendUvarint(prefix(), 1)          // one point
		b = appendVarint(b, 1700000000000000000) // AtNS
		b = appendVarint(b, 2)                   // snapshot Schema
		b = appendVarint(b, 1)                   // StartEpochNS
		b = appendVarint(b, 1)                   // UptimeNS
		b = appendUvarint(b, 0)                  // no stats
		b = appendUvarint(b, 1)                  // one hist
		b = appendString(b, "h")
		b = append(b, 4)        // SubBits
		b = appendVarint(b, 1)  // Count
		b = appendVarint(b, 1)  // Sum
		b = appendUvarint(b, 1) // one pair
		b = appendUvarint(b, 5) // idx
		return appendVarint(b, 1)
	}
	cases := []struct {
		name string
		body func() []byte
	}{
		{"absurd point count", func() []byte {
			return appendUvarint(prefix(), 1<<40)
		}},
		{"point count beyond payload", func() []byte {
			b := appendUvarint(prefix(), 2) // claims 2 points, carries 1
			return point(b)
		}},
		{"absurd exemplar count", func() []byte {
			return appendUvarint(oneHistPrefix(), 1<<40)
		}},
		{"exemplar index beyond uint16", func() []byte {
			b := appendUvarint(oneHistPrefix(), 1) // one exemplar
			b = appendUvarint(b, 70000)            // idx > 0xffff
			return appendU64(b, 0xfeedface)
		}},
		{"truncated exemplar trace id", func() []byte {
			b := appendUvarint(oneHistPrefix(), 1) // one exemplar
			b = appendUvarint(b, 5)
			return append(b, 0xde, 0xad) // 2 of 8 trace-id bytes
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, m, err := ReadFrame(bytes.NewReader(frame(tc.body())))
			if err == nil {
				t.Fatalf("decoded %+v from corrupt history frame", m)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
	bad := &Message{Kind: KindHistoryResp, From: 1, HistoryResp: &HistoryResp{
		Dump: telemetry.HistoryDump{Schema: 2, Points: []telemetry.HistoryPoint{
			{AtNS: 1, Snap: telemetry.MetricsSnapshot{Schema: 2,
				Hists: []telemetry.QHistSnapshot{{Name: "h",
					ExIdx: []uint16{1, 2}, ExTrace: []uint64{5}}}}}}}}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, 0, bad); err == nil {
		t.Fatal("encoder accepted mismatched ExIdx/ExTrace lengths")
	}
}

// TestBinaryRepairCorrupt runs the corruption table for the repair
// payload: absurd tally counts are refused before allocation, and
// truncated tally lists surface ErrCorrupt rather than partial decodes.
func TestBinaryRepairCorrupt(t *testing.T) {
	frame := func(body []byte) []byte {
		f := []byte{magic0, magic1, BinaryVersion, byte(KindRepairResp), 0, 0, 0, 0, 1}
		f = append(f, byte(len(body)>>24), byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
		return append(f, body...)
	}
	prefix := func() []byte {
		b := []byte{}
		b = appendVarint(b, 3)  // From
		b = appendBool(b, true) // payload present
		b = appendBool(b, true) // Enabled
		b = appendVarint(b, 4)  // Rounds
		b = appendVarint(b, 80) // Messages
		b = appendVarint(b, 2)  // LastFaults
		b = appendVarint(b, 2)  // LastHeals
		b = appendVarint(b, 0)  // LastUnhealed
		return b
	}
	cases := []struct {
		name string
		body func() []byte
	}{
		{"absurd fault tally count", func() []byte {
			return appendUvarint(prefix(), 1<<40)
		}},
		{"tally count beyond payload", func() []byte {
			b := appendUvarint(prefix(), 2) // claims 2 tallies, carries 1
			b = appendString(b, "dead-ref")
			return appendVarint(b, 5)
		}},
		{"truncated tally name", func() []byte {
			b := appendUvarint(prefix(), 1)
			b = appendUvarint(b, 12)   // name claims 12 bytes
			return append(b, 'd', 'e') // carries 2
		}},
		{"missing heal tallies", func() []byte {
			b := appendUvarint(prefix(), 0) // zero fault tallies
			return b                        // heal tally count absent entirely
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, m, err := ReadFrame(bytes.NewReader(frame(tc.body())))
			if err == nil {
				t.Fatalf("decoded %+v from corrupt repair frame", m)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

// TestBinaryMetricsV1Body pins schema evolution on the binary codec: a
// hand-built v1 metrics body — exactly what a pre-history peer emits,
// with no incarnation stamps and no exemplar lists — must decode
// against this (v2) reader, and a v1 snapshot re-encoded by this build
// must produce that same v1 layout.
func TestBinaryMetricsV1Body(t *testing.T) {
	b := []byte{}
	b = appendVarint(b, 3)  // From
	b = appendBool(b, true) // payload present
	b = appendVarint(b, 1)  // Schema: v1 — no epoch/uptime follow
	b = appendUvarint(b, 1) // one stat
	b = appendString(b, "pgrid_rpc_served_total")
	b = appendVarint(b, 42)
	b = appendUvarint(b, 1) // one hist
	b = appendString(b, "h")
	b = append(b, 4)        // SubBits
	b = appendVarint(b, 2)  // Count
	b = appendVarint(b, 30) // Sum
	b = appendUvarint(b, 1) // one pair — and no exemplar list after it
	b = appendUvarint(b, 7)
	b = appendVarint(b, 2)
	frame := []byte{magic0, magic1, BinaryVersion, byte(KindMetricsResp), 0, 0, 0, 0, 1}
	frame = append(frame, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	frame = append(frame, b...)

	_, _, m, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v2 reader rejected v1 body: %v", err)
	}
	snap := m.MetricsResp.Snap
	if snap.Schema != 1 || snap.StartEpochNS != 0 || snap.UptimeNS != 0 {
		t.Fatalf("v1 snapshot decoded wrong: %+v", snap)
	}
	if v, ok := snap.Stat("pgrid_rpc_served_total"); !ok || v != 42 {
		t.Fatalf("v1 stat lost: %v %v", v, ok)
	}
	h, ok := snap.Hist("h")
	if !ok || h.Count != 2 || len(h.ExIdx) != 0 {
		t.Fatalf("v1 hist decoded wrong: %+v", h)
	}

	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, 0, m); err != nil {
		t.Fatalf("re-encode v1 snapshot: %v", err)
	}
	if got := buf.Bytes()[HeaderSize:]; !bytes.Equal(got, b) {
		t.Fatalf("v1 snapshot did not re-encode to the v1 layout:\n got %x\nwant %x", got, b)
	}
}

// TestBinaryPathBitCountOverflow feeds a path whose uvarint bit count is
// 2^64-1: the (nbits+7)/8 byte computation would wrap to 0 and bypass the
// remaining-bytes guard, making the decoder attempt an impossible
// allocation. The decoder must reject it as corrupt, never panic.
func TestBinaryPathBitCountOverflow(t *testing.T) {
	b := []byte{}
	b = appendVarint(b, 1)           // From
	b = appendBool(b, true)          // payload present
	b = appendUvarint(b, ^uint64(0)) // bit count: 2^64-1, wraps (n+7)/8
	b = append(b, 0x00)              // one byte of "path data"
	frame := []byte{magic0, magic1, BinaryVersion, byte(KindQuery), 0, 0, 0, 0, 0}
	frame = append(frame, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	frame = append(frame, b...)
	_, _, _, err := ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for overflowing bit count, got %v", err)
	}
}

// TestBinaryNestedBatchRejected pins both directions: the encoder refuses
// to emit a batch inside a batch, and a hand-built nested frame decodes to
// ErrCorrupt.
func TestBinaryNestedBatchRejected(t *testing.T) {
	nested := &Message{Kind: KindBatch, From: 1, Batch: &BatchReq{Msgs: []Message{
		{Kind: KindBatch, From: 1, Batch: &BatchReq{}}}}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, 0, nested); err == nil {
		t.Fatal("encoder accepted a nested batch")
	}
	// Hand-build the nested frame the encoder refused.
	b := []byte{}
	b = appendVarint(b, 1)         // From
	b = appendUvarint(b, 1)        // one sub-message
	b = append(b, byte(KindBatch)) // which is itself a batch
	b = appendVarint(b, 1)         // sub From
	b = appendUvarint(b, 0)        // empty inner batch
	frame := []byte{magic0, magic1, BinaryVersion, byte(KindBatch), 0, 0, 0, 0, 0}
	frame = append(frame, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	frame = append(frame, b...)
	_, _, _, err := ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for nested batch, got %v", err)
	}
}

// TestBinaryPathPadding pins canonical bit-packing: a path frame whose
// trailing pad bits are non-zero is corrupt, so every path has exactly one
// encoding.
func TestBinaryPathPadding(t *testing.T) {
	b := []byte{}
	b = appendVarint(b, 1)  // From
	b = appendBool(b, true) // payload present
	b = appendUvarint(b, 3) // 3 bits
	b = append(b, 0xff)     // 111 + pad bits 11111 (must be 0)
	frame := []byte{magic0, magic1, BinaryVersion, byte(KindScan), 0, 0, 0, 0, 0}
	frame = append(frame, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	frame = append(frame, b...)
	_, _, _, err := ReadFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for dirty padding, got %v", err)
	}
}

// TestIsBinaryFrame pins the sniffing invariant the whole negotiation
// scheme rests on: a gob frame's first byte can never equal the magic.
func TestIsBinaryFrame(t *testing.T) {
	var gobBuf bytes.Buffer
	if err := WriteMessage(&gobBuf, &Message{Kind: KindInfo, From: 1}); err != nil {
		t.Fatal(err)
	}
	if gobBuf.Bytes()[0] == magic0 {
		t.Fatal("gob frame collides with binary magic — sniffing broken")
	}
	isBin, err := IsBinaryFrame(bufio.NewReader(&gobBuf))
	if err != nil || isBin {
		t.Fatalf("gob frame sniffed as binary (%v, %v)", isBin, err)
	}
	var binBuf bytes.Buffer
	if err := WriteFrame(&binBuf, 0, 0, &Message{Kind: KindInfo, From: 1}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&binBuf)
	isBin, err = IsBinaryFrame(br)
	if err != nil || !isBin {
		t.Fatalf("binary frame not sniffed (%v, %v)", isBin, err)
	}
	// Peek must not consume: the frame still decodes.
	if _, _, _, err := ReadFrame(br); err != nil {
		t.Fatalf("frame unreadable after sniff: %v", err)
	}
}

// TestBinaryPathRoundTrip sweeps path lengths across byte boundaries.
func TestBinaryPathRoundTrip(t *testing.T) {
	for n := 0; n <= 67; n++ {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte('0' + byte((i*7+n)%2))
		}
		p := bitpath.MustParse(sb.String())
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 0, 0, &Message{Kind: KindScan, From: 1,
			Scan: &ScanReq{Prefix: p}}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, _, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Scan.Prefix != p {
			t.Fatalf("n=%d: %q != %q", n, got.Scan.Prefix, p)
		}
	}
}

// FuzzReadFrame is the binary twin of FuzzReadMessage: arbitrary bytes in,
// never a panic, hang, or over-allocation; decoded messages must re-encode.
func FuzzReadFrame(f *testing.F) {
	for _, m := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 3, 0, m); err == nil {
			f.Add(buf.Bytes())
		}
		buf.Reset()
		if err := WriteFrame(&buf, 4, FlagGob|FlagResponse, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte{magic0})
	f.Add([]byte{magic0, magic1, BinaryVersion, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ {
			_, _, m, err := ReadFrame(r)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, 0, 0, m); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

// FuzzReadAuto mutates across BOTH codecs through the sniffing reader —
// the full corpus of FuzzReadMessage plus binary frames. Corrupt input of
// either framing must come back as an error, never a panic.
func FuzzReadAuto(f *testing.F) {
	var gobFrame bytes.Buffer
	WriteMessage(&gobFrame, &Message{Kind: KindQuery, From: 2,
		Query: &QueryReq{Key: bitpath.MustParse("0101"), Level: 1}})
	f.Add(gobFrame.Bytes())
	var binFrame bytes.Buffer
	WriteFrame(&binFrame, 9, 0, &Message{Kind: KindHealthResp, From: 4,
		HealthResp: &HealthResp{Rounds: 2, Digest: health.Digest{Addr: 4,
			Path: bitpath.MustParse("01"), Entries: 3, MaxVersion: 17,
			IndexHash: 0xabcdef, RefCounts: []int{2, 1}, Buddies: 1}}})
	f.Add(binFrame.Bytes())
	mixed := append(append([]byte{}, gobFrame.Bytes()...), binFrame.Bytes()...)
	f.Add(mixed)
	f.Add([]byte{0x50, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			if _, err := ReadAuto(br); err != nil {
				return
			}
		}
	})
}

// BenchmarkCodecEncode compares encode cost per codec; the binary side
// should sit near zero allocs thanks to the pooled buffers.
func BenchmarkCodecEncode(b *testing.B) {
	m := &Message{Kind: KindQueryResp, From: 4, QueryResp: &QueryResp{
		Found: true, Peer: 11, Path: bitpath.MustParse("010011"), Messages: 5,
		Spans: []trace.Span{{ID: 1, Peer: 2, Path: bitpath.MustParse("01"), Matched: true}}}}
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			WriteMessage(io.Discard, m)
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			WriteFrame(io.Discard, uint32(i), 0, m)
		}
	})
}
