package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	m := &Message{
		Kind:  KindQuery,
		From:  3,
		Query: &QueryReq{Key: bitpath.MustParse("0101"), Level: 2},
	}
	got := roundTrip(t, m)
	if got.Kind != KindQuery || got.From != 3 {
		t.Fatalf("envelope = %+v", got)
	}
	if got.Query == nil || got.Query.Key != "0101" || got.Query.Level != 2 {
		t.Fatalf("payload = %+v", got.Query)
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindExchange,
		From: 7,
		Exchange: &ExchangeReq{
			Path:  bitpath.MustParse("01"),
			Refs:  []RefSet{{Addrs: []addr.Addr{1, 2}}, {Addrs: []addr.Addr{5}}},
			Depth: 1,
		},
	}
	got := roundTrip(t, m)
	if got.Exchange == nil || got.Exchange.Path != "01" || len(got.Exchange.Refs) != 2 {
		t.Fatalf("payload = %+v", got.Exchange)
	}
	if s := got.Exchange.Refs[0].ToSet(); !s.Contains(1) || !s.Contains(2) {
		t.Errorf("refs = %v", s.String())
	}
}

func TestExchangeRespRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindExchangeResp,
		From: 2,
		ExchangeResp: &ExchangeResp{
			BasePath:   bitpath.MustParse("0"),
			Extend:     true,
			ExtendBit:  1,
			ExtendRefs: RefSet{Addrs: []addr.Addr{9}},
			SetRefs:    map[int]RefSet{1: {Addrs: []addr.Addr{4, 5}}},
			ForwardTo:  []addr.Addr{11, 12},
			Handover: []store.Entry{
				{Key: bitpath.MustParse("10"), Name: "x", Holder: 1, Version: 3},
			},
		},
	}
	got := roundTrip(t, m)
	r := got.ExchangeResp
	if r == nil || !r.Extend || r.ExtendBit != 1 || len(r.ForwardTo) != 2 {
		t.Fatalf("payload = %+v", r)
	}
	if len(r.Handover) != 1 || r.Handover[0].Name != "x" || r.Handover[0].Version != 3 {
		t.Errorf("handover = %v", r.Handover)
	}
	if rs, ok := r.SetRefs[1]; !ok || len(rs.Addrs) != 2 {
		t.Errorf("setrefs = %v", r.SetRefs)
	}
}

func TestApplyGetInfoRoundTrip(t *testing.T) {
	e := store.Entry{Key: bitpath.MustParse("110"), Name: "f", Holder: 4, Version: 2}
	if got := roundTrip(t, &Message{Kind: KindApply, Apply: &ApplyReq{Entry: e}}); got.Apply.Entry != e {
		t.Errorf("apply = %+v", got.Apply)
	}
	if got := roundTrip(t, &Message{Kind: KindGet, Get: &GetReq{Key: e.Key, Name: "f"}}); got.Get.Name != "f" {
		t.Errorf("get = %+v", got.Get)
	}
	info := &InfoResp{Addr: 5, Path: bitpath.MustParse("01"), Entries: 7}
	if got := roundTrip(t, &Message{Kind: KindInfoResp, InfoResp: info}); got.InfoResp.Entries != 7 {
		t.Errorf("info = %+v", got.InfoResp)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, &Message{Kind: KindInfo, From: addr.Addr(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.From != addr.Addr(i) {
			t.Errorf("frame %d from = %v", i, m.From)
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], MaxFrameSize+1)
	buf.Write(lenb[:])
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestReadTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindInfo}); err != nil {
		t.Fatal(err)
	}
	tr := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMessage(bytes.NewReader(tr)); err == nil {
		t.Error("truncated frame decoded")
	}
}

// failingWriter errors after accepting n bytes.
type failingWriter struct {
	n int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	take := len(p)
	if take > f.n {
		take = f.n
	}
	f.n -= take
	if take < len(p) {
		return take, io.ErrClosedPipe
	}
	return take, nil
}

func TestWriteMessageErrorPaths(t *testing.T) {
	m := &Message{Kind: KindInfo, From: 1}
	// Length prefix fails.
	if err := WriteMessage(&failingWriter{n: 0}, m); err == nil {
		t.Error("length write failure not reported")
	}
	// Body fails.
	if err := WriteMessage(&failingWriter{n: 4}, m); err == nil {
		t.Error("body write failure not reported")
	}
	// Unencodable payload: gob cannot encode nil interface inside... all
	// our payloads are concrete, so instead check a huge frame still
	// round-trips under the cap.
	big := &Message{Kind: KindApply, Apply: &ApplyReq{Entry: store.Entry{
		Key: bitpath.MustParse("01"), Name: string(make([]byte, 1<<16)), Version: 1}}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, big); err != nil {
		t.Fatalf("large frame: %v", err)
	}
	if _, err := ReadMessage(&buf); err != nil {
		t.Fatalf("large frame read: %v", err)
	}
}

func TestReadMessageTruncatedLength(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated length prefix accepted")
	}
}

func TestRefSetConversions(t *testing.T) {
	s := addr.NewSet(3, 1, 2)
	rs := FromSet(s)
	back := rs.ToSet()
	if back.Len() != 3 || !back.Contains(1) || !back.Contains(2) || !back.Contains(3) {
		t.Errorf("round trip = %v", back.String())
	}
}

func TestKindString(t *testing.T) {
	if KindQuery.String() != "query" || KindExchangeResp.String() != "exchange-resp" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}
