// Package wire defines the message protocol spoken between networked
// P-Grid nodes and a length-prefixed gob codec for carrying it over
// byte streams (TCP). The protocol has one round trip per algorithm step:
// queries are forwarded server-side exactly as in Fig. 2, and exchanges
// ship the initiator's state to the responder, which computes the joint
// decision of Fig. 3 and returns the initiator's half.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// Kind discriminates message payloads.
type Kind uint8

// Message kinds. Requests have even values; their responses follow at +1
// (KindError is the odd man out at 14; 15 stays reserved so later kinds
// keep the parity convention). New kinds are only ever appended — the
// numbering is part of the wire format, and renumbering would make
// mixed-version communities misread each other.
const (
	KindQuery Kind = iota
	KindQueryResp
	KindExchange
	KindExchangeResp
	KindApply
	KindApplyResp
	KindGet
	KindGetResp
	KindInfo
	KindInfoResp
	KindScan
	KindScanResp
	KindStats
	KindStatsResp
	KindError
	_ // reserved: keeps requests even after the unpaired KindError
	KindTraces
	KindTracesResp
	KindHealth
	KindHealthResp
	KindBatch
	KindBatchResp
	KindHello
	KindHelloResp
	KindMetrics
	KindMetricsResp
	KindHistory
	KindHistoryResp
	KindRepair
	KindRepairResp
)

// kindNames is the Kind → label table. Hoisted to package level: String
// sits on log and metric hot paths (every RPC stamps its kind at least
// twice), and rebuilding the array per call showed up in profiles.
var kindNames = [...]string{"query", "query-resp", "exchange", "exchange-resp",
	"apply", "apply-resp", "get", "get-resp", "info", "info-resp",
	"scan", "scan-resp", "stats", "stats-resp", "error", "kind(15)",
	"traces", "traces-resp", "health", "health-resp",
	"batch", "batch-resp", "hello", "hello-resp",
	"metrics", "metrics-resp", "history", "history-resp",
	"repair", "repair-resp"}

// String names the kind for logs.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindNames returns every kind label in wire order. Display tools
// (pgridctl top) use it to render per-kind tables in a stable order.
func KindNames() []string {
	return append([]string(nil), kindNames[:]...)
}

// Message is the envelope for every protocol payload. Exactly one payload
// pointer matching Kind is set.
type Message struct {
	Kind Kind
	From addr.Addr

	Query        *QueryReq
	QueryResp    *QueryResp
	Exchange     *ExchangeReq
	ExchangeResp *ExchangeResp
	Apply        *ApplyReq
	ApplyResp    *ApplyResp
	Get          *GetReq
	GetResp      *GetResp
	InfoResp     *InfoResp
	Scan         *ScanReq
	ScanResp     *ScanResp
	StatsResp    *StatsResp
	Traces       *TracesReq
	TracesResp   *TracesResp
	Health       *HealthReq
	HealthResp   *HealthResp
	Batch        *BatchReq
	BatchResp    *BatchResp
	Hello        *HelloReq
	HelloResp    *HelloResp
	MetricsResp  *MetricsResp
	History      *HistoryReq
	HistoryResp  *HistoryResp
	Repair       *RepairReq
	RepairResp   *RepairResp
	Error        string
}

// QueryReq asks the receiver to resolve the remaining query path, having
// already consumed Level bits of its own path (Fig. 2's query(a, p, l)).
type QueryReq struct {
	Key   bitpath.Path
	Level int
	// Ctx is the distributed trace context, nil for untraced queries.
	// Encodings that predate tracing decode to nil (gob leaves absent
	// fields zero), and old receivers ignore the field, so traced and
	// untraced peers interoperate.
	Ctx *trace.SpanContext
}

// QueryResp reports the search outcome.
type QueryResp struct {
	Found bool
	// Peer is the responsible peer (when Found).
	Peer addr.Addr
	// Path is the responsible peer's path (when Found).
	Path bitpath.Path
	// Messages is the number of successful peer contacts spent downstream
	// of the receiver (the receiver adds its own hop count).
	Messages int
	// Backtracks is the number of contacted subtrees downstream of the
	// receiver that failed to resolve the query.
	Backtracks int
	// Spans carries the hops recorded at the receiver and everything
	// downstream of it, in visit order, when the request was traced
	// (empty otherwise, and absent on pre-tracing encodings).
	Spans []trace.Span
}

// ExchangeReq carries the initiator's state snapshot: the responder
// computes the Fig. 3 decision for both sides.
type ExchangeReq struct {
	Path bitpath.Path
	// Refs[i] holds the initiator's references at level i+1.
	Refs []RefSet
	// Depth is the recursion depth r.
	Depth int
}

// RefSet is a gob-friendly reference set.
type RefSet struct {
	Addrs []addr.Addr
}

// ToSet converts to an addr.Set.
func (r RefSet) ToSet() addr.Set { return addr.NewSet(r.Addrs...) }

// FromSet converts from an addr.Set.
func FromSet(s addr.Set) RefSet { return RefSet{Addrs: s.Slice()} }

// ExchangeResp tells the initiator how to update itself.
type ExchangeResp struct {
	// BasePath echoes the initiator path the decision was computed from;
	// the initiator applies the decision only if its path is unchanged
	// (optimistic concurrency, like a real peer discarding a stale reply).
	BasePath bitpath.Path
	// Extend, when true, appends ExtendBit with ExtendRefs at the new
	// level (cases 1–3 seen from the initiator's side).
	Extend     bool
	ExtendBit  byte
	ExtendRefs RefSet
	// SetRefs replaces reference sets at existing levels (common-level
	// mixing, case 2/3 additions). Keys are 1-based levels.
	SetRefs map[int]RefSet
	// AddBuddy records the responder as a replica (same path at maxl).
	AddBuddy bool
	// ForwardTo asks the initiator to recursively exchange with these
	// peers at Depth+1 (case 4).
	ForwardTo []addr.Addr
	// Handover carries index entries that fell out of the responder's
	// narrowed responsibility and now belong to the initiator's side.
	Handover []store.Entry
}

// ApplyReq installs an index entry at the receiver (update propagation).
type ApplyReq struct {
	Entry store.Entry
}

// ApplyResp reports whether the entry was new or fresher.
type ApplyResp struct {
	Changed bool
}

// GetReq reads the entry stored under (Key, Name) at the receiver.
type GetReq struct {
	Key  bitpath.Path
	Name string
}

// GetResp returns the entry, if present.
type GetResp struct {
	Entry store.Entry
	Found bool
}

// ScanReq asks the receiver for every index entry under a key prefix
// (textual prefix search with order-preserving keys).
type ScanReq struct {
	Prefix bitpath.Path
}

// ScanResp returns the matching entries.
type ScanResp struct {
	Entries []store.Entry
}

// Stat is one named counter from a node's telemetry registry. Histograms
// are flattened into their _bucket/_sum/_count series before shipping.
type Stat struct {
	Name  string
	Value int64
}

// StatsResp returns a snapshot of the receiver's telemetry registry.
// Schema versions the flattening (currently telemetry.SchemaVersion); Stats
// is empty when the receiver runs with telemetry disabled.
type StatsResp struct {
	Schema int
	Stats  []Stat
}

// MetricsResp answers KindMetrics (a payload-less request, like KindStats)
// with the receiver's full mergeable telemetry snapshot: flattened
// counters/gauges plus sparse quantile-histogram buckets that a collector
// can sum across the community. Snap.Schema carries
// telemetry.MetricsSchemaVersion; a receiver running with telemetry
// disabled answers with an empty, schema-stamped snapshot.
type MetricsResp struct {
	Snap telemetry.MetricsSnapshot
}

// HistoryReq asks the receiver for its telemetry flight-data recorder:
// the ring of periodic metrics samples. WindowNS bounds how far back
// (0 = full retention); MaxPoints caps the newest points returned
// (0 = all held). Pre-history peers answer with KindError and callers
// degrade to the one-shot KindMetrics snapshot (see node.FetchHistory).
type HistoryReq struct {
	WindowNS  int64
	MaxPoints int64
}

// HistoryResp returns the receiver's sampled metrics history. A node
// running without a history ring answers with an empty, schema-stamped
// dump (zero points) rather than an error, so "feature off" and
// "feature unknown" stay distinguishable on the wire.
type HistoryResp struct {
	Dump telemetry.HistoryDump
}

// RepairReq asks the receiver for its self-healing repair status.
// Trigger additionally runs one synchronous repair round first, so
// `pgridctl repair -run` can force healing on demand; peers running
// without a repairer ignore Trigger and answer Enabled=false.
type RepairReq struct {
	Trigger bool
}

// RepairResp returns the receiver's repair status. A node running
// without a repairer answers an Enabled=false status rather than an
// error, so "repair off" and "repair unknown" stay distinguishable on
// the wire.
type RepairResp struct {
	Status repair.Status
}

// TracesReq asks the receiver for its flight recorder's most recent
// sampled traces (Limit <= 0 means all retained).
type TracesReq struct {
	Limit int
}

// TracesResp returns the recorder snapshot, newest first. Total counts
// every trace ever recorded, including ones the ring has evicted; Traces
// is empty when the receiver runs with tracing disabled.
type TracesResp struct {
	Total  uint64
	Traces []trace.Trace
}

// HealthReq asks the receiver for its health digest. WantLiveness asks the
// receiver to include its per-level probe tally (the default pgridctl and
// the crawler use; false keeps the response minimal for high-frequency
// pollers).
type HealthReq struct {
	WantLiveness bool
}

// HealthResp returns the receiver's replica digest. Rounds counts the
// probe rounds the receiver's background prober has completed (0 when
// probing is off). Pre-health peers answer KindHealth with KindError, and
// digests decoded from pre-health encodings come back zero-valued — both
// directions interoperate (see compat tests).
type HealthResp struct {
	Digest health.Digest
	Rounds int64
}

// BatchReq carries several independent requests in one frame — the fan-out
// paths (BFS publish handover, the crawler's info+health pair) pay one
// round trip per peer instead of one per request. Sub-messages must not
// themselves be batches; the receiver answers nesting with KindError.
type BatchReq struct {
	Msgs []Message
}

// BatchResp returns one response per request, in request order. A
// sub-request the receiver could not serve yields a KindError sub-message
// in its slot; the batch as a whole still succeeds.
type BatchResp struct {
	Msgs []Message
}

// HelloReq opens codec negotiation on a fresh connection: the dialer
// announces the highest binary codec version it speaks. Peers that predate
// the binary codec never see a well-formed hello (the frame header does not
// parse as a gob length prefix), drop the connection, and the dialer falls
// back to the gob codec — see ReadFrame and the transport negotiation in
// internal/node.
type HelloReq struct {
	MaxCodec uint8
}

// HelloResp accepts the negotiation: the receiver picks
// min(HelloReq.MaxCodec, BinaryVersion) and both sides speak that framing
// for the life of the connection.
type HelloResp struct {
	Codec uint8
}

// InfoResp describes the receiver's current state (used by diagnostics and
// the ctl tool).
type InfoResp struct {
	Addr    addr.Addr
	Path    bitpath.Path
	Refs    []RefSet
	Buddies RefSet
	Entries int
}

// MaxFrameSize bounds a single encoded message; larger frames are
// rejected as corrupt rather than allocated.
const MaxFrameSize = 16 << 20

// ErrCorrupt reports a frame that arrived but could not be decoded — an
// oversized length prefix or a gob stream that does not parse. Corruption
// is classified apart from unreachability (internal/resilience): the peer
// answered, with garbage, so retrying the same request is waste.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrFrameTooLarge reports an oversized or corrupt length prefix. It
// matches ErrCorrupt under errors.Is.
var ErrFrameTooLarge = fmt.Errorf("%w: exceeds maximum size", ErrCorrupt)

// WriteMessage encodes m as a length-prefixed gob frame.
func WriteMessage(w io.Writer, m *Message) error {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(buf.b)))
	if _, err := w.Write(lenb[:]); err != nil {
		return fmt.Errorf("wire: write length: %w", err)
	}
	if _, err := w.Write(buf.b); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadMessage decodes one length-prefixed gob frame.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	var m Message
	if err := gob.NewDecoder(&frameBuffer{b: body}).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return &m, nil
}

// frameBuffer is a minimal in-memory io.ReadWriter for gob framing.
type frameBuffer struct {
	b []byte
	r int
}

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

func (f *frameBuffer) Read(p []byte) (int, error) {
	if f.r >= len(f.b) {
		return 0, io.EOF
	}
	n := copy(p, f.b[f.r:])
	f.r += n
	return n, nil
}
