package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder: it must
// never panic or over-allocate, only return messages or errors.
func FuzzReadMessage(f *testing.F) {
	// Seed with a couple of valid frames and some junk.
	var valid bytes.Buffer
	WriteMessage(&valid, &Message{Kind: KindInfo, From: 3})
	f.Add(valid.Bytes())
	var q bytes.Buffer
	WriteMessage(&q, &Message{Kind: KindQuery, Query: &QueryReq{Key: bitpath.MustParse("0101"), Level: 1}})
	f.Add(q.Bytes())
	// A traced query and a span-carrying response, so the corpus mutates
	// around the trace-context encoding too.
	var tq bytes.Buffer
	WriteMessage(&tq, &Message{Kind: KindQuery, Query: &QueryReq{
		Key: bitpath.MustParse("11"), Level: 0,
		Ctx: &trace.SpanContext{TraceID: 7, Budget: 4, Sampled: true}}})
	f.Add(tq.Bytes())
	var tr bytes.Buffer
	WriteMessage(&tr, &Message{Kind: KindQueryResp, QueryResp: &QueryResp{
		Found: true, Peer: 2, Path: bitpath.MustParse("11"),
		Spans: []trace.Span{{ID: 1, Peer: 2, Path: bitpath.MustParse("1"), Matched: true}}}})
	f.Add(tr.Bytes())
	// A pre-tracing frame (query encoded without the Ctx field), proving
	// old captures stay in the decodable corpus.
	var legacyBody bytes.Buffer
	gob.NewEncoder(&legacyBody).Encode(&struct {
		Kind  Kind
		From  addr.Addr
		Query *struct {
			Key   bitpath.Path
			Level int
		}
	}{Kind: KindQuery, From: 1, Query: &struct {
		Key   bitpath.Path
		Level int
	}{Key: bitpath.MustParse("010"), Level: 1}})
	var legacy bytes.Buffer
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(legacyBody.Len()))
	legacy.Write(lenb[:])
	legacy.Write(legacyBody.Bytes())
	f.Add(legacy.Bytes())
	// A digest-carrying health response and a liveness-requesting health
	// request, so the corpus mutates around the digest encoding too.
	var hr bytes.Buffer
	WriteMessage(&hr, &Message{Kind: KindHealthResp, From: 4, HealthResp: &HealthResp{
		Rounds: 2,
		Digest: health.Digest{Addr: 4, Path: bitpath.MustParse("01"),
			Entries: 3, MaxVersion: 17, IndexHash: 0xabcdef,
			RefCounts: []int{2, 1}, Buddies: 1,
			Liveness: []health.LevelProbe{{Level: 1, Live: 4, Dead: 2}}}}})
	f.Add(hr.Bytes())
	var hq bytes.Buffer
	WriteMessage(&hq, &Message{Kind: KindHealth, From: 0, Health: &HealthReq{WantLiveness: true}})
	f.Add(hq.Bytes())
	// A snapshot-carrying metrics response, so the corpus mutates around
	// the sparse histogram encoding too.
	var mr bytes.Buffer
	WriteMessage(&mr, &Message{Kind: KindMetricsResp, From: 5, MetricsResp: &MetricsResp{
		Snap: telemetry.MetricsSnapshot{Schema: telemetry.MetricsSchemaVersion,
			Stats: []telemetry.Stat{{Name: "pgrid_rpc_served_total", Value: 42}},
			Hists: []telemetry.QHistSnapshot{{Name: `lat{kind="query"}`, SubBits: 4,
				Count: 3, Sum: 900, Idx: []uint16{9, 77}, N: []int64{2, 1}}}}}})
	f.Add(mr.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ { // read a few frames in sequence
			m, err := ReadMessage(r)
			if err != nil {
				return
			}
			// A decoded message must re-encode.
			var buf bytes.Buffer
			if err := WriteMessage(&buf, m); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-shaped messages — with and without a trace
// context — and verifies they decode to the same payload. traced=false
// exercises exactly the pre-tracing encoding (a nil Ctx is absent from
// the gob stream), so every run also proves backward-compatible
// decoding of old-style frames.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), int32(1), "0101", 2, false, uint64(0), 0)
	f.Add(uint8(6), int32(9), "1", 0, false, uint64(3), 1)
	f.Add(uint8(0), int32(2), "11", 0, true, uint64(42), 8)
	f.Add(uint8(16), int32(5), "0", 1, true, uint64(1), 64)
	f.Fuzz(func(t *testing.T, kind uint8, from int32, key string, level int, traced bool, traceID uint64, budget int) {
		p, err := bitpath.Parse(key)
		if err != nil {
			return
		}
		m := &Message{Kind: Kind(kind % 20), From: addrOf(from),
			Query: &QueryReq{Key: p, Level: level}}
		if traced {
			m.Query.Ctx = &trace.SpanContext{TraceID: traceID, Parent: traceID / 2,
				Budget: budget, Sampled: true}
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != m.Kind || got.From != m.From {
			t.Fatalf("envelope mismatch: %+v vs %+v", got, m)
		}
		if got.Query == nil || got.Query.Key != p || got.Query.Level != level {
			t.Fatalf("payload mismatch: %+v", got.Query)
		}
		if !traced && got.Query.Ctx != nil {
			t.Fatalf("untraced query decoded a context: %+v", got.Query.Ctx)
		}
		if traced && (got.Query.Ctx == nil || *got.Query.Ctx != *m.Query.Ctx) {
			t.Fatalf("trace context mismatch: %+v vs %+v", got.Query.Ctx, m.Query.Ctx)
		}
	})
}

// FuzzHealthRoundTrip encodes fuzz-shaped digest payloads and verifies
// they decode to the same digest — the health twin of FuzzRoundTrip, so
// the crawler's wire surface holds up under arbitrary census shapes.
func FuzzHealthRoundTrip(f *testing.F) {
	f.Add(int32(0), "", 0, uint64(0), uint64(0), uint8(0), int64(0), int64(0))
	f.Add(int32(3), "0110", 12, uint64(99), uint64(0xfeed), uint8(3), int64(7), int64(1))
	f.Add(int32(1000), "1", 1, uint64(1)<<63, ^uint64(0), uint8(40), int64(1)<<40, int64(0))
	f.Fuzz(func(t *testing.T, from int32, path string, entries int, maxVer, hash uint64, levels uint8, live, dead int64) {
		p, err := bitpath.Parse(path)
		if err != nil {
			return
		}
		d := health.Digest{Addr: addrOf(from), Path: p, Entries: entries,
			MaxVersion: maxVer, IndexHash: hash, Buddies: int(levels)}
		for l := 1; l <= int(levels%8); l++ {
			d.RefCounts = append(d.RefCounts, l)
			d.Liveness = append(d.Liveness, health.LevelProbe{Level: l, Live: live, Dead: dead})
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Message{Kind: KindHealthResp, From: addrOf(from),
			HealthResp: &HealthResp{Digest: d, Rounds: live + dead}}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.HealthResp == nil {
			t.Fatal("health payload lost")
		}
		g := got.HealthResp.Digest
		if g.Addr != d.Addr || g.Path != d.Path || g.Entries != d.Entries ||
			g.MaxVersion != d.MaxVersion || g.IndexHash != d.IndexHash || g.Buddies != d.Buddies {
			t.Fatalf("digest mismatch: %+v vs %+v", g, d)
		}
		if len(g.RefCounts) != len(d.RefCounts) || len(g.Liveness) != len(d.Liveness) {
			t.Fatalf("slices mismatch: %+v vs %+v", g, d)
		}
		for i := range d.Liveness {
			if g.Liveness[i] != d.Liveness[i] || g.RefCounts[i] != d.RefCounts[i] {
				t.Fatalf("level %d mismatch: %+v vs %+v", i, g, d)
			}
		}
	})
}

// FuzzMetricsRoundTrip encodes fuzz-shaped metrics snapshots through BOTH
// codecs and verifies they decode to the same snapshot — the federation
// twin of FuzzHealthRoundTrip.
func FuzzMetricsRoundTrip(f *testing.F) {
	f.Add(int32(0), 0, "", int64(0), uint8(4), uint16(0), int64(1), uint8(0))
	f.Add(int32(3), 1, "pgrid_rpc_served_total", int64(42), uint8(4), uint16(900), int64(7), uint8(5))
	f.Add(int32(-1), 9, "x", int64(-8), uint8(7), uint16(0xffff), int64(1)<<40, uint8(20))
	f.Fuzz(func(t *testing.T, from int32, schema int, name string, value int64, subBits uint8, idx0 uint16, n0 int64, buckets uint8) {
		if from < -1 {
			from &= 0x7fffffff // the binary codec (rightly) rejects addresses below addr.Nil
		}
		snap := telemetry.MetricsSnapshot{Schema: schema,
			Stats: []telemetry.Stat{{Name: name, Value: value}}}
		h := telemetry.QHistSnapshot{Name: name, SubBits: subBits}
		for i := 0; i < int(buckets%32); i++ {
			h.Idx = append(h.Idx, idx0+uint16(i))
			h.N = append(h.N, n0)
			h.Count += n0
			h.Sum += n0 * int64(i)
		}
		snap.Hists = append(snap.Hists, h)
		m := &Message{Kind: KindMetricsResp, From: addrOf(from), MetricsResp: &MetricsResp{Snap: snap}}

		check := func(codec string, got *Message, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s decode: %v", codec, err)
			}
			if got.MetricsResp == nil {
				t.Fatalf("%s: metrics payload lost", codec)
			}
			g := got.MetricsResp.Snap
			if g.Schema != schema || len(g.Stats) != 1 || g.Stats[0] != snap.Stats[0] {
				t.Fatalf("%s: stats mismatch: %+v vs %+v", codec, g, snap)
			}
			gh := g.Hists[0]
			if gh.Name != h.Name || gh.SubBits != h.SubBits || gh.Count != h.Count ||
				gh.Sum != h.Sum || len(gh.Idx) != len(h.Idx) {
				t.Fatalf("%s: hist mismatch: %+v vs %+v", codec, gh, h)
			}
			for i := range h.Idx {
				if gh.Idx[i] != h.Idx[i] || gh.N[i] != h.N[i] {
					t.Fatalf("%s: pair %d mismatch: %+v vs %+v", codec, i, gh, h)
				}
			}
		}

		var gb bytes.Buffer
		if err := WriteMessage(&gb, m); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		got, err := ReadMessage(&gb)
		check("gob", got, err)

		var bb bytes.Buffer
		if err := WriteFrame(&bb, 1, FlagResponse, m); err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		_, _, got, err = ReadFrame(&bb)
		check("binary", got, err)
	})
}

// FuzzHistoryRoundTrip encodes fuzz-shaped history dumps — mixed-schema
// points, incarnation stamps, tail exemplars — through BOTH codecs and
// verifies they decode to the same dump. The history twin of
// FuzzMetricsRoundTrip.
func FuzzHistoryRoundTrip(f *testing.F) {
	f.Add(int32(0), int64(0), uint8(0), "", int64(0), uint16(0), uint64(0), int64(0))
	f.Add(int32(3), int64(2_000_000_000), uint8(4), "pgrid_rpc_served_total", int64(42), uint16(900), uint64(0xfeedface), int64(1700000000123456789))
	f.Add(int32(-1), int64(1)<<40, uint8(9), `lat{kind="query"}`, int64(-8), uint16(0xffff), ^uint64(0), int64(-5))
	f.Fuzz(func(t *testing.T, from int32, interval int64, points uint8, name string, value int64, exIdx uint16, exTrace uint64, epoch int64) {
		if from < -1 {
			from &= 0x7fffffff // the binary codec (rightly) rejects addresses below addr.Nil
		}
		dump := telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion, IntervalNS: interval}
		for i := 0; i < int(points%9); i++ {
			snap := telemetry.MetricsSnapshot{
				// Odd points ship the v1 layout, as a ring that survived a
				// rolling upgrade would.
				Schema:       telemetry.MetricsSchemaVersion - i%2,
				StartEpochNS: epoch + int64(i%3),
				UptimeNS:     int64(i) * interval,
				Stats:        []telemetry.Stat{{Name: name, Value: value + int64(i)}},
			}
			if snap.Schema < 2 {
				snap.StartEpochNS, snap.UptimeNS = 0, 0
			}
			h := telemetry.QHistSnapshot{Name: name, SubBits: 4,
				Idx: []uint16{exIdx}, N: []int64{1 + int64(i)}, Count: 1 + int64(i), Sum: value}
			if snap.Schema >= 2 && exTrace != 0 {
				h.ExIdx = []uint16{exIdx}
				h.ExTrace = []uint64{exTrace}
			}
			snap.Hists = []telemetry.QHistSnapshot{h}
			dump.Points = append(dump.Points, telemetry.HistoryPoint{
				AtNS: epoch + int64(i)*interval, Snap: snap})
		}
		m := &Message{Kind: KindHistoryResp, From: addrOf(from), HistoryResp: &HistoryResp{Dump: dump}}

		check := func(codec string, got *Message, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s decode: %v", codec, err)
			}
			if got.HistoryResp == nil {
				t.Fatalf("%s: history payload lost", codec)
			}
			g := got.HistoryResp.Dump
			if g.Schema != dump.Schema || g.IntervalNS != dump.IntervalNS || len(g.Points) != len(dump.Points) {
				t.Fatalf("%s: dump mismatch: %+v vs %+v", codec, g, dump)
			}
			for i, want := range dump.Points {
				gp := g.Points[i]
				if gp.AtNS != want.AtNS || gp.Snap.Schema != want.Snap.Schema ||
					gp.Snap.StartEpochNS != want.Snap.StartEpochNS ||
					gp.Snap.UptimeNS != want.Snap.UptimeNS {
					t.Fatalf("%s: point %d mismatch: %+v vs %+v", codec, i, gp, want)
				}
				gh, wh := gp.Snap.Hists[0], want.Snap.Hists[0]
				if gh.Name != wh.Name || len(gh.Idx) != len(wh.Idx) || len(gh.ExIdx) != len(wh.ExIdx) {
					t.Fatalf("%s: point %d hist mismatch: %+v vs %+v", codec, i, gh, wh)
				}
				for j := range wh.ExIdx {
					if gh.ExIdx[j] != wh.ExIdx[j] || gh.ExTrace[j] != wh.ExTrace[j] {
						t.Fatalf("%s: point %d exemplar %d mismatch: %+v vs %+v", codec, i, j, gh, wh)
					}
				}
			}
		}

		var gb bytes.Buffer
		if err := WriteMessage(&gb, m); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		got, err := ReadMessage(&gb)
		check("gob", got, err)

		var bb bytes.Buffer
		if err := WriteFrame(&bb, 1, FlagResponse, m); err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		_, _, got, err = ReadFrame(&bb)
		check("binary", got, err)
	})
}

// FuzzRepairRoundTrip encodes fuzz-shaped repair statuses — arbitrary
// tally labels and counts, enabled or not — through BOTH codecs and
// verifies they decode to the same status.
func FuzzRepairRoundTrip(f *testing.F) {
	f.Add(int32(0), false, int64(0), int64(0), "", int64(0), uint8(0))
	f.Add(int32(3), true, int64(12), int64(480), "wrong-side-ref", int64(9), uint8(3))
	f.Add(int32(-1), true, int64(1)<<40, int64(-7), "evict-ref", int64(-2), uint8(40))
	f.Fuzz(func(t *testing.T, from int32, enabled bool, rounds, messages int64, label string, n0 int64, tallies uint8) {
		if from < -1 {
			from &= 0x7fffffff // the binary codec (rightly) rejects addresses below addr.Nil
		}
		st := repair.Status{Enabled: enabled, Rounds: rounds, Messages: messages,
			LastFaults: n0, LastHeals: rounds, LastUnhealed: messages}
		for i := 0; i < int(tallies%8); i++ {
			st.Faults = append(st.Faults, repair.Tally{Name: fmt.Sprintf("%s-%d", label, i), N: n0 + int64(i)})
			st.Heals = append(st.Heals, repair.Tally{Name: fmt.Sprintf("h-%s-%d", label, i), N: n0 - int64(i)})
		}
		m := &Message{Kind: KindRepairResp, From: addrOf(from), RepairResp: &RepairResp{Status: st}}

		check := func(codec string, got *Message, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s decode: %v", codec, err)
			}
			if got.RepairResp == nil {
				t.Fatalf("%s: repair payload lost", codec)
			}
			g := got.RepairResp.Status
			if g.Enabled != st.Enabled || g.Rounds != st.Rounds || g.Messages != st.Messages ||
				g.LastFaults != st.LastFaults || g.LastHeals != st.LastHeals || g.LastUnhealed != st.LastUnhealed ||
				len(g.Faults) != len(st.Faults) || len(g.Heals) != len(st.Heals) {
				t.Fatalf("%s: status mismatch: %+v vs %+v", codec, g, st)
			}
			for i := range st.Faults {
				if g.Faults[i] != st.Faults[i] || g.Heals[i] != st.Heals[i] {
					t.Fatalf("%s: tally %d mismatch: %+v vs %+v", codec, i, g, st)
				}
			}
		}

		var gb bytes.Buffer
		if err := WriteMessage(&gb, m); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		got, err := ReadMessage(&gb)
		check("gob", got, err)

		var bb bytes.Buffer
		if err := WriteFrame(&bb, 1, FlagResponse, m); err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		_, _, got, err = ReadFrame(&bb)
		check("binary", got, err)
	})
}

func addrOf(v int32) addr.Addr { return addr.Addr(v) }
