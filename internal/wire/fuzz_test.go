package wire

import (
	"bytes"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder: it must
// never panic or over-allocate, only return messages or errors.
func FuzzReadMessage(f *testing.F) {
	// Seed with a couple of valid frames and some junk.
	var valid bytes.Buffer
	WriteMessage(&valid, &Message{Kind: KindInfo, From: 3})
	f.Add(valid.Bytes())
	var q bytes.Buffer
	WriteMessage(&q, &Message{Kind: KindQuery, Query: &QueryReq{Key: bitpath.MustParse("0101"), Level: 1}})
	f.Add(q.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 4; i++ { // read a few frames in sequence
			m, err := ReadMessage(r)
			if err != nil {
				return
			}
			// A decoded message must re-encode.
			var buf bytes.Buffer
			if err := WriteMessage(&buf, m); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-shaped messages and verifies they decode to
// the same payload.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), int32(1), "0101", 2)
	f.Add(uint8(6), int32(9), "1", 0)
	f.Fuzz(func(t *testing.T, kind uint8, from int32, key string, level int) {
		p, err := bitpath.Parse(key)
		if err != nil {
			return
		}
		m := &Message{Kind: Kind(kind % 12), From: addrOf(from),
			Query: &QueryReq{Key: p, Level: level}}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != m.Kind || got.From != m.From {
			t.Fatalf("envelope mismatch: %+v vs %+v", got, m)
		}
		if got.Query == nil || got.Query.Key != p || got.Query.Level != level {
			t.Fatalf("payload mismatch: %+v", got.Query)
		}
	})
}

func addrOf(v int32) addr.Addr { return addr.Addr(v) }
