package directory

import (
	"math"
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func TestNewAndLookup(t *testing.T) {
	d := New(5)
	if d.N() != 5 {
		t.Fatalf("N = %d", d.N())
	}
	for i := 0; i < 5; i++ {
		p := d.Peer(addr.Addr(i))
		if p == nil || p.Addr() != addr.Addr(i) {
			t.Fatalf("Peer(%d) = %v", i, p)
		}
	}
	if d.Peer(-1) != nil || d.Peer(5) != nil || d.Peer(addr.Nil) != nil {
		t.Error("out-of-range lookup must return nil")
	}
	if len(d.All()) != 5 {
		t.Errorf("All len = %d", len(d.All()))
	}
}

func TestOnlinePredicate(t *testing.T) {
	d := New(2)
	if !d.Online(0) {
		t.Error("fresh peer must be online")
	}
	d.Peer(0).SetOnline(false)
	if d.Online(0) {
		t.Error("offline peer reported online")
	}
	if d.Online(99) {
		t.Error("nonexistent peer reported online")
	}
}

func TestRandomPairDistinct(t *testing.T) {
	d := New(3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := d.RandomPair(rng)
		if a == b {
			t.Fatal("RandomPair returned identical peers")
		}
	}
}

func TestRandomPairUniform(t *testing.T) {
	// Every ordered pair of a 4-peer community should appear with roughly
	// equal frequency (chi-square style sanity bound).
	d := New(4)
	rng := rand.New(rand.NewSource(2))
	counts := map[[2]int]int{}
	n := 12000
	for i := 0; i < n; i++ {
		a, b := d.RandomPair(rng)
		counts[[2]int{int(a.Addr()), int(b.Addr())}]++
	}
	want := float64(n) / 12.0
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v count %d far from expected %.0f", pair, c, want)
		}
	}
}

func TestSampleOnline(t *testing.T) {
	d := New(2000)
	rng := rand.New(rand.NewSource(3))
	d.SampleOnline(rng, 0.3)
	got := d.OnlineCount()
	mean, sigma := 0.3*2000, math.Sqrt(2000*0.3*0.7)
	if math.Abs(float64(got)-mean) > 6*sigma {
		t.Errorf("OnlineCount = %d, expected about %.0f", got, mean)
	}
	d.SetAllOnline(true)
	if d.OnlineCount() != 2000 {
		t.Error("SetAllOnline(true) failed")
	}
	d.SampleOnline(rng, 0)
	if d.OnlineCount() != 0 {
		t.Error("SampleOnline(0) left peers online")
	}
}

func TestRandomOnlinePeer(t *testing.T) {
	d := New(4)
	rng := rand.New(rand.NewSource(4))
	d.SetAllOnline(false)
	if d.RandomOnlinePeer(rng) != nil {
		t.Error("RandomOnlinePeer with none online must return nil")
	}
	d.Peer(2).SetOnline(true)
	for i := 0; i < 10; i++ {
		p := d.RandomOnlinePeer(rng)
		if p == nil || p.Addr() != 2 {
			t.Fatalf("RandomOnlinePeer = %v", p)
		}
	}
}

// buildTinyGrid hand-constructs the 6-peer example grid of Fig. 1:
// peers 1,2 on path 00/01 (here addrs 0,1), etc. Layout:
//
//	addr 0: 00, addr 1: 01, addr 2: 10, addr 3: 10, addr 4: 11, addr 5: 11
func buildTinyGrid(t *testing.T) *Directory {
	t.Helper()
	d := New(6)
	specs := []struct {
		path string
		l1   []addr.Addr // refs at level 1 (other side of root)
		l2   []addr.Addr // refs at level 2
	}{
		{"00", []addr.Addr{2}, []addr.Addr{1}},
		{"01", []addr.Addr{3}, []addr.Addr{0}},
		{"10", []addr.Addr{0}, []addr.Addr{4}},
		{"10", []addr.Addr{1}, []addr.Addr{5}},
		{"11", []addr.Addr{0}, []addr.Addr{2}},
		{"11", []addr.Addr{1}, []addr.Addr{3}},
	}
	for i, s := range specs {
		p := d.Peer(addr.Addr(i))
		path := bitpath.MustParse(s.path)
		if !p.ExtendFrom(bitpath.Empty, path.Bit(1), addr.NewSet(s.l1...)) {
			t.Fatalf("extend 1 failed for %d", i)
		}
		if !p.ExtendFrom(path.Prefix(1), path.Bit(2), addr.NewSet(s.l2...)) {
			t.Fatalf("extend 2 failed for %d", i)
		}
	}
	d.Peer(2).AddBuddy(3)
	d.Peer(3).AddBuddy(2)
	return d
}

func TestCheckInvariantsOnValidGrid(t *testing.T) {
	d := buildTinyGrid(t)
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("valid grid failed invariants: %v", err)
	}
}

func TestCheckInvariantsDetectsViolations(t *testing.T) {
	// Same-bit reference at level 1: addr 0 (path 00) referencing addr 1
	// (path 01) at level 1 — both start with 0.
	d := buildTinyGrid(t)
	d.Peer(0).SetRefsAt(1, addr.NewSet(1))
	if err := d.CheckInvariants(); err == nil {
		t.Error("same-bit reference not detected")
	}

	// Diverging prefix at level 2: addr 0 (path 00) referencing addr 4
	// (path 11) at level 2 — prefixes differ at bit 1.
	d = buildTinyGrid(t)
	d.Peer(0).SetRefsAt(2, addr.NewSet(4))
	if err := d.CheckInvariants(); err == nil {
		t.Error("diverging prefix not detected")
	}

	// Dangling reference.
	d = buildTinyGrid(t)
	d.Peer(0).SetRefsAt(1, addr.NewSet(77))
	if err := d.CheckInvariants(); err == nil {
		t.Error("dangling reference not detected")
	}

	// Dangling buddy.
	d = buildTinyGrid(t)
	d.Peer(0).AddBuddy(77)
	if err := d.CheckInvariants(); err == nil {
		t.Error("dangling buddy not detected")
	}
}

func TestReplicaGroupsAndResponsible(t *testing.T) {
	d := buildTinyGrid(t)
	groups := d.ReplicaGroups()
	if len(groups) != 4 {
		t.Fatalf("groups = %v", groups)
	}
	g10 := groups[bitpath.MustParse("10")]
	if len(g10) != 2 || g10[0] != 2 || g10[1] != 3 {
		t.Errorf("replicas of 10 = %v", g10)
	}
	if got := d.Replicas(bitpath.MustParse("00")); len(got) != 1 || got[0] != 0 {
		t.Errorf("Replicas(00) = %v", got)
	}
	resp := d.Responsible(bitpath.MustParse("100"))
	if len(resp) != 2 {
		t.Errorf("Responsible(100) = %v", resp)
	}
	if got := d.Responsible(bitpath.MustParse("0")); len(got) != 0 {
		t.Errorf("Responsible(0) = %v; no leaf path is a prefix of '0'", got)
	}
}

func TestAvgPathLenAndLengths(t *testing.T) {
	d := buildTinyGrid(t)
	if got := d.AvgPathLen(); got != 2 {
		t.Errorf("AvgPathLen = %v", got)
	}
	for _, l := range d.PathLengths() {
		if l != 2 {
			t.Errorf("path length = %d", l)
		}
	}
	empty := &Directory{}
	if empty.AvgPathLen() != 0 {
		t.Error("empty directory AvgPathLen must be 0")
	}
}

func TestReplace(t *testing.T) {
	d := buildTinyGrid(t)
	old := d.Peer(2)
	fresh := d.Replace(2)
	if fresh == old {
		t.Fatal("Replace returned the old peer")
	}
	if fresh.Addr() != 2 || fresh.PathLen() != 0 || !fresh.Online() {
		t.Errorf("replacement state wrong: %v", fresh)
	}
	if d.Peer(2) != fresh {
		t.Error("directory still resolves to the old peer")
	}
	// References held by others toward addr 2 now violate the invariant.
	if err := d.CheckInvariants(); err == nil {
		t.Error("replacement did not surface as an invariant violation")
	}
	defer func() {
		if recover() == nil {
			t.Error("Replace of unknown address must panic")
		}
	}()
	d.Replace(99)
}

func TestAddPeer(t *testing.T) {
	d := New(3)
	p := d.AddPeer()
	if d.N() != 4 || p.Addr() != 3 {
		t.Fatalf("N=%d addr=%v", d.N(), p.Addr())
	}
	if d.Peer(3) != p {
		t.Error("new peer not resolvable")
	}
	q := d.AddPeer()
	if q.Addr() != 4 {
		t.Errorf("second AddPeer addr = %v", q.Addr())
	}
}

func TestCoveringMatchesComparablePaths(t *testing.T) {
	d := buildTinyGrid(t)
	got := d.Covering(bitpath.MustParse("1"))
	// Key "1" is a prefix of paths 10,10,11,11 → addrs 2,3,4,5.
	if len(got) != 4 {
		t.Fatalf("Covering(1) = %v", got)
	}
	got = d.Covering(bitpath.MustParse("100"))
	if len(got) != 2 {
		t.Fatalf("Covering(100) = %v", got)
	}
}

func TestMaxRefsPerLevel(t *testing.T) {
	d := buildTinyGrid(t)
	if got := d.MaxRefsPerLevel(); got != 1 {
		t.Errorf("MaxRefsPerLevel = %d", got)
	}
	d.Peer(0).SetRefsAt(1, addr.NewSet(2, 4, 5))
	if got := d.MaxRefsPerLevel(); got != 3 {
		t.Errorf("MaxRefsPerLevel = %d", got)
	}
}
