// Package directory maintains the community of peers P: the addressing
// functions addr/peer of Section 2, the online model, and global views used
// by the simulator, the statistics, and the test oracles.
//
// The directory itself is NOT part of the distributed algorithm — the paper's
// point is that no such global component is needed for routing. It exists to
// (a) resolve logical addresses to peer objects, standing in for the
// underlying communication infrastructure ("peers that are online can be
// reached reliably through their address"), and (b) let experiments and
// tests observe global state they could not observe in a real deployment.
package directory

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
)

// Directory is the peer community.
type Directory struct {
	peers []*peer.Peer
	// pathSum is Σ length(path(a)) over the community, maintained
	// incrementally by the peers themselves (see peer.TrackPathLen) so the
	// construction-convergence metric AvgPathLen is O(1). The simulation
	// engines poll it after every meeting.
	pathSum atomic.Int64
}

// New creates n fresh peers with addresses 0…n-1, all online, all
// responsible for the whole key space.
func New(n int) *Directory {
	d := &Directory{peers: make([]*peer.Peer, n)}
	for i := range d.peers {
		d.peers[i] = peer.New(addr.Addr(i))
		d.peers[i].TrackPathLen(&d.pathSum)
	}
	return d
}

// N returns the community size.
func (d *Directory) N() int { return len(d.peers) }

// Peer resolves an address (peer(r) in the paper). It returns nil for
// invalid addresses so routing code can treat dangling references as
// unreachable peers.
func (d *Directory) Peer(a addr.Addr) *peer.Peer {
	if int(a) < 0 || int(a) >= len(d.peers) {
		return nil
	}
	return d.peers[a]
}

// All returns the underlying peer slice; callers must not modify it.
func (d *Directory) All() []*peer.Peer { return d.peers }

// Online reports whether the peer at a exists and is online — the paper's
// online(peer(r)) predicate used by both search and construction.
func (d *Directory) Online(a addr.Addr) bool {
	p := d.Peer(a)
	return p != nil && p.Online()
}

// RandomPeer returns a uniformly random peer.
func (d *Directory) RandomPeer(rng *rand.Rand) *peer.Peer {
	return d.peers[rng.Intn(len(d.peers))]
}

// randomOnlineRetries bounds the rejection-sampling fast path of
// RandomOnlinePeer: with online fraction f the fallback scan runs with
// probability (1-f)^32 — under one in a thousand even at f = 0.2.
const randomOnlineRetries = 32

// RandomOnlinePeer returns a uniformly random online peer, or nil if none
// is online. It allocates nothing: rejection sampling hits an online peer in
// O(1/f) expected draws at online fraction f, and the rare fallback (nearly
// everyone offline) is a single-pass reservoir sample over the community.
func (d *Directory) RandomOnlinePeer(rng *rand.Rand) *peer.Peer {
	for try := 0; try < randomOnlineRetries; try++ {
		if p := d.peers[rng.Intn(len(d.peers))]; p.Online() {
			return p
		}
	}
	var chosen *peer.Peer
	seen := 0
	for _, p := range d.peers {
		if p.Online() {
			seen++
			if rng.Intn(seen) == 0 {
				chosen = p
			}
		}
	}
	return chosen
}

// RandomPair returns two distinct uniformly random peers — one random
// meeting. It panics if the community has fewer than two peers.
func (d *Directory) RandomPair(rng *rand.Rand) (*peer.Peer, *peer.Peer) {
	if len(d.peers) < 2 {
		panic("directory: RandomPair needs at least two peers")
	}
	i := rng.Intn(len(d.peers))
	j := rng.Intn(len(d.peers) - 1)
	if j >= i {
		j++
	}
	return d.peers[i], d.peers[j]
}

// SetAllOnline sets every peer's online flag.
func (d *Directory) SetAllOnline(v bool) {
	for _, p := range d.peers {
		p.SetOnline(v)
	}
}

// SampleOnline independently sets each peer online with probability prob,
// realizing the paper's online : P → [0,1] model for one observation epoch.
func (d *Directory) SampleOnline(rng *rand.Rand, prob float64) {
	for _, p := range d.peers {
		p.SetOnline(rng.Float64() < prob)
	}
}

// OnlineCount returns the number of online peers.
func (d *Directory) OnlineCount() int {
	n := 0
	for _, p := range d.peers {
		if p.Online() {
			n++
		}
	}
	return n
}

// AvgPathLen returns (1/N)·Σ length(path(a)), the construction-convergence
// metric of Section 5.1. It is O(1): the sum is maintained incrementally on
// every path extension, so the simulation engines can poll convergence after
// every meeting instead of rationing an O(N) scan.
func (d *Directory) AvgPathLen() float64 {
	if len(d.peers) == 0 {
		return 0
	}
	return float64(d.pathSum.Load()) / float64(len(d.peers))
}

// PathLenSum returns Σ length(path(a)) — the incrementally maintained
// counter behind AvgPathLen. Tests cross-check it against a full scan.
func (d *Directory) PathLenSum() int64 { return d.pathSum.Load() }

// PathLengths returns every peer's current path length.
func (d *Directory) PathLengths() []int {
	out := make([]int, len(d.peers))
	for i, p := range d.peers {
		out[i] = p.PathLen()
	}
	return out
}

// ReplicaGroups returns, for each path some peer is responsible for, the
// addresses of all peers responsible for it (its replica group), sorted.
func (d *Directory) ReplicaGroups() map[bitpath.Path][]addr.Addr {
	groups := make(map[bitpath.Path][]addr.Addr)
	for _, p := range d.peers {
		path := p.Path()
		groups[path] = append(groups[path], p.Addr())
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	return groups
}

// Replicas returns the addresses of all peers whose path equals path.
func (d *Directory) Replicas(path bitpath.Path) []addr.Addr {
	var out []addr.Addr
	for _, p := range d.peers {
		if p.Path() == path {
			out = append(out, p.Addr())
		}
	}
	return out
}

// Responsible returns the addresses of all peers responsible for key: peers
// whose path is a prefix of key. (With a fully built grid of uniform depth
// these coincide with Replicas of the key's truncation.)
func (d *Directory) Responsible(key bitpath.Path) []addr.Addr {
	var out []addr.Addr
	for _, p := range d.peers {
		if p.Path().IsPrefixOf(key) {
			out = append(out, p.Addr())
		}
	}
	return out
}

// Replace models permanent departure with replacement: the peer at a is
// discarded and a fresh peer (empty path, no references, no data, online)
// takes over the address. References other peers hold toward a keep
// resolving but now point at a peer with none of the expected state —
// the failure mode the maintenance protocol repairs. It panics on an
// invalid address.
func (d *Directory) Replace(a addr.Addr) *peer.Peer {
	old := d.Peer(a)
	if old == nil {
		panic(fmt.Sprintf("directory: Replace(%v): no such peer", a))
	}
	old.UntrackPathLen()
	p := peer.New(a)
	p.TrackPathLen(&d.pathSum)
	d.peers[a] = p
	return p
}

// AddPeer grows the community by one fresh peer and returns it — dynamic
// membership for the join experiments.
func (d *Directory) AddPeer() *peer.Peer {
	p := peer.New(addr.Addr(len(d.peers)))
	p.TrackPathLen(&d.pathSum)
	d.peers = append(d.peers, p)
	return p
}

// Covering returns the addresses of all peers whose responsibility region
// is in a prefix relationship with key — exactly the peers at which the
// depth-first search of Fig. 2 can terminate successfully for that key.
// This is the ground-truth replica group of the update experiments.
func (d *Directory) Covering(key bitpath.Path) []addr.Addr {
	var out []addr.Addr
	for _, p := range d.peers {
		if bitpath.Comparable(p.Path(), key) {
			out = append(out, p.Addr())
		}
	}
	return out
}

// CheckInvariants verifies the reference property of Section 2 for every
// peer: r ∈ refs(i, a) ⇒ prefix(i, peer(r)) = prefix(i-1, a)·(p_i)^-,
// i.e. the referenced peer agrees with a on the first i-1 bits and differs
// at bit i. It also checks structural properties: one reference set per path
// bit, no self references, no dangling addresses. Returns the first
// violation found, or nil.
func (d *Directory) CheckInvariants() error {
	scanSum := int64(0)
	for _, p := range d.peers {
		scanSum += int64(p.PathLen())
	}
	if got := d.pathSum.Load(); got != scanSum {
		return fmt.Errorf("incremental path-length sum %d diverged from scan %d", got, scanSum)
	}
	for _, p := range d.peers {
		s := p.Snapshot()
		if len(s.Refs) != s.Path.Len() {
			return fmt.Errorf("peer %v: %d reference sets for path of length %d", s.Addr, len(s.Refs), s.Path.Len())
		}
		for i := 1; i <= s.Path.Len(); i++ {
			for _, r := range s.Refs[i-1].Slice() {
				if r == s.Addr {
					return fmt.Errorf("peer %v: self-reference at level %d", s.Addr, i)
				}
				q := d.Peer(r)
				if q == nil {
					return fmt.Errorf("peer %v: dangling reference %v at level %d", s.Addr, r, i)
				}
				qp := q.Path()
				if qp.Len() < i {
					return fmt.Errorf("peer %v: reference %v at level %d has path %s shorter than %d",
						s.Addr, r, i, qp, i)
				}
				if qp.Prefix(i-1) != s.Path.Prefix(i-1) {
					return fmt.Errorf("peer %v (path %s): reference %v at level %d has diverging prefix %s",
						s.Addr, s.Path, r, i, qp)
				}
				if qp.Bit(i) == s.Path.Bit(i) {
					return fmt.Errorf("peer %v (path %s): reference %v at level %d has same bit %d",
						s.Addr, s.Path, r, i, qp.Bit(i))
				}
			}
		}
		for _, b := range s.Buddies.Slice() {
			if b == s.Addr {
				return fmt.Errorf("peer %v: self-buddy", s.Addr)
			}
			if d.Peer(b) == nil {
				return fmt.Errorf("peer %v: dangling buddy %v", s.Addr, b)
			}
		}
	}
	return nil
}

// MaxRefsPerLevel returns the largest reference-set size found at any level
// of any peer — must never exceed refmax after construction.
func (d *Directory) MaxRefsPerLevel() int {
	max := 0
	for _, p := range d.peers {
		s := p.Snapshot()
		for _, rs := range s.Refs {
			if rs.Len() > max {
				max = rs.Len()
			}
		}
	}
	return max
}
