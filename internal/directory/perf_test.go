package directory

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
)

// Regression tests for the hot-path optimizations: RandomOnlinePeer must not
// allocate (it used to build an O(N) slice per call), and the incremental
// path-length sum behind the O(1) AvgPathLen must track every mutation the
// directory can apply to a peer.

func TestRandomOnlinePeerNoAlloc(t *testing.T) {
	d := New(1024)
	rng := rand.New(rand.NewSource(1))

	// Fast path: everyone online, rejection sampling hits immediately.
	if allocs := testing.AllocsPerRun(100, func() {
		if d.RandomOnlinePeer(rng) == nil {
			t.Fatal("no peer found with all online")
		}
	}); allocs != 0 {
		t.Errorf("RandomOnlinePeer allocated %v objects/call with all peers online", allocs)
	}

	// Fallback path: one peer online out of 1024, so the bounded rejection
	// budget is regularly exhausted and the reservoir scan runs.
	d.SetAllOnline(false)
	d.Peer(17).SetOnline(true)
	if allocs := testing.AllocsPerRun(100, func() {
		p := d.RandomOnlinePeer(rng)
		if p == nil || p.Addr() != 17 {
			t.Fatalf("RandomOnlinePeer = %v, want peer 17", p)
		}
	}); allocs != 0 {
		t.Errorf("RandomOnlinePeer allocated %v objects/call on the scan fallback", allocs)
	}
}

func TestRandomOnlinePeerUniformOnFallback(t *testing.T) {
	// With 4 online peers out of 4096, nearly every call falls through to
	// the reservoir scan; the draw must stay uniform across the online set.
	d := New(4096)
	d.SetAllOnline(false)
	online := []addr.Addr{3, 1000, 2000, 4095}
	for _, a := range online {
		d.Peer(a).SetOnline(true)
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[addr.Addr]int{}
	const draws = 4000
	for i := 0; i < draws; i++ {
		p := d.RandomOnlinePeer(rng)
		if p == nil {
			t.Fatal("nil with 4 peers online")
		}
		counts[p.Addr()]++
	}
	for _, a := range online {
		got := counts[a]
		if got < draws/8 || got > draws/2 {
			t.Errorf("peer %v drawn %d/%d times, want ≈ %d", a, got, draws, draws/4)
		}
	}
}

func TestPathLenSumTracksMutations(t *testing.T) {
	d := New(8)
	checkSum := func(ctx string) {
		t.Helper()
		want := int64(0)
		for _, l := range d.PathLengths() {
			want += int64(l)
		}
		if got := d.PathLenSum(); got != want {
			t.Fatalf("%s: PathLenSum = %d, scan = %d", ctx, got, want)
		}
	}
	checkSum("fresh")

	// Extension via the public conditional API.
	if !d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1)) {
		t.Fatal("extend failed")
	}
	if !d.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0)) {
		t.Fatal("extend failed")
	}
	checkSum("after ExtendFrom")

	// A failed conditional extension must not move the counter.
	if d.Peer(0).ExtendFrom(bitpath.Empty, 1, addr.NewSet(2)) {
		t.Fatal("stale extend applied")
	}
	checkSum("after failed ExtendFrom")

	// Extension via the locked editor (the exchange algorithm's path).
	peer.Edit(d.Peer(0), func(e peer.Editor) {
		e.Extend(1, addr.NewSet(1))
	})
	checkSum("after Editor.Extend")

	// Restore shrinks or grows the path wholesale.
	snap := d.Peer(1).Snapshot()
	snap.Path = bitpath.MustParse("101")
	snap.Refs = []addr.Set{addr.NewSet(0), addr.NewSet(2), addr.NewSet(3)}
	if err := d.Peer(1).Restore(snap); err != nil {
		t.Fatal(err)
	}
	checkSum("after Restore growing the path")

	// Replace discards a deep peer for a fresh one; the discarded object
	// must stop contributing even if mutated afterwards.
	old := d.Peer(1)
	d.Replace(1)
	checkSum("after Replace")
	if !old.ExtendFrom(bitpath.MustParse("101"), 0, addr.NewSet(0)) {
		t.Fatal("extend of discarded peer failed")
	}
	checkSum("after mutating the discarded peer")

	// Dynamic membership.
	p := d.AddPeer()
	if !p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1)) {
		t.Fatal("extend failed")
	}
	checkSum("after AddPeer + extend")

	if got, want := d.AvgPathLen(), float64(d.PathLenSum())/float64(d.N()); got != want {
		t.Errorf("AvgPathLen = %v, want %v", got, want)
	}
}

func BenchmarkRandomOnlinePeer(b *testing.B) {
	for _, tc := range []struct {
		name   string
		online float64
	}{
		{"all-online", 1.0},
		{"30pct-online", 0.3},
		{"1pct-online", 0.01},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d := New(4096)
			rng := rand.New(rand.NewSource(1))
			d.SampleOnline(rng, tc.online)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d.RandomOnlinePeer(rng) == nil {
					b.Fatal("no online peer")
				}
			}
		})
	}
}
