package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 5) {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0)) {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Stddev != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	si := SummarizeInts([]int{1, 2, 3})
	if !almost(si.Mean, 2) {
		t.Errorf("int mean = %v", si.Mean)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{3, 1, 3, 2, 3} {
		h.Observe(v)
	}
	if h.Total() != 5 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Fatalf("histogram state wrong")
	}
	bs := h.Buckets()
	if len(bs) != 3 || bs[0].Value != 1 || bs[2].Value != 3 || bs[2].Count != 3 {
		t.Errorf("buckets = %v", bs)
	}
	if !almost(h.Mean(), 12.0/5.0) {
		t.Errorf("mean = %v", h.Mean())
	}
	if !almost(h.Fraction(3), 0.6) {
		t.Errorf("fraction = %v", h.Fraction(3))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Fraction(1) != 0 || h.Total() != 0 {
		t.Error("empty histogram stats wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty histogram must panic")
		}
	}()
	h.Quantile(0.5)
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("median = %d", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile(2) must panic")
			}
		}()
		h.Quantile(2)
	}()
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	out := h.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("max bucket not full width:\n%s", out)
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 5)) {
		t.Errorf("half bucket not half width:\n%s", out)
	}
}

func TestCurve(t *testing.T) {
	var c Curve
	c.Add(10, 0.5)
	c.Add(20, 0.9)
	c.Add(30, 1.0)
	if got := c.At(5); got != 0 {
		t.Errorf("At(5) = %v", got)
	}
	if got := c.At(15); got != 0.5 {
		t.Errorf("At(15) = %v", got)
	}
	if got := c.At(100); got != 1.0 {
		t.Errorf("At(100) = %v", got)
	}
	if got := c.XAtY(0.9); got != 20 {
		t.Errorf("XAtY(0.9) = %v", got)
	}
	if got := c.XAtY(1.1); !math.IsInf(got, 1) {
		t.Errorf("XAtY(1.1) = %v", got)
	}
}

func TestGini(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Errorf("empty gini = %v", g)
	}
	if g := Gini([]float64{5, 5, 5, 5}); !almost(g, 0) {
		t.Errorf("even gini = %v", g)
	}
	// All mass on one element of n: gini = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); !almost(g, 0.75) {
		t.Errorf("concentrated gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero gini = %v", g)
	}
	// Order must not matter.
	if Gini([]float64{1, 2, 3}) != Gini([]float64{3, 1, 2}) {
		t.Error("gini order-dependent")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative value must panic")
		}
	}()
	Gini([]float64{1, -1})
}

func TestPropGiniBounds(t *testing.T) {
	f := func(vs []uint16) bool {
		xs := make([]float64, len(vs))
		for i, v := range vs {
			xs[i] = float64(v)
		}
		g := Gini(xs)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes whose sums overflow float64;
			// the moments are meaningless there.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropHistogramTotalMatchesBuckets(t *testing.T) {
	f := func(vs []uint8) bool {
		h := NewHistogram()
		for _, v := range vs {
			h.Observe(int(v))
		}
		sum := 0
		for _, b := range h.Buckets() {
			sum += b.Count
		}
		return sum == h.Total() && h.Total() == len(vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
