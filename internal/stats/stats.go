// Package stats provides the small statistical toolkit the experiments
// need: histograms (the replica-distribution plot of Fig. 4), summary
// moments, and distribution comparisons — stdlib only.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// SummarizeInts converts and summarizes an int sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%g max=%g mean=%.4g stddev=%.4g", s.N, s.Min, s.Max, s.Mean, s.Stddev)
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly even distribution, approaching 1 as everything concentrates on
// one element. The load-balancing experiments use it to quantify how
// evenly index entries spread over peers.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, sum float64
	for i, x := range sorted {
		if x < 0 {
			panic("stats: Gini of negative value")
		}
		cum += float64(i+1) * x
		sum += x
	}
	if sum == 0 {
		return 0
	}
	n := float64(len(xs))
	return (2*cum)/(n*sum) - (n+1)/n
}

// Histogram is an integer-valued frequency count, e.g. "number of peers
// having each replication factor" (Fig. 4).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe adds one observation of value v.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations of v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Bucket is one histogram row.
type Bucket struct {
	Value int
	Count int
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for v, c := range h.counts {
		out = append(out, Bucket{v, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// Render draws the histogram as an ASCII bar chart at most width columns
// wide — the textual stand-in for the paper's Fig. 4/5 plots.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	bs := h.Buckets()
	maxc := 0
	for _, b := range bs {
		if b.Count > maxc {
			maxc = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		bar := 0
		if maxc > 0 {
			bar = b.Count * width / maxc
		}
		fmt.Fprintf(&sb, "%4d | %-*s %d\n", b.Value, width, strings.Repeat("█", bar), b.Count)
	}
	return sb.String()
}

// Fraction returns count(v)/total.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observed values using
// the nearest-rank method. It panics on an empty histogram or q outside
// [0,1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		panic("stats: Quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) out of range", q))
	}
	rank := int(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for _, b := range h.Buckets() {
		cum += b.Count
		if cum >= rank {
			return b.Value
		}
	}
	bs := h.Buckets()
	return bs[len(bs)-1].Value
}

// Curve is a monotone series of (x, y) points, e.g. "messages spent vs
// fraction of replicas found" (Fig. 5).
type Curve struct {
	Points []Point
}

// Point is one sample of a curve.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (c *Curve) Add(x, y float64) { c.Points = append(c.Points, Point{x, y}) }

// At returns the y value of the last point with X ≤ x (step
// interpolation), or 0 before the first point.
func (c Curve) At(x float64) float64 {
	y := 0.0
	for _, p := range c.Points {
		if p.X > x {
			break
		}
		y = p.Y
	}
	return y
}

// XAtY returns the smallest X at which the curve reaches y, or +Inf if it
// never does. Useful for "messages needed to reach 90 % of replicas".
func (c Curve) XAtY(y float64) float64 {
	for _, p := range c.Points {
		if p.Y >= y {
			return p.X
		}
	}
	return math.Inf(1)
}
