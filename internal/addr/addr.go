// Package addr defines peer addresses and address-set utilities shared by
// the storage, peer and routing layers.
//
// The paper models a community of peers P with a unique address function
// addr : P → ADDR and its inverse peer(r). In the simulator an address is a
// dense small integer, which makes reference sets compact and lets the
// directory resolve peer(r) with an array lookup. The networked runtime maps
// these logical addresses to transport endpoints.
package addr

import (
	"fmt"
	"math/rand"
	"sort"
)

// Addr is a logical peer address. Valid addresses are non-negative.
type Addr int32

// Nil is the absent address.
const Nil Addr = -1

// Valid reports whether a is a usable address.
func (a Addr) Valid() bool { return a >= 0 }

// String renders the address for logs.
func (a Addr) String() string {
	if a == Nil {
		return "addr(nil)"
	}
	return fmt.Sprintf("addr(%d)", int32(a))
}

// Set is an ordered collection of distinct addresses. The zero value is an
// empty set ready to use. Sets are small (bounded by refmax in P-Grid), so a
// slice with linear membership tests beats a map on both space and time.
type Set struct {
	addrs []Addr
}

// NewSet returns a set containing the given addresses, deduplicated.
func NewSet(addrs ...Addr) Set {
	var s Set
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// Len returns the number of addresses in the set.
func (s Set) Len() int { return len(s.addrs) }

// Contains reports whether a is in the set.
func (s Set) Contains(a Addr) bool {
	for _, x := range s.addrs {
		if x == a {
			return true
		}
	}
	return false
}

// Add inserts a if absent and reports whether it was inserted.
// Nil addresses are ignored.
func (s *Set) Add(a Addr) bool {
	if a == Nil || s.Contains(a) {
		return false
	}
	s.addrs = append(s.addrs, a)
	return true
}

// Remove deletes a if present and reports whether it was present.
func (s *Set) Remove(a Addr) bool {
	for i, x := range s.addrs {
		if x == a {
			s.addrs = append(s.addrs[:i], s.addrs[i+1:]...)
			return true
		}
	}
	return false
}

// Slice returns a copy of the addresses in insertion order.
func (s Set) Slice() []Addr {
	out := make([]Addr, len(s.addrs))
	copy(out, s.addrs)
	return out
}

// Sorted returns a copy of the addresses in ascending order.
func (s Set) Sorted() []Addr {
	out := s.Slice()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	return Set{addrs: s.Slice()}
}

// Union returns a new set containing all addresses of s and t.
func Union(s, t Set) Set {
	u := s.Clone()
	for _, a := range t.addrs {
		u.Add(a)
	}
	return u
}

// Shuffled returns the addresses in uniformly random order.
func (s Set) Shuffled(rng *rand.Rand) []Addr {
	out := s.Slice()
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// RandomSubset returns min(k, Len()) distinct addresses drawn uniformly at
// random, matching the paper's random_select(k, refs).
func (s Set) RandomSubset(rng *rand.Rand, k int) Set {
	if k < 0 {
		k = 0
	}
	out := s.Shuffled(rng)
	if k < len(out) {
		out = out[:k]
	}
	return Set{addrs: out}
}

// PopRandom removes and returns a uniformly random address, matching the
// paper's destructive random_select(refs) used in the search loop.
// It returns Nil when the set is empty.
func (s *Set) PopRandom(rng *rand.Rand) Addr {
	if len(s.addrs) == 0 {
		return Nil
	}
	i := rng.Intn(len(s.addrs))
	a := s.addrs[i]
	s.addrs[i] = s.addrs[len(s.addrs)-1]
	s.addrs = s.addrs[:len(s.addrs)-1]
	return a
}

// String renders the set for logs.
func (s Set) String() string {
	return fmt.Sprintf("%v", s.Sorted())
}
