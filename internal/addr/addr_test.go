package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("zero set not empty")
	}
	if !s.Add(3) || !s.Add(1) || !s.Add(2) {
		t.Fatal("Add of fresh addrs returned false")
	}
	if s.Add(3) {
		t.Error("Add of duplicate returned true")
	}
	if s.Add(Nil) {
		t.Error("Add of Nil returned true")
	}
	if s.Len() != 3 || !s.Contains(1) || !s.Contains(2) || !s.Contains(3) {
		t.Fatalf("set contents wrong: %v", s.String())
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Error("Remove semantics wrong")
	}
	if s.Contains(1) || s.Len() != 2 {
		t.Error("Remove did not delete")
	}
}

func TestSetSortedAndSlice(t *testing.T) {
	s := NewSet(5, 2, 9, 2)
	sorted := s.Sorted()
	want := []Addr{2, 5, 9}
	if len(sorted) != 3 {
		t.Fatalf("dedup failed: %v", sorted)
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Errorf("Sorted[%d] = %v, want %v", i, sorted[i], want[i])
		}
	}
	sl := s.Slice()
	sl[0] = 99 // must not alias internal storage
	if s.Contains(99) {
		t.Error("Slice aliases internal storage")
	}
}

func TestUnionAndClone(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(2, 3)
	u := Union(a, b)
	if u.Len() != 3 {
		t.Fatalf("Union size = %d", u.Len())
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("Union mutated its inputs")
	}
	c := a.Clone()
	c.Add(42)
	if a.Contains(42) {
		t.Error("Clone aliases original")
	}
}

func TestRandomSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSet(1, 2, 3, 4, 5)
	sub := s.RandomSubset(rng, 3)
	if sub.Len() != 3 {
		t.Fatalf("subset size = %d", sub.Len())
	}
	for _, a := range sub.Slice() {
		if !s.Contains(a) {
			t.Errorf("subset element %v not in source", a)
		}
	}
	if got := s.RandomSubset(rng, 10).Len(); got != 5 {
		t.Errorf("oversized subset len = %d, want 5", got)
	}
	if got := s.RandomSubset(rng, 0).Len(); got != 0 {
		t.Errorf("zero subset len = %d", got)
	}
	if got := s.RandomSubset(rng, -1).Len(); got != 0 {
		t.Errorf("negative subset len = %d", got)
	}
	if s.Len() != 5 {
		t.Error("RandomSubset mutated source")
	}
}

func TestPopRandomDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSet(1, 2, 3)
	seen := map[Addr]bool{}
	for i := 0; i < 3; i++ {
		a := s.PopRandom(rng)
		if a == Nil || seen[a] {
			t.Fatalf("PopRandom returned %v (seen=%v)", a, seen[a])
		}
		seen[a] = true
	}
	if s.Len() != 0 {
		t.Error("set not drained")
	}
	if s.PopRandom(rng) != Nil {
		t.Error("PopRandom on empty must return Nil")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSet(1, 2, 3, 4, 5, 6, 7, 8)
	out := s.Shuffled(rng)
	if len(out) != 8 {
		t.Fatalf("Shuffled len = %d", len(out))
	}
	seen := map[Addr]bool{}
	for _, a := range out {
		if !s.Contains(a) || seen[a] {
			t.Fatalf("Shuffled is not a permutation: %v", out)
		}
		seen[a] = true
	}
}

func TestAddrString(t *testing.T) {
	if Nil.String() != "addr(nil)" {
		t.Errorf("Nil renders as %q", Nil.String())
	}
	if Addr(7).String() != "addr(7)" {
		t.Errorf("Addr(7) renders as %q", Addr(7).String())
	}
	if Nil.Valid() || !Addr(0).Valid() {
		t.Error("Valid wrong")
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b Set
		for _, x := range xs {
			a.Add(Addr(x))
		}
		for _, y := range ys {
			b.Add(Addr(y))
		}
		u := Union(a, b)
		for _, x := range a.Slice() {
			if !u.Contains(x) {
				return false
			}
		}
		for _, y := range b.Slice() {
			if !u.Contains(y) {
				return false
			}
		}
		return u.Len() <= a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddRemoveInverse(t *testing.T) {
	f := func(xs []uint16, y uint16) bool {
		var s Set
		for _, x := range xs {
			s.Add(Addr(x))
		}
		n := s.Len()
		a := Addr(y)
		if s.Contains(a) {
			return true // nothing to test
		}
		s.Add(a)
		s.Remove(a)
		return s.Len() == n && !s.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
