// Package store implements the per-peer data layer of a P-Grid peer.
//
// The paper distinguishes two things a peer keeps at the leaf level:
//
//   - data items it physically hosts (its "local database"), and
//   - the index D ⊆ ADDR × K: references to the peers hosting items whose
//     keys fall under the path the peer is responsible for.
//
// Store models both. Index entries carry a version number so the update
// experiments of Section 5.2 (propagating an update to all replicas, then
// reading with majority voting) can distinguish stale from fresh replicas.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// Entry is one index entry: the peer at Holder hosts an item named Name
// indexed under Key, last updated at Version.
type Entry struct {
	Key     bitpath.Path
	Name    string
	Holder  addr.Addr
	Version uint64
}

// String renders the entry for logs.
func (e Entry) String() string {
	return fmt.Sprintf("%s@%s v%d → %v", e.Name, e.Key, e.Version, e.Holder)
}

// Store is the data layer of one peer. It is safe for concurrent use; the
// concurrent runtime exercises peers from multiple goroutines.
// The zero value is not usable; call New.
type Store struct {
	mu sync.RWMutex
	// index: key → name → entry. Two-level so multiple distinct items can
	// share an index key (hash truncation makes that routine).
	index map[bitpath.Path]map[string]Entry
	// hosted: names of items this peer physically hosts.
	hosted map[string]Entry
}

// New returns an empty store.
func New() *Store {
	return &Store{
		index:  make(map[bitpath.Path]map[string]Entry),
		hosted: make(map[string]Entry),
	}
}

// Host records that this peer physically hosts the item. Hosting is
// independent of index responsibility: in a file-sharing network a peer
// hosts its own files but indexes an unrelated key region.
func (s *Store) Host(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosted[e.Name] = e
}

// Hosted returns the items this peer physically hosts, sorted by name.
func (s *Store) Hosted() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.hosted))
	for _, e := range s.hosted {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// Apply merges an index entry, keeping the highest version per (key, name).
// It reports whether the store changed (entry was new or fresher).
func (s *Store) Apply(e Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName, ok := s.index[e.Key]
	if !ok {
		byName = make(map[string]Entry)
		s.index[e.Key] = byName
	}
	old, exists := byName[e.Name]
	if exists && old.Version >= e.Version {
		return false
	}
	byName[e.Name] = e
	return true
}

// Get returns the entry for (key, name), if present.
func (s *Store) Get(key bitpath.Path, name string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.index[key][name]
	return e, ok
}

// Lookup returns all entries indexed under exactly key, sorted by name.
func (s *Store) Lookup(key bitpath.Path) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byName := s.index[key]
	out := make([]Entry, 0, len(byName))
	for _, e := range byName {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// PrefixScan returns all entries whose key has the given prefix, sorted by
// (key, name). With prefix-preserving text keys this implements the paper's
// Section 6 trie/prefix search extension.
func (s *Store) PrefixScan(prefix bitpath.Path) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for key, byName := range s.index {
		if !key.HasPrefix(prefix) {
			continue
		}
		for _, e := range byName {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// Entries returns every index entry, sorted by (key, name).
func (s *Store) Entries() []Entry {
	return s.PrefixScan(bitpath.Empty)
}

// Len returns the number of index entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, byName := range s.index {
		n += len(byName)
	}
	return n
}

// Summary condenses the index into the fixed-size fingerprint the health
// digests carry: entry count, the highest Version over all entries (the
// staleness clock the Section 5.2 update strategies compare), and an
// order-independent hash of the full content, so two replicas of one path
// can be compared for divergence without shipping their indexes.
type Summary struct {
	Entries    int
	MaxVersion uint64
	Hash       uint64
}

// Summary computes the store's index fingerprint in one pass. The hash is
// a wrapping sum of per-entry FNV-1a hashes, so it is independent of
// iteration order: equal indexes hash equal, and replicas that diverge in
// any entry (almost surely) differ.
func (s *Store) Summary() Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum Summary
	for key, byName := range s.index {
		for _, e := range byName {
			sum.Entries++
			if e.Version > sum.MaxVersion {
				sum.MaxVersion = e.Version
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d", key, e.Name, int64(e.Holder), e.Version)
			sum.Hash += h.Sum64()
		}
	}
	return sum
}

// Delete removes the entry for (key, name) and reports whether it existed.
func (s *Store) Delete(key bitpath.Path, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName, ok := s.index[key]
	if !ok {
		return false
	}
	if _, ok := byName[name]; !ok {
		return false
	}
	delete(byName, name)
	if len(byName) == 0 {
		delete(s.index, key)
	}
	return true
}

// Evict removes and returns every entry whose key does NOT have the given
// prefix. When a peer specializes its path during construction, entries
// outside its narrowed responsibility are handed over to the exchange
// partner (who covers the other half).
func (s *Store) Evict(keep bitpath.Path) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for key, byName := range s.index {
		if key.HasPrefix(keep) {
			continue
		}
		for _, e := range byName {
			out = append(out, e)
		}
		delete(s.index, key)
	}
	sortEntries(out)
	return out
}

// CountOutside reports how many entries do NOT lie under keep — the
// entries Evict(keep) would remove — without mutating the store. The
// repair detector uses it to count orphaned entries (data a peer is no
// longer responsible for) before deciding whether to rehome them.
func (s *Store) CountOutside(keep bitpath.Path) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key, byName := range s.index {
		if !key.HasPrefix(keep) {
			n += len(byName)
		}
	}
	return n
}

// Clear removes all index entries (not hosted items).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = make(map[bitpath.Path]map[string]Entry)
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if c := bitpath.Compare(es[i].Key, es[j].Key); c != 0 {
			return c < 0
		}
		return es[i].Name < es[j].Name
	})
}
