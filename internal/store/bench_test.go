package store

import (
	"fmt"
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
)

func benchStore(n int) (*Store, []Entry) {
	rng := rand.New(rand.NewSource(1))
	s := New()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key:     bitpath.Random(rng, 12),
			Name:    fmt.Sprintf("item-%d", i),
			Holder:  1,
			Version: 1,
		}
		s.Apply(entries[i])
	}
	return s, entries
}

func BenchmarkStoreApply(b *testing.B) {
	s, entries := benchStore(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%4096]
		e.Version = uint64(i + 2)
		s.Apply(e)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s, entries := benchStore(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%4096]
		s.Get(e.Key, e.Name)
	}
}

func BenchmarkStorePrefixScan(b *testing.B) {
	s, _ := benchStore(4096)
	prefix := bitpath.MustParse("0101")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PrefixScan(prefix)
	}
}

func BenchmarkStoreEvict(b *testing.B) {
	// Evict + reapply to keep the store populated across iterations.
	s, _ := benchStore(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evicted := s.Evict("0")
		for _, e := range evicted {
			s.Apply(e)
		}
	}
}
