package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"pgrid/internal/bitpath"
)

func TestApplyAndGet(t *testing.T) {
	s := New()
	e := Entry{Key: bitpath.MustParse("0101"), Name: "a.mp3", Holder: 7, Version: 1}
	if !s.Apply(e) {
		t.Fatal("first Apply returned false")
	}
	got, ok := s.Get(e.Key, e.Name)
	if !ok || got != e {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestApplyVersionMonotone(t *testing.T) {
	s := New()
	e := Entry{Key: bitpath.MustParse("01"), Name: "x", Holder: 1, Version: 5}
	s.Apply(e)
	stale := e
	stale.Version = 3
	stale.Holder = 9
	if s.Apply(stale) {
		t.Error("Apply accepted stale version")
	}
	if got, _ := s.Get(e.Key, e.Name); got.Version != 5 || got.Holder != 1 {
		t.Errorf("stale overwrote: %v", got)
	}
	same := e
	same.Holder = 9
	if s.Apply(same) {
		t.Error("Apply accepted equal version (must be strictly fresher)")
	}
	fresh := e
	fresh.Version = 6
	fresh.Holder = 9
	if !s.Apply(fresh) {
		t.Error("Apply rejected fresher version")
	}
	if got, _ := s.Get(e.Key, e.Name); got.Version != 6 || got.Holder != 9 {
		t.Errorf("fresh did not overwrite: %v", got)
	}
}

func TestLookupMultipleNamesSameKey(t *testing.T) {
	s := New()
	k := bitpath.MustParse("110")
	s.Apply(Entry{Key: k, Name: "b", Holder: 2, Version: 1})
	s.Apply(Entry{Key: k, Name: "a", Holder: 1, Version: 1})
	got := s.Lookup(k)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("Lookup = %v", got)
	}
	if len(s.Lookup(bitpath.MustParse("111"))) != 0 {
		t.Error("Lookup of absent key returned entries")
	}
}

func TestPrefixScan(t *testing.T) {
	s := New()
	for i, k := range []string{"000", "001", "010", "100", "0010"} {
		s.Apply(Entry{Key: bitpath.MustParse(k), Name: fmt.Sprintf("n%d", i), Holder: 1, Version: 1})
	}
	got := s.PrefixScan(bitpath.MustParse("00"))
	if len(got) != 3 {
		t.Fatalf("PrefixScan(00) = %v", got)
	}
	for _, e := range got {
		if !e.Key.HasPrefix(bitpath.MustParse("00")) {
			t.Errorf("entry %v outside prefix", e)
		}
	}
	if len(s.Entries()) != 5 {
		t.Errorf("Entries len = %d", len(s.Entries()))
	}
	// Sorted by key order.
	all := s.Entries()
	for i := 1; i < len(all); i++ {
		if bitpath.Compare(all[i-1].Key, all[i].Key) > 0 {
			t.Errorf("Entries not sorted at %d", i)
		}
	}
}

func TestDelete(t *testing.T) {
	s := New()
	k := bitpath.MustParse("01")
	s.Apply(Entry{Key: k, Name: "x", Holder: 1, Version: 1})
	if !s.Delete(k, "x") {
		t.Fatal("Delete existing returned false")
	}
	if s.Delete(k, "x") {
		t.Error("Delete absent returned true")
	}
	if s.Len() != 0 {
		t.Error("Delete left entries behind")
	}
	if s.Delete(bitpath.MustParse("10"), "y") {
		t.Error("Delete on absent key returned true")
	}
}

func TestEvict(t *testing.T) {
	s := New()
	in := Entry{Key: bitpath.MustParse("010"), Name: "in", Holder: 1, Version: 1}
	out := Entry{Key: bitpath.MustParse("10"), Name: "out", Holder: 2, Version: 1}
	out2 := Entry{Key: bitpath.MustParse("00"), Name: "out2", Holder: 3, Version: 1}
	s.Apply(in)
	s.Apply(out)
	s.Apply(out2)
	evicted := s.Evict(bitpath.MustParse("01"))
	if len(evicted) != 2 {
		t.Fatalf("Evict returned %v", evicted)
	}
	if s.Len() != 1 {
		t.Errorf("store kept %d entries, want 1", s.Len())
	}
	if _, ok := s.Get(in.Key, in.Name); !ok {
		t.Error("Evict removed an entry under the kept prefix")
	}
}

func TestHosted(t *testing.T) {
	s := New()
	s.Host(Entry{Key: bitpath.MustParse("01"), Name: "b", Holder: 1, Version: 1})
	s.Host(Entry{Key: bitpath.MustParse("11"), Name: "a", Holder: 1, Version: 1})
	got := s.Hosted()
	if len(got) != 2 {
		t.Fatalf("Hosted = %v", got)
	}
	// Hosting must not create index entries.
	if s.Len() != 0 {
		t.Error("Host created index entries")
	}
}

func TestClear(t *testing.T) {
	s := New()
	s.Apply(Entry{Key: bitpath.MustParse("0"), Name: "x", Holder: 1, Version: 1})
	s.Host(Entry{Key: bitpath.MustParse("0"), Name: "h", Holder: 1, Version: 1})
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear left index entries")
	}
	if len(s.Hosted()) != 1 {
		t.Error("Clear must not remove hosted items")
	}
}

func TestConcurrentApplyAndLookup(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := bitpath.FromUint(uint64(i%16), 4)
				s.Apply(Entry{Key: k, Name: fmt.Sprintf("g%d-i%d", g, i), Holder: 1, Version: uint64(i)})
				s.Lookup(k)
				s.PrefixScan(k.Prefix(2))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", s.Len(), 8*200)
	}
}

func TestPropApplyKeepsMaxVersion(t *testing.T) {
	f := func(versions []uint8) bool {
		s := New()
		k := bitpath.MustParse("0110")
		var max uint64
		applied := false
		for _, v := range versions {
			ver := uint64(v)
			s.Apply(Entry{Key: k, Name: "n", Holder: 1, Version: ver})
			if ver > max || !applied {
				max = ver
				applied = true
			}
		}
		if !applied {
			return s.Len() == 0
		}
		got, ok := s.Get(k, "n")
		return ok && got.Version == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEvictPartition(t *testing.T) {
	f := func(keys []uint16) bool {
		s := New()
		for i, kv := range keys {
			k := bitpath.FromUint(uint64(kv), 10)
			s.Apply(Entry{Key: k, Name: fmt.Sprintf("n%d", i), Holder: 1, Version: 1})
		}
		total := s.Len()
		keep := bitpath.MustParse("01")
		evicted := s.Evict(keep)
		if len(evicted)+s.Len() != total {
			return false
		}
		for _, e := range evicted {
			if e.Key.HasPrefix(keep) {
				return false
			}
		}
		for _, e := range s.Entries() {
			if !e.Key.HasPrefix(keep) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	s := New()
	if sum := s.Summary(); sum != (Summary{}) {
		t.Fatalf("empty store summary = %+v", sum)
	}
	s.Apply(Entry{Key: bitpath.MustParse("01"), Name: "a", Holder: 1, Version: 3})
	s.Apply(Entry{Key: bitpath.MustParse("10"), Name: "b", Holder: 2, Version: 7})
	sum := s.Summary()
	if sum.Entries != 2 || sum.MaxVersion != 7 || sum.Hash == 0 {
		t.Fatalf("summary = %+v, want 2 entries, max version 7, non-zero hash", sum)
	}

	// The hash is content-defined and order-independent: a second store
	// filled in reverse order fingerprints identically, and any change to
	// an entry changes it.
	s2 := New()
	s2.Apply(Entry{Key: bitpath.MustParse("10"), Name: "b", Holder: 2, Version: 7})
	s2.Apply(Entry{Key: bitpath.MustParse("01"), Name: "a", Holder: 1, Version: 3})
	if sum2 := s2.Summary(); sum2 != sum {
		t.Errorf("order-dependent summary: %+v vs %+v", sum, sum2)
	}
	s2.Apply(Entry{Key: bitpath.MustParse("10"), Name: "b", Holder: 2, Version: 8})
	if sum2 := s2.Summary(); sum2.Hash == sum.Hash || sum2.MaxVersion != 8 {
		t.Errorf("fresher entry did not move the fingerprint: %+v", sum2)
	}

	// Hosting is not indexing: hosted items stay out of the fingerprint.
	s.Host(Entry{Key: bitpath.MustParse("11"), Name: "c", Holder: 3, Version: 9})
	if got := s.Summary(); got != sum {
		t.Errorf("hosted item leaked into the index summary: %+v vs %+v", got, sum)
	}
}
