package resilience

import (
	"errors"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// scriptTransport answers each call to a peer from a per-peer script of
// outcomes, repeating the last entry once exhausted.
type scriptTransport struct {
	scripts map[addr.Addr][]error
	pos     map[addr.Addr]int
	calls   int
}

func newScript() *scriptTransport {
	return &scriptTransport{scripts: map[addr.Addr][]error{}, pos: map[addr.Addr]int{}}
}

func (s *scriptTransport) set(to addr.Addr, outcomes ...error) { s.scripts[to] = outcomes }

func (s *scriptTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	s.calls++
	script := s.scripts[to]
	if len(script) == 0 {
		return &wire.Message{Kind: wire.KindInfoResp}, nil
	}
	i := s.pos[to]
	if i >= len(script) {
		i = len(script) - 1
	}
	s.pos[to] = s.pos[to] + 1
	if err := script[i]; err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindInfoResp}, nil
}

var (
	errLost = Mark(errors.New("datagram lost"), Transient)
	errApp  = Mark(errors.New("unexpected message kind"), Terminal)
	errBad  = Mark(errors.New("garbage frame"), Corrupt)
)

func noSleep(time.Duration) {}

func req() *wire.Message { return &wire.Message{Kind: wire.KindInfo} }

func TestResilientRetriesTransientFailures(t *testing.T) {
	inner := newScript()
	inner.set(1, errLost, errLost, nil)
	rt := Wrap(inner, Options{Retry: Policy{MaxAttempts: 3}, Sleep: noSleep})
	resp, err := rt.Call(1, req())
	if err != nil || resp == nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if inner.calls != 3 {
		t.Errorf("attempts = %d, want 3", inner.calls)
	}
	if rt.Retries() != 2 {
		t.Errorf("retries = %d, want 2", rt.Retries())
	}
}

func TestResilientGivesUpAfterMaxAttempts(t *testing.T) {
	inner := newScript()
	inner.set(1, errLost)
	rt := Wrap(inner, Options{Retry: Policy{MaxAttempts: 3}, Sleep: noSleep})
	if _, err := rt.Call(1, req()); !errors.Is(err, errLost) {
		t.Fatalf("err = %v", err)
	}
	if inner.calls != 3 {
		t.Errorf("attempts = %d, want 3", inner.calls)
	}
}

func TestResilientDoesNotRetryTerminalOrCorrupt(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{{"terminal", errApp}, {"corrupt", errBad}} {
		t.Run(tc.name, func(t *testing.T) {
			inner := newScript()
			inner.set(1, tc.err)
			rt := Wrap(inner, Options{Retry: Policy{MaxAttempts: 5}, Sleep: noSleep})
			if _, err := rt.Call(1, req()); !errors.Is(err, tc.err) {
				t.Fatalf("err = %v", err)
			}
			if inner.calls != 1 {
				t.Errorf("%s failure was retried: %d attempts", tc.name, inner.calls)
			}
		})
	}
}

func TestResilientHonorsBudget(t *testing.T) {
	inner := newScript()
	inner.set(1, errLost)
	tel := telemetry.New(-1)
	// Burst of 1: the first call may retry once, then the budget is dry
	// (ratio so small the calls here never earn a token back).
	rt := Wrap(inner, Options{
		Retry:  Policy{MaxAttempts: 3},
		Budget: NewBudget(0.001, 1),
		Sleep:  noSleep,
		Tel:    tel,
	})
	rt.Call(1, req())
	if rt.Retries() != 1 {
		t.Fatalf("retries = %d, want 1 (budget burst)", rt.Retries())
	}
	rt.Call(1, req())
	if rt.Retries() != 1 {
		t.Errorf("retries = %d after dry budget, want still 1", rt.Retries())
	}
	if got := counterValue(t, tel, "pgrid_resilience_retry_budget_exhausted_total"); got == 0 {
		t.Error("budget exhaustion not counted")
	}
}

func TestResilientBreakerFailsFastAndRecovers(t *testing.T) {
	inner := newScript()
	inner.set(1, errLost)
	clock := newFakeClock()
	tel := telemetry.New(-1)
	rt := Wrap(inner, Options{
		Retry:   Policy{MaxAttempts: 1},
		Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Second, now: clock.now},
		Sleep:   noSleep,
		Tel:     tel,
	})

	// Three failed calls open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := rt.Call(1, req()); err == nil {
			t.Fatal("scripted failure succeeded")
		}
	}
	attempts := inner.calls
	// Fast-fail: no inner attempts while open.
	if _, err := rt.Call(1, req()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if inner.calls != attempts {
		t.Error("open breaker let a call through")
	}
	if ClassOf(Mark(ErrBreakerOpen, Transient)) != Transient {
		t.Error("breaker-open errors must classify transient")
	}

	// Other peers are unaffected.
	if _, err := rt.Call(2, req()); err != nil {
		t.Fatalf("healthy peer affected by peer 1's breaker: %v", err)
	}

	// After the cooldown the probe goes through; the peer has recovered.
	inner.set(1, nil)
	inner.pos[1] = 0
	clock.advance(time.Second)
	if _, err := rt.Call(1, req()); err != nil {
		t.Fatalf("recovery probe failed: %v", err)
	}
	views := rt.Breakers()
	if len(views) != 2 {
		t.Fatalf("breaker views = %d, want 2", len(views))
	}
	if views[0].Peer != 1 || views[0].State != "closed" || views[0].Opens != 1 {
		t.Errorf("peer 1 view = %+v", views[0])
	}
	if got := counterValue(t, tel, "pgrid_resilience_breaker_opens_total"); got != 1 {
		t.Errorf("breaker opens counter = %d, want 1", got)
	}
	if got := counterValue(t, tel, "pgrid_resilience_breakers_open"); got != 0 {
		t.Errorf("open-breakers gauge = %d, want 0 after recovery", got)
	}
}

func TestResilientTerminalDoesNotTripBreaker(t *testing.T) {
	inner := newScript()
	inner.set(1, errApp)
	rt := Wrap(inner, Options{
		Retry:   Policy{MaxAttempts: 1},
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second},
		Sleep:   noSleep,
	})
	for i := 0; i < 10; i++ {
		rt.Call(1, req())
	}
	if v := rt.Breakers(); v[0].State != "closed" {
		t.Errorf("application errors opened the breaker: %+v", v[0])
	}
}

func TestResilientCorruptTripsBreaker(t *testing.T) {
	inner := newScript()
	inner.set(1, errBad)
	rt := Wrap(inner, Options{
		Retry:   Policy{MaxAttempts: 1},
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second},
		Sleep:   noSleep,
	})
	rt.Call(1, req())
	rt.Call(1, req())
	if v := rt.Breakers(); v[0].State != "open" {
		t.Errorf("corrupt responses did not open the breaker: %+v", v[0])
	}
}

func TestResilientDeterministicBackoffSchedule(t *testing.T) {
	run := func() []time.Duration {
		inner := newScript()
		inner.set(1, errLost)
		var slept []time.Duration
		rt := Wrap(inner, Options{
			Retry: Policy{MaxAttempts: 4},
			Seed:  99,
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		})
		rt.Call(1, req())
		return slept
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d: %v != %v (same seed must reproduce)", i, a[i], b[i])
		}
	}
}

// counterValue reads one series from an Instruments registry snapshot.
func counterValue(t *testing.T, tel *telemetry.Instruments, name string) int64 {
	t.Helper()
	for _, s := range tel.Registry().Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}
