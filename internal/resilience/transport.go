package resilience

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// Transport is the call surface this package wraps. It is structurally
// identical to node.Transport, so a *ResilientTransport wraps and
// satisfies it without this package importing internal/node.
type Transport interface {
	Call(to addr.Addr, msg *wire.Message) (*wire.Message, error)
}

// Options configures a ResilientTransport. The zero value means: default
// retry policy, no budget (unlimited retries), breakers disabled, ClassOf
// classification, real sleeping.
type Options struct {
	// Retry bounds the per-call retry loop.
	Retry Policy
	// Budget, when non-nil, globally bounds retries to a fraction of the
	// call volume.
	Budget *Budget
	// Breaker parameterizes the per-peer breakers; Threshold 0 disables
	// them.
	Breaker BreakerConfig
	// Classify sorts call errors into classes (nil means ClassOf). Only
	// Transient outcomes are retried.
	Classify func(error) Class
	// Seed derives the deterministic jitter stream.
	Seed int64
	// Tel, when non-nil, receives the pgrid_resilience_* metrics.
	Tel *telemetry.Instruments

	// OnPeerState, when non-nil, is notified of every breaker state
	// transition with the peer it belongs to — the hook a pooling
	// transport uses to evict a peer's connections when its breaker
	// opens. Called under that peer's breaker lock: keep it fast and do
	// not call back into this transport.
	OnPeerState func(peer addr.Addr, from, to BreakerState)

	// Sleep overrides backoff sleeping in tests (nil means time.Sleep).
	Sleep func(time.Duration)
}

// ResilientTransport composes retries, a retry budget, and per-peer
// circuit breakers around an inner Transport. Safe for concurrent use.
type ResilientTransport struct {
	inner    Transport
	opt      Options
	classify func(error) Class
	sleep    func(time.Duration)
	seq      atomic.Uint64

	mu       sync.RWMutex
	breakers map[addr.Addr]*Breaker

	open     atomic.Int64 // breakers currently open
	halfOpen atomic.Int64 // breakers currently half-open
	retries  atomic.Int64
}

// Wrap builds a ResilientTransport over inner.
func Wrap(inner Transport, opt Options) *ResilientTransport {
	opt.Retry = opt.Retry.withDefaults()
	t := &ResilientTransport{
		inner:    inner,
		opt:      opt,
		classify: opt.Classify,
		sleep:    opt.Sleep,
		breakers: make(map[addr.Addr]*Breaker),
	}
	if t.classify == nil {
		t.classify = ClassOf
	}
	if t.sleep == nil {
		t.sleep = time.Sleep
	}
	t.seq.Store(uint64(opt.Seed))
	return t
}

// breaker returns (creating on first contact) the breaker for a peer, or
// nil when breakers are disabled.
func (t *ResilientTransport) breaker(to addr.Addr) *Breaker {
	if t.opt.Breaker.Threshold <= 0 {
		return nil
	}
	t.mu.RLock()
	b := t.breakers[to]
	t.mu.RUnlock()
	if b != nil {
		return b
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b = t.breakers[to]; b == nil {
		b = NewBreaker(t.opt.Breaker)
		peer := to
		b.onTransition = func(from, next BreakerState) {
			t.observeTransition(from, next)
			if t.opt.OnPeerState != nil {
				t.opt.OnPeerState(peer, from, next)
			}
		}
		t.breakers[to] = b
	}
	return b
}

// observeTransition maintains the open/half-open gauges and the opens
// counter. Runs under the breaker's lock: O(1) only.
func (t *ResilientTransport) observeTransition(from, to BreakerState) {
	delta := func(s BreakerState, d int64) {
		switch s {
		case StateOpen:
			t.open.Add(d)
		case StateHalfOpen:
			t.halfOpen.Add(d)
		}
	}
	delta(from, -1)
	delta(to, +1)
	if to == StateOpen {
		t.opt.Tel.ResilienceBreakerOpened()
	}
	t.opt.Tel.ResilienceBreakerGauges(t.open.Load(), t.halfOpen.Load())
}

// Call implements Transport: attempt the inner call, classify failures,
// and retry transient ones under the policy, the budget, and the target's
// breaker. Terminal and Corrupt failures return immediately — the caller
// (routing) backtracks to an alternative peer instead of burning retries.
func (t *ResilientTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	tel := t.opt.Tel
	tel.ResilienceCall()
	t.opt.Budget.Deposit()
	br := t.breaker(to)
	kind := msg.Kind.String()

	for attempt := 1; ; attempt++ {
		if br != nil && !br.Allow() {
			tel.ResilienceFastFail()
			tel.ResilienceOutcome("fastfail")
			return nil, Mark(fmt.Errorf("%w: peer %v", ErrBreakerOpen, to), Transient)
		}
		resp, err := t.inner.Call(to, msg)
		if err == nil {
			if br != nil {
				br.Success()
			}
			if attempt == 1 {
				tel.ResilienceOutcome("ok")
			} else {
				tel.ResilienceOutcome("ok-retried")
			}
			t.publishBudget()
			return resp, nil
		}
		class := t.classify(err)
		switch class {
		case Terminal:
			// The peer answered; it is alive — an application error must
			// not push its breaker toward open.
			if br != nil {
				br.Success()
			}
			tel.ResilienceOutcome("terminal")
			return nil, err
		case Corrupt:
			if br != nil {
				br.Failure()
			}
			tel.ResilienceOutcome("corrupt")
			return nil, err
		}
		// Transient: count against the breaker, retry if allowed.
		if br != nil {
			br.Failure()
		}
		if attempt >= t.opt.Retry.MaxAttempts {
			tel.ResilienceOutcome("transient")
			t.publishBudget()
			return nil, err
		}
		if !t.opt.Budget.Withdraw() {
			tel.ResilienceBudgetExhausted()
			tel.ResilienceOutcome("budget-exhausted")
			t.publishBudget()
			return nil, err
		}
		t.retries.Add(1)
		tel.ResilienceRetry(kind)
		t.sleep(t.opt.Retry.Backoff(attempt, trace.Mix64(t.seq.Add(0x9e3779b97f4a7c15))))
	}
}

func (t *ResilientTransport) publishBudget() {
	if t.opt.Budget != nil {
		t.opt.Tel.ResilienceBudgetTokens(int64(t.opt.Budget.Tokens() * 1000))
	}
}

// Retries returns the lifetime number of retries issued.
func (t *ResilientTransport) Retries() int64 { return t.retries.Load() }

// BreakerView is one peer's breaker state for the /debug/breakers admin
// surface.
type BreakerView struct {
	Peer  addr.Addr `json:"peer"`
	State string    `json:"state"`
	Fails int       `json:"consecutive_fails"`
	Opens int64     `json:"opens"`
	// Until is when the next probe is allowed (zero unless open).
	Until time.Time `json:"retry_at"`
}

// Breakers snapshots every peer breaker, sorted by peer address.
func (t *ResilientTransport) Breakers() []BreakerView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]BreakerView, 0, len(t.breakers))
	for a, b := range t.breakers {
		state, fails, opens, until := b.Snapshot()
		v := BreakerView{Peer: a, State: state.String(), Fails: fails, Opens: opens}
		if state == StateOpen {
			v.Until = until
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
