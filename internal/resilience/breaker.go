package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState uint8

const (
	// StateClosed: calls flow; consecutive transient failures are counted.
	StateClosed BreakerState = iota
	// StateOpen: calls fail fast until the cooldown elapses.
	StateOpen
	// StateHalfOpen: one probe call is in flight; its outcome decides
	// between closing and reopening.
	StateHalfOpen
)

// String names the state for views and metrics.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes one peer's breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures that
	// opens the breaker (0 disables breakers entirely).
	Threshold int
	// Cooldown is how long an open breaker refuses calls before letting
	// one probe through (0 means 2s).
	Cooldown time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is one peer's circuit breaker: closed while the peer behaves,
// open (failing fast) after Threshold consecutive failures, half-open
// after the cooldown, when a single probe call decides recovery. Safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   BreakerState
	fails   int       // consecutive failures while closed
	until   time.Time // open: when the next probe is allowed
	probing bool      // half-open: a probe is in flight
	opens   int64     // lifetime closed/half-open → open transitions

	// onTransition, when set, observes every state change (old, new).
	// Called with the breaker's lock held — keep it O(1).
	onTransition func(from, to BreakerState)
}

// NewBreaker returns a closed breaker. A Threshold of 0 panics — callers
// gate on it before constructing (see ResilientTransport).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		panic("resilience: NewBreaker with non-positive threshold")
	}
	return &Breaker{cfg: cfg.withDefaults()}
}

// Clock overrides the breaker's time source (tests). Call before use; not
// synchronized.
func (b *Breaker) Clock(now func() time.Time) { b.cfg.now = now }

func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if to == StateOpen {
		b.opens++
	}
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether a call to the peer may proceed right now. In the
// open state it flips to half-open once the cooldown has elapsed and
// admits exactly one probe; concurrent calls keep failing fast until the
// probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.now().Before(b.until) {
			return false
		}
		b.transition(StateHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a call that reached the peer and got a well-formed
// answer (application errors included — the peer is alive). Closes the
// breaker from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.transition(StateClosed)
}

// Failure reports a transient or corrupt outcome. Closed breakers count
// toward the threshold; a failed half-open probe reopens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.transition(StateOpen)
			b.until = b.cfg.now().Add(b.cfg.Cooldown)
		}
	case StateHalfOpen:
		b.probing = false
		b.transition(StateOpen)
		b.until = b.cfg.now().Add(b.cfg.Cooldown)
	case StateOpen:
		// A straggler from before the breaker opened; nothing to count.
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the state, the consecutive-failure count, the lifetime
// number of opens, and (while open) when the next probe is allowed.
func (b *Breaker) Snapshot() (state BreakerState, fails int, opens int64, until time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.opens, b.until
}
