package resilience

import (
	"testing"
	"time"
)

func TestBackoffGrowsExponentiallyWithJitter(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	prevMax := time.Duration(0)
	for retry := 1; retry <= 4; retry++ {
		nominal := p.BaseDelay << (retry - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		d := p.Backoff(retry, 42)
		if d < nominal/2 || d >= nominal {
			t.Errorf("retry %d: backoff %v outside [%v, %v)", retry, d, nominal/2, nominal)
		}
		if nominal/2 < prevMax/2 {
			t.Errorf("retry %d: nominal shrank", retry)
		}
		prevMax = nominal
	}
	// Growth is capped at MaxDelay.
	if d := p.Backoff(10, 42); d >= p.MaxDelay {
		t.Errorf("capped backoff %v >= MaxDelay %v", d, p.MaxDelay)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	p := DefaultPolicy
	for retry := 1; retry <= 3; retry++ {
		if a, b := p.Backoff(retry, 7), p.Backoff(retry, 7); a != b {
			t.Errorf("same seed, retry %d: %v != %v", retry, a, b)
		}
	}
	// Different seeds decorrelate (not a hard guarantee per-draw, but three
	// identical draws in a row would mean the seed is ignored).
	same := 0
	for retry := 1; retry <= 3; retry++ {
		if p.Backoff(retry, 1) == p.Backoff(retry, 2) {
			same++
		}
	}
	if same == 3 {
		t.Error("backoff ignores the seed")
	}
}

func TestBudgetBoundsRetries(t *testing.T) {
	b := NewBudget(0.5, 2) // starts with 2 retries banked, earns 1 per 2 calls
	// Drain the initial burst.
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("initial burst refused")
	}
	if b.Withdraw() {
		t.Fatal("empty budget granted a retry")
	}
	// Two deposits earn exactly one retry.
	b.Deposit()
	if b.Withdraw() {
		t.Fatal("half a token granted a retry")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("earned retry refused")
	}
	if b.Withdraw() {
		t.Fatal("budget granted more than deposited")
	}
	if b.Refused() != 3 {
		t.Errorf("refused = %d, want 3", b.Refused())
	}
}

func TestBudgetCapsAtBurst(t *testing.T) {
	b := NewBudget(1.0, 3)
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	granted := 0
	for b.Withdraw() {
		granted++
	}
	if granted != 3 {
		t.Errorf("granted %d retries after saturation, want burst cap 3", granted)
	}
}

func TestNilBudgetNeverRefuses(t *testing.T) {
	var b *Budget
	b.Deposit()
	for i := 0; i < 10; i++ {
		if !b.Withdraw() {
			t.Fatal("nil budget refused")
		}
	}
	if b.Tokens() != 0 || b.Refused() != 0 {
		t.Error("nil budget reported state")
	}
}
