// Package resilience turns a best-effort Transport into a dependable one.
//
// The paper's availability result (Eq. 3) assumes a search keeps trying
// alternative references whenever a peer is offline with probability 1-p;
// the networked stack gives every protocol exactly one datagram's worth of
// luck per peer. This package supplies the missing layer between the two:
//
//   - error classification: failures are Transient (retry may help),
//     Terminal (the peer answered; retrying is waste), or Corrupt (the
//     peer misbehaved; retrying is waste and the peer is suspect);
//   - retries with exponential backoff and deterministic jitter, bounded
//     by a per-client retry budget so a failing community cannot amplify
//     its own load into a retry storm;
//   - per-peer circuit breakers (closed → open → half-open) so dead peers
//     fail fast instead of being re-timed-out on every contact.
//
// ResilientTransport composes the three around any Transport. The chaos
// harness that proves the layer lives in internal/node (ChaosTransport).
package resilience

import (
	"errors"
	"fmt"
)

// Class sorts RPC failures by what a caller should do about them.
type Class uint8

const (
	// Transient failures — lost datagrams, unreachable or overloaded
	// peers, timeouts — may succeed on retry.
	Transient Class = iota
	// Terminal failures mean the peer answered with an application error:
	// the peer is alive and retrying the same request is waste. Routing
	// should backtrack to an alternative reference instead.
	Terminal
	// Corrupt failures mean the peer answered garbage — an undecodable
	// frame or a response of the wrong shape. Retrying is waste and the
	// peer counts as misbehaving.
	Corrupt
)

// String names the class for labels and logs.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Terminal:
		return "terminal"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// classedError carries a Class down an error chain.
type classedError struct {
	err   error
	class Class
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

// Mark wraps err with an explicit class, recoverable via ClassOf. A nil
// err returns nil.
func Mark(err error, c Class) error {
	if err == nil {
		return nil
	}
	return &classedError{err: err, class: c}
}

// ClassOf walks the error chain for a class set by Mark. Unmarked errors
// default to Transient: an unexplained network failure is worth one more
// try, while the explicit classes must be claimed. Callers with richer
// context (internal/node knows its sentinel errors) supply their own
// classifier to ResilientTransport instead.
func ClassOf(err error) Class {
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	return Transient
}

// ErrBreakerOpen reports a call refused locally because the target peer's
// circuit breaker is open. It classifies as Transient — the peer may
// recover — but ResilientTransport never retries it: the whole point of
// the breaker is to fail fast so routing backtracks immediately.
var ErrBreakerOpen = errors.New("resilience: circuit open")
