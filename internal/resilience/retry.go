package resilience

import (
	"sync/atomic"
	"time"

	"pgrid/internal/trace"
)

// Policy bounds the retry loop for one RPC: how many attempts in total,
// and how the delay between them grows.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (0 or 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (0 means 500ms).
	MaxDelay time.Duration
}

// DefaultPolicy is the stance pgridnode ships with: three attempts,
// 25ms base backoff.
var DefaultPolicy = Policy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	return p
}

// Backoff returns the delay before retry number `retry` (1-based), with
// deterministic jitter: the delay doubles per retry, capped at MaxDelay,
// then is scaled into [1/2, 1) of itself by a splitmix64 draw of
// (seed, retry). Same seed, same schedule — chaos runs reproduce exactly —
// while distinct seeds decorrelate, so a community that lost the same
// datagram does not retry in lockstep.
func (p Policy) Backoff(retry int, seed uint64) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter into [d/2, d): keep at least half the nominal backoff so
	// growth stays exponential, spread the rest.
	u := trace.Mix64(seed + 0x9e3779b97f4a7c15*uint64(retry+1))
	frac := float64(u>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Budget is a token bucket that bounds retries to a fraction of the
// request load, so retries cannot amplify an outage: every first attempt
// deposits Ratio tokens, every retry withdraws one, and the bucket is
// capped at Burst. A fresh budget starts full, so low-traffic clients can
// still retry immediately. All methods are safe for concurrent use and
// nil-safe (a nil *Budget never refuses).
type Budget struct {
	ratio  int64 // millitokens deposited per call
	cap    int64 // millitokens
	tokens atomic.Int64

	deposited atomic.Int64 // calls seen (for observability)
	refused   atomic.Int64 // withdrawals refused
}

// NewBudget returns a budget allowing roughly ratio retries per call
// (e.g. 0.2 = one retry per five calls) with a burst reserve of `burst`
// retries. Non-positive arguments fall back to 0.1 and 10.
func NewBudget(ratio float64, burst int) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	b := &Budget{ratio: int64(ratio * 1000), cap: int64(burst) * 1000}
	if b.ratio <= 0 {
		b.ratio = 1
	}
	b.tokens.Store(b.cap)
	return b
}

// Deposit credits the budget for one first attempt.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.deposited.Add(1)
	for {
		cur := b.tokens.Load()
		next := cur + b.ratio
		if next > b.cap {
			next = b.cap
		}
		if cur == next || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Withdraw takes one retry token, reporting whether the retry is allowed.
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			b.refused.Add(1)
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// Tokens returns the current balance in whole retries.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return float64(b.tokens.Load()) / 1000
}

// Refused returns how many retries the budget has refused.
func (b *Budget) Refused() int64 {
	if b == nil {
		return 0
	}
	return b.refused.Load()
}
