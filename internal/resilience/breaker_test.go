package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for deterministic breaker
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestBreaker(threshold int, cooldown time.Duration, c *fakeClock) *Breaker {
	b := NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown})
	b.Clock(c.now)
	return b
}

// TestBreakerStateMachine pins the full closed → open → half-open cycle:
// open on the failure threshold, fail fast during the cooldown, admit one
// probe after it, reopen on probe failure, close on probe success.
func TestBreakerStateMachine(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(3, time.Second, clock)

	if got := b.State(); got != StateClosed {
		t.Fatalf("initial state = %v", got)
	}
	// Failures below the threshold keep the breaker closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2/3 failures = %v", got)
	}
	// The third consecutive failure opens it.
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold failures = %v", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted (half-open), and
	// concurrent calls keep failing fast while it is in flight.
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the recovery probe after the cooldown")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state during probe = %v", got)
	}
	if b.Allow() {
		t.Fatal("second call admitted while the probe is in flight")
	}

	// Probe failure reopens with a fresh cooldown.
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call immediately")
	}
	clock.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call before the fresh cooldown elapsed")
	}
	clock.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second recovery probe")
	}

	// Probe success closes it and resets the failure count: it takes a
	// full threshold of new failures to open again.
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %v", got)
	}
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("failure count survived the close: state = %v", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold failures post-recovery = %v", got)
	}

	_, _, opens, _ := b.Snapshot()
	if opens != 3 {
		t.Errorf("lifetime opens = %d, want 3", opens)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(3, time.Second, clock)
	// Interleaved successes keep resetting the streak: never opens.
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v after interleaved successes", got)
	}
}

func TestBreakerStragglerFailureWhileOpen(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(1, time.Second, clock)
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v", got)
	}
	// A straggler failure from a call issued before the open must not
	// extend the cooldown.
	clock.advance(900 * time.Millisecond)
	b.Failure()
	clock.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("straggler failure extended the cooldown")
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(1, time.Second, clock)
	var seen [][2]BreakerState
	b.onTransition = func(from, to BreakerState) { seen = append(seen, [2]BreakerState{from, to}) }

	b.Failure() // closed → open
	clock.advance(time.Second)
	b.Allow()   // open → half-open
	b.Success() // half-open → closed
	want := [][2]BreakerState{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestNewBreakerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("threshold 0 accepted")
		}
	}()
	NewBreaker(BreakerConfig{Threshold: 0})
}
