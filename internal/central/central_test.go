package central

import (
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

func entry(name string, version uint64) store.Entry {
	return store.Entry{Key: bitpath.HashKey(name, 10), Name: name, Holder: 1, Version: version}
}

func TestPublishAndLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(3)
	s.Publish(entry("a.mp3", 1))
	res := s.Lookup(rng, "a.mp3")
	if !res.Found || res.Entry.Name != "a.mp3" {
		t.Fatalf("res = %+v", res)
	}
	if res.Messages != 2 {
		t.Errorf("round trip cost %d messages, want 2", res.Messages)
	}
	if miss := s.Lookup(rng, "absent"); miss.Found {
		t.Errorf("miss = %+v", miss)
	}
}

func TestPublishVersionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := New(1)
	s.Publish(entry("a", 5))
	s.Publish(entry("a", 3))
	if res := s.Lookup(rng, "a"); res.Entry.Version != 5 {
		t.Errorf("stale publish overwrote: %+v", res)
	}
	s.Publish(entry("a", 6))
	if res := s.Lookup(rng, "a"); res.Entry.Version != 6 {
		t.Errorf("fresh publish ignored: %+v", res)
	}
}

func TestStorageIsFullCatalog(t *testing.T) {
	s := New(2)
	for i := 0; i < 100; i++ {
		s.Publish(store.Entry{Key: bitpath.FromUint(uint64(i), 10), Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Version: 1})
	}
	if got := s.StoragePerReplica(); got < 90 {
		t.Errorf("storage = %d, expected O(D)", got)
	}
}

func TestOfflineReplicasRetried(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(3)
	s.Publish(entry("a", 1))
	s.SetOnline(0, false)
	s.SetOnline(1, false)
	found := 0
	for i := 0; i < 50; i++ {
		res := s.Lookup(rng, "a")
		if res.Found {
			found++
			if res.Messages < 2 {
				t.Errorf("messages = %d", res.Messages)
			}
		}
	}
	if found != 50 {
		t.Errorf("lookups failed despite one online replica: %d/50", found)
	}
	s.SetOnline(2, false)
	if res := s.Lookup(rng, "a"); res.Found || res.Messages != 3 {
		t.Errorf("all-offline res = %+v, want 3 unanswered requests", res)
	}
}

func TestLoadConcentratesOnServer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := New(1)
	s.Publish(entry("a", 1))
	for i := 0; i < 1000; i++ {
		s.Lookup(rng, "a")
	}
	if got := s.MaxLoad(); got != 1000 {
		t.Errorf("MaxLoad = %d, want all 1000 queries on the single server", got)
	}
	if ls := s.Load(); len(ls) != 1 || ls[0] != 1000 {
		t.Errorf("Load = %v", ls)
	}
}

func TestLoadSpreadsAcrossReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(4)
	s.Publish(entry("a", 1))
	for i := 0; i < 4000; i++ {
		s.Lookup(rng, "a")
	}
	for i, l := range s.Load() {
		if l < 800 || l > 1200 {
			t.Errorf("replica %d load %d far from uniform 1000", i, l)
		}
	}
}

func TestLookupByKeyPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := New(1)
	s.Publish(store.Entry{Key: bitpath.MustParse("0011"), Name: "a", Version: 1})
	s.Publish(store.Entry{Key: bitpath.MustParse("0010"), Name: "b", Version: 1})
	s.Publish(store.Entry{Key: bitpath.MustParse("1100"), Name: "c", Version: 1})
	found, res := s.LookupByKey(rng, bitpath.MustParse("001"))
	if !res.Found || len(found) != 2 {
		t.Errorf("found = %v, res = %+v", found, res)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
