// Package central implements the centralized replicated-server baseline of
// the paper's Section 6 comparison: one (or a few replicated) index servers
// store a reference for every data item; clients resolve queries with a
// single round trip. Per query this is cheap, but the server's storage
// grows as O(D) and its load as O(N) — the scaling bottleneck the table in
// Section 6 contrasts with P-Grid's O(log D)/O(log N).
package central

import (
	"fmt"
	"math/rand"
	"sync"

	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

// Service is a replicated central index.
type Service struct {
	mu       sync.RWMutex
	replicas int
	online   []bool
	index    map[string]store.Entry // name → entry
	// load[i] counts queries served by replica i.
	load []int64
}

// New creates a service with the given number of replicas, all online.
func New(replicas int) *Service {
	if replicas < 1 {
		panic(fmt.Sprintf("central: New(%d) needs at least one replica", replicas))
	}
	s := &Service{
		replicas: replicas,
		online:   make([]bool, replicas),
		index:    make(map[string]store.Entry),
		load:     make([]int64, replicas),
	}
	for i := range s.online {
		s.online[i] = true
	}
	return s
}

// Publish indexes an entry. Every replica stores every entry (full
// replication), so the per-replica storage is the full catalog size.
func (s *Service) Publish(e store.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.index[e.Name]
	if ok && old.Version >= e.Version {
		return
	}
	s.index[e.Name] = e
}

// SetOnline toggles one replica.
func (s *Service) SetOnline(i int, v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.online[i] = v
}

// Result reports one lookup.
type Result struct {
	Entry store.Entry
	Found bool
	// Messages is the client's message cost: 2 per attempted round trip
	// (request + response), attempts to offline replicas cost 1 (the
	// unanswered request).
	Messages int
}

// Lookup resolves a name against a random online replica, retrying offline
// replicas like a client with a replica list would.
func (s *Service) Lookup(rng *rand.Rand, name string) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res Result
	for _, i := range rng.Perm(s.replicas) {
		if !s.online[i] {
			res.Messages++ // request that never got answered
			continue
		}
		res.Messages += 2
		s.load[i]++
		e, ok := s.index[name]
		if ok {
			res.Entry = e
			res.Found = true
		}
		return res
	}
	return res
}

// StoragePerReplica returns the number of index entries each replica holds
// — O(D) by construction.
func (s *Service) StoragePerReplica() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Load returns the per-replica query counts.
func (s *Service) Load() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.load))
	copy(out, s.load)
	return out
}

// MaxLoad returns the busiest replica's query count — the bottleneck metric
// of the Section 6 table (server cost O(N) per time unit when each of N
// clients issues a constant number of queries).
func (s *Service) MaxLoad() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max int64
	for _, l := range s.load {
		if l > max {
			max = l
		}
	}
	return max
}

// LookupByKey resolves by index key instead of name, scanning the catalog;
// provided for symmetry with P-Grid prefix queries in the comparison
// experiments. The central server can afford it: it has everything local.
func (s *Service) LookupByKey(rng *rand.Rand, key bitpath.Path) ([]store.Entry, Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res Result
	var found []store.Entry
	for _, i := range rng.Perm(s.replicas) {
		if !s.online[i] {
			res.Messages++
			continue
		}
		res.Messages += 2
		s.load[i]++
		for _, e := range s.index {
			if e.Key.HasPrefix(key) {
				found = append(found, e)
			}
		}
		res.Found = len(found) > 0
		return found, res
	}
	return nil, res
}
