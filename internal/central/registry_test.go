package central

import (
	"fmt"
	"sync"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

func TestRegistryCensus(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 || len(r.Census()) != 0 {
		t.Fatal("fresh registry not empty")
	}
	r.Record(3, bitpath.MustParse("01"))
	r.Record(1, bitpath.MustParse("01"))
	r.Record(2, bitpath.MustParse("1"))
	r.Record(2, bitpath.MustParse("10")) // a path refinement overwrites
	r.Record(4, bitpath.MustParse("10"))
	r.Record(5, bitpath.MustParse("0"))
	r.Forget(5)

	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	census := r.Census()
	if len(census) != 2 {
		t.Fatalf("census = %v, want 2 paths", census)
	}
	got01 := census[bitpath.MustParse("01")]
	if len(got01) != 2 || got01[0] != 1 || got01[1] != 3 {
		t.Errorf("census[01] = %v, want sorted [1 3]", got01)
	}
	got10 := census[bitpath.MustParse("10")]
	if len(got10) != 2 || got10[0] != 2 || got10[1] != 4 {
		t.Errorf("census[10] = %v, want sorted [2 4]", got10)
	}

	// The returned map is a copy: mutating it must not corrupt the registry.
	delete(census, bitpath.MustParse("01"))
	if len(r.Census()) != 2 {
		t.Error("census copy aliased registry state")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, _ := bitpath.Parse(fmt.Sprintf("%b", 2+i%4))
				r.Record(addr.Addr(w*1000+i), p)
				r.Census()
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 1600 {
		t.Errorf("len = %d, want 1600", r.Len())
	}
}
