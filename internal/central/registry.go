package central

import (
	"sort"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
)

// Registry is the monitoring twin of the Section 6 baseline: a central
// coordinator that is told every peer's responsibility path and can answer
// census questions from one table. The decentralized crawler in
// internal/node reconstructs the same census by walking references alone;
// tests compare the two views to prove the crawl is complete.
type Registry struct {
	mu    sync.RWMutex
	paths map[addr.Addr]bitpath.Path
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{paths: make(map[addr.Addr]bitpath.Path)}
}

// Record stores (or updates) one peer's responsibility path.
func (r *Registry) Record(a addr.Addr, p bitpath.Path) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paths[a] = p
}

// Forget drops a peer from the census (a departure the coordinator was
// told about).
func (r *Registry) Forget(a addr.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.paths, a)
}

// Len returns the number of registered peers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.paths)
}

// Census returns the replica groups: every responsibility path mapped to
// the sorted addresses of the peers holding it. The returned map is a
// fresh copy.
func (r *Registry) Census() map[bitpath.Path][]addr.Addr {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[bitpath.Path][]addr.Addr)
	for a, p := range r.paths {
		out[p] = append(out[p], a)
	}
	for _, addrs := range out {
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	}
	return out
}
