package workload

import (
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
)

func TestHotspotKeysConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := HotspotKeys(rng, 4000, 10, bitpath.MustParse("00"), 0.85)
	hot := 0
	for _, k := range keys {
		if k.Len() != 10 {
			t.Fatalf("bad key %q", k)
		}
		if k.HasPrefix("00") {
			hot++
		}
	}
	// 85% forced hot plus 15%·(1/4) incidental ≈ 0.8875.
	frac := float64(hot) / 4000
	if frac < 0.83 || frac > 0.94 {
		t.Errorf("hot fraction = %v, want ≈ 0.89", frac)
	}
	if skew := SkewMetric(keys, 2); skew < 0.4 {
		t.Errorf("hotspot keys not skewed: tv = %v", skew)
	}
}

func TestHotspotKeysZeroFractionIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := HotspotKeys(rng, 4000, 10, bitpath.MustParse("00"), 0)
	if skew := SkewMetric(keys, 2); skew > 0.1 {
		t.Errorf("fraction 0 should be uniform, tv = %v", skew)
	}
}

func TestHotspotKeysPanicsOnLongPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HotspotKeys(rand.New(rand.NewSource(3)), 1, 4, bitpath.MustParse("0000"), 0.5)
}
