// Package workload generates the synthetic data and behaviour the
// experiments run against: uniformly distributed binary keys (the paper's
// standing assumption), hashed file-sharing catalogs (the Gnutella
// motivation of Section 1), Zipf-skewed keys (the future-work extension of
// Section 6), and churn traces that generalize the static online
// probability of the system model.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

// UniformKeys draws n independent uniformly random keys of the given bit
// length.
func UniformKeys(rng *rand.Rand, n, bits int) []bitpath.Path {
	out := make([]bitpath.Path, n)
	for i := range out {
		out[i] = bitpath.Random(rng, bits)
	}
	return out
}

// ZipfKeys draws n keys of the given bit length whose integer values follow
// a Zipf distribution with exponent s ≥ 1 over the 2^bits key space —
// the skewed distribution the paper defers to future work. bits must be at
// most 62.
func ZipfKeys(rng *rand.Rand, n, bits int, s float64) []bitpath.Path {
	if bits < 1 || bits > 62 {
		panic(fmt.Sprintf("workload: ZipfKeys bits = %d out of range", bits))
	}
	if s <= 1 {
		s = 1.0000001 // rand.Zipf requires s > 1
	}
	z := rand.NewZipf(rng, s, 1, uint64(1)<<uint(bits)-1)
	out := make([]bitpath.Path, n)
	for i := range out {
		out[i] = bitpath.FromUint(z.Uint64(), bits)
	}
	return out
}

// HotspotKeys draws n keys of which fraction hotFraction fall uniformly
// under hotPrefix and the rest uniformly over the whole space — region
// skew, as opposed to ZipfKeys' value skew. Region skew is what adaptive
// splitting can flatten: the hot region subdivides while cold regions
// keep replicas. (Value skew — many items sharing one exact key — cannot
// be split away by any access structure.)
func HotspotKeys(rng *rand.Rand, n, bits int, hotPrefix bitpath.Path, hotFraction float64) []bitpath.Path {
	if hotPrefix.Len() >= bits {
		panic(fmt.Sprintf("workload: HotspotKeys prefix %q too long for %d bits", hotPrefix, bits))
	}
	out := make([]bitpath.Path, n)
	for i := range out {
		if rng.Float64() < hotFraction {
			out[i] = hotPrefix + bitpath.Random(rng, bits-hotPrefix.Len())
		} else {
			out[i] = bitpath.Random(rng, bits)
		}
	}
	return out
}

// Catalog is a synthetic file-sharing catalog: named items spread over
// hosting peers, with index keys derived from the names.
type Catalog struct {
	Entries []store.Entry
}

// FileCatalog builds a catalog of n files named like MP3 shares, hosted by
// uniformly random peers out of nPeers, with keys hashed to the given bit
// length (uniform by construction, matching the paper's assumption).
func FileCatalog(rng *rand.Rand, n, nPeers, bits int) Catalog {
	c := Catalog{Entries: make([]store.Entry, n)}
	for i := range c.Entries {
		name := FileName(rng, i)
		c.Entries[i] = store.Entry{
			Key:     bitpath.HashKey(name, bits),
			Name:    name,
			Holder:  addr.Addr(rng.Intn(nPeers)),
			Version: 1,
		}
	}
	return c
}

var (
	artists = []string{"aurora", "basement", "cassette", "delta", "echoes",
		"fjord", "glasshouse", "horizon", "indigo", "juniper", "krypton",
		"lighthouse", "monsoon", "nebula", "orchid", "paperboats"}
	tracks = []string{"midnight", "static", "gravity", "harbor", "neon",
		"wildfire", "undertow", "satellites", "comet", "driftwood",
		"polaroid", "violet", "winterlong", "afterglow", "bloom", "circuit"}
)

// FileName fabricates a plausible shared-file name; the index i keeps
// names unique within a catalog.
func FileName(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s-%s-%02d.mp3",
		artists[rng.Intn(len(artists))], tracks[rng.Intn(len(tracks))], i)
}

// Names returns the catalog's item names.
func (c Catalog) Names() []string {
	out := make([]string, len(c.Entries))
	for i, e := range c.Entries {
		out[i] = e.Name
	}
	return out
}

// Churn is a two-state (online/offline) Markov session model per peer. It
// generalizes the paper's static online probability: at every step an
// online peer goes offline with probability POffline and an offline peer
// comes back with probability POnline. The stationary online fraction is
// POnline / (POnline + POffline).
type Churn struct {
	POnline  float64 // offline → online transition probability per step
	POffline float64 // online → offline transition probability per step
}

// StationaryOnline returns the long-run fraction of online peers.
func (c Churn) StationaryOnline() float64 {
	d := c.POnline + c.POffline
	if d == 0 {
		return 1
	}
	return c.POnline / d
}

// ChurnForOnlineFraction builds a Churn model with the given stationary
// online fraction p and mean online session length (in steps).
func ChurnForOnlineFraction(p float64, meanOnlineSteps float64) Churn {
	if p <= 0 || p >= 1 || meanOnlineSteps < 1 {
		panic(fmt.Sprintf("workload: ChurnForOnlineFraction(%v, %v) out of range", p, meanOnlineSteps))
	}
	pOff := 1 / meanOnlineSteps
	// p = pOn/(pOn+pOff)  ⇒  pOn = p·pOff/(1-p)
	pOn := p * pOff / (1 - p)
	return Churn{POnline: pOn, POffline: pOff}
}

// Step advances one peer's state and returns the new state.
func (c Churn) Step(rng *rand.Rand, online bool) bool {
	if online {
		return rng.Float64() >= c.POffline
	}
	return rng.Float64() < c.POnline
}

// SkewMetric quantifies how imbalanced a key sample is: the total-variation
// distance between the empirical distribution of the first `prefixBits`
// bits and the uniform distribution (0 = perfectly uniform, →1 = fully
// concentrated). Used by the skew-extension experiments.
func SkewMetric(keys []bitpath.Path, prefixBits int) float64 {
	if len(keys) == 0 {
		return 0
	}
	buckets := 1 << uint(prefixBits)
	counts := make([]int, buckets)
	for _, k := range keys {
		if k.Len() < prefixBits {
			panic(fmt.Sprintf("workload: key %s shorter than %d bits", k, prefixBits))
		}
		counts[k.Prefix(prefixBits).Uint()]++
	}
	tv := 0.0
	uniform := 1 / float64(buckets)
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(len(keys)) - uniform)
	}
	return tv / 2
}
