package workload

import (
	"math"
	"math/rand"
	"testing"

	"pgrid/internal/bitpath"
)

func TestUniformKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := UniformKeys(rng, 4000, 10)
	if len(keys) != 4000 {
		t.Fatalf("len = %d", len(keys))
	}
	for _, k := range keys {
		if k.Len() != 10 || !k.Valid() {
			t.Fatalf("bad key %q", k)
		}
	}
	if skew := SkewMetric(keys, 3); skew > 0.1 {
		t.Errorf("uniform keys look skewed: tv = %v", skew)
	}
}

func TestZipfKeysAreSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := ZipfKeys(rng, 4000, 10, 1.3)
	for _, k := range keys {
		if k.Len() != 10 {
			t.Fatalf("bad key %q", k)
		}
	}
	skewZ := SkewMetric(keys, 3)
	skewU := SkewMetric(UniformKeys(rng, 4000, 10), 3)
	if skewZ <= skewU+0.1 {
		t.Errorf("zipf skew %v not clearly above uniform %v", skewZ, skewU)
	}
}

func TestZipfKeysPanicsOnBadBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bits := range []int{0, 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d did not panic", bits)
				}
			}()
			ZipfKeys(rng, 1, bits, 1.2)
		}()
	}
}

func TestFileCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := FileCatalog(rng, 500, 100, 12)
	if len(c.Entries) != 500 {
		t.Fatalf("len = %d", len(c.Entries))
	}
	names := map[string]bool{}
	for _, e := range c.Entries {
		if e.Key.Len() != 12 {
			t.Fatalf("key length %d", e.Key.Len())
		}
		if int(e.Holder) < 0 || int(e.Holder) >= 100 {
			t.Fatalf("holder %v out of range", e.Holder)
		}
		if e.Key != bitpath.HashKey(e.Name, 12) {
			t.Fatalf("key not derived from name: %v", e)
		}
		names[e.Name] = true
	}
	if len(names) < 400 {
		t.Errorf("only %d distinct names in 500 entries", len(names))
	}
	if got := len(c.Names()); got != 500 {
		t.Errorf("Names len = %d", got)
	}
}

func TestChurnStationaryFraction(t *testing.T) {
	c := ChurnForOnlineFraction(0.3, 50)
	if got := c.StationaryOnline(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("stationary = %v", got)
	}
	// Simulate one peer for a long time; the empirical online fraction
	// must approach 0.3.
	rng := rand.New(rand.NewSource(5))
	online, onSteps := true, 0
	steps := 200000
	for i := 0; i < steps; i++ {
		online = c.Step(rng, online)
		if online {
			onSteps++
		}
	}
	got := float64(onSteps) / float64(steps)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("empirical online fraction = %v, want ≈ 0.3", got)
	}
}

func TestChurnMeanSessionLength(t *testing.T) {
	c := ChurnForOnlineFraction(0.5, 20)
	rng := rand.New(rand.NewSource(6))
	// Measure mean online-session length.
	sessions, total := 0, 0
	online, cur := false, 0
	for i := 0; i < 400000; i++ {
		next := c.Step(rng, online)
		if next {
			cur++
		}
		if online && !next {
			sessions++
			total += cur
			cur = 0
		}
		online = next
	}
	if sessions == 0 {
		t.Fatal("no sessions observed")
	}
	mean := float64(total) / float64(sessions)
	if math.Abs(mean-20) > 2 {
		t.Errorf("mean session length = %v, want ≈ 20", mean)
	}
}

func TestChurnEdgeCases(t *testing.T) {
	if got := (Churn{}).StationaryOnline(); got != 1 {
		t.Errorf("zero churn stationary = %v, want 1 (never leaves)", got)
	}
	for _, f := range []func(){
		func() { ChurnForOnlineFraction(0, 10) },
		func() { ChurnForOnlineFraction(1, 10) },
		func() { ChurnForOnlineFraction(0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSkewMetricBounds(t *testing.T) {
	// Fully concentrated sample: all keys share the same 3-bit prefix.
	keys := make([]bitpath.Path, 100)
	for i := range keys {
		keys[i] = bitpath.MustParse("000") + bitpath.Path("0101")
	}
	skew := SkewMetric(keys, 3)
	if skew < 0.8 {
		t.Errorf("concentrated skew = %v, want near 1", skew)
	}
	if got := SkewMetric(nil, 3); got != 0 {
		t.Errorf("empty skew = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("short key must panic")
		}
	}()
	SkewMetric([]bitpath.Path{bitpath.MustParse("01")}, 3)
}

func TestFileNameDeterministicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := FileName(rng, 3)
	if len(n) == 0 || n[len(n)-4:] != ".mp3" {
		t.Errorf("name = %q", n)
	}
}
