package node

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/resilience"
	"pgrid/internal/wire"
)

// infoStub answers every call with a well-formed InfoResp — the minimal
// inner transport for fault-injection unit tests.
type infoStub struct{ calls atomic.Int64 }

func (s *infoStub) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	s.calls.Add(1)
	return &wire.Message{Kind: wire.KindInfoResp, From: to, InfoResp: &wire.InfoResp{Addr: to}}, nil
}

func TestChaosDropRate(t *testing.T) {
	ct := NewChaosTransport(&infoStub{}, ChaosConfig{Drop: 0.25, Seed: 1})
	const calls = 4000
	dropped := 0
	for i := 0; i < calls; i++ {
		if _, err := ct.Call(1, &wire.Message{Kind: wire.KindInfo}); err != nil {
			if !errors.Is(err, ErrOffline) {
				t.Fatalf("drop surfaced as %v, want ErrOffline", err)
			}
			dropped++
		}
	}
	rate := float64(dropped) / calls
	if rate < 0.20 || rate > 0.30 {
		t.Errorf("drop rate %.3f, want ≈0.25", rate)
	}
	st := ct.Stats()
	if st.Total != calls || st.Dropped != int64(dropped) {
		t.Errorf("stats %+v disagree with observed total=%d dropped=%d", st, calls, dropped)
	}
}

func TestChaosAsymmetricPartition(t *testing.T) {
	ct := NewChaosTransport(&infoStub{}, ChaosConfig{Seed: 2})
	ct.Block(1, 2) // 1 can no longer reach 2; 2 can still reach 1

	if _, err := ct.Call(2, &wire.Message{Kind: wire.KindInfo, From: 1}); !errors.Is(err, ErrOffline) {
		t.Errorf("blocked direction 1→2: err = %v, want ErrOffline", err)
	}
	if _, err := ct.Call(1, &wire.Message{Kind: wire.KindInfo, From: 2}); err != nil {
		t.Errorf("open direction 2→1 failed: %v", err)
	}
	if got := ct.Stats().Blocked; got != 1 {
		t.Errorf("blocked count = %d, want 1", got)
	}

	ct.Unblock(1, 2)
	if _, err := ct.Call(2, &wire.Message{Kind: wire.KindInfo, From: 1}); err != nil {
		t.Errorf("healed direction 1→2 failed: %v", err)
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	ct := NewChaosTransport(&infoStub{}, ChaosConfig{Seed: 3})
	ct.Partition([]addr.Addr{1, 2}, []addr.Addr{3})
	for _, pair := range [][2]addr.Addr{{1, 3}, {3, 1}, {2, 3}, {3, 2}} {
		if _, err := ct.Call(pair[1], &wire.Message{Kind: wire.KindInfo, From: pair[0]}); !errors.Is(err, ErrOffline) {
			t.Errorf("%v→%v crossed the partition: err = %v", pair[0], pair[1], err)
		}
	}
	// Within a side the network is intact.
	if _, err := ct.Call(2, &wire.Message{Kind: wire.KindInfo, From: 1}); err != nil {
		t.Errorf("intra-side call failed: %v", err)
	}
	ct.Heal()
	if _, err := ct.Call(3, &wire.Message{Kind: wire.KindInfo, From: 1}); err != nil {
		t.Errorf("call after Heal failed: %v", err)
	}
}

func TestChaosSlowPeerAndLatency(t *testing.T) {
	ct := NewChaosTransport(&infoStub{}, ChaosConfig{Seed: 4})
	var slept time.Duration
	ct.sleep = func(d time.Duration) { slept += d }

	ct.SetSlow(2, 5*time.Millisecond)
	ct.Call(2, &wire.Message{Kind: wire.KindInfo})
	if slept < 5*time.Millisecond {
		t.Errorf("slow peer slept %v, want ≥5ms", slept)
	}
	slept = 0
	ct.Call(3, &wire.Message{Kind: wire.KindInfo})
	if slept != 0 {
		t.Errorf("fast peer slept %v, want 0", slept)
	}
	ct.SetSlow(2, 0) // clears
	slept = 0
	ct.Call(2, &wire.Message{Kind: wire.KindInfo})
	if slept != 0 {
		t.Errorf("cleared slow peer slept %v, want 0", slept)
	}
	if ct.Stats().Delayed != 1 {
		t.Errorf("delayed count = %d, want 1", ct.Stats().Delayed)
	}
}

func TestChaosCorruptionModes(t *testing.T) {
	ct := NewChaosTransport(&infoStub{}, ChaosConfig{Corrupt: 0.9, Seed: 5})
	var garbage, stripped, wrongKind, clean int
	for i := 0; i < 400; i++ {
		resp, err := ct.Call(1, &wire.Message{Kind: wire.KindInfo})
		switch {
		case err != nil:
			if !errors.Is(err, wire.ErrCorrupt) {
				t.Fatalf("corruption surfaced as %v, want wire.ErrCorrupt", err)
			}
			if Classify(err) != resilience.Corrupt {
				t.Fatalf("Classify(%v) = %v, want Corrupt", err, Classify(err))
			}
			garbage++
		case resp.Kind == wire.KindInfoResp && resp.InfoResp == nil:
			stripped++
		case resp.Kind != wire.KindInfoResp:
			wrongKind++
		default:
			clean++
		}
	}
	if garbage == 0 || stripped == 0 || wrongKind == 0 {
		t.Errorf("corruption modes not all exercised: garbage=%d stripped=%d wrongKind=%d", garbage, stripped, wrongKind)
	}
	if clean == 0 {
		t.Error("every response corrupted at p=0.9 over 400 calls — rng suspect")
	}
	if got := ct.Stats().Corrupted; got != int64(garbage+stripped+wrongKind) {
		t.Errorf("corrupted stat = %d, want %d", got, garbage+stripped+wrongKind)
	}
}

func TestChaosConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChaosTransport(Drop=1) did not panic")
		}
	}()
	NewChaosTransport(&infoStub{}, ChaosConfig{Drop: 1})
}

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want resilience.Class
	}{
		{"offline", errLostPeer(7), resilience.Transient},
		{"breaker open", resilience.ErrBreakerOpen, resilience.Transient},
		{"corrupt frame", wire.ErrCorrupt, resilience.Corrupt},
		{"malformed response", ErrMalformed, resilience.Corrupt},
		{"application error", errors.New("node 3: no such entry"), resilience.Terminal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func errLostPeer(a addr.Addr) error {
	return &wrapped{ErrOffline, a}
}

// wrapped is a hand-rolled wrapper so the table exercises errors.Is
// through a chain, not just the sentinel itself.
type wrapped struct {
	inner error
	peer  addr.Addr
}

func (w *wrapped) Error() string { return "call failed" }
func (w *wrapped) Unwrap() error { return w.inner }
