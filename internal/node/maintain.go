package node

import (
	"pgrid/internal/addr"
	"pgrid/internal/wire"
)

// MaintainResult reports one self-maintenance round of a networked node.
type MaintainResult struct {
	Probed   int // references probed over the wire
	Dropped  int // dead or invalid references removed
	Added    int // fresh references learned from live buddies
	Messages int // wire messages spent
}

// Maintain runs one reference-maintenance round over the transport — the
// networked counterpart of core.Maintain: for every level, fetch each
// referenced peer's Info, drop references that are unreachable or whose
// path no longer satisfies the Section 2 property (the peer may have been
// replaced), and refill the level toward refmax from live references'
// buddies (validated the same way). pgridnode runs this periodically with
// -maintain.
func (n *Node) Maintain(fetch int) MaintainResult {
	var res MaintainResult
	path := n.self.Path()

	valid := func(level int, info *wire.InfoResp) bool {
		return info != nil &&
			info.Path.Len() >= level &&
			info.Path.Prefix(level-1) == path.Prefix(level-1) &&
			info.Path.Bit(level) != path.Bit(level)
	}
	fetchInfo := func(a addr.Addr) *wire.InfoResp {
		res.Messages++
		resp, err := n.tr.Call(a, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
		if err != nil || resp.InfoResp == nil {
			return nil
		}
		return resp.InfoResp
	}

	for level := 1; level <= path.Len(); level++ {
		refs := n.self.RefsAt(level)
		kept := addr.Set{}
		var liveInfos []*wire.InfoResp
		for _, r := range refs.Slice() {
			res.Probed++
			info := fetchInfo(r)
			ok := valid(level, info)
			n.tel.RefLiveness(level, ok)
			if ok {
				kept.Add(r)
				liveInfos = append(liveInfos, info)
			} else {
				res.Dropped++
			}
		}

		// Refill from live references' buddies: a valid buddy shares the
		// full path of the reference, hence its first `level` bits.
		fetched := 0
		for _, info := range liveInfos {
			if kept.Len() >= n.cfg.RefMax || fetched >= fetch {
				break
			}
			fetched++
			for _, b := range info.Buddies.ToSet().Slice() {
				if kept.Len() >= n.cfg.RefMax {
					break
				}
				if b == n.Addr() || kept.Contains(b) {
					continue
				}
				if bi := fetchInfo(b); valid(level, bi) {
					kept.Add(b)
					res.Added++
				}
			}
		}
		n.self.SetRefsAt(level, kept)
	}
	return res
}
