package node

import (
	"fmt"

	"pgrid/internal/addr"
	"pgrid/internal/wire"
)

// MaintainResult reports one self-maintenance round of a networked node.
type MaintainResult struct {
	Probed    int // references probed over the wire
	Dropped   int // dead or invalid references removed
	Added     int // fresh references learned from live buddies
	Malformed int // peers that answered, but with the wrong shape
	Messages  int // wire messages spent
}

// Maintain runs one reference-maintenance round over the transport — the
// networked counterpart of core.Maintain: for every level, fetch each
// referenced peer's Info, drop references that are unreachable or whose
// path no longer satisfies the Section 2 property (the peer may have been
// replaced), and refill the level toward refmax from live references'
// buddies (validated the same way). pgridnode runs this periodically with
// -maintain.
func (n *Node) Maintain(fetch int) MaintainResult {
	var res MaintainResult
	path := n.self.Path()

	valid := func(level int, info *wire.InfoResp) bool {
		return info != nil &&
			info.Path.Len() >= level &&
			info.Path.Prefix(level-1) == path.Prefix(level-1) &&
			info.Path.Bit(level) != path.Bit(level)
	}
	fetchInfo := func(a addr.Addr) (*wire.InfoResp, error) {
		res.Messages++
		resp, err := n.tr.Call(a, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
		if err != nil {
			return nil, err
		}
		if resp.InfoResp == nil {
			// The peer answered, just not with an Info — a misbehaving peer,
			// counted apart from churned ones so the two failure modes stay
			// distinguishable in MaintainResult and in telemetry.
			res.Malformed++
			n.tel.MalformedResponse("info")
			return nil, fmt.Errorf("%w: node %v answered info with kind %v", ErrMalformed, a, resp.Kind)
		}
		return resp.InfoResp, nil
	}

	for level := 1; level <= path.Len(); level++ {
		refs := n.self.RefsAt(level)
		kept := addr.Set{}
		dropped := addr.Set{}
		var liveInfos []*wire.InfoResp
		for _, r := range refs.Slice() {
			res.Probed++
			info, _ := fetchInfo(r)
			ok := valid(level, info)
			n.tel.RefLiveness(level, ok)
			if ok {
				kept.Add(r)
				liveInfos = append(liveInfos, info)
			} else {
				dropped.Add(r)
				res.Dropped++
			}
		}

		// Refill from live references' buddies: a valid buddy shares the
		// full path of the reference, hence its first `level` bits. A
		// reference dropped as dead above is excluded for the rest of the
		// round, even if a fresh fetch would now validate it — with
		// sessionful churn a peer can return between the probe and the
		// refill, and readmitting it here would mean the round's Dropped
		// and the final set disagree about what was just evicted. It can
		// be re-learned cleanly next round.
		fetched := 0
		for _, info := range liveInfos {
			if kept.Len() >= n.cfg.RefMax || fetched >= fetch {
				break
			}
			fetched++
			for _, b := range info.Buddies.ToSet().Slice() {
				if kept.Len() >= n.cfg.RefMax {
					break
				}
				if b == n.Addr() || kept.Contains(b) || dropped.Contains(b) {
					continue
				}
				if bi, err := fetchInfo(b); err == nil && valid(level, bi) {
					kept.Add(b)
					res.Added++
				}
			}
		}
		n.self.SetRefsAt(level, kept)
	}
	return res
}
