package node

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
	"pgrid/internal/repair"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// RepairConfig tunes one repairer.
type RepairConfig struct {
	// Budget is the maximum number of wire messages one repair round may
	// spend. Required.
	Budget int
	// Fetch bounds how many live references contribute refill candidates
	// per level (the node.Maintain fetch knob). Defaults to 2.
	Fetch int
}

// Repairer is the self-healing loop of a networked node: each round it
// detects structural faults — references on the wrong side of the Section 2
// prefix invariant, dead directory entries, replicas whose path or store
// fingerprint drifted from their group, entries stored outside the node's
// responsibility — and heals what it can within the message budget. The
// design follows the self-stabilization view of P-Grid maintenance
// (arXiv 1809.04923): every action moves the node toward a legal state
// regardless of how the current state was reached, so the community
// converges from arbitrary corruption.
//
// What one round cannot heal (a replica group with no path majority, a
// level whose references all died at once, syncs the budget cut off) is
// counted as unhealed and left for the next round; repair.State turns that
// tally into the "repairing"/"stuck" verdict operators see.
type Repairer struct {
	node  *Node
	every time.Duration
	cfg   RepairConfig

	mu       sync.Mutex
	rng      *rand.Rand
	rounds   int64
	messages int64

	lastFaults, lastHeals, lastUnhealed int64

	faults map[string]int64
	heals  map[string]int64
}

// NewRepairer attaches a repair loop to the node and registers it so the
// node answers wire.KindRepair. Interval and budget must be positive.
// Health probing is enabled as a side effect (repair shares the liveness
// tracker). Call before the node starts serving; the repairer field is
// not synchronized.
func NewRepairer(n *Node, every time.Duration, cfg RepairConfig, seed int64) *Repairer {
	if every <= 0 {
		panic(fmt.Sprintf("node: repair interval %v must be positive", every))
	}
	if cfg.Budget <= 0 {
		panic(fmt.Sprintf("node: repair budget %d must be positive", cfg.Budget))
	}
	if cfg.Fetch <= 0 {
		cfg.Fetch = 2
	}
	n.EnableHealth()
	r := &Repairer{
		node:   n,
		every:  every,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		faults: make(map[string]int64),
		heals:  make(map[string]int64),
	}
	n.repairer = r
	return r
}

// Run ticks the repair loop until the context is cancelled. Rounds are
// jittered uniformly over [0.75, 1.25] of the interval so a fleet started
// together does not repair in lockstep.
func (r *Repairer) Run(ctx context.Context) {
	for {
		r.mu.Lock()
		d := r.every/4*3 + time.Duration(r.rng.Int63n(int64(r.every)/2+1))
		r.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
			r.Tick()
		}
	}
}

// Status returns the repairer's cumulative tallies. Nil-safe: a nil
// repairer reports Enabled=false, which is how peers without repair
// answer wire.KindRepair.
func (r *Repairer) Status() repair.Status {
	if r == nil {
		return repair.Status{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return repair.Status{
		Enabled:      true,
		Rounds:       r.rounds,
		Messages:     r.messages,
		LastFaults:   r.lastFaults,
		LastHeals:    r.lastHeals,
		LastUnhealed: r.lastUnhealed,
		Faults:       repair.Tallies(r.faults),
		Heals:        repair.Tallies(r.heals),
	}
}

// Tick runs one detection+healing round. Rounds are serialized; a
// triggered round (wire.KindRepair with Trigger) and the background loop
// never interleave. An offline node skips the round entirely.
func (r *Repairer) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.node
	if !n.Online() {
		return
	}

	var (
		spent    int
		faults   int64
		heals    int64
		unhealed int64
		spans    []trace.Span
	)
	// spend reserves k messages against the round budget; charge books
	// downstream costs already incurred (routed queries report their
	// subtree's message count after the fact).
	spend := func(k int) bool {
		if spent+k > r.cfg.Budget {
			return false
		}
		spent += k
		return true
	}
	charge := func(k int) { spent += k }
	fault := func(class repair.FaultClass) {
		faults++
		r.faults[class]++
		n.tel.RepairFault(class)
	}
	heal := func(action repair.Action, level int, ref addr.Addr) {
		heals++
		r.heals[action]++
		n.tel.RepairHeal(action)
		spans = append(spans, trace.Span{
			ID: uint64(len(spans) + 1), Peer: n.Addr(), Path: n.Path(),
			Level: level, Ref: ref, Matched: true,
		})
	}

	// Phase 1 — replica group. Fetch every buddy's health digest (path +
	// store fingerprint) and let the group vote on what this node's path
	// should be: a corrupted path loses a strict-majority vote against
	// its replicas and is adopted back (Restore keeps the references that
	// are still valid under the common prefix). Reachable buddies that
	// replicate a different partition are orphan replicas and are dropped;
	// unreachable ones are kept — absence is churn, not evidence.
	snap := n.self.Snapshot()
	path := snap.Path
	views := make([]repair.BuddyView, 0, snap.Buddies.Len())
	for _, b := range snap.Buddies.Sorted() {
		v := repair.BuddyView{Addr: b}
		if spend(1) {
			resp, err := n.tr.Call(b, &wire.Message{Kind: wire.KindHealth, From: n.Addr(),
				Health: &wire.HealthReq{}})
			if err == nil && resp.HealthResp != nil {
				d := resp.HealthResp.Digest
				v = repair.BuddyView{Addr: b, Path: d.Path, Entries: d.Entries,
					IndexHash: d.IndexHash, Reachable: true}
			}
		}
		views = append(views, v)
	}
	want, confirmed := repair.PluralityPath(path, views)
	switch {
	case confirmed && want != path:
		fault(repair.FaultPathDrift)
		refs := make([]addr.Set, want.Len())
		keep := bitpath.CommonPrefixLen(path, want)
		for i := 0; i < keep && i < len(snap.Refs); i++ {
			refs[i] = snap.Refs[i]
		}
		if err := n.self.Restore(peer.Snapshot{
			Addr: snap.Addr, Path: want, Refs: refs,
			Buddies: snap.Buddies, Online: true,
		}); err == nil {
			heal(repair.ActionAdoptPath, 0, addr.Nil)
			path = want
		} else {
			confirmed = false
			unhealed++
		}
	case !confirmed:
		// No trustworthy winner, so no side may be adopted. A reachable
		// member on a different path can still be dropped without a vote
		// when its link is one-sided: a genuine replica lists this node in
		// its own buddy set, an injected cross-partition link does not —
		// and if this node is the corrupt one, its honest replicas DO
		// reciprocate, so they survive the test. Reciprocal disagreement
		// is real ambiguity and stays detected-but-unhealed for a later
		// round with more of the group reachable (or the operator).
		drift := false
		for _, v := range views {
			if !v.Reachable || v.Path == path {
				continue
			}
			if spend(1) {
				resp, err := n.tr.Call(v.Addr, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
				if err == nil && resp.InfoResp != nil &&
					!resp.InfoResp.Buddies.ToSet().Contains(n.Addr()) {
					fault(repair.FaultOrphanReplica)
					if n.self.RemoveBuddy(v.Addr) {
						heal(repair.ActionDropBuddy, 0, v.Addr)
					}
					continue
				}
			}
			drift = true
		}
		if drift {
			fault(repair.FaultPathDrift)
			unhealed++
		}
	}
	if confirmed {
		// Only a vote-confirmed path may condemn buddies: dropping every
		// buddy that disagrees with an UNconfirmed (possibly corrupt) own
		// path would evict the honest replicas and keep the liars.
		for _, v := range views {
			if !v.Reachable || v.Path == path {
				continue
			}
			fault(repair.FaultOrphanReplica)
			if n.self.RemoveBuddy(v.Addr) {
				heal(repair.ActionDropBuddy, 0, v.Addr)
			}
		}
	}

	// Phase 2 — references, level by level. Every reference is probed:
	// reachable-but-wrong-side references always go (they violate the
	// invariant right now); dead ones go only if the level retains at
	// least one live reference. A whole level answering dead at once is
	// likelier a partition than simultaneous churn, so it is kept as-is
	// and counted unhealed — unless a search for the complementary
	// subtree routed through the rest of the structure succeeds, which
	// refutes the partition hypothesis and licenses the eviction.
	// Evicted slots refill from live references' buddies, never
	// readmitting an address dropped this round; a level left empty
	// refills by routing a search for the complementary subtree.
	for level := 1; level <= path.Len(); level++ {
		refs := n.self.RefsAt(level)
		if refs.Len() == 0 {
			fault(repair.FaultStarvedLevel)
			if !r.searchRefill(path, level, spend, charge, heal) {
				unhealed++
			}
			continue
		}
		kept := addr.Set{}
		dropped := addr.Set{}
		var dead []addr.Addr
		var liveInfos []*wire.InfoResp
		for _, ref := range refs.Sorted() {
			if !spend(1) {
				kept.Add(ref) // budget exhausted: keep unexamined refs
				continue
			}
			resp, err := n.tr.Call(ref, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
			alive := err == nil && resp.InfoResp != nil
			valid := alive && repair.ValidRef(path, level, resp.InfoResp.Path)
			n.htr.Observe(level, valid)
			n.tel.RefLiveness(level, valid)
			switch {
			case !alive:
				dead = append(dead, ref)
			case !valid:
				fault(repair.FaultWrongSide)
				dropped.Add(ref)
				heal(repair.ActionEvictRef, level, ref)
			default:
				kept.Add(ref)
				liveInfos = append(liveInfos, resp.InfoResp)
			}
		}
		if len(liveInfos) == 0 && kept.Len() == 0 && len(dead) > 0 {
			// Whole level dead at once: likelier a partition than
			// simultaneous churn — unless a search routed through the rest
			// of the structure succeeds, which refutes the partition
			// hypothesis and proves the references really are gone. Search
			// first; evict the dead only on success, else keep the level
			// as-is and count it unhealed.
			fault(repair.FaultStarvedLevel)
			n.self.SetRefsAt(level, addr.Set{})
			if r.searchRefill(path, level, spend, charge, heal) {
				for _, d := range dead {
					fault(repair.FaultDeadRef)
					heal(repair.ActionEvictRef, level, d)
				}
			} else {
				restored := addr.Set{}
				for _, d := range dead {
					restored.Add(d)
				}
				n.self.SetRefsAt(level, restored)
				unhealed++
			}
			continue
		}
		for _, d := range dead {
			fault(repair.FaultDeadRef)
			dropped.Add(d)
			heal(repair.ActionEvictRef, level, d)
		}
		// Refill toward refmax from live references' buddies, validated
		// the same way as in Maintain.
		fetched := 0
		for _, info := range liveInfos {
			if kept.Len() >= n.cfg.RefMax || fetched >= r.cfg.Fetch {
				break
			}
			fetched++
			for _, b := range info.Buddies.ToSet().Slice() {
				if kept.Len() >= n.cfg.RefMax {
					break
				}
				if b == n.Addr() || kept.Contains(b) || dropped.Contains(b) {
					continue
				}
				if !spend(1) {
					break
				}
				resp, err := n.tr.Call(b, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
				if err == nil && resp.InfoResp != nil && repair.ValidRef(path, level, resp.InfoResp.Path) {
					kept.Add(b)
					heal(repair.ActionRefillRef, level, b)
				}
			}
		}
		n.self.SetRefsAt(level, kept)
		if n.self.RefsAt(level).Len() == 0 {
			fault(repair.FaultStarvedLevel)
			if !r.searchRefill(path, level, spend, charge, heal) {
				unhealed++
			}
		}
	}

	// Phase 3 — data. Entries stored outside the node's path are orphans
	// (a leftover of a healed path flip, or a misdirected insert): evict
	// them and route each back to its responsible peer, best effort within
	// the budget. Then compare store fingerprints within the replica
	// group: the majority hash steers anti-entropy — a minority node pulls
	// the partition's entries from a majority member, a majority node
	// pushes its entries at divergent members; with no majority the node
	// merges pairwise with the first divergent member. All syncs are
	// unions (Apply keeps the fresher version), so they commute and
	// converge.
	if n.Store().CountOutside(path) > 0 {
		for _, e := range n.Store().Evict(path) {
			fault(repair.FaultOrphanEntry)
			heal(repair.ActionEvictEntry, 0, addr.Nil)
			if spent >= r.cfg.Budget {
				unhealed++
				continue
			}
			q := n.handleQuery(&wire.QueryReq{Key: e.Key})
			charge(q.Messages)
			if !q.Found || q.Peer == n.Addr() || !spend(1) {
				unhealed++
				continue
			}
			resp, err := n.tr.Call(q.Peer, &wire.Message{Kind: wire.KindApply, From: n.Addr(),
				Apply: &wire.ApplyReq{Entry: e}})
			if err != nil || resp.ApplyResp == nil {
				unhealed++
				continue
			}
			heal(repair.ActionRehomeEntry, 0, q.Peer)
		}
	}
	var group []repair.BuddyView
	for _, v := range views {
		if v.Reachable && v.Path == path {
			group = append(group, v)
		}
	}
	if len(group) > 0 {
		sum := n.Store().Summary()
		wantHash, ok := repair.MajorityHash(sum.Hash, group)
		switch {
		case ok && wantHash != sum.Hash:
			fault(repair.FaultDivergedReplica)
			healedSync := r.pull(path, wantHash, group, spend, heal)
			// A pull only adds entries: if this node held entries the
			// majority lacks, its post-pull fingerprint still differs, and
			// only pushing them reconciles the group (the sync is a union,
			// so pushes commute with concurrent rounds elsewhere).
			if cur := n.Store().Summary().Hash; cur != wantHash {
				for _, v := range group {
					if v.IndexHash == cur {
						continue
					}
					if r.push(path, v.Addr, spend, heal) {
						healedSync = true
					}
				}
			}
			if !healedSync {
				unhealed++
			}
		case ok:
			for _, v := range group {
				if v.IndexHash == wantHash {
					continue
				}
				fault(repair.FaultDivergedReplica)
				if !r.push(path, v.Addr, spend, heal) {
					unhealed++
				}
			}
		default:
			// No fingerprint majority (e.g. an even split): merge pairwise
			// with the first divergent member; repeated rounds converge the
			// group on the union.
			for _, v := range group {
				if v.IndexHash == sum.Hash {
					continue
				}
				fault(repair.FaultDivergedReplica)
				healedPair := false
				if spend(1) {
					resp, err := n.tr.Call(v.Addr, &wire.Message{Kind: wire.KindScan, From: n.Addr(),
						Scan: &wire.ScanReq{Prefix: path}})
					if err == nil && resp.ScanResp != nil {
						for _, e := range resp.ScanResp.Entries {
							n.Store().Apply(e)
						}
						heal(repair.ActionSyncPull, 0, v.Addr)
						healedPair = true
					}
				}
				if r.push(path, v.Addr, spend, heal) {
					healedPair = true
				}
				if !healedPair {
					unhealed++
				}
				break
			}
		}
	}

	r.rounds++
	r.messages += int64(spent)
	r.lastFaults, r.lastHeals, r.lastUnhealed = faults, heals, unhealed
	n.tel.RepairRound(spent, int(unhealed))
	id := r.rng.Uint64()
	for id == 0 {
		id = r.rng.Uint64()
	}
	n.rec.Record(trace.Trace{TraceID: id, Key: path, Found: unhealed == 0,
		Messages: spent, Backtracks: int(unhealed), Spans: spans})
}

// searchRefill repopulates an empty level by routing a query for the
// complementary subtree (the node's prefix with bit `level` flipped)
// through any live contact, and installing the responsible peer it finds.
func (r *Repairer) searchRefill(path bitpath.Path, level int,
	spend func(int) bool, charge func(int), heal func(repair.Action, int, addr.Addr)) bool {
	n := r.node
	target := path.Prefix(level - 1).AppendFlip(path.Bit(level))
	contacts := n.self.Buddies()
	for l := 1; l <= path.Len(); l++ {
		contacts = addr.Union(contacts, n.self.RefsAt(l))
	}
	tried := 0
	for _, c := range contacts.Sorted() {
		if tried >= 3 || !spend(1) {
			return false
		}
		resp, err := n.tr.Call(c, &wire.Message{Kind: wire.KindQuery, From: n.Addr(),
			Query: &wire.QueryReq{Key: target}})
		if err != nil || resp.QueryResp == nil {
			// Dead contacts cost a message but not a try: the budget, not
			// the try cap, bounds how long a mostly-dead contact list can
			// stall the search.
			continue
		}
		tried++
		q := resp.QueryResp
		charge(q.Messages)
		if !q.Found || q.Peer == n.Addr() || !repair.ValidRef(path, level, q.Path) {
			continue
		}
		n.self.AddRefAt(level, q.Peer)
		heal(repair.ActionSearchRefill, level, q.Peer)
		return true
	}
	return false
}

// pull replaces the node's view of its partition with the union of its
// own entries and those of a replica holding the majority fingerprint.
func (r *Repairer) pull(path bitpath.Path, wantHash uint64, group []repair.BuddyView,
	spend func(int) bool, heal func(repair.Action, int, addr.Addr)) bool {
	n := r.node
	for _, v := range group {
		if v.IndexHash != wantHash {
			continue
		}
		if !spend(1) {
			return false
		}
		resp, err := n.tr.Call(v.Addr, &wire.Message{Kind: wire.KindScan, From: n.Addr(),
			Scan: &wire.ScanReq{Prefix: path}})
		if err != nil || resp.ScanResp == nil {
			continue
		}
		for _, e := range resp.ScanResp.Entries {
			n.Store().Apply(e)
		}
		heal(repair.ActionSyncPull, 0, v.Addr)
		return true
	}
	return false
}

// push ships every entry under the node's path to one divergent replica
// as a single batch of applies.
func (r *Repairer) push(path bitpath.Path, to addr.Addr,
	spend func(int) bool, heal func(repair.Action, int, addr.Addr)) bool {
	n := r.node
	entries := n.Store().PrefixScan(path)
	if len(entries) == 0 || !spend(len(entries)) {
		return false
	}
	msgs := make([]wire.Message, len(entries))
	for i, e := range entries {
		msgs[i] = wire.Message{Kind: wire.KindApply, From: n.Addr(),
			Apply: &wire.ApplyReq{Entry: e}}
	}
	if _, err := callBatch(n.tr, to, n.Addr(), msgs); err != nil {
		return false
	}
	heal(repair.ActionSyncPush, 0, to)
	return true
}

// handleRepair serves wire.KindRepair: report repair status, optionally
// running one synchronous round first (Trigger). A node without a
// repairer answers Enabled=false — "repair off" stays distinguishable
// from "peer unknown" (which is a transport error).
func (n *Node) handleRepair(req *wire.RepairReq) *wire.RepairResp {
	rp := n.repairer
	if rp == nil {
		return &wire.RepairResp{}
	}
	if req != nil && req.Trigger {
		rp.Tick()
	}
	return &wire.RepairResp{Status: rp.Status()}
}

// FetchRepair reads (and with trigger=true, first runs) one peer's repair
// status — the client side of wire.KindRepair, used by pgridctl and the
// admin endpoint.
func (c *Client) FetchRepair(a addr.Addr, trigger bool) (repair.Status, error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindRepair, From: addr.Nil,
		Repair: &wire.RepairReq{Trigger: trigger}})
	if err != nil {
		return repair.Status{}, err
	}
	if resp.RepairResp == nil {
		c.tel.MalformedResponse("repair")
		return repair.Status{}, fmt.Errorf("%w: node %v answered repair request with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.RepairResp.Status, nil
}
