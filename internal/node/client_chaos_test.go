package node

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// malformTransport mangles responses to one request kind in a chosen way,
// passing everything else through — the deterministic counterpart of
// ChaosTransport's random corruption, for table-driven error-path tests.
type malformTransport struct {
	inner Transport
	kind  wire.Kind
	mode  string // "nilpayload", "wrongkind", "corrupt", "offline"
}

func (m *malformTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	resp, err := m.inner.Call(to, msg)
	if err != nil || msg.Kind != m.kind {
		return resp, err
	}
	switch m.mode {
	case "nilpayload":
		return &wire.Message{Kind: resp.Kind, From: resp.From}, nil
	case "wrongkind":
		return &wire.Message{Kind: wire.KindStatsResp, From: resp.From}, nil
	case "corrupt":
		return nil, fmt.Errorf("%w: injected", wire.ErrCorrupt)
	case "offline":
		return nil, fmt.Errorf("%w: injected", ErrOffline)
	default:
		panic("unknown malform mode " + m.mode)
	}
}

func counterVal(t *testing.T, tel *telemetry.Instruments, name string) int64 {
	t.Helper()
	for _, s := range tel.Registry().Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// TestClientMalformedResponses drives every client call path against
// peers that answer with the wrong shape and checks three things: the
// call degrades (error or not-found) instead of panicking, errors carry
// ErrMalformed so the resilience layer classifies them Corrupt — not
// retryable — and the malformed tally lands in telemetry under the
// request kind.
func TestClientMalformedResponses(t *testing.T) {
	c, _ := builtCluster(t, 64, smallCfg(), 21)
	start := c.Nodes[0].Addr()
	key := bitpath.MustParse("10")

	cases := []struct {
		name    string
		kind    wire.Kind
		mode    string
		counter string // labeled malformed counter expected to move
		call    func(t *testing.T, cl *Client)
	}{
		{"info nil payload via audit", wire.KindInfo, "nilpayload", "info", func(t *testing.T, cl *Client) {
			rep := cl.Audit([]addr.Addr{start})
			if rep.Reachable != 0 || len(rep.Unreachable) != 1 {
				t.Errorf("audit of malformed peer: %+v", rep)
			}
		}},
		{"info wrong kind via replica search", wire.KindInfo, "wrongkind", "info", func(t *testing.T, cl *Client) {
			res := cl.ReplicaSearch(start, key, 2)
			if len(res.Found) != 0 {
				t.Errorf("replica search trusted a malformed info: %+v", res)
			}
			if res.Messages == 0 {
				t.Error("messages not counted on the failed fetch")
			}
		}},
		{"traced query nil payload", wire.KindQuery, "nilpayload", "query", func(t *testing.T, cl *Client) {
			_, err := cl.TraceQuery(start, key)
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("TraceQuery err = %v, want ErrMalformed", err)
			}
		}},
		{"traces wrong kind", wire.KindTraces, "wrongkind", "traces", func(t *testing.T, cl *Client) {
			_, _, err := cl.FetchTraces(start, 4)
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("FetchTraces err = %v, want ErrMalformed", err)
			}
		}},
		{"health nil payload", wire.KindHealth, "nilpayload", "health", func(t *testing.T, cl *Client) {
			_, _, err := cl.FetchHealth(start, true)
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("FetchHealth err = %v, want ErrMalformed", err)
			}
		}},
		{"lookup query nil payload", wire.KindQuery, "nilpayload", "query", func(t *testing.T, cl *Client) {
			if res := cl.Lookup(start, key, "f"); res.Found {
				t.Errorf("lookup trusted a malformed query response: %+v", res)
			}
		}},
		{"lookup get stripped", wire.KindGet, "nilpayload", "get", func(t *testing.T, cl *Client) {
			if res := cl.Lookup(start, key, "f"); res.Found {
				t.Errorf("lookup trusted a malformed get response: %+v", res)
			}
		}},
		{"replica dies before get", wire.KindGet, "offline", "", func(t *testing.T, cl *Client) {
			if res := cl.Lookup(start, key, "f"); res.Found {
				t.Errorf("lookup returned entry from a dead replica: %+v", res)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tel := telemetry.New(0)
			cl := NewClient(&malformTransport{inner: c.Transport, kind: tc.kind, mode: tc.mode}, 99)
			cl.SetTelemetry(tel)
			tc.call(t, cl)
			if tc.counter == "" {
				return
			}
			name := fmt.Sprintf("pgrid_rpc_malformed_kind_total{kind=%q}", tc.counter)
			if counterVal(t, tel, name) == 0 {
				t.Errorf("counter %s did not move", name)
			}
			if counterVal(t, tel, "pgrid_rpc_malformed_total") == 0 {
				t.Error("total malformed counter did not move")
			}
		})
	}
}

// TestClientSurvivesHeavyCorruption floods every client walk with random
// ChaosTransport corruption and checks nothing panics and the malformed
// tallies move — the walks must treat a mangled community as degraded,
// not as fatal.
func TestClientSurvivesHeavyCorruption(t *testing.T) {
	c, _ := builtCluster(t, 32, smallCfg(), 22)
	chaos := NewChaosTransport(c.Transport, ChaosConfig{Corrupt: 0.5, Seed: 22})
	tel := telemetry.New(0)
	cl := NewClient(chaos, 23)
	cl.SetTelemetry(tel)

	key := bitpath.MustParse("011")
	cl.ReplicaSearch(c.Nodes[3].Addr(), key, 2)
	cl.Audit([]addr.Addr{c.Nodes[0].Addr(), c.Nodes[1].Addr(), c.Nodes[2].Addr()})
	cl.MajorityRead([]addr.Addr{c.Nodes[4].Addr(), c.Nodes[5].Addr()}, key, "f", 2, 16)
	cl.Crawl(c.Nodes[6].Addr())

	if counterVal(t, tel, "pgrid_rpc_malformed_total") == 0 {
		t.Error("heavy corruption left the malformed counter untouched")
	}
	if chaos.Stats().Corrupted == 0 {
		t.Error("chaos transport injected nothing")
	}
}

// TestReplicaSearchSurvivesMidWalkDeath kills a third of the community
// between building the grid and walking it: the BFS must route around the
// dead peers and still return only covering, reachable replicas.
func TestReplicaSearchSurvivesMidWalkDeath(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 24)
	rng := rand.New(rand.NewSource(24))
	for _, i := range rng.Perm(64)[:21] {
		if i != 0 { // keep the entry point alive
			c.Nodes[i].SetOnline(false)
		}
	}
	key := bitpath.MustParse("110")
	res := cl.ReplicaSearch(c.Nodes[0].Addr(), key, 3)
	for _, a := range res.Found {
		n := c.Nodes[int(a)]
		if !n.Online() {
			t.Errorf("search returned offline peer %v", a)
		}
		if !bitpath.Comparable(n.Path(), key) {
			t.Errorf("search returned non-covering peer %v (path %q)", a, n.Path())
		}
	}
}

// TestHedgedEqualsPlainMajorityRead is the acceptance property: on a
// fault-free transport where the hedge delay never elapses, a hedged
// majority read consumes the same randomness and returns the same answer
// as a plain one — hedging is an availability optimization, never a
// semantic change. Same seed, same reads, deep-equal results.
func TestHedgedEqualsPlainMajorityRead(t *testing.T) {
	// Two identically-seeded communities: routing consumes node-side
	// randomness, so running both clients against one cluster would let
	// the first run perturb the second. Twin clusters keep every source
	// of randomness aligned between the plain and the hedged read.
	build := func() (*Cluster, []addr.Addr) {
		c, _ := builtCluster(t, 64, smallCfg(), 25)
		entries := []addr.Addr{c.Nodes[2].Addr(), c.Nodes[17].Addr(), c.Nodes[40].Addr()}
		pub := NewClient(c.Transport, 333)
		for i := 0; i < 6; i++ {
			e := store.Entry{Key: bitpath.Random(rand.New(rand.NewSource(int64(i))), 4),
				Name: fmt.Sprintf("f%d", i), Holder: addr.Addr(i), Version: uint64(i + 1)}
			pub.Publish(entries, e, 3, 2)
		}
		return c, entries
	}
	cp, entries := build()
	ch, _ := build()

	plain := NewClient(cp.Transport, 777)
	hedged := NewClient(ch.Transport, 777)
	tel := telemetry.New(0)
	hedged.SetTelemetry(tel)
	// In-process reads finish in microseconds; a 1s floor means the hedge
	// timer never fires, so the hedged client must follow the exact same
	// path as the plain one.
	hedged.EnableHedging(HedgeConfig{MinDelay: time.Second, MaxDelay: time.Second})

	for i := 0; i < 6; i++ {
		key := bitpath.Random(rand.New(rand.NewSource(int64(i))), 4)
		name := fmt.Sprintf("f%d", i)
		p := plain.MajorityRead(entries, key, name, 2, 24)
		h := hedged.MajorityRead(entries, key, name, 2, 24)
		if !reflect.DeepEqual(p, h) {
			t.Fatalf("read %d diverged:\nplain  %+v\nhedged %+v", i, p, h)
		}
	}
	if got := counterVal(t, tel, "pgrid_resilience_hedges_total"); got != 0 {
		t.Errorf("hedge fired %d times on a fault-free transport with a 1s floor", got)
	}
}

// TestHedgeFiresOnSlowTransport forces the opposite regime: every call
// slower than the hedge ceiling, so each majority-read attempt races two
// peers. The read must still return the published entry, and the hedge
// counters must move.
func TestHedgeFiresOnSlowTransport(t *testing.T) {
	c, _ := builtCluster(t, 32, smallCfg(), 26)
	entries := []addr.Addr{c.Nodes[1].Addr(), c.Nodes[9].Addr()}
	e := store.Entry{Key: bitpath.MustParse("0101"), Name: "f", Holder: 3, Version: 9}
	NewClient(c.Transport, 1).Publish(entries, e, 3, 3)

	chaos := NewChaosTransport(c.Transport, ChaosConfig{LatencyBase: 4 * time.Millisecond, Seed: 26})
	tel := telemetry.New(0)
	cl := NewClient(chaos, 2)
	cl.SetTelemetry(tel)
	cl.EnableHedging(HedgeConfig{MinDelay: time.Millisecond, MaxDelay: time.Millisecond})

	res := cl.MajorityRead(entries, e.Key, "f", 2, 12)
	if !res.Found || res.Entry.Version != 9 {
		t.Fatalf("hedged read = %+v", res)
	}
	if counterVal(t, tel, "pgrid_resilience_hedges_total") == 0 {
		t.Error("no hedges fired despite 4ms calls against a 1ms ceiling")
	}
}

func TestHedgeDelayPercentile(t *testing.T) {
	cl := NewClient(NewLocalTransport(), 1)
	cl.EnableHedging(HedgeConfig{Percentile: 0.9, MinDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond})
	if d := cl.hedgeDelay(); d != 100*time.Millisecond {
		t.Errorf("empty window delay = %v, want the 100ms ceiling", d)
	}
	for i := 1; i <= 100; i++ { // ring keeps the last 64: 37ms…100ms
		cl.recordLatency(time.Duration(i) * time.Millisecond)
	}
	d := cl.hedgeDelay()
	if d < 90*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("p90 over 37…100ms window = %v", d)
	}
	cl.hedge.MaxDelay = 50 * time.Millisecond
	if d := cl.hedgeDelay(); d != 50*time.Millisecond {
		t.Errorf("clamped delay = %v, want 50ms", d)
	}
}

// TestMaintainCountsMalformed checks the maintenance loop separates
// misbehaving peers from churned ones.
func TestMaintainCountsMalformed(t *testing.T) {
	c := NewCluster(8, smallCfg(), 27)
	rng := rand.New(rand.NewSource(27))
	buildCluster(t, c, 0.9*2, 20000, rng)

	n := c.Nodes[0]
	if n.Path().Len() == 0 {
		t.Skip("node 0 did not specialize")
	}
	n.tr = &malformTransport{inner: c.Transport, kind: wire.KindInfo, mode: "nilpayload"}
	res := n.Maintain(2)
	if res.Probed == 0 {
		t.Skip("node 0 holds no references")
	}
	if res.Malformed != res.Probed {
		t.Errorf("Malformed = %d, want every probe (%d) counted malformed", res.Malformed, res.Probed)
	}
	if res.Dropped != res.Probed {
		t.Errorf("Dropped = %d, want %d (malformed refs must still be dropped)", res.Dropped, res.Probed)
	}
}

func TestErrMalformedMessageNamesKind(t *testing.T) {
	c := NewCluster(2, smallCfg(), 28)
	cl := NewClient(&malformTransport{inner: c.Transport, kind: wire.KindInfo, mode: "wrongkind"}, 1)
	_, err := cl.nodeInfo(c.Nodes[0].Addr())
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("malformed error should name the answered kind: %v", err)
	}
}
