package node

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// PoolConfig parameterizes PoolTransport.
type PoolConfig struct {
	// DialTimeout bounds connection establishment (0 means 5s).
	DialTimeout time.Duration
	// IOTimeout bounds one request/response round trip (0 means 5s). On a
	// multiplexed connection a request that misses the deadline kills the
	// whole connection — a stream with one stuck response cannot be
	// trusted for the others either.
	IOTimeout time.Duration
	// Size is the maximum pooled connections per peer. 0 disables pooling:
	// every call dials, speaks, and closes — the legacy behaviour, kept as
	// the A/B baseline for the wire benchmark.
	Size int
	// IdleTimeout reaps pooled connections with no traffic for this long
	// (0 means 60s). Reaping keeps a big community from pinning a socket
	// per peer it talked to once.
	IdleTimeout time.Duration
	// ForceGob skips binary negotiation and speaks the legacy gob codec on
	// every connection — the operator escape hatch (-codec=gob) and the
	// other axis of the A/B benchmark.
	ForceGob bool
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	return c
}

// PoolStats is a snapshot of the pool's lifetime counters, for tests and
// status lines. The gauges (Open, InFlight) are instantaneous.
type PoolStats struct {
	Dials     int64
	Reuses    int64
	Evictions int64
	IdleClose int64
	ConnLost  int64
	Open      int64
	InFlight  int64
}

// PoolTransport is the fast-wire Transport: per-peer pools of long-lived
// connections, each multiplexing concurrent in-flight requests over the
// binary frame codec via sequence ids. Dialing negotiates the codec with a
// hello frame; peers that predate the binary codec drop the hello and the
// pool falls back to a dedicated gob connection (sequential, like the old
// transport), remembering the peer as gob-only once a gob call succeeds.
//
// Every transport-level failure — dial errors, timeouts, connections dying
// mid-flight — wraps ErrOffline, so the resilience stack classifies pool
// failures as Transient and may retry; only undecodable responses surface
// wire.ErrCorrupt.
type PoolTransport struct {
	mu        sync.RWMutex
	endpoints map[addr.Addr]string
	peers     map[addr.Addr]*peerPool
	closed    bool

	cfg PoolConfig
	tel *telemetry.Instruments

	dials     atomic.Int64
	reuses    atomic.Int64
	evictions atomic.Int64
	idleClose atomic.Int64
	connLost  atomic.Int64
	open      atomic.Int64
	inFlight  atomic.Int64
	acquiring atomic.Int64 // callers currently waiting to hold a connection

	janitorStop chan struct{}
	janitorOnce sync.Once
}

// NewPoolTransport returns a pooled transport with the given configuration.
// Call Close when done to release connections and the idle janitor.
func NewPoolTransport(cfg PoolConfig) *PoolTransport {
	p := &PoolTransport{
		endpoints:   make(map[addr.Addr]string),
		peers:       make(map[addr.Addr]*peerPool),
		cfg:         cfg.withDefaults(),
		janitorStop: make(chan struct{}),
	}
	if p.cfg.Size > 0 {
		go p.janitor()
	}
	return p
}

// SetTelemetry attaches pool instruments (nil disables). Call before the
// transport is used; the field is not synchronized.
func (p *PoolTransport) SetTelemetry(tel *telemetry.Instruments) { p.tel = tel }

// SetEndpoint maps a logical peer address to host:port.
func (p *PoolTransport) SetEndpoint(a addr.Addr, hostport string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.endpoints[a] = hostport
}

// Endpoint returns the mapping for a, if known.
func (p *PoolTransport) Endpoint(a addr.Addr) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ep, ok := p.endpoints[a]
	return ep, ok
}

// Stats snapshots the pool counters.
func (p *PoolTransport) Stats() PoolStats {
	return PoolStats{
		Dials:     p.dials.Load(),
		Reuses:    p.reuses.Load(),
		Evictions: p.evictions.Load(),
		IdleClose: p.idleClose.Load(),
		ConnLost:  p.connLost.Load(),
		Open:      p.open.Load(),
		InFlight:  p.inFlight.Load(),
	}
}

func (p *PoolTransport) publishGauges() {
	p.tel.PoolGauges(p.open.Load(), p.inFlight.Load(), p.acquiring.Load())
}

// Call implements Transport.
func (p *PoolTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	ep, ok := p.Endpoint(to)
	if !ok {
		return nil, fmt.Errorf("%w: no endpoint for %v", ErrOffline, to)
	}
	p.inFlight.Add(1)
	defer func() {
		p.inFlight.Add(-1)
		p.publishGauges()
	}()

	if p.cfg.Size <= 0 {
		// Unpooled mode: dial, one call, close.
		start := time.Now()
		p.acquiring.Add(1)
		mc, err := p.dialConn(to, ep, p.peerState(to), nil)
		p.acquiring.Add(-1)
		p.tel.PoolAcquireWait(time.Since(start))
		if err != nil {
			p.notePeerError(to, err)
			return nil, err
		}
		defer mc.close()
		resp, err := p.callOn(mc, to, msg)
		if err != nil {
			p.notePeerError(to, err)
		}
		return resp, err
	}

	pp := p.pool(to)
	start := time.Now()
	p.acquiring.Add(1)
	mc, reused, err := pp.acquire(p, to, ep)
	p.acquiring.Add(-1)
	p.tel.PoolAcquireWait(time.Since(start))
	if err != nil {
		p.notePeerError(to, err)
		return nil, err
	}
	if reused {
		p.reuses.Add(1)
		p.tel.PoolReuse()
	}
	resp, err := p.callOn(mc, to, msg)
	if err != nil {
		p.notePeerError(to, err)
		if errors.Is(err, ErrOffline) {
			// The connection failed under us; it has already removed itself
			// from the pool. The caller's retry (if any) will re-acquire.
			return nil, err
		}
	}
	return resp, err
}

// notePeerError feeds the per-peer error-class counters.
func (p *PoolTransport) notePeerError(to addr.Addr, err error) {
	if p.tel == nil {
		return
	}
	p.tel.PeerError(int(to), errClass(err))
}

// errClass buckets a call error for the per-peer counters: "timeout",
// "refused", "closed", "corrupt", other transport loss as "offline", and
// error replies from a healthy peer as "app".
func errClass(err error) string {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return "timeout"
	case errors.Is(err, wire.ErrCorrupt):
		return "corrupt"
	case errors.Is(err, ErrOffline):
		s := err.Error()
		switch {
		case strings.Contains(s, "connection refused"):
			return "refused"
		case strings.Contains(s, "timed out"), strings.Contains(s, "timeout"):
			return "timeout"
		case strings.Contains(s, "closed"):
			return "closed"
		default:
			return "offline"
		}
	default:
		return "app"
	}
}

// callOn runs one round trip on mc and applies the KindError convention.
// A successful call on a fallback gob connection marks the peer gob-only,
// so later dials skip the doomed binary hello.
func (p *PoolTransport) callOn(mc *muxConn, to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	resp, err := mc.call(msg, p.cfg.IOTimeout)
	if err != nil {
		return nil, err
	}
	if mc.fellBack {
		p.pool(to).markGobOnly()
	}
	if resp.Kind == wire.KindError {
		return nil, fmt.Errorf("node %v: %s", to, resp.Error)
	}
	return resp, nil
}

// Evict closes every pooled connection to the peer. Wired to the breaker's
// open transition: a peer judged unhealthy should not keep warm sockets,
// and the half-open probe decides afresh. In-flight requests on evicted
// connections fail Transient. The gob-only memory survives eviction — the
// peer's codec does not change because its breaker tripped.
func (p *PoolTransport) Evict(to addr.Addr) {
	p.mu.RLock()
	pp := p.peers[to]
	p.mu.RUnlock()
	if pp == nil {
		return
	}
	n := pp.evictAll()
	if n > 0 {
		p.evictions.Add(int64(n))
		p.tel.PoolEviction(n)
		p.publishGauges()
	}
}

// Close evicts every pool and stops the idle janitor. The transport is
// unusable afterwards.
func (p *PoolTransport) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	peers := make([]*peerPool, 0, len(p.peers))
	for _, pp := range p.peers {
		peers = append(peers, pp)
	}
	p.mu.Unlock()
	p.janitorOnce.Do(func() { close(p.janitorStop) })
	for _, pp := range peers {
		pp.evictAll()
	}
}

// janitor reaps idle connections in the background.
func (p *PoolTransport) janitor() {
	interval := p.cfg.IdleTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.janitorStop:
			return
		case <-t.C:
			p.reapIdle()
		}
	}
}

func (p *PoolTransport) reapIdle() {
	cutoff := time.Now().Add(-p.cfg.IdleTimeout).UnixNano()
	p.mu.RLock()
	pools := make([]*peerPool, 0, len(p.peers))
	for _, pp := range p.peers {
		pools = append(pools, pp)
	}
	p.mu.RUnlock()
	for _, pp := range pools {
		for _, mc := range pp.idleBefore(cutoff) {
			p.idleClose.Add(1)
			p.tel.PoolIdleClose()
			mc.close()
		}
	}
	p.publishGauges()
}

func (p *PoolTransport) pool(to addr.Addr) *peerPool {
	p.mu.RLock()
	pp := p.peers[to]
	p.mu.RUnlock()
	if pp != nil {
		return pp
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pp = p.peers[to]; pp == nil {
		pp = &peerPool{}
		p.peers[to] = pp
	}
	return pp
}

// peerState reports whether the peer is known to be gob-only.
func (p *PoolTransport) peerState(to addr.Addr) bool {
	p.mu.RLock()
	pp := p.peers[to]
	p.mu.RUnlock()
	return pp != nil && pp.isGobOnly()
}

// gobOnlyTTL ages the negotiated-codec memory: after this long without a
// fresh confirmation, the next dial retries the binary hello, so a
// binary-capable peer that once misnegotiated (e.g. restarted mid-hello)
// is not downgraded to the sequential gob codec for the life of the
// process.
const gobOnlyTTL = 5 * time.Minute

// peerPool holds one peer's connections and its negotiated-codec memory.
type peerPool struct {
	mu           sync.Mutex
	conns        []*muxConn
	next         int
	gobOnlyUntil int64 // unix nanos; 0 or past means "retry binary"
}

func (pp *peerPool) isGobOnly() bool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.gobOnlyUntil != 0 && time.Now().UnixNano() < pp.gobOnlyUntil
}

func (pp *peerPool) markGobOnly() {
	pp.mu.Lock()
	pp.gobOnlyUntil = time.Now().Add(gobOnlyTTL).UnixNano()
	pp.mu.Unlock()
}

// acquire returns a live connection for the peer: an idle pooled one when
// available, a fresh dial while the pool is below Size, and round-robin
// sharing of busy connections once the pool is full. Dialing happens
// outside the pool lock, so concurrent first callers may race extra dials;
// the append enforces the Size cap by dropping the surplus connection.
func (pp *peerPool) acquire(p *PoolTransport, to addr.Addr, ep string) (mc *muxConn, reused bool, err error) {
	pp.mu.Lock()
	if n := len(pp.conns); n > 0 {
		// Round-robin scan for an idle connection first; if every
		// connection has requests in flight, grow the pool up to Size
		// rather than queueing deeper on a busy stream.
		for i := 1; i <= n; i++ {
			c := pp.conns[(pp.next+i)%n]
			if c.inflight.Load() == 0 {
				pp.next = (pp.next + i) % n
				pp.mu.Unlock()
				return c, true, nil
			}
		}
		if n >= p.cfg.Size {
			pp.next = (pp.next + 1) % n
			mc = pp.conns[pp.next]
			pp.mu.Unlock()
			return mc, true, nil
		}
	}
	gobOnly := pp.gobOnlyUntil != 0 && time.Now().UnixNano() < pp.gobOnlyUntil
	pp.mu.Unlock()

	mc, err = p.dialConn(to, ep, gobOnly, pp)
	if err != nil {
		return nil, false, err
	}
	pp.mu.Lock()
	if len(pp.conns) >= p.cfg.Size {
		// A concurrent caller filled the pool while we dialed: keep the
		// cap, reuse a pooled connection, and drop the surplus dial.
		pp.next = (pp.next + 1) % len(pp.conns)
		existing := pp.conns[pp.next]
		pp.mu.Unlock()
		mc.close()
		return existing, true, nil
	}
	pp.conns = append(pp.conns, mc)
	pp.mu.Unlock()
	// The connection may have died between dial and append — its fail()
	// then ran pool removal before the conn was in the pool. Detect that
	// and undo the append so a dead conn never serves later acquires.
	mc.mu.Lock()
	dead, deadErr := mc.dead, mc.deadErr
	mc.mu.Unlock()
	if dead {
		pp.remove(mc)
		return nil, false, deadErr
	}
	return mc, false, nil
}

func (pp *peerPool) remove(mc *muxConn) {
	pp.mu.Lock()
	for i, c := range pp.conns {
		if c == mc {
			pp.conns = append(pp.conns[:i], pp.conns[i+1:]...)
			break
		}
	}
	pp.mu.Unlock()
}

func (pp *peerPool) evictAll() int {
	pp.mu.Lock()
	conns := pp.conns
	pp.conns = nil
	pp.mu.Unlock()
	for _, mc := range conns {
		mc.close()
	}
	return len(conns)
}

func (pp *peerPool) idleBefore(cutoff int64) []*muxConn {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	var idle []*muxConn
	kept := pp.conns[:0]
	for _, mc := range pp.conns {
		if mc.inflight.Load() == 0 && mc.lastUse.Load() < cutoff {
			idle = append(idle, mc)
		} else {
			kept = append(kept, mc)
		}
	}
	pp.conns = kept
	return idle
}

// dialConn establishes one connection, negotiating the codec: a binary
// hello first (unless gob is forced or the peer is known gob-only), and a
// fresh gob dial when the peer drops the hello unanswered — exactly what a
// pre-binary listener does with an unparseable length prefix. pp is the
// peer's pool (nil in unpooled mode); it is wired into the connection
// before the demux reader starts, so a connection that dies immediately
// can always remove itself.
func (p *PoolTransport) dialConn(to addr.Addr, ep string, gobOnly bool, pp *peerPool) (*muxConn, error) {
	if p.cfg.ForceGob || gobOnly {
		return p.dialGob(to, ep, false, pp)
	}
	conn, err := net.DialTimeout("tcp", ep, p.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %v (%s): %v", ErrOffline, to, ep, err)
	}
	// Negotiate sequentially before the demux reader exists: one hello
	// frame out, one response in, under a deadline.
	deadline := time.Now().Add(p.cfg.IOTimeout)
	conn.SetDeadline(deadline)
	hello := &wire.Message{Kind: wire.KindHello, From: addr.Nil,
		Hello: &wire.HelloReq{MaxCodec: wire.BinaryVersion}}
	br := bufio.NewReader(conn)
	var resp *wire.Message
	helloErr := wire.WriteFrame(conn, 0, 0, hello)
	if helloErr == nil {
		_, _, resp, helloErr = wire.ReadFrame(br)
	}
	if resp == nil || resp.HelloResp == nil || resp.HelloResp.Codec < wire.BinaryVersion {
		// The peer dropped or refused the hello: assume pre-binary and
		// fall back to a fresh gob connection. The gob-only memory is only
		// written after that connection completes a successful call — an
		// offline peer must not be mistaken for a gob-only one. A timeout
		// says nothing about the peer's codec either (it may be briefly
		// slow), so it falls back for this connection only, without
		// marking the peer.
		conn.Close()
		remember := true
		var ne net.Error
		if errors.As(helloErr, &ne) && ne.Timeout() {
			remember = false
		}
		return p.dialGob(to, ep, remember, pp)
	}
	conn.SetDeadline(time.Time{})
	mc := &muxConn{
		pt:      p,
		pool:    pp,
		peer:    to,
		conn:    conn,
		br:      br,
		pending: make(map[uint32]chan *wire.Message),
	}
	mc.lastUse.Store(time.Now().UnixNano())
	p.dials.Add(1)
	p.open.Add(1)
	p.tel.PoolDial("binary")
	p.publishGauges()
	go mc.readLoop()
	return mc, nil
}

func (p *PoolTransport) dialGob(to addr.Addr, ep string, fellBack bool, pp *peerPool) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", ep, p.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %v (%s): %v", ErrOffline, to, ep, err)
	}
	mc := &muxConn{
		pt:       p,
		pool:     pp,
		peer:     to,
		conn:     conn,
		br:       bufio.NewReader(conn),
		gob:      true,
		fellBack: fellBack,
	}
	mc.lastUse.Store(time.Now().UnixNano())
	p.dials.Add(1)
	p.open.Add(1)
	p.tel.PoolDial("gob")
	p.publishGauges()
	return mc, nil
}

// muxConn is one pooled connection. In binary mode a background reader
// demultiplexes response frames to waiting callers by sequence id; in gob
// mode (negotiated fallback) calls serialize over the connection exactly
// like the legacy transport.
type muxConn struct {
	pt   *PoolTransport
	pool *peerPool // nil in unpooled mode
	peer addr.Addr
	conn net.Conn
	br   *bufio.Reader

	// wmu serializes writers; in gob mode it spans the whole round trip.
	wmu sync.Mutex
	seq uint32 // next sequence id, under wmu

	mu      sync.Mutex
	pending map[uint32]chan *wire.Message
	dead    bool
	deadErr error

	gob      bool
	fellBack bool // gob via failed binary negotiation, not by configuration

	lastUse  atomic.Int64
	inflight atomic.Int32
}

// call runs one round trip. Errors are Transient (ErrOffline-wrapped)
// unless the response itself was undecodable (ErrCorrupt via the reader).
func (m *muxConn) call(msg *wire.Message, ioTimeout time.Duration) (*wire.Message, error) {
	m.inflight.Add(1)
	defer func() {
		m.inflight.Add(-1)
		m.lastUse.Store(time.Now().UnixNano())
	}()
	if m.gob {
		return m.callGob(msg, ioTimeout)
	}

	ch := make(chan *wire.Message, 1)
	m.wmu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Lock()
	if m.dead {
		// Registered against a dying connection: fail now, before writing.
		err := m.deadErr
		m.mu.Unlock()
		m.wmu.Unlock()
		return nil, err
	}
	m.pending[seq] = ch
	m.mu.Unlock()
	m.conn.SetWriteDeadline(time.Now().Add(ioTimeout))
	err := wire.WriteFrame(m.conn, seq, 0, msg)
	m.wmu.Unlock()
	if err != nil {
		m.fail(fmt.Errorf("%w: send to %v: %v", ErrOffline, m.peer, err))
		m.mu.Lock()
		err := m.deadErr
		m.mu.Unlock()
		return nil, err
	}

	timer := time.NewTimer(ioTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp == nil {
			m.mu.Lock()
			err := m.deadErr
			m.mu.Unlock()
			return nil, err
		}
		return resp, nil
	case <-timer.C:
		// One stuck response poisons the stream ordering for everyone:
		// kill the connection, failing the other in-flight calls Transient.
		m.fail(fmt.Errorf("%w: %v: response %d timed out", ErrOffline, m.peer, seq))
		if resp := <-ch; resp != nil {
			return resp, nil // raced the kill and won
		}
		m.mu.Lock()
		err := m.deadErr
		m.mu.Unlock()
		return nil, err
	}
}

func (m *muxConn) callGob(msg *wire.Message, ioTimeout time.Duration) (*wire.Message, error) {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mu.Lock()
	if m.dead {
		err := m.deadErr
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Unlock()
	m.conn.SetDeadline(time.Now().Add(ioTimeout))
	if err := wire.WriteMessage(m.conn, msg); err != nil {
		m.fail(fmt.Errorf("%w: send to %v: %v", ErrOffline, m.peer, err))
		return nil, fmt.Errorf("%w: send to %v: %v", ErrOffline, m.peer, err)
	}
	resp, err := wire.ReadMessage(m.br)
	if err != nil {
		if errors.Is(err, wire.ErrCorrupt) {
			m.fail(err)
			return nil, fmt.Errorf("receive from %v: %w", m.peer, err)
		}
		m.fail(fmt.Errorf("%w: receive from %v: %v", ErrOffline, m.peer, err))
		return nil, fmt.Errorf("%w: receive from %v: %v", ErrOffline, m.peer, err)
	}
	return resp, nil
}

// readLoop demultiplexes binary response frames to their callers.
func (m *muxConn) readLoop() {
	for {
		seq, flags, resp, err := wire.ReadFrame(m.br)
		if err != nil {
			if errors.Is(err, wire.ErrCorrupt) {
				m.fail(fmt.Errorf("receive from %v: %w", m.peer, err))
			} else {
				m.fail(fmt.Errorf("%w: %v: connection lost: %v", ErrOffline, m.peer, err))
			}
			return
		}
		if flags&wire.FlagResponse == 0 {
			continue // servers do not send requests on this stream
		}
		m.mu.Lock()
		ch := m.pending[seq]
		delete(m.pending, seq)
		m.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail marks the connection dead with the given error, closes it, removes
// it from its pool, and drains every pending caller with a nil send (their
// error is deadErr). Idempotent; the first error wins.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.deadErr = err
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()

	m.conn.Close()
	if m.pool != nil {
		m.pool.remove(m)
	}
	m.pt.open.Add(-1)
	if len(pending) > 0 {
		m.pt.connLost.Add(1)
		m.pt.tel.PoolConnLost()
	}
	for _, ch := range pending {
		ch <- nil
	}
	m.pt.publishGauges()
}

// close shuts the connection down without an error cause (eviction, idle
// reaping, unpooled teardown). In-flight calls fail Transient.
func (m *muxConn) close() {
	m.fail(fmt.Errorf("%w: %v: connection closed by pool", ErrOffline, m.peer))
}
