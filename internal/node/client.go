package node

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// Client drives the multi-peer protocols — breadth-first replica search,
// update propagation, majority reads, prefix search — from outside the
// community, over any Transport. A client is what pgridctl is, and what an
// application embedding a peer uses for operations that span replicas.
// Unlike the single-peer request handlers in Node, these walks are
// client-driven: the client fetches routing state (Info) and decides where
// to go next, which is how a P2P client without its own grid position
// naturally behaves.
type Client struct {
	tr  Transport
	rng *rand.Rand
	tel *telemetry.Instruments

	hedge *HedgeConfig
	latMu sync.Mutex
	lats  []time.Duration // recent readOnce round trips, ring-buffered
	latAt int
}

// latWindow bounds the latency samples the hedge threshold is computed
// over — enough history to estimate a percentile, recent enough to track
// a shifting network.
const latWindow = 64

// NewClient returns a client over the given transport, seeded for
// reproducible walks.
func NewClient(tr Transport, seed int64) *Client {
	return &Client{tr: tr, rng: rand.New(rand.NewSource(seed))}
}

// SetTelemetry attaches instruments counting malformed responses and
// hedge outcomes (nil disables). Call before the client is used; the
// field is not synchronized.
func (c *Client) SetTelemetry(tel *telemetry.Instruments) { c.tel = tel }

// nodeInfo fetches a peer's path and reference table. Errors distinguish
// unreachable peers (ErrOffline et al., via the transport) from reachable
// peers that answered garbage (ErrMalformed) — the latter counted
// separately in telemetry, because a misbehaving peer is operationally a
// different problem from a churned one.
func (c *Client) nodeInfo(a addr.Addr) (*wire.InfoResp, error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
	if err != nil {
		return nil, err
	}
	if resp.InfoResp == nil {
		c.tel.MalformedResponse("info")
		return nil, fmt.Errorf("%w: node %v answered info with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.InfoResp, nil
}

// TraceQuery routes one fully-sampled search for key via the peer at
// start and returns the assembled hop-by-hop route. The trace context
// rides inside the wire query message, so every node the search visits
// appends a span and records the route in its flight recorder — this is
// the client behind `pgridctl trace`.
func (c *Client) TraceQuery(start addr.Addr, key bitpath.Path) (trace.Trace, error) {
	ctx := &trace.SpanContext{
		TraceID: trace.NewTraceID(c.rng.Uint64(), uint64(start)),
		Budget:  trace.DefaultBudget,
		Sampled: true,
	}
	resp, err := c.tr.Call(start, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
		Query: &wire.QueryReq{Key: key, Ctx: ctx}})
	if err != nil {
		return trace.Trace{}, err
	}
	if resp.QueryResp == nil {
		c.tel.MalformedResponse("query")
		return trace.Trace{}, fmt.Errorf("%w: node %v answered traced query with kind %v", ErrMalformed, start, resp.Kind)
	}
	q := resp.QueryResp
	return trace.Trace{TraceID: ctx.TraceID, Key: key, Found: q.Found,
		Messages: q.Messages, Backtracks: q.Backtracks, Spans: q.Spans}, nil
}

// FetchTraces scrapes a node's flight recorder over the wire (limit <= 0
// means everything retained). Total counts traces ever recorded there,
// including ones the ring has already evicted.
func (c *Client) FetchTraces(a addr.Addr, limit int) (total uint64, traces []trace.Trace, err error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindTraces, From: addr.Nil,
		Traces: &wire.TracesReq{Limit: limit}})
	if err != nil {
		return 0, nil, err
	}
	if resp.TracesResp == nil {
		c.tel.MalformedResponse("traces")
		return 0, nil, fmt.Errorf("%w: node %v answered traces request with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.TracesResp.Total, resp.TracesResp.Traces, nil
}

// ReplicaResult mirrors core.ReplicaResult for the networked client.
type ReplicaResult struct {
	Found    []addr.Addr
	Messages int
}

// ReplicaSearch performs the breadth-first replica search of Section 5.2
// over the network, starting from the peer at start: it fetches each
// visited peer's routing state and follows up to recbreadth references per
// level, collecting every reachable peer whose path covers key.
func (c *Client) ReplicaSearch(start addr.Addr, key bitpath.Path, recbreadth int) ReplicaResult {
	var res ReplicaResult
	visited := map[addr.Addr]bool{start: true}
	queue := []addr.Addr{start}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		info, err := c.nodeInfo(a)
		res.Messages++ // the info fetch (counts even if it fails: it was sent)
		if err != nil {
			continue // unreachable or malformed: the walk routes around it
		}
		path := info.Path
		cl := bitpath.CommonPrefixLen(path, key)

		follow := func(level int) {
			if level < 1 || level > len(info.Refs) {
				return
			}
			followed := 0
			refs := info.Refs[level-1].ToSet()
			for _, r := range refs.Shuffled(c.rng) {
				if followed >= recbreadth {
					break
				}
				if visited[r] {
					continue
				}
				visited[r] = true
				queue = append(queue, r)
				followed++
			}
		}

		if cl == path.Len() || cl == key.Len() {
			res.Found = append(res.Found, a)
			for level := key.Len() + 1; level <= path.Len(); level++ {
				follow(level)
			}
		} else {
			follow(cl + 1)
		}
	}
	return res
}

// Publish spreads an entry over the replicas of its key with `repetition`
// breadth-first passes from the given entry points (cycled as needed) and
// returns how many replicas applied it and the message cost.
func (c *Client) Publish(entries []addr.Addr, e store.Entry, recbreadth, repetition int) (replicas, messages int) {
	if len(entries) == 0 {
		return 0, 0
	}
	found := map[addr.Addr]bool{}
	for i := 0; i < repetition; i++ {
		start := entries[i%len(entries)]
		res := c.ReplicaSearch(start, e.Key, recbreadth)
		messages += res.Messages
		for _, a := range res.Found {
			found[a] = true
		}
	}
	// The apply pushes are independent — one per replica — so they fan out
	// concurrently: over the pooled transport they ride the multiplexed
	// connections in parallel instead of queueing one round trip at a time.
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for a := range found {
		wg.Add(1)
		go func(a addr.Addr) {
			defer wg.Done()
			if _, err := c.tr.Call(a, &wire.Message{Kind: wire.KindApply, From: addr.Nil,
				Apply: &wire.ApplyReq{Entry: e}}); err == nil {
				mu.Lock()
				replicas++
				messages++
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	return replicas, messages
}

// ReadResult mirrors core.ReadResult for the networked client.
type ReadResult struct {
	Entry    store.Entry
	Found    bool
	Messages int
	Queries  int
}

// readOnce routes a query via the peer at start and fetches the entry from
// the responsible peer found. Its round-trip time feeds the latency window
// the hedge threshold is computed over.
func (c *Client) readOnce(start addr.Addr, key bitpath.Path, name string) (ReadResult, addr.Addr) {
	began := time.Now()
	defer func() { c.recordLatency(time.Since(began)) }()
	var out ReadResult
	out.Queries = 1
	resp, err := c.tr.Call(start, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
		Query: &wire.QueryReq{Key: key}})
	if err != nil {
		return out, addr.Nil
	}
	if resp.QueryResp == nil {
		c.tel.MalformedResponse("query")
		return out, addr.Nil
	}
	out.Messages += 1 + resp.QueryResp.Messages
	if !resp.QueryResp.Found {
		return out, addr.Nil
	}
	replica := resp.QueryResp.Peer
	got, err := c.tr.Call(replica, &wire.Message{Kind: wire.KindGet, From: addr.Nil,
		Get: &wire.GetReq{Key: key, Name: name}})
	if err != nil {
		return out, addr.Nil
	}
	if got.GetResp == nil {
		c.tel.MalformedResponse("get")
		return out, addr.Nil
	}
	out.Messages++
	if !got.GetResp.Found {
		return out, replica
	}
	out.Entry = got.GetResp.Entry
	out.Found = true
	return out, replica
}

// recordLatency pushes one readOnce round trip into the ring the hedge
// threshold is estimated from.
func (c *Client) recordLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) < latWindow {
		c.lats = append(c.lats, d)
		return
	}
	c.lats[c.latAt] = d
	c.latAt = (c.latAt + 1) % latWindow
}

// HedgeConfig parameterizes hedged majority reads: once a read has been in
// flight longer than the configured percentile of recent read latencies
// (clamped to [MinDelay, MaxDelay]), a second read is raced against a
// different entry point and the first answer wins. Hedging trades a bounded
// amount of extra load for tail-latency protection — the slow peer no
// longer holds the whole majority read hostage.
type HedgeConfig struct {
	// Percentile of the recent-latency window that arms the hedge
	// (default 0.9).
	Percentile float64
	// MinDelay floors the hedge delay so a burst of fast reads cannot
	// turn hedging into duplicate-everything (default 1ms).
	MinDelay time.Duration
	// MaxDelay caps the delay and is used before any samples exist
	// (default 250ms).
	MaxDelay time.Duration
}

// EnableHedging turns on hedged reads for MajorityRead. Call before the
// client is used; the field is not synchronized.
func (c *Client) EnableHedging(cfg HedgeConfig) {
	if cfg.Percentile <= 0 || cfg.Percentile >= 1 {
		cfg.Percentile = 0.9
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 250 * time.Millisecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	c.hedge = &cfg
}

// hedgeDelay estimates how long a read may stay in flight before the
// hedge fires: the configured percentile over the latency window, clamped.
func (c *Client) hedgeDelay() time.Duration {
	cfg := c.hedge
	c.latMu.Lock()
	samples := append([]time.Duration(nil), c.lats...)
	c.latMu.Unlock()
	d := cfg.MaxDelay
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		i := int(cfg.Percentile * float64(len(samples)))
		if i >= len(samples) {
			i = len(samples) - 1
		}
		d = samples[i]
	}
	if d < cfg.MinDelay {
		d = cfg.MinDelay
	}
	if d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	return d
}

// readMaybeHedged performs one majority-read attempt from entries[idx],
// racing a second attempt from the next entry point if the first is still
// in flight past the hedge delay. Both attempts write into a buffered
// channel sized for both, so the losing goroutine always completes its
// send and exits — abandoned, never leaked. The loser's messages are not
// billed to the result (they were spent, but the caller's accounting
// follows the answer it used, matching the non-hedged cost model).
func (c *Client) readMaybeHedged(entries []addr.Addr, idx int, key bitpath.Path, name string) (ReadResult, addr.Addr) {
	primary := entries[idx]
	if c.hedge == nil || len(entries) < 2 {
		return c.readOnce(primary, key, name)
	}
	backup := entries[(idx+1)%len(entries)]
	type attempt struct {
		res     ReadResult
		replica addr.Addr
		hedged  bool
	}
	ch := make(chan attempt, 2)
	go func() {
		res, rep := c.readOnce(primary, key, name)
		ch <- attempt{res, rep, false}
	}()
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.res, a.replica
	case <-timer.C:
	}
	go func() {
		res, rep := c.readOnce(backup, key, name)
		ch <- attempt{res, rep, true}
	}()
	a := <-ch
	c.tel.Hedge(a.hedged)
	return a.res, a.replica
}

// Lookup reads (key, name) once via the peer at start — the non-repetitive
// read.
func (c *Client) Lookup(start addr.Addr, key bitpath.Path, name string) ReadResult {
	res, _ := c.readOnce(start, key, name)
	return res
}

// MajorityRead implements the repetitive-search read over the network:
// repeated routed reads through random entry points until one version
// leads by margin distinct replicas (budget maxQueries), falling back to
// the best-supported version.
func (c *Client) MajorityRead(entries []addr.Addr, key bitpath.Path, name string, margin, maxQueries int) ReadResult {
	if margin <= 0 {
		margin = 3
	}
	if maxQueries <= 0 {
		maxQueries = 64
	}
	votes := map[uint64]int{}
	byVersion := map[uint64]store.Entry{}
	seen := map[addr.Addr]bool{}
	var out ReadResult
	for out.Queries < maxQueries && len(entries) > 0 {
		idx := c.rng.Intn(len(entries))
		r, replica := c.readMaybeHedged(entries, idx, key, name)
		out.Queries++
		out.Messages += r.Messages
		if !r.Found || replica == addr.Nil || seen[replica] {
			continue
		}
		seen[replica] = true
		votes[r.Entry.Version]++
		byVersion[r.Entry.Version] = r.Entry
		if lead, second := topTwo(votes); lead.c-second >= margin {
			out.Entry = byVersion[lead.v]
			out.Found = true
			return out
		}
	}
	if lead, _ := topTwo(votes); lead.c > 0 {
		out.Entry = byVersion[lead.v]
		out.Found = true
	}
	return out
}

type versionCount struct {
	v uint64
	c int
}

func topTwo(votes map[uint64]int) (lead versionCount, second int) {
	vcs := make([]versionCount, 0, len(votes))
	for v, c := range votes {
		vcs = append(vcs, versionCount{v, c})
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].c != vcs[j].c {
			return vcs[i].c > vcs[j].c
		}
		return vcs[i].v > vcs[j].v
	})
	if len(vcs) == 0 {
		return versionCount{}, 0
	}
	lead = vcs[0]
	if len(vcs) > 1 {
		second = vcs[1].c
	}
	return lead, second
}

// AuditReport summarizes a community-wide structural audit.
type AuditReport struct {
	// Reachable is the number of peers that answered the Info request.
	Reachable int
	// Unreachable lists peers that did not answer.
	Unreachable []addr.Addr
	// Violations lists references that break the Section 2 property
	// (judged against the answering peers' current paths).
	Violations []string
	// AvgDepth is the mean path length over reachable peers.
	AvgDepth float64
	// Entries is the total index entries over reachable peers.
	Entries int
}

// Audit fetches every peer's state and verifies the reference invariant
// across the community — the operational health check behind
// `pgridctl audit`. Peers that do not answer are reported, not treated as
// violations (they may simply be offline).
func (c *Client) Audit(all []addr.Addr) AuditReport {
	var rep AuditReport
	infos := make(map[addr.Addr]*wire.InfoResp)
	for _, a := range all {
		if info, err := c.nodeInfo(a); err == nil {
			infos[a] = info
		} else {
			rep.Unreachable = append(rep.Unreachable, a)
		}
	}
	rep.Reachable = len(infos)
	depthSum := 0
	for a, info := range infos {
		depthSum += info.Path.Len()
		rep.Entries += info.Entries
		for i, rs := range info.Refs {
			level := i + 1
			for _, r := range rs.ToSet().Slice() {
				q, ok := infos[r]
				if !ok {
					continue // unreachable target: cannot judge
				}
				switch {
				case q.Path.Len() < level:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"%v level %d → %v: target path %s shorter than level", a, level, r, q.Path))
				case q.Path.Prefix(level-1) != info.Path.Prefix(level-1):
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"%v level %d → %v: prefixes diverge (%s vs %s)", a, level, r, info.Path, q.Path))
				case q.Path.Bit(level) == info.Path.Bit(level):
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"%v level %d → %v: same bit at level", a, level, r))
				}
			}
		}
	}
	if rep.Reachable > 0 {
		rep.AvgDepth = float64(depthSum) / float64(rep.Reachable)
	}
	return rep
}

// PrefixSearch fans out over the covering replicas of prefix and merges
// their scans, freshest version per name winning.
func (c *Client) PrefixSearch(start addr.Addr, prefix bitpath.Path, recbreadth int) ([]store.Entry, int) {
	res := c.ReplicaSearch(start, prefix, recbreadth)
	messages := res.Messages
	best := map[string]store.Entry{}
	for _, a := range res.Found {
		resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindScan, From: addr.Nil,
			Scan: &wire.ScanReq{Prefix: prefix}})
		if err != nil || resp.ScanResp == nil {
			continue
		}
		messages++
		for _, e := range resp.ScanResp.Entries {
			if old, ok := best[e.Name]; !ok || e.Version > old.Version {
				best[e.Name] = e
			}
		}
	}
	out := make([]store.Entry, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := bitpath.Compare(out[i].Key, out[j].Key); c != 0 {
			return c < 0
		}
		return out[i].Name < out[j].Name
	})
	return out, messages
}
