package node

import (
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// wireTraceCluster hand-builds a 3-node grid over real TCP whose routing
// forces a query for key 11 submitted at node 0 through all three nodes:
//
//	node 0: path 0,  level-1 ref → 1
//	node 1: path 10, level-1 ref → 0, level-2 ref → 2
//	node 2: path 11, level-1 ref → 0, level-2 ref → 1
func wireTraceCluster(t *testing.T) ([]*Node, func()) {
	t.Helper()
	nodes, _, stop := startTCPCluster(t, 3)
	spec := []struct {
		path string
		refs []addr.Addr // one ref set per level
	}{
		{"0", []addr.Addr{1}},
		{"10", []addr.Addr{0, 2}},
		{"11", []addr.Addr{0, 1}},
	}
	for i, s := range spec {
		p := nodes[i].Peer()
		path := bitpath.MustParse(s.path)
		for level := 1; level <= path.Len(); level++ {
			if !p.ExtendFrom(path.Prefix(level-1), path.Bit(level), addr.NewSet(s.refs[level-1])) {
				stop()
				t.Fatalf("fixture build failed at node %d level %d", i, level)
			}
		}
		nodes[i].EnableTracing(trace.NewRecorder(16), 0) // recorder on, sampling off
	}
	return nodes, stop
}

// TestTCPDistributedTrace is the acceptance test: one traced query over
// real TCP must produce a single trace id with spans from every visited
// node, and each visited node's flight recorder — scraped via KindTraces
// — must hold that trace id.
func TestTCPDistributedTrace(t *testing.T) {
	nodes, stop := wireTraceCluster(t)
	defer stop()

	cl := NewClient(nodes[0].tr, 42)
	key := bitpath.MustParse("11")
	tr, err := cl.TraceQuery(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Found || tr.TraceID == 0 {
		t.Fatalf("traced query failed: %+v", tr)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %+v, want one per visited node", tr.Spans)
	}
	// The route is 0 → 1 → 2 in visit order, one span per node, chained
	// by parent ids under the root.
	wantPeers := []addr.Addr{0, 1, 2}
	for i, s := range tr.Spans {
		if s.Peer != wantPeers[i] {
			t.Fatalf("span %d visited %v, want %v (route %s)", i, s.Peer, wantPeers[i], tr)
		}
		if s.ID == 0 {
			t.Errorf("span %d has zero id", i)
		}
	}
	if tr.Spans[0].Parent != 0 {
		t.Errorf("root span has parent %d", tr.Spans[0].Parent)
	}
	if tr.Spans[1].Parent != tr.Spans[0].ID || tr.Spans[2].Parent != tr.Spans[1].ID {
		t.Errorf("span parent chain broken: %+v", tr.Spans)
	}
	if tr.Spans[0].Ref != 1 || tr.Spans[1].Ref != 2 || tr.Spans[2].Ref != addr.Nil {
		t.Errorf("chosen references wrong: %+v", tr.Spans)
	}
	if !tr.Spans[2].Matched || tr.Spans[0].Matched {
		t.Errorf("matched flags wrong: %+v", tr.Spans)
	}
	if tr.Messages != len(tr.Spans)-1 {
		t.Errorf("messages = %d, want %d (one per non-root span)", tr.Messages, len(tr.Spans)-1)
	}
	for i, s := range tr.Spans[:2] {
		if s.LatencyNS <= 0 {
			t.Errorf("span %d over TCP has latency %d", i, s.LatencyNS)
		}
	}

	// Every visited node's flight recorder must hold the trace id,
	// scraped over the wire via KindTraces.
	for i := range nodes {
		total, recs, err := cl.FetchTraces(addr.Addr(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if total != 1 || len(recs) != 1 {
			t.Fatalf("node %d recorded %d traces (%d total), want 1", i, len(recs), total)
		}
		if recs[0].TraceID != tr.TraceID {
			t.Errorf("node %d recorded trace %x, want %x", i, recs[0].TraceID, tr.TraceID)
		}
		// A node's record covers its own span plus its whole subtree.
		if want := 3 - i; len(recs[0].Spans) != want {
			t.Errorf("node %d recorded %d spans, want %d", i, len(recs[0].Spans), want)
		}
	}
}

// TestTCPTraceBudget checks the hop budget: with budget 1 the context
// reaches one hop past the root and then stops propagating, without
// changing the routing outcome.
func TestTCPTraceBudget(t *testing.T) {
	nodes, stop := wireTraceCluster(t)
	defer stop()

	ctx := &trace.SpanContext{TraceID: 77, Budget: 1, Sampled: true}
	resp, err := nodes[0].tr.Call(0, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
		Query: &wire.QueryReq{Key: bitpath.MustParse("11"), Ctx: ctx}})
	if err != nil {
		t.Fatal(err)
	}
	q := resp.QueryResp
	if !q.Found || q.Peer != 2 {
		t.Fatalf("budgeted trace broke routing: %+v", q)
	}
	if len(q.Spans) != 2 {
		t.Fatalf("spans = %+v, want the 2 budgeted hops", q.Spans)
	}
	if q.Messages != 2 {
		t.Errorf("messages = %d: tracing must not change the cost metric", q.Messages)
	}
}

// TestUntracedQueryHasNoSpans pins backward-compatible behavior: a
// query without a context (what a pre-tracing peer sends) produces no
// spans and records nothing.
func TestUntracedQueryHasNoSpans(t *testing.T) {
	nodes, stop := wireTraceCluster(t)
	defer stop()

	resp, err := nodes[0].tr.Call(0, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
		Query: &wire.QueryReq{Key: bitpath.MustParse("11")}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.QueryResp.Found || len(resp.QueryResp.Spans) != 0 {
		t.Fatalf("untraced query: %+v", resp.QueryResp)
	}
	for i, n := range nodes {
		if n.Recorder().Total() != 0 {
			t.Errorf("node %d recorded an untraced query", i)
		}
	}
}

// TestNodeQuerySampling checks the sampling knob on locally issued
// queries: probability 1 traces everything, probability 0 nothing.
func TestNodeQuerySampling(t *testing.T) {
	nodes, stop := wireTraceCluster(t)
	defer stop()

	key := bitpath.MustParse("11")
	nodes[0].EnableTracing(trace.NewRecorder(16), 1)
	if res := nodes[0].Query(key); !res.Found {
		t.Fatal("query failed")
	}
	if nodes[0].Recorder().Total() != 1 {
		t.Errorf("prob 1: recorded %d traces, want 1", nodes[0].Recorder().Total())
	}

	nodes[0].EnableTracing(trace.NewRecorder(16), 0)
	if res := nodes[0].Query(key); !res.Found {
		t.Fatal("query failed")
	}
	if nodes[0].Recorder().Total() != 0 {
		t.Errorf("prob 0: recorded %d traces, want 0", nodes[0].Recorder().Total())
	}

	// TraceQuery bypasses the probability entirely.
	res, tr := nodes[0].TraceQuery(key)
	if !res.Found || len(tr.Spans) != 3 || tr.TraceID == 0 {
		t.Fatalf("TraceQuery: res=%+v trace=%+v", res, tr)
	}
	if nodes[0].Recorder().Total() != 1 {
		t.Errorf("TraceQuery did not record")
	}
}
