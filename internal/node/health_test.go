package node

import (
	"fmt"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/central"
	"pgrid/internal/core"
	"pgrid/internal/sim"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// localHealthCluster hand-builds the same 3-node grid as wireTraceCluster
// but over the in-process transport: 0→"0", 1→"10", 2→"11", with the
// Section 2 references between them.
func localHealthCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(3, smallCfg(), 7)
	spec := []struct {
		path string
		refs []addr.Addr
	}{
		{"0", []addr.Addr{1}},
		{"10", []addr.Addr{0, 2}},
		{"11", []addr.Addr{0, 1}},
	}
	for i, s := range spec {
		p := c.Nodes[i].Peer()
		path := bitpath.MustParse(s.path)
		for level := 1; level <= path.Len(); level++ {
			if !p.ExtendFrom(path.Prefix(level-1), path.Bit(level), addr.NewSet(s.refs[level-1])) {
				t.Fatalf("fixture build failed at node %d level %d", i, level)
			}
		}
	}
	return c
}

func TestProberTick(t *testing.T) {
	c := localHealthCluster(t)
	n1 := c.Nodes[1] // path 10: level-1 ref → 0, level-2 ref → 2
	tel := telemetry.New(1)
	n1.SetTelemetry(tel)
	pr := NewProber(n1, time.Second, 8, 1)

	pr.Tick()
	probes := n1.HealthTracker().Snapshot()
	if len(probes) != 2 {
		t.Fatalf("probes = %+v, want both levels sampled", probes)
	}
	for _, lp := range probes {
		if lp.Dead != 0 || lp.Live != 1 {
			t.Errorf("level %d = %+v, want 1 live / 0 dead", lp.Level, lp)
		}
	}
	gauges := map[string]int64{}
	for _, s := range tel.Registry().Snapshot() {
		gauges[s.Name] = s.Value
	}
	if gauges["pgrid_health_probe_rounds"] != 1 {
		t.Errorf("rounds gauge = %d, want 1", gauges["pgrid_health_probe_rounds"])
	}
	if gauges["pgrid_health_liveness_permille"] != 1000 {
		t.Errorf("liveness gauge = %d, want 1000", gauges["pgrid_health_liveness_permille"])
	}
	if gauges["pgrid_health_path_len"] != 2 {
		t.Errorf("path gauge = %d, want 2", gauges["pgrid_health_path_len"])
	}

	c.Nodes[2].SetOnline(false)
	pr.Tick()
	var l2 bool
	for _, lp := range n1.HealthTracker().Snapshot() {
		if lp.Level == 2 {
			l2 = true
			if lp.Live != 1 || lp.Dead != 1 {
				t.Errorf("level 2 after outage = %+v, want 1 live / 1 dead", lp)
			}
		}
	}
	if !l2 || n1.HealthTracker().Rounds() != 2 {
		t.Errorf("tracker after 2 rounds: %+v, rounds=%d", n1.HealthTracker().Snapshot(), n1.HealthTracker().Rounds())
	}
}

// TestProberBudget pins the budget bound and the level interleaving: with
// budget 1, each round spends exactly one probe, on level 1 first.
func TestProberBudget(t *testing.T) {
	c := localHealthCluster(t)
	pr := NewProber(c.Nodes[1], time.Second, 1, 1)
	pr.Tick()
	probes := c.Nodes[1].HealthTracker().Snapshot()
	if len(probes) != 1 || probes[0].Level != 1 || probes[0].Live+probes[0].Dead != 1 {
		t.Fatalf("budget-1 round probed %+v, want exactly one level-1 probe", probes)
	}
}

// TestProberSkipsOffline: an offline node measures nothing (it is not a
// community participant while away).
func TestProberSkipsOffline(t *testing.T) {
	c := localHealthCluster(t)
	pr := NewProber(c.Nodes[1], time.Second, 8, 1)
	c.Nodes[1].SetOnline(false)
	pr.Tick()
	if got := c.Nodes[1].HealthTracker().Rounds(); got != 0 {
		t.Fatalf("offline node completed %d rounds", got)
	}
}

func TestFetchHealth(t *testing.T) {
	c := localHealthCluster(t)
	NewProber(c.Nodes[1], time.Second, 8, 1).Tick()

	cl := NewClient(c.Transport, 42)
	d, rounds, err := cl.FetchHealth(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Addr != 1 || d.Path != bitpath.MustParse("10") || rounds != 1 {
		t.Fatalf("digest = %+v rounds = %d", d, rounds)
	}
	if len(d.RefCounts) != 2 || d.RefCounts[0] != 1 || d.RefCounts[1] != 1 {
		t.Errorf("ref counts = %v, want [1 1]", d.RefCounts)
	}
	if len(d.Liveness) != 2 {
		t.Errorf("liveness = %+v, want both levels", d.Liveness)
	}

	// WantLiveness=false keeps the digest minimal.
	d2, _, err := cl.FetchHealth(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Liveness != nil {
		t.Errorf("minimal digest carries liveness: %+v", d2.Liveness)
	}
}

func TestCrawlCensus(t *testing.T) {
	c := localHealthCluster(t)
	cl := NewClient(c.Transport, 42)

	res := cl.Crawl(0)
	if len(res.Digests) != 3 || len(res.Unreachable) != 0 {
		t.Fatalf("crawl = %+v", res)
	}
	want := map[addr.Addr]string{0: "0", 1: "10", 2: "11"}
	for _, d := range res.Digests {
		if d.Path.String() != want[d.Addr] {
			t.Errorf("census: %v has path %s, want %s", d.Addr, d.Path, want[d.Addr])
		}
	}
	// Three messages per reachable peer: one Info, one Health, one Repair.
	if res.Messages != 9 {
		t.Errorf("messages = %d, want 9", res.Messages)
	}

	// An offline peer is reported unreachable, not silently dropped.
	c.Nodes[2].SetOnline(false)
	res = cl.Crawl(0)
	if len(res.Digests) != 2 || len(res.Unreachable) != 1 || res.Unreachable[0] != 2 {
		t.Fatalf("crawl with 2 offline = %+v", res)
	}
}

// noHealthTransport simulates a pre-health community: every KindHealth
// request fails as if the receiver answered KindError.
type noHealthTransport struct{ tr Transport }

func (t noHealthTransport) Call(to addr.Addr, m *wire.Message) (*wire.Message, error) {
	if m.Kind == wire.KindHealth || m.Kind == wire.KindBatch {
		// A pre-health peer predates batching too: both kinds come back
		// as the KindError a real old node would answer with.
		return nil, fmt.Errorf("node %v: unexpected message kind %v", to, m.Kind)
	}
	return t.tr.Call(to, m)
}

func TestCrawlPreHealthFallback(t *testing.T) {
	c := localHealthCluster(t)
	cl := NewClient(noHealthTransport{c.Transport}, 42)
	res := cl.Crawl(0)
	if len(res.Digests) != 3 {
		t.Fatalf("crawl = %+v, want all 3 via Info fallback", res)
	}
	for _, d := range res.Digests {
		if d.Liveness != nil || d.IndexHash != 0 {
			t.Errorf("fallback digest %v carries health-only fields: %+v", d.Addr, d)
		}
		if d.Path.Len() == 0 || len(d.RefCounts) != d.Path.Len() {
			t.Errorf("fallback digest %v lost structure: %+v", d.Addr, d)
		}
	}
}

// TestTCPCrawl is the acceptance test: a crawl over a real 3-node TCP
// community returns a census matching the peers' actual responsibility
// paths.
func TestTCPCrawl(t *testing.T) {
	nodes, _, stop := startTCPCluster(t, 3)
	defer stop()
	spec := []struct {
		path string
		refs []addr.Addr
	}{
		{"0", []addr.Addr{1}},
		{"10", []addr.Addr{0, 2}},
		{"11", []addr.Addr{0, 1}},
	}
	for i, s := range spec {
		p := nodes[i].Peer()
		path := bitpath.MustParse(s.path)
		for level := 1; level <= path.Len(); level++ {
			if !p.ExtendFrom(path.Prefix(level-1), path.Bit(level), addr.NewSet(s.refs[level-1])) {
				t.Fatalf("fixture build failed at node %d level %d", i, level)
			}
		}
		NewProber(nodes[i], time.Second, 4, int64(i)).Tick()
	}

	cl := NewClient(nodes[0].tr, 42)
	res := cl.Crawl(0)
	if len(res.Digests) != 3 || len(res.Unreachable) != 0 {
		t.Fatalf("TCP crawl = %+v", res)
	}
	for i, want := range []string{"0", "10", "11"} {
		d := res.Digests[i]
		if d.Addr != addr.Addr(i) || d.Path.String() != want {
			t.Errorf("digest %d = %v %s, want %d %s", i, d.Addr, d.Path, i, want)
		}
		if len(d.Liveness) == 0 {
			t.Errorf("digest %d carries no probe data: %+v", i, d)
		}
	}
}

// TestCrawlGroundTruth64 builds a 64-peer community with the simulator,
// transplants every peer's state into a networked node, and checks that
// the decentralized crawl reconstructs exactly the census a central
// registry (told every path directly) holds.
func TestCrawlGroundTruth64(t *testing.T) {
	cfg := core.Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2}
	res, err := sim.Build(sim.Options{N: 64, Config: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("construction did not converge")
	}

	tr := NewLocalTransport()
	reg := central.NewRegistry()
	for _, p := range res.Dir.All() {
		n := New(p.Addr(), cfg, tr, int64(p.Addr()))
		if err := n.Peer().Restore(p.Snapshot()); err != nil {
			t.Fatal(err)
		}
		tr.Register(n)
		reg.Record(p.Addr(), p.Path())
	}

	cl := NewClient(tr, 3)
	crawl := cl.Crawl(0)
	if len(crawl.Unreachable) != 0 {
		t.Fatalf("unreachable peers in a fully-online community: %v", crawl.Unreachable)
	}
	crawled := make(map[bitpath.Path][]addr.Addr)
	for _, d := range crawl.Digests {
		crawled[d.Path] = append(crawled[d.Path], d.Addr) // already addr-sorted
	}

	truth := reg.Census()
	if len(crawled) != len(truth) {
		t.Fatalf("crawled %d paths, registry has %d", len(crawled), len(truth))
	}
	for path, wantAddrs := range truth {
		gotAddrs := crawled[path]
		if len(gotAddrs) != len(wantAddrs) {
			t.Fatalf("path %s: crawled %v, registry %v", path, gotAddrs, wantAddrs)
		}
		for i := range wantAddrs {
			if gotAddrs[i] != wantAddrs[i] {
				t.Fatalf("path %s: crawled %v, registry %v", path, gotAddrs, wantAddrs)
			}
		}
	}
	if len(crawl.Digests) != 64 {
		t.Fatalf("crawl found %d peers, want 64", len(crawl.Digests))
	}
}
