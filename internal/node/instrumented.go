package node

import (
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// InstrumentedTransport wraps a Transport and records every outbound call —
// kind, round-trip latency, and failure — into a telemetry bundle. Wrap the
// outermost transport (outside FlakyTransport) so injected drops are
// measured as the client sees them: failed calls.
//
// With a slow-op threshold set, calls that exceed it are additionally
// counted and recorded into a flight recorder with their span context, so
// a tail-latency incident leaves inspectable evidence at /debug/slow.
type InstrumentedTransport struct {
	inner Transport
	tel   *telemetry.Instruments
	slow  time.Duration
	rec   *trace.Recorder
}

// InstrumentTransport wraps inner. A nil tel returns inner unchanged, so
// callers can wire the wrapper unconditionally.
func InstrumentTransport(inner Transport, tel *telemetry.Instruments) Transport {
	return InstrumentTransportSlow(inner, tel, 0, nil)
}

// InstrumentTransportSlow is InstrumentTransport plus a slow-op log: calls
// taking slow or longer are counted per kind and recorded into rec (the
// slow-op flight recorder; nil disables recording but keeps the counter).
// slow <= 0 disables the slow-op log entirely.
func InstrumentTransportSlow(inner Transport, tel *telemetry.Instruments, slow time.Duration, rec *trace.Recorder) Transport {
	if tel == nil {
		return inner
	}
	return &InstrumentedTransport{inner: inner, tel: tel, slow: slow, rec: rec}
}

// Call implements Transport.
func (t *InstrumentedTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	start := time.Now()
	resp, err := t.inner.Call(to, msg)
	d := time.Since(start)
	kind := msg.Kind.String()
	t.tel.ClientRPC(kind, d, err)
	if t.tel.EventsOn() {
		t.tel.EmitRPC(kind, int(to), d.Microseconds())
	}
	if t.slow > 0 && d >= t.slow {
		t.tel.SlowRPC(kind)
		t.recordSlow(to, msg, d, err)
	}
	return resp, err
}

// recordSlow files one over-threshold call into the slow-op recorder,
// reusing the query's span context when the message carries one so the
// slow op can be correlated with its distributed trace.
func (t *InstrumentedTransport) recordSlow(to addr.Addr, msg *wire.Message, d time.Duration, err error) {
	if t.rec == nil {
		return
	}
	var id uint64
	var key bitpath.Path
	if msg.Query != nil {
		key = msg.Query.Key
		if msg.Query.Ctx != nil {
			id = msg.Query.Ctx.TraceID
		}
	}
	if id == 0 {
		id = trace.NewTraceID(uint64(msg.From), uint64(to)^uint64(d))
	}
	t.rec.Record(trace.Trace{
		TraceID: id,
		Key:     key,
		Found:   err == nil,
		Spans: []trace.Span{{
			ID:        id,
			Peer:      to,
			Path:      key,
			LatencyNS: d.Nanoseconds(),
		}},
	})
}
