package node

import (
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// InstrumentedTransport wraps a Transport and records every outbound call —
// kind, round-trip latency, and failure — into a telemetry bundle. Wrap the
// outermost transport (outside FlakyTransport) so injected drops are
// measured as the client sees them: failed calls.
type InstrumentedTransport struct {
	inner Transport
	tel   *telemetry.Instruments
}

// InstrumentTransport wraps inner. A nil tel returns inner unchanged, so
// callers can wire the wrapper unconditionally.
func InstrumentTransport(inner Transport, tel *telemetry.Instruments) Transport {
	if tel == nil {
		return inner
	}
	return &InstrumentedTransport{inner: inner, tel: tel}
}

// Call implements Transport.
func (t *InstrumentedTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	start := time.Now()
	resp, err := t.inner.Call(to, msg)
	t.tel.ClientRPC(msg.Kind.String(), time.Since(start), err)
	return resp, err
}
