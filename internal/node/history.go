package node

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/resilience"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// handleHistory answers KindHistory with a windowed dump of the node's
// telemetry history ring. With history disabled the response is an
// empty, schema-stamped dump — distinguishable from a pre-history peer,
// which answers the unknown kind with KindError.
func (n *Node) handleHistory(req *wire.HistoryReq) *wire.HistoryResp {
	var window time.Duration
	maxPoints := 0
	if req != nil {
		if req.WindowNS > 0 {
			window = time.Duration(req.WindowNS)
		}
		if req.MaxPoints > 0 {
			maxPoints = int(req.MaxPoints)
		}
	}
	return &wire.HistoryResp{Dump: n.history.Dump(window, maxPoints)}
}

// RunHistorySampler records one metrics snapshot into the ring per
// interval until ctx is cancelled — the budget-bounded companion of the
// status and SLO loops in pgridnode. One snapshot is taken immediately
// so the ring is never empty while the node serves, then one per tick;
// the work per tick is a single registry walk (microseconds), so the
// sampler's cost is fixed and independent of traffic. No-op when the
// node has no history ring or no telemetry.
func (n *Node) RunHistorySampler(ctx context.Context) {
	if n.history == nil || n.tel == nil {
		return
	}
	n.history.Record(n.tel.MetricsSnapshot())
	t := time.NewTicker(n.history.Interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.history.Record(n.tel.MetricsSnapshot())
		}
	}
}

// FetchHistory fetches a peer's telemetry history dump for the trailing
// window (0 = everything retained), capped at maxPoints points (0 = no
// cap). Peers that predate the history frame answer KindError; those
// degrade to the metrics snapshot path — a single-point dump carrying
// the peer's current cumulative state, which every HistoryDump consumer
// already handles (instantaneous quantiles, no rates). A reachable peer
// answering the wrong kind is ErrMalformed.
func (c *Client) FetchHistory(a addr.Addr, window time.Duration, maxPoints int) (telemetry.HistoryDump, error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindHistory, From: addr.Nil,
		History: &wire.HistoryReq{WindowNS: int64(window), MaxPoints: int64(maxPoints)}})
	if err != nil {
		if Classify(err) == resilience.Terminal {
			// Pre-history peer: it answered, just not this kind. Its
			// snapshot still yields a one-point dump.
			return c.snapshotDump(a)
		}
		return telemetry.HistoryDump{}, err
	}
	if resp.HistoryResp == nil {
		c.tel.MalformedResponse("history")
		return telemetry.HistoryDump{}, fmt.Errorf("%w: node %v answered history request with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.HistoryResp.Dump, nil
}

// snapshotDump degrades a history fetch to the metrics snapshot path:
// one point, stamped now, carrying the peer's cumulative state.
func (c *Client) snapshotDump(a addr.Addr) (telemetry.HistoryDump, error) {
	snap, err := c.FetchMetrics(a)
	if err != nil {
		return telemetry.HistoryDump{}, err
	}
	return telemetry.HistoryDump{
		Schema: telemetry.MetricsSchemaVersion,
		Points: []telemetry.HistoryPoint{{AtNS: time.Now().UnixNano(), Snap: snap}},
	}, nil
}

// HistoryResult is one cluster-wide history collection: per-peer dumps
// keyed by address, the peers that never answered, and the message cost.
type HistoryResult struct {
	// Dumps holds one history dump per reachable peer. Peers with history
	// disabled contribute an empty dump; pre-history peers contribute the
	// single-point snapshot fallback.
	Dumps       map[addr.Addr]telemetry.HistoryDump
	Unreachable []addr.Addr
	Messages    int
}

// CollectClusterHistory walks the community from one entry peer — the
// same breadth-first crawl as CollectCluster — and gathers a windowed
// history dump per reachable peer. Each peer is visited with one batched
// Info+History frame (two logical messages) when it serves batches; a
// pre-batch peer gets the sequential pair. Per-peer failures land in
// Unreachable, never abort the walk.
func (c *Client) CollectClusterHistory(start addr.Addr, window time.Duration, maxPoints int) HistoryResult {
	res := HistoryResult{Dumps: make(map[addr.Addr]telemetry.HistoryDump)}
	visited := map[addr.Addr]bool{start: true}
	queue := []addr.Addr{start}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		info, dump, haveDump := c.collectPeerHistory(a, window, maxPoints, &res.Messages)
		if info == nil {
			res.Unreachable = append(res.Unreachable, a)
			continue
		}
		enqueue := func(r addr.Addr) {
			if !visited[r] {
				visited[r] = true
				queue = append(queue, r)
			}
		}
		for _, rs := range info.Refs {
			for _, r := range rs.Addrs {
				enqueue(r)
			}
		}
		for _, b := range info.Buddies.Addrs {
			enqueue(b)
		}
		if haveDump {
			res.Dumps[info.Addr] = dump
		}
	}
	sort.Slice(res.Unreachable, func(i, j int) bool { return res.Unreachable[i] < res.Unreachable[j] })
	return res
}

// collectPeerHistory fetches one peer's routing state and history dump —
// batched when possible, sequential otherwise. Returns nil info when the
// peer is unreachable; haveDump=false means the peer answered Info but
// neither history nor the snapshot fallback.
func (c *Client) collectPeerHistory(a addr.Addr, window time.Duration, maxPoints int, messages *int) (info *wire.InfoResp, dump telemetry.HistoryDump, haveDump bool) {
	batch := []wire.Message{
		{Kind: wire.KindInfo, From: addr.Nil},
		{Kind: wire.KindHistory, From: addr.Nil,
			History: &wire.HistoryReq{WindowNS: int64(window), MaxPoints: int64(maxPoints)}},
	}
	resps, err := callBatch(c.tr, a, addr.Nil, batch)
	if err == nil {
		*messages += len(batch)
		if resps[0].InfoResp == nil {
			c.tel.MalformedResponse("info")
			return nil, telemetry.HistoryDump{}, false
		}
		info = resps[0].InfoResp
		if resps[1].HistoryResp != nil {
			return info, resps[1].HistoryResp.Dump, true
		}
		// The batch succeeded but the history slot errored: a peer new
		// enough for batches yet older than the history frame. Degrade to
		// its snapshot.
		dump, err := c.snapshotDump(a)
		*messages++
		return info, dump, err == nil
	}
	if Classify(err) == resilience.Transient {
		*messages++ // the one failed contact attempt
		return nil, telemetry.HistoryDump{}, false
	}
	// Pre-batch peer: sequential fallback.
	i, err := c.nodeInfo(a)
	*messages++
	if err != nil {
		return nil, telemetry.HistoryDump{}, false
	}
	dump, err = c.FetchHistory(a, window, maxPoints)
	*messages++
	return i, dump, err == nil
}
