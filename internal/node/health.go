package node

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/resilience"
	"pgrid/internal/wire"
)

// EnableHealth attaches a liveness tracker to the node (idempotent) and
// returns it. Call before the node starts serving; the field is not
// synchronized. Without a tracker the node still answers KindHealth with a
// structural digest, just without probe data.
func (n *Node) EnableHealth() *health.Tracker {
	if n.htr == nil {
		n.htr = health.NewTracker()
	}
	return n.htr
}

// HealthTracker returns the attached tracker (possibly nil).
func (n *Node) HealthTracker() *health.Tracker { return n.htr }

// Digest returns the node's current replica digest, including whatever
// probe data the tracker has accumulated.
func (n *Node) Digest() health.Digest {
	return health.Of(n.self, n.htr.Snapshot())
}

// handleHealth answers KindHealth. A nil request payload (an old or
// minimal client) is treated as WantLiveness=true — the digest is cheap
// and complete by default.
func (n *Node) handleHealth(req *wire.HealthReq) *wire.HealthResp {
	probes := n.htr.Snapshot()
	if req != nil && !req.WantLiveness {
		probes = nil
	}
	return &wire.HealthResp{Digest: health.Of(n.self, probes), Rounds: n.htr.Rounds()}
}

// refreshHealthGauges pushes the node's current digest into the telemetry
// gauges (no-op without instruments). The prober calls it after every
// round so /metrics tracks the live structure.
func (n *Node) refreshHealthGauges() {
	if n.tel == nil {
		return
	}
	probes := n.htr.Snapshot()
	s := n.self.Snapshot()
	perm := func(r float64, ok bool) int64 {
		if !ok {
			return -1
		}
		return int64(r*1000 + 0.5)
	}
	overall, overallOK := health.OverallRatio(probes)
	worst, worstOK := health.MinLevelRatio(probes)
	n.tel.ObserveHealth(s.Path.Len(), n.Store().Len(), s.Buddies.Len(),
		perm(overall, overallOK), perm(worst, worstOK), n.htr.Rounds())
}

// Prober is the node's reference-liveness sampler: every interval
// (jittered ±25% so a community started together does not probe in
// lockstep) it pings up to budget referenced peers, spread across the
// node's levels, and records per-level live/dead tallies in the health
// tracker. Unlike Maintain it never mutates the reference table — it only
// measures, which is what makes its numbers comparable across nodes and
// safe to run at a much higher frequency.
type Prober struct {
	node   *Node
	every  time.Duration
	budget int

	mu  sync.Mutex
	rng *rand.Rand
}

// NewProber returns a prober for n waking every interval and spending at
// most budget probe messages per round. It attaches a health tracker to
// the node if none is present, and panics on a non-positive interval or
// budget.
func NewProber(n *Node, every time.Duration, budget int, seed int64) *Prober {
	if every <= 0 {
		panic("node: NewProber with non-positive interval")
	}
	if budget <= 0 {
		panic("node: NewProber with non-positive budget")
	}
	n.EnableHealth()
	return &Prober{node: n, every: every, budget: budget,
		rng: rand.New(rand.NewSource(seed))}
}

// Run probes until ctx is done, with a jittered interval.
func (p *Prober) Run(ctx context.Context) {
	for {
		p.mu.Lock()
		// Jitter uniformly in [0.75, 1.25]·every.
		d := p.every/4*3 + time.Duration(p.rng.Int63n(int64(p.every)/2+1))
		p.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
			p.Tick()
		}
	}
}

// Tick runs one probe round immediately; exported so tests drive probing
// without wall-clock timers. An offline node skips its turn.
func (p *Prober) Tick() {
	n := p.node
	if !n.Online() {
		return
	}
	type cand struct {
		level int
		to    addr.Addr
	}
	path := n.self.Path()
	perLevel := make([][]cand, 0, path.Len())
	for level := 1; level <= path.Len(); level++ {
		refs := n.self.RefsAt(level).Slice()
		p.mu.Lock()
		p.rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
		p.mu.Unlock()
		cs := make([]cand, len(refs))
		for i, r := range refs {
			cs[i] = cand{level: level, to: r}
		}
		perLevel = append(perLevel, cs)
	}

	// Interleave levels so a small budget still samples the whole spine
	// rather than exhausting level 1 first.
	var picks []cand
	for round := 0; len(picks) < p.budget; round++ {
		took := false
		for _, cs := range perLevel {
			if round < len(cs) && len(picks) < p.budget {
				picks = append(picks, cs[round])
				took = true
			}
		}
		if !took {
			break
		}
	}

	for _, c := range picks {
		resp, err := n.tr.Call(c.to, &wire.Message{Kind: wire.KindInfo, From: n.Addr()})
		ok := err == nil && resp.InfoResp != nil &&
			resp.InfoResp.Path.Len() >= c.level &&
			resp.InfoResp.Path.Prefix(c.level-1) == path.Prefix(c.level-1) &&
			resp.InfoResp.Path.Bit(c.level) != path.Bit(c.level)
		n.htr.Observe(c.level, ok)
		n.tel.RefLiveness(c.level, ok)
	}
	n.htr.RoundDone()
	n.refreshHealthGauges()
}

// --- client surface --------------------------------------------------------

// FetchHealth fetches a peer's replica digest and completed probe rounds.
// Pre-health peers answer with KindError, surfaced here as an error.
func (c *Client) FetchHealth(a addr.Addr, wantLiveness bool) (health.Digest, int64, error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindHealth, From: addr.Nil,
		Health: &wire.HealthReq{WantLiveness: wantLiveness}})
	if err != nil {
		return health.Digest{}, 0, err
	}
	if resp.HealthResp == nil {
		c.tel.MalformedResponse("health")
		return health.Digest{}, 0, fmt.Errorf("%w: node %v answered health request with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.HealthResp.Digest, resp.HealthResp.Rounds, nil
}

// crawlPeer fetches one peer's routing state, health digest, and repair
// status — as a single batched frame when the peer serves batches, the
// sequential info+health pair otherwise (a pre-batch peer is pre-repair
// too, so its status comes back disabled). Returns nil info when the peer
// is unreachable; haveDigest=false means the caller must synthesize the
// structural fallback digest. messages counts logical requests (an
// info+health+repair batch bills three), so the crawl's cost metric stays
// comparable with pre-batch crawls — batching removes round trips, not
// messages.
func (c *Client) crawlPeer(a addr.Addr, messages *int) (info *wire.InfoResp, d health.Digest, haveDigest bool, rs repair.Status) {
	batch := []wire.Message{
		{Kind: wire.KindInfo, From: addr.Nil},
		{Kind: wire.KindHealth, From: addr.Nil, Health: &wire.HealthReq{WantLiveness: true}},
		{Kind: wire.KindRepair, From: addr.Nil, Repair: &wire.RepairReq{}},
	}
	resps, err := callBatch(c.tr, a, addr.Nil, batch)
	if err == nil {
		*messages += len(batch)
		if resps[0].InfoResp == nil {
			c.tel.MalformedResponse("info")
			return nil, health.Digest{}, false, rs
		}
		if resps[2].RepairResp != nil {
			rs = resps[2].RepairResp.Status
		}
		if resps[1].HealthResp == nil {
			// The peer serves batches but not health — structural fallback.
			return resps[0].InfoResp, health.Digest{}, false, rs
		}
		return resps[0].InfoResp, resps[1].HealthResp.Digest, true, rs
	}
	if Classify(err) == resilience.Transient {
		// Unreachable: bill the one contact attempt, like the failed
		// info fetch of the sequential path.
		*messages++
		return nil, health.Digest{}, false, rs
	}
	// The peer answered but refused the batch envelope (pre-batch peer):
	// the sequential pair it does understand.
	i, err := c.nodeInfo(a)
	*messages++
	if err != nil {
		return nil, health.Digest{}, false, rs
	}
	d, _, err = c.FetchHealth(a, true)
	*messages++
	if err != nil {
		return i, health.Digest{}, false, rs
	}
	return i, d, true, rs
}

// CrawlResult is one community crawl: the digests collected, the peers
// that were referenced but never answered, and the message cost.
type CrawlResult struct {
	Digests []health.Digest
	// Repairs holds the repair statuses of the reachable peers that run a
	// repairer (disabled statuses are dropped) — feed it to
	// analysis.GridReport.AttachRepair for the community verdict.
	Repairs []repair.Status
	// Unreachable lists peers some reachable peer referenced that did not
	// answer the crawl (offline, crashed, or unknown to the transport).
	Unreachable []addr.Addr
	Messages    int
}

// Crawl walks the whole community from one entry peer, following every
// reference and buddy link breadth-first, and collects a health digest
// per reachable peer — the decentralized census behind `pgridctl crawl`.
// Peers too old to answer KindHealth still contribute a structural digest
// synthesized from their Info response (without probe data), so a
// mixed-version community crawls cleanly. Digests come back sorted by
// address.
func (c *Client) Crawl(start addr.Addr) CrawlResult {
	var res CrawlResult
	visited := map[addr.Addr]bool{start: true}
	queue := []addr.Addr{start}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		info, d, haveDigest, rs := c.crawlPeer(a, &res.Messages)
		if info == nil {
			res.Unreachable = append(res.Unreachable, a)
			continue
		}
		if rs.Enabled {
			res.Repairs = append(res.Repairs, rs)
		}
		enqueue := func(r addr.Addr) {
			if !visited[r] {
				visited[r] = true
				queue = append(queue, r)
			}
		}
		for _, rs := range info.Refs {
			for _, r := range rs.Addrs {
				enqueue(r)
			}
		}
		for _, b := range info.Buddies.Addrs {
			enqueue(b)
		}

		if !haveDigest {
			// Pre-health peer: fall back to what Info already told us.
			d = health.Digest{Addr: info.Addr, Path: info.Path, Entries: info.Entries,
				Buddies: info.Buddies.ToSet().Len()}
			for _, rs := range info.Refs {
				d.RefCounts = append(d.RefCounts, rs.ToSet().Len())
			}
		}
		res.Digests = append(res.Digests, d)
	}
	sort.Slice(res.Digests, func(i, j int) bool { return res.Digests[i].Addr < res.Digests[j].Addr })
	sort.Slice(res.Unreachable, func(i, j int) bool { return res.Unreachable[i] < res.Unreachable[j] })
	return res
}
