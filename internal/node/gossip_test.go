package node

import (
	"context"
	"testing"
	"time"

	"pgrid/internal/addr"
)

func TestGossiperTicksConvergeCluster(t *testing.T) {
	cfg := smallCfg()
	c := NewCluster(32, cfg, 1)
	gossipers := make([]*Gossiper, len(c.Nodes))
	for i, n := range c.Nodes {
		others := make([]addr.Addr, 0, len(c.Nodes)-1)
		for j := range c.Nodes {
			if j != i {
				others = append(others, addr.Addr(j))
			}
		}
		gossipers[i] = NewGossiper(n, others, time.Millisecond, int64(i))
	}
	for round := 0; round < 2000 && c.AvgPathLen() < 3.5; round++ {
		for _, g := range gossipers {
			g.Tick()
		}
	}
	if c.AvgPathLen() < 3.5 {
		t.Fatalf("gossip did not converge: avg %.2f", c.AvgPathLen())
	}
	attempts, successes := gossipers[0].Stats()
	if attempts == 0 || successes == 0 || successes > attempts {
		t.Errorf("stats: %d/%d", successes, attempts)
	}
}

func TestGossiperOfflineNodeSkipsTurns(t *testing.T) {
	c := NewCluster(2, smallCfg(), 2)
	g := NewGossiper(c.Nodes[0], []addr.Addr{1}, time.Millisecond, 3)
	c.Nodes[0].SetOnline(false)
	for i := 0; i < 10; i++ {
		g.Tick()
	}
	if attempts, _ := g.Stats(); attempts != 0 {
		t.Errorf("offline node attempted %d meetings", attempts)
	}
	if c.Nodes[0].Path().Len() != 0 {
		t.Error("offline node mutated state")
	}
}

func TestGossiperRunStopsWithContext(t *testing.T) {
	c := NewCluster(2, smallCfg(), 4)
	g := NewGossiper(c.Nodes[0], []addr.Addr{1}, time.Millisecond, 5)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		g.Run(ctx)
		close(done)
	}()
	// Let it gossip briefly, then stop.
	deadline := time.After(2 * time.Second)
	for {
		if a, _ := g.Stats(); a > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("gossiper never ticked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on context cancellation")
	}
}

func TestGossiperConstructorValidation(t *testing.T) {
	c := NewCluster(2, smallCfg(), 6)
	for _, f := range []func(){
		func() { NewGossiper(c.Nodes[0], nil, time.Second, 1) },
		func() { NewGossiper(c.Nodes[0], []addr.Addr{1}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
