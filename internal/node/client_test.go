package node

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/store"
)

// builtCluster returns a converged in-process cluster plus a client.
func builtCluster(t *testing.T, n int, cfg core.Config, seed int64) (*Cluster, *Client) {
	t.Helper()
	c := NewCluster(n, cfg, seed)
	rng := rand.New(rand.NewSource(seed))
	buildCluster(t, c, 0.99*float64(cfg.MaxL), 80000, rng)
	return c, NewClient(c.Transport, seed+100)
}

func TestClientReplicaSearchFindsCoveringPeers(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 1)
	key := bitpath.MustParse("101")
	res := cl.ReplicaSearch(c.Nodes[0].Addr(), key, 3)
	if len(res.Found) == 0 {
		t.Fatal("found nothing")
	}
	for _, a := range res.Found {
		var n *Node
		for _, cand := range c.Nodes {
			if cand.Addr() == a {
				n = cand
			}
		}
		if !bitpath.Comparable(n.Path(), key) {
			t.Errorf("non-covering peer %v (path %q)", a, n.Path())
		}
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestClientPublishAndLookup(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 2)
	e := store.Entry{Key: bitpath.MustParse("0110"), Name: "f", Holder: 3, Version: 1}
	entries := []addr.Addr{c.Nodes[1].Addr(), c.Nodes[50].Addr()}
	replicas, msgs := cl.Publish(entries, e, 3, 2)
	if replicas == 0 || msgs == 0 {
		t.Fatalf("publish: replicas=%d msgs=%d", replicas, msgs)
	}
	res := cl.Lookup(c.Nodes[9].Addr(), e.Key, "f")
	if !res.Found {
		// A single read may land on a missed replica; a majority read
		// must recover.
		res = cl.MajorityRead(entries, e.Key, "f", 2, 32)
	}
	if !res.Found || res.Entry.Holder != 3 {
		t.Fatalf("lookup = %+v", res)
	}
}

func TestClientMajorityReadPrefersFresh(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 3)
	key := bitpath.MustParse("0011")
	// Install v1 everywhere by publishing generously, then v2 at most
	// replicas.
	all := make([]addr.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		all[i] = n.Addr()
	}
	cl.Publish(all[:8], store.Entry{Key: key, Name: "d", Holder: 1, Version: 1}, 4, 6)
	cl.Publish(all[8:16], store.Entry{Key: key, Name: "d", Holder: 2, Version: 2}, 4, 4)
	res := cl.MajorityRead(all, key, "d", 3, 64)
	if !res.Found || res.Entry.Version != 2 {
		t.Fatalf("majority read = %+v, want version 2", res)
	}
}

func TestClientPublishNoEntryPoints(t *testing.T) {
	c := NewCluster(16, smallCfg(), 4)
	cl := NewClient(c.Transport, 104)
	r, m := cl.Publish(nil, store.Entry{Key: "01", Name: "x", Version: 1}, 2, 2)
	if r != 0 || m != 0 {
		t.Errorf("publish with no entry points: %d/%d", r, m)
	}
}

func TestClientPrefixSearchOverNetwork(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 5)
	all := make([]addr.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		all[i] = n.Addr()
	}
	// Two entries under prefix 01, one elsewhere.
	cl.Publish(all[:4], store.Entry{Key: "0100", Name: "a", Holder: 1, Version: 1}, 4, 3)
	cl.Publish(all[4:8], store.Entry{Key: "0111", Name: "b", Holder: 2, Version: 1}, 4, 3)
	cl.Publish(all[8:12], store.Entry{Key: "1100", Name: "c", Holder: 3, Version: 1}, 4, 3)

	got, msgs := cl.PrefixSearch(c.Nodes[0].Addr(), bitpath.MustParse("01"), 4)
	if msgs == 0 {
		t.Error("no messages counted")
	}
	names := map[string]bool{}
	for _, e := range got {
		names[e.Name] = true
	}
	if !names["a"] || !names["b"] || names["c"] {
		t.Errorf("prefix search returned %v", names)
	}
}

func TestClientSurvivesOfflinePeers(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 6)
	for i, n := range c.Nodes {
		if i%2 == 0 {
			n.SetOnline(false)
		}
	}
	key := bitpath.MustParse("11")
	start := c.Nodes[1].Addr() // online
	res := cl.ReplicaSearch(start, key, 3)
	for _, a := range res.Found {
		if int(a)%2 == 0 {
			t.Errorf("offline peer %v reported", a)
		}
	}
}

func TestClientAuditCleanCluster(t *testing.T) {
	c, cl := builtCluster(t, 64, smallCfg(), 9)
	all := make([]addr.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		all[i] = n.Addr()
	}
	rep := cl.Audit(all)
	if rep.Reachable != 64 || len(rep.Unreachable) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("clean cluster has violations: %v", rep.Violations)
	}
	if rep.AvgDepth < 3.9 {
		t.Errorf("avg depth = %v", rep.AvgDepth)
	}
}

func TestClientAuditDetectsViolationAndOffline(t *testing.T) {
	c, cl := builtCluster(t, 32, smallCfg(), 10)
	all := make([]addr.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		all[i] = n.Addr()
	}
	// Corrupt one reference: make node 0 reference a same-side peer.
	var sameSide addr.Addr = addr.Nil
	p0 := c.Nodes[0].Path()
	for _, n := range c.Nodes[1:] {
		if n.Path().Bit(1) == p0.Bit(1) {
			sameSide = n.Addr()
			break
		}
	}
	if sameSide == addr.Nil {
		t.Fatal("fixture: no same-side peer")
	}
	c.Nodes[0].Peer().SetRefsAt(1, addr.NewSet(sameSide))
	c.Nodes[5].SetOnline(false)

	rep := cl.Audit(all)
	if len(rep.Violations) == 0 {
		t.Error("corrupted reference not detected")
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != 5 {
		t.Errorf("unreachable = %v", rep.Unreachable)
	}
}

func TestTopTwo(t *testing.T) {
	lead, second := topTwo(map[uint64]int{5: 3, 2: 1})
	if lead.v != 5 || lead.c != 3 || second != 1 {
		t.Errorf("topTwo = %+v, %d", lead, second)
	}
	lead, second = topTwo(nil)
	if lead.c != 0 || second != 0 {
		t.Errorf("empty topTwo = %+v, %d", lead, second)
	}
	// Tie on count: higher version wins the lead slot (deterministic).
	lead, _ = topTwo(map[uint64]int{1: 2, 9: 2})
	if lead.v != 9 {
		t.Errorf("tie lead = %+v", lead)
	}
}
