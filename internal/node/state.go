package node

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

// Persistent node state: a restarting peer must come back with its path,
// reference tables, buddies and index intact — otherwise every restart is
// a permanent departure and the community pays the repair cost. The format
// is a single gob blob with a version tag; it reuses the wire package's
// gob-friendly representations.

// stateVersion tags the on-disk format.
const stateVersion = 1

// diskState is the serialized form.
type diskState struct {
	Version int
	Addr    addr.Addr
	Path    bitpath.Path
	Refs    []wire.RefSet
	Buddies wire.RefSet
	Index   []store.Entry
	Hosted  []store.Entry
}

// SaveState writes the node's full durable state to w.
func (n *Node) SaveState(w io.Writer) error {
	s := n.self.Snapshot()
	ds := diskState{
		Version: stateVersion,
		Addr:    s.Addr,
		Path:    s.Path,
		Refs:    make([]wire.RefSet, len(s.Refs)),
		Buddies: wire.FromSet(s.Buddies),
		Index:   n.Store().Entries(),
		Hosted:  n.Store().Hosted(),
	}
	for i, r := range s.Refs {
		ds.Refs[i] = wire.FromSet(r)
	}
	if err := gob.NewEncoder(w).Encode(&ds); err != nil {
		return fmt.Errorf("node: save state: %w", err)
	}
	return nil
}

// LoadState restores the node's durable state from r. The stored address
// must match the node's (state files are per-identity).
func (n *Node) LoadState(r io.Reader) error {
	var ds diskState
	if err := gob.NewDecoder(r).Decode(&ds); err != nil {
		return fmt.Errorf("node: load state: %w", err)
	}
	if ds.Version != stateVersion {
		return fmt.Errorf("node: load state: unsupported version %d", ds.Version)
	}
	if ds.Addr != n.Addr() {
		return fmt.Errorf("node: load state: file belongs to %v, this node is %v", ds.Addr, n.Addr())
	}
	snap := n.self.Snapshot()
	snap.Path = ds.Path
	snap.Refs = make([]addr.Set, len(ds.Refs))
	for i, r := range ds.Refs {
		snap.Refs[i] = r.ToSet()
	}
	snap.Buddies = ds.Buddies.ToSet()
	snap.Online = true
	if err := n.self.Restore(snap); err != nil {
		return fmt.Errorf("node: load state: %w", err)
	}
	n.Store().Clear()
	for _, e := range ds.Index {
		n.Store().Apply(e)
	}
	for _, e := range ds.Hosted {
		n.Store().Host(e)
	}
	return nil
}

// SaveStateFile writes the state atomically: to a temp file in the same
// directory, then rename.
func (n *Node) SaveStateFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("node: save state: %w", err)
	}
	if err := n.SaveState(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("node: save state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("node: save state: %w", err)
	}
	return nil
}

// LoadStateFile restores state from path; a missing file is not an error
// (fresh node), reported by the boolean.
func (n *Node) LoadStateFile(path string) (loaded bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("node: load state: %w", err)
	}
	defer f.Close()
	if err := n.LoadState(f); err != nil {
		return false, err
	}
	return true, nil
}
