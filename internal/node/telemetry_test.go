package node

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// statValue finds a series in a stats response; -1 if absent.
func statValue(resp *wire.StatsResp, name string) int64 {
	for _, s := range resp.Stats {
		if s.Name == name {
			return s.Value
		}
	}
	return -1
}

func TestStatsRPC(t *testing.T) {
	c := NewCluster(4, smallCfg(), 7)
	tel := telemetry.New(0)
	c.Nodes[0].SetTelemetry(tel)

	// Without telemetry the RPC still answers, with the schema and no data.
	resp, err := c.Transport.Call(1, &wire.Message{Kind: wire.KindStats, From: addr.Nil})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatsResp == nil || resp.StatsResp.Schema != telemetry.SchemaVersion {
		t.Fatalf("bare node stats = %+v", resp.StatsResp)
	}
	if len(resp.StatsResp.Stats) != 0 {
		t.Errorf("bare node returned %d series", len(resp.StatsResp.Stats))
	}

	// Drive some traffic through node 0, then scrape it over the wire.
	rng := rand.New(rand.NewSource(1))
	buildCluster(t, c, 1.5, 4000, rng)
	c.Nodes[0].Query(bitpath.MustParse("101"))

	resp, err = c.Transport.Call(0, &wire.Message{Kind: wire.KindStats, From: addr.Nil})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.StatsResp
	if st == nil || st.Schema != telemetry.SchemaVersion {
		t.Fatalf("stats = %+v", st)
	}
	if v := statValue(st, "pgrid_rpc_served_total"); v < 1 {
		t.Errorf("pgrid_rpc_served_total = %d", v)
	}
	if v := statValue(st, "pgrid_query_total"); v != 1 {
		t.Errorf("pgrid_query_total = %d, want 1", v)
	}
	if v := statValue(st, "pgrid_query_hops_count"); v != 1 {
		t.Errorf("pgrid_query_hops_count = %d, want 1", v)
	}
}

func TestExchangeCasesCountedOverTransport(t *testing.T) {
	c := NewCluster(2, smallCfg(), 1)
	tel := telemetry.New(1)
	c.Nodes[1].SetTelemetry(tel) // node 1 is the responder
	sink := &telemetry.MemorySink{}
	tel.SetSink(sink)

	if err := c.Nodes[0].Exchange(1); err != nil {
		t.Fatal(err)
	}
	st := &wire.StatsResp{}
	for _, s := range tel.Registry().Snapshot() {
		st.Stats = append(st.Stats, wire.Stat{Name: s.Name, Value: s.Value})
	}
	if v := statValue(st, "pgrid_exchange_total"); v != 1 {
		t.Errorf("pgrid_exchange_total = %d, want 1", v)
	}
	if v := statValue(st, `pgrid_exchange_case_total{case="1"}`); v != 1 {
		t.Errorf("case-1 counter = %d, want 1", v)
	}
	events := sink.Events()
	if len(events) != 1 || events[0].Kind != telemetry.KindExchange {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Attrs["case"] != "1" {
		t.Errorf("event case = %v", events[0].Attrs["case"])
	}
}

func TestInstrumentedTransport(t *testing.T) {
	c := NewCluster(2, smallCfg(), 5)
	tel := telemetry.New(0)
	tr := InstrumentTransport(c.Transport, tel)

	if _, err := tr.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	c.Nodes[1].SetOnline(false)
	if _, err := tr.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err == nil {
		t.Fatal("call to offline node succeeded")
	}
	snap := tel.Registry().Snapshot()
	st := &wire.StatsResp{}
	for _, s := range snap {
		st.Stats = append(st.Stats, wire.Stat{Name: s.Name, Value: s.Value})
	}
	if v := statValue(st, "pgrid_rpc_client_total"); v != 2 {
		t.Errorf("pgrid_rpc_client_total = %d, want 2", v)
	}
	if v := statValue(st, "pgrid_rpc_client_errors_total"); v != 1 {
		t.Errorf("pgrid_rpc_client_errors_total = %d, want 1", v)
	}
	if v := statValue(st, `pgrid_rpc_client_kind_total{kind="info"}`); v != 2 {
		t.Errorf("per-kind client counter = %d, want 2", v)
	}
	if v := statValue(st, "pgrid_rpc_latency_ns_count"); v != 2 {
		t.Errorf("latency observations = %d, want 2", v)
	}

	// Nil telemetry must unwrap to the inner transport, not allocate.
	if got := InstrumentTransport(c.Transport, nil); got != Transport(c.Transport) {
		t.Error("InstrumentTransport(nil) did not return the inner transport")
	}
}

func TestFlakyTransportDropCounter(t *testing.T) {
	c := NewCluster(2, smallCfg(), 9)
	tel := telemetry.New(0)
	fl := NewFlakyTransport(c.Transport, 0.5, 42)
	fl.SetTelemetry(tel)

	for i := 0; i < 100; i++ {
		fl.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
	}
	dropped, total := fl.Stats()
	if total != 100 || dropped == 0 {
		t.Fatalf("dropped/total = %d/%d", dropped, total)
	}
	snap := tel.Registry().Snapshot()
	st := &wire.StatsResp{}
	for _, s := range snap {
		st.Stats = append(st.Stats, wire.Stat{Name: s.Name, Value: s.Value})
	}
	if v := statValue(st, "pgrid_rpc_dropped_total"); v != dropped {
		t.Errorf("pgrid_rpc_dropped_total = %d, want %d", v, dropped)
	}
	if v := statValue(st, `pgrid_rpc_dropped_kind_total{kind="info"}`); v != dropped {
		t.Errorf("per-kind dropped counter = %d, want %d", v, dropped)
	}
}

func TestQueryBacktracksOverTransport(t *testing.T) {
	c := NewCluster(16, smallCfg(), 11)
	rng := rand.New(rand.NewSource(2))
	buildCluster(t, c, 2.5, 20000, rng)

	tel := telemetry.New(0)
	c.Nodes[0].SetTelemetry(tel)
	// Knock out most of the community so searches are forced to backtrack.
	for _, n := range c.Nodes[1:] {
		if rng.Float64() < 0.6 {
			n.SetOnline(false)
		}
	}
	backtracks := 0
	for i := 0; i < 50; i++ {
		res := c.Nodes[0].Query(bitpath.Random(rng, 4))
		backtracks += res.Backtracks
	}
	snap := tel.Registry().Snapshot()
	st := &wire.StatsResp{}
	for _, s := range snap {
		st.Stats = append(st.Stats, wire.Stat{Name: s.Name, Value: s.Value})
	}
	if v := statValue(st, "pgrid_query_total"); v != 50 {
		t.Errorf("pgrid_query_total = %d, want 50", v)
	}
	if v := statValue(st, "pgrid_query_backtracks_total"); v != int64(backtracks) {
		t.Errorf("pgrid_query_backtracks_total = %d, want %d", v, backtracks)
	}
}
