package node

import (
	"fmt"
	"sort"

	"pgrid/internal/addr"
	"pgrid/internal/health"
	"pgrid/internal/resilience"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// handleMetrics answers KindMetrics with the node's full metrics snapshot:
// every counter and gauge plus every quantile histogram in sparse mergeable
// form. With telemetry disabled the response still carries the schema
// version and empty tables, so collectors can distinguish "no telemetry"
// from "no answer".
func (n *Node) handleMetrics() *wire.MetricsResp {
	return &wire.MetricsResp{Snap: n.tel.MetricsSnapshot()}
}

// FetchMetrics fetches a peer's full metrics snapshot. Pre-metrics peers
// answer with KindError, surfaced here as an error by the transport layer;
// a reachable peer that answers the wrong kind is ErrMalformed.
func (c *Client) FetchMetrics(a addr.Addr) (telemetry.MetricsSnapshot, error) {
	resp, err := c.tr.Call(a, &wire.Message{Kind: wire.KindMetrics, From: addr.Nil})
	if err != nil {
		return telemetry.MetricsSnapshot{}, err
	}
	if resp.MetricsResp == nil {
		c.tel.MalformedResponse("metrics")
		return telemetry.MetricsSnapshot{}, fmt.Errorf("%w: node %v answered metrics request with kind %v", ErrMalformed, a, resp.Kind)
	}
	return resp.MetricsResp.Snap, nil
}

// collectPeer fetches one peer's routing state, metrics snapshot, and
// health digest — as a single batched frame when the peer serves batches,
// the sequential triple otherwise. Returns nil info when the peer is
// unreachable. haveSnap=false means the peer predates the metrics frame
// (it still contributes to the census, just not to the merged histograms);
// haveDigest=false means the caller synthesizes the structural fallback.
// messages counts logical requests (the batch bills three), matching the
// crawl's accounting.
func (c *Client) collectPeer(a addr.Addr, messages *int) (info *wire.InfoResp, snap telemetry.MetricsSnapshot, haveSnap bool, d health.Digest, haveDigest bool) {
	batch := []wire.Message{
		{Kind: wire.KindInfo, From: addr.Nil},
		{Kind: wire.KindMetrics, From: addr.Nil},
		{Kind: wire.KindHealth, From: addr.Nil, Health: &wire.HealthReq{WantLiveness: true}},
	}
	resps, err := callBatch(c.tr, a, addr.Nil, batch)
	if err == nil {
		*messages += len(batch)
		if resps[0].InfoResp == nil {
			c.tel.MalformedResponse("info")
			return nil, telemetry.MetricsSnapshot{}, false, health.Digest{}, false
		}
		info = resps[0].InfoResp
		if resps[1].MetricsResp != nil {
			snap, haveSnap = resps[1].MetricsResp.Snap, true
		}
		if resps[2].HealthResp != nil {
			d, haveDigest = resps[2].HealthResp.Digest, true
		}
		return info, snap, haveSnap, d, haveDigest
	}
	if Classify(err) == resilience.Transient {
		// Unreachable: bill the one contact attempt, like a failed
		// sequential info fetch.
		*messages++
		return nil, telemetry.MetricsSnapshot{}, false, health.Digest{}, false
	}
	// The peer answered but refused the batch envelope (pre-batch peer):
	// fall back to the sequential calls it does understand.
	i, err := c.nodeInfo(a)
	*messages++
	if err != nil {
		return nil, telemetry.MetricsSnapshot{}, false, health.Digest{}, false
	}
	snap, err = c.FetchMetrics(a)
	*messages++
	haveSnap = err == nil
	d, _, err = c.FetchHealth(a, true)
	*messages++
	haveDigest = err == nil
	if !haveDigest {
		d = health.Digest{}
	}
	return i, snap, haveSnap, d, haveDigest
}

// ClusterResult is one cluster-wide metrics collection: per-peer
// snapshots keyed by address, the health digests gathered along the way
// (feeding availability objectives), the peers that were referenced but
// never answered, and the message cost.
type ClusterResult struct {
	// Snapshots holds one metrics snapshot per reachable peer that speaks
	// the metrics frame. Peers too old for KindMetrics appear in Digests
	// (or Unreachable) but not here.
	Snapshots map[addr.Addr]telemetry.MetricsSnapshot
	Digests   []health.Digest
	// Unreachable lists peers some reachable peer referenced that did not
	// answer the collection (offline, crashed, or unknown to the
	// transport). Their absence is reported, never fatal.
	Unreachable []addr.Addr
	Messages    int
}

// CollectCluster walks the whole community from one entry peer — the same
// breadth-first crawl as Crawl, following every reference and buddy link —
// and gathers a full metrics snapshot plus health digest per reachable
// peer. This is the federation half of the cluster observability plane:
// the merge half lives in analysis.AnalyzeCluster, which folds the
// returned snapshots into cluster-wide quantiles. Per-peer failures are
// recorded in Unreachable, not returned as errors, so one dead peer never
// hides the rest of the cluster. Digests and Unreachable come back sorted
// by address.
func (c *Client) CollectCluster(start addr.Addr) ClusterResult {
	res := ClusterResult{Snapshots: make(map[addr.Addr]telemetry.MetricsSnapshot)}
	visited := map[addr.Addr]bool{start: true}
	queue := []addr.Addr{start}

	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		info, snap, haveSnap, d, haveDigest := c.collectPeer(a, &res.Messages)
		if info == nil {
			res.Unreachable = append(res.Unreachable, a)
			continue
		}
		enqueue := func(r addr.Addr) {
			if !visited[r] {
				visited[r] = true
				queue = append(queue, r)
			}
		}
		for _, rs := range info.Refs {
			for _, r := range rs.Addrs {
				enqueue(r)
			}
		}
		for _, b := range info.Buddies.Addrs {
			enqueue(b)
		}

		if haveSnap {
			res.Snapshots[info.Addr] = snap
		}
		if !haveDigest {
			// Pre-health peer: fall back to what Info already told us.
			d = health.Digest{Addr: info.Addr, Path: info.Path, Entries: info.Entries,
				Buddies: info.Buddies.ToSet().Len()}
			for _, rs := range info.Refs {
				d.RefCounts = append(d.RefCounts, rs.ToSet().Len())
			}
		}
		res.Digests = append(res.Digests, d)
	}
	sort.Slice(res.Digests, func(i, j int) bool { return res.Digests[i].Addr < res.Digests[j].Addr })
	sort.Slice(res.Unreachable, func(i, j int) bool { return res.Unreachable[i] < res.Unreachable[j] })
	return res
}
