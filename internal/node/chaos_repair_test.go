package node

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/repair"
	"pgrid/internal/resilience"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
)

// TestChaosRepairSoak is the self-healing soak: a seeded 64-peer community
// is driven into an arbitrary corrupted state — bit-flipped paths, stale
// invariant-violating references, cross-partition buddy links, wiped
// stores, dropped entries — on top of 20% message drop, a fifth of the
// peers offline, and a partitioned clique that only heals mid-run. The
// repair protocol must then, within a bounded number of rounds:
//
//  1. Converge: every online peer back to a legal state — references
//     satisfying the Section 2 invariant, no cross-partition replica
//     links, no entries outside the owner's path, replica groups agreeing
//     on their index fingerprints.
//  2. Recover availability: fresh probe data after convergence agrees
//     with the Eq. 3 prediction within 10 percentage points, as in the
//     uncorrupted chaos soak.
//  3. Be observable end-to-end: the same repair run is visible in the
//     pgrid_repair_* telemetry, in per-node Status, in the aggregated
//     grid report (AttachRepair → "healthy"), and over the wire via
//     FetchRepair.
//
// Run under -race; the goroutine check at the end asserts nothing leaks.
func TestChaosRepairSoak(t *testing.T) {
	before := runtime.NumGoroutine()

	const (
		peers     = 64
		offlineN  = 12
		seed      = 77
		maxRounds = 8
		healRound = 3
	)
	c := NewCluster(peers, smallCfg(), seed)
	rng := rand.New(rand.NewSource(seed))
	buildCluster(t, c, 0.99*4, 80000, rng)

	// Seed the data layer: every entry is replicated to each peer
	// responsible for its key, with one fixed holder so replicas of a
	// path carry identical fingerprints.
	for i := 0; i < 48; i++ {
		key := bitpath.Random(rng, 4)
		e := store.Entry{Key: key, Name: fmt.Sprintf("k%d", i), Holder: addr.Nil, Version: 1}
		for _, n := range c.Nodes {
			if key.HasPrefix(n.Path()) {
				if e.Holder == addr.Nil {
					e.Holder = n.Addr()
				}
				n.Store().Apply(e)
			}
		}
	}

	// The production stack from the chaos soak: 20% drop under a
	// resilient transport. Breaker thresholds are loose and the cooldown
	// tiny because repair rounds run back-to-back here, not on wall-clock
	// intervals — a breaker that stays open across rounds would just
	// serialize the partition heal into the timeout.
	tel := telemetry.New(0)
	chaos := NewChaosTransport(c.Transport, ChaosConfig{Drop: 0.20, Seed: seed})
	rt := resilience.Wrap(chaos, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
		Budget:   resilience.NewBudget(0.5, 500),
		Breaker:  resilience.BreakerConfig{Threshold: 64, Cooldown: 5 * time.Millisecond},
		Classify: Classify,
		Seed:     seed,
		Tel:      tel,
	})
	repairers := make(map[addr.Addr]*Repairer, peers)
	for i, n := range c.Nodes {
		n.tr = rt
		n.SetTelemetry(tel)
		repairers[n.Addr()] = NewRepairer(n, time.Second, RepairConfig{Budget: 128}, int64(2000+i))
	}

	// Churn a fifth of the community away, but keep at least one live
	// replica per partition — the paper's availability model assumes
	// independent churn, and a partition with zero live replicas is data
	// loss no repair protocol can heal (its levels would stay starved
	// forever, honestly reported as unhealed).
	groupOnline := map[bitpath.Path]int{}
	for _, n := range c.Nodes {
		groupOnline[n.Path()]++
	}
	offline := map[addr.Addr]bool{}
	for len(offline) < offlineN {
		a := addr.Addr(rng.Intn(peers))
		if offline[a] || groupOnline[c.Nodes[a].Path()] <= 1 {
			continue
		}
		offline[a] = true
		groupOnline[c.Nodes[a].Path()]--
		c.Nodes[a].SetOnline(false)
	}

	// Corrupt, then partition a six-peer clique away from the rest.
	crpt := ChaosCorrupt(c, CorruptConfig{
		FlipPaths: 5, StaleRefs: 30, OrphanBuddies: 10,
		WipeStores: 4, DropEntries: 10, Seed: seed + 1,
	})
	if crpt.FlippedPaths == 0 || crpt.StaledRefs == 0 || crpt.WipedStores == 0 || crpt.DroppedEntries == 0 {
		t.Fatalf("corruption injector found no victims: %+v", crpt)
	}
	var clique, rest []addr.Addr
	for _, n := range c.Nodes {
		if !offline[n.Addr()] && len(clique) < 6 {
			clique = append(clique, n.Addr())
		} else {
			rest = append(rest, n.Addr())
		}
	}
	chaos.Partition(clique, rest)

	byAddr := make(map[addr.Addr]*Node, peers)
	for _, n := range c.Nodes {
		byAddr[n.Addr()] = n
	}
	// illegal reports the first legal-state violation over online peers
	// only ("" when the community is converged): offline peers are frozen,
	// and their stale view is the churn case the base protocol already
	// covers.
	illegal := func() string {
		hashes := map[bitpath.Path]map[uint64]bool{}
		for _, n := range c.Nodes {
			if offline[n.Addr()] {
				continue
			}
			s := n.Peer().Snapshot()
			for i := 1; i <= s.Path.Len(); i++ {
				for _, ref := range s.Refs[i-1].Slice() {
					q := byAddr[ref]
					if q == nil {
						return fmt.Sprintf("peer %d level %d: unknown ref %d", s.Addr, i, ref)
					}
					qp := q.Path()
					if qp.Len() < i || qp.Prefix(i-1) != s.Path.Prefix(i-1) || qp.Bit(i) == s.Path.Bit(i) {
						return fmt.Sprintf("peer %d (%s) level %d: invariant-violating ref %d (%s)", s.Addr, s.Path, i, ref, qp)
					}
				}
			}
			if k := n.Store().CountOutside(s.Path); k != 0 {
				return fmt.Sprintf("peer %d (%s): %d entries outside path", s.Addr, s.Path, k)
			}
			for _, b := range s.Buddies.Slice() {
				if q := byAddr[b]; q != nil && q.Online() && q.Path() != s.Path {
					return fmt.Sprintf("peer %d (%s): orphan buddy %d (%s)", s.Addr, s.Path, b, q.Path())
				}
			}
			if hashes[s.Path] == nil {
				hashes[s.Path] = map[uint64]bool{}
			}
			hashes[s.Path][n.Store().Summary().Hash] = true
		}
		for p, hs := range hashes {
			if len(hs) > 1 {
				return fmt.Sprintf("path %s: %d distinct replica fingerprints", p, len(hs))
			}
		}
		return ""
	}
	converged := func() bool { return illegal() == "" }
	if converged() {
		t.Fatal("corruption left the community in a legal state — nothing to heal")
	}

	// Repair rounds, one goroutine per online node, until the community is
	// back in a legal state. The partition heals at healRound; convergence
	// before that is impossible for the clique, so rounds are bounded but
	// the bound includes the outage.
	tick := func() {
		var wg sync.WaitGroup
		for _, n := range c.Nodes {
			if offline[n.Addr()] {
				continue
			}
			r := repairers[n.Addr()]
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.Tick()
			}()
		}
		wg.Wait()
	}
	rounds := 0
	for round := 1; round <= maxRounds; round++ {
		if round == healRound {
			chaos.Heal()
		}
		tick()
		rounds = round
		if round >= healRound && converged() {
			break
		}
	}
	if why := illegal(); why != "" {
		t.Fatalf("community not converged after %d repair rounds: %s (corruption %+v)", maxRounds, why, crpt)
	}
	t.Logf("chaos repair: converged in %d rounds (max %d) from %+v", rounds, maxRounds, crpt)

	// Availability after healing: reset the liveness trackers (their data
	// describes the corrupted era), probe fresh through the same chaotic
	// stack, and hold the healed community to the uncorrupted soak's bar.
	for _, n := range c.Nodes {
		n.htr = health.NewTracker()
	}
	var wg sync.WaitGroup
	for i, n := range c.Nodes {
		if offline[n.Addr()] {
			continue
		}
		p := NewProber(n, time.Second, 8, int64(5000+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				p.Tick()
			}
		}()
	}
	wg.Wait()
	var digests []health.Digest
	for _, n := range c.Nodes {
		if !offline[n.Addr()] {
			digests = append(digests, n.Digest())
		}
	}
	rep := analysis.AnalyzeGrid(digests)
	t.Logf("chaos repair: availability measured=%.3f predicted=%.3f Eq3(p=%.2f,refmax=%d,k=%d)=%.3f",
		rep.MeasuredAvailability, rep.PredictedAvailability,
		rep.ProbeLiveness, rep.Eq3RefMax, rep.Eq3Depth, rep.Eq3Availability)
	if !rep.AvailabilityAgrees(0.10) {
		t.Errorf("healed community diverges from Eq.3: measured %.3f vs predicted %.3f",
			rep.MeasuredAvailability, rep.PredictedAvailability)
	}

	// One quiescent round on the clean transport: a converged community
	// must report nothing unhealed, flipping every status to "healthy".
	for _, n := range c.Nodes {
		n.tr = c.Transport
	}
	tick()
	var statuses []repair.Status
	faultsBy := map[string]int64{}
	healsBy := map[string]int64{}
	for a, r := range repairers {
		if offline[a] {
			continue
		}
		st := r.Status()
		statuses = append(statuses, st)
		for _, tl := range st.Faults {
			faultsBy[tl.Name] += tl.N
		}
		for _, tl := range st.Heals {
			healsBy[tl.Name] += tl.N
		}
	}
	rep.AttachRepair(statuses)
	if rep.Repair.Reporting != peers-offlineN {
		t.Errorf("repair reporting = %d, want %d", rep.Repair.Reporting, peers-offlineN)
	}
	if rep.Repair.State != "healthy" {
		t.Errorf("healed community state = %q, want healthy (unhealed %d)", rep.Repair.State, rep.Repair.Unhealed)
	}
	for _, tl := range repair.Tallies(faultsBy) {
		t.Logf("chaos repair: fault %-18s %4d", tl.Name, tl.N)
	}
	for _, tl := range repair.Tallies(healsBy) {
		t.Logf("chaos repair: heal  %-18s %4d", tl.Name, tl.N)
	}
	for _, class := range []string{repair.FaultWrongSide, repair.FaultPathDrift, repair.FaultOrphanReplica, repair.FaultDivergedReplica} {
		if faultsBy[class] == 0 {
			t.Errorf("injected fault class %q never detected", class)
		}
	}
	for _, action := range []string{repair.ActionEvictRef, repair.ActionAdoptPath, repair.ActionDropBuddy, repair.ActionSyncPull} {
		if healsBy[action] == 0 {
			t.Errorf("heal action %q never applied", action)
		}
	}

	// The same run must be visible on every surface: counters, and the
	// wire status a client fetches.
	if got := counterVal(t, tel, "pgrid_repair_rounds_total"); got < int64(rounds)*(peers-offlineN) {
		t.Errorf("pgrid_repair_rounds_total = %d, want ≥ %d", got, int64(rounds)*(peers-offlineN))
	}
	if counterVal(t, tel, `pgrid_repair_fault_total{class="wrong-side-ref"}`) == 0 {
		t.Error("wrong-side faults missing from telemetry")
	}
	if counterVal(t, tel, "pgrid_repair_messages_total") == 0 {
		t.Error("repair messages missing from telemetry")
	}
	client := NewClient(c.Transport, seed)
	var probe addr.Addr = -1
	for _, n := range c.Nodes {
		if !offline[n.Addr()] {
			probe = n.Addr()
			break
		}
	}
	st, err := client.FetchRepair(probe, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := repairers[probe].Status(); !st.Enabled || st.Rounds != want.Rounds || st.TotalHeals() != want.TotalHeals() {
		t.Errorf("wire status %+v disagrees with local status %+v", st, want)
	}

	// Cleanliness: everything spawned above must drain.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutine leak: %d before soak, %d after settling", before, after)
	}
}
