package node

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/wire"
)

// TCPTransport resolves logical peer addresses to TCP endpoints and speaks
// the wire protocol, one request/response per connection. Connections are
// short-lived by design: P-Grid interactions are single round trips between
// mostly-transient peers, so pooling buys little and complicates failure
// handling.
type TCPTransport struct {
	mu        sync.RWMutex
	endpoints map[addr.Addr]string
	dial      time.Duration
	io        time.Duration
}

// NewTCPTransport returns a transport with the given timeout applied to
// the dial and, separately, to the request/response IO (0 means 5s each).
// Use NewTCPTransportTimeouts to bound the two independently.
func NewTCPTransport(timeout time.Duration) *TCPTransport {
	return NewTCPTransportTimeouts(timeout, timeout)
}

// NewTCPTransportTimeouts returns a transport with separate dial and IO
// timeouts (0 means 5s each). A shared deadline would let a slow dial
// steal the IO budget — the connection would be established with almost
// no time left to exchange the frames — so the IO deadline starts only
// once the dial has succeeded.
func NewTCPTransportTimeouts(dial, io time.Duration) *TCPTransport {
	if dial == 0 {
		dial = 5 * time.Second
	}
	if io == 0 {
		io = 5 * time.Second
	}
	return &TCPTransport{endpoints: make(map[addr.Addr]string), dial: dial, io: io}
}

// SetEndpoint maps a logical peer address to host:port.
func (t *TCPTransport) SetEndpoint(a addr.Addr, hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.endpoints[a] = hostport
}

// Endpoint returns the mapping for a, if known.
func (t *TCPTransport) Endpoint(a addr.Addr) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ep, ok := t.endpoints[a]
	return ep, ok
}

// Call implements Transport.
func (t *TCPTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	ep, ok := t.Endpoint(to)
	if !ok {
		return nil, fmt.Errorf("%w: no endpoint for %v", ErrOffline, to)
	}
	conn, err := net.DialTimeout("tcp", ep, t.dial)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %v (%s): %v", ErrOffline, to, ep, err)
	}
	defer conn.Close()
	// The IO deadline starts now, after the dial: a slow dial must not
	// eat the budget for the round trip itself.
	if err := conn.SetDeadline(time.Now().Add(t.io)); err != nil {
		return nil, fmt.Errorf("node: set deadline: %w", err)
	}
	if err := wire.WriteMessage(conn, msg); err != nil {
		return nil, fmt.Errorf("%w: send to %v: %v", ErrOffline, to, err)
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		if errors.Is(err, wire.ErrCorrupt) {
			// The peer answered garbage: corrupt, not offline — callers
			// (resilience layer) must not burn retries on it.
			return nil, fmt.Errorf("receive from %v: %w", to, err)
		}
		return nil, fmt.Errorf("%w: receive from %v: %v", ErrOffline, to, err)
	}
	if resp.Kind == wire.KindError {
		return nil, fmt.Errorf("node %v: %s", to, resp.Error)
	}
	return resp, nil
}

// Server serves a node's handler over a TCP listener.
type Server struct {
	node *Node
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a node and a listener. Call Serve to start accepting.
func NewServer(n *Node, ln net.Listener) *Server {
	return &Server{node: n, ln: ln, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener is closed or ctx is done.
// Each connection may carry a sequence of request frames; the server
// answers in order and closes when the client does. An offline node
// answers nothing (connections are dropped), mirroring an unreachable
// peer.
func (s *Server) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("node: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveBinaryConcurrency bounds the request goroutines one multiplexed
// connection may have in flight at once; further frames queue in the read
// loop, applying backpressure through TCP itself.
const serveBinaryConcurrency = 64

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()
	// Sniff the codec from the first byte: binary frames open with the
	// magic, gob frames with a length prefix whose high byte is ≤ 0x01.
	// The choice is per connection — a gob-only dialer keeps the legacy
	// sequential protocol, a binary dialer gets the multiplexed one.
	br := bufio.NewReader(conn)
	isBin, err := wire.IsBinaryFrame(br)
	if err != nil {
		return
	}
	if isBin {
		s.serveBinary(conn, br)
		return
	}
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			return // client closed or sent garbage; drop the connection
		}
		if !s.node.Online() {
			return // simulate an unreachable peer: no answer
		}
		resp := s.node.Handle(msg)
		if err := wire.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// serveBinary runs the multiplexed binary protocol: requests are decoded
// in arrival order but handled concurrently, and each response frame
// echoes its request's sequence id so the dialer's demux can route it.
// Responses may therefore interleave out of order — that is the point.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader) {
	var (
		wmu sync.Mutex
		wg  sync.WaitGroup
	)
	defer wg.Wait()
	sem := make(chan struct{}, serveBinaryConcurrency)
	for {
		seq, flags, msg, err := wire.ReadFrame(br)
		if err != nil {
			// Corrupt frames poison the stream framing itself — there is
			// no way to resynchronize on a byte stream — so any read
			// error drops the connection.
			return
		}
		if !s.node.Online() {
			return // simulate an unreachable peer: no answer
		}
		if flags&wire.FlagResponse != 0 {
			continue // a confused client; requests only on this side
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq uint32, msg *wire.Message) {
			defer func() { <-sem; wg.Done() }()
			resp := s.node.Handle(msg)
			wmu.Lock()
			err := wire.WriteFrame(conn, seq, wire.FlagResponse, resp)
			wmu.Unlock()
			if err != nil {
				conn.Close() // the read loop will see the close and exit
			}
		}(seq, msg)
	}
}

// Close stops accepting and closes active connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
