package node

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"pgrid/internal/addr"
)

// Gossiper drives a node's participation in the community: it periodically
// initiates an exchange with a random known peer — the "peers meet
// randomly" process of Section 3 that self-organizes the access structure.
// cmd/pgridnode runs one per process; tests run many in-process.
type Gossiper struct {
	node   *Node
	others []addr.Addr
	every  time.Duration

	mu        sync.Mutex
	rng       *rand.Rand
	attempts  int64
	successes int64
}

// NewGossiper returns a gossiper for n meeting the given peers every
// interval. It panics if others is empty or the interval non-positive.
func NewGossiper(n *Node, others []addr.Addr, every time.Duration, seed int64) *Gossiper {
	if len(others) == 0 {
		panic("node: NewGossiper with no peers to meet")
	}
	if every <= 0 {
		panic("node: NewGossiper with non-positive interval")
	}
	return &Gossiper{
		node:   n,
		others: append([]addr.Addr(nil), others...),
		every:  every,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Run gossips until ctx is done. An offline node skips its turns (it
// neither initiates nor, via the transports, answers).
func (g *Gossiper) Run(ctx context.Context) {
	t := time.NewTicker(g.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.Tick()
		}
	}
}

// Tick performs one meeting attempt immediately; exported so tests and
// simulations can drive gossip without wall-clock timers.
func (g *Gossiper) Tick() {
	if !g.node.Online() {
		return
	}
	g.mu.Lock()
	to := g.others[g.rng.Intn(len(g.others))]
	g.mu.Unlock()
	if to == g.node.Addr() {
		return
	}
	err := g.node.Exchange(to)
	g.mu.Lock()
	g.attempts++
	if err == nil {
		g.successes++
	}
	g.mu.Unlock()
}

// Stats returns meeting attempts and successful exchanges so far.
func (g *Gossiper) Stats() (attempts, successes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.attempts, g.successes
}
