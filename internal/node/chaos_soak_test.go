package node

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/health"
	"pgrid/internal/resilience"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// TestChaosSoakAvailability is the end-to-end resilience soak: a seeded
// 64-peer community routed through the full production stack — chaos
// injection (20% drop, latency with a tail) under a ResilientTransport
// (retries, budget, per-peer breakers) — with a fifth of the peers taken
// offline. It then checks the three promises this PR makes:
//
//  1. Fidelity: the availability the probers measure through the chaotic
//     stack stays within 10 percentage points of the per-structure Eq. 3
//     prediction from internal/analysis — fault injection plus recovery
//     must not bend the community away from the Section 4 model.
//  2. Boundedness: retries never exceed what the token budget allows
//     (ratio·calls + burst), asserted from the exported telemetry.
//  3. Cleanliness: every goroutine the soak spawns drains; nothing leaks.
func TestChaosSoakAvailability(t *testing.T) {
	before := runtime.NumGoroutine()

	const (
		peers       = 64
		offlineN    = 12
		seed        = 42
		budgetRatio = 0.5
		budgetBurst = 50
	)
	c := NewCluster(peers, smallCfg(), seed)
	rng := rand.New(rand.NewSource(seed))
	buildCluster(t, c, 0.99*4, 50000, rng)

	tel := telemetry.New(0)
	chaos := NewChaosTransport(c.Transport, ChaosConfig{
		Drop:          0.20,
		LatencyBase:   50 * time.Microsecond,
		LatencyJitter: 150 * time.Microsecond,
		TailProb:      0.02,
		TailLatency:   time.Millisecond,
		Seed:          seed,
	})
	budget := resilience.NewBudget(budgetRatio, budgetBurst)
	rt := resilience.Wrap(chaos, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
		Budget:   budget,
		Breaker:  resilience.BreakerConfig{Threshold: 8, Cooldown: 250 * time.Millisecond},
		Classify: Classify,
		Seed:     seed,
		Tel:      tel,
	})

	// Route every node's own traffic — probes included — through the
	// resilient chaos stack, then churn a fifth of the community away.
	for _, n := range c.Nodes {
		n.tr = rt
	}
	offline := map[addr.Addr]bool{}
	for len(offline) < offlineN {
		a := addr.Addr(rng.Intn(peers))
		if !offline[a] {
			offline[a] = true
			c.Nodes[a].SetOnline(false)
		}
	}

	// Probe rounds, one goroutine per online node — the liveness data the
	// availability comparison is built from.
	var wg sync.WaitGroup
	for i, n := range c.Nodes {
		if offline[n.Addr()] {
			continue
		}
		p := NewProber(n, time.Second, 8, int64(1000+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				p.Tick()
			}
		}()
	}
	wg.Wait()

	var digests []health.Digest
	for _, n := range c.Nodes {
		if !offline[n.Addr()] {
			digests = append(digests, n.Digest())
		}
	}
	rep := analysis.AnalyzeGrid(digests)

	// Queries through the same stack, started from random online peers —
	// the user-visible availability under chaos.
	online := make([]addr.Addr, 0, peers-offlineN)
	for _, n := range c.Nodes {
		if !offline[n.Addr()] {
			online = append(online, n.Addr())
		}
	}
	const queries = 300
	found := 0
	for i := 0; i < queries; i++ {
		start := online[rng.Intn(len(online))]
		key := bitpath.Random(rng, 4)
		resp, err := rt.Call(start, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
			Query: &wire.QueryReq{Key: key}})
		if err == nil && resp.QueryResp != nil && resp.QueryResp.Found {
			found++
		}
	}
	querySuccess := float64(found) / queries

	calls := counterVal(t, tel, "pgrid_resilience_calls_total")
	retries := counterVal(t, tel, "pgrid_resilience_retries_total")
	opens := counterVal(t, tel, "pgrid_resilience_breaker_opens_total")
	st := chaos.Stats()
	t.Logf("chaos soak: %d peers (%d offline), %d calls (%d dropped, %d delayed), %d retries, %d breaker opens",
		peers, offlineN, st.Total, st.Dropped, st.Delayed, retries, opens)
	t.Logf("availability: p̂=%.3f measured=%.3f predicted=%.3f Eq3(p=%.2f,refmax=%d,k=%d)=%.3f querySuccess=%.3f",
		rep.ProbeLiveness, rep.MeasuredAvailability, rep.PredictedAvailability,
		rep.ProbeLiveness, rep.Eq3RefMax, rep.Eq3Depth, rep.Eq3Availability, querySuccess)

	// 1. Fidelity: Eq. 3 agreement within 10 percentage points.
	if !rep.AvailabilityAgrees(0.10) {
		t.Errorf("measured availability %.3f diverges from Eq.3 prediction %.3f by more than 0.10",
			rep.MeasuredAvailability, rep.PredictedAvailability)
	}
	if rep.ProbeLiveness <= 0.5 || rep.ProbeLiveness >= 1 {
		t.Errorf("probe liveness %.3f implausible for %d/%d online with retries", rep.ProbeLiveness, peers-offlineN, peers)
	}

	// 2. Boundedness: the retry budget is a hard ceiling. Every retry
	// withdraws one token; deposits are ratio per call plus the initial
	// burst — so the telemetry must satisfy the token inequality exactly.
	if retries == 0 {
		t.Error("20% drop produced zero retries — the resilience layer is not wired in")
	}
	if max := budgetRatio*float64(calls) + budgetBurst; float64(retries) > max {
		t.Errorf("retries %d exceed budget bound %.0f (ratio %.2f over %d calls + burst %d)",
			retries, max, budgetRatio, calls, budgetBurst)
	}

	// 3. Cleanliness: everything spawned above must drain.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutine leak: %d before soak, %d after settling", before, after)
	}
}
