package node

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/analysis"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/health"
	"pgrid/internal/resilience"
	"pgrid/internal/sim"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// connKillingChaos injects drops the way a real network fails a pooled
// transport: a dropped call evicts the target peer's warm connections —
// killing them mid-stream under whatever other requests are multiplexed
// on them — and reports Transient. Unlike the in-process ChaosTransport,
// the damage here outlives the dropped call: the next caller must re-dial
// and every in-flight request on the killed connections fails too.
type connKillingChaos struct {
	pt   *PoolTransport
	drop float64

	mu  sync.Mutex
	rng *rand.Rand

	dropped atomic.Int64
	total   atomic.Int64
}

func (c *connKillingChaos) Call(to addr.Addr, m *wire.Message) (*wire.Message, error) {
	c.total.Add(1)
	c.mu.Lock()
	hit := c.rng.Float64() < c.drop
	c.mu.Unlock()
	if hit {
		c.dropped.Add(1)
		c.pt.Evict(to)
		return nil, fmt.Errorf("%w: chaos killed the connection to %v", ErrOffline, to)
	}
	return c.pt.Call(to, m)
}

// TestChaosSoakPooledTCP is the PR-5 resilience soak rebuilt on the fast
// wire: a 64-peer community served over real TCP, all traffic multiplexed
// through one pooled binary transport under a resilient wrapper whose
// breaker-open transitions evict pooled connections. Chaos drops kill a
// connection, not the process — in-flight requests on the killed socket
// fail Transient and retry — and a fifth of the peers go offline. The
// promises checked are the same as the in-process soak:
//
//  1. Fidelity: measured availability stays within 10 percentage points
//     of the Eq. 3 prediction — the pooled wire must not bend the
//     community away from the Section 4 model.
//  2. Boundedness: retries respect the token budget.
//  3. Cleanliness: every goroutine — servers, demux readers, probers,
//     the pool janitor — drains; nothing leaks.
func TestChaosSoakPooledTCP(t *testing.T) {
	before := runtime.NumGoroutine()

	const (
		peers       = 64
		offlineN    = 12
		seed        = 42
		budgetRatio = 0.5
		budgetBurst = 50
	)
	cfg := core.Config{MaxL: 4, RefMax: 2, RecMax: 2, RecFanout: 2}
	built, err := sim.Build(sim.Options{N: peers, Config: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !built.Converged {
		t.Fatal("construction did not converge")
	}

	tel := telemetry.New(0)
	pt := NewPoolTransport(PoolConfig{DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	pt.SetTelemetry(tel)
	chaos := &connKillingChaos{pt: pt, drop: 0.15, rng: rand.New(rand.NewSource(seed))}
	budget := resilience.NewBudget(budgetRatio, budgetBurst)
	rt := resilience.Wrap(chaos, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
		Budget:   budget,
		Breaker:  resilience.BreakerConfig{Threshold: 8, Cooldown: 250 * time.Millisecond},
		Classify: Classify,
		Seed:     seed,
		Tel:      tel,
		OnPeerState: func(peer addr.Addr, from, to resilience.BreakerState) {
			if to == resilience.StateOpen {
				pt.Evict(peer)
			}
		},
	})

	// Transplant the converged grid into TCP-served nodes whose own
	// outbound traffic — probes, routed queries, everything — goes through
	// the resilient pooled stack.
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*Node, 0, peers)
	servers := make([]*Server, 0, peers)
	ctx, cancel := context.WithCancel(context.Background())
	for _, p := range built.Dir.All() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := New(p.Addr(), cfg, rt, int64(p.Addr()))
		if err := n.Peer().Restore(p.Snapshot()); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(n, ln)
		pt.SetEndpoint(p.Addr(), ln.Addr().String())
		go srv.Serve(ctx)
		nodes = append(nodes, n)
		servers = append(servers, srv)
	}
	stop := func() {
		cancel()
		for _, s := range servers {
			s.Close()
		}
		pt.Close()
	}
	defer stop()

	offline := map[addr.Addr]bool{}
	for len(offline) < offlineN {
		a := nodes[rng.Intn(peers)].Addr()
		if !offline[a] {
			offline[a] = true
			// The listener stays up; the server drops frames unanswered —
			// a dead peer, not a dead port.
			for _, n := range nodes {
				if n.Addr() == a {
					n.SetOnline(false)
				}
			}
		}
	}

	// Probe rounds over the pooled wire, one goroutine per online node.
	var wg sync.WaitGroup
	for i, n := range nodes {
		if offline[n.Addr()] {
			continue
		}
		p := NewProber(n, time.Second, 8, int64(1000+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				p.Tick()
			}
		}()
	}
	wg.Wait()

	var digests []health.Digest
	for _, n := range nodes {
		if !offline[n.Addr()] {
			digests = append(digests, n.Digest())
		}
	}
	rep := analysis.AnalyzeGrid(digests)

	online := make([]addr.Addr, 0, peers-offlineN)
	for _, n := range nodes {
		if !offline[n.Addr()] {
			online = append(online, n.Addr())
		}
	}
	const queries = 300
	found := 0
	for i := 0; i < queries; i++ {
		start := online[rng.Intn(len(online))]
		key := bitpath.Random(rng, 4)
		resp, err := rt.Call(start, &wire.Message{Kind: wire.KindQuery, From: addr.Nil,
			Query: &wire.QueryReq{Key: key}})
		if err == nil && resp.QueryResp != nil && resp.QueryResp.Found {
			found++
		}
	}
	querySuccess := float64(found) / queries

	calls := counterVal(t, tel, "pgrid_resilience_calls_total")
	retries := counterVal(t, tel, "pgrid_resilience_retries_total")
	opens := counterVal(t, tel, "pgrid_resilience_breaker_opens_total")
	st := pt.Stats()
	t.Logf("pooled soak: %d peers (%d offline), %d calls (%d chaos-killed), %d retries, %d breaker opens",
		peers, offlineN, chaos.total.Load(), chaos.dropped.Load(), retries, opens)
	t.Logf("pool: %d dials, %d reuses, %d evictions, %d conns lost mid-flight, %d open at end",
		st.Dials, st.Reuses, st.Evictions, st.ConnLost, st.Open)
	t.Logf("availability: p̂=%.3f measured=%.3f predicted=%.3f querySuccess=%.3f",
		rep.ProbeLiveness, rep.MeasuredAvailability, rep.PredictedAvailability, querySuccess)

	// 1. Fidelity under connection-killing chaos.
	if !rep.AvailabilityAgrees(0.10) {
		t.Errorf("measured availability %.3f diverges from Eq.3 prediction %.3f by more than 0.10",
			rep.MeasuredAvailability, rep.PredictedAvailability)
	}
	if rep.ProbeLiveness <= 0.5 || rep.ProbeLiveness >= 1 {
		t.Errorf("probe liveness %.3f implausible for %d/%d online with retries", rep.ProbeLiveness, peers-offlineN, peers)
	}

	// 2. Boundedness: the retry budget holds on the pooled wire too.
	if retries == 0 {
		t.Error("15% connection-killing chaos produced zero retries — the resilience layer is not wired in")
	}
	if max := budgetRatio*float64(calls) + budgetBurst; float64(retries) > max {
		t.Errorf("retries %d exceed budget bound %.0f (ratio %.2f over %d calls + burst %d)",
			retries, max, budgetRatio, calls, budgetBurst)
	}

	// The drops must actually have exercised the pool's failure paths:
	// connections were reused, killed, and re-dialed — not one socket per
	// call, not one immortal socket.
	if st.Reuses == 0 {
		t.Error("soak never reused a pooled connection")
	}
	if st.Evictions == 0 {
		t.Error("chaos never evicted a warm connection — drops did not kill connections")
	}
	if st.Dials < 2 {
		t.Errorf("dials = %d; killed connections should force re-dials", st.Dials)
	}

	// 3. Cleanliness: servers, readLoops, janitor, probers all drain.
	stop()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutine leak: %d before soak, %d after settling", before, after)
	}
}
