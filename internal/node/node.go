// Package node implements a real, message-passing P-Grid node: the same
// algorithms as internal/core, but executed over a Transport, so the system
// runs as actual communicating processes — in-process over channels for the
// concurrent examples and tests, or across machines over TCP
// (cmd/pgridnode). The simulator validates the algorithms; this package
// validates that they survive being distributed.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/health"
	"pgrid/internal/peer"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// Transport delivers a request to another node and returns its response.
// Implementations must be safe for concurrent use. Errors mean the target
// is unreachable (offline, crashed, unknown) — the algorithms treat that
// exactly like the paper's online(peer(r)) = false.
type Transport interface {
	Call(to addr.Addr, msg *wire.Message) (*wire.Message, error)
}

// ErrOffline reports a call to a node that is not reachable.
var ErrOffline = errors.New("node: peer offline")

// Node is one networked P-Grid peer.
type Node struct {
	self *peer.Peer
	cfg  core.Config
	tr   Transport
	tel  *telemetry.Instruments

	rec        *trace.Recorder
	sampleProb float64

	history *telemetry.History

	htr *health.Tracker

	repairer *Repairer

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a node with the given address, configuration, transport and
// seed. The node starts with the empty path (whole key space).
func New(a addr.Addr, cfg core.Config, tr Transport, seed int64) *Node {
	return &Node{
		self: peer.New(a),
		cfg:  cfg,
		tr:   tr,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Addr returns the node's address.
func (n *Node) Addr() addr.Addr { return n.self.Addr() }

// Path returns the node's current responsibility path.
func (n *Node) Path() bitpath.Path { return n.self.Path() }

// Peer exposes the underlying peer state for assertions in tests.
func (n *Node) Peer() *peer.Peer { return n.self }

// Store returns the node's data layer.
func (n *Node) Store() *store.Store { return n.self.Store() }

// SetOnline flips the node's availability; transports consult it.
func (n *Node) SetOnline(v bool) { n.self.SetOnline(v) }

// Online reports availability.
func (n *Node) Online() bool { return n.self.Online() }

// SetTelemetry attaches an instrument bundle (nil disables). Call before
// the node starts serving; the field is not synchronized.
func (n *Node) SetTelemetry(t *telemetry.Instruments) { n.tel = t }

// Telemetry returns the attached instruments (possibly nil).
func (n *Node) Telemetry() *telemetry.Instruments { return n.tel }

// EnableTracing attaches a flight recorder and sets the probability that
// a query starting at this node is sampled for distributed tracing
// (clamped to [0, 1]). Queries arriving with a sampled context are
// always traced, regardless of the local probability — that is how
// pgridctl forces a fully-sampled route. Call before the node starts
// serving; the fields are not synchronized.
func (n *Node) EnableTracing(rec *trace.Recorder, sampleProb float64) {
	n.rec = rec
	n.sampleProb = min(max(sampleProb, 0), 1)
}

// Recorder returns the attached flight recorder (possibly nil).
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// Repairer returns the self-healing repairer NewRepairer attached (nil
// when repair is off). Repairer.Status is nil-safe, so callers may chain
// n.Repairer().Status() unconditionally.
func (n *Node) Repairer() *Repairer { return n.repairer }

// EnableHistory attaches a telemetry history ring (nil disables); a
// sampler (RunHistorySampler) fills it and KindHistory serves it. Call
// before the node starts serving; the field is not synchronized.
func (n *Node) EnableHistory(h *telemetry.History) { n.history = h }

// History returns the attached history ring (possibly nil).
func (n *Node) History() *telemetry.History { return n.history }

// Handle dispatches one incoming request and returns the response message.
// Transports call this on the receiving side. Handling is timed into the
// per-kind served-latency histograms; error replies count as served
// errors. A sampled traced query stamps its trace ID into the latency
// histogram's tail-bucket exemplar slot, so a slow outlier in
// /debug/history points straight at a retrievable route in the flight
// recorder.
func (n *Node) Handle(m *wire.Message) *wire.Message {
	kind := m.Kind.String()
	n.tel.ServedRPC(kind)
	start := time.Now()
	resp := n.handle(m)
	n.tel.ServedRPCTraced(kind, time.Since(start), resp.Kind == wire.KindError, traceIDOf(m))
	return resp
}

// traceIDOf extracts the sampled trace ID riding on a request, 0 when
// the message carries none.
func traceIDOf(m *wire.Message) uint64 {
	if m.Query != nil && m.Query.Ctx != nil && m.Query.Ctx.Sampled {
		return m.Query.Ctx.TraceID
	}
	return 0
}

// handle is the untimed dispatch switch behind Handle.
func (n *Node) handle(m *wire.Message) *wire.Message {
	switch m.Kind {
	case wire.KindQuery:
		resp := n.handleQuery(m.Query)
		return &wire.Message{Kind: wire.KindQueryResp, From: n.Addr(), QueryResp: resp}
	case wire.KindExchange:
		resp := n.handleExchange(m.From, m.Exchange)
		return &wire.Message{Kind: wire.KindExchangeResp, From: n.Addr(), ExchangeResp: resp}
	case wire.KindApply:
		changed := n.Store().Apply(m.Apply.Entry)
		return &wire.Message{Kind: wire.KindApplyResp, From: n.Addr(), ApplyResp: &wire.ApplyResp{Changed: changed}}
	case wire.KindGet:
		e, ok := n.Store().Get(m.Get.Key, m.Get.Name)
		return &wire.Message{Kind: wire.KindGetResp, From: n.Addr(), GetResp: &wire.GetResp{Entry: e, Found: ok}}
	case wire.KindInfo:
		return &wire.Message{Kind: wire.KindInfoResp, From: n.Addr(), InfoResp: n.info()}
	case wire.KindScan:
		return &wire.Message{Kind: wire.KindScanResp, From: n.Addr(),
			ScanResp: &wire.ScanResp{Entries: n.Store().PrefixScan(m.Scan.Prefix)}}
	case wire.KindStats:
		return &wire.Message{Kind: wire.KindStatsResp, From: n.Addr(), StatsResp: n.stats()}
	case wire.KindMetrics:
		return &wire.Message{Kind: wire.KindMetricsResp, From: n.Addr(), MetricsResp: n.handleMetrics()}
	case wire.KindTraces:
		limit := 0
		if m.Traces != nil {
			limit = m.Traces.Limit
		}
		return &wire.Message{Kind: wire.KindTracesResp, From: n.Addr(),
			TracesResp: &wire.TracesResp{Total: n.rec.Total(), Traces: n.rec.Snapshot(limit)}}
	case wire.KindHealth:
		return &wire.Message{Kind: wire.KindHealthResp, From: n.Addr(), HealthResp: n.handleHealth(m.Health)}
	case wire.KindHistory:
		return &wire.Message{Kind: wire.KindHistoryResp, From: n.Addr(), HistoryResp: n.handleHistory(m.History)}
	case wire.KindBatch:
		return n.handleBatch(m)
	case wire.KindRepair:
		return &wire.Message{Kind: wire.KindRepairResp, From: n.Addr(), RepairResp: n.handleRepair(m.Repair)}
	case wire.KindHello:
		// Codec negotiation: accept the highest version both sides speak.
		// A hello only ever arrives on a binary-framed connection (gob-only
		// dialers cannot express it), so answering is enough — the framing
		// is already agreed by the time the payload is read.
		c := uint8(wire.BinaryVersion)
		if m.Hello != nil && m.Hello.MaxCodec < c {
			c = m.Hello.MaxCodec
		}
		return &wire.Message{Kind: wire.KindHelloResp, From: n.Addr(),
			HelloResp: &wire.HelloResp{Codec: c}}
	default:
		return &wire.Message{Kind: wire.KindError, From: n.Addr(),
			Error: fmt.Sprintf("unexpected message kind %v", m.Kind)}
	}
}

// callBatch sends msgs to one peer as a single batch frame and returns the
// per-slot responses. The error surface mirrors Transport.Call: transport
// failures come back as-is (a pre-batch peer answers the envelope with
// KindError, which transports surface as a Terminal error), and a response
// whose shape does not match the request is ErrMalformed.
func callBatch(tr Transport, to, from addr.Addr, msgs []wire.Message) ([]wire.Message, error) {
	resp, err := tr.Call(to, &wire.Message{Kind: wire.KindBatch, From: from,
		Batch: &wire.BatchReq{Msgs: msgs}})
	if err != nil {
		return nil, err
	}
	if resp.BatchResp == nil || len(resp.BatchResp.Msgs) != len(msgs) {
		return nil, fmt.Errorf("%w: node %v answered batch with kind %v (%d slots for %d requests)",
			ErrMalformed, to, resp.Kind, len(batchSlots(resp)), len(msgs))
	}
	return resp.BatchResp.Msgs, nil
}

func batchSlots(m *wire.Message) []wire.Message {
	if m.BatchResp == nil {
		return nil
	}
	return m.BatchResp.Msgs
}

// handleBatch serves each sub-request in order and returns one response
// per slot. A sub-request the node cannot serve yields a KindError
// sub-message in its slot; the batch frame itself still succeeds, so one
// bad element does not void its neighbours. Nested batches are refused at
// the envelope level (and the binary codec refuses to carry them at all).
func (n *Node) handleBatch(m *wire.Message) *wire.Message {
	if m.Batch == nil {
		return &wire.Message{Kind: wire.KindError, From: n.Addr(), Error: "empty batch"}
	}
	out := make([]wire.Message, len(m.Batch.Msgs))
	for i := range m.Batch.Msgs {
		sub := &m.Batch.Msgs[i]
		if sub.Kind == wire.KindBatch || sub.Kind == wire.KindBatchResp {
			out[i] = wire.Message{Kind: wire.KindError, From: n.Addr(), Error: "nested batch"}
			continue
		}
		out[i] = *n.Handle(sub)
	}
	return &wire.Message{Kind: wire.KindBatchResp, From: n.Addr(),
		BatchResp: &wire.BatchResp{Msgs: out}}
}

// stats flattens the node's telemetry registry for the ctl tool. With
// telemetry disabled the response carries the schema version and no stats.
func (n *Node) stats() *wire.StatsResp {
	resp := &wire.StatsResp{Schema: telemetry.SchemaVersion}
	for _, s := range n.tel.Registry().Snapshot() {
		resp.Stats = append(resp.Stats, wire.Stat{Name: s.Name, Value: s.Value})
	}
	return resp
}

func (n *Node) info() *wire.InfoResp {
	s := n.self.Snapshot()
	refs := make([]wire.RefSet, len(s.Refs))
	for i, r := range s.Refs {
		refs[i] = wire.FromSet(r)
	}
	return &wire.InfoResp{
		Addr:    s.Addr,
		Path:    s.Path,
		Refs:    refs,
		Buddies: wire.FromSet(s.Buddies),
		Entries: n.Store().Len(),
	}
}

// --- query ----------------------------------------------------------------

// Query starts the Fig. 2 depth-first search at this node. With tracing
// enabled (EnableTracing), a sampleProb fraction of queries carry a
// trace context and leave a route record in the flight recorders of
// every node they visit.
func (n *Node) Query(key bitpath.Path) core.QueryResult {
	req := &wire.QueryReq{Key: key, Level: 0}
	if n.rec != nil && n.sampleProb > 0 {
		n.mu.Lock()
		sampled := n.rng.Float64() < n.sampleProb
		var id uint64
		if sampled {
			id = trace.NewTraceID(n.rng.Uint64(), uint64(n.Addr()))
		}
		n.mu.Unlock()
		if sampled {
			req.Ctx = &trace.SpanContext{TraceID: id, Budget: trace.DefaultBudget, Sampled: true}
		}
	}
	resp := n.handleQuery(req)
	n.tel.ObserveQuery(resp.Found, resp.Messages, resp.Backtracks)
	if n.tel.EventsOn() {
		n.tel.EmitQuery(key.String(), resp.Found, resp.Messages, resp.Backtracks)
	}
	return core.QueryResult{Found: resp.Found, Peer: resp.Peer, Messages: resp.Messages, Backtracks: resp.Backtracks}
}

// TraceQuery runs one fully-sampled search from this node, bypassing the
// sampling probability, and returns the assembled route alongside the
// result — the in-process twin of `pgridctl trace`.
func (n *Node) TraceQuery(key bitpath.Path) (core.QueryResult, trace.Trace) {
	n.mu.Lock()
	id := trace.NewTraceID(n.rng.Uint64(), uint64(n.Addr()))
	n.mu.Unlock()
	req := &wire.QueryReq{Key: key, Level: 0,
		Ctx: &trace.SpanContext{TraceID: id, Budget: trace.DefaultBudget, Sampled: true}}
	resp := n.handleQuery(req)
	n.tel.ObserveQuery(resp.Found, resp.Messages, resp.Backtracks)
	res := core.QueryResult{Found: resp.Found, Peer: resp.Peer, Messages: resp.Messages, Backtracks: resp.Backtracks}
	return res, trace.Trace{TraceID: id, Key: key, Found: resp.Found,
		Messages: resp.Messages, Backtracks: resp.Backtracks, Spans: resp.Spans}
}

// handleQuery is query(a, p, l) with remote recursion: references are
// contacted through the transport and each successful downstream call
// contributes to the message count. When the request carries a sampled
// trace context the node appends its own span (and everything its
// subtree reported) to the response and records the subtree route in
// its flight recorder; routing decisions are identical either way.
func (n *Node) handleQuery(q *wire.QueryReq) *wire.QueryResp {
	path := n.self.Path()
	l := q.Level
	if l > path.Len() {
		l = path.Len()
	}

	tracing := q.Ctx.Alive()
	var span trace.Span
	var start time.Time
	var childCtx *trace.SpanContext
	if tracing {
		start = time.Now()
		n.mu.Lock()
		sid := n.rng.Uint64()
		n.mu.Unlock()
		span = trace.Span{ID: sid, Parent: q.Ctx.Parent, Peer: n.Addr(),
			Path: path, Level: l, Ref: addr.Nil}
		if q.Ctx.Budget > 0 {
			cc := q.Ctx.Child(sid)
			childCtx = &cc
		}
	}

	resp := n.routeQuery(q, path, l, &span, childCtx, tracing)

	if tracing {
		span.LatencyNS = int64(time.Since(start))
		spans := make([]trace.Span, 0, 1+len(resp.Spans))
		spans = append(spans, span)
		spans = append(spans, resp.Spans...)
		resp.Spans = spans
		n.rec.Record(trace.Trace{TraceID: q.Ctx.TraceID, Key: q.Key, Found: resp.Found,
			Messages: resp.Messages, Backtracks: resp.Backtracks, Spans: resp.Spans})
	}
	return resp
}

// routeQuery is the routing half of handleQuery: the Fig. 2 decision and
// reference walk. span and childCtx are only touched when tracing is set;
// resp.Spans accumulates the downstream spans in visit order (the
// caller's own span is prepended by handleQuery).
func (n *Node) routeQuery(q *wire.QueryReq, path bitpath.Path, l int, span *trace.Span, childCtx *trace.SpanContext, tracing bool) *wire.QueryResp {
	rempath := path.Suffix(l)
	compath := bitpath.CommonPrefix(q.Key, rempath)

	if compath.Len() == q.Key.Len() || compath.Len() == rempath.Len() {
		if tracing {
			span.Matched = true
		}
		return &wire.QueryResp{Found: true, Peer: n.Addr(), Path: path}
	}

	resp := &wire.QueryResp{}
	if path.Len() > l+compath.Len() {
		querypath := q.Key.Suffix(compath.Len())
		refs := n.self.RefsAt(l + compath.Len() + 1)
		for refs.Len() > 0 {
			var r addr.Addr
			n.mu.Lock()
			r = refs.PopRandom(n.rng)
			n.mu.Unlock()
			down, err := n.tr.Call(r, &wire.Message{
				Kind: wire.KindQuery, From: n.Addr(),
				Query: &wire.QueryReq{Key: querypath, Level: l + compath.Len(), Ctx: childCtx},
			})
			n.tel.RefLiveness(l+compath.Len()+1, err == nil && down.QueryResp != nil)
			if err != nil || down.QueryResp == nil {
				continue // unreachable reference: try the next one
			}
			resp.Messages += 1 + down.QueryResp.Messages
			resp.Backtracks += down.QueryResp.Backtracks
			if tracing {
				resp.Spans = append(resp.Spans, down.QueryResp.Spans...)
			}
			if down.QueryResp.Found {
				resp.Found = true
				resp.Peer = down.QueryResp.Peer
				resp.Path = down.QueryResp.Path
				if tracing {
					span.Ref = r
				}
				return resp
			}
			resp.Backtracks++ // the contacted subtree resolved nothing
			if tracing {
				span.Backtracked = true
			}
		}
	}
	return resp
}

// --- exchange --------------------------------------------------------------

// Exchange initiates the Fig. 3 construction interaction with the peer at
// `to`. It sends this node's snapshot; the responder computes the joint
// decision, applies its own half, and returns ours, which we apply only if
// our path is unchanged since the snapshot (stale replies are dropped, as a
// real peer would). Recursive exchanges (case 4) run from both sides.
func (n *Node) Exchange(to addr.Addr) error {
	return n.exchange(to, 0)
}

func (n *Node) exchange(to addr.Addr, depth int) error {
	if to == n.Addr() {
		return nil
	}
	s := n.self.Snapshot()
	req := &wire.ExchangeReq{Path: s.Path, Refs: make([]wire.RefSet, len(s.Refs)), Depth: depth}
	for i, r := range s.Refs {
		req.Refs[i] = wire.FromSet(r)
	}
	resp, err := n.tr.Call(to, &wire.Message{Kind: wire.KindExchange, From: n.Addr(), Exchange: req})
	if err != nil {
		return err
	}
	if resp.ExchangeResp == nil {
		return fmt.Errorf("node: exchange with %v: bad response kind %v", to, resp.Kind)
	}
	n.applyExchange(to, resp.ExchangeResp, depth)
	return nil
}

// applyExchange installs the responder's decision on the initiator side.
func (n *Node) applyExchange(from addr.Addr, r *wire.ExchangeResp, depth int) {
	stale := false
	peer.Edit(n.self, func(e peer.Editor) {
		if e.Path() != r.BasePath {
			stale = true
			return
		}
		for level, rs := range r.SetRefs {
			if level >= 1 && level <= e.Path().Len() {
				e.SetRefsAt(level, rs.ToSet())
			}
		}
		if r.Extend {
			e.Extend(r.ExtendBit, r.ExtendRefs.ToSet())
		}
		if r.AddBuddy {
			e.AddBuddy(from)
		}
	})
	if stale {
		return
	}
	// Hand over entries that left our narrowed region, and install the
	// responder's handover.
	if r.Extend {
		keep := r.BasePath.Append(r.ExtendBit)
		if evicted := n.Store().Evict(keep); len(evicted) > 0 {
			// Best-effort: the responder covers the vacated side. Every
			// push targets the same peer, so the whole handover rides one
			// batch frame; a peer that cannot serve batches (or an error
			// mid-flight) gets the sequential per-entry pushes instead.
			msgs := make([]wire.Message, len(evicted))
			for i, entry := range evicted {
				msgs[i] = wire.Message{Kind: wire.KindApply, From: n.Addr(),
					Apply: &wire.ApplyReq{Entry: entry}}
			}
			if _, err := callBatch(n.tr, from, n.Addr(), msgs); err != nil {
				for i := range msgs {
					n.tr.Call(from, &msgs[i])
				}
			}
		}
	}
	for _, entry := range r.Handover {
		n.Store().Apply(entry)
	}
	for _, fwd := range r.ForwardTo {
		n.exchange(fwd, depth+1) // unreachable targets just fail silently
	}
}

// handleExchange is the responder's half: given the initiator's snapshot,
// compute the Fig. 3 decision, apply this node's side, and describe the
// initiator's side in the response.
func (n *Node) handleExchange(from addr.Addr, req *wire.ExchangeReq) *wire.ExchangeResp {
	resp := &wire.ExchangeResp{BasePath: req.Path, SetRefs: map[int]wire.RefSet{}}
	var initiatorForwards []addr.Addr
	var myForwards []addr.Addr
	caseTaken := telemetry.ExCaseNone
	commonLen := 0

	peer.Edit(n.self, func(e peer.Editor) {
		p1 := req.Path // initiator = a1 role
		p2 := e.Path() // this node = a2 role
		lc := bitpath.CommonPrefixLen(p1, p2)
		commonLen = lc

		refsOf := func(level int) addr.Set {
			if level >= 1 && level <= len(req.Refs) {
				return req.Refs[level-1].ToSet()
			}
			return addr.Set{}
		}

		n.mu.Lock()
		defer n.mu.Unlock()

		if lc > 0 {
			commonrefs := addr.Union(refsOf(lc), e.RefsAt(lc))
			mine := commonrefs.RandomSubset(n.rng, n.cfg.RefMax)
			theirs := commonrefs.RandomSubset(n.rng, n.cfg.RefMax)
			mine.Remove(e.Addr())
			theirs.Remove(from)
			e.SetRefsAt(lc, mine)
			resp.SetRefs[lc] = wire.FromSet(theirs)
		}

		l1 := p1.Len() - lc
		l2 := p2.Len() - lc
		switch {
		case l1 == 0 && l2 == 0 && lc < n.cfg.MaxL:
			caseTaken = telemetry.ExCase1
			// Case 1: initiator takes 0, we take 1.
			resp.Extend = true
			resp.ExtendBit = 0
			resp.ExtendRefs = wire.FromSet(addr.NewSet(e.Addr()))
			e.Extend(1, addr.NewSet(from))

		case l1 == 0 && l2 > 0 && lc < n.cfg.MaxL:
			caseTaken = telemetry.ExCase2
			// Case 2: initiator (shorter) specializes opposite our bit.
			b := p2.Bit(lc + 1)
			resp.Extend = true
			resp.ExtendBit = 1 - b
			resp.ExtendRefs = wire.FromSet(addr.NewSet(e.Addr()))
			mine := addr.Union(addr.NewSet(from), e.RefsAt(lc+1))
			e.SetRefsAt(lc+1, mine.RandomSubset(n.rng, n.cfg.RefMax))

		case l1 > 0 && l2 == 0 && lc < n.cfg.MaxL:
			caseTaken = telemetry.ExCase3
			// Case 3: we specialize opposite the initiator's bit.
			b := p1.Bit(lc + 1)
			e.Extend(1-b, addr.NewSet(from))
			theirs := addr.Union(addr.NewSet(e.Addr()), refsOf(lc+1))
			theirs.Remove(from)
			resp.SetRefs[lc+1] = wire.FromSet(theirs.RandomSubset(n.rng, n.cfg.RefMax))

		case l1 > 0 && l2 > 0 && req.Depth < n.cfg.RecMax:
			caseTaken = telemetry.ExCase4
			// Case 4: cross-forward through level lc+1 references.
			refs1 := refsOf(lc + 1)
			refs1.Remove(e.Addr())
			refs2 := e.RefsAt(lc + 1)
			refs2.Remove(from)
			if n.cfg.RecFanout > 0 {
				refs1 = refs1.RandomSubset(n.rng, n.cfg.RecFanout)
				refs2 = refs2.RandomSubset(n.rng, n.cfg.RecFanout)
			}
			myForwards = refs1.Slice()        // we exchange with the initiator's refs
			initiatorForwards = refs2.Slice() // the initiator exchanges with ours

		case l1 == 0 && l2 == 0:
			caseTaken = telemetry.ExCaseReplica
			// Replicas at maximal depth: buddy each other.
			resp.AddBuddy = true
			e.AddBuddy(from)
		}
	})

	n.tel.ExchangeCase(caseTaken)
	if n.tel.EventsOn() {
		n.tel.EmitExchange(telemetry.ExchangeCaseName(caseTaken),
			commonLen, req.Depth, int(from), int(n.Addr()))
	}

	// Our own specialization (cases 1 and 3) may strand entries on the
	// initiator's side; evicting against the current path is a no-op in
	// every other case.
	resp.Handover = n.Store().Evict(n.self.Path())
	resp.ForwardTo = initiatorForwards

	// Our half of the case-4 recursion, after releasing the state lock.
	for _, fwd := range myForwards {
		n.exchange(fwd, req.Depth+1)
	}
	return resp
}
