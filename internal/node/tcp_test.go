package node

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

// startTCPCluster launches n nodes, each served on a loopback listener,
// all sharing one endpoint table.
func startTCPCluster(t *testing.T, n int) ([]*Node, *TCPTransport, func()) {
	t.Helper()
	tr := NewTCPTransport(2 * time.Second)
	nodes := make([]*Node, n)
	servers := make([]*Server, n)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = New(addr.Addr(i), smallCfg(), tr, int64(1000+i))
		servers[i] = NewServer(nodes[i], ln)
		tr.SetEndpoint(addr.Addr(i), ln.Addr().String())
		go servers[i].Serve(ctx)
	}
	return nodes, tr, func() {
		cancel()
		for _, s := range servers {
			s.Close()
		}
	}
}

func TestTCPExchangeAndQuery(t *testing.T) {
	nodes, _, stop := startTCPCluster(t, 8)
	defer stop()

	rng := rand.New(rand.NewSource(1))
	// Drive meetings over real TCP until the 8 nodes converge on depth 2+.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		a := rng.Intn(len(nodes))
		b := rng.Intn(len(nodes) - 1)
		if b >= a {
			b++
		}
		nodes[a].Exchange(addr.Addr(b))
		sum := 0
		for _, n := range nodes {
			sum += n.Path().Len()
		}
		if float64(sum)/float64(len(nodes)) >= 2 {
			break
		}
	}
	sum := 0
	for _, n := range nodes {
		sum += n.Path().Len()
	}
	if float64(sum)/float64(len(nodes)) < 2 {
		t.Fatalf("TCP cluster did not reach depth 2 (avg %.2f)", float64(sum)/8)
	}

	// Queries over TCP must route to comparable paths.
	for i := 0; i < 50; i++ {
		key := bitpath.Random(rng, 4)
		start := nodes[rng.Intn(len(nodes))]
		res := start.Query(key)
		if !res.Found {
			continue
		}
		var resp *Node
		for _, n := range nodes {
			if n.Addr() == res.Peer {
				resp = n
			}
		}
		if !bitpath.Comparable(resp.Path(), key) {
			t.Fatalf("query %s ended at %q", key, resp.Path())
		}
	}
}

func TestTCPApplyGetRoundTrip(t *testing.T) {
	nodes, tr, stop := startTCPCluster(t, 2)
	defer stop()
	_ = nodes

	e := store.Entry{Key: bitpath.MustParse("01"), Name: "f", Holder: 1, Version: 2}
	resp, err := tr.Call(1, &wire.Message{Kind: wire.KindApply, From: 0, Apply: &wire.ApplyReq{Entry: e}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ApplyResp.Changed {
		t.Error("apply over TCP reported unchanged")
	}
	got, err := tr.Call(1, &wire.Message{Kind: wire.KindGet, From: 0, Get: &wire.GetReq{Key: e.Key, Name: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.GetResp.Found || got.GetResp.Entry != e {
		t.Errorf("get over TCP = %+v", got.GetResp)
	}
}

func TestTCPOfflineNodeDropsConnections(t *testing.T) {
	nodes, tr, stop := startTCPCluster(t, 2)
	defer stop()
	nodes[1].SetOnline(false)
	_, err := tr.Call(1, &wire.Message{Kind: wire.KindInfo, From: 0})
	if err == nil {
		t.Fatal("offline node answered")
	}
}

func TestTCPClientProtocols(t *testing.T) {
	// The multi-replica client protocols (publish, majority read, audit)
	// over real TCP connections.
	nodes, tr, stop := startTCPCluster(t, 6)
	defer stop()

	rng := rand.New(rand.NewSource(9))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		a := rng.Intn(len(nodes))
		b := rng.Intn(len(nodes) - 1)
		if b >= a {
			b++
		}
		nodes[a].Exchange(addr.Addr(b))
		sum := 0
		for _, n := range nodes {
			sum += n.Path().Len()
		}
		if sum >= 2*len(nodes) {
			break
		}
	}

	cl := NewClient(tr, 99)
	all := make([]addr.Addr, len(nodes))
	for i, n := range nodes {
		all[i] = n.Addr()
	}
	e := store.Entry{Key: bitpath.MustParse("10"), Name: "tcp-item", Holder: 4, Version: 1}
	replicas, msgs := cl.Publish(all[:2], e, 3, 2)
	if replicas == 0 || msgs == 0 {
		t.Fatalf("publish over TCP: replicas=%d msgs=%d", replicas, msgs)
	}
	res := cl.MajorityRead(all, e.Key, "tcp-item", 1, 32)
	if !res.Found || res.Entry.Holder != 4 {
		t.Fatalf("majority read over TCP = %+v", res)
	}
	rep := cl.Audit(all)
	if rep.Reachable != len(nodes) {
		t.Fatalf("audit reachable = %d", rep.Reachable)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("audit violations over TCP: %v", rep.Violations)
	}
}

func TestTCPNodeMaintain(t *testing.T) {
	nodes, _, stop := startTCPCluster(t, 4)
	defer stop()
	// Converge the 4 nodes to depth ≥ 1, then take one referenced node
	// offline and let maintenance drop it over TCP.
	rng := rand.New(rand.NewSource(10))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && nodes[0].Path().Len() == 0 {
		b := rng.Intn(3) + 1
		nodes[0].Exchange(addr.Addr(b))
	}
	if nodes[0].Path().Len() == 0 {
		t.Skip("node 0 did not specialize in time")
	}
	refs := nodes[0].Peer().RefsAt(1).Slice()
	if len(refs) == 0 {
		t.Skip("no level-1 references")
	}
	for _, n := range nodes {
		if n.Addr() == refs[0] {
			n.SetOnline(false)
		}
	}
	res := nodes[0].Maintain(2)
	if res.Dropped == 0 {
		t.Fatalf("maintenance over TCP dropped nothing: %+v", res)
	}
}

func TestTCPUnknownEndpoint(t *testing.T) {
	tr := NewTCPTransport(time.Second)
	if _, err := tr.Call(99, &wire.Message{Kind: wire.KindInfo}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

func TestTCPUnreachableEndpoint(t *testing.T) {
	tr := NewTCPTransport(200 * time.Millisecond)
	// A listener we immediately close: dialing must fail cleanly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep := ln.Addr().String()
	ln.Close()
	tr.SetEndpoint(7, ep)
	if _, err := tr.Call(7, &wire.Message{Kind: wire.KindInfo}); err == nil {
		t.Fatal("dead endpoint accepted")
	}
}
