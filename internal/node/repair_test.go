package node

import (
	"context"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
	"pgrid/internal/repair"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
)

// repairFixture hand-builds six nodes in two replica groups: 0,1,2 at
// path "0", 3,4,5 at "1", full buddy lists within a group and full
// cross-references — a minimal community where every repair phase has
// something to vote with.
func repairFixture(t *testing.T, seed int64) *Cluster {
	t.Helper()
	cfg := smallCfg()
	cfg.MaxL = 1
	c := NewCluster(6, cfg, seed)
	for i, n := range c.Nodes {
		bit := byte(0)
		if i >= 3 {
			bit = 1
		}
		if !n.Peer().ExtendFrom(bitpath.Empty, bit, addr.NewSet()) {
			t.Fatal("fixture extend failed")
		}
	}
	for i, n := range c.Nodes {
		refs := addr.Set{}
		for j := range c.Nodes {
			if i == j {
				continue
			}
			if (i < 3) == (j < 3) {
				n.Peer().AddBuddy(addr.Addr(j))
			} else {
				refs.Add(addr.Addr(j))
			}
		}
		n.Peer().SetRefsAt(1, refs)
	}
	return c
}

func tallyOf(ts []repair.Tally, name string) int64 {
	for _, t := range ts {
		if t.Name == name {
			return t.N
		}
	}
	return 0
}

func TestRepairerEvictsWrongSideRef(t *testing.T) {
	c := repairFixture(t, 31)
	n0 := c.Nodes[0]
	n0.Peer().AddRefAt(1, 1) // same-side peer: violates the prefix invariant

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 1)
	r.Tick()

	refs := n0.Peer().RefsAt(1)
	if refs.Contains(1) {
		t.Fatalf("wrong-side reference survived: %v", refs.String())
	}
	if !refs.Contains(3) || !refs.Contains(4) || !refs.Contains(5) {
		t.Errorf("legitimate references lost: %v", refs.String())
	}
	st := r.Status()
	if !st.Enabled || st.Rounds != 1 {
		t.Fatalf("status = %+v", st)
	}
	if got := tallyOf(st.Faults, repair.FaultWrongSide); got != 1 {
		t.Errorf("wrong-side faults = %d, want 1", got)
	}
	if got := tallyOf(st.Heals, repair.ActionEvictRef); got != 1 {
		t.Errorf("evict-ref heals = %d, want 1", got)
	}
	if st.LastUnhealed != 0 {
		t.Errorf("unhealed = %d, want 0", st.LastUnhealed)
	}
}

func TestRepairerAdoptsMajorityPath(t *testing.T) {
	c := repairFixture(t, 32)
	n0 := c.Nodes[0]
	// Corrupt node 0's path to the complement. By the flipped path its new
	// reference set even looks valid (the old buddies are now "the other
	// side"), so only the replica-group vote can catch the corruption.
	if err := n0.Peer().Restore(peer.Snapshot{
		Addr: 0, Path: "1", Refs: []addr.Set{addr.NewSet(1, 2)},
		Buddies: addr.NewSet(1, 2), Online: true,
	}); err != nil {
		t.Fatal(err)
	}

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 2)
	r.Tick()

	if got := n0.Path(); got != "0" {
		t.Fatalf("path after repair = %q, want %q (majority of replica group)", got, "0")
	}
	refs := n0.Peer().RefsAt(1)
	if refs.Len() == 0 {
		t.Fatal("level 1 left starved after path adoption")
	}
	for _, a := range refs.Slice() {
		if a != 3 && a != 4 && a != 5 {
			t.Errorf("invalid reference %v after search refill", a)
		}
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultPathDrift) != 1 {
		t.Errorf("faults = %+v, want one path-drift", st.Faults)
	}
	if tallyOf(st.Heals, repair.ActionAdoptPath) != 1 || tallyOf(st.Heals, repair.ActionSearchRefill) != 1 {
		t.Errorf("heals = %+v, want adopt-path and search-refill", st.Heals)
	}
	if got := repair.State(st.Enabled, st.LastHeals, st.LastUnhealed); got != "healthy" {
		t.Errorf("state = %q, want healthy", got)
	}
}

func TestRepairerDropsOrphanBuddy(t *testing.T) {
	c := repairFixture(t, 33)
	n0 := c.Nodes[0]
	n0.Peer().AddBuddy(3) // cross-partition buddy link

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 3)
	r.Tick()

	if n0.Peer().Buddies().Contains(3) {
		t.Fatalf("orphan replica link survived: %v", n0.Peer().Buddies().String())
	}
	if !n0.Peer().Buddies().Contains(1) || !n0.Peer().Buddies().Contains(2) {
		t.Errorf("legitimate buddies lost: %v", n0.Peer().Buddies().String())
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultOrphanReplica) != 1 || tallyOf(st.Heals, repair.ActionDropBuddy) != 1 {
		t.Errorf("faults = %+v, heals = %+v", st.Faults, st.Heals)
	}
}

func TestRepairerSyncsDivergedReplica(t *testing.T) {
	c := repairFixture(t, 34)
	// Nodes 1 and 2 hold an entry node 0 lost: the group majority
	// fingerprint steers node 0 to pull the partition back.
	e := store.Entry{Key: bitpath.MustParse("01"), Name: "x", Holder: 1, Version: 1}
	c.Nodes[1].Store().Apply(e)
	c.Nodes[2].Store().Apply(e)
	n0 := c.Nodes[0]

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 4)
	r.Tick()

	if _, ok := n0.Store().Get(e.Key, e.Name); !ok {
		t.Fatal("diverged replica did not pull the majority's entries")
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultDivergedReplica) != 1 || tallyOf(st.Heals, repair.ActionSyncPull) != 1 {
		t.Errorf("faults = %+v, heals = %+v", st.Faults, st.Heals)
	}
	if got := n0.Store().Summary().Hash; got != c.Nodes[1].Store().Summary().Hash {
		t.Errorf("fingerprints still diverge after sync")
	}
}

func TestRepairerPushesToWipedReplica(t *testing.T) {
	c := repairFixture(t, 35)
	// Nodes 0 and 2 hold the partition; node 1 was wiped. Node 0 sits on
	// the majority fingerprint and pushes the entries at the wiped member.
	e := store.Entry{Key: bitpath.MustParse("00"), Name: "y", Holder: 0, Version: 2}
	c.Nodes[0].Store().Apply(e)
	c.Nodes[2].Store().Apply(e)
	n0 := c.Nodes[0]

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 5)
	r.Tick()

	if _, ok := c.Nodes[1].Store().Get(e.Key, e.Name); !ok {
		t.Fatal("wiped replica did not receive pushed entries")
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultDivergedReplica) != 1 || tallyOf(st.Heals, repair.ActionSyncPush) != 1 {
		t.Errorf("faults = %+v, heals = %+v", st.Faults, st.Heals)
	}
}

func TestRepairerEvictsAndRehomesOrphanEntries(t *testing.T) {
	c := repairFixture(t, 36)
	n0 := c.Nodes[0]
	// An entry filed under the complement partition: node 0 is not
	// responsible for it and no search will ever find it here.
	e := store.Entry{Key: bitpath.MustParse("10"), Name: "z", Holder: 0, Version: 1}
	n0.Store().Apply(e)

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 6)
	r.Tick()

	if n0.Store().CountOutside(n0.Path()) != 0 {
		t.Fatal("orphan entry survived eviction")
	}
	found := false
	for _, i := range []int{3, 4, 5} {
		if _, ok := c.Nodes[i].Store().Get(e.Key, e.Name); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("orphan entry was not rehomed to the responsible partition")
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultOrphanEntry) != 1 {
		t.Errorf("faults = %+v, want one orphan-entry", st.Faults)
	}
	if tallyOf(st.Heals, repair.ActionEvictEntry) != 1 || tallyOf(st.Heals, repair.ActionRehomeEntry) != 1 {
		t.Errorf("heals = %+v, want evict-entry and rehome-entry", st.Heals)
	}
}

func TestRepairerMassDeathKeepsRefs(t *testing.T) {
	c := repairFixture(t, 37)
	n0 := c.Nodes[0]
	for _, i := range []int{3, 4, 5} {
		c.Nodes[i].SetOnline(false)
	}

	r := NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 7)
	r.Tick()

	// Every reference at the level died at once — far likelier a partition
	// than simultaneous churn, so the round must NOT drain the level.
	refs := n0.Peer().RefsAt(1)
	if refs.Len() != 3 {
		t.Fatalf("mass-death level drained to %v", refs.String())
	}
	st := r.Status()
	if tallyOf(st.Faults, repair.FaultStarvedLevel) != 1 {
		t.Errorf("faults = %+v, want one starved-level", st.Faults)
	}
	if st.LastUnhealed == 0 {
		t.Error("starved level not counted unhealed")
	}
	if got := repair.State(st.Enabled, st.LastHeals, st.LastUnhealed); got != "stuck" {
		t.Errorf("state = %q, want stuck", got)
	}

	// The partition heals: the next round finds the refs valid again and
	// the verdict flips back without any repair action.
	for _, i := range []int{3, 4, 5} {
		c.Nodes[i].SetOnline(true)
	}
	r.Tick()
	st = r.Status()
	if st.LastFaults != 0 || st.LastUnhealed != 0 {
		t.Errorf("post-heal round: %+v", st)
	}
}

func TestRepairEndToEnd(t *testing.T) {
	c := repairFixture(t, 38)
	client := NewClient(c.Transport, 99)

	// A node without a repairer answers, with Enabled=false — "repair off"
	// is distinguishable from "peer gone".
	st, err := client.FetchRepair(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatal("repairless node reports Enabled=true")
	}

	n0 := c.Nodes[0]
	tel := telemetry.New(0)
	n0.SetTelemetry(tel)
	NewRepairer(n0, time.Second, RepairConfig{Budget: 64}, 8)
	n0.Peer().AddRefAt(1, 2) // plant one wrong-side ref for the round to heal

	st, err = client.FetchRepair(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Rounds != 1 {
		t.Fatalf("triggered status = %+v", st)
	}
	if st.TotalFaults() < 1 || st.TotalHeals() < 1 {
		t.Fatalf("triggered round found %d faults, %d heals", st.TotalFaults(), st.TotalHeals())
	}
	if got := counterVal(t, tel, "pgrid_repair_rounds_total"); got != 1 {
		t.Errorf("pgrid_repair_rounds_total = %d, want 1", got)
	}
	if got := counterVal(t, tel, `pgrid_repair_fault_total{class="wrong-side-ref"}`); got != 1 {
		t.Errorf("wrong-side fault counter = %d, want 1", got)
	}
	if got := counterVal(t, tel, `pgrid_repair_heal_total{action="evict-ref"}`); got != 1 {
		t.Errorf("evict-ref heal counter = %d, want 1", got)
	}
	if counterVal(t, tel, "pgrid_repair_messages_total") == 0 {
		t.Error("repair messages not counted")
	}

	// A second, untriggered fetch must not run another round.
	st, err = client.FetchRepair(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Errorf("untriggered fetch ran a round: %+v", st)
	}
}

func TestRepairerRunStops(t *testing.T) {
	c := repairFixture(t, 39)
	r := NewRepairer(c.Nodes[0], 10*time.Millisecond, RepairConfig{Budget: 16}, 9)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		r.Run(ctx)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestNewRepairerPanics(t *testing.T) {
	c := repairFixture(t, 40)
	for _, tc := range []struct {
		name  string
		every time.Duration
		cfg   RepairConfig
	}{
		{"zero interval", 0, RepairConfig{Budget: 8}},
		{"zero budget", time.Second, RepairConfig{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewRepairer(c.Nodes[0], tc.every, tc.cfg, 1)
		}()
	}
}
