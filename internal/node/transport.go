package node

import (
	"fmt"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/core"
	"pgrid/internal/wire"
)

// LocalTransport delivers messages between nodes of the same process by
// direct dispatch — the in-memory network used by tests and the concurrent
// example. Offline nodes are unreachable, like crashed processes.
// It also counts delivered messages, standing in for the network monitor
// the experiments need.
type LocalTransport struct {
	mu    sync.RWMutex
	nodes map[addr.Addr]*Node
	msgs  int64
}

// NewLocalTransport returns an empty in-process network.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: make(map[addr.Addr]*Node)}
}

// Register attaches a node to the network.
func (t *LocalTransport) Register(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n.Addr()] = n
}

// Messages returns the number of successfully delivered requests.
func (t *LocalTransport) Messages() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.msgs
}

// Call implements Transport.
func (t *LocalTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	t.mu.RLock()
	n := t.nodes[to]
	t.mu.RUnlock()
	if n == nil {
		return nil, fmt.Errorf("%w: %v is not registered", ErrOffline, to)
	}
	if !n.Online() {
		return nil, fmt.Errorf("%w: %v", ErrOffline, to)
	}
	t.mu.Lock()
	t.msgs++
	t.mu.Unlock()
	resp := n.Handle(msg)
	if resp.Kind == wire.KindError {
		return nil, fmt.Errorf("node %v: %s", to, resp.Error)
	}
	return resp, nil
}

// Cluster is a convenience bundle: n nodes wired through one
// LocalTransport, for tests and examples that want a working in-process
// P-Grid network in one call.
type Cluster struct {
	Transport *LocalTransport
	Nodes     []*Node
}

// NewCluster builds n nodes with addresses 0…n-1 over a fresh transport.
func NewCluster(n int, cfg core.Config, seed int64) *Cluster {
	tr := NewLocalTransport()
	c := &Cluster{Transport: tr, Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = New(addr.Addr(i), cfg, tr, seed+int64(i))
		tr.Register(c.Nodes[i])
	}
	return c
}

// AvgPathLen returns the construction-convergence metric over the cluster.
func (c *Cluster) AvgPathLen() float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	sum := 0
	for _, n := range c.Nodes {
		sum += n.Path().Len()
	}
	return float64(sum) / float64(len(c.Nodes))
}

// CheckInvariants verifies the Section 2 reference property across the
// cluster: every reference at level i points to a node that agrees on the
// first i-1 bits and differs at bit i. The networked protocol applies
// exchange decisions optimistically (a stale initiator drops the decision
// while the responder has already applied its half), so unlike the shared-
// memory engine it can leave a reference one split behind; those are
// harmless for routing (the branch just fails and search backtracks) and
// are surfaced by CountInvariantViolations instead.
func (c *Cluster) CheckInvariants() error {
	if v := c.CountInvariantViolations(); v > 0 {
		return fmt.Errorf("node: %d reference invariant violations", v)
	}
	return nil
}

// CountInvariantViolations returns how many references across the cluster
// violate the Section 2 property.
func (c *Cluster) CountInvariantViolations() int {
	byAddr := make(map[addr.Addr]*Node, len(c.Nodes))
	for _, n := range c.Nodes {
		byAddr[n.Addr()] = n
	}
	violations := 0
	for _, n := range c.Nodes {
		s := n.Peer().Snapshot()
		for i := 1; i <= s.Path.Len(); i++ {
			for _, r := range s.Refs[i-1].Slice() {
				q := byAddr[r]
				if q == nil {
					violations++
					continue
				}
				qp := q.Path()
				if qp.Len() < i || qp.Prefix(i-1) != s.Path.Prefix(i-1) || qp.Bit(i) == s.Path.Bit(i) {
					violations++
				}
			}
		}
	}
	return violations
}
