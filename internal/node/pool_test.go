package node

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/resilience"
	"pgrid/internal/store"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// startPooledCluster is startTCPCluster over the pooled multiplexed
// transport: n nodes, each served on a loopback listener, all routing
// their own traffic through one shared PoolTransport.
func startPooledCluster(t *testing.T, n int, cfg PoolConfig) ([]*Node, *PoolTransport, func()) {
	t.Helper()
	pt := NewPoolTransport(cfg)
	nodes := make([]*Node, n)
	servers := make([]*Server, n)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = New(addr.Addr(i), smallCfg(), pt, int64(2000+i))
		servers[i] = NewServer(nodes[i], ln)
		pt.SetEndpoint(addr.Addr(i), ln.Addr().String())
		go servers[i].Serve(ctx)
	}
	return nodes, pt, func() {
		cancel()
		for _, s := range servers {
			s.Close()
		}
		pt.Close()
	}
}

// startLegacyGobServer serves a node exactly the way the pre-binary
// release did: sequential gob frames, no sniffing. A binary hello arrives
// as an impossible gob length prefix, so ReadMessage errors and the
// connection drops unanswered — the behaviour the pool's negotiation
// fallback is built against. Returns the endpoint and an accept counter
// so tests can see how many dials actually reached the peer.
func startLegacyGobServer(t *testing.T, n *Node) (string, *atomic.Int64, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepts := &atomic.Int64{}
	var wg sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					m, err := wire.ReadMessage(br)
					if err != nil {
						return
					}
					if !n.Online() {
						return
					}
					if err := wire.WriteMessage(conn, n.Handle(m)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), accepts, func() { ln.Close(); wg.Wait() }
}

func TestPoolReusesConnections(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	const calls = 20
	for i := 0; i < calls; i++ {
		resp, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
		if err != nil {
			t.Fatal(err)
		}
		if resp.InfoResp == nil || resp.InfoResp.Addr != 0 {
			t.Fatalf("call %d: %+v", i, resp)
		}
	}
	st := pt.Stats()
	if st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (every later call reuses)", st.Dials)
	}
	if st.Reuses != calls-1 {
		t.Errorf("reuses = %d, want %d", st.Reuses, calls-1)
	}
	if st.Open != 1 {
		t.Errorf("open = %d, want 1", st.Open)
	}
}

// TestPoolMultiplexesConcurrentCalls pins the core mux property: with
// Size 1, many concurrent callers share the single warm connection (no
// per-call dials) and every one of them gets its own response back.
func TestPoolMultiplexesConcurrentCalls(t *testing.T) {
	nodes, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 1})
	defer stop()

	e := store.Entry{Key: bitpath.MustParse("01"), Name: "x", Holder: 3, Version: 1}
	if !nodes[0].Store().Apply(e) {
		t.Fatal("seed apply failed")
	}
	// Warm the pool so the herd below can never be first-caller dials.
	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := pt.Call(0, &wire.Message{Kind: wire.KindGet, From: addr.Nil,
					Get: &wire.GetReq{Key: e.Key, Name: "x"}})
				if err != nil {
					errs <- err
					return
				}
				if resp.GetResp == nil || !resp.GetResp.Found || resp.GetResp.Entry != e {
					errs <- fmt.Errorf("mux returned wrong payload: %+v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := pt.Stats()
	if st.Dials != 1 {
		t.Errorf("dials = %d, want 1: %d concurrent calls must multiplex, not dial", st.Dials, workers*perWorker)
	}
	if st.Reuses != workers*perWorker {
		t.Errorf("reuses = %d, want %d", st.Reuses, workers*perWorker)
	}
}

// TestPoolGrowsToSizeUnderSaturation pins the Size semantics: when every
// pooled connection has requests in flight and the pool is below Size, a
// new connection is dialed; once the pool is at Size, calls share the busy
// connections round-robin and the cap is never exceeded.
func TestPoolGrowsToSizeUnderSaturation(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	// Warm the pool: one connection.
	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	pp := pt.pool(0)
	pp.mu.Lock()
	if len(pp.conns) != 1 {
		pp.mu.Unlock()
		t.Fatalf("warm pool has %d conns, want 1", len(pp.conns))
	}
	first := pp.conns[0]
	pp.mu.Unlock()

	// Saturate the only connection: the next call must grow the pool.
	first.inflight.Add(1)
	defer first.inflight.Add(-1)
	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	st := pt.Stats()
	if st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (saturated pool below Size grows)", st.Dials)
	}
	if st.Open != 2 {
		t.Errorf("open = %d, want 2", st.Open)
	}

	// Saturate both: the pool is at Size, so further calls reuse
	// round-robin instead of dialing past the cap.
	pp.mu.Lock()
	var second *muxConn
	for _, c := range pp.conns {
		if c != first {
			second = c
		}
	}
	pp.mu.Unlock()
	if second == nil {
		t.Fatal("second connection not pooled")
	}
	second.inflight.Add(1)
	defer second.inflight.Add(-1)
	for i := 0; i < 5; i++ {
		if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
			t.Fatal(err)
		}
	}
	if st := pt.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (full pool must not exceed Size)", st.Dials)
	}
	if st := pt.Stats(); st.Open != 2 {
		t.Errorf("open = %d, want 2", st.Open)
	}
}

// TestPoolHelloTimeoutNotRememberedGobOnly: a peer that accepts the
// connection but answers the hello too slowly (timeout, not a dropped
// frame) falls back to gob for that connection only — fellBack stays
// false, so a later successful call cannot mark a possibly binary-capable
// peer gob-only.
func TestPoolHelloTimeoutNotRememberedGobOnly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() { // black hole: accept, read, never answer
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
		}
	}()

	pt := NewPoolTransport(PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 100 * time.Millisecond, Size: 2})
	defer pt.Close()
	pt.SetEndpoint(1, ln.Addr().String())

	mc, err := pt.dialConn(1, ln.Addr().String(), false, nil)
	if err != nil {
		t.Fatalf("dialConn after hello timeout: %v", err)
	}
	defer mc.close()
	if !mc.gob {
		t.Error("hello timeout must fall back to gob for the connection")
	}
	if mc.fellBack {
		t.Error("hello timeout must not set fellBack: the peer's codec is unknown")
	}
}

// TestGobOnlyMemoryAges: the gob-only flag expires after gobOnlyTTL, so a
// later dial re-probes the binary hello instead of downgrading the peer
// forever.
func TestGobOnlyMemoryAges(t *testing.T) {
	pp := &peerPool{}
	if pp.isGobOnly() {
		t.Fatal("fresh pool must not be gob-only")
	}
	pp.markGobOnly()
	if !pp.isGobOnly() {
		t.Fatal("markGobOnly must take effect immediately")
	}
	pp.mu.Lock()
	pp.gobOnlyUntil = time.Now().Add(-time.Second).UnixNano()
	pp.mu.Unlock()
	if pp.isGobOnly() {
		t.Fatal("expired gob-only memory must re-enable binary negotiation")
	}
}

// TestPoolUnpooledMode: Size 0 is the dial-per-call A/B baseline.
func TestPoolUnpooledMode(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 0})
	defer stop()

	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
			t.Fatal(err)
		}
	}
	st := pt.Stats()
	if st.Dials != calls || st.Reuses != 0 {
		t.Errorf("unpooled stats = %+v, want %d dials and 0 reuses", st, calls)
	}
	if st.Open != 0 {
		t.Errorf("unpooled mode left %d connections open", st.Open)
	}
}

// TestPoolConnDeathFailsTransient: a connection dying under in-flight
// requests fails them all with an ErrOffline-wrapped (Transient) error,
// and the next call recovers on a fresh dial.
func TestPoolConnDeathFailsTransient(t *testing.T) {
	nodes, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection on the next frame it reads.
	nodes[0].SetOnline(false)

	const callers = 8
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
			errc <- err
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err == nil {
			t.Fatal("call to an offline peer succeeded")
		}
		if !errors.Is(err, ErrOffline) {
			t.Fatalf("conn death error = %v, want ErrOffline wrap", err)
		}
		if Classify(err) != resilience.Transient {
			t.Fatalf("conn death classified %v, want Transient", Classify(err))
		}
	}
	st := pt.Stats()
	if st.ConnLost == 0 {
		t.Error("no connection recorded as lost with requests in flight")
	}

	nodes[0].SetOnline(true)
	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatalf("pool did not recover after peer came back: %v", err)
	}
	if got := pt.Stats().Dials; got <= st.Dials {
		t.Errorf("recovery did not dial fresh: dials %d → %d", st.Dials, got)
	}
}

// TestPoolIdleReap: a connection with no traffic is reaped by the janitor.
func TestPoolIdleReap(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2,
		IdleTimeout: 50 * time.Millisecond})
	defer stop()

	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		st := pt.Stats()
		if st.IdleClose >= 1 && st.Open == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("idle connection not reaped: %+v", pt.Stats())
}

// TestPoolGobFallback: dialing a legacy gob-only peer, the binary hello is
// dropped, the pool falls back to gob, and — once a gob call succeeds —
// remembers the peer so later dials skip the doomed hello entirely.
func TestPoolGobFallback(t *testing.T) {
	n := New(1, smallCfg(), NewLocalTransport(), 1)
	ep, accepts, stopSrv := startLegacyGobServer(t, n)
	defer stopSrv()

	tel := telemetry.New(-1)
	pt := NewPoolTransport(PoolConfig{DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	pt.SetTelemetry(tel)
	defer pt.Close()
	pt.SetEndpoint(1, ep)

	resp, err := pt.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil})
	if err != nil {
		t.Fatal(err)
	}
	if resp.InfoResp == nil || resp.InfoResp.Addr != 1 {
		t.Fatalf("fallback call answered %+v", resp)
	}
	// Two connections reached the peer: the dropped binary hello and the
	// gob retry. Only the surviving gob connection counts as a dial.
	if got := accepts.Load(); got != 2 {
		t.Errorf("legacy server accepted %d conns, want 2 (hello + gob fallback)", got)
	}
	if st := pt.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1", st.Dials)
	}
	if got := counterVal(t, tel, telemetry.Label("pgrid_pool_dials_codec_total", "codec", "gob")); got != 1 {
		t.Errorf("gob-labeled dials = %d, want 1", got)
	}

	// Reuse does not re-dial.
	if _, err := pt.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	if got := accepts.Load(); got != 2 {
		t.Errorf("reused call re-dialed: %d accepts", got)
	}

	// After eviction the peer is remembered as gob-only: exactly one new
	// connection, no binary hello attempt.
	pt.Evict(1)
	if _, err := pt.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil {
		t.Fatal(err)
	}
	if got := accepts.Load(); got != 3 {
		t.Errorf("gob-only redial accepted %d conns total, want 3 (no repeated hello)", got)
	}
}

// TestMixedCodecInterop is the acceptance interop matrix: a binary pooled
// dialer against the sniffing server, the same pool against a legacy
// gob-only peer, a forced-gob pool against the sniffing server, and the
// legacy one-shot transport against the sniffing server — data written
// through one codec reads back through the other.
func TestMixedCodecInterop(t *testing.T) {
	newNode := New(0, smallCfg(), NewLocalTransport(), 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newNode, ln)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	defer srv.Close()

	oldNode := New(1, smallCfg(), NewLocalTransport(), 11)
	legacyEP, _, stopLegacy := startLegacyGobServer(t, oldNode)
	defer stopLegacy()

	tel := telemetry.New(-1)
	pt := NewPoolTransport(PoolConfig{DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	pt.SetTelemetry(tel)
	defer pt.Close()
	pt.SetEndpoint(0, ln.Addr().String())
	pt.SetEndpoint(1, legacyEP)

	// Binary pool → sniffing server: write an entry over the binary codec.
	e := store.Entry{Key: bitpath.MustParse("10"), Name: "interop", Holder: 7, Version: 3}
	if _, err := pt.Call(0, &wire.Message{Kind: wire.KindApply, From: addr.Nil,
		Apply: &wire.ApplyReq{Entry: e}}); err != nil {
		t.Fatalf("binary apply: %v", err)
	}
	// Binary pool → legacy gob peer: negotiation falls back, call works.
	if resp, err := pt.Call(1, &wire.Message{Kind: wire.KindInfo, From: addr.Nil}); err != nil ||
		resp.InfoResp == nil || resp.InfoResp.Addr != 1 {
		t.Fatalf("pool → legacy peer = %+v, %v", resp, err)
	}

	// Legacy one-shot gob transport → sniffing server: read the entry the
	// binary codec wrote.
	old := NewTCPTransport(2 * time.Second)
	old.SetEndpoint(0, ln.Addr().String())
	got, err := old.Call(0, &wire.Message{Kind: wire.KindGet, From: addr.Nil,
		Get: &wire.GetReq{Key: e.Key, Name: "interop"}})
	if err != nil {
		t.Fatalf("legacy get: %v", err)
	}
	if got.GetResp == nil || !got.GetResp.Found || got.GetResp.Entry != e {
		t.Fatalf("entry written via binary, read via gob = %+v", got.GetResp)
	}

	// Forced-gob pool → sniffing server: the escape hatch speaks legacy
	// frames to a new server.
	gobPool := NewPoolTransport(PoolConfig{DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second,
		Size: 2, ForceGob: true})
	defer gobPool.Close()
	gobPool.SetEndpoint(0, ln.Addr().String())
	if resp, err := gobPool.Call(0, &wire.Message{Kind: wire.KindGet, From: addr.Nil,
		Get: &wire.GetReq{Key: e.Key, Name: "interop"}}); err != nil ||
		resp.GetResp == nil || resp.GetResp.Entry != e {
		t.Fatalf("forced-gob pool read = %+v, %v", resp, err)
	}

	// The telemetry saw both codecs dialed by the main pool.
	if bin := counterVal(t, tel, telemetry.Label("pgrid_pool_dials_codec_total", "codec", "binary")); bin < 1 {
		t.Errorf("binary dials = %d, want ≥ 1", bin)
	}
	if gob := counterVal(t, tel, telemetry.Label("pgrid_pool_dials_codec_total", "codec", "gob")); gob < 1 {
		t.Errorf("gob fallback dials = %d, want ≥ 1", gob)
	}
}

// TestTCPPooledExchangeAndQuery runs the full P-Grid protocol — meetings,
// splits, recursion, then routing — over the pooled multiplexed binary
// transport, proving the fast wire carries the actual algorithm and not
// just echo RPCs.
func TestTCPPooledExchangeAndQuery(t *testing.T) {
	nodes, pt, stop := startPooledCluster(t, 8, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	rng := rand.New(rand.NewSource(5))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		a := rng.Intn(len(nodes))
		b := rng.Intn(len(nodes) - 1)
		if b >= a {
			b++
		}
		nodes[a].Exchange(addr.Addr(b))
		sum := 0
		for _, n := range nodes {
			sum += n.Path().Len()
		}
		if float64(sum)/float64(len(nodes)) >= 2 {
			break
		}
	}
	sum := 0
	for _, n := range nodes {
		sum += n.Path().Len()
	}
	if float64(sum)/float64(len(nodes)) < 2 {
		t.Fatalf("pooled cluster did not reach depth 2 (avg %.2f)", float64(sum)/8)
	}

	for i := 0; i < 50; i++ {
		key := bitpath.Random(rng, 4)
		start := nodes[rng.Intn(len(nodes))]
		res := start.Query(key)
		if !res.Found {
			continue
		}
		var resp *Node
		for _, n := range nodes {
			if n.Addr() == res.Peer {
				resp = n
			}
		}
		if !bitpath.Comparable(resp.Path(), key) {
			t.Fatalf("query %s over pooled wire ended at %q", key, resp.Path())
		}
	}
	if st := pt.Stats(); st.Reuses <= st.Dials {
		t.Errorf("pool barely reused: %+v", st)
	}
}

// flakySwitch injects Transient failures between the resilient layer and
// the pool without touching the pool's own connections — the breaker sees
// failures while the warm sockets stay open, which is exactly the state
// the eviction hook exists for.
type flakySwitch struct {
	inner Transport
	fail  atomic.Bool
}

func (f *flakySwitch) Call(to addr.Addr, m *wire.Message) (*wire.Message, error) {
	if f.fail.Load() {
		return nil, fmt.Errorf("%w: injected failure for %v", ErrOffline, to)
	}
	return f.inner.Call(to, m)
}

// TestPoolBreakerEviction wires resilience onto the pool the way the
// binaries do — OnPeerState evicts on open — and pins the satellite
// contract: the breaker opening closes the peer's warm connections, and
// after recovery the half-open probe's single dial repopulates the pool
// so subsequent calls reuse it rather than re-dialing.
func TestPoolBreakerEviction(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	flaky := &flakySwitch{inner: pt}
	var evicted atomic.Int64
	rt := resilience.Wrap(flaky, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Breaker:  resilience.BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond},
		Classify: Classify,
		Seed:     1,
		Sleep:    func(time.Duration) {},
		OnPeerState: func(peer addr.Addr, from, to resilience.BreakerState) {
			if to == resilience.StateOpen {
				evicted.Add(1)
				pt.Evict(peer)
			}
		},
	})

	info := &wire.Message{Kind: wire.KindInfo, From: addr.Nil}
	if _, err := rt.Call(0, info); err != nil {
		t.Fatal(err)
	}
	if st := pt.Stats(); st.Open != 1 || st.Dials != 1 {
		t.Fatalf("warmup stats = %+v", st)
	}

	// Trip the breaker: Threshold consecutive Transient failures.
	flaky.fail.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := rt.Call(0, info); err == nil {
			t.Fatal("injected failure succeeded")
		}
	}
	if evicted.Load() != 1 {
		t.Fatalf("breaker open fired OnPeerState %d times, want 1", evicted.Load())
	}
	st := pt.Stats()
	if st.Evictions != 1 || st.Open != 0 {
		t.Fatalf("open breaker left pool warm: %+v", st)
	}

	// While open, calls fast-fail locally: no dials reach the pool.
	if _, err := rt.Call(0, info); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open breaker let a call through: %v", err)
	}
	if got := pt.Stats().Dials; got != st.Dials {
		t.Errorf("fast-fail dialed: %d → %d", st.Dials, got)
	}

	// Recovery: after the cooldown the half-open probe dials exactly once,
	// and every later call reuses that connection.
	flaky.fail.Store(false)
	time.Sleep(150 * time.Millisecond)
	if _, err := rt.Call(0, info); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	probe := pt.Stats()
	if probe.Dials != st.Dials+1 {
		t.Fatalf("half-open probe dials = %d, want %d", probe.Dials, st.Dials+1)
	}
	for i := 0; i < 5; i++ {
		if _, err := rt.Call(0, info); err != nil {
			t.Fatal(err)
		}
	}
	final := pt.Stats()
	if final.Dials != probe.Dials {
		t.Errorf("post-recovery calls re-dialed: %d → %d", probe.Dials, final.Dials)
	}
	if final.Reuses <= probe.Reuses {
		t.Errorf("post-recovery calls did not reuse the probe's connection: %+v", final)
	}
}

// TestPoolHalfOpenProbeReusesConnection covers the breaker tripping
// WITHOUT the eviction hook (failures above the pool, warm socket still
// healthy): the half-open probe must go out over the existing pooled
// connection, not a fresh dial.
func TestPoolHalfOpenProbeReusesConnection(t *testing.T) {
	_, pt, stop := startPooledCluster(t, 1, PoolConfig{
		DialTimeout: 2 * time.Second, IOTimeout: 2 * time.Second, Size: 2})
	defer stop()

	flaky := &flakySwitch{inner: pt}
	rt := resilience.Wrap(flaky, resilience.Options{
		Retry:    resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Breaker:  resilience.BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
		Classify: Classify,
		Seed:     2,
		Sleep:    func(time.Duration) {},
	})

	info := &wire.Message{Kind: wire.KindInfo, From: addr.Nil}
	if _, err := rt.Call(0, info); err != nil {
		t.Fatal(err)
	}
	flaky.fail.Store(true)
	for i := 0; i < 3; i++ {
		rt.Call(0, info)
	}
	tripped := pt.Stats()
	if tripped.Open != 1 || tripped.Dials != 1 {
		t.Fatalf("injected failures touched the pool: %+v", tripped)
	}

	flaky.fail.Store(false)
	time.Sleep(80 * time.Millisecond)
	if _, err := rt.Call(0, info); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	st := pt.Stats()
	if st.Dials != tripped.Dials {
		t.Errorf("half-open probe re-dialed a healthy pooled connection: %d → %d dials", tripped.Dials, st.Dials)
	}
	if st.Reuses != tripped.Reuses+1 {
		t.Errorf("half-open probe reuses = %d, want %d", st.Reuses, tripped.Reuses+1)
	}
}
