package node

import (
	"errors"

	"pgrid/internal/resilience"
	"pgrid/internal/wire"
)

// ErrMalformed reports a peer that answered, but with a response whose
// shape does not match the request — a nil payload or a mismatched kind.
// It is kept distinct from ErrOffline so misbehaving peers are not
// mistaken for churned ones: offline peers are worth retrying and probing,
// malformed ones are worth neither.
var ErrMalformed = errors.New("node: malformed response")

// Classify sorts this package's transport and protocol errors into
// resilience classes — the classifier wired into ResilientTransport by
// pgridnode, pgridctl, and the chaos tests:
//
//   - ErrOffline (lost datagrams, dead peers, dial failures) and breaker
//     fast-fails are Transient: a retry or an alternative reference may
//     succeed.
//   - wire.ErrCorrupt (undecodable frames) and ErrMalformed (wrong-shape
//     responses) are Corrupt: the peer is reachable but misbehaving.
//   - Everything else — application errors relayed from a live peer — is
//     Terminal: retrying the same request is waste; routing should
//     backtrack instead.
func Classify(err error) resilience.Class {
	switch {
	case errors.Is(err, wire.ErrCorrupt), errors.Is(err, ErrMalformed):
		return resilience.Corrupt
	case errors.Is(err, ErrOffline), errors.Is(err, resilience.ErrBreakerOpen):
		return resilience.Transient
	default:
		return resilience.Terminal
	}
}
