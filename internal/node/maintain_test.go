package node

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/wire"
)

func TestNodeMaintainDropsUnreachableRefs(t *testing.T) {
	c := NewCluster(64, smallCfg(), 21)
	rng := rand.New(rand.NewSource(21))
	buildCluster(t, c, 0.99*4, 80000, rng)

	n := c.Nodes[0]
	// Take one referenced peer per level offline.
	var killed []addr.Addr
	for level := 1; level <= n.Path().Len(); level++ {
		refs := n.Peer().RefsAt(level).Slice()
		if len(refs) > 0 {
			killed = append(killed, refs[0])
		}
	}
	for _, a := range killed {
		for _, cand := range c.Nodes {
			if cand.Addr() == a {
				cand.SetOnline(false)
			}
		}
	}
	res := n.Maintain(2)
	if res.Dropped == 0 {
		t.Fatalf("nothing dropped: %+v", res)
	}
	for level := 1; level <= n.Path().Len(); level++ {
		for _, r := range n.Peer().RefsAt(level).Slice() {
			for _, a := range killed {
				if r == a {
					t.Errorf("dead reference %v survived at level %d", r, level)
				}
			}
		}
	}
	if res.Messages < res.Probed {
		t.Errorf("res = %+v", res)
	}
}

func TestNodeMaintainRefillsFromBuddies(t *testing.T) {
	// Hand-build a 6-node cluster where buddies exist: nodes 0,1,2 at path
	// "0" (buddies), nodes 3,4,5 at "1" (buddies). Node 0 keeps only one
	// level-1 reference; maintenance must refill from that reference's
	// buddies.
	cfg := smallCfg()
	cfg.MaxL = 1
	c := NewCluster(6, cfg, 22)
	for i, n := range c.Nodes {
		bit := byte(0)
		if i >= 3 {
			bit = 1
		}
		if !n.Peer().ExtendFrom(bitpath.Empty, bit, addr.NewSet()) {
			t.Fatal("fixture extend failed")
		}
	}
	for i, n := range c.Nodes {
		for j := range c.Nodes {
			if (i < 3) == (j < 3) && i != j {
				n.Peer().AddBuddy(addr.Addr(j))
			}
		}
	}
	n0 := c.Nodes[0]
	n0.Peer().SetRefsAt(1, addr.NewSet(3))

	res := n0.Maintain(2)
	if res.Added == 0 {
		t.Fatalf("refill added nothing: %+v", res)
	}
	refs := n0.Peer().RefsAt(1)
	if refs.Len() < 3 || !refs.Contains(4) || !refs.Contains(5) {
		t.Errorf("refs after refill = %v", refs.String())
	}
	if refs.Len() > cfg.RefMax {
		t.Errorf("refmax exceeded: %d", refs.Len())
	}
}

// flapTransport fails the first `fails` calls to each address in down,
// then passes everything through — a peer whose session ends just before
// the probe and restarts right after (sessionful churn inside one
// maintenance round).
type flapTransport struct {
	inner Transport
	down  map[addr.Addr]int
}

func (f *flapTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	if n := f.down[to]; n > 0 {
		f.down[to] = n - 1
		return nil, ErrOffline
	}
	return f.inner.Call(to, msg)
}

func TestNodeMaintainNoSameRoundReadd(t *testing.T) {
	// Regression for the refill-resurrection bug: node 0 references peer 4,
	// whose session flaps — the probe fails, but by the time refill fetches
	// reference sets the peer answers again, and it appears in a live
	// reference's buddy list. The round must still evict it (Dropped and
	// the final set must agree); the NEXT round may re-learn it.
	cfg := smallCfg()
	cfg.MaxL = 1
	c := NewCluster(6, cfg, 24)
	for i, n := range c.Nodes {
		bit := byte(0)
		if i >= 3 {
			bit = 1
		}
		if !n.Peer().ExtendFrom(bitpath.Empty, bit, addr.NewSet()) {
			t.Fatal("fixture extend failed")
		}
	}
	for i, n := range c.Nodes {
		for j := range c.Nodes {
			if (i < 3) == (j < 3) && i != j {
				n.Peer().AddBuddy(addr.Addr(j))
			}
		}
	}
	n0 := c.Nodes[0]
	n0.Peer().SetRefsAt(1, addr.NewSet(3, 4))
	n0.tr = &flapTransport{inner: c.Transport, down: map[addr.Addr]int{4: 1}}

	res := n0.Maintain(2)
	if res.Dropped != 1 {
		t.Fatalf("flapping peer not dropped: %+v", res)
	}
	refs := n0.Peer().RefsAt(1)
	if refs.Contains(4) {
		t.Fatalf("dropped reference 4 re-added in the same round: %v", refs.String())
	}
	if !refs.Contains(5) {
		t.Errorf("refill skipped the legitimate candidate 5: %v", refs.String())
	}

	// Next round the peer is stably back: re-learning it is correct.
	res = n0.Maintain(2)
	if res.Dropped != 0 {
		t.Fatalf("stable round dropped something: %+v", res)
	}
	if !n0.Peer().RefsAt(1).Contains(4) {
		t.Errorf("returned peer 4 not re-learned next round: %v", n0.Peer().RefsAt(1).String())
	}
}

func TestNodeMaintainDetectsReplacedPeer(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxL = 1
	c := NewCluster(2, cfg, 23)
	c.Nodes[0].Exchange(1)
	if !c.Nodes[0].Peer().RefsAt(1).Contains(1) {
		t.Fatal("fixture: no reference")
	}
	// "Replace" node 1: a blank node takes over the address.
	replacement := New(1, cfg, c.Transport, 99)
	c.Transport.Register(replacement)

	res := c.Nodes[0].Maintain(2)
	if res.Dropped != 1 {
		t.Fatalf("replaced peer not dropped: %+v", res)
	}
	if c.Nodes[0].Peer().RefsAt(1).Contains(1) {
		t.Error("stale reference to replaced peer survived")
	}
}
