package node

import (
	"math/rand"

	"pgrid/internal/addr"
	"pgrid/internal/peer"
	"pgrid/internal/repair"
)

// CorruptConfig selects how many of each structural fault ChaosCorrupt
// injects. Counts are targets; the injector skips a corruption when no
// eligible victim remains (a flip needs a peer with enough replicas to
// out-vote it, a wipe needs a non-empty store) and reports what it
// actually did.
type CorruptConfig struct {
	// FlipPaths flips one path bit on that many peers — the arbitrary-state
	// corruption of arXiv 1809.04923. Victims are chosen among peers with
	// at least two buddies, so a strict replica majority can vote the
	// original path back.
	FlipPaths int
	// StaleRefs replaces that many directory references with addresses
	// that violate the Section 2 prefix invariant (a same-side peer).
	StaleRefs int
	// OrphanBuddies adds that many cross-partition buddy links.
	OrphanBuddies int
	// WipeStores clears that many peers' data stores.
	WipeStores int
	// DropEntries deletes that many individual index entries.
	DropEntries int
	Seed        int64
}

// CorruptReport counts the corruptions actually injected.
type CorruptReport struct {
	FlippedPaths    int
	StaledRefs      int
	OrphanedBuddies int
	WipedStores     int
	DroppedEntries  int
}

// ChaosCorrupt drives the cluster into an arbitrary corrupted state — the
// adversary the self-healing repair protocol must converge from. Only
// online peers are corrupted (offline ones are churn, already covered by
// the chaos transport), and every choice draws from the seeded rng, so a
// corruption run is reproducible.
func ChaosCorrupt(c *Cluster, cfg CorruptConfig) CorruptReport {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rep CorruptReport

	online := make([]*Node, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.Online() {
			online = append(online, n)
		}
	}
	if len(online) == 0 {
		return rep
	}
	pick := func() *Node { return online[rng.Intn(len(online))] }

	// Path flips: rewrite the peer's state under a path with one random
	// bit flipped. The reference sets are kept as-is — under the flipped
	// path some of them even look valid, which is exactly what makes the
	// fault undetectable locally: only the replica group's vote exposes it.
	flipped := map[addr.Addr]bool{}
	for try, done := 0, 0; done < cfg.FlipPaths && try < 20*cfg.FlipPaths+20; try++ {
		n := pick()
		s := n.Peer().Snapshot()
		if flipped[n.Addr()] || s.Path.Len() == 0 || s.Buddies.Len() < 2 {
			continue
		}
		bit := 1 + rng.Intn(s.Path.Len())
		bad := s.Path.Prefix(bit-1).AppendFlip(s.Path.Bit(bit)) + s.Path.Suffix(bit)
		if err := n.Peer().Restore(peer.Snapshot{
			Addr: s.Addr, Path: bad, Refs: s.Refs, Buddies: s.Buddies, Online: true,
		}); err == nil {
			flipped[n.Addr()] = true
			rep.FlippedPaths++
			done++
		}
	}

	// Stale references: swap a reference for a same-side peer — an address
	// that answers Info perfectly well but sits on the wrong side of the
	// level's bit, so only invariant validation catches it.
	for try, done := 0, 0; done < cfg.StaleRefs && try < 20*cfg.StaleRefs+20; try++ {
		n := pick()
		path := n.Path()
		if path.Len() == 0 {
			continue
		}
		level := 1 + rng.Intn(path.Len())
		refs := n.Peer().RefsAt(level)
		if refs.Len() == 0 {
			continue
		}
		var bad addr.Addr = addr.Nil
		for _, cand := range online {
			if cand.Addr() != n.Addr() && !refs.Contains(cand.Addr()) &&
				!repair.ValidRef(path, level, cand.Path()) {
				bad = cand.Addr()
				break
			}
		}
		if bad == addr.Nil {
			continue
		}
		victim := refs.Slice()[rng.Intn(refs.Len())]
		refs.Remove(victim)
		refs.Add(bad)
		n.Peer().SetRefsAt(level, refs)
		rep.StaledRefs++
		done++
	}

	// Orphan buddies: link replicas across partitions.
	for try, done := 0, 0; done < cfg.OrphanBuddies && try < 20*cfg.OrphanBuddies+20; try++ {
		n := pick()
		other := pick()
		if other.Addr() == n.Addr() || other.Path() == n.Path() {
			continue
		}
		n.Peer().AddBuddy(other.Addr())
		rep.OrphanedBuddies++
		done++
	}

	// Wipes and drops: data-layer corruption for the anti-entropy path.
	for try, done := 0, 0; done < cfg.WipeStores && try < 20*cfg.WipeStores+20; try++ {
		n := pick()
		if n.Store().Len() == 0 {
			continue
		}
		n.Store().Clear()
		rep.WipedStores++
		done++
	}
	for try, done := 0, 0; done < cfg.DropEntries && try < 20*cfg.DropEntries+20; try++ {
		n := pick()
		entries := n.Store().Entries()
		if len(entries) == 0 {
			continue
		}
		e := entries[rng.Intn(len(entries))]
		if n.Store().Delete(e.Key, e.Name) {
			rep.DroppedEntries++
			done++
		}
	}
	return rep
}
