package node

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

// Protocol-overhead benchmarks: the same operations as the shared-memory
// core benches, but through the message-passing node — the difference is
// the cost of living behind the wire protocol.

func benchCluster(b *testing.B, n int) *Cluster {
	b.Helper()
	cfg := core.Config{MaxL: 6, RefMax: 4, RecMax: 2, RecFanout: 2}
	c := NewCluster(n, cfg, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200*n; i++ {
		a := rng.Intn(n)
		bb := rng.Intn(n - 1)
		if bb >= a {
			bb++
		}
		c.Nodes[a].Exchange(addr.Addr(bb))
		if i%1000 == 0 && c.AvgPathLen() >= 0.99*6 {
			break
		}
	}
	return c
}

func BenchmarkNodeQuery(b *testing.B) {
	c := benchCluster(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitpath.FromUint(uint64(i), 6)
		c.Nodes[i%256].Query(key)
	}
}

func BenchmarkNodeExchange(b *testing.B) {
	cfg := core.Config{MaxL: 8, RefMax: 4, RecMax: 2, RecFanout: 2}
	c := NewCluster(512, cfg, 3)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rng.Intn(512)
		bb := rng.Intn(511)
		if bb >= a {
			bb++
		}
		c.Nodes[a].Exchange(addr.Addr(bb))
	}
}

func BenchmarkNodeApplyGet(b *testing.B) {
	c := benchCluster(b, 64)
	e := store.Entry{Key: bitpath.MustParse("010101"), Name: "bench", Holder: 1, Version: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Version = uint64(i + 1)
		c.Transport.Call(addr.Addr(i%64), &wire.Message{Kind: wire.KindApply, Apply: &wire.ApplyReq{Entry: e}})
		c.Transport.Call(addr.Addr(i%64), &wire.Message{Kind: wire.KindGet, Get: &wire.GetReq{Key: e.Key, Name: "bench"}})
	}
}
