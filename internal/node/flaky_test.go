package node

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

// flakyCluster builds a cluster whose nodes talk through a lossy wrapper.
func flakyCluster(n int, drop float64, seed int64) (*Cluster, *FlakyTransport) {
	base := NewLocalTransport()
	flaky := NewFlakyTransport(base, drop, seed)
	c := &Cluster{Transport: base, Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = New(addr.Addr(i), smallCfg(), flaky, seed+int64(i))
		base.Register(c.Nodes[i])
	}
	return c, flaky
}

func TestConstructionSurvivesMessageLoss(t *testing.T) {
	c, flaky := flakyCluster(64, 0.25, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 120000 && c.AvgPathLen() < 0.95*4; i++ {
		a := rng.Intn(64)
		b := rng.Intn(63)
		if b >= a {
			b++
		}
		c.Nodes[a].Exchange(addr.Addr(b))
	}
	if avg := c.AvgPathLen(); avg < 0.95*4 {
		t.Fatalf("construction stalled under 25%% loss: avg %.2f", avg)
	}
	dropped, total := flaky.Stats()
	if dropped == 0 || total == 0 {
		t.Fatalf("loss never injected: %d/%d", dropped, total)
	}
	frac := float64(dropped) / float64(total)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("observed drop rate %.3f, configured 0.25", frac)
	}
	// Whatever survived must be structurally sound.
	refs := 0
	for _, n := range c.Nodes {
		s := n.Peer().Snapshot()
		for _, rs := range s.Refs {
			refs += rs.Len()
		}
	}
	if v := c.CountInvariantViolations(); v > refs/20 {
		t.Errorf("%d/%d references invalid after lossy construction", v, refs)
	}
}

func TestQueriesSurviveMessageLoss(t *testing.T) {
	// Build reliably, then query over a 20%-lossy transport: individual
	// attempts may fail, but retrying from fresh entry points converges.
	c, _ := flakyCluster(64, 0, 2) // build loss-free (drop=0 wrapper)
	rng := rand.New(rand.NewSource(2))
	buildCluster(t, c, 0.99*4, 80000, rng)

	lossy := NewFlakyTransport(c.Transport, 0.2, 3)
	for _, n := range c.Nodes {
		n.tr = lossy
	}
	succ := 0
	const attempts = 200
	for i := 0; i < attempts; i++ {
		key := bitpath.Random(rng, 4)
		// Up to 3 tries from different entry points.
		for try := 0; try < 3; try++ {
			if c.Nodes[rng.Intn(64)].Query(key).Found {
				succ++
				break
			}
		}
	}
	if succ < attempts*9/10 {
		t.Fatalf("only %d/%d queries succeeded with retries under 20%% loss", succ, attempts)
	}
}

func TestMajorityReadSurvivesMessageLoss(t *testing.T) {
	c, _ := flakyCluster(64, 0, 4)
	rng := rand.New(rand.NewSource(4))
	buildCluster(t, c, 0.99*4, 80000, rng)

	lossy := NewFlakyTransport(c.Transport, 0.2, 5)
	cl := NewClient(lossy, 6)
	all := make([]addr.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		all[i] = n.Addr()
	}
	e := store.Entry{Key: bitpath.MustParse("0110"), Name: "f", Holder: 9, Version: 1}
	replicas, _ := cl.Publish(all[:8], e, 3, 3)
	if replicas == 0 {
		t.Fatal("publish reached nobody under loss")
	}
	res := cl.MajorityRead(all, e.Key, "f", 1, 64)
	if !res.Found || res.Entry.Holder != 9 {
		t.Fatalf("majority read under loss = %+v", res)
	}
}

func TestNewFlakyTransportValidation(t *testing.T) {
	base := NewLocalTransport()
	for _, bad := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("drop=%v accepted", bad)
				}
			}()
			NewFlakyTransport(base, bad, 1)
		}()
	}
}
