package node

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// TestTCPHistoryAcceptance is the acceptance test for the time-series
// plane: three real TCP nodes run history samplers while traced queries
// flow, then the federated dumps must (a) reproduce the client's own
// delta computation for windowed quantiles and rates, (b) carry a
// tail-bucket exemplar that resolves to a retrievable trace in the
// flight recorder, and (c) read a restarted peer as a counter reset,
// never a negative rate.
func TestTCPHistoryAcceptance(t *testing.T) {
	tr := NewTCPTransport(2 * time.Second)
	const nNodes = 3
	nodes := make([]*Node, nNodes)
	servers := make([]*Server, nNodes)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = New(addr.Addr(i), smallCfg(), tr, int64(1000+i))
		tel := telemetry.New(i)
		tel.EnableExemplars(0.99)
		nodes[i].SetTelemetry(tel)
		nodes[i].EnableTracing(trace.NewRecorder(256), 0)
		nodes[i].EnableHistory(telemetry.NewHistory(20*time.Millisecond, 10*time.Second))
		servers[i] = NewServer(nodes[i], ln)
		tr.SetEndpoint(addr.Addr(i), ln.Addr().String())
		go servers[i].Serve(ctx)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// The same routable fixture as TestTCPCollectCluster.
	spec := []struct {
		path string
		refs []addr.Addr
	}{
		{"0", []addr.Addr{1}},
		{"10", []addr.Addr{0, 2}},
		{"11", []addr.Addr{0, 1}},
	}
	for i, s := range spec {
		p := nodes[i].Peer()
		path := bitpath.MustParse(s.path)
		for level := 1; level <= path.Len(); level++ {
			if !p.ExtendFrom(path.Prefix(level-1), path.Bit(level), addr.NewSet(s.refs[level-1])) {
				t.Fatalf("fixture build failed at node %d level %d", i, level)
			}
		}
	}

	var samplers sync.WaitGroup
	for _, n := range nodes {
		samplers.Add(1)
		go func(n *Node) {
			defer samplers.Done()
			n.RunHistorySampler(ctx)
		}(n)
	}
	defer samplers.Wait()
	defer cancel() // runs before samplers.Wait: zero leaked goroutines

	// Wait for the immediate pre-traffic sample on every node, so each
	// ring has a clean baseline point.
	for _, n := range nodes {
		for n.History().Len() == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	// Drive traffic: fully-sampled traced queries through node 0 over TCP.
	cl := NewClient(tr, 42)
	base := nodes[0].Telemetry().MetricsSnapshot()
	rng := rand.New(rand.NewSource(7))
	const queries = 40
	for i := 0; i < queries; i++ {
		if _, err := cl.TraceQuery(0, bitpath.Random(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	final := nodes[0].Telemetry().MetricsSnapshot()
	clientHist, ok := final.Hist(servedQueryHist)
	if !ok || clientHist.Count != queries {
		t.Fatalf("client-side served hist = %+v (present %v), want %d observations", clientHist, ok, queries)
	}

	// Fetch node 0's history until the ring has absorbed all the traffic.
	var dump telemetry.HistoryDump
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		dump, err = cl.FetchHistory(0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := dump.Newest(); ok {
			if h, ok := p.Snap.Hist(servedQueryHist); ok && h.Count == queries {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never absorbed the traffic: %d points", len(dump.Points))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dump.IntervalNS != int64(20*time.Millisecond) || dump.Schema != telemetry.MetricsSchemaVersion {
		t.Fatalf("dump header = schema %d interval %d", dump.Schema, dump.IntervalNS)
	}

	// (a) Server-side windowed computation == the client's own delta
	// computation. The dump's baseline point predates the traffic and the
	// client's base snapshot likewise, so the delta histograms are
	// identical and every quantile must match exactly — the tolerance the
	// issue allows is for clock skew between the two baselines, and with
	// both pre-traffic there is none to absorb.
	wh, reset, ok := dump.WindowHist(servedQueryHist, 0)
	if !ok || reset {
		t.Fatalf("WindowHist: ok=%v reset=%v", ok, reset)
	}
	if wh.Count != clientHist.Count {
		t.Fatalf("windowed count = %d, client delta count = %d", wh.Count, clientHist.Count)
	}
	for _, p := range telemetry.QuantilePoints {
		if got, want := wh.Quantile(p), clientHist.Quantile(p); got != want {
			t.Errorf("windowed q%g = %d, client-side delta q%g = %d", p, got, p, want)
		}
	}
	serverRate, ok := dump.Rate(telemetry.StatServedTotal, 0)
	if !ok || serverRate <= 0 {
		t.Fatalf("server-side rate = %v, ok=%v", serverRate, ok)
	}
	// The client's rate over the same burst: counter delta over the dump's
	// span. The two denominators differ by at most one sampling interval,
	// so a generous factor bounds the comparison.
	baseServed, _ := base.Stat(telemetry.StatServedTotal)
	finalServed, _ := final.Stat(telemetry.StatServedTotal)
	clientRate := float64(finalServed-baseServed) / dump.Span().Seconds()
	if serverRate < clientRate/3 || serverRate > clientRate*3 {
		t.Errorf("server rate %.1f/s vs client delta rate %.1f/s: disagree beyond tolerance", serverRate, clientRate)
	}

	// (b) A tail-bucket exemplar resolves to a retrievable trace.
	traceID, atOrBelow, ok := wh.TailExemplar()
	if !ok {
		t.Fatalf("windowed hist carries no tail exemplar: %+v", wh)
	}
	if atOrBelow <= 0 {
		t.Fatalf("exemplar bucket bound = %d", atOrBelow)
	}
	_, traces, err := cl.FetchTraces(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, trc := range traces {
		if trc.TraceID == traceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("exemplar trace %x not retrievable from the flight recorder (%d traces held)", traceID, len(traces))
	}

	// The batched cluster crawl federates every ring.
	res := cl.CollectClusterHistory(0, 0, 0)
	if len(res.Dumps) != nNodes || len(res.Unreachable) != 0 {
		t.Fatalf("cluster history = %d dumps, unreachable %v", len(res.Dumps), res.Unreachable)
	}
	if res.Messages != 2*nNodes {
		t.Errorf("messages = %d, want %d (one info+history batch per peer)", res.Messages, 2*nNodes)
	}
	for a, d := range res.Dumps {
		if len(d.Points) == 0 {
			t.Errorf("peer %v contributed an empty dump", a)
		}
	}

	// (c) Restart node 2: fresh process state, fresh incarnation epoch, on
	// the same address. A watcher's point series spanning the restart must
	// read as one reset and a non-negative rate even though the absolute
	// counters went backwards.
	pre, ok := res.Dumps[2].Newest()
	if !ok {
		t.Fatal("node 2 dump empty before restart")
	}
	if preServed, _ := pre.Snap.Stat(telemetry.StatServedTotal); preServed == 0 {
		t.Fatal("node 2 served nothing before restart; reset assertion would be vacuous")
	}
	servers[2].Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	restarted := New(2, smallCfg(), tr, 2002)
	tel2 := telemetry.New(2)
	tel2.SetStart(time.Now().Add(time.Millisecond)) // a strictly newer incarnation
	restarted.SetTelemetry(tel2)
	restarted.EnableHistory(telemetry.NewHistory(20*time.Millisecond, 10*time.Second))
	srv2 := NewServer(restarted, ln)
	tr.SetEndpoint(2, ln.Addr().String())
	go srv2.Serve(ctx)
	defer srv2.Close()
	samplers.Add(1)
	go func() {
		defer samplers.Done()
		restarted.RunHistorySampler(ctx)
	}()

	post, err := cl.FetchMetrics(2)
	if err != nil {
		t.Fatal(err)
	}
	if post.SameEpoch(pre.Snap) {
		t.Fatalf("restarted node kept its epoch: pre %d post %d", pre.Snap.StartEpochNS, post.StartEpochNS)
	}
	watch := telemetry.HistoryDump{Schema: telemetry.MetricsSchemaVersion,
		Points: append(append([]telemetry.HistoryPoint{}, res.Dumps[2].Points...),
			telemetry.HistoryPoint{AtNS: time.Now().UnixNano(), Snap: post})}
	if got := watch.Resets(); got != 1 {
		t.Fatalf("resets across restart = %d, want 1", got)
	}
	rate, ok := watch.Rate(telemetry.StatServedTotal, 0)
	if !ok || rate < 0 {
		t.Fatalf("rate across restart = %v (ok=%v), must never be negative", rate, ok)
	}
}

// noHistoryTransport simulates a community where peers batch and answer
// metrics but predate KindHistory: the unknown kind comes back as the
// Terminal error a real old node's KindError produces.
type noHistoryTransport struct{ tr Transport }

func (t noHistoryTransport) Call(to addr.Addr, m *wire.Message) (*wire.Message, error) {
	if m.Kind == wire.KindHistory {
		return nil, errors.New("unexpected message kind history")
	}
	if m.Kind == wire.KindBatch {
		for _, sub := range m.Batch.Msgs {
			if sub.Kind == wire.KindHistory {
				return nil, errors.New("unexpected message kind history")
			}
		}
	}
	return t.tr.Call(to, m)
}

// TestFetchHistoryPreHistoryFallback proves the snapshot degradation: a
// peer too old for the history frame still yields a single-point dump
// carrying its current cumulative state.
func TestFetchHistoryPreHistoryFallback(t *testing.T) {
	c := localHealthCluster(t)
	tel := telemetry.New(1)
	c.Nodes[1].SetTelemetry(tel)
	tel.ServedRPCDone("query", 3*time.Millisecond, false)

	cl := NewClient(noHistoryTransport{c.Transport}, 42)
	dump, err := cl.FetchHistory(1, time.Minute, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Points) != 1 {
		t.Fatalf("fallback dump = %d points, want 1", len(dump.Points))
	}
	if h, ok := dump.Points[0].Snap.Hist(servedQueryHist); !ok || h.Count != 1 {
		t.Fatalf("fallback snapshot lost the hist: %+v (present %v)", h, ok)
	}
	// Single-point dumps degrade gracefully: instantaneous quantiles, no rates.
	if _, ok := dump.Rate(telemetry.StatServedTotal, 0); ok {
		t.Fatal("one-point dump reported a rate")
	}
	if wh, _, ok := dump.WindowHist(servedQueryHist, time.Minute); !ok || wh.Count != 1 {
		t.Fatalf("one-point windowed hist = %+v (ok %v)", wh, ok)
	}

	// A history-enabled node answering for real: empty ring, empty dump,
	// distinguishable from the fallback by its zero points.
	c.Nodes[2].EnableHistory(telemetry.NewHistory(time.Second, time.Minute))
	direct := NewClient(c.Transport, 43)
	empty, err := direct.FetchHistory(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Points) != 0 || empty.Schema != telemetry.MetricsSchemaVersion {
		t.Fatalf("unsampled ring dump = %+v", empty)
	}
}

// TestCollectClusterHistoryFallbacks proves a mixed-version community
// federates cleanly: pre-history peers contribute single-point snapshot
// dumps, offline peers land in Unreachable, and neither aborts the walk.
func TestCollectClusterHistoryFallbacks(t *testing.T) {
	c := localHealthCluster(t)
	for i := range c.Nodes {
		tel := telemetry.New(i)
		c.Nodes[i].SetTelemetry(tel)
		tel.ServedRPCDone("query", time.Duration(i+1)*time.Millisecond, false)
	}

	cl := NewClient(noHistoryTransport{c.Transport}, 42)
	res := cl.CollectClusterHistory(0, 0, 0)
	if len(res.Dumps) != 3 || len(res.Unreachable) != 0 {
		t.Fatalf("mixed-version collect = %d dumps, unreachable %v", len(res.Dumps), res.Unreachable)
	}
	for a, d := range res.Dumps {
		if len(d.Points) != 1 {
			t.Errorf("pre-history peer %v contributed %d points, want the 1-point fallback", a, len(d.Points))
		}
	}

	// History-enabled peers answer with their real rings over the same walk.
	for i := range c.Nodes {
		h := telemetry.NewHistory(time.Second, time.Minute)
		c.Nodes[i].EnableHistory(h)
		h.Record(c.Nodes[i].Telemetry().MetricsSnapshot())
		h.Record(c.Nodes[i].Telemetry().MetricsSnapshot())
	}
	res = NewClient(c.Transport, 44).CollectClusterHistory(0, 0, 0)
	if len(res.Dumps) != 3 {
		t.Fatalf("history collect = %d dumps", len(res.Dumps))
	}
	for a, d := range res.Dumps {
		if len(d.Points) != 2 {
			t.Errorf("peer %v dump = %d points, want 2", a, len(d.Points))
		}
	}

	// An offline peer is reported, never fatal.
	c.Nodes[2].SetOnline(false)
	res = NewClient(c.Transport, 45).CollectClusterHistory(0, 0, 0)
	if len(res.Dumps) != 2 || len(res.Unreachable) != 1 || res.Unreachable[0] != 2 {
		t.Fatalf("collect with 2 offline = %d dumps, unreachable %v", len(res.Dumps), res.Unreachable)
	}
}
