package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// ChaosConfig parameterizes a ChaosTransport. All probabilities are per
// call in [0, 1); zero values disable the corresponding fault.
type ChaosConfig struct {
	// Drop is the probability a call is lost outright (surfaces as
	// ErrOffline, like a lost datagram).
	Drop float64
	// LatencyBase and LatencyJitter delay every delivered call by
	// Base + uniform[0, Jitter) — the steady-state network latency.
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// TailProb adds TailLatency on top with this probability — the
	// long-tail stragglers hedged reads exist for.
	TailProb    float64
	TailLatency time.Duration
	// Corrupt is the probability a delivered response is mangled: an
	// undecodable frame (wire.ErrCorrupt), a response with its payload
	// stripped, or a response of the wrong kind — one of the three,
	// chosen per fault.
	Corrupt float64
	// Seed makes the fault sequence reproducible.
	Seed int64
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Total     int64 // calls seen
	Dropped   int64 // lost outright
	Blocked   int64 // refused by a partition edge
	Corrupted int64 // responses mangled
	Delayed   int64 // calls that slept
}

// ChaosTransport wraps a Transport with seeded adversarial faults: drops,
// latency injection (with a configurable tail), asymmetric partitions,
// response corruption, and per-peer slow modes. It is the full chaos
// harness behind the resilience soak tests — every protocol above it must
// keep its guarantees while the transport misbehaves in every way short
// of Byzantine forgery. The fault stream is lock-free (splitmix64 steps on
// one atomic state), so injection does not serialize concurrent callers.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig
	tel   *telemetry.Instruments
	state atomic.Uint64
	sleep func(time.Duration)

	mu      sync.RWMutex
	blocked map[[2]addr.Addr]bool       // from→to edges refused (asymmetric)
	slow    map[addr.Addr]time.Duration // extra latency per target peer

	total, dropped, blockedN, corrupted, delayed atomic.Int64
}

// NewChaosTransport wraps inner with the configured fault injection.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	for _, p := range []float64{cfg.Drop, cfg.TailProb, cfg.Corrupt} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("node: NewChaosTransport probability %v out of [0,1)", p))
		}
	}
	t := &ChaosTransport{
		inner:   inner,
		cfg:     cfg,
		sleep:   time.Sleep,
		blocked: make(map[[2]addr.Addr]bool),
		slow:    make(map[addr.Addr]time.Duration),
	}
	t.state.Store(uint64(cfg.Seed))
	return t
}

// SetTelemetry attaches instruments that count injected drops (nil
// disables). Call before the transport is shared.
func (t *ChaosTransport) SetTelemetry(tel *telemetry.Instruments) { t.tel = tel }

// Block refuses calls on the directed edge from→to (msg.From → target).
// Blocking one direction only is how asymmetric partitions — A can reach
// B but not vice versa — are built. Client calls carry from = addr.Nil.
func (t *ChaosTransport) Block(from, to addr.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocked[[2]addr.Addr{from, to}] = true
}

// Unblock heals one directed edge.
func (t *ChaosTransport) Unblock(from, to addr.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.blocked, [2]addr.Addr{from, to})
}

// Partition blocks both directions between every pair across the two
// groups — the symmetric split, built from the asymmetric primitive.
func (t *ChaosTransport) Partition(a, b []addr.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			t.blocked[[2]addr.Addr{x, y}] = true
			t.blocked[[2]addr.Addr{y, x}] = true
		}
	}
}

// Heal removes every partition edge.
func (t *ChaosTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocked = make(map[[2]addr.Addr]bool)
}

// SetSlow adds extra latency to every call targeting the peer (0 clears
// it) — the degraded-but-alive peer that breaks tail latency without ever
// failing a health check.
func (t *ChaosTransport) SetSlow(to addr.Addr, extra time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if extra <= 0 {
		delete(t.slow, to)
		return
	}
	t.slow[to] = extra
}

// Stats returns the fault tallies.
func (t *ChaosTransport) Stats() ChaosStats {
	return ChaosStats{
		Total:     t.total.Load(),
		Dropped:   t.dropped.Load(),
		Blocked:   t.blockedN.Load(),
		Corrupted: t.corrupted.Load(),
		Delayed:   t.delayed.Load(),
	}
}

// Call implements Transport.
func (t *ChaosTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	t.total.Add(1)

	t.mu.RLock()
	blocked := t.blocked[[2]addr.Addr{msg.From, to}]
	extra := t.slow[to]
	t.mu.RUnlock()
	if blocked {
		t.blockedN.Add(1)
		t.tel.RPCDropped(msg.Kind.String())
		return nil, fmt.Errorf("%w: %v → %v partitioned", ErrOffline, msg.From, to)
	}

	if d := t.delay(extra); d > 0 {
		t.delayed.Add(1)
		t.sleep(d)
	}

	if t.cfg.Drop > 0 && chaosFloat(chaosRand(&t.state)) < t.cfg.Drop {
		t.dropped.Add(1)
		t.tel.RPCDropped(msg.Kind.String())
		return nil, fmt.Errorf("%w: message to %v lost", ErrOffline, to)
	}

	resp, err := t.inner.Call(to, msg)
	if err != nil {
		return nil, err
	}

	if t.cfg.Corrupt > 0 && chaosFloat(chaosRand(&t.state)) < t.cfg.Corrupt {
		t.corrupted.Add(1)
		return t.mangle(to, resp)
	}
	return resp, nil
}

// delay computes this call's injected latency.
func (t *ChaosTransport) delay(extra time.Duration) time.Duration {
	d := t.cfg.LatencyBase + extra
	if t.cfg.LatencyJitter > 0 {
		d += time.Duration(chaosFloat(chaosRand(&t.state)) * float64(t.cfg.LatencyJitter))
	}
	if t.cfg.TailProb > 0 && chaosFloat(chaosRand(&t.state)) < t.cfg.TailProb {
		d += t.cfg.TailLatency
	}
	return d
}

// mangle corrupts a response one of three ways: an undecodable frame (the
// TCP transport would surface wire.ErrCorrupt), a response stripped of its
// payload, or a response of the wrong kind. The original message is never
// mutated — other transports may share it.
func (t *ChaosTransport) mangle(to addr.Addr, resp *wire.Message) (*wire.Message, error) {
	switch chaosRand(&t.state) % 3 {
	case 0:
		return nil, fmt.Errorf("%w: injected garbage from %v", wire.ErrCorrupt, to)
	case 1:
		// Right kind, no payload: the nil-sub-struct shape.
		return &wire.Message{Kind: resp.Kind, From: resp.From}, nil
	default:
		// Wrong kind entirely, payload gone with it.
		kind := wire.KindStatsResp
		if resp.Kind == wire.KindStatsResp {
			kind = wire.KindInfoResp
		}
		return &wire.Message{Kind: kind, From: resp.From}, nil
	}
}
