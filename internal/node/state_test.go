package node

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/store"
)

func TestStateRoundTrip(t *testing.T) {
	c := NewCluster(32, smallCfg(), 1)
	rng := rand.New(rand.NewSource(1))
	buildCluster(t, c, 0.9*4, 50000, rng)
	n := c.Nodes[5]
	n.Store().Apply(store.Entry{Key: bitpath.MustParse("0101"), Name: "f", Holder: 2, Version: 3})
	n.Store().Host(store.Entry{Key: bitpath.MustParse("0101"), Name: "mine", Holder: 5, Version: 1})
	n.Peer().AddBuddy(7)

	var buf bytes.Buffer
	if err := n.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A blank node with the same identity restores everything.
	n2 := New(n.Addr(), smallCfg(), c.Transport, 99)
	if err := n2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if n2.Path() != n.Path() {
		t.Errorf("path %q vs %q", n2.Path(), n.Path())
	}
	s1, s2 := n.Peer().Snapshot(), n2.Peer().Snapshot()
	for i := range s1.Refs {
		a, b := s1.Refs[i].Sorted(), s2.Refs[i].Sorted()
		if len(a) != len(b) {
			t.Fatalf("refs level %d: %v vs %v", i+1, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("refs level %d: %v vs %v", i+1, a, b)
			}
		}
	}
	if !s2.Buddies.Contains(7) {
		t.Error("buddies lost")
	}
	if e, ok := n2.Store().Get(bitpath.MustParse("0101"), "f"); !ok || e.Version != 3 {
		t.Errorf("index lost: %v %v", e, ok)
	}
	if len(n2.Store().Hosted()) != 1 {
		t.Error("hosted items lost")
	}
}

func TestStateRejectsWrongIdentity(t *testing.T) {
	c := NewCluster(2, smallCfg(), 2)
	var buf bytes.Buffer
	if err := c.Nodes[0].SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].LoadState(&buf); err == nil {
		t.Fatal("state of node 0 loaded into node 1")
	}
}

func TestStateRejectsGarbage(t *testing.T) {
	c := NewCluster(1, smallCfg(), 3)
	if err := c.Nodes[0].LoadState(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStateFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.state")

	c := NewCluster(4, smallCfg(), 4)
	c.Nodes[0].Exchange(1)
	c.Nodes[0].Store().Apply(store.Entry{Key: bitpath.MustParse("00"), Name: "x", Holder: 1, Version: 1})

	// Missing file: fresh start, no error.
	fresh := New(addr.Addr(0), smallCfg(), c.Transport, 5)
	if loaded, err := fresh.LoadStateFile(path); err != nil || loaded {
		t.Fatalf("missing file: loaded=%v err=%v", loaded, err)
	}

	if err := c.Nodes[0].SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	restarted := New(addr.Addr(0), smallCfg(), c.Transport, 6)
	loaded, err := restarted.LoadStateFile(path)
	if err != nil || !loaded {
		t.Fatalf("loaded=%v err=%v", loaded, err)
	}
	if restarted.Path() != c.Nodes[0].Path() {
		t.Errorf("path %q vs %q", restarted.Path(), c.Nodes[0].Path())
	}
	if restarted.Store().Len() != c.Nodes[0].Store().Len() {
		t.Error("index size differs after restart")
	}
}

// TestRestartKeepsAnsweringQueries is the end-to-end restart story: a node
// saves, "crashes", is recreated from disk, and still routes.
func TestRestartKeepsAnsweringQueries(t *testing.T) {
	c := NewCluster(64, smallCfg(), 7)
	rng := rand.New(rand.NewSource(7))
	buildCluster(t, c, 0.99*4, 80000, rng)

	dir := t.TempDir()
	victim := c.Nodes[10]
	path := filepath.Join(dir, "victim.state")
	if err := victim.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}

	// Crash + replace with a restored node under the same address.
	replacement := New(victim.Addr(), smallCfg(), c.Transport, 8)
	if _, err := replacement.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	c.Transport.Register(replacement) // takes over the address
	c.Nodes[10] = replacement

	succ := 0
	for i := 0; i < 100; i++ {
		key := bitpath.Random(rng, 4)
		if c.Nodes[rng.Intn(len(c.Nodes))].Query(key).Found {
			succ++
		}
	}
	if succ < 95 {
		t.Fatalf("only %d/100 queries succeeded after restart", succ)
	}
	// The restored node itself routes too.
	if !replacement.Query(bitpath.Random(rng, 4)).Found {
		t.Error("restored node cannot route")
	}
}
