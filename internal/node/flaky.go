package node

import (
	"fmt"
	"math/rand"
	"sync"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

// FlakyTransport wraps a Transport and drops a fraction of calls — the
// failure-injection harness for the networked protocols. A dropped call
// surfaces as an unreachable peer, exactly like a lost datagram or a
// connection reset, so every protocol must already tolerate it: queries
// backtrack, exchanges abort cleanly, publishes under-replicate (and
// majority reads absorb that).
type FlakyTransport struct {
	inner Transport
	tel   *telemetry.Instruments

	mu      sync.Mutex
	rng     *rand.Rand
	drop    float64
	dropped int64
	total   int64
}

// NewFlakyTransport wraps inner, dropping each call with probability drop.
func NewFlakyTransport(inner Transport, drop float64, seed int64) *FlakyTransport {
	if drop < 0 || drop >= 1 {
		panic(fmt.Sprintf("node: NewFlakyTransport(drop=%v) out of [0,1)", drop))
	}
	return &FlakyTransport{inner: inner, rng: rand.New(rand.NewSource(seed)), drop: drop}
}

// Call implements Transport.
func (t *FlakyTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	t.mu.Lock()
	t.total++
	lost := t.rng.Float64() < t.drop
	if lost {
		t.dropped++
	}
	t.mu.Unlock()
	if lost {
		t.tel.RPCDropped(msg.Kind.String())
		return nil, fmt.Errorf("%w: message to %v lost", ErrOffline, to)
	}
	return t.inner.Call(to, msg)
}

// SetTelemetry attaches instruments that count injected drops by message
// kind (nil disables). Call before the transport is shared.
func (t *FlakyTransport) SetTelemetry(tel *telemetry.Instruments) { t.tel = tel }

// Stats returns dropped and total call counts.
func (t *FlakyTransport) Stats() (dropped, total int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped, t.total
}
