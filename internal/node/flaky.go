package node

import (
	"fmt"
	"sync/atomic"

	"pgrid/internal/addr"
	"pgrid/internal/telemetry"
	"pgrid/internal/trace"
	"pgrid/internal/wire"
)

// chaosRand advances a shared splitmix64 state by one golden-ratio step
// and mixes it — a lock-free per-call random draw (the per-worker RNG
// pattern from the concurrent construction engine). Unlike a mutex-guarded
// rand.Rand, concurrent callers never serialize on it, so fault injection
// cannot mask the contention bugs it is meant to expose.
func chaosRand(state *atomic.Uint64) uint64 {
	return trace.Mix64(state.Add(0x9e3779b97f4a7c15))
}

// chaosFloat maps a draw onto [0, 1).
func chaosFloat(v uint64) float64 {
	return float64(v>>11) / (1 << 53)
}

// FlakyTransport wraps a Transport and drops a fraction of calls — the
// simplest failure-injection harness for the networked protocols. A
// dropped call surfaces as an unreachable peer, exactly like a lost
// datagram or a connection reset, so every protocol must already tolerate
// it: queries backtrack, exchanges abort cleanly, publishes
// under-replicate (and majority reads absorb that). For latency,
// partitions, and corruption, see ChaosTransport.
type FlakyTransport struct {
	inner Transport
	tel   *telemetry.Instruments

	state   atomic.Uint64
	drop    float64
	dropped atomic.Int64
	total   atomic.Int64
}

// NewFlakyTransport wraps inner, dropping each call with probability drop.
func NewFlakyTransport(inner Transport, drop float64, seed int64) *FlakyTransport {
	if drop < 0 || drop >= 1 {
		panic(fmt.Sprintf("node: NewFlakyTransport(drop=%v) out of [0,1)", drop))
	}
	t := &FlakyTransport{inner: inner, drop: drop}
	t.state.Store(uint64(seed))
	return t
}

// Call implements Transport.
func (t *FlakyTransport) Call(to addr.Addr, msg *wire.Message) (*wire.Message, error) {
	t.total.Add(1)
	if chaosFloat(chaosRand(&t.state)) < t.drop {
		t.dropped.Add(1)
		t.tel.RPCDropped(msg.Kind.String())
		return nil, fmt.Errorf("%w: message to %v lost", ErrOffline, to)
	}
	return t.inner.Call(to, msg)
}

// SetTelemetry attaches instruments that count injected drops by message
// kind (nil disables). Call before the transport is shared.
func (t *FlakyTransport) SetTelemetry(tel *telemetry.Instruments) { t.tel = tel }

// Stats returns dropped and total call counts.
func (t *FlakyTransport) Stats() (dropped, total int64) {
	return t.dropped.Load(), t.total.Load()
}
