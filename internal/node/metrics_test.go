package node

import (
	"errors"
	"testing"
	"time"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/telemetry"
	"pgrid/internal/wire"
)

const servedQueryHist = `pgrid_rpc_served_latency_ns{kind="query"}`

func TestFetchMetrics(t *testing.T) {
	c := localHealthCluster(t)
	tel := telemetry.New(1)
	c.Nodes[1].SetTelemetry(tel)
	tel.ServedRPCDone("query", 3*time.Millisecond, false)
	tel.ServedRPCDone("query", 40*time.Millisecond, true)

	cl := NewClient(c.Transport, 42)
	snap, err := cl.FetchMetrics(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != telemetry.MetricsSchemaVersion {
		t.Fatalf("schema = %d, want %d", snap.Schema, telemetry.MetricsSchemaVersion)
	}
	h, ok := snap.Hist(servedQueryHist)
	if !ok || h.Count != 2 {
		t.Fatalf("served hist = %+v (present %v), want 2 observations", h, ok)
	}
	if got, _ := snap.Stat(`pgrid_rpc_served_kind_errors_total{kind="query"}`); got != 1 {
		t.Fatalf("served error counter = %d, want 1", got)
	}

	// A telemetry-disabled peer still answers: schema stamped, tables empty.
	snap, err = cl.FetchMetrics(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != telemetry.MetricsSchemaVersion || len(snap.Hists) != 0 || len(snap.Stats) != 0 {
		t.Fatalf("telemetry-disabled snapshot = %+v", snap)
	}

	// An offline peer is a transport error, not a malformed response.
	c.Nodes[2].SetOnline(false)
	if _, err := cl.FetchMetrics(2); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline fetch err = %v, want ErrOffline", err)
	}
}

// TestTCPCollectCluster is the acceptance test for the observability
// plane: three real TCP nodes each observe a distinct latency stream, the
// collector federates their snapshots, and the merged per-kind quantiles
// must exactly match a histogram fed the union of all streams (merging is
// a bucket-wise sum, so no extra error is tolerated on top of the ≤3.2%
// the bucket geometry already bounds).
func TestTCPCollectCluster(t *testing.T) {
	nodes, tr, stop := startTCPCluster(t, 3)
	defer stop()
	spec := []struct {
		path string
		refs []addr.Addr
	}{
		{"0", []addr.Addr{1}},
		{"10", []addr.Addr{0, 2}},
		{"11", []addr.Addr{0, 1}},
	}
	union := telemetry.New(99)
	streams := [][]time.Duration{
		{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
		{500 * time.Microsecond, 80 * time.Millisecond, 81 * time.Millisecond, 82 * time.Millisecond},
		{10 * time.Millisecond, 11 * time.Millisecond, 900 * time.Millisecond},
	}
	for i, s := range spec {
		p := nodes[i].Peer()
		path := bitpath.MustParse(s.path)
		for level := 1; level <= path.Len(); level++ {
			if !p.ExtendFrom(path.Prefix(level-1), path.Bit(level), addr.NewSet(s.refs[level-1])) {
				t.Fatalf("fixture build failed at node %d level %d", i, level)
			}
		}
		tel := telemetry.New(i)
		nodes[i].SetTelemetry(tel)
		for _, d := range streams[i] {
			tel.ServedRPCDone("query", d, false)
			union.ServedRPCDone("query", d, false)
		}
	}

	cl := NewClient(tr, 42)
	res := cl.CollectCluster(0)
	if len(res.Snapshots) != 3 || len(res.Unreachable) != 0 {
		t.Fatalf("collect = %d snapshots, unreachable %v", len(res.Snapshots), res.Unreachable)
	}
	if len(res.Digests) != 3 {
		t.Fatalf("collect digests = %+v, want 3", res.Digests)
	}
	// Three logical requests per reachable peer (info+metrics+health).
	if res.Messages != 9 {
		t.Errorf("messages = %d, want 9", res.Messages)
	}

	merged := telemetry.QHistSnapshot{}
	var total int64
	for a, snap := range res.Snapshots {
		h, ok := snap.Hist(servedQueryHist)
		if !ok {
			t.Fatalf("peer %v snapshot lacks %s", a, servedQueryHist)
		}
		var err error
		if merged, err = telemetry.MergeQHist(merged, h); err != nil {
			t.Fatalf("merge: %v", err)
		}
		total += h.Count
	}
	if want := int64(len(streams[0]) + len(streams[1]) + len(streams[2])); total != want {
		t.Fatalf("merged count = %d, want %d", total, want)
	}
	uh, ok := union.MetricsSnapshot().Hist(servedQueryHist)
	if !ok {
		t.Fatal("union snapshot lacks served hist")
	}
	for _, p := range telemetry.QuantilePoints {
		got, want := merged.Quantile(p), uh.Quantile(p)
		if got != want {
			t.Errorf("merged q%g = %d, union-observed = %d", p, got, want)
		}
	}

	// A peer going offline mid-collect is reported unreachable — never an
	// error, and never hiding the rest of the cluster.
	nodes[2].SetOnline(false)
	res = cl.CollectCluster(0)
	if len(res.Snapshots) != 2 || len(res.Unreachable) != 1 || res.Unreachable[0] != 2 {
		t.Fatalf("collect with 2 offline = %d snapshots, unreachable %v", len(res.Snapshots), res.Unreachable)
	}
}

// TestCollectClusterPreMetricsFallback proves a mixed-version community
// collects cleanly: peers that refuse the batch envelope (and the metrics
// frame) still contribute their census digest, just not a snapshot.
func TestCollectClusterPreMetricsFallback(t *testing.T) {
	c := localHealthCluster(t)
	cl := NewClient(noHealthTransport{c.Transport}, 42)
	res := cl.CollectCluster(0)
	if len(res.Digests) != 3 {
		t.Fatalf("collect = %+v, want all 3 via Info fallback", res)
	}
	if len(res.Unreachable) != 0 {
		t.Fatalf("unreachable = %v, want none", res.Unreachable)
	}
}

// noMetricsTransport simulates a community where peers batch and answer
// health but predate KindMetrics.
type noMetricsTransport struct{ tr Transport }

func (t noMetricsTransport) Call(to addr.Addr, m *wire.Message) (*wire.Message, error) {
	if m.Kind == wire.KindMetrics || m.Kind == wire.KindBatch {
		return nil, errors.New("unexpected message kind")
	}
	return t.tr.Call(to, m)
}

func TestCollectClusterSequentialFallback(t *testing.T) {
	c := localHealthCluster(t)
	tel := telemetry.New(1)
	c.Nodes[1].SetTelemetry(tel)
	cl := NewClient(noMetricsTransport{c.Transport}, 42)
	res := cl.CollectCluster(0)
	if len(res.Digests) != 3 || len(res.Unreachable) != 0 {
		t.Fatalf("collect = %+v", res)
	}
	// The metrics frame was refused everywhere: digests survive, no snaps.
	if len(res.Snapshots) != 0 {
		t.Fatalf("snapshots = %v, want none from pre-metrics peers", res.Snapshots)
	}
	for _, d := range res.Digests {
		if len(d.RefCounts) == 0 {
			t.Errorf("digest %v lost structure: %+v", d.Addr, d)
		}
	}
}
