package node

import (
	"math/rand"
	"sync"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/core"
	"pgrid/internal/store"
	"pgrid/internal/wire"
)

func smallCfg() core.Config {
	return core.Config{MaxL: 4, RefMax: 3, RecMax: 2, RecFanout: 2}
}

func TestExchangeCase1OverTransport(t *testing.T) {
	c := NewCluster(2, smallCfg(), 1)
	if err := c.Nodes[0].Exchange(1); err != nil {
		t.Fatal(err)
	}
	p0, p1 := c.Nodes[0].Path(), c.Nodes[1].Path()
	if p0 != "0" || p1 != "1" {
		t.Fatalf("paths = %q, %q", p0, p1)
	}
	if rs := c.Nodes[0].Peer().RefsAt(1); !rs.Contains(1) {
		t.Errorf("node 0 refs = %v", rs.String())
	}
	if rs := c.Nodes[1].Peer().RefsAt(1); !rs.Contains(0) {
		t.Errorf("node 1 refs = %v", rs.String())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeOfflineTargetFails(t *testing.T) {
	c := NewCluster(2, smallCfg(), 2)
	c.Nodes[1].SetOnline(false)
	if err := c.Nodes[0].Exchange(1); err == nil {
		t.Fatal("exchange with offline peer succeeded")
	}
	if c.Nodes[0].Path().Len() != 0 {
		t.Error("failed exchange mutated state")
	}
}

func TestExchangeSelfIsNoOp(t *testing.T) {
	c := NewCluster(2, smallCfg(), 3)
	if err := c.Nodes[0].Exchange(0); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].Path().Len() != 0 {
		t.Error("self exchange mutated state")
	}
}

// buildCluster drives random meetings until the average path length
// converges or the budget runs out.
func buildCluster(t *testing.T, c *Cluster, target float64, budget int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < budget; i++ {
		a := rng.Intn(len(c.Nodes))
		b := rng.Intn(len(c.Nodes) - 1)
		if b >= a {
			b++
		}
		c.Nodes[a].Exchange(addr.Addr(b))
		if i%100 == 0 && c.AvgPathLen() >= target {
			return
		}
	}
	if c.AvgPathLen() < target {
		t.Fatalf("cluster did not converge: avg %.2f < %.2f", c.AvgPathLen(), target)
	}
}

func TestClusterConstructionSequential(t *testing.T) {
	c := NewCluster(64, smallCfg(), 4)
	rng := rand.New(rand.NewSource(4))
	buildCluster(t, c, 0.99*4, 50000, rng)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("sequential cluster construction broke invariants: %v", err)
	}
}

func TestClusterQueryAfterConstruction(t *testing.T) {
	c := NewCluster(64, smallCfg(), 5)
	rng := rand.New(rand.NewSource(5))
	buildCluster(t, c, 0.99*4, 50000, rng)

	for i := 0; i < 200; i++ {
		key := bitpath.Random(rng, 4)
		start := c.Nodes[rng.Intn(len(c.Nodes))]
		res := start.Query(key)
		if !res.Found {
			t.Fatalf("query %s from %v failed on converged cluster", key, start.Addr())
		}
		// The responsible node's path must be comparable with the key.
		var resp *Node
		for _, n := range c.Nodes {
			if n.Addr() == res.Peer {
				resp = n
			}
		}
		if !bitpath.Comparable(resp.Path(), key) {
			t.Fatalf("query %s ended at %q", key, resp.Path())
		}
	}
}

func TestClusterApplyAndGet(t *testing.T) {
	c := NewCluster(16, smallCfg(), 6)
	e := store.Entry{Key: bitpath.MustParse("0101"), Name: "f", Holder: 2, Version: 1}
	resp, err := c.Transport.Call(3, &wire.Message{Kind: wire.KindApply, From: 0, Apply: &wire.ApplyReq{Entry: e}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.ApplyResp.Changed {
		t.Error("fresh apply reported unchanged")
	}
	got, err := c.Transport.Call(3, &wire.Message{Kind: wire.KindGet, From: 0, Get: &wire.GetReq{Key: e.Key, Name: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.GetResp.Found || got.GetResp.Entry != e {
		t.Errorf("get = %+v", got.GetResp)
	}
}

func TestClusterInfo(t *testing.T) {
	c := NewCluster(2, smallCfg(), 7)
	c.Nodes[0].Exchange(1)
	resp, err := c.Transport.Call(0, &wire.Message{Kind: wire.KindInfo, From: 1})
	if err != nil {
		t.Fatal(err)
	}
	info := resp.InfoResp
	if info.Addr != 0 || info.Path != "0" || len(info.Refs) != 1 {
		t.Errorf("info = %+v", info)
	}
}

func TestUnknownKindIsError(t *testing.T) {
	c := NewCluster(2, smallCfg(), 8)
	if _, err := c.Transport.Call(0, &wire.Message{Kind: wire.KindQueryResp}); err == nil {
		t.Error("unexpected kind accepted")
	}
}

func TestDataHandoverOnNetworkSplit(t *testing.T) {
	c := NewCluster(2, smallCfg(), 9)
	// Node 0 indexes entries on both future sides.
	left := store.Entry{Key: bitpath.MustParse("00"), Name: "l", Holder: 0, Version: 1}
	right := store.Entry{Key: bitpath.MustParse("10"), Name: "r", Holder: 0, Version: 1}
	c.Nodes[0].Store().Apply(left)
	c.Nodes[0].Store().Apply(right)
	if err := c.Nodes[0].Exchange(1); err != nil {
		t.Fatal(err)
	}
	// Node 0 took side 0, node 1 side 1: "r" must have moved to node 1.
	if _, ok := c.Nodes[0].Store().Get(right.Key, "r"); ok {
		t.Error("node 0 kept an out-of-region entry")
	}
	if _, ok := c.Nodes[1].Store().Get(right.Key, "r"); !ok {
		t.Error("node 1 did not receive the handover")
	}
	if _, ok := c.Nodes[0].Store().Get(left.Key, "l"); !ok {
		t.Error("node 0 lost its own entry")
	}
}

func TestClusterConstructionConcurrent(t *testing.T) {
	// Drive meetings from many goroutines: the networked protocol must
	// stay safe (no panics, bounded state) and still converge. Optimistic
	// concurrency may leave a few stale references; they must be rare and
	// must not stop queries from succeeding.
	cfg := smallCfg()
	c := NewCluster(128, cfg, 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 3000; i++ {
				a := rng.Intn(len(c.Nodes))
				b := rng.Intn(len(c.Nodes) - 1)
				if b >= a {
					b++
				}
				c.Nodes[a].Exchange(addr.Addr(b))
			}
		}(w)
	}
	wg.Wait()

	if avg := c.AvgPathLen(); avg < 3.5 {
		t.Fatalf("concurrent cluster stalled at avg depth %.2f", avg)
	}
	for _, n := range c.Nodes {
		if n.Path().Len() > cfg.MaxL {
			t.Errorf("node %v exceeded maxl: %q", n.Addr(), n.Path())
		}
	}
	refs := 0
	for _, n := range c.Nodes {
		s := n.Peer().Snapshot()
		for _, rs := range s.Refs {
			if rs.Len() > cfg.RefMax {
				t.Errorf("node %v exceeded refmax: %d", n.Addr(), rs.Len())
			}
			refs += rs.Len()
		}
	}
	if v := c.CountInvariantViolations(); v > refs/20 {
		t.Errorf("%d of %d references violate the invariant (> 5%%)", v, refs)
	}

	rng := rand.New(rand.NewSource(11))
	succ := 0
	for i := 0; i < 200; i++ {
		key := bitpath.Random(rng, 4)
		if c.Nodes[rng.Intn(len(c.Nodes))].Query(key).Found {
			succ++
		}
	}
	if succ < 190 {
		t.Errorf("only %d/200 queries succeeded on concurrently built cluster", succ)
	}
}
