package health

import (
	"strings"
	"sync"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
	"pgrid/internal/store"
)

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker()
	tr.Observe(1, true)
	tr.Observe(1, true)
	tr.Observe(1, false)
	tr.Observe(3, false)
	tr.RoundDone()

	probes := tr.Snapshot()
	want := []LevelProbe{{Level: 1, Live: 2, Dead: 1}, {Level: 3, Live: 0, Dead: 1}}
	if len(probes) != len(want) {
		t.Fatalf("snapshot = %+v, want %+v", probes, want)
	}
	for i := range want {
		if probes[i] != want[i] {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, probes[i], want[i])
		}
	}
	if tr.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", tr.Rounds())
	}

	if r, ok := probes[0].Ratio(); !ok || r < 0.66 || r > 0.67 {
		t.Errorf("level 1 ratio = %v/%v, want 2/3", r, ok)
	}
	if r, ok := OverallRatio(probes); !ok || r != 0.5 {
		t.Errorf("overall ratio = %v/%v, want 0.5", r, ok)
	}
	if r, ok := MinLevelRatio(probes); !ok || r != 0 {
		t.Errorf("min level ratio = %v/%v, want 0 (level 3 is all dead)", r, ok)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Observe(1, true) // must not panic
	tr.RoundDone()
	if tr.Rounds() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracker reported data")
	}
}

func TestTrackerClampsLevels(t *testing.T) {
	tr := NewTracker()
	tr.Observe(-3, true)
	tr.Observe(MaxLevels+10, false)
	probes := tr.Snapshot()
	if len(probes) != 2 || probes[0].Level != 0 || probes[1].Level != MaxLevels {
		t.Fatalf("clamped snapshot = %+v", probes)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Observe(1+i%4, i%2 == 0)
			}
			tr.RoundDone()
		}()
	}
	wg.Wait()
	var total int64
	for _, l := range tr.Snapshot() {
		total += l.Live + l.Dead
	}
	if total != 8000 || tr.Rounds() != 8 {
		t.Errorf("total probes = %d rounds = %d, want 8000/8", total, tr.Rounds())
	}
}

func TestRatiosWithoutData(t *testing.T) {
	if _, ok := OverallRatio(nil); ok {
		t.Error("OverallRatio(nil) reported data")
	}
	if _, ok := MinLevelRatio(nil); ok {
		t.Error("MinLevelRatio(nil) reported data")
	}
	if _, ok := (LevelProbe{Level: 2}).Ratio(); ok {
		t.Error("empty LevelProbe reported a ratio")
	}
}

func TestDigestOf(t *testing.T) {
	p := peer.New(7)
	if !p.ExtendFrom(bitpath.Empty, 0, addr.NewSet(1, 2)) {
		t.Fatal("extend failed")
	}
	if !p.ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(3)) {
		t.Fatal("extend failed")
	}
	p.AddBuddy(9)
	p.Store().Apply(store.Entry{Key: bitpath.MustParse("0101"), Name: "a", Holder: 1, Version: 5})
	p.Store().Apply(store.Entry{Key: bitpath.MustParse("0110"), Name: "b", Holder: 2, Version: 9})

	probes := []LevelProbe{{Level: 1, Live: 3, Dead: 1}}
	d := Of(p, probes)
	if d.Addr != 7 || d.Path != bitpath.MustParse("01") {
		t.Fatalf("digest identity wrong: %+v", d)
	}
	if d.Entries != 2 || d.MaxVersion != 9 || d.IndexHash == 0 {
		t.Errorf("store fingerprint wrong: %+v", d)
	}
	if len(d.RefCounts) != 2 || d.RefCounts[0] != 2 || d.RefCounts[1] != 1 {
		t.Errorf("ref counts = %v, want [2 1]", d.RefCounts)
	}
	if d.Buddies != 1 {
		t.Errorf("buddies = %d, want 1", d.Buddies)
	}
	if len(d.Liveness) != 1 || d.Liveness[0] != probes[0] {
		t.Errorf("liveness = %+v", d.Liveness)
	}

	s := d.String()
	for _, want := range []string{"addr(7)", "path=01", "entries=2", "liveness=0.75"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if empty := Of(peer.New(1), nil).String(); !strings.Contains(empty, "path=ε") {
		t.Errorf("empty-path digest renders %q", empty)
	}
}

// TestDigestHashDivergence pins what the crawler's divergence check relies
// on: replicas with identical indexes share a hash, replicas that differ in
// any entry do not.
func TestDigestHashDivergence(t *testing.T) {
	mk := func(versions ...uint64) Digest {
		p := peer.New(1)
		for i, v := range versions {
			p.Store().Apply(store.Entry{Key: bitpath.MustParse("01"), Name: string(rune('a' + i)), Holder: 2, Version: v})
		}
		return Of(p, nil)
	}
	a, b, c := mk(3, 8), mk(3, 8), mk(3, 9)
	if a.IndexHash != b.IndexHash {
		t.Errorf("equal indexes hash differently: %x vs %x", a.IndexHash, b.IndexHash)
	}
	if a.IndexHash == c.IndexHash {
		t.Errorf("diverged indexes share hash %x", a.IndexHash)
	}
	if a.MaxVersion != 8 || c.MaxVersion != 9 {
		t.Errorf("max versions: %d, %d", a.MaxVersion, c.MaxVersion)
	}
}
