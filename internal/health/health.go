// Package health implements grid-structure observability for P-Grid
// communities: the compact replica digest one peer publishes about itself,
// and the per-level reference-liveness tracker fed by the background
// prober.
//
// The paper's availability guarantee is structural — a search succeeds
// with probability (1-(1-p)^refmax)^k (Eq. 3) only while every level of a
// peer's reference table still holds live alternatives and every path
// keeps enough replicas. Metrics and traces observe *queries*; this
// package observes the *structure* queries depend on, so degradation
// (thinning replica groups, dying references, stale replicas) is visible
// before searches start failing. The community crawler (internal/node)
// collects digests across the trie and internal/analysis turns them into
// a structural report with the Eq. 3 availability check.
package health

import (
	"fmt"
	"strings"
	"sync/atomic"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/peer"
)

// MaxLevels bounds the per-level probe counters; probes at deeper levels
// are clamped into the last bucket (paths deeper than 32 bits do not occur
// at the paper's scales).
const MaxLevels = 32

// LevelProbe is the probe tally for one reference-table level: how many
// sampled references answered (and validated) and how many did not.
type LevelProbe struct {
	// Level is the 1-based reference-table level probed.
	Level int
	// Live counts probes that found a reachable peer whose path still
	// satisfies the Section 2 reference property.
	Live int64
	// Dead counts probes that found the reference unreachable or invalid.
	Dead int64
}

// Ratio returns the level's liveness ratio Live/(Live+Dead), and false
// when the level has no probes yet.
func (l LevelProbe) Ratio() (float64, bool) {
	total := l.Live + l.Dead
	if total == 0 {
		return 0, false
	}
	return float64(l.Live) / float64(total), true
}

// Digest is the compact self-description one peer publishes about its
// place in the grid: its responsibility path, a fingerprint of its index,
// its reference-table shape, and the liveness its prober has measured.
// Digests ride in wire.KindHealthResp messages and are what the community
// crawler aggregates into the structural report.
type Digest struct {
	// Addr is the peer described; Path its current responsibility path.
	Addr addr.Addr
	Path bitpath.Path
	// Entries, MaxVersion and IndexHash are the store fingerprint
	// (store.Summary): replica divergence shows up as differing hashes
	// and version lags within one replica group.
	Entries    int
	MaxVersion uint64
	IndexHash  uint64
	// RefCounts[i] is the number of references held at level i+1 —
	// the structural refmax the Eq. 3 prediction plugs in per level.
	RefCounts []int
	// Buddies is the number of replicas the peer knows for its own path.
	Buddies int
	// Liveness is the prober's per-level tally (nil when probing is off
	// or the peer predates health probing).
	Liveness []LevelProbe
}

// String renders the digest as one diagnostic line.
func (d Digest) String() string {
	var sb strings.Builder
	path := "ε"
	if d.Path.Len() > 0 {
		path = string(d.Path)
	}
	fmt.Fprintf(&sb, "%v path=%s entries=%d maxver=%d hash=%016x buddies=%d refs=%v",
		d.Addr, path, d.Entries, d.MaxVersion, d.IndexHash, d.Buddies, d.RefCounts)
	if r, ok := OverallRatio(d.Liveness); ok {
		fmt.Fprintf(&sb, " liveness=%.2f", r)
	}
	return sb.String()
}

// Of builds the digest of a live peer from a consistent snapshot of its
// routing state, its store fingerprint, and the given probe tally. Both
// the networked node (answering KindHealth) and the simulator (feeding
// the analyzer directly) digest peers through this one function, so their
// reports are directly comparable.
func Of(p *peer.Peer, probes []LevelProbe) Digest {
	s := p.Snapshot()
	sum := p.Store().Summary()
	refCounts := make([]int, len(s.Refs))
	for i, r := range s.Refs {
		refCounts[i] = r.Len()
	}
	return Digest{
		Addr:       s.Addr,
		Path:       s.Path,
		Entries:    sum.Entries,
		MaxVersion: sum.MaxVersion,
		IndexHash:  sum.Hash,
		RefCounts:  refCounts,
		Buddies:    s.Buddies.Len(),
		Liveness:   probes,
	}
}

// OverallRatio pools a probe tally into one liveness ratio, and false when
// no level has probes.
func OverallRatio(probes []LevelProbe) (float64, bool) {
	var live, total int64
	for _, l := range probes {
		live += l.Live
		total += l.Live + l.Dead
	}
	if total == 0 {
		return 0, false
	}
	return float64(live) / float64(total), true
}

// MinLevelRatio returns the worst per-level liveness ratio — the readiness
// signal /healthz gates on, because one starved level breaks routing for
// the whole subtree below it — and false when no level has probes yet.
func MinLevelRatio(probes []LevelProbe) (float64, bool) {
	min, ok := 0.0, false
	for _, l := range probes {
		r, has := l.Ratio()
		if !has {
			continue
		}
		if !ok || r < min {
			min, ok = r, true
		}
	}
	return min, ok
}

// Tracker accumulates reference-probe outcomes per level. All methods are
// nil-safe no-ops (a node without probing threads a nil *Tracker), and all
// mutation is atomic, so the prober goroutine, the RPC handler, and the
// admin endpoint share one tracker without locks.
type Tracker struct {
	rounds atomic.Int64
	levels [MaxLevels + 1]levelCounts
}

type levelCounts struct {
	live atomic.Int64
	dead atomic.Int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Observe records one probe outcome at the given 1-based level.
func (t *Tracker) Observe(level int, live bool) {
	if t == nil {
		return
	}
	if level < 0 {
		level = 0
	}
	if level > MaxLevels {
		level = MaxLevels
	}
	if live {
		t.levels[level].live.Add(1)
	} else {
		t.levels[level].dead.Add(1)
	}
}

// RoundDone records the completion of one probe round.
func (t *Tracker) RoundDone() {
	if t == nil {
		return
	}
	t.rounds.Add(1)
}

// Rounds returns the number of completed probe rounds (0 on nil).
func (t *Tracker) Rounds() int64 {
	if t == nil {
		return 0
	}
	return t.rounds.Load()
}

// Snapshot returns the tally of every level that has at least one probe,
// ascending by level. Nil-safe: a nil tracker returns nil.
func (t *Tracker) Snapshot() []LevelProbe {
	if t == nil {
		return nil
	}
	var out []LevelProbe
	for level := range t.levels {
		live, dead := t.levels[level].live.Load(), t.levels[level].dead.Load()
		if live+dead == 0 {
			continue
		}
		out = append(out, LevelProbe{Level: level, Live: live, Dead: dead})
	}
	return out
}
