// Package slo turns latency histograms into service-level verdicts: each
// objective ("query p99 < 5ms") defines an error budget, and the engine
// tracks how fast that budget burns over multiple windows. Burn rate is
// the SRE workbook quantity — the fraction of requests breaking the
// threshold divided by the fraction the objective allows — so burn 1.0
// consumes the budget exactly on schedule, burn 10 exhausts a 30-day
// budget in 3 days, and sustained burn ≥ 1 on every window is a breach.
//
// The engine consumes the mergeable histogram snapshots from
// internal/telemetry: good events are observations at or below the
// threshold (QHistSnapshot.CountAtOrBelow), so the same math evaluates a
// single node's live registry and a whole cluster's merged histogram.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pgrid/internal/telemetry"
)

// Objective is one latency service-level objective: at least Quantile of
// RPCs of this kind must complete within Threshold. The quantile doubles
// as the good-event target — "p99 < 5ms" means 99% of requests under 5ms,
// leaving a 1% error budget.
type Objective struct {
	Kind      string        // message kind the objective covers, e.g. "query"
	Quantile  float64       // target fraction in (0, 1), e.g. 0.99
	Threshold time.Duration // latency bound for a "good" request
}

// String renders the objective in its parseable spec form.
func (o Objective) String() string {
	q := strconv.FormatFloat(o.Quantile, 'f', -1, 64)
	return fmt.Sprintf("%s:p%s:%s", o.Kind, strings.TrimPrefix(q, "0."), o.Threshold)
}

// HistName returns the served-latency histogram the objective reads.
func (o Objective) HistName() string {
	return fmt.Sprintf("pgrid_rpc_served_latency_ns{kind=%q}", o.Kind)
}

// Budget returns the allowed bad fraction, 1 − Quantile.
func (o Objective) Budget() float64 { return 1 - o.Quantile }

// Parse reads one objective spec of the form "kind:pNN:threshold", e.g.
// "query:p99:5ms" or "exchange:p999:250ms". The digits after p are read as
// a decimal fraction: p50 → 0.5, p99 → 0.99, p999 → 0.999.
func Parse(spec string) (Objective, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) != 3 {
		return Objective{}, fmt.Errorf("slo: objective %q: want kind:pNN:threshold", spec)
	}
	o := Objective{Kind: strings.TrimSpace(parts[0])}
	if o.Kind == "" {
		return Objective{}, fmt.Errorf("slo: objective %q: empty kind", spec)
	}
	q := strings.TrimSpace(parts[1])
	if len(q) < 2 || (q[0] != 'p' && q[0] != 'P') {
		return Objective{}, fmt.Errorf("slo: objective %q: quantile %q must look like p99", spec, q)
	}
	digits := q[1:]
	n, err := strconv.ParseUint(digits, 10, 32)
	if err != nil {
		return Objective{}, fmt.Errorf("slo: objective %q: quantile %q: %v", spec, q, err)
	}
	scale := 1.0
	for range digits {
		scale *= 10
	}
	o.Quantile = float64(n) / scale
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return Objective{}, fmt.Errorf("slo: objective %q: quantile %v outside (0, 1)", spec, o.Quantile)
	}
	if o.Threshold, err = time.ParseDuration(strings.TrimSpace(parts[2])); err != nil {
		return Objective{}, fmt.Errorf("slo: objective %q: threshold: %v", spec, err)
	}
	if o.Threshold <= 0 {
		return Objective{}, fmt.Errorf("slo: objective %q: non-positive threshold", spec)
	}
	return o, nil
}

// ParseList reads a comma-separated list of objective specs, skipping
// empty elements, e.g. "query:p99:5ms,exchange:p95:50ms".
func ParseList(specs string) ([]Objective, error) {
	var out []Objective
	for _, s := range strings.Split(specs, ",") {
		if strings.TrimSpace(s) == "" {
			continue
		}
		o, err := Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Windows are the burn-rate evaluation horizons: the short window catches
// a fast burn while it is happening, the long one filters out blips.
var Windows = []time.Duration{5 * time.Minute, time.Hour}

// WindowBurn is the budget consumption over one horizon.
type WindowBurn struct {
	Window    time.Duration `json:"window_ns"`
	Good      int64         `json:"good"`  // in-threshold events in the window
	Total     int64         `json:"total"` // all events in the window
	BadFrac   float64       `json:"bad_frac"`
	Burn      float64       `json:"burn"` // BadFrac / objective budget
	Exceeded  bool          `json:"exceeded"`
	SampledAt time.Duration `json:"sampled_ns"` // actual span covered (≤ Window)
}

// Status is the verdict for one objective across every window.
type Status struct {
	Objective Objective    `json:"-"`
	Spec      string       `json:"objective"`
	Windows   []WindowBurn `json:"windows"`
	// Breached is true when every window with data burns at rate ≥ 1 —
	// the multi-window alert condition, immune to both stale averages
	// (long window alone) and momentary spikes (short window alone).
	Breached bool `json:"breached"`
}

// Eval is the one-shot, whole-of-history evaluation used for cluster
// reports: the histogram is the window. Burn ≥ 1 means the observed bad
// fraction exceeds the objective's budget.
func Eval(o Objective, h telemetry.QHistSnapshot) Status {
	good := h.CountAtOrBelow(int64(o.Threshold))
	w := burnOf(o, good, h.Count, 0, 0)
	return Status{Objective: o, Spec: o.String(),
		Windows: []WindowBurn{w}, Breached: w.Exceeded}
}

func burnOf(o Objective, good, total int64, window, span time.Duration) WindowBurn {
	w := WindowBurn{Window: window, Good: good, Total: total, SampledAt: span}
	if total <= 0 {
		return w
	}
	w.BadFrac = float64(total-good) / float64(total)
	if b := o.Budget(); b > 0 {
		w.Burn = w.BadFrac / b
	}
	w.Exceeded = w.Burn >= 1
	return w
}

// sample is one cumulative observation of an objective's counters.
type sample struct {
	at    time.Time
	good  int64
	total int64
}

// Engine tracks burn rates for a set of objectives from periodic metric
// snapshots. Feed it with Tick at any cadence; it diffs the cumulative
// histogram counters across each window. The clock is injectable so tests
// drive hours of budget history in microseconds.
type Engine struct {
	mu         sync.Mutex
	objectives []Objective
	windows    []time.Duration
	now        func() time.Time
	hist       map[string][]sample // objective spec → time-ordered samples
}

// NewEngine builds an engine over the default Windows. now==nil uses the
// wall clock.
func NewEngine(objectives []Objective, now func() time.Time) *Engine {
	if now == nil {
		now = time.Now
	}
	ws := make([]time.Duration, len(Windows))
	copy(ws, Windows)
	return &Engine{objectives: objectives, windows: ws, now: now,
		hist: make(map[string][]sample)}
}

// Objectives returns the engine's objectives (nil-safe).
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.objectives
}

// Tick records one snapshot of the node's metrics. Counters are
// cumulative; a shrinking total means the process restarted, and the
// objective's history resets rather than producing a negative burn.
func (e *Engine) Tick(snap telemetry.MetricsSnapshot) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	keep := now.Add(-e.maxWindow() - time.Minute)
	for _, o := range e.objectives {
		key := o.String()
		h, _ := snap.Hist(o.HistName())
		s := sample{at: now, good: h.CountAtOrBelow(int64(o.Threshold)), total: h.Count}
		hist := e.hist[key]
		if n := len(hist); n > 0 && s.total < hist[n-1].total {
			hist = nil // counter reset: a restart, not time running backward
		}
		hist = append(hist, s)
		// Prune everything older than the longest window (keep one sample
		// beyond the boundary so full-width deltas stay available).
		cut := 0
		for cut < len(hist)-1 && hist[cut+1].at.Before(keep) {
			cut++
		}
		e.hist[key] = hist[cut:]
	}
}

func (e *Engine) maxWindow() time.Duration {
	var m time.Duration
	for _, w := range e.windows {
		if w > m {
			m = w
		}
	}
	return m
}

// Report evaluates every objective across every window. Windows with no
// data (no ticks yet, or the histogram never moved) report zero burn and
// do not count toward a breach.
func (e *Engine) Report() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]Status, 0, len(e.objectives))
	for _, o := range e.objectives {
		hist := e.hist[o.String()]
		st := Status{Objective: o, Spec: o.String()}
		dataWindows := 0
		for _, w := range e.windows {
			wb := e.windowBurn(o, hist, now, w)
			st.Windows = append(st.Windows, wb)
			if wb.Total > 0 {
				dataWindows++
			}
		}
		st.Breached = dataWindows > 0
		for _, wb := range st.Windows {
			if wb.Total > 0 && !wb.Exceeded {
				st.Breached = false
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec < out[j].Spec })
	return out
}

// windowBurn diffs the newest sample against the best baseline for the
// window: the newest sample at or before the window start, or the oldest
// available (a partial window, reported via SampledAt).
func (e *Engine) windowBurn(o Objective, hist []sample, now time.Time, w time.Duration) WindowBurn {
	if len(hist) == 0 {
		return WindowBurn{Window: w}
	}
	cur := hist[len(hist)-1]
	start := now.Add(-w)
	base := hist[0]
	for _, s := range hist {
		if s.at.After(start) {
			break
		}
		base = s
	}
	span := cur.at.Sub(base.at)
	if span < 0 {
		span = 0
	}
	return burnOf(o, cur.good-base.good, cur.total-base.total, w, span)
}
