package slo

import (
	"testing"
	"time"

	"pgrid/internal/telemetry"
)

func TestParse(t *testing.T) {
	o, err := Parse("query:p99:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != "query" || o.Quantile != 0.99 || o.Threshold != 5*time.Millisecond {
		t.Fatalf("parsed = %+v", o)
	}
	if o.HistName() != `pgrid_rpc_served_latency_ns{kind="query"}` {
		t.Fatalf("hist name = %s", o.HistName())
	}
	if got := o.String(); got != "query:p99:5ms" {
		t.Fatalf("round trip = %s", got)
	}

	for _, spec := range []string{"query:p999:250ms", " exchange : p50 : 1s "} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
	for _, bad := range []string{"", "query", "query:99:5ms", "query:p0:5ms",
		"query:p100:5ms...", ":p99:5ms", "query:p99:0s", "query:p99:fast", "a:b:c:d"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}

	list, err := ParseList("query:p99:5ms, exchange:p95:50ms,")
	if err != nil || len(list) != 2 {
		t.Fatalf("ParseList = %v, %v", list, err)
	}
	if _, err := ParseList("query:p99:5ms,junk"); err == nil {
		t.Error("ParseList accepted junk element")
	}
}

// histOf builds a snapshot carrying a served-latency histogram for kind
// with the given observations.
func histOf(kind string, durs ...time.Duration) telemetry.MetricsSnapshot {
	tel := telemetry.New(0)
	for _, d := range durs {
		tel.ServedRPCDone(kind, d, false)
	}
	return tel.MetricsSnapshot()
}

func TestEvalOneShot(t *testing.T) {
	o := Objective{Kind: "query", Quantile: 0.9, Threshold: 5 * time.Millisecond}

	// 95 fast + 5 slow: bad frac 5% ≤ 10% budget → burn 0.5, healthy.
	durs := make([]time.Duration, 0, 100)
	for i := 0; i < 95; i++ {
		durs = append(durs, time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		durs = append(durs, 100*time.Millisecond)
	}
	near := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	h, _ := histOf("query", durs...).Hist(o.HistName())
	st := Eval(o, h)
	if st.Breached || !near(st.Windows[0].Burn, 0.5) {
		t.Fatalf("healthy eval = %+v", st)
	}

	// 75 fast + 25 slow: bad frac 25% vs 10% budget → burn 2.5, breached.
	durs = durs[:0]
	for i := 0; i < 75; i++ {
		durs = append(durs, time.Millisecond)
	}
	for i := 0; i < 25; i++ {
		durs = append(durs, 100*time.Millisecond)
	}
	h, _ = histOf("query", durs...).Hist(o.HistName())
	st = Eval(o, h)
	if !st.Breached || !near(st.Windows[0].Burn, 2.5) {
		t.Fatalf("tail eval = %+v", st)
	}

	// An empty histogram is no data, never a breach.
	st = Eval(o, telemetry.QHistSnapshot{})
	if st.Breached || st.Windows[0].Total != 0 {
		t.Fatalf("empty eval = %+v", st)
	}
}

// TestEngineBurnFlipsOnTail is the acceptance check: a healthy stream
// keeps every window under burn 1; an injected latency tail flips the
// objective to breached with a visibly nonzero burn rate.
func TestEngineBurnFlipsOnTail(t *testing.T) {
	o, err := Parse("query:p90:5ms")
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	eng := NewEngine([]Objective{o}, func() time.Time { return clock })

	tel := telemetry.New(0)
	// 70 minutes of healthy traffic, one tick per minute: both windows fill.
	for i := 0; i < 70; i++ {
		for j := 0; j < 10; j++ {
			tel.ServedRPCDone("query", time.Millisecond, false)
		}
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	rep := eng.Report()
	if len(rep) != 1 || rep[0].Breached {
		t.Fatalf("healthy report = %+v", rep)
	}
	for _, w := range rep[0].Windows {
		if w.Total == 0 || w.Burn != 0 {
			t.Fatalf("healthy window = %+v", w)
		}
	}

	// Inject a hard latency tail: every request now blows the threshold.
	for i := 0; i < 70; i++ {
		for j := 0; j < 10; j++ {
			tel.ServedRPCDone("query", 50*time.Millisecond, false)
		}
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	rep = eng.Report()
	if !rep[0].Breached {
		t.Fatalf("tail report not breached: %+v", rep[0])
	}
	for _, w := range rep[0].Windows {
		// Bad frac 100% against a 10% budget: burn 10 on both windows.
		if !w.Exceeded || w.Burn < 5 {
			t.Fatalf("tail window = %+v", w)
		}
	}

	// Recovery: the 5m window clears quickly, the 1h window still burns —
	// multi-window means the breach verdict clears as soon as the fast
	// window is healthy again.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			tel.ServedRPCDone("query", time.Millisecond, false)
		}
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	rep = eng.Report()
	if rep[0].Breached {
		t.Fatalf("recovered report still breached: %+v", rep[0])
	}
	if short := rep[0].Windows[0]; short.Exceeded {
		t.Fatalf("short window after recovery = %+v", short)
	}
	if long := rep[0].Windows[1]; !long.Exceeded {
		t.Fatalf("long window should still burn: %+v", long)
	}
}

func TestEngineCounterReset(t *testing.T) {
	o, _ := Parse("query:p90:5ms")
	clock := time.Unix(1_700_000_000, 0)
	eng := NewEngine([]Objective{o}, func() time.Time { return clock })

	tel := telemetry.New(0)
	for i := 0; i < 10; i++ {
		tel.ServedRPCDone("query", 50*time.Millisecond, false)
		eng.Tick(tel.MetricsSnapshot())
		clock = clock.Add(time.Minute)
	}
	// The process "restarts": counters start over from zero.
	tel = telemetry.New(0)
	tel.ServedRPCDone("query", time.Millisecond, false)
	eng.Tick(tel.MetricsSnapshot())
	clock = clock.Add(time.Minute)
	tel.ServedRPCDone("query", time.Millisecond, false)
	eng.Tick(tel.MetricsSnapshot())

	rep := eng.Report()
	for _, w := range rep[0].Windows {
		if w.Burn < 0 || w.Total < 0 {
			t.Fatalf("negative burn after reset: %+v", w)
		}
	}
	// Post-reset history is healthy: no breach from the stale pre-reset tail.
	if rep[0].Breached {
		t.Fatalf("reset report = %+v", rep[0])
	}
}

func TestEngineNilAndEmpty(t *testing.T) {
	var e *Engine
	e.Tick(telemetry.MetricsSnapshot{})
	if e.Report() != nil || e.Objectives() != nil {
		t.Fatal("nil engine must be inert")
	}
	eng := NewEngine(nil, nil)
	eng.Tick(telemetry.MetricsSnapshot{})
	if got := eng.Report(); len(got) != 0 {
		t.Fatalf("empty engine report = %+v", got)
	}
}
