package trie

import (
	"math/rand"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
)

func TestFromDirectorySnapshots(t *testing.T) {
	d := directory.New(4)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	// peer 3 stays at the root
	tr := FromDirectory(d)
	if got := tr.Replicas(bitpath.MustParse("0")); len(got) != 2 {
		t.Errorf("Replicas(0) = %v", got)
	}
	if got := tr.Replicas(bitpath.Empty); len(got) != 1 || got[0] != 3 {
		t.Errorf("Replicas(ε) = %v", got)
	}
	if tr.MaxDepth() != 1 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
	paths := tr.Paths()
	if len(paths) != 3 || paths[0] != bitpath.Empty {
		t.Errorf("Paths = %v", paths)
	}
}

func TestCoveringIncludesPrefixAndExtension(t *testing.T) {
	d := directory.New(3)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1)) // path 0
	d.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0)) // path 1
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d.Peer(2).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0)) // path 01
	tr := FromDirectory(d)
	got := tr.Covering(bitpath.MustParse("01"))
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Covering(01) = %v", got)
	}
	got = tr.Covering(bitpath.MustParse("0"))
	if len(got) != 2 {
		t.Errorf("Covering(0) = %v (peer 0 and the deeper peer 2)", got)
	}
}

func TestCheckCoverage(t *testing.T) {
	d := directory.New(2)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	tr := FromDirectory(d)
	if err := tr.CheckCoverage(3); err != nil {
		t.Errorf("full cover reported hole: %v", err)
	}
	// Remove the 1-side: now keys under 1 are uncovered.
	d2 := directory.New(2)
	d2.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d2.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(0))
	if err := FromDirectory(d2).CheckCoverage(2); err == nil {
		t.Error("coverage hole not detected")
	}
}

func TestCheckPrefixFree(t *testing.T) {
	d := directory.New(2)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(1))
	d.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	if err := FromDirectory(d).CheckPrefixFree(); err != nil {
		t.Errorf("prefix-free grid flagged: %v", err)
	}
	d.Peer(1).ExtendFrom(bitpath.MustParse("1"), 0, addr.NewSet(0))
	d2 := directory.New(1) // peer at root
	_ = d2
	d3 := directory.New(2)
	d3.Peer(0).ExtendFrom(bitpath.Empty, 1, addr.NewSet(1))
	d3.Peer(1).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	d3.Peer(1).ExtendFrom(bitpath.MustParse("1"), 0, addr.NewSet(0))
	if err := FromDirectory(d3).CheckPrefixFree(); err == nil {
		t.Error("proper prefix not detected")
	}
}

func TestBuildIdealStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := BuildIdeal(64, 3, 2, rng)
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("ideal grid violates invariants: %v", err)
	}
	tr := FromDirectory(d)
	if err := tr.CheckCoverage(3); err != nil {
		t.Fatalf("ideal grid has coverage holes: %v", err)
	}
	if err := tr.CheckPrefixFree(); err != nil {
		t.Fatalf("ideal grid not prefix-free: %v", err)
	}
	counts := tr.ReplicaCounts()
	if len(counts) != 8 {
		t.Fatalf("expected 8 leaves, got %d", len(counts))
	}
	for p, c := range counts {
		if c != 8 {
			t.Errorf("leaf %s has %d replicas, want 8", p, c)
		}
	}
	// Every peer has exactly refmax refs per level (sibling subtrees hold
	// 32, 16, 8 peers — all ≥ refmax).
	for _, p := range d.All() {
		for l := 1; l <= 3; l++ {
			if got := p.RefsAt(l).Len(); got != 2 {
				t.Fatalf("peer %v level %d has %d refs, want 2", p.Addr(), l, got)
			}
		}
		if got := p.Buddies().Len(); got != 7 {
			t.Fatalf("peer %v has %d buddies, want 7", p.Addr(), got)
		}
	}
}

func TestBuildIdealUnevenReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 10 peers over 4 leaves: groups of 3,3,2,2.
	d := BuildIdeal(10, 2, 5, rng)
	tr := FromDirectory(d)
	total := 0
	for _, c := range tr.ReplicaCounts() {
		if c < 2 || c > 3 {
			t.Errorf("replica count %d out of balance", c)
		}
		total += c
	}
	if total != 10 {
		t.Errorf("total peers in groups = %d", total)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIdealDeterministicForSeed(t *testing.T) {
	// Regression: reference candidate lists were once assembled in map
	// iteration order, making "ideal" grids differ across runs of the
	// same seed and flaking every downstream experiment.
	build := func() *directory.Directory {
		return BuildIdeal(96, 3, 3, rand.New(rand.NewSource(42)))
	}
	a, b := build(), build()
	for i := 0; i < 96; i++ {
		pa, pb := a.Peer(addr.Addr(i)), b.Peer(addr.Addr(i))
		if pa.Path() != pb.Path() {
			t.Fatalf("peer %d path %q vs %q", i, pa.Path(), pb.Path())
		}
		for l := 1; l <= 3; l++ {
			ra, rb := pa.RefsAt(l).Sorted(), pb.RefsAt(l).Sorted()
			if len(ra) != len(rb) {
				t.Fatalf("peer %d level %d ref counts differ", i, l)
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("peer %d level %d refs %v vs %v", i, l, ra, rb)
				}
			}
		}
	}
}

func TestBuildIdealPanicsWhenTooFewPeers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildIdeal(3, 2, 1, rand.New(rand.NewSource(3)))
}
