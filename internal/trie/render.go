package trie

import (
	"fmt"
	"sort"
	"strings"

	"pgrid/internal/bitpath"
)

// Render draws the occupied trie as an indented tree with replica counts,
// e.g.
//
//	ε
//	├─ 0
//	│  ├─ 00 ×3
//	│  └─ 01 ×2
//	└─ 1 ×4
//
// Only occupied paths and their ancestors appear. Intended for pgridsim
// output and debugging; for big grids prefer the histogram.
func (t *Trie) Render() string {
	counts := t.ReplicaCounts()
	// Collect every node that is an occupied path or an ancestor of one.
	nodes := map[bitpath.Path]bool{bitpath.Empty: true}
	for p := range counts {
		for i := 0; i <= p.Len(); i++ {
			nodes[p.Prefix(i)] = true
		}
	}
	var sb strings.Builder
	renderNode(&sb, nodes, counts, bitpath.Empty, "")
	return sb.String()
}

func renderNode(sb *strings.Builder, nodes map[bitpath.Path]bool, counts map[bitpath.Path]int, p bitpath.Path, prefix string) {
	label := p.String()
	if c := counts[p]; c > 0 {
		label += fmt.Sprintf(" ×%d", c)
	}
	sb.WriteString(label + "\n")

	var children []bitpath.Path
	for _, b := range []byte{0, 1} {
		if c := p.Append(b); nodes[c] {
			children = append(children, c)
		}
	}
	sort.Slice(children, func(i, j int) bool { return bitpath.Compare(children[i], children[j]) < 0 })
	for i, c := range children {
		connector, childPrefix := "├─ ", prefix+"│  "
		if i == len(children)-1 {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		sb.WriteString(prefix + connector)
		renderNode(sb, nodes, counts, c, childPrefix)
	}
}
