package trie

import (
	"strings"
	"testing"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
)

func TestRenderSmallTrie(t *testing.T) {
	d := directory.New(5)
	d.Peer(0).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(0).ExtendFrom(bitpath.MustParse("0"), 0, addr.NewSet(1))
	d.Peer(1).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(1).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(2).ExtendFrom(bitpath.Empty, 0, addr.NewSet(3))
	d.Peer(2).ExtendFrom(bitpath.MustParse("0"), 1, addr.NewSet(0))
	d.Peer(3).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))
	d.Peer(4).ExtendFrom(bitpath.Empty, 1, addr.NewSet(0))

	out := FromDirectory(d).Render()
	for _, want := range []string{"ε", "00 ×1", "01 ×2", "1 ×2", "├─", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The unoccupied interior node "0" appears without a count.
	if strings.Contains(out, "0 ×") && !strings.Contains(out, "00 ×") {
		t.Errorf("interior node rendered with count:\n%s", out)
	}
}

func TestRenderRootOnly(t *testing.T) {
	d := directory.New(2)
	out := FromDirectory(d).Render()
	if !strings.HasPrefix(out, "ε ×2") {
		t.Errorf("render = %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("root-only trie rendered extra lines:\n%s", out)
	}
}
