// Package trie provides a global view of a P-Grid as a binary trie. It is
// a verification oracle and fixture factory: nothing in here is part of the
// distributed algorithm (which never has a global view); it exists so tests
// and experiments can ask "who *should* cover this key?" and can fabricate
// perfectly balanced grids without running the construction process.
package trie

import (
	"fmt"
	"math/rand"
	"sort"

	"pgrid/internal/addr"
	"pgrid/internal/bitpath"
	"pgrid/internal/directory"
)

// Trie is a snapshot of the responsibility structure of a community.
type Trie struct {
	byPath map[bitpath.Path][]addr.Addr
	maxLen int
}

// FromDirectory snapshots the current paths of every peer.
func FromDirectory(d *directory.Directory) *Trie {
	t := &Trie{byPath: make(map[bitpath.Path][]addr.Addr)}
	for _, p := range d.All() {
		path := p.Path()
		t.byPath[path] = append(t.byPath[path], p.Addr())
		if path.Len() > t.maxLen {
			t.maxLen = path.Len()
		}
	}
	for _, g := range t.byPath {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	return t
}

// Paths returns every occupied path in val order.
func (t *Trie) Paths() []bitpath.Path {
	out := make([]bitpath.Path, 0, len(t.byPath))
	for p := range t.byPath {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return bitpath.Compare(out[i], out[j]) < 0 })
	return out
}

// Replicas returns the peers responsible for exactly path.
func (t *Trie) Replicas(path bitpath.Path) []addr.Addr {
	return append([]addr.Addr(nil), t.byPath[path]...)
}

// Covering returns the peers whose region is in a prefix relationship with
// key — the ground-truth replica group the update experiments measure
// against.
func (t *Trie) Covering(key bitpath.Path) []addr.Addr {
	var out []addr.Addr
	for p, g := range t.byPath {
		if bitpath.Comparable(p, key) {
			out = append(out, g...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDepth returns the deepest occupied path length.
func (t *Trie) MaxDepth() int { return t.maxLen }

// CheckCoverage verifies that the occupied regions cover the whole key
// space at resolution depth: every depth-bit key must have at least one
// covering peer. It returns the first uncovered key, if any.
func (t *Trie) CheckCoverage(depth int) error {
	for _, key := range bitpath.All(depth) {
		covered := false
		for p := range t.byPath {
			if p.IsPrefixOf(key) || key.IsPrefixOf(p) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("trie: key %s has no covering peer", key)
		}
	}
	return nil
}

// CheckPrefixFree verifies the converse structural property of a fully
// converged grid: no occupied path is a proper prefix of another (peers
// stopped at different depths mean the grid is still converging — legal,
// but worth asserting against in fixture tests).
func (t *Trie) CheckPrefixFree() error {
	paths := t.Paths()
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].IsPrefixOf(paths[j]) && paths[i] != paths[j] {
				return fmt.Errorf("trie: path %s is a proper prefix of %s", paths[i], paths[j])
			}
		}
	}
	return nil
}

// ReplicaCounts returns the sizes of all replica groups, keyed by path.
func (t *Trie) ReplicaCounts() map[bitpath.Path]int {
	out := make(map[bitpath.Path]int, len(t.byPath))
	for p, g := range t.byPath {
		out[p] = len(g)
	}
	return out
}

// BuildIdeal fabricates a perfectly balanced grid: n peers spread
// round-robin over the 2^depth leaves, each holding refmax references per
// level chosen uniformly from the peers in the sibling subtree at that
// level (or all of them if fewer than refmax exist). Buddies are fully
// populated with the other replicas of the same leaf.
//
// The result satisfies directory.CheckInvariants by construction and is the
// idealized structure the Section 4 analysis assumes. It panics if n < 2^depth
// (every leaf needs at least one peer).
func BuildIdeal(n, depth, refmax int, rng *rand.Rand) *directory.Directory {
	leaves := 1 << uint(depth)
	if n < leaves {
		panic(fmt.Sprintf("trie: BuildIdeal(n=%d, depth=%d): need at least %d peers", n, depth, leaves))
	}
	d := directory.New(n)

	// Assign peers to leaves round-robin over a random permutation so that
	// replica groups differ across seeds but sizes stay balanced.
	perm := rng.Perm(n)
	leafOf := make([]bitpath.Path, n)
	peersAt := make(map[bitpath.Path][]addr.Addr, leaves)
	for i, pi := range perm {
		leaf := bitpath.FromUint(uint64(i%leaves), depth)
		a := addr.Addr(pi)
		leafOf[pi] = leaf
		peersAt[leaf] = append(peersAt[leaf], a)
	}

	// peersUnder[prefix] = all peers whose leaf starts with prefix.
	// Iterate leaves in key order, not map order: candidate lists (and so
	// the rng-driven reference choices below) must be deterministic for a
	// given seed.
	peersUnder := make(map[bitpath.Path][]addr.Addr)
	for v := uint64(0); v < uint64(leaves); v++ {
		leaf := bitpath.FromUint(v, depth)
		for l := 0; l <= depth; l++ {
			pre := leaf.Prefix(l)
			peersUnder[pre] = append(peersUnder[pre], peersAt[leaf]...)
		}
	}

	for i := 0; i < n; i++ {
		a := addr.Addr(i)
		p := d.Peer(a)
		leaf := leafOf[i]
		for l := 1; l <= depth; l++ {
			// References at level l: peers under the sibling prefix.
			sib := leaf.Prefix(l).Sibling()
			cands := peersUnder[sib]
			refs := addr.Set{}
			if len(cands) <= refmax {
				refs = addr.NewSet(cands...)
			} else {
				for _, j := range rng.Perm(len(cands))[:refmax] {
					refs.Add(cands[j])
				}
			}
			if !p.ExtendFrom(leaf.Prefix(l-1), leaf.Bit(l), refs) {
				panic("trie: BuildIdeal: extension failed")
			}
		}
		for _, b := range peersAt[leaf] {
			p.AddBuddy(b)
		}
	}
	return d
}
