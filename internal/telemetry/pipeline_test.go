package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPipelineMatchesSyncSink pins the pipeline's output to the
// synchronous JSONL encoding byte-for-byte: same events in, same lines
// out, whether they travel the typed fast path or the generic one.
func TestPipelineMatchesSyncSink(t *testing.T) {
	emitAll := func(in *Instruments) {
		in.EmitExchange("1", 2, 0, 7, 9)
		in.EmitQuery("010110", true, 3, 1)
		in.EmitRPC("insert", 5, 987)
		in.Emit(KindRound, map[string]any{"meetings": int64(500), "avg_path_len": 3.25})
		in.EmitExchange("replica", 4, 4, 1, 2)
		in.EmitQuery("111", false, 9, 2)
	}
	newClock := func() func() int64 {
		ts := int64(1_700_000_000_000_000_000)
		return func() int64 { ts += 1_000_000; return ts }
	}

	var syncBuf bytes.Buffer
	syncIn := New(3)
	syncIn.SetClock(newClock())
	syncIn.SetSink(NewJSONLSink(&syncBuf))
	emitAll(syncIn)

	var pipeBuf bytes.Buffer
	pipeSink := NewJSONLSink(&pipeBuf)
	pipe := NewPipeline(pipeSink, PipelineConfig{Node: 3})
	pipeIn := New(3)
	pipeIn.SetClock(newClock())
	pipeIn.SetSink(pipe)
	emitAll(pipeIn)
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	if err := syncIn.sinkFlush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pipeBuf.Bytes(), syncBuf.Bytes()) {
		t.Errorf("pipeline output diverges from synchronous sink\n got: %s\nwant: %s",
			pipeBuf.Bytes(), syncBuf.Bytes())
	}
	if pipe.Emitted() != 6 || pipe.Drops() != 0 {
		t.Errorf("emitted=%d drops=%d, want 6/0", pipe.Emitted(), pipe.Drops())
	}
}

// sinkFlush flushes the attached sink when it is a JSONLSink (test aid).
func (t *Instruments) sinkFlush() error {
	sp := t.sink.Load()
	if sp == nil {
		return nil
	}
	if js, ok := (*sp).(*JSONLSink); ok {
		return js.Flush()
	}
	return nil
}

// TestPipelineRaceDropAccounting hammers a deliberately tiny ring with
// concurrent emitters against the drainer and checks exact accounting:
// every emitted event is either delivered intact or counted as dropped,
// and the drop reports sum to the drop counter. Run under -race.
func TestPipelineRaceDropAccounting(t *testing.T) {
	sink := &MemorySink{}
	pipe := NewPipeline(sink, PipelineConfig{
		Shards:   2,
		RingSize: 8, // tiny on purpose: force drops under load
		Interval: 100 * time.Microsecond,
		Node:     -1,
	})
	reg := NewRegistry()
	dropCtr := reg.Counter("pgrid_events_dropped_total", "")
	pipe.SetDropCounter(dropCtr)

	const emitters = 8
	const perEmitter = 2000
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				pipe.emitRPC(int64(i+1), g, "query", g, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	events := sink.Events()
	delivered := 0
	var reportedDrops int64
	for _, e := range events {
		switch e.Kind {
		case KindRPC:
			delivered++
			peer := e.Attrs["peer"].(int)
			us := e.Attrs["us"].(int64)
			if e.Node != peer || us < 0 || us >= perEmitter || e.Attrs["kind"] != "query" {
				t.Fatalf("corrupt event: %+v", e)
			}
			if e.TS != us+1 {
				t.Fatalf("event fields crossed between records: %+v", e)
			}
		case KindDrop:
			reportedDrops += e.Attrs["dropped"].(int64)
		default:
			t.Fatalf("unexpected kind %q", e.Kind)
		}
	}
	total := int64(emitters * perEmitter)
	if int64(delivered) != pipe.Emitted() {
		t.Errorf("delivered %d events but Emitted() = %d", delivered, pipe.Emitted())
	}
	if int64(delivered)+pipe.Drops() != total {
		t.Errorf("delivered %d + drops %d != emitted %d", delivered, pipe.Drops(), total)
	}
	if reportedDrops != pipe.Drops() {
		t.Errorf("KindDrop reports sum to %d, Drops() = %d", reportedDrops, pipe.Drops())
	}
	if dropCtr.Value() != pipe.Drops() {
		t.Errorf("drop counter %d != Drops() %d", dropCtr.Value(), pipe.Drops())
	}
	if pipe.Drops() == 0 {
		t.Log("warning: no drops forced; ring may be too large for this machine")
	}
}

// TestPipelineFlush checks Flush makes everything buffered visible and
// surfaces the sink's sticky error.
func TestPipelineFlush(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	pipe := NewPipeline(sink, PipelineConfig{Interval: time.Hour}) // no ticker help
	for i := 0; i < 10; i++ {
		pipe.emitQuery(int64(i+1), 0, fmt.Sprintf("k%d", i), true, 1, 0)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 10 {
		t.Errorf("flushed %d lines, want 10", n)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	failing := NewPipeline(NewJSONLSink(failWriter{}), PipelineConfig{})
	failing.emitQuery(1, 0, "k", true, 1, 0)
	if err := failing.Close(); err == nil {
		t.Error("Close must surface the sink's sticky error")
	}
}

// TestPipelineOrdering checks per-node FIFO and cross-node timestamp
// ordering survive the shard merge.
func TestPipelineOrdering(t *testing.T) {
	sink := &MemorySink{}
	pipe := NewPipeline(sink, PipelineConfig{Shards: 4, Interval: time.Hour})
	// Interleave two nodes with strictly increasing timestamps.
	for i := 0; i < 50; i++ {
		pipe.emitRPC(int64(2*i+1), 1, "query", 0, int64(i))
		pipe.emitRPC(int64(2*i+2), 2, "query", 0, int64(i))
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) != 100 {
		t.Fatalf("got %d events, want 100", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("timestamp order violated at %d: %d after %d", i, events[i].TS, events[i-1].TS)
		}
	}
}
