package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestQIndexBounds checks that every probed value lands in a bucket whose
// range actually contains it, and that bucket indices are monotone in the
// value.
func TestQIndexBounds(t *testing.T) {
	probes := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 4095, 4096,
		65535, 1 << 20, 1<<20 + 1, 1e9, 123456789012, 1 << 62, (1 << 62) + (1 << 61)}
	prevIdx := -1
	for _, v := range probes {
		idx := qIndex(v)
		if idx < 0 || idx >= qBuckets {
			t.Fatalf("qIndex(%d) = %d out of range [0,%d)", v, idx, qBuckets)
		}
		lo, hi := qBounds(idx)
		if v < lo || v > hi {
			t.Errorf("qIndex(%d) = %d but qBounds gives [%d,%d]", v, idx, lo, hi)
		}
		if idx < prevIdx {
			t.Errorf("qIndex not monotone: qIndex(%d) = %d < previous %d", v, idx, prevIdx)
		}
		prevIdx = idx
	}
	// Exhaustive roundtrip over the low range where buckets are exact.
	for v := int64(0); v < qSubCount; v++ {
		lo, hi := qBounds(qIndex(v))
		if lo != v || hi != v {
			t.Fatalf("small value %d: want exact bucket, got [%d,%d]", v, lo, hi)
		}
	}
}

// TestQuantileAccuracyTable observes the integers 1..10000 once each and
// checks the quantile estimates against hand-computed bucket midpoints.
// With qSubBits=4 the bucket holding a value v ≥ 16 spans
// [(16+sub)<<o, (16+sub+1)<<o - 1] where o = len64(v)-5 and
// sub = (v>>o)&15, so:
//
//	p50  → rank 5000 → value 5000 → o=8, sub=3  → [4864,5119] → mid 4991
//	p99  → rank 9900 → value 9900 → o=9, sub=3  → [9728,10239] → mid 9983
//	p999 → rank 9990 → value 9990 → same bucket             → mid 9983
//
// The relative error bound for this layout is 1/32 ≈ 3.2%.
func TestQuantileAccuracyTable(t *testing.T) {
	q := &QHist{name: "test"}
	for v := int64(1); v <= 10000; v++ {
		q.Observe(v)
	}
	cases := []struct {
		p     float64
		want  int64 // hand-computed bucket midpoint
		exact int64 // exact quantile of the distribution
	}{
		{0.5, 4991, 5000},
		{0.95, 9599, 9500}, // 9500: o=9, sub=2 → [9216,9727] → mid 9471? see below
		{0.99, 9983, 9900},
		{0.999, 9983, 9990},
	}
	// Re-derive the p95 midpoint in-code to keep the table honest: rank
	// 9500 → value 9500 → o=9, sub=(9500>>9)&15 = 18&15 = 2 →
	// lo=(16+2)<<9=9216, hi=9727, mid=9471.
	cases[1].want = 9471
	for _, c := range cases {
		got := q.Quantile(c.p)
		if got != c.want {
			t.Errorf("Quantile(%g) = %d, want hand-computed midpoint %d", c.p, got, c.want)
		}
		relErr := float64(got-c.exact) / float64(c.exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/32.0+1e-9 {
			t.Errorf("Quantile(%g) = %d vs true %d: relative error %.4f exceeds 1/32", c.p, got, c.exact, relErr)
		}
	}
	if q.Count() != 10000 {
		t.Errorf("Count = %d, want 10000", q.Count())
	}
	wantSum := int64(10000 * 10001 / 2)
	if q.Sum() != wantSum {
		t.Errorf("Sum = %d, want %d", q.Sum(), wantSum)
	}
}

// TestQuantileSmallExact checks the exact low-value buckets and edge cases.
func TestQuantileSmallExact(t *testing.T) {
	q := &QHist{name: "small"}
	if got := q.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	for v := int64(0); v < 16; v++ {
		q.Observe(v)
	}
	// 16 observations 0..15; rank for p is max(1, ⌊16p⌋), value rank-1.
	for _, c := range []struct {
		p    float64
		want int64
	}{{0, 0}, {0.5, 7}, {1, 15}} {
		if got := q.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
	q.Observe(-5) // negative clamps to bucket 0, not counted in sum
	if got := q.Quantile(0); got != 0 {
		t.Errorf("after negative observe, Quantile(0) = %d, want 0", got)
	}
	sum := int64(15 * 16 / 2)
	if q.Sum() != sum {
		t.Errorf("Sum = %d, want %d (negatives excluded)", q.Sum(), sum)
	}
}

// TestQuantilesMonotone checks that a multi-point snapshot is internally
// ordered even under concurrent writers.
func TestQuantilesMonotone(t *testing.T) {
	q := &QHist{name: "mono"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = v*6364136223846793005 + 1442695040888963407
				q.Observe((v >> 16) & 0xfffff)
			}
		}(int64(w + 1))
	}
	for i := 0; i < 100; i++ {
		qs := q.Quantiles(0.5, 0.95, 0.99, 0.999)
		for j := 1; j < len(qs); j++ {
			if qs[j] < qs[j-1] {
				t.Fatalf("quantile snapshot not monotone: %v", qs)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestQHistNilSafe exercises every method on a nil receiver.
func TestQHistNilSafe(t *testing.T) {
	var q *QHist
	q.Observe(5)
	if q.Count() != 0 || q.Sum() != 0 || q.Name() != "" || q.Quantile(0.5) != 0 {
		t.Error("nil QHist methods must be no-ops")
	}
	if got := q.Quantiles(0.5, 0.99); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("nil Quantiles = %v, want zeros", got)
	}
	var r *Registry
	if r.Quantile("x", "") != nil {
		t.Error("nil Registry.Quantile must return nil")
	}
}

// TestRegistryQuantileRendering checks idempotent registration, Snapshot
// expansion, and the Prometheus summary rendering with label injection.
func TestRegistryQuantileRendering(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile(`pgrid_rpc_latency_ns{kind="query"}`, "RPC latency.")
	if q2 := r.Quantile(`pgrid_rpc_latency_ns{kind="query"}`, "RPC latency."); q2 != q {
		t.Fatal("Quantile registration not idempotent")
	}
	for i := int64(1); i <= 100; i++ {
		q.Observe(i * 1000)
	}
	snap := r.Snapshot()
	names := make(map[string]int64, len(snap))
	for _, s := range snap {
		names[s.Name] = s.Value
	}
	for _, want := range []string{
		`pgrid_rpc_latency_ns{kind="query",quantile="0.5"}`,
		`pgrid_rpc_latency_ns{kind="query",quantile="0.999"}`,
		`pgrid_rpc_latency_ns_sum{kind="query"}`,
		`pgrid_rpc_latency_ns_count{kind="query"}`,
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("Snapshot missing %s (have %v)", want, snap)
		}
	}
	if got := names[`pgrid_rpc_latency_ns_count{kind="query"}`]; got != 100 {
		t.Errorf("summary count = %d, want 100", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pgrid_rpc_latency_ns summary",
		`pgrid_rpc_latency_ns{kind="query",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}
