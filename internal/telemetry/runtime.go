package telemetry

import (
	"math"
	"runtime/metrics"
)

// RegisterRuntimeMetrics adds Go runtime gauges to the registry, backed
// by runtime/metrics and sampled lazily: the runtime is only consulted
// when the registry is rendered or snapshotted, so an idle node pays
// nothing for them. Idempotent (the registry dedupes by name).
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("pgrid_go_goroutines", "live goroutines", func() int64 {
		return runtimeUint64("/sched/goroutines:goroutines")
	})
	r.GaugeFunc("pgrid_go_heap_bytes", "bytes occupied by live heap objects plus unswept garbage", func() int64 {
		return runtimeUint64("/memory/classes/heap/objects:bytes")
	})
	r.GaugeFunc("pgrid_go_gc_pause_ns", "approximate cumulative GC stop-the-world pause time in nanoseconds (histogram bucket midpoints)", gcPauseNS)
}

// runtimeUint64 samples one uint64-valued runtime metric (0 if the
// runtime does not export it or exports a different kind).
func runtimeUint64(name string) int64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// gcPauseNS approximates total stop-the-world pause time by summing
// count×midpoint over the /gc/pauses:seconds histogram. The runtime only
// exports the distribution, not an exact total, so this carries the
// histogram's bucket-width error — fine for a trend gauge.
func gcPauseNS() int64 {
	s := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s[0].Value.Float64Histogram()
	if h == nil || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	total := 0.0
	for i, n := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		total += float64(n) * (lo + hi) / 2
	}
	return int64(total * 1e9)
}
